module gesturecep

go 1.24
