package gesture

// Benchmark harness: one benchmark per experiment of DESIGN.md /
// EXPERIMENTS.md (the paper has no numbered result tables, so each figure
// and quantified claim is an experiment), plus micro-benchmarks of the hot
// paths. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// and print the human-readable experiment tables with:
//
//	go run ./cmd/gesturebench

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"gesturecep/internal/cep"
	"gesturecep/internal/detect"
	"gesturecep/internal/e2e"
	"gesturecep/internal/experiments"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/lint"
	"gesturecep/internal/query"
	"gesturecep/internal/serve"
	"gesturecep/internal/stream"
	"gesturecep/internal/transform"
	"gesturecep/internal/wire"
)

// BenchmarkE1SwipeRightDetection regenerates Fig. 1: learn swipe_right,
// generate the query, detect on fresh sessions.
func BenchmarkE1SwipeRightDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.E1SwipeRight(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2SampleEfficiency regenerates the "3-5 samples suffice" series
// (F1 vs sample count 1..6).
func BenchmarkE2SampleEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.E2SampleEfficiency(6, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		reportLastF1(b, tab, 3)
	}
}

// BenchmarkE3TransformAblation regenerates the §3.2 invariance ablation.
func BenchmarkE3TransformAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E3TransformAblation(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4MaxDistSweep regenerates the §3.3.1 threshold sweep.
func BenchmarkE4MaxDistSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E4MaxDistSweep(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5ScalingOverlap regenerates the §3.3.2 window-scaling/overlap
// trade-off.
func BenchmarkE5ScalingOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E5ScalingOverlap(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6EngineThroughput regenerates the engine load series (tuples/s
// vs deployed queries).
func BenchmarkE6EngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.E6EngineThroughput(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) > 0 {
			last := tab.Rows[len(tab.Rows)-1]
			if v, err := strconv.ParseFloat(last[1], 64); err == nil {
				b.ReportMetric(v, "tuples/s@64q")
			}
		}
	}
}

// BenchmarkE7Optimization regenerates the §3.3.3 optimization ablation.
func BenchmarkE7Optimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E7Optimization(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8Baselines regenerates the learner vs DBSCAN vs DTW comparison.
func BenchmarkE8Baselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E8Baselines(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Recorder regenerates the §3.1 recorder segmentation table.
func BenchmarkE9Recorder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E9Recorder(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func reportLastF1(b *testing.B, tab experiments.Table, col int) {
	b.Helper()
	if len(tab.Rows) == 0 {
		return
	}
	last := tab.Rows[len(tab.Rows)-1]
	if col < len(last) {
		if v, err := strconv.ParseFloat(last[col], 64); err == nil {
			b.ReportMetric(v, "F1")
		}
	}
}

// --- Micro-benchmarks of the hot paths. ---

func benchTime() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

// BenchmarkNFAProcessTuple measures raw pattern-matching cost per sensor
// tuple for a 3-pose query that mostly does not match (the steady-state
// engine workload).
func BenchmarkNFAProcessTuple(b *testing.B) {
	pred := func(lo, hi float64) func(stream.Tuple) bool {
		return func(t stream.Tuple) bool { return t.Fields[0] >= lo && t.Fields[0] < hi }
	}
	p := cep.SeqWithin(time.Second,
		cep.NewAtom("a", pred(0, 10)),
		cep.NewAtom("b", pred(40, 60)),
		cep.NewAtom("c", pred(90, 110)),
	)
	nfa, err := cep.Compile(p, cep.SelectFirst, cep.ConsumeAll)
	if err != nil {
		b.Fatal(err)
	}
	tup := stream.Tuple{Ts: benchTime(), Fields: []float64{500}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tup.Ts = tup.Ts.Add(33 * time.Millisecond)
		nfa.Process(tup)
	}
}

// BenchmarkTransformFrame measures the §3.2 transformation per skeleton
// frame.
func BenchmarkTransformFrame(b *testing.B) {
	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 1)
	if err != nil {
		b.Fatal(err)
	}
	frames := sim.Idle(benchTime(), time.Second)
	tr, err := transform.New(transform.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Frame(frames[i%len(frames)])
	}
}

// BenchmarkLearnPipeline measures the full §3.3 learning pipeline on 4
// samples of a swipe.
func BenchmarkLearnPipeline(b *testing.B) {
	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 1)
	if err != nil {
		b.Fatal(err)
	}
	samples, err := sim.Samples(kinect.StandardGestures()[kinect.GestureSwipeRight], 4,
		benchTime(), kinect.PerformOpts{PathJitter: 25})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := learn.Learn("swipe_right", samples, learn.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryParse measures parsing of a generated 3-pose query.
func BenchmarkQueryParse(b *testing.B) {
	sim, _ := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 1)
	samples, err := sim.Samples(kinect.StandardGestures()[kinect.GestureSwipeRight], 3,
		benchTime(), kinect.PerformOpts{PathJitter: 25})
	if err != nil {
		b.Fatal(err)
	}
	res, err := learn.Learn("swipe_right", samples, learn.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(res.QueryText); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndTuple measures the complete per-tuple path: raw tuple →
// kinect_t transformation → 8 deployed gesture queries.
func BenchmarkEndToEndTuple(b *testing.B) {
	h, err := detect.NewHarness(transform.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	gestures := []string{
		kinect.GestureSwipeRight, kinect.GestureSwipeLeft, kinect.GestureSwipeUp,
		kinect.GestureSwipeDown, kinect.GesturePush, kinect.GesturePull,
		kinect.GestureCircle, kinect.GestureRaiseHand,
	}
	sim, _ := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 1)
	for i, g := range gestures {
		samples, err := sim.Samples(kinect.StandardGestures()[g], 3, benchTime(), kinect.PerformOpts{PathJitter: 25})
		if err != nil {
			b.Fatal(err)
		}
		res, err := learn.Learn(g, samples, learn.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Deploy(res.QueryText); err != nil {
			b.Fatalf("gesture %d: %v", i, err)
		}
	}
	frames := sim.Idle(benchTime().Add(time.Hour), time.Second)
	tuples := kinect.ToTuples(frames)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tup := tuples[i%len(tuples)]
		tup.Ts = benchTime().Add(time.Hour + time.Duration(i)*33*time.Millisecond)
		if err := h.Raw.Publish(tup); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSessions measures the multi-tenant serving layer: N
// concurrent sessions, each a private engine fed through the sharded
// ingestion queues, all instantiating NFAs from one shared compiled plan.
// The reported tuples/s is the aggregate ingest rate across all sessions.
func BenchmarkServeSessions(b *testing.B) {
	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 1)
	if err != nil {
		b.Fatal(err)
	}
	samples, err := sim.Samples(kinect.StandardGestures()[kinect.GestureSwipeRight], 4,
		benchTime(), kinect.PerformOpts{PathJitter: 25})
	if err != nil {
		b.Fatal(err)
	}
	res, err := learn.Learn("swipe_right", samples, learn.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	player, err := kinect.NewSimulator(kinect.ChildProfile(), kinect.DefaultNoise(), 7)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := player.RunScript([]kinect.ScriptItem{
		{Idle: 500 * time.Millisecond},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: 500 * time.Millisecond},
	}, benchTime(), nil)
	if err != nil {
		b.Fatal(err)
	}
	tuples := kinect.ToTuples(rec.Frames)
	// Stride between replays of the recording, so per-session event time
	// stays non-decreasing across b.N iterations.
	stride := rec.Duration() + time.Second

	for _, n := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			reg := serve.NewRegistry()
			if _, err := reg.Register("swipe_right", res.QueryText); err != nil {
				b.Fatal(err)
			}
			m, err := serve.NewManager(serve.Config{Shards: 4, QueueDepth: 256}, reg)
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			sessions := make([]*serve.Session, n)
			for i := range sessions {
				s, err := m.CreateSession(fmt.Sprintf("user-%d", i))
				if err != nil {
					b.Fatal(err)
				}
				sessions[i] = s
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				offset := time.Duration(i) * stride
				var wg sync.WaitGroup
				for _, s := range sessions {
					wg.Add(1)
					go func(s *serve.Session) {
						defer wg.Done()
						for _, tp := range tuples {
							tp.Ts = tp.Ts.Add(offset)
							if err := s.FeedTuple(tp); err != nil {
								b.Error(err)
								return
							}
						}
					}(s)
				}
				wg.Wait()
				m.Flush()
				for _, s := range sessions {
					s.TakeDetections() // keep memory bounded across iterations
				}
			}
			b.StopTimer()
			total := float64(b.N) * float64(n) * float64(len(tuples))
			b.ReportMetric(total/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}

// BenchmarkWireEncodeBatch measures the data-plane encoder: one full batch
// of kinect tuples appended to a reused buffer (the per-tuple network hot
// path on the client).
func BenchmarkWireEncodeBatch(b *testing.B) {
	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.NoNoise(), 1)
	if err != nil {
		b.Fatal(err)
	}
	frames := sim.Idle(benchTime(), 3*time.Second)
	tuples := kinect.ToTuples(frames)
	if len(tuples) > 64 {
		tuples = tuples[:64]
	}
	fields := len(tuples[0].Fields)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := wire.AppendBatch(buf[:0], 1, fields, tuples)
		if err != nil {
			b.Fatal(err)
		}
		buf = out
	}
	b.ReportMetric(float64(b.N*len(tuples))/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkWireDecodeBatch measures the data-plane decoder (the per-tuple
// network hot path on the server): strict validation plus one arena
// allocation per batch.
func BenchmarkWireDecodeBatch(b *testing.B) {
	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.NoNoise(), 1)
	if err != nil {
		b.Fatal(err)
	}
	frames := sim.Idle(benchTime(), 3*time.Second)
	tuples := kinect.ToTuples(frames)
	if len(tuples) > 64 {
		tuples = tuples[:64]
	}
	payload, err := wire.AppendBatch(nil, 1, len(tuples[0].Fields), tuples)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.DecodeBatch(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*len(tuples))/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkWireLoopback measures the complete network path — client codec →
// TCP loopback → gestured frame loop → sharded session manager → detection
// push-back — for one remote session replaying a recording per iteration.
// Its cluster twin is BenchmarkGatewayProxy (internal/cluster): the same
// path with the gateway hop in between.
func BenchmarkWireLoopback(b *testing.B) {
	h := e2e.Start(b, e2e.Options{Serve: serve.Config{Shards: 2}})

	player, err := kinect.NewSimulator(kinect.ChildProfile(), kinect.DefaultNoise(), 7)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := player.RunScript([]kinect.ScriptItem{
		{Idle: 500 * time.Millisecond},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
	}, benchTime(), nil)
	if err != nil {
		b.Fatal(err)
	}
	tuples := kinect.ToTuples(rec.Frames)
	stride := rec.Duration() + time.Second

	cl := h.Dial()
	rs, err := cl.Attach("bench", wire.AttachOptions{BatchSize: 64, Discard: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offset := time.Duration(i) * stride
		for _, tp := range tuples {
			tp.Ts = tp.Ts.Add(offset)
			if err := rs.FeedTuple(tp); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := rs.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(tuples))/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkE10WindowMode regenerates the window-mode design ablation.
func BenchmarkE10WindowMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E10WindowMode(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHotPathManifestInSync keeps the bench harness and the static
// hot-path gate pointed at the same functions: every entry of
// internal/lint/hotpaths.txt must still resolve to a declared function.
// Renaming a benched hot function without updating the manifest fails
// here (and in gesturelint) instead of silently un-gating the path.
func TestHotPathManifestInSync(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the hot-path packages from source; skipped in -short")
	}
	entries := lint.HotPathManifest()
	if len(entries) == 0 {
		t.Fatal("hot-path manifest is empty; the hotpathalloc gate is gating nothing")
	}
	pkgs, err := lint.NewLoader().Load(lint.ManifestPackages()...)
	if err != nil {
		t.Fatalf("loading manifest packages: %v", err)
	}
	for _, d := range lint.StaleManifest(pkgs) {
		t.Error(d.Message)
	}
}
