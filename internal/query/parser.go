package query

import (
	"fmt"
	"math"
	"strings"
	"time"

	"gesturecep/internal/cep"
)

// Parse parses a single gesture query of the paper's dialect (see package
// doc) into its AST.
func Parse(src string) (*Query, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// ParseAll parses a sequence of semicolon-terminated queries, e.g. the
// content of a gesture database export.
func ParseAll(src string) ([]*Query, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []*Query
	for p.peek().Kind != TokEOF {
		q, err := p.parseQueryBody()
		if err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("query: no queries in input")
	}
	return out, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind TokenKind) (Token, error) {
	t := p.peek()
	if t.Kind != kind {
		return Token{}, errAt(t.Line, t.Col, "expected %s, found %s", kind, t)
	}
	return p.next(), nil
}

func (p *parser) parseQuery() (*Query, error) {
	q, err := p.parseQueryBody()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind != TokEOF {
		return nil, errAt(t.Line, t.Col, "unexpected trailing input: %s", t)
	}
	return q, nil
}

func (p *parser) parseQueryBody() (*Query, error) {
	if _, err := p.expect(TokSelect); err != nil {
		return nil, err
	}
	out, err := p.expect(TokString)
	if err != nil {
		return nil, err
	}
	// Optional output measures: SELECT "name", expr, expr MATCHING …
	var measures []Expr
	for p.peek().Kind == TokComma {
		p.next()
		m, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		measures = append(measures, m)
	}
	if _, err := p.expect(TokMatching); err != nil {
		return nil, err
	}
	pat, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return nil, err
	}
	return &Query{Output: out.Text, Measures: measures, Pattern: pat}, nil
}

// parsePattern parses: Term { '->' Term } [within …] [select …] [consume …]
func (p *parser) parsePattern() (*PatternNode, error) {
	node := &PatternNode{}
	for {
		term, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		node.Terms = append(node.Terms, term)
		if p.peek().Kind != TokArrow {
			break
		}
		p.next()
	}
	if err := p.parseTail(node); err != nil {
		return nil, err
	}
	return node, nil
}

// parseTerm parses either source(expr) or a parenthesized sub-pattern.
func (p *parser) parseTerm() (*Term, error) {
	t := p.peek()
	switch t.Kind {
	case TokLParen:
		p.next()
		group, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &Term{Group: group}, nil
	case TokIdent:
		src := p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		pred, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return &Term{Atom: &EventAtom{Source: src.Text, Pred: pred}}, nil
	default:
		return nil, errAt(t.Line, t.Col, "expected event atom or '(', found %s", t)
	}
}

// parseTail parses the optional within/select/consume clauses of a pattern
// level, in any order, each at most once.
func (p *parser) parseTail(node *PatternNode) error {
	for {
		t := p.peek()
		switch t.Kind {
		case TokWithin:
			if node.HasWithin {
				return errAt(t.Line, t.Col, "duplicate within clause")
			}
			p.next()
			num, err := p.expect(TokNumber)
			if err != nil {
				return err
			}
			unit, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			d, err := durationFromUnit(num.Num, unit.Text)
			if err != nil {
				return errAt(unit.Line, unit.Col, "%v", err)
			}
			if d <= 0 {
				return errAt(num.Line, num.Col, "within duration must be positive")
			}
			node.HasWithin = true
			node.Within = d
		case TokSelect:
			if node.HasSelect {
				return errAt(t.Line, t.Col, "duplicate select clause")
			}
			p.next()
			pol, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			switch strings.ToLower(pol.Text) {
			case "first":
				node.Select = cep.SelectFirst
			case "all":
				node.Select = cep.SelectAll
			default:
				return errAt(pol.Line, pol.Col, "unknown select policy %q (want first or all)", pol.Text)
			}
			node.HasSelect = true
		case TokConsume:
			if node.HasConsume {
				return errAt(t.Line, t.Col, "duplicate consume clause")
			}
			p.next()
			pol, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			switch strings.ToLower(pol.Text) {
			case "all":
				node.Consume = cep.ConsumeAll
			case "none":
				node.Consume = cep.ConsumeNone
			default:
				return errAt(pol.Line, pol.Col, "unknown consume policy %q (want all or none)", pol.Text)
			}
			node.HasConsume = true
		default:
			return nil
		}
	}
}

// maxWithin bounds the within clause. Gesture patterns span seconds; the cap
// also keeps every admissible duration below 2^53 ns, where float64 holds
// nanosecond counts exactly, so printed durations re-parse to the identical
// value (the Print ∘ Parse fixed point the fuzz round-trip relies on).
const maxWithin = 24 * time.Hour

// durationFromUnit converts "1 seconds", "500 ms" etc. to a duration.
func durationFromUnit(n float64, unit string) (time.Duration, error) {
	var scale time.Duration
	switch strings.ToLower(unit) {
	case "second", "seconds", "sec", "secs", "s":
		scale = time.Second
	case "millisecond", "milliseconds", "millis", "ms":
		scale = time.Millisecond
	case "minute", "minutes", "min", "mins":
		scale = time.Minute
	default:
		return 0, fmt.Errorf("unknown time unit %q", unit)
	}
	ns := n * float64(scale)
	// The negated comparison also rejects NaN.
	if !(ns <= float64(maxWithin)) {
		return 0, fmt.Errorf("duration %g %s exceeds the %v maximum", n, unit, maxWithin)
	}
	return time.Duration(math.Round(ns)), nil
}

// Expression grammar, lowest to highest precedence:
//
//	or -> and -> not -> comparison -> additive -> multiplicative -> unary -> primary
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokOr {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokAnd {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.peek().Kind == TokNot {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNot, X: x}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[TokenKind]Op{
	TokLT: OpLT, TokLE: OpLE, TokGT: OpGT, TokGE: OpGE, TokEQ: OpEQ, TokNE: OpNE,
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.peek().Kind]; ok {
		p.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch p.peek().Kind {
		case TokPlus:
			op = OpAdd
		case TokMinus:
			op = OpSub
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch p.peek().Kind {
		case TokStar:
			op = OpMul
		case TokSlash:
			op = OpDiv
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.peek().Kind {
	case TokMinus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNeg, X: x}, nil
	case TokPlus:
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		return &NumberLit{Value: t.Num}, nil
	case TokIdent:
		p.next()
		if p.peek().Kind == TokLParen {
			p.next()
			var args []Expr
			if p.peek().Kind != TokRParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.peek().Kind != TokComma {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &Call{Name: t.Text, Args: args}, nil
		}
		return &Ident{Name: t.Text}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errAt(t.Line, t.Col, "expected expression, found %s", t)
	}
}
