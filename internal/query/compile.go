package query

import (
	"fmt"
	"math"
	"sync"

	"gesturecep/internal/cep"
	"gesturecep/internal/stream"
)

// UDF is a scalar user-defined function callable from query expressions.
// The paper registers Roll-Pitch-Yaw operators this way (§3.2); the engine
// facade provides them, and the query compiler only needs name + arity +
// implementation.
type UDF struct {
	Name string
	// Arity is the required argument count; -1 accepts any number of
	// arguments (at least one).
	Arity int
	// Fn evaluates the function. The args slice is pooled by the compiler
	// and reused across calls — implementations must not retain it.
	Fn func(args []float64) float64
}

// BuiltinUDFs returns the default scalar function registry: abs, min, max,
// sqrt, and dist (Euclidean distance between two 3D points, used for the
// forearm scale factor in §3.2).
func BuiltinUDFs() map[string]UDF {
	return map[string]UDF{
		"abs":  {Name: "abs", Arity: 1, Fn: func(a []float64) float64 { return math.Abs(a[0]) }},
		"sqrt": {Name: "sqrt", Arity: 1, Fn: func(a []float64) float64 { return math.Sqrt(a[0]) }},
		"min": {Name: "min", Arity: -1, Fn: func(a []float64) float64 {
			m := a[0]
			for _, v := range a[1:] {
				m = math.Min(m, v)
			}
			return m
		}},
		"max": {Name: "max", Arity: -1, Fn: func(a []float64) float64 {
			m := a[0]
			for _, v := range a[1:] {
				m = math.Max(m, v)
			}
			return m
		}},
		"dist": {Name: "dist", Arity: 6, Fn: func(a []float64) float64 {
			dx, dy, dz := a[0]-a[3], a[1]-a[4], a[2]-a[5]
			return math.Sqrt(dx*dx + dy*dy + dz*dz)
		}},
	}
}

// Env provides the compilation context: the schema of each stream or view a
// query may reference, plus the available scalar functions.
type Env struct {
	Schemas map[string]*stream.Schema
	UDFs    map[string]UDF
}

// NewEnv builds an Env with the builtin UDFs pre-registered.
func NewEnv() *Env {
	return &Env{
		Schemas: make(map[string]*stream.Schema),
		UDFs:    BuiltinUDFs(),
	}
}

// Compiled is an executable query: the cep pattern plus resolved policies
// and the single source stream the pattern reads.
type Compiled struct {
	Output  string
	Source  string
	Pattern cep.Pattern
	Select  cep.SelectPolicy
	Consume cep.ConsumePolicy
	// NumAtoms is the number of event atoms (NFA states).
	NumAtoms int
	// Measures are the compiled output-measure evaluators (§3.3.4),
	// applied to the final matched tuple of each detection.
	Measures []func(stream.Tuple) float64
}

// CompileQuery type-checks q against env and produces an executable form.
// All event atoms must reference the same source stream — a pattern cannot
// span streams (the paper's queries always read the kinect_t view).
func CompileQuery(q *Query, env *Env) (*Compiled, error) {
	if q == nil || q.Pattern == nil {
		return nil, fmt.Errorf("query: nil query")
	}
	if q.Output == "" {
		return nil, fmt.Errorf("query: empty output name")
	}
	if env == nil {
		return nil, fmt.Errorf("query: nil environment")
	}
	atoms := q.Pattern.Atoms()
	if len(atoms) == 0 {
		return nil, fmt.Errorf("query %q: pattern has no event atoms", q.Output)
	}
	source := atoms[0].Source
	for _, a := range atoms {
		if a.Source != source {
			return nil, fmt.Errorf("query %q: pattern mixes sources %q and %q; all atoms must read one stream",
				q.Output, source, a.Source)
		}
	}
	schema, ok := env.Schemas[source]
	if !ok {
		return nil, fmt.Errorf("query %q: unknown source stream %q", q.Output, source)
	}

	pat, err := compilePattern(q.Pattern, q.Output, schema, env, new(int))
	if err != nil {
		return nil, fmt.Errorf("query %q: %w", q.Output, err)
	}

	var measures []func(stream.Tuple) float64
	for i, m := range q.Measures {
		ev, err := compileExpr(m, schema, env.UDFs)
		if err != nil {
			return nil, fmt.Errorf("query %q: measure %d: %w", q.Output, i, err)
		}
		measures = append(measures, ev)
	}

	c := &Compiled{
		Output:   q.Output,
		Source:   source,
		Pattern:  pat,
		Select:   cep.SelectFirst,
		Consume:  cep.ConsumeAll,
		NumAtoms: len(atoms),
		Measures: measures,
	}
	if q.Pattern.HasSelect {
		c.Select = q.Pattern.Select
	}
	if q.Pattern.HasConsume {
		c.Consume = q.Pattern.Consume
	}
	return c, nil
}

func compilePattern(node *PatternNode, gesture string, schema *stream.Schema, env *Env, atomIdx *int) (cep.Pattern, error) {
	seq := &cep.Sequence{}
	if node.HasWithin {
		seq.Within = node.Within
	}
	for _, term := range node.Terms {
		switch {
		case term.Atom != nil:
			pred, err := CompilePredicate(term.Atom.Pred, schema, env.UDFs)
			if err != nil {
				return nil, err
			}
			label := fmt.Sprintf("%s[%d]", gesture, *atomIdx)
			*atomIdx++
			seq.Elems = append(seq.Elems, cep.NewAtom(label, pred))
		case term.Group != nil:
			sub, err := compilePattern(term.Group, gesture, schema, env, atomIdx)
			if err != nil {
				return nil, err
			}
			seq.Elems = append(seq.Elems, sub)
		default:
			return nil, fmt.Errorf("empty pattern term")
		}
	}
	return seq, nil
}

// CompilePredicate compiles a boolean expression over the given schema into
// a tuple predicate. Comparisons and logic evaluate to 1/0; the predicate is
// true when the result is non-zero.
func CompilePredicate(e Expr, schema *stream.Schema, udfs map[string]UDF) (func(stream.Tuple) bool, error) {
	ev, err := compileExpr(e, schema, udfs)
	if err != nil {
		return nil, err
	}
	return func(t stream.Tuple) bool { return ev(t) != 0 }, nil
}

// CompileScalar compiles an arithmetic expression over the given schema
// into a tuple-to-float evaluator. Exposed for output-measure expressions.
func CompileScalar(e Expr, schema *stream.Schema, udfs map[string]UDF) (func(stream.Tuple) float64, error) {
	return compileExpr(e, schema, udfs)
}

func compileExpr(e Expr, schema *stream.Schema, udfs map[string]UDF) (func(stream.Tuple) float64, error) {
	switch n := e.(type) {
	case *NumberLit:
		v := n.Value
		return func(stream.Tuple) float64 { return v }, nil

	case *Ident:
		idx, ok := schema.Index(n.Name)
		if !ok {
			return nil, fmt.Errorf("unknown attribute %q (schema %s)", n.Name, schema)
		}
		return func(t stream.Tuple) float64 { return t.Fields[idx] }, nil

	case *Unary:
		x, err := compileExpr(n.X, schema, udfs)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case OpNeg:
			return func(t stream.Tuple) float64 { return -x(t) }, nil
		case OpNot:
			return func(t stream.Tuple) float64 { return b2f(x(t) == 0) }, nil
		default:
			return nil, fmt.Errorf("invalid unary operator %s", n.Op)
		}

	case *Binary:
		l, err := compileExpr(n.L, schema, udfs)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(n.R, schema, udfs)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case OpAdd:
			return func(t stream.Tuple) float64 { return l(t) + r(t) }, nil
		case OpSub:
			return func(t stream.Tuple) float64 { return l(t) - r(t) }, nil
		case OpMul:
			return func(t stream.Tuple) float64 { return l(t) * r(t) }, nil
		case OpDiv:
			return func(t stream.Tuple) float64 { return l(t) / r(t) }, nil
		case OpLT:
			return func(t stream.Tuple) float64 { return b2f(l(t) < r(t)) }, nil
		case OpLE:
			return func(t stream.Tuple) float64 { return b2f(l(t) <= r(t)) }, nil
		case OpGT:
			return func(t stream.Tuple) float64 { return b2f(l(t) > r(t)) }, nil
		case OpGE:
			return func(t stream.Tuple) float64 { return b2f(l(t) >= r(t)) }, nil
		case OpEQ:
			return func(t stream.Tuple) float64 { return b2f(l(t) == r(t)) }, nil
		case OpNE:
			return func(t stream.Tuple) float64 { return b2f(l(t) != r(t)) }, nil
		case OpAnd:
			return func(t stream.Tuple) float64 { return b2f(l(t) != 0 && r(t) != 0) }, nil
		case OpOr:
			return func(t stream.Tuple) float64 { return b2f(l(t) != 0 || r(t) != 0) }, nil
		default:
			return nil, fmt.Errorf("invalid binary operator %s", n.Op)
		}

	case *Call:
		udf, ok := udfs[n.Name]
		if !ok {
			return nil, fmt.Errorf("unknown function %q", n.Name)
		}
		if udf.Arity >= 0 && len(n.Args) != udf.Arity {
			return nil, fmt.Errorf("function %q expects %d arguments, got %d", n.Name, udf.Arity, len(n.Args))
		}
		if udf.Arity < 0 && len(n.Args) == 0 {
			return nil, fmt.Errorf("function %q needs at least one argument", n.Name)
		}
		args := make([]func(stream.Tuple) float64, len(n.Args))
		for i, a := range n.Args {
			ev, err := compileExpr(a, schema, udfs)
			if err != nil {
				return nil, err
			}
			args[i] = ev
		}
		fn := udf.Fn
		// The argument scratch slice is pooled per call site: compiled
		// programs are shared across sessions and shards, so the same
		// closure runs concurrently and cannot reuse a single buffer. The
		// pool keeps the hot path allocation-free; UDF implementations must
		// not retain the slice past the call (the builtins don't).
		nargs := len(args)
		pool := &sync.Pool{New: func() any {
			s := make([]float64, nargs)
			return &s
		}}
		return func(t stream.Tuple) float64 {
			vp := pool.Get().(*[]float64)
			vals := *vp
			for i, a := range args {
				vals[i] = a(t)
			}
			v := fn(vals)
			pool.Put(vp)
			return v
		}, nil

	default:
		return nil, fmt.Errorf("unknown expression node %T", e)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
