package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// SyntaxError reports a lexical or parse error with its source position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("query:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// lexer tokenizes query text. Comments start with -- and run to end of line.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input, appending a trailing EOF token.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) peekByte() (byte, bool) {
	if lx.pos >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.pos], true
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() {
	for {
		c, ok := lx.peekByte()
		if !ok {
			return
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			for {
				c, ok := lx.peekByte()
				if !ok || c == '\n' {
					break
				}
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (lx *lexer) next() (Token, error) {
	lx.skipSpaceAndComments()
	line, col := lx.line, lx.col
	c, ok := lx.peekByte()
	if !ok {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}

	switch {
	case isIdentStart(c):
		start := lx.pos
		for {
			c, ok := lx.peekByte()
			if !ok || !isIdentPart(c) {
				break
			}
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if kind, isKw := keywords[strings.ToLower(text)]; isKw {
			return Token{Kind: kind, Text: strings.ToLower(text), Line: line, Col: col}, nil
		}
		return Token{Kind: TokIdent, Text: text, Line: line, Col: col}, nil

	case unicode.IsDigit(rune(c)) || (c == '.' && lx.pos+1 < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.pos+1]))):
		start := lx.pos
		seenDot, seenExp := false, false
		for {
			c, ok := lx.peekByte()
			if !ok {
				break
			}
			if unicode.IsDigit(rune(c)) {
				lx.advance()
				continue
			}
			if c == '.' && !seenDot && !seenExp {
				seenDot = true
				lx.advance()
				continue
			}
			if (c == 'e' || c == 'E') && !seenExp {
				seenExp = true
				lx.advance()
				if s, ok := lx.peekByte(); ok && (s == '+' || s == '-') {
					lx.advance()
				}
				continue
			}
			break
		}
		text := lx.src[start:lx.pos]
		num, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errAt(line, col, "invalid number %q", text)
		}
		return Token{Kind: TokNumber, Text: text, Num: num, Line: line, Col: col}, nil

	case c == '"' || c == '\'':
		quote := c
		lx.advance()
		start := lx.pos
		for {
			c, ok := lx.peekByte()
			if !ok {
				return Token{}, errAt(line, col, "unterminated string literal")
			}
			if c == quote {
				text := lx.src[start:lx.pos]
				lx.advance()
				return Token{Kind: TokString, Text: text, Line: line, Col: col}, nil
			}
			if c == '\n' {
				return Token{}, errAt(line, col, "newline in string literal")
			}
			lx.advance()
		}

	default:
		lx.advance()
		two := func(second byte, kind TokenKind, text string) (Token, bool) {
			if n, ok := lx.peekByte(); ok && n == second {
				lx.advance()
				return Token{Kind: kind, Text: text, Line: line, Col: col}, true
			}
			return Token{}, false
		}
		switch c {
		case '(':
			return Token{Kind: TokLParen, Text: "(", Line: line, Col: col}, nil
		case ')':
			return Token{Kind: TokRParen, Text: ")", Line: line, Col: col}, nil
		case ',':
			return Token{Kind: TokComma, Text: ",", Line: line, Col: col}, nil
		case ';':
			return Token{Kind: TokSemicolon, Text: ";", Line: line, Col: col}, nil
		case '+':
			return Token{Kind: TokPlus, Text: "+", Line: line, Col: col}, nil
		case '-':
			if t, ok := two('>', TokArrow, "->"); ok {
				return t, nil
			}
			return Token{Kind: TokMinus, Text: "-", Line: line, Col: col}, nil
		case '*':
			return Token{Kind: TokStar, Text: "*", Line: line, Col: col}, nil
		case '/':
			return Token{Kind: TokSlash, Text: "/", Line: line, Col: col}, nil
		case '<':
			if t, ok := two('=', TokLE, "<="); ok {
				return t, nil
			}
			if t, ok := two('>', TokNE, "<>"); ok {
				return t, nil
			}
			return Token{Kind: TokLT, Text: "<", Line: line, Col: col}, nil
		case '>':
			if t, ok := two('=', TokGE, ">="); ok {
				return t, nil
			}
			return Token{Kind: TokGT, Text: ">", Line: line, Col: col}, nil
		case '=':
			if t, ok := two('=', TokEQ, "=="); ok {
				return t, nil
			}
			return Token{Kind: TokEQ, Text: "=", Line: line, Col: col}, nil
		case '!':
			if t, ok := two('=', TokNE, "!="); ok {
				return t, nil
			}
			return Token{}, errAt(line, col, "unexpected character '!'")
		}
		return Token{}, errAt(line, col, "unexpected character %q", string(rune(c)))
	}
}
