package query

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Print renders a query AST back to concrete syntax in the paper's style
// (Fig. 1): one predicate conjunct per line inside event atoms, nested
// sub-patterns parenthesized with their own within/select/consume tail.
// The output re-parses to an equivalent AST (see round-trip tests).
func Print(q *Query) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	b.WriteString(quoteString(q.Output))
	for _, m := range q.Measures {
		b.WriteString(", ")
		b.WriteString(exprString(m, 0))
	}
	b.WriteString("\nMATCHING ")
	printPattern(&b, q.Pattern, 0, false)
	b.WriteString(";\n")
	return b.String()
}

// quoteString renders a string literal for the lexer, which supports both
// quote characters but no escape sequences: the content is written raw and
// the quote character is chosen to not collide with it. A parsed string can
// never contain both quote characters (the lexer excludes the delimiter), so
// one of the two choices always round-trips.
func quoteString(s string) string {
	if strings.Contains(s, `"`) {
		return "'" + s + "'"
	}
	return `"` + s + `"`
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

// printPattern renders one pattern level. parenthesize wraps the level in
// parentheses (used for nested groups).
func printPattern(b *strings.Builder, p *PatternNode, depth int, parenthesize bool) {
	if parenthesize {
		b.WriteString("(\n")
		depth++
	}
	for i, term := range p.Terms {
		if i > 0 {
			b.WriteString(" ->\n")
		}
		if term.Atom != nil {
			indent(b, depth)
			printAtom(b, term.Atom, depth)
		} else {
			indent(b, depth)
			printPattern(b, term.Group, depth, true)
		}
	}
	tail := tailString(p)
	if tail != "" {
		b.WriteString("\n")
		indent(b, depth)
		b.WriteString(tail)
	}
	if parenthesize {
		b.WriteString("\n")
		indent(b, depth-1)
		b.WriteString(")")
	}
}

func printAtom(b *strings.Builder, a *EventAtom, depth int) {
	b.WriteString(a.Source)
	b.WriteString("(\n")
	conjuncts := splitAnd(a.Pred)
	// Conjuncts re-join with "and" on re-parse, so each must render at
	// AND precedence (an OR conjunct needs its parentheses).
	prec := 0
	if len(conjuncts) > 1 {
		prec = precedence(OpAnd)
	}
	for i, c := range conjuncts {
		indent(b, depth+1)
		b.WriteString(exprString(c, prec))
		if i < len(conjuncts)-1 {
			b.WriteString(" and")
		}
		b.WriteString("\n")
	}
	indent(b, depth)
	b.WriteString(")")
}

// splitAnd flattens a left-deep chain of AND nodes into its conjuncts so the
// printer can lay them out one per line like the paper does.
func splitAnd(e Expr) []Expr {
	if bin, ok := e.(*Binary); ok && bin.Op == OpAnd {
		return append(splitAnd(bin.L), splitAnd(bin.R)...)
	}
	return []Expr{e}
}

func tailString(p *PatternNode) string {
	var parts []string
	if p.HasWithin {
		parts = append(parts, "within "+durationText(p.Within))
	}
	if p.HasSelect {
		parts = append(parts, "select "+p.Select.String())
	}
	if p.HasConsume {
		parts = append(parts, "consume "+p.Consume.String())
	}
	return strings.Join(parts, " ")
}

// durationText renders a duration in the largest unit that represents it
// exactly, matching the paper's "within 1 seconds" phrasing.
func durationText(d time.Duration) string {
	switch {
	case d%time.Second == 0:
		return fmt.Sprintf("%d seconds", d/time.Second)
	case d%time.Millisecond == 0:
		return fmt.Sprintf("%d milliseconds", d/time.Millisecond)
	default:
		return fmt.Sprintf("%g milliseconds", float64(d)/float64(time.Millisecond))
	}
}

// Operator precedence levels for minimal parenthesization.
func precedence(op Op) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpNot:
		return 3
	case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE:
		return 4
	case OpAdd, OpSub:
		return 5
	case OpMul, OpDiv:
		return 6
	case OpNeg:
		return 7
	}
	return 8
}

// exprString renders an expression, adding parentheses only where required
// by the surrounding precedence context.
func exprString(e Expr, parentPrec int) string {
	switch n := e.(type) {
	case *NumberLit:
		return formatNumber(n.Value)
	case *Ident:
		return n.Name
	case *Call:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = exprString(a, 0)
		}
		return n.Name + "(" + strings.Join(args, ", ") + ")"
	case *Unary:
		prec := precedence(n.Op)
		var s string
		if n.Op == OpNot {
			s = "not " + exprString(n.X, prec)
		} else {
			inner := exprString(n.X, prec)
			if strings.HasPrefix(inner, "-") {
				// "--x" would lex as a line comment; keep the inner
				// negation visible.
				inner = "(" + inner + ")"
			}
			s = "-" + inner
		}
		if prec < parentPrec {
			return "(" + s + ")"
		}
		return s
	case *Binary:
		prec := precedence(n.Op)
		// Left-associative: the right operand needs strictly higher
		// precedence to avoid parens.
		s := exprString(n.L, prec) + " " + n.Op.String() + " " + exprString(n.R, prec+1)
		if prec < parentPrec {
			return "(" + s + ")"
		}
		return s
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// formatNumber renders a float without a trailing ".0" for integral values.
// %g prints the shortest decimal that re-parses to the identical float, so
// literals round-trip exactly. The int64 range guard keeps the integral
// conversion defined for very large values.
func formatNumber(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
