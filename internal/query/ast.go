package query

import (
	"time"

	"gesturecep/internal/cep"
)

// Query is a parsed gesture detection query: the output value emitted on
// detection plus the pattern to match.
type Query struct {
	// Output is the string literal after SELECT, e.g. "swipe_right". It
	// becomes the gesture name reported to listening applications.
	Output string
	// Measures are optional scalar expressions after the output name,
	// evaluated on the final matched tuple of each detection — "some
	// measures that are calculated directly on the stream during the
	// detection process, e.g., joint positions" (§3.3.4).
	Measures []Expr
	// Pattern is the MATCHING clause.
	Pattern *PatternNode
}

// PatternNode is one level of a (possibly nested) sequence pattern. Each
// level may carry its own `within` constraint; `select`/`consume` policies
// are syntactically allowed at every level (as in the paper's Fig. 1) but
// only the outermost level's policies govern execution — nested policies
// are preserved for faithful round-tripping.
type PatternNode struct {
	Terms []*Term

	HasWithin bool
	Within    time.Duration

	HasSelect bool
	Select    cep.SelectPolicy

	HasConsume bool
	Consume    cep.ConsumePolicy
}

// Term is one element of a sequence: either an event atom or a
// parenthesized sub-pattern.
type Term struct {
	Atom  *EventAtom   // non-nil for source(expr) terms
	Group *PatternNode // non-nil for ( pattern ) terms
}

// EventAtom matches a single tuple of the named source stream satisfying
// the predicate expression, e.g. kinect(abs(rHand_x - 400) < 50).
type EventAtom struct {
	Source string
	Pred   Expr
}

// Expr is a predicate or arithmetic expression node.
type Expr interface{ isExpr() }

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
}

// Ident references a stream attribute by name.
type Ident struct {
	Name string
}

// Call invokes a built-in or user-defined function, e.g. abs(x) or
// rpy_yaw(...).
type Call struct {
	Name string
	Args []Expr
}

// Unary is prefix minus/plus or logical not.
type Unary struct {
	Op Op
	X  Expr
}

// Binary is an infix operation.
type Binary struct {
	Op   Op
	L, R Expr
}

func (*NumberLit) isExpr() {}
func (*Ident) isExpr()     {}
func (*Call) isExpr()      {}
func (*Unary) isExpr()     {}
func (*Binary) isExpr()    {}

// Op enumerates expression operators.
type Op int

const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpNeg
	OpLT
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	OpAnd
	OpOr
	OpNot
)

var opText = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpNeg: "-",
	OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=", OpEQ: "=", OpNE: "!=",
	OpAnd: "and", OpOr: "or", OpNot: "not",
}

// String implements fmt.Stringer.
func (o Op) String() string { return opText[o] }

// Walk visits every expression node in depth-first order, parents first.
// It stops early when f returns false.
func Walk(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch n := e.(type) {
	case *Unary:
		Walk(n.X, f)
	case *Binary:
		Walk(n.L, f)
		Walk(n.R, f)
	case *Call:
		for _, a := range n.Args {
			Walk(a, f)
		}
	}
}

// Idents returns the distinct attribute names referenced by e, in first-use
// order.
func Idents(e Expr) []string {
	seen := make(map[string]bool)
	var out []string
	Walk(e, func(x Expr) bool {
		if id, ok := x.(*Ident); ok && !seen[id.Name] {
			seen[id.Name] = true
			out = append(out, id.Name)
		}
		return true
	})
	return out
}

// Atoms returns all event atoms of the pattern in sequence order.
func (p *PatternNode) Atoms() []*EventAtom {
	var out []*EventAtom
	var rec func(*PatternNode)
	rec = func(n *PatternNode) {
		for _, t := range n.Terms {
			if t.Atom != nil {
				out = append(out, t.Atom)
			} else if t.Group != nil {
				rec(t.Group)
			}
		}
	}
	rec(p)
	return out
}
