package query

import (
	"errors"
	"reflect"
	"testing"
)

// Go-native fuzz targets for the query front end. The contracts:
//
//   - Lex and Parse never panic, whatever bytes arrive (queries reach the
//     server over the network in the serving deployment);
//   - every input that parses must print → re-parse to an equal AST, with
//     the printed form a fixed point of Print ∘ Parse.
//
// Equality is modulo AND-associativity of atom predicates: the printer lays
// the top-level conjunct chain out one per line and the parser re-joins it
// left-deep, so both sides are canonicalized the same way before comparing.

// fuzzSeeds are representative inputs: learner-generated query shapes
// (mirroring learn's §3.3.4 output — this package cannot import learn
// without a cycle), handwritten corner cases, and malformed fragments.
var fuzzSeeds = []string{
	// Learner-style 3-pose query with nested groups and tails.
	`SELECT "swipe_right"
MATCHING (
  kinect_t(
    abs(rHand_x - torso_x - 0) < 50 and
    abs(rHand_y - torso_y - 150) < 50 and
    abs(rHand_z - torso_z + 120) < 50
  ) ->
  kinect_t(
    abs(rHand_x - torso_x - 180) < 50 and
    abs(rHand_y - torso_y - 150) < 50
  )
  within 1 seconds select first consume all
) ->
kinect_t(abs(rHand_x - torso_x - 360) < 50)
within 2 seconds select first consume all;`,
	// Output measures, arithmetic, or/not, comparison zoo.
	`SELECT "push", rHand_z - torso_z, abs(rHand_x) * 2
MATCHING kinect_t(not (a < 1 or b >= 2) and c != 3 and d = 4 / -5)
within 500 milliseconds;`,
	// Single-quoted output, unit variants, sub-second within.
	`SELECT 'g"x' MATCHING kinect(a <= 1.5e-3) within 0.25 secs select all consume none;`,
	`SELECT "g" MATCHING kinect(a < 1) within 2 minutes;`,
	`SELECT "g" MATCHING k(a<>1) -> k(b==2);`,
	// Comment handling.
	"SELECT \"g\" -- trailing comment\nMATCHING kinect(a < 1); -- done",
	// Malformed fragments to steer mutation.
	`SELECT "g" MATCHING kinect(a <`,
	`SELECT MATCHING;`,
	`within within within`,
	"SELECT \"unterminated",
	`SELECT "g" MATCHING kinect(a < 1) within 9e999 seconds;`,
}

// canonPattern rebuilds a pattern with every atom predicate's top-level AND
// chain re-associated left-deep, mirroring what print → re-parse does.
func canonPattern(p *PatternNode) *PatternNode {
	out := &PatternNode{
		HasWithin: p.HasWithin, Within: p.Within,
		HasSelect: p.HasSelect, Select: p.Select,
		HasConsume: p.HasConsume, Consume: p.Consume,
	}
	for _, t := range p.Terms {
		if t.Atom != nil {
			out.Terms = append(out.Terms, &Term{Atom: &EventAtom{
				Source: t.Atom.Source,
				Pred:   canonPred(t.Atom.Pred),
			}})
		} else {
			out.Terms = append(out.Terms, &Term{Group: canonPattern(t.Group)})
		}
	}
	return out
}

// canonPred re-associates the top-level AND chain left-deep. Conjuncts are
// not rewritten further: below the chain the printer preserves structure
// exactly (parenthesizing by precedence), so no normalization is needed.
func canonPred(e Expr) Expr {
	cs := splitAnd(e)
	out := cs[0]
	for _, c := range cs[1:] {
		out = &Binary{Op: OpAnd, L: out, R: c}
	}
	return out
}

func canonQuery(q *Query) *Query {
	return &Query{Output: q.Output, Measures: q.Measures, Pattern: canonPattern(q.Pattern)}
}

// FuzzParseQuery checks that the parser never panics and that parsed queries
// survive a print → re-parse round trip with an equal AST.
func FuzzParseQuery(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("Parse error is not a *SyntaxError: %v (input %q)", err, src)
			}
			return
		}
		printed := Print(q)
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed query does not re-parse: %v\ninput: %q\nprinted:\n%s", err, src, printed)
		}
		if !reflect.DeepEqual(canonQuery(q), canonQuery(q2)) {
			t.Fatalf("re-parsed AST differs\ninput: %q\nprinted:\n%s\nq1: %#v\nq2: %#v", src, printed, q, q2)
		}
		if printed2 := Print(q2); printed2 != printed {
			t.Fatalf("Print is not a fixed point\ninput: %q\nfirst:\n%s\nsecond:\n%s", src, printed, printed2)
		}
	})
}

// FuzzLexer checks that the lexer never panics, reports only SyntaxErrors,
// and terminates every successful token stream with EOF at sane positions.
func FuzzLexer(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Add("\x00\xff\xfe")
	f.Add("1e99999 'x")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("Lex error is not a *SyntaxError: %v (input %q)", err, src)
			}
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("token stream not EOF-terminated for %q: %v", src, toks)
		}
		for _, tok := range toks {
			if tok.Line < 1 || tok.Col < 1 {
				t.Fatalf("token %v has invalid position %d:%d (input %q)", tok, tok.Line, tok.Col, src)
			}
		}
	})
}
