package query

import (
	"strings"
	"testing"
	"time"

	"gesturecep/internal/cep"
	"gesturecep/internal/stream"
)

// fig1Query is the exact swipe_right query from Fig. 1 of the paper.
const fig1Query = `
SELECT "swipe_right"
MATCHING (
  kinect(
    abs(rHand_x - torso_x - 0) < 50 and
    abs(rHand_y - torso_y - 150) < 50 and
    abs(rHand_z - torso_z + 120) < 50
  ) ->
  kinect(
    abs(rHand_x - torso_x - 400) < 50 and
    abs(rHand_y - torso_y - 150) < 50 and
    abs(rHand_z - torso_z + 420) < 50
  )
  within 1 seconds select first consume all
) ->
kinect(
  abs(rHand_x - torso_x - 800) < 50 and
  abs(rHand_y - torso_y - 150) < 50 and
  abs(rHand_z - torso_z + 120) < 50
)
within 1 seconds select first consume all;
`

func kinectSchema(t *testing.T) *stream.Schema {
	t.Helper()
	s, err := stream.NewSchema("torso_x", "torso_y", "torso_z", "rHand_x", "rHand_y", "rHand_z")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`SELECT "g" MATCHING kinect(a < 1.5 and b >= -2) -> k(x != 3) within 500 ms;`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokenKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	want := []TokenKind{
		TokSelect, TokString, TokMatching, TokIdent, TokLParen, TokIdent, TokLT, TokNumber,
		TokAnd, TokIdent, TokGE, TokMinus, TokNumber, TokRParen, TokArrow, TokIdent, TokLParen,
		TokIdent, TokNE, TokNumber, TokRParen, TokWithin, TokNumber, TokIdent, TokSemicolon, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("-- a comment\nfoo -- trailing\n42")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Kind != TokIdent || toks[1].Kind != TokNumber {
		t.Errorf("tokens = %v", toks)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("1 2.5 .75 1e3 2.5E-2")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2.5, 0.75, 1000, 0.025}
	for i, w := range want {
		if toks[i].Num != w {
			t.Errorf("number %d = %v, want %v", i, toks[i].Num, w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "@", "!", "\"line\nbreak\""} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) did not fail", src)
		}
	}
	// Errors carry positions.
	_, err := Lex("a\n  @")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 2 || se.Col != 3 {
		t.Errorf("error position = %d:%d", se.Line, se.Col)
	}
}

func TestParseFig1(t *testing.T) {
	q, err := Parse(fig1Query)
	if err != nil {
		t.Fatal(err)
	}
	if q.Output != "swipe_right" {
		t.Errorf("output = %q", q.Output)
	}
	if len(q.Pattern.Terms) != 2 {
		t.Fatalf("top-level terms = %d, want 2", len(q.Pattern.Terms))
	}
	if !q.Pattern.HasWithin || q.Pattern.Within != time.Second {
		t.Errorf("outer within = %v (has=%v)", q.Pattern.Within, q.Pattern.HasWithin)
	}
	if !q.Pattern.HasSelect || q.Pattern.Select != cep.SelectFirst {
		t.Error("outer select first missing")
	}
	if !q.Pattern.HasConsume || q.Pattern.Consume != cep.ConsumeAll {
		t.Error("outer consume all missing")
	}
	group := q.Pattern.Terms[0].Group
	if group == nil {
		t.Fatal("first term should be a group")
	}
	if len(group.Terms) != 2 || group.Terms[0].Atom == nil || group.Terms[1].Atom == nil {
		t.Fatal("group should contain two atoms")
	}
	if !group.HasWithin || group.Within != time.Second {
		t.Error("inner within missing")
	}
	atoms := q.Pattern.Atoms()
	if len(atoms) != 3 {
		t.Fatalf("atom count = %d, want 3", len(atoms))
	}
	for _, a := range atoms {
		if a.Source != "kinect" {
			t.Errorf("atom source = %q", a.Source)
		}
		ids := Idents(a.Pred)
		if len(ids) != 6 {
			t.Errorf("atom references %d attributes, want 6: %v", len(ids), ids)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,                                       // empty
		`MATCHING kinect(a < 1);`,                // missing select
		`SELECT "g" kinect(a < 1);`,              // missing matching
		`SELECT "g" MATCHING ;`,                  // no pattern
		`SELECT "g" MATCHING kinect(a < 1)`,      // missing semicolon
		`SELECT "g" MATCHING kinect(a < 1) -> ;`, // dangling arrow
		`SELECT "g" MATCHING kinect(a < 1) within 0 seconds;`,                  // zero within
		`SELECT "g" MATCHING kinect(a < 1) within 1 fortnights;`,               // bad unit
		`SELECT "g" MATCHING kinect(a < 1) select sometimes;`,                  // bad select policy
		`SELECT "g" MATCHING kinect(a < 1) consume some;`,                      // bad consume policy
		`SELECT "g" MATCHING kinect(a < 1) within 1 seconds within 2 seconds;`, // dup within
		`SELECT "g" MATCHING kinect(a < 1) select first select all;`,           // dup select
		`SELECT "g" MATCHING kinect(a < 1) consume all consume none;`,          // dup consume
		`SELECT "g" MATCHING (kinect(a < 1);`,                                  // unbalanced paren
		`SELECT "g" MATCHING kinect(a <);`,                                     // bad expression
		`SELECT "g" MATCHING kinect(f(;`,                                       // bad call
		`SELECT "g" MATCHING kinect(a < 1); extra`,                             // trailing input
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) did not fail", src)
		}
	}
}

func TestParseAll(t *testing.T) {
	src := `SELECT "a" MATCHING kinect(x < 1); SELECT "b" MATCHING kinect(x > 1);`
	qs, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 || qs[0].Output != "a" || qs[1].Output != "b" {
		t.Errorf("ParseAll = %v", qs)
	}
	if _, err := ParseAll(""); err == nil {
		t.Error("empty input not rejected")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	q, err := Parse(`SELECT "g" MATCHING kinect(a + b * 2 < 10 or not c > 1 and d = 2);`)
	if err != nil {
		t.Fatal(err)
	}
	pred := q.Pattern.Terms[0].Atom.Pred
	// Top node must be OR (lowest precedence).
	or, ok := pred.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("top node = %T %v", pred, pred)
	}
	// Left of or: (a + b*2) < 10 with * bound tighter than +.
	lt := or.L.(*Binary)
	if lt.Op != OpLT {
		t.Errorf("left of or = %v", lt.Op)
	}
	add := lt.L.(*Binary)
	if add.Op != OpAdd {
		t.Errorf("expected +, got %v", add.Op)
	}
	if mul := add.R.(*Binary); mul.Op != OpMul {
		t.Errorf("expected * on right of +, got %v", mul.Op)
	}
	// Right of or: AND of (not c>1) and (d = 2).
	and := or.R.(*Binary)
	if and.Op != OpAnd {
		t.Fatalf("right of or = %v", and.Op)
	}
	if not, ok := and.L.(*Unary); !ok || not.Op != OpNot {
		t.Errorf("expected not, got %v", and.L)
	}
}

func TestCompileFig1(t *testing.T) {
	env := NewEnv()
	env.Schemas["kinect"] = kinectSchema(t)
	q, err := Parse(fig1Query)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CompileQuery(q, env)
	if err != nil {
		t.Fatal(err)
	}
	if c.Source != "kinect" || c.NumAtoms != 3 {
		t.Errorf("compiled source=%q atoms=%d", c.Source, c.NumAtoms)
	}
	if c.Select != cep.SelectFirst || c.Consume != cep.ConsumeAll {
		t.Error("policies not resolved")
	}

	nfa, err := cep.Compile(c.Pattern, c.Select, c.Consume)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the NFA through the three poses of Fig. 1 (torso at origin for
	// simplicity; fields: torso_x..z, rHand_x..z). Pose z-offsets are
	// -120, -420, -120 (the query uses "+ 120" for center -120).
	base := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
	mk := func(ms int, hx, hy, hz float64) stream.Tuple {
		return stream.Tuple{Ts: base.Add(time.Duration(ms) * time.Millisecond),
			Fields: []float64{0, 0, 0, hx, hy, hz}}
	}
	inputs := []stream.Tuple{
		mk(0, 0, 150, -120),
		mk(200, 200, 150, -300), // intermediate, matches nothing
		mk(400, 400, 150, -420),
		mk(800, 800, 150, -120),
	}
	var matches int
	for _, in := range inputs {
		matches += len(nfa.Process(in))
	}
	if matches != 1 {
		t.Fatalf("Fig. 1 trace produced %d matches, want 1", matches)
	}
}

func TestCompileErrors(t *testing.T) {
	env := NewEnv()
	env.Schemas["kinect"] = kinectSchema(t)

	parseOK := func(src string) *Query {
		t.Helper()
		q, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	cases := []struct {
		name string
		q    *Query
		env  *Env
	}{
		{"nil query", nil, env},
		{"unknown source", parseOK(`SELECT "g" MATCHING nosuch(a < 1);`), env},
		{"unknown attribute", parseOK(`SELECT "g" MATCHING kinect(nope < 1);`), env},
		{"unknown function", parseOK(`SELECT "g" MATCHING kinect(frobnicate(torso_x) < 1);`), env},
		{"wrong arity", parseOK(`SELECT "g" MATCHING kinect(abs(torso_x, torso_y) < 1);`), env},
		{"mixed sources", parseOK(`SELECT "g" MATCHING kinect(torso_x < 1) -> other(torso_x < 1);`), env},
		{"nil env", parseOK(`SELECT "g" MATCHING kinect(torso_x < 1);`), nil},
	}
	for _, c := range cases {
		if _, err := CompileQuery(c.q, c.env); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestCompileScalarAndUDFs(t *testing.T) {
	schema := kinectSchema(t)
	udfs := BuiltinUDFs()
	q, err := Parse(`SELECT "g" MATCHING kinect(dist(torso_x, torso_y, torso_z, rHand_x, rHand_y, rHand_z) < 100);`)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := CompilePredicate(q.Pattern.Terms[0].Atom.Pred, schema, udfs)
	if err != nil {
		t.Fatal(err)
	}
	near := stream.Tuple{Fields: []float64{0, 0, 0, 30, 40, 0}} // dist 50
	far := stream.Tuple{Fields: []float64{0, 0, 0, 300, 400, 0}}
	if !pred(near) {
		t.Error("near point should satisfy dist < 100")
	}
	if pred(far) {
		t.Error("far point should not satisfy dist < 100")
	}

	// min/max variadic + scalar compilation.
	e, err := Parse(`SELECT "g" MATCHING kinect(max(torso_x, rHand_x, 5) - min(torso_x, 0) > 0);`)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := CompileScalar(e.Pattern.Terms[0].Atom.Pred, schema, udfs)
	if err != nil {
		t.Fatal(err)
	}
	tup := stream.Tuple{Fields: []float64{-3, 0, 0, 7, 0, 0}}
	if sc(tup) != 1 { // max(-3,7,5)-min(-3,0)=7-(-3)=10 > 0 → true → 1
		t.Errorf("scalar = %v, want 1", sc(tup))
	}
}

func TestPrintRoundTrip(t *testing.T) {
	q, err := Parse(fig1Query)
	if err != nil {
		t.Fatal(err)
	}
	text := Print(q)
	q2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of printed query failed: %v\n%s", err, text)
	}
	if Print(q2) != text {
		t.Errorf("print not idempotent:\n--- first ---\n%s--- second ---\n%s", text, Print(q2))
	}
	// Structure preserved.
	if q2.Output != q.Output || len(q2.Pattern.Atoms()) != len(q.Pattern.Atoms()) {
		t.Error("round trip changed structure")
	}
	if !q2.Pattern.HasWithin || q2.Pattern.Within != q.Pattern.Within {
		t.Error("round trip lost within")
	}
	// The printed form contains the paper's characteristic fragments.
	for _, frag := range []string{
		`SELECT "swipe_right"`, "within 1 seconds", "select first", "consume all", "->",
		"abs(rHand_x - torso_x - 400) < 50",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("printed query missing %q:\n%s", frag, text)
		}
	}
}

func TestPrintPrecedenceParens(t *testing.T) {
	srcs := []string{
		`SELECT "g" MATCHING kinect((a + b) * c < 1);`,
		`SELECT "g" MATCHING kinect(a - (b - c) > 0);`,
		`SELECT "g" MATCHING kinect((a < 1 or b < 2) and c < 3);`,
		`SELECT "g" MATCHING kinect(not (a < 1 and b < 2));`,
		`SELECT "g" MATCHING kinect(-(a + b) < 1);`,
		`SELECT "g" MATCHING kinect(a / (b * c) != 0);`,
	}
	schema, _ := stream.NewSchema("a", "b", "c")
	env := NewEnv()
	env.Schemas["kinect"] = schema
	for _, src := range srcs {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		text := Print(q)
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse failed for %s:\n%s\n%v", src, text, err)
		}
		// Semantics must be preserved: compile both and compare on samples.
		p1, err := CompilePredicate(q.Pattern.Terms[0].Atom.Pred, schema, env.UDFs)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := CompilePredicate(q2.Pattern.Terms[0].Atom.Pred, schema, env.UDFs)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range [][]float64{{0, 0, 0}, {1, 2, 3}, {-1, 0.5, 2}, {10, -10, 0.1}} {
			tup := stream.Tuple{Fields: f}
			if p1(tup) != p2(tup) {
				t.Errorf("%s: round trip changed semantics on %v\nprinted:\n%s", src, f, text)
			}
		}
	}
}

func TestTokenStrings(t *testing.T) {
	if TokArrow.String() != "'->'" {
		t.Errorf("TokArrow = %s", TokArrow)
	}
	if TokenKind(99).String() == "" {
		t.Error("unknown kind should render")
	}
	tok := Token{Kind: TokIdent, Text: "abc"}
	if !strings.Contains(tok.String(), "abc") {
		t.Errorf("token string = %s", tok)
	}
}

func TestDurationUnits(t *testing.T) {
	cases := []struct {
		src  string
		want time.Duration
	}{
		{`SELECT "g" MATCHING kinect(a < 1) within 2 seconds;`, 2 * time.Second},
		{`SELECT "g" MATCHING kinect(a < 1) within 500 ms;`, 500 * time.Millisecond},
		{`SELECT "g" MATCHING kinect(a < 1) within 1 minutes;`, time.Minute},
		{`SELECT "g" MATCHING kinect(a < 1) within 0.5 seconds;`, 500 * time.Millisecond},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if q.Pattern.Within != c.want {
			t.Errorf("%s: within = %v, want %v", c.src, q.Pattern.Within, c.want)
		}
	}
}

func TestParseAndPrintMeasures(t *testing.T) {
	src := `SELECT "push", rHand_z, dist(torso_x, torso_y, torso_z, rHand_x, rHand_y, rHand_z) MATCHING kinect(rHand_z < 1);`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Measures) != 2 {
		t.Fatalf("measures = %d", len(q.Measures))
	}
	env := NewEnv()
	env.Schemas["kinect"] = kinectSchema(t)
	c, err := CompileQuery(q, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Measures) != 2 {
		t.Fatalf("compiled measures = %d", len(c.Measures))
	}
	tup := stream.Tuple{Fields: []float64{0, 0, 0, 30, 40, 0}}
	if got := c.Measures[1](tup); got != 50 {
		t.Errorf("dist measure = %v", got)
	}
	// Round trip preserves measures.
	text := Print(q)
	if !strings.Contains(text, `"push", rHand_z, dist(`) {
		t.Errorf("printed measures missing:\n%s", text)
	}
	q2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if len(q2.Measures) != 2 {
		t.Error("round trip lost measures")
	}
	// A measure referencing an unknown attribute fails compilation.
	bad, err := Parse(`SELECT "g", nosuch MATCHING kinect(torso_x < 1);`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileQuery(bad, env); err == nil {
		t.Error("unknown measure attribute accepted")
	}
}
