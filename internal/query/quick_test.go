package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gesturecep/internal/stream"
)

// Random-AST round-trip property: Print ∘ Parse preserves semantics. An
// expression generator builds arbitrary predicate trees; the printed query
// must re-parse and evaluate identically on random tuples.

var quickAttrs = []string{"a", "b", "c"}

// genExpr builds a random expression tree of bounded depth. Arithmetic
// layers sit below comparisons, comparisons below logic — the same
// stratification the grammar guarantees, so every generated tree is
// expressible.
func genExpr(rng *rand.Rand, depth int) Expr {
	return genLogic(rng, depth)
}

func genLogic(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		return genComparison(rng, depth)
	}
	switch rng.Intn(3) {
	case 0:
		return &Binary{Op: OpAnd, L: genLogic(rng, depth-1), R: genLogic(rng, depth-1)}
	case 1:
		return &Binary{Op: OpOr, L: genLogic(rng, depth-1), R: genLogic(rng, depth-1)}
	default:
		return &Unary{Op: OpNot, X: genLogic(rng, depth-1)}
	}
}

var cmpOpsList = []Op{OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE}

func genComparison(rng *rand.Rand, depth int) Expr {
	return &Binary{
		Op: cmpOpsList[rng.Intn(len(cmpOpsList))],
		L:  genArith(rng, depth),
		R:  genArith(rng, depth),
	}
}

var arithOpsList = []Op{OpAdd, OpSub, OpMul, OpDiv}

func genArith(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		return genLeaf(rng)
	}
	switch rng.Intn(6) {
	case 0:
		return &Unary{Op: OpNeg, X: genArith(rng, depth-1)}
	case 1:
		return &Call{Name: "abs", Args: []Expr{genArith(rng, depth-1)}}
	case 2:
		return &Call{Name: "min", Args: []Expr{genArith(rng, depth-1), genArith(rng, depth-1)}}
	default:
		return &Binary{
			Op: arithOpsList[rng.Intn(len(arithOpsList))],
			L:  genArith(rng, depth-1),
			R:  genArith(rng, depth-1),
		}
	}
}

func genLeaf(rng *rand.Rand) Expr {
	if rng.Intn(2) == 0 {
		// Integral literals only: the printer renders floats with %g,
		// which round-trips exactly for integers and short decimals.
		return &NumberLit{Value: float64(rng.Intn(201) - 100)}
	}
	return &Ident{Name: quickAttrs[rng.Intn(len(quickAttrs))]}
}

func TestQuickPrintParseRoundTrip(t *testing.T) {
	schema := stream.MustSchema(quickAttrs...)
	udfs := BuiltinUDFs()

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pred := genExpr(rng, 3)
		q := &Query{
			Output: "prop",
			Pattern: &PatternNode{
				Terms: []*Term{{Atom: &EventAtom{Source: "s", Pred: pred}}},
			},
		}
		text := Print(q)
		q2, err := Parse(text)
		if err != nil {
			t.Logf("seed %d: re-parse failed: %v\n%s", seed, err, text)
			return false
		}
		ev1, err := CompileScalar(pred, schema, udfs)
		if err != nil {
			t.Logf("seed %d: compile original: %v", seed, err)
			return false
		}
		ev2, err := CompileScalar(q2.Pattern.Terms[0].Atom.Pred, schema, udfs)
		if err != nil {
			t.Logf("seed %d: compile reparsed: %v\n%s", seed, err, text)
			return false
		}
		for trial := 0; trial < 16; trial++ {
			tup := stream.Tuple{Fields: []float64{
				float64(rng.Intn(41) - 20),
				float64(rng.Intn(41) - 20),
				float64(rng.Intn(41) - 20),
			}}
			v1, v2 := ev1(tup), ev2(tup)
			same := v1 == v2 || (math.IsNaN(v1) && math.IsNaN(v2))
			if !same {
				t.Logf("seed %d: eval diverged on %v: %v vs %v\n%s", seed, tup.Fields, v1, v2, text)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickPatternRoundTrip round-trips whole random pattern structures
// (nesting, within, policies).
func TestQuickPatternRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := &Query{Output: "p", Pattern: genPattern(rng, 2)}
		text := Print(q)
		q2, err := Parse(text)
		if err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, text)
			return false
		}
		return patternsEqual(q.Pattern, q2.Pattern)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func genPattern(rng *rand.Rand, depth int) *PatternNode {
	n := &PatternNode{}
	terms := rng.Intn(3) + 1
	for i := 0; i < terms; i++ {
		if depth > 0 && rng.Intn(3) == 0 {
			n.Terms = append(n.Terms, &Term{Group: genPattern(rng, depth-1)})
		} else {
			n.Terms = append(n.Terms, &Term{Atom: &EventAtom{
				Source: "s",
				Pred:   genComparison(rng, 1),
			}})
		}
	}
	if rng.Intn(2) == 0 {
		n.HasWithin = true
		n.Within = time.Duration(rng.Intn(5)+1) * time.Second
	}
	if rng.Intn(2) == 0 {
		n.HasSelect = true
		n.Select = 0
		if rng.Intn(2) == 0 {
			n.Select = 1
		}
	}
	if rng.Intn(2) == 0 {
		n.HasConsume = true
		n.Consume = 0
		if rng.Intn(2) == 0 {
			n.Consume = 1
		}
	}
	return n
}

func patternsEqual(a, b *PatternNode) bool {
	if a.HasWithin != b.HasWithin || (a.HasWithin && a.Within != b.Within) {
		return false
	}
	if a.HasSelect != b.HasSelect || (a.HasSelect && a.Select != b.Select) {
		return false
	}
	if a.HasConsume != b.HasConsume || (a.HasConsume && a.Consume != b.Consume) {
		return false
	}
	if len(a.Terms) != len(b.Terms) {
		return false
	}
	for i := range a.Terms {
		ta, tb := a.Terms[i], b.Terms[i]
		if (ta.Group == nil) != (tb.Group == nil) {
			// A single-term parenthesized group may legitimately re-parse
			// as structure; the printer always emits groups with parens,
			// so structures must match exactly.
			return false
		}
		if ta.Group != nil {
			if !patternsEqual(ta.Group, tb.Group) {
				return false
			}
			continue
		}
		if ta.Atom.Source != tb.Atom.Source {
			return false
		}
	}
	return true
}
