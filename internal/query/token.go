// Package query implements the declarative CEP query dialect the paper uses
// for gesture definitions (Fig. 1):
//
//	SELECT "swipe_right"
//	MATCHING (
//	  kinect(
//	    abs(rHand_x - torso_x - 0) < 50 and
//	    abs(rHand_y - torso_y - 150) < 50 and
//	    abs(rHand_z - torso_z + 120) < 50
//	  ) ->
//	  kinect( ... )
//	  within 1 seconds select first consume all
//	) ->
//	kinect( ... )
//	within 1 seconds select first consume all;
//
// The package provides a lexer, a recursive-descent parser producing an AST,
// a semantic checker + compiler that turns the AST into an executable
// cep.Pattern against a stream schema and UDF registry, and a pretty-printer
// used by the learner's query generation step (§3.3.4).
package query

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString

	// Punctuation and operators.
	TokLParen    // (
	TokRParen    // )
	TokComma     // ,
	TokSemicolon // ;
	TokArrow     // ->
	TokPlus      // +
	TokMinus     // -
	TokStar      // *
	TokSlash     // /
	TokLT        // <
	TokLE        // <=
	TokGT        // >
	TokGE        // >=
	TokEQ        // = or ==
	TokNE        // != or <>

	// Keywords (case-insensitive).
	TokSelect
	TokMatching
	TokWithin
	TokConsume
	TokAnd
	TokOr
	TokNot
)

var kindNames = map[TokenKind]string{
	TokEOF:       "end of input",
	TokIdent:     "identifier",
	TokNumber:    "number",
	TokString:    "string",
	TokLParen:    "'('",
	TokRParen:    "')'",
	TokComma:     "','",
	TokSemicolon: "';'",
	TokArrow:     "'->'",
	TokPlus:      "'+'",
	TokMinus:     "'-'",
	TokStar:      "'*'",
	TokSlash:     "'/'",
	TokLT:        "'<'",
	TokLE:        "'<='",
	TokGT:        "'>'",
	TokGE:        "'>='",
	TokEQ:        "'='",
	TokNE:        "'!='",
	TokSelect:    "'select'",
	TokMatching:  "'matching'",
	TokWithin:    "'within'",
	TokConsume:   "'consume'",
	TokAnd:       "'and'",
	TokOr:        "'or'",
	TokNot:       "'not'",
}

// String implements fmt.Stringer.
func (k TokenKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// keywords maps lower-cased identifier text to keyword kinds. Note that
// `first`, `all`, `none` and time units remain plain identifiers because
// they only have meaning in specific clause positions.
var keywords = map[string]TokenKind{
	"select":   TokSelect,
	"matching": TokMatching,
	"within":   TokWithin,
	"consume":  TokConsume,
	"and":      TokAnd,
	"or":       TokOr,
	"not":      TokNot,
}

// Token is one lexical token with its source position (1-based line and
// column of the first character).
type Token struct {
	Kind TokenKind
	Text string  // raw text (unquoted for strings, lower-cased for keywords)
	Num  float64 // value for TokNumber
	Line int
	Col  int
}

// String implements fmt.Stringer.
func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokNumber:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	case TokString:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return t.Kind.String()
	}
}
