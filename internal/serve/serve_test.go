package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/stream"
	"gesturecep/internal/transform"
)

func testTime() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

// neverQuery is a cheap valid plan that can never fire; backpressure tests
// use it so processing cost is just the pipeline.
const neverQuery = `SELECT "never" MATCHING kinect_t(rHand_y > 100000);`

var (
	learnOnce  sync.Once
	learnedTxt string
	learnErr   error
)

// swipeQuery learns swipe_right once per test binary and returns the
// generated query text.
func swipeQuery(t *testing.T) string {
	t.Helper()
	learnOnce.Do(func() {
		sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 1)
		if err != nil {
			learnErr = err
			return
		}
		samples, err := sim.Samples(kinect.StandardGestures()[kinect.GestureSwipeRight], 4,
			testTime(), kinect.PerformOpts{PathJitter: 25})
		if err != nil {
			learnErr = err
			return
		}
		res, err := learn.Learn("swipe_right", samples, learn.DefaultConfig())
		if err != nil {
			learnErr = err
			return
		}
		learnedTxt = res.QueryText
	})
	if learnErr != nil {
		t.Fatal(learnErr)
	}
	return learnedTxt
}

// playbackFrames synthesizes a session with two swipes and a distractor.
func playbackFrames(t *testing.T, seed int64) []kinect.Frame {
	t.Helper()
	player, err := kinect.NewSimulator(kinect.ChildProfile(), kinect.DefaultNoise(), seed)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := player.RunScript([]kinect.ScriptItem{
		{Idle: 500 * time.Millisecond},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
		{Gesture: kinect.GestureCircle},
		{Idle: 500 * time.Millisecond},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: 500 * time.Millisecond},
	}, testTime(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return sess.Frames
}

func newTestManager(t *testing.T, cfg Config, plans map[string]string) *Manager {
	t.Helper()
	reg := NewRegistry()
	for name, text := range plans {
		if _, err := reg.Register(name, text); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewManager(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// TestDeterminism feeds the same frames to a served session and to a bare
// engine and requires byte-identical detections: the serving layer must not
// change detection semantics.
func TestDeterminism(t *testing.T) {
	qtext := swipeQuery(t)
	frames := playbackFrames(t, 7)

	// Served path.
	m := newTestManager(t, Config{Shards: 4}, map[string]string{"swipe_right": qtext})
	sess, err := m.CreateSession("user-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.FeedFrames(frames); err != nil {
		t.Fatal(err)
	}
	sess.Flush()
	served := sess.Detections()

	// Bare engine replay of the same frames through the same shared plan.
	plan, _ := m.Registry().Get("swipe_right")
	engine := anduin.New()
	raw, _, err := engine.KinectPipeline(transform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var bare []anduin.Detection
	engine.Subscribe(func(d anduin.Detection) { bare = append(bare, d) })
	if _, err := engine.DeployPlan(plan); err != nil {
		t.Fatal(err)
	}
	if err := stream.Replay(raw, kinect.ToTuples(frames)); err != nil {
		t.Fatal(err)
	}

	if len(served) == 0 {
		t.Fatal("served session detected nothing; expected at least one swipe_right")
	}
	got, want := fmt.Sprintf("%+v", served), fmt.Sprintf("%+v", bare)
	if got != want {
		t.Errorf("served detections diverge from bare engine:\nserved: %s\nbare:   %s", got, want)
	}
}

// TestConcurrentSessions runs many sessions fed from independent goroutines
// (the -race workhorse) and checks that every session sees the identical
// detection sequence.
func TestConcurrentSessions(t *testing.T) {
	qtext := swipeQuery(t)
	frames := playbackFrames(t, 7)
	const n = 24

	m := newTestManager(t, Config{Shards: 8, QueueDepth: 64}, map[string]string{"swipe_right": qtext})
	sessions := make([]*Session, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := m.CreateSession(fmt.Sprintf("user-%d", i))
			if err != nil {
				errs <- err
				return
			}
			sessions[i] = s
			if err := s.FeedFrames(frames); err != nil {
				errs <- err
			}
		}(i)
	}
	// Poll metrics concurrently to exercise the snapshot path under race.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				m.Metrics()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(done)
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	m.Flush()

	want := fmt.Sprintf("%+v", sessions[0].Detections())
	if want == "[]" {
		t.Fatal("no detections in session 0")
	}
	for i, s := range sessions {
		if got := fmt.Sprintf("%+v", s.Detections()); got != want {
			t.Errorf("session %d detections diverge: %s != %s", i, got, want)
		}
	}

	mm := m.Metrics()
	wantTuples := uint64(n * len(frames))
	if mm.Enqueued != wantTuples || mm.Processed != wantTuples || mm.Dropped != 0 {
		t.Errorf("metrics = %s, want %d tuples, 0 drops", mm, wantTuples)
	}
	if mm.Sessions != n {
		t.Errorf("metrics sessions = %d, want %d", mm.Sessions, n)
	}
}

// gatedManager builds a single-shard manager whose worker blocks on a gate
// before processing each tuple, so tests control queue occupancy exactly.
func gatedManager(t *testing.T, cfg Config) (m *Manager, entered chan string, release chan struct{}) {
	t.Helper()
	cfg.Shards = 1
	m = newTestManager(t, cfg, map[string]string{"never": neverQuery})
	entered = make(chan string, 1024)
	release = make(chan struct{})
	m.shards[0].gate = func(env envelope) {
		entered <- env.sess.ID()
		<-release
	}
	return m, entered, release
}

func idleTuples(t *testing.T, n int) []stream.Tuple {
	t.Helper()
	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.NoNoise(), 3)
	if err != nil {
		t.Fatal(err)
	}
	frames := sim.Idle(testTime(), time.Duration(n+2)*33*time.Millisecond)
	tuples := kinect.ToTuples(frames)
	if len(tuples) < n {
		t.Fatalf("only %d idle tuples", len(tuples))
	}
	return tuples[:n]
}

// TestBlockPolicy verifies that a full queue makes Feed wait instead of
// dropping.
func TestBlockPolicy(t *testing.T) {
	m, entered, release := gatedManager(t, Config{QueueDepth: 2, Policy: Block})
	s, err := m.CreateSession("u")
	if err != nil {
		t.Fatal(err)
	}
	tuples := idleTuples(t, 4)

	// Tuple 0 occupies the worker (gate), 1 and 2 fill the queue.
	for i := 0; i < 3; i++ {
		if err := s.FeedTuple(tuples[i]); err != nil {
			t.Fatal(err)
		}
	}
	<-entered // worker holds tuple 0

	fed := make(chan struct{})
	go func() {
		if err := s.FeedTuple(tuples[3]); err != nil {
			t.Error(err)
		}
		close(fed)
	}()
	select {
	case <-fed:
		t.Fatal("Feed returned on a full queue under Block policy")
	case <-time.After(50 * time.Millisecond):
		// Still blocked: correct.
	}

	close(release)
	for i := 0; i < 3; i++ {
		<-entered
	}
	select {
	case <-fed:
	case <-time.After(2 * time.Second):
		t.Fatal("Feed never unblocked after the worker drained the queue")
	}
	s.Flush()
	if in, out, dropped := s.Counters(); in != 4 || out != 4 || dropped != 0 {
		t.Errorf("counters = %d/%d/%d, want 4/4/0", in, out, dropped)
	}
}

// TestDropOldestPolicy verifies that a full queue evicts its head and
// accounts for every drop.
func TestDropOldestPolicy(t *testing.T) {
	m, entered, release := gatedManager(t, Config{QueueDepth: 2, Policy: DropOldest})
	s, err := m.CreateSession("u")
	if err != nil {
		t.Fatal(err)
	}
	tuples := idleTuples(t, 5)

	// Tuple 0 occupies the worker; wait until it is out of the queue so
	// the remaining occupancy is deterministic.
	if err := s.FeedTuple(tuples[0]); err != nil {
		t.Fatal(err)
	}
	<-entered

	// 1 and 2 fill the queue; 3 and 4 must each evict the current head.
	for i := 1; i < 5; i++ {
		if err := s.FeedTuple(tuples[i]); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	s.Flush()

	if in, out, dropped := s.Counters(); in != 5 || out != 5 || dropped != 2 {
		t.Errorf("counters = %d/%d/%d, want in=5 out=5 dropped=2", in, out, dropped)
	}
	mm := m.Metrics()
	if mm.Dropped != 2 || mm.Processed != 3 {
		t.Errorf("metrics = %s, want dropped=2 processed=3", mm)
	}
}

// TestSessionLifecycle covers close semantics: feeding a closed session
// fails, its queued tuples are skipped, and the ID becomes reusable.
func TestSessionLifecycle(t *testing.T) {
	m := newTestManager(t, Config{Shards: 2}, map[string]string{"never": neverQuery})
	s, err := m.CreateSession("u")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateSession("u"); err == nil {
		t.Error("duplicate session id accepted")
	}
	tuples := idleTuples(t, 2)
	if err := s.FeedTuple(tuples[0]); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.FeedTuple(tuples[1]); err == nil {
		t.Error("feed to a closed session succeeded")
	}
	if err := s.Close(); err == nil {
		t.Error("double close succeeded")
	}
	if _, ok := m.Session("u"); ok {
		t.Error("closed session still listed")
	}
	if _, err := m.CreateSession("u"); err != nil {
		t.Errorf("session id not reusable after close: %v", err)
	}
	if got := m.SessionCount(); got != 1 {
		t.Errorf("SessionCount = %d, want 1", got)
	}
}

// TestRegistry covers plan registration errors and hot replacement.
func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Register("never", neverQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("never", neverQuery); err == nil {
		t.Error("duplicate registration accepted")
	}
	if _, err := reg.Register("bad", `SELECT "g" MATCHING nosuch(a < 1);`); err == nil {
		t.Error("query over unknown stream accepted")
	}
	if _, err := reg.Register("syntax", `MATCHING kinect_t(a < 1);`); err == nil {
		t.Error("syntactically invalid query accepted")
	}
	if _, err := reg.Replace("never", neverQuery); err != nil {
		t.Errorf("replace failed: %v", err)
	}
	if _, err := reg.Resolve("ghost"); err == nil {
		t.Error("resolving an unregistered plan succeeded")
	}
	if got := reg.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
	m, err := NewManager(Config{Shards: 1}, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.CreateSession("u", "ghost"); err == nil {
		t.Error("session with unregistered plan accepted")
	}
	if _, err := m.CreateSession(""); err == nil {
		t.Error("empty session id accepted")
	}
}

// TestCloseFromListener closes a session from its own detection listener
// (running on the shard worker) while another session keeps the same
// shard's queue full under Block policy — the deadlock shape where
// CloseSession must not contend with blocked feeders.
func TestCloseFromListener(t *testing.T) {
	const anyQuery = `SELECT "any" MATCHING kinect_t(rHand_y < 100000);`
	reg := NewRegistry()
	if _, err := reg.Register("any", anyQuery); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{Shards: 1, QueueDepth: 2, Policy: Block}, reg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.CreateSession("self")
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	s.OnDetection(func(anduin.Detection) {
		if err := s.Close(); err != nil {
			t.Errorf("close from listener: %v", err)
		}
		close(closed)
	})
	other, err := m.CreateSession("other")
	if err != nil {
		t.Fatal(err)
	}
	tuples := idleTuples(t, 4)

	// Keep the shard queue saturated from a second producer.
	flood := make(chan struct{})
	go func() {
		defer close(flood)
		for i := 0; i < 500; i++ {
			if other.FeedTuple(tuples[i%len(tuples)]) != nil {
				return
			}
		}
	}()
	if err := s.FeedTuple(tuples[0]); err != nil {
		t.Fatal(err)
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: listener-initiated close never completed")
	}
	<-flood
	m.Flush()
	if err := s.FeedTuple(tuples[1]); err == nil {
		t.Error("feed to listener-closed session succeeded")
	}
	m.Close()
}

// TestFeedCloseRace hammers Feed from many goroutines while the manager
// closes mid-stream: every Feed must either error or have its tuple
// drained — no stranded tuples, so the accounting always balances (the
// invariant that keeps Flush from spinning forever).
func TestFeedCloseRace(t *testing.T) {
	for _, pol := range []Policy{Block, DropOldest} {
		t.Run(pol.String(), func(t *testing.T) {
			reg := NewRegistry()
			if _, err := reg.Register("never", neverQuery); err != nil {
				t.Fatal(err)
			}
			m, err := NewManager(Config{Shards: 2, QueueDepth: 4, Policy: pol}, reg)
			if err != nil {
				t.Fatal(err)
			}
			tuples := idleTuples(t, 1)
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				s, err := m.CreateSession(fmt.Sprintf("u%d", i))
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(s *Session) {
					defer wg.Done()
					for s.FeedTuple(tuples[0]) == nil {
					}
				}(s)
			}
			time.Sleep(5 * time.Millisecond)
			m.Close()
			wg.Wait()
			for i, sh := range m.shards {
				if enq, out := sh.enqueued.Load(), sh.processed.Load()+sh.dropped.Load(); enq != out {
					t.Errorf("shard %d stranded tuples: enqueued=%d processed+dropped=%d", i, enq, out)
				}
			}
		})
	}
}

// TestManagerClose verifies that Close drains queued work and rejects
// subsequent use.
func TestManagerClose(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Register("never", neverQuery); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{Shards: 2, QueueDepth: 8}, reg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.CreateSession("u")
	if err != nil {
		t.Fatal(err)
	}
	tuples := idleTuples(t, 8)
	for _, tp := range tuples {
		if err := s.FeedTuple(tp); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	m.Close() // idempotent
	if in, out, _ := s.Counters(); out != in {
		t.Errorf("close did not drain: in=%d out=%d", in, out)
	}
	if err := s.FeedTuple(tuples[0]); err == nil {
		t.Error("feed after manager close succeeded")
	}
	if _, err := m.CreateSession("v"); err == nil {
		t.Error("create after manager close succeeded")
	}
}
