package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"gesturecep/internal/obs"
)

// TestServeAdminPlane wires a Manager into an obs.AdminServer the way
// cmd/gestured does and checks the contract the orchestrator relies on:
// /metrics carries the serve counters as Prometheus exposition, and
// /healthz flips to 503 the moment the manager closes.
func TestServeAdminPlane(t *testing.T) {
	m := newTestManager(t, Config{Shards: 2}, map[string]string{"never": neverQuery})
	ins := NewInstruments()
	m.SetInstruments(ins)

	admin, err := obs.StartAdmin("127.0.0.1:0", obs.AdminConfig{
		Collect: func(w *obs.PromWriter) {
			m.Metrics().WriteProm(w)
			ins.WriteProm(w)
		},
		Healthy: func() error {
			if m.Closed() {
				return fmt.Errorf("manager closed")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	s, err := m.CreateSession("admin-test")
	if err != nil {
		t.Fatal(err)
	}
	frames := playbackFrames(t, 7)[:10]
	if err := s.FeedFrames(frames); err != nil {
		t.Fatal(err)
	}
	s.Flush()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + admin.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE serve_tuples_total counter",
		`serve_tuples_total{stage="enqueued"} 10`,
		`serve_tuples_total{stage="processed"} 10`,
		"serve_sessions 1",
		"# TYPE serve_queue_wait_seconds histogram",
		"serve_shard_tuples_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz = %d before close, want 200", code)
	}
	m.Close()
	if code, body := get("/healthz"); code != 503 || !strings.Contains(body, "manager closed") {
		t.Errorf("/healthz after close = %d %q, want 503 manager closed", code, body)
	}
}
