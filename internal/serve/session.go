package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/kinect"
	"gesturecep/internal/stream"
	"gesturecep/internal/transform"
)

// Session is one tenant of the runtime: a private engine (raw kinect stream
// + kinect_t view + per-session NFAs instantiated from shared plans), pinned
// to one ingestion shard. Feed may be called from any goroutine; the actual
// publishing happens on the shard worker, so detection semantics are
// identical to a single-engine replay of the same tuples.
type Session struct {
	id     string
	mgr    *Manager
	shard  *shard
	engine *anduin.Engine
	raw    *stream.Stream

	// tap, when non-nil, observes every admitted tuple on the feeding
	// goroutine (the stream-store recording hook). Set at creation, never
	// mutated, so enqueue reads it without synchronization.
	tap func(stream.Tuple)

	closed atomic.Bool
	// sealed refuses further feeds without closing the session — the
	// migration pause: a sealed session's admitted-tuple count is a stable
	// cut ordinal until Unseal.
	sealed atomic.Bool
	// catchingUp marks a session replaying migrated history: detections it
	// fires were already delivered by the previous owner, so push consumers
	// mute them until EndCatchUp. catchUpTo is the cut ordinal the replay
	// must reach exactly (set at creation, read-only afterwards).
	catchingUp atomic.Bool
	catchUpTo  uint64
	// in counts tuples admitted to the shard queue; out counts tuples that
	// left it (published or dropped). in == out means the session is idle.
	in         atomic.Uint64
	out        atomic.Uint64
	dropped    atomic.Uint64
	detections atomic.Uint64

	// collect gates the internal detection buffer. Remote consumers that
	// stream detections out via OnDetection switch it off so a long-lived
	// session does not accumulate results it will never read.
	collect atomic.Bool
	detMu   sync.Mutex
	dets    []anduin.Detection
}

// SessionOptions tunes one session beyond plan selection.
type SessionOptions struct {
	// Gestures names the plans to deploy; empty deploys every registered
	// plan.
	Gestures []string
	// Tap, when non-nil, is called with every tuple admitted to the
	// session's queue, on the feeding goroutine, before shard processing.
	// It must never block — the standard tap is store.Recorder.Tap, which
	// does a non-blocking send into a bounded buffer and counts drops.
	// With a single feeding goroutine (the usual pattern, and what the
	// wire server guarantees) the tap observes exactly the admitted tuple
	// order, which is what makes recorded sessions replayable
	// byte-for-byte.
	Tap func(stream.Tuple)
	// CatchUpTo > 0 creates the session at an ordinal: it is a migration
	// target whose first CatchUpTo tuples are recorded history replayed to
	// rebuild engine state. The session starts in catch-up mode (CatchingUp
	// reports true; push consumers mute its detections) until EndCatchUp
	// verifies exactly CatchUpTo tuples were admitted.
	CatchUpTo uint64
}

// CreateSession builds a session, deploys the named plans (all registered
// plans when names is empty) and pins it to a shard. The session is live
// immediately.
func (m *Manager) CreateSession(id string, gestures ...string) (*Session, error) {
	return m.CreateSessionWith(id, SessionOptions{Gestures: gestures})
}

// CreateSessionWith is CreateSession with recording/ingestion options.
func (m *Manager) CreateSessionWith(id string, opts SessionOptions) (*Session, error) {
	if id == "" {
		return nil, fmt.Errorf("serve: empty session id")
	}
	plans, err := m.reg.Resolve(opts.Gestures...)
	if err != nil {
		return nil, err
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("serve: session %q: no plans to deploy (registry is empty)", id)
	}

	cfg := transform.DefaultConfig()
	if m.cfg.Transform != nil {
		cfg = *m.cfg.Transform
	}
	engine := anduin.New()
	raw, _, err := engine.KinectPipeline(cfg)
	if err != nil {
		return nil, err
	}
	s := &Session{
		id:        id,
		mgr:       m,
		shard:     m.shardFor(id),
		engine:    engine,
		raw:       raw,
		tap:       opts.Tap,
		catchUpTo: opts.CatchUpTo,
	}
	if opts.CatchUpTo > 0 {
		s.catchingUp.Store(true)
	}
	// The collector subscription is installed before any tuple can be fed,
	// so no detection is ever missed.
	s.collect.Store(true)
	engine.Subscribe(func(d anduin.Detection) {
		if s.collect.Load() {
			s.detMu.Lock()
			s.dets = append(s.dets, d)
			s.detMu.Unlock()
		}
		s.detections.Add(1)
		s.shard.detections.Add(1)
	})
	for _, p := range plans {
		if _, err := engine.DeployPlan(p); err != nil {
			return nil, fmt.Errorf("serve: session %q: %w", id, err)
		}
	}

	m.mu.Lock()
	if m.closed.Load() {
		m.mu.Unlock()
		return nil, fmt.Errorf("serve: manager closed")
	}
	if _, dup := m.sessions[id]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("serve: session %q already exists", id)
	}
	m.sessions[id] = s
	m.mu.Unlock()
	s.shard.sessions.Add(1)
	return s, nil
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Shard returns the index of the shard the session is pinned to.
func (s *Session) Shard() int { return s.shard.id }

// Engine exposes the session's private engine (for stats and advanced
// management). Do not publish tuples to it directly — use Feed, which
// routes through the shard worker.
func (s *Session) Engine() *anduin.Engine { return s.engine }

// Feed enqueues one camera frame for this session.
func (s *Session) Feed(f kinect.Frame) error {
	return s.mgr.enqueue(s, kinect.ToTuple(f))
}

// FeedTuple enqueues one raw kinect tuple for this session.
func (s *Session) FeedTuple(t stream.Tuple) error {
	return s.mgr.enqueue(s, t)
}

// FeedTupleTraced enqueues one trace-sampled tuple: sentNs is the client-send
// unix-nano timestamp carried by the tuple's wire batch, recorded into the
// manager's stage histograms as the tuple moves through the shard. Detection
// behaviour is identical to FeedTuple.
func (s *Session) FeedTupleTraced(t stream.Tuple, sentNs int64) error {
	return s.mgr.enqueueTraced(s, t, sentNs)
}

// FeedFrames enqueues a frame sequence in order.
func (s *Session) FeedFrames(frames []kinect.Frame) error {
	for i, f := range frames {
		if err := s.Feed(f); err != nil {
			return fmt.Errorf("serve: frame %d: %w", i, err)
		}
	}
	return nil
}

// OnDetection registers a listener for this session's detections; the
// returned function removes it. Listeners run synchronously on the shard
// worker goroutine — keep them fast. A listener may close its own (or any)
// session via Close/CloseSession, but must not call Manager.Close, which
// waits for the very worker the listener runs on.
func (s *Session) OnDetection(fn func(anduin.Detection)) func() {
	return s.engine.Subscribe(fn)
}

// SetCollect switches the internal detection buffer on or off. Sessions
// start collecting; consumers that stream every detection out through
// OnDetection (e.g. the network ingestion layer) disable it to keep
// long-lived sessions memory-bounded. Disabling does not clear detections
// already buffered — drain them with TakeDetections if needed.
func (s *Session) SetCollect(enabled bool) { s.collect.Store(enabled) }

// Detections returns a copy of all detections collected so far.
func (s *Session) Detections() []anduin.Detection {
	s.detMu.Lock()
	defer s.detMu.Unlock()
	return append([]anduin.Detection(nil), s.dets...)
}

// TakeDetections drains and returns the collected detections; long-lived
// sessions should prefer it over Detections to keep memory bounded.
func (s *Session) TakeDetections() []anduin.Detection {
	s.detMu.Lock()
	defer s.detMu.Unlock()
	out := s.dets
	s.dets = nil
	return out
}

// Counters reports the session's ingestion counters: tuples admitted to the
// queue, tuples that left it (published or dropped), and drops.
func (s *Session) Counters() (in, out, dropped uint64) {
	return s.in.Load(), s.out.Load(), s.dropped.Load()
}

// Flush blocks until every tuple this session has enqueued so far was
// published or dropped. Call it after the session's producer is quiescent.
func (s *Session) Flush() {
	for s.out.Load() < s.in.Load() {
		time.Sleep(50 * time.Microsecond)
	}
}

// Seal refuses further feeds without closing the session. A sealed session's
// admitted-tuple count is a stable migration cut ordinal: no tuple can slip
// past it until Unseal. Sealing an already-sealed session is a no-op.
func (s *Session) Seal() { s.sealed.Store(true) }

// Unseal re-admits feeds after a Seal — the clean abort of a migration whose
// target never materialized: the session resumes exactly where it paused,
// having lost nothing.
func (s *Session) Unseal() { s.sealed.Store(false) }

// Sealed reports whether the session currently refuses feeds.
func (s *Session) Sealed() bool { return s.sealed.Load() }

// CatchingUp reports whether the session is still replaying migrated
// history; its detections are replays of already-delivered ones while true.
func (s *Session) CatchingUp() bool { return s.catchingUp.Load() }

// CatchUpTarget returns the cut ordinal a catch-up session must reach (zero
// for sessions created normally).
func (s *Session) CatchUpTarget() uint64 { return s.catchUpTo }

// EndCatchUp finishes catch-up mode: it verifies that exactly CatchUpTo
// tuples were admitted — the cut-ordinal invariant; a mismatch means the
// replayed history diverged from the source and the engine state cannot be
// trusted — and re-enables detection delivery. The caller must Flush first
// so no catch-up detection is still in flight when delivery resumes.
func (s *Session) EndCatchUp() error {
	if s.catchUpTo == 0 {
		return fmt.Errorf("serve: session %q was not created at an ordinal", s.id)
	}
	if in := s.in.Load(); in != s.catchUpTo {
		return fmt.Errorf("serve: session %q caught up to %d tuples, cut ordinal is %d", s.id, in, s.catchUpTo)
	}
	s.catchingUp.Store(false)
	return nil
}

// Close detaches the session from the manager; queued tuples are skipped.
func (s *Session) Close() error {
	return s.mgr.CloseSession(s.id)
}

// shutdown marks the session closed and tears down its engine. Called with
// the session already removed from the manager table.
func (s *Session) shutdown() {
	if s.closed.Swap(true) {
		return
	}
	s.shard.sessions.Add(-1)
	s.engine.UndeployAll()
}
