package serve

import (
	"fmt"

	"gesturecep/internal/obs"
)

// Instruments is the serve layer's set of stage-latency histograms, fed by
// trace-sampled tuples only (see obs.Sampler and the wire trace flag): the
// unsampled hot path never reads a clock for them. Any field may be nil —
// obs.Histogram is nil-safe — and a nil *Instruments disables serve-side
// tracing entirely.
type Instruments struct {
	// QueueWait measures enqueue → dequeue: how long a traced tuple sat in
	// its shard queue before the worker picked it up.
	QueueWait *obs.Histogram
	// Detect measures the engine publish of a traced tuple: NFA evaluation
	// plus synchronous detection fan-out.
	Detect *obs.Histogram
	// Ingest measures client-send → processed, end to end from the traced
	// batch's wire timestamp (client clock) to local publish completion.
	// Cross-process, so clock offset is included; within one host (the e2e
	// and bench setups) it is the true pipeline latency.
	Ingest *obs.Histogram
}

// NewInstruments returns a fully-populated instrument set.
func NewInstruments() *Instruments {
	return &Instruments{
		QueueWait: obs.NewHistogram(),
		Detect:    obs.NewHistogram(),
		Ingest:    obs.NewHistogram(),
	}
}

// SetInstruments installs the stage histograms. Call before feeding traffic;
// the fields are read without synchronization on the shard workers.
func (m *Manager) SetInstruments(ins *Instruments) {
	m.ins = ins
	for _, sh := range m.shards {
		sh.ins = ins
	}
}

// Instruments returns the installed instrument set (nil when tracing is off).
func (m *Manager) Instruments() *Instruments { return m.ins }

// Closed reports whether Close has run — the admin plane's liveness probe:
// a gestured process whose manager closed is done serving.
func (m *Manager) Closed() bool { return m.closed.Load() }

// WriteProm writes the snapshot as Prometheus exposition text. Per-session
// counters are deliberately absent — session IDs are traffic-bounded
// cardinality, which belongs in the JSON plane, not in label values. Shards
// and backends are configuration-bounded, so they label freely.
func (m Metrics) WriteProm(w *obs.PromWriter) {
	w.Gauge("serve_sessions", "Live sessions.", nil, float64(m.Sessions))
	w.Gauge("serve_queue_depth", "Tuples sitting in shard queues.", nil, float64(m.QueueDepth))
	const tuplesHelp = "Tuples by ingestion stage (enqueued, processed, dropped)."
	w.Counter("serve_tuples_total", tuplesHelp, obs.L("stage", "enqueued"), m.Enqueued)
	w.Counter("serve_tuples_total", tuplesHelp, obs.L("stage", "processed"), m.Processed)
	w.Counter("serve_tuples_total", tuplesHelp, obs.L("stage", "dropped"), m.Dropped)
	w.Counter("serve_detections_total", "Detections published.", nil, m.Detections)
	for _, sh := range m.Shards {
		shard := fmt.Sprintf("%d", sh.Shard)
		w.Gauge("serve_shard_sessions", "Sessions pinned per shard.", obs.L("shard", shard), float64(sh.Sessions))
		w.Gauge("serve_shard_queue_depth", "Queued tuples per shard.", obs.L("shard", shard), float64(sh.QueueDepth))
		const shardHelp = "Per-shard tuples by ingestion stage."
		w.Counter("serve_shard_tuples_total", shardHelp, obs.L("shard", shard).Add("stage", "enqueued"), sh.Enqueued)
		w.Counter("serve_shard_tuples_total", shardHelp, obs.L("shard", shard).Add("stage", "processed"), sh.Processed)
		w.Counter("serve_shard_tuples_total", shardHelp, obs.L("shard", shard).Add("stage", "dropped"), sh.Dropped)
		w.Counter("serve_shard_detections_total", "Per-shard detections.", obs.L("shard", shard), sh.Detections)
	}
	for _, be := range m.Backends {
		l := obs.L("backend", be.ID)
		up := 0.0
		if be.Healthy {
			up = 1
		}
		w.Gauge("cluster_backend_up", "1 when the gateway's last probe of the backend succeeded.", l, up)
		live := 0.0
		if be.State == "live" || (be.State == "" && be.Healthy) {
			live = 1
		}
		w.Gauge("cluster_backend_live", "1 when the backend is on the routing ring.", l, live)
		w.Gauge("cluster_backend_sessions", "Proxied sessions homed on the backend.", l, float64(be.Sessions))
		w.Counter("cluster_backend_batches_total", "Batch frames forwarded to the backend.", l, be.Batches)
		w.Counter("cluster_backend_tuples_total", "Tuples forwarded to the backend.", l, be.Tuples)
		w.Counter("cluster_backend_detections_total", "Detections pushed back by the backend.", l, be.Detections)
		w.Counter("cluster_backend_lost_total", "Tuples lost to backend failures.", l, be.Lost)
		w.Counter("cluster_backend_rehomed_total", "Sessions moved away by failover.", l, be.Rehomed)
		w.Counter("cluster_backend_ejections_total", "Backend incarnations ejected.", l, be.Ejections)
		w.Counter("cluster_backend_readmissions_total", "Backend incarnations re-admitted.", l, be.Readmissions)
	}
}

// WriteProm writes the stage histograms as Prometheus exposition text.
// Nil-safe: an uninstrumented manager contributes nothing.
func (ins *Instruments) WriteProm(w *obs.PromWriter) {
	if ins == nil {
		return
	}
	w.Histogram("serve_queue_wait_seconds", "Shard-queue wait of trace-sampled tuples.", nil, ins.QueueWait.Snapshot())
	w.Histogram("serve_detect_seconds", "Engine publish latency of trace-sampled tuples.", nil, ins.Detect.Snapshot())
	w.Histogram("serve_ingest_seconds", "Client-send to processed latency of trace-sampled tuples.", nil, ins.Ingest.Snapshot())
}

// Stats summarizes the stage histograms for the JSON metrics plane.
func (ins *Instruments) Stats() map[string]obs.HistStats {
	if ins == nil {
		return nil
	}
	return map[string]obs.HistStats{
		"queue_wait": ins.QueueWait.Snapshot().Stats(),
		"detect":     ins.Detect.Snapshot().Stats(),
		"ingest":     ins.Ingest.Snapshot().Stats(),
	}
}
