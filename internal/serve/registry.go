// Package serve is the multi-tenant detection runtime: it runs many
// independent gesture-detection sessions (one per connected user) on one
// process, multiplexed over a fleet of shard worker goroutines.
//
// The paper evaluates one learned CEP query against one sensor stream; the
// engine in internal/anduin mirrors that — single stream, single publishing
// goroutine. This package is the classic DSMS many-queries/many-streams
// deployment on top of it:
//
//   - a Registry compiles each learned query ONCE into a shared
//     anduin.Plan (parse → type-check → flatten), so ten thousand sessions
//     pay only a cheap per-session NFA instantiation;
//   - a Manager hashes sessions onto shards; each shard owns a bounded
//     tuple queue drained by exactly one worker goroutine, preserving the
//     engine's single-publisher-per-stream invariant while the process
//     scales with core count;
//   - ingestion backpressure is explicit and caller-selectable: Block
//     (producers wait when a shard queue is full) or DropOldest (the
//     queue head is evicted, and the drop is counted);
//   - per-shard and global counters are plain atomics snapshotted by
//     Metrics without stopping the world.
package serve

import (
	"fmt"
	"sort"
	"sync"

	"gesturecep/internal/anduin"
	"gesturecep/internal/query"
)

// Registry is the shared plan cache: learned query text goes in once, a
// compiled, immutable anduin.Plan comes out for every session that deploys
// the gesture. Safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	env   *query.Env
	plans map[string]*anduin.Plan
	order []string
}

// NewRegistry creates a registry whose plans compile against the canonical
// kinect/kinect_t environment (see anduin.NewPlanEnv).
func NewRegistry() *Registry {
	return &Registry{
		env:   anduin.NewPlanEnv(),
		plans: make(map[string]*anduin.Plan),
	}
}

// Register parses and compiles queryText and stores the plan under name.
// Registering an already-registered name fails; use Replace for hot swaps.
func (r *Registry) Register(name, queryText string) (*anduin.Plan, error) {
	return r.put(name, queryText, false)
}

// Replace compiles queryText and stores it under name, overwriting any
// previous plan. Sessions created afterwards get the new plan; sessions
// already running keep the plan they deployed.
func (r *Registry) Replace(name, queryText string) (*anduin.Plan, error) {
	return r.put(name, queryText, true)
}

func (r *Registry) put(name, queryText string, overwrite bool) (*anduin.Plan, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty plan name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, exists := r.plans[name]
	if exists && !overwrite {
		return nil, fmt.Errorf("serve: plan %q already registered", name)
	}
	p, err := anduin.CompilePlanText(queryText, r.env)
	if err != nil {
		return nil, fmt.Errorf("serve: plan %q: %w", name, err)
	}
	r.plans[name] = p
	if !exists {
		r.order = append(r.order, name)
	}
	return p, nil
}

// Get returns the plan registered under name.
func (r *Registry) Get(name string) (*anduin.Plan, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.plans[name]
	return p, ok
}

// Resolve returns the plans for the given names, or every registered plan
// in registration order when names is empty.
func (r *Registry) Resolve(names ...string) ([]*anduin.Plan, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(names) == 0 {
		names = r.order
	}
	out := make([]*anduin.Plan, 0, len(names))
	for _, n := range names {
		p, ok := r.plans[n]
		if !ok {
			return nil, fmt.Errorf("serve: plan %q not registered", n)
		}
		out = append(out, p)
	}
	return out, nil
}

// Names lists registered plan names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

// Len returns the number of registered plans.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.plans)
}
