package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gesturecep/internal/stream"
)

// Lifecycle edge cases the base suite does not cover: CloseSession racing
// in-flight Feeds, session-ID reuse while the previous incarnation's tuples
// are still queued, and Metrics snapshot invariants under concurrent
// ingestion. All are -race workhorses.

// TestCloseSessionDuringFeed closes sessions while feeders are mid-Feed and
// checks that every admitted tuple is drained and the accounting balances —
// a Feed must never strand a tuple on a session that closed under it.
func TestCloseSessionDuringFeed(t *testing.T) {
	for _, pol := range []Policy{Block, DropOldest} {
		t.Run(pol.String(), func(t *testing.T) {
			m := newTestManager(t, Config{Shards: 2, QueueDepth: 4, Policy: pol},
				map[string]string{"never": neverQuery})
			tuples := idleTuples(t, 1)
			const sessions = 8
			var wg sync.WaitGroup
			for i := 0; i < sessions; i++ {
				s, err := m.CreateSession(fmt.Sprintf("u%d", i))
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(s *Session) {
					defer wg.Done()
					for s.FeedTuple(tuples[0]) == nil {
					}
				}(s)
				wg.Add(1)
				go func(id string) {
					defer wg.Done()
					time.Sleep(time.Duration(i) * time.Millisecond)
					if err := m.CloseSession(id); err != nil {
						t.Errorf("close %s: %v", id, err)
					}
				}(s.ID())
			}
			wg.Wait()
			m.Flush()
			for i, sh := range m.shards {
				if enq, out := sh.enqueued.Load(), sh.processed.Load()+sh.dropped.Load(); enq != out {
					t.Errorf("shard %d stranded tuples: enqueued=%d processed+dropped=%d", i, enq, out)
				}
			}
			if got := m.SessionCount(); got != 0 {
				t.Errorf("SessionCount = %d after closing all sessions, want 0", got)
			}
		})
	}
}

// TestSessionIDReuseWithQueuedTuples re-creates a session under its old ID
// while tuples of the previous incarnation are still queued: the stale
// envelopes must be skipped (closed-session check), the new incarnation must
// process only its own tuples, and the counters of the two incarnations must
// stay separate.
func TestSessionIDReuseWithQueuedTuples(t *testing.T) {
	m, entered, release := gatedManager(t, Config{QueueDepth: 8, Policy: Block})
	old, err := m.CreateSession("u")
	if err != nil {
		t.Fatal(err)
	}
	tuples := idleTuples(t, 6)

	// Tuple 0 occupies the worker at the gate; 1 and 2 wait in the queue.
	for i := 0; i < 3; i++ {
		if err := old.FeedTuple(tuples[i]); err != nil {
			t.Fatal(err)
		}
	}
	<-entered

	// Close the session while its tuples are still queued, then reuse the ID.
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	reborn, err := m.CreateSession("u")
	if err != nil {
		t.Fatalf("session id not reusable while old tuples queued: %v", err)
	}
	if reborn == old {
		t.Fatal("CreateSession returned the closed session")
	}
	for i := 3; i < 6; i++ {
		if err := reborn.FeedTuple(tuples[i]); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	// Five envelopes remain after the one already consumed at the gate.
	for i := 0; i < 5; i++ {
		<-entered
	}
	old.Flush()
	reborn.Flush()

	// The old incarnation's queued tuples left the queue but were skipped:
	// the close happened while the worker was gated on tuple 0, so none of
	// the three reached its engine.
	if in, out, dropped := old.Counters(); in != 3 || out != 3 || dropped != 0 {
		t.Errorf("old counters = %d/%d/%d, want 3/3/0", in, out, dropped)
	}
	if raw, ok := old.Engine().Stream("kinect"); ok && raw.Published() != 0 {
		t.Errorf("old engine published %d tuples, want 0 (all skipped after close)", raw.Published())
	}
	if in, out, dropped := reborn.Counters(); in != 3 || out != 3 || dropped != 0 {
		t.Errorf("reborn counters = %d/%d/%d, want 3/3/0", in, out, dropped)
	}
	if raw, ok := reborn.Engine().Stream("kinect"); ok && raw.Published() != 3 {
		t.Errorf("reborn engine published %d tuples, want 3", raw.Published())
	}
}

// TestMetricsSnapshotConsistency polls Metrics while many goroutines ingest
// concurrently and checks the invariants every snapshot must satisfy:
// totals equal the per-shard sums, outflow never exceeds inflow, and the
// final quiescent snapshot balances exactly.
func TestMetricsSnapshotConsistency(t *testing.T) {
	m := newTestManager(t, Config{Shards: 4, QueueDepth: 8, Policy: DropOldest},
		map[string]string{"never": neverQuery})
	tuples := idleTuples(t, 1)
	const sessions = 8
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		s, err := m.CreateSession(fmt.Sprintf("u%d", i))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			for !stop.Load() {
				if err := s.FeedTuple(tuples[0]); err != nil {
					return
				}
			}
		}(s)
	}

	deadline := time.Now().Add(200 * time.Millisecond)
	snapshots := 0
	for time.Now().Before(deadline) {
		mm := m.Metrics()
		snapshots++
		var enq, proc, drop, det uint64
		var depth int
		for _, sm := range mm.Shards {
			if sm.Processed+sm.Dropped > sm.Enqueued {
				t.Fatalf("shard %d snapshot out > in: %+v", sm.Shard, sm)
			}
			enq += sm.Enqueued
			proc += sm.Processed
			drop += sm.Dropped
			det += sm.Detections
			depth += sm.QueueDepth
		}
		if mm.Enqueued != enq || mm.Processed != proc || mm.Dropped != drop ||
			mm.Detections != det || mm.QueueDepth != depth {
			t.Fatalf("totals diverge from shard sums: %+v", mm)
		}
		if mm.Sessions != sessions {
			t.Fatalf("snapshot sessions = %d, want %d", mm.Sessions, sessions)
		}
		if len(mm.PerSession) != sessions {
			t.Fatalf("snapshot lists %d sessions, want %d", len(mm.PerSession), sessions)
		}
		for i, sm := range mm.PerSession {
			if sm.Out > sm.In {
				t.Fatalf("session %q snapshot out > in: %+v", sm.ID, sm)
			}
			if sm.Queued != sm.In-sm.Out {
				t.Fatalf("session %q queued %d != in-out %d", sm.ID, sm.Queued, sm.In-sm.Out)
			}
			if i > 0 && mm.PerSession[i-1].ID >= sm.ID {
				t.Fatalf("per-session snapshot not sorted: %q before %q", mm.PerSession[i-1].ID, sm.ID)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	m.Flush()

	final := m.Metrics()
	if final.Processed+final.Dropped != final.Enqueued {
		t.Errorf("final snapshot unbalanced: %s", final)
	}
	if final.QueueDepth != 0 {
		t.Errorf("final queue depth = %d, want 0", final.QueueDepth)
	}
	if snapshots == 0 {
		t.Fatal("no snapshots taken")
	}
}

// TestPerSessionMetrics drives two sessions to different depths and checks
// the per-session snapshot: exact counters per ID, queue drained to zero
// after Flush, drops attributed to the right session, and JSON tags
// present (the snapshot is served verbatim over the wire metrics frame).
func TestPerSessionMetrics(t *testing.T) {
	m := newTestManager(t, Config{Shards: 2, QueueDepth: 64},
		map[string]string{"never": neverQuery})
	tuples := idleTuples(t, 1)
	a, err := m.CreateSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.CreateSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.FeedTuple(tuples[0]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := b.FeedTuple(tuples[0]); err != nil {
			t.Fatal(err)
		}
	}
	m.Flush()

	mm := m.Metrics()
	if len(mm.PerSession) != 2 {
		t.Fatalf("PerSession has %d entries, want 2", len(mm.PerSession))
	}
	byID := map[string]SessionMetrics{}
	for _, sm := range mm.PerSession {
		byID[sm.ID] = sm
	}
	if sm := byID["alice"]; sm.In != 10 || sm.Out != 10 || sm.Queued != 0 || sm.Dropped != 0 {
		t.Errorf("alice snapshot = %+v", sm)
	}
	if sm := byID["bob"]; sm.In != 3 || sm.Out != 3 || sm.Queued != 0 {
		t.Errorf("bob snapshot = %+v", sm)
	}
	if sm := byID["alice"]; sm.Shard != a.Shard() {
		t.Errorf("alice on shard %d, snapshot says %d", a.Shard(), sm.Shard)
	}

	data, err := json.Marshal(mm)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"per_session"`, `"queued"`, `"dropped"`, `"id":"alice"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("metrics JSON lacks %s: %s", key, data)
		}
	}
}

// TestSessionTap checks the recording hook: a single-feeder session's tap
// observes exactly the admitted tuples in feed order, and taps are
// per-session.
func TestSessionTap(t *testing.T) {
	m := newTestManager(t, Config{Shards: 2}, map[string]string{"never": neverQuery})
	tuples := idleTuples(t, 32)

	var tapped []stream.Tuple
	s, err := m.CreateSessionWith("tapped", SessionOptions{Tap: func(tu stream.Tuple) {
		tapped = append(tapped, tu)
	}})
	if err != nil {
		t.Fatal(err)
	}
	other, err := m.CreateSession("plain")
	if err != nil {
		t.Fatal(err)
	}
	for i := range tuples {
		if err := s.FeedTuple(tuples[i]); err != nil {
			t.Fatal(err)
		}
		if err := other.FeedTuple(tuples[i]); err != nil {
			t.Fatal(err)
		}
	}
	m.Flush()
	if len(tapped) != len(tuples) {
		t.Fatalf("tap saw %d tuples, fed %d", len(tapped), len(tuples))
	}
	for i := range tapped {
		if tapped[i].Seq != tuples[i].Seq || !tapped[i].Ts.Equal(tuples[i].Ts) {
			t.Fatalf("tap order diverges at %d: got seq %d, want %d", i, tapped[i].Seq, tuples[i].Seq)
		}
	}
	// A rejected tuple (wrong arity) must not reach the tap.
	if err := s.FeedTuple(stream.Tuple{Fields: []float64{1}}); err == nil {
		t.Fatal("short tuple admitted")
	}
	if len(tapped) != len(tuples) {
		t.Fatal("rejected tuple reached the tap")
	}
}
