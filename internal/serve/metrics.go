package serve

import (
	"fmt"
	"strings"
)

// ShardMetrics is a point-in-time snapshot of one shard's counters.
type ShardMetrics struct {
	Shard      int
	Sessions   int
	QueueDepth int
	Enqueued   uint64
	Processed  uint64
	Dropped    uint64
	Detections uint64
}

// Metrics aggregates the shard snapshots. Counters are monotonically
// increasing since manager start; QueueDepth is instantaneous.
type Metrics struct {
	Sessions   int
	Enqueued   uint64
	Processed  uint64
	Dropped    uint64
	Detections uint64
	QueueDepth int
	Shards     []ShardMetrics
}

// Metrics snapshots every shard's counters without pausing ingestion: the
// counters are independent atomics, so a snapshot is consistent per counter
// but not a cross-counter transaction — exactly what monitoring needs.
func (m *Manager) Metrics() Metrics {
	out := Metrics{Sessions: m.SessionCount()}
	for _, sh := range m.shards {
		sm := ShardMetrics{
			Shard:      sh.id,
			Sessions:   int(sh.sessions.Load()),
			QueueDepth: len(sh.queue),
			Enqueued:   sh.enqueued.Load(),
			Processed:  sh.processed.Load(),
			Dropped:    sh.dropped.Load(),
			Detections: sh.detections.Load(),
		}
		out.Enqueued += sm.Enqueued
		out.Processed += sm.Processed
		out.Dropped += sm.Dropped
		out.Detections += sm.Detections
		out.QueueDepth += sm.QueueDepth
		out.Shards = append(out.Shards, sm)
	}
	return out
}

// String renders a compact one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("sessions=%d in=%d out=%d dropped=%d detections=%d depth=%d",
		m.Sessions, m.Enqueued, m.Processed, m.Dropped, m.Detections, m.QueueDepth)
}

// Table renders a per-shard breakdown suitable for terminal output.
func (m Metrics) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %10s %10s %10s %10s %6s\n",
		"shard", "sessions", "enqueued", "processed", "dropped", "detections", "depth")
	for _, s := range m.Shards {
		fmt.Fprintf(&b, "%-6d %8d %10d %10d %10d %10d %6d\n",
			s.Shard, s.Sessions, s.Enqueued, s.Processed, s.Dropped, s.Detections, s.QueueDepth)
	}
	fmt.Fprintf(&b, "%-6s %8d %10d %10d %10d %10d %6d\n",
		"total", m.Sessions, m.Enqueued, m.Processed, m.Dropped, m.Detections, m.QueueDepth)
	return b.String()
}
