package serve

import (
	"fmt"
	"sort"
	"strings"
)

// ShardMetrics is a point-in-time snapshot of one shard's counters. The
// JSON tags are the wire metrics-frame format served to remote consumers.
type ShardMetrics struct {
	Shard      int    `json:"shard"`
	Sessions   int    `json:"sessions"`
	QueueDepth int    `json:"queue_depth"`
	Enqueued   uint64 `json:"enqueued"`
	Processed  uint64 `json:"processed"`
	Dropped    uint64 `json:"dropped"`
	Detections uint64 `json:"detections"`
}

// SessionMetrics is a point-in-time snapshot of one live session's
// ingestion counters. In/Out/Dropped/Detections are cumulative since the
// session was created; Queued is the instantaneous number of its tuples
// still sitting in the shard queue.
type SessionMetrics struct {
	ID         string `json:"id"`
	Shard      int    `json:"shard"`
	In         uint64 `json:"in"`
	Out        uint64 `json:"out"`
	Queued     uint64 `json:"queued"`
	Dropped    uint64 `json:"dropped"`
	Detections uint64 `json:"detections"`
}

// BackendMetrics is a point-in-time snapshot of one cluster backend as seen
// by a gateway fronting it: proxied-session placement, forwarded traffic,
// and failover accounting. A single-node server never fills these; the
// cluster gateway attaches them to its aggregated Metrics so one metrics
// frame describes the whole fleet.
type BackendMetrics struct {
	ID      string `json:"id"`
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	// State is the gateway's lifecycle state for this backend: "live" (on
	// the ring), "ejected" (off the ring permanently), or "recovering" (off
	// the ring, being re-dialed for re-admission).
	State    string `json:"state,omitempty"`
	Sessions int    `json:"sessions"` // proxied sessions currently homed here
	Batches  uint64 `json:"batches"`  // batch frames forwarded
	Tuples   uint64 `json:"tuples"`   // tuples forwarded
	// Detections counts detections this backend pushed back through the
	// gateway.
	Detections uint64 `json:"detections"`
	// Lost counts tuples whose serving state died with this backend: they
	// were forwarded here and the backend was ejected before a later
	// incarnation could re-absorb them. Surfaced to clients as drops.
	Lost uint64 `json:"lost"`
	// Rehomed counts sessions moved away from this backend by failover.
	Rehomed uint64 `json:"rehomed"`
	// Ejections counts how many of this backend's incarnations were
	// ejected; Readmissions counts admissions through the gateway's
	// recovery loop (a backend that was down at startup and came up is a
	// re-admission with zero ejections).
	Ejections    uint64 `json:"ejections"`
	Readmissions uint64 `json:"readmissions"`
}

// Metrics aggregates the shard snapshots. Counters are monotonically
// increasing since manager start; QueueDepth is instantaneous. Backends is
// only filled by a cluster gateway, which aggregates the shard counters of
// every backend and appends the per-backend proxy view.
type Metrics struct {
	Sessions   int              `json:"sessions"`
	Enqueued   uint64           `json:"enqueued"`
	Processed  uint64           `json:"processed"`
	Dropped    uint64           `json:"dropped"`
	Detections uint64           `json:"detections"`
	QueueDepth int              `json:"queue_depth"`
	Shards     []ShardMetrics   `json:"shards"`
	PerSession []SessionMetrics `json:"per_session,omitempty"`
	Backends   []BackendMetrics `json:"backends,omitempty"`
}

// Metrics snapshots every shard's counters without pausing ingestion: the
// counters are independent atomics, so a snapshot is consistent per counter
// but not a cross-counter transaction — exactly what monitoring needs. One
// cross-counter invariant does hold: Processed + Dropped never exceeds
// Enqueued, because the outflow counters are loaded before the inflow
// counter (a tuple increments enqueued before processed/dropped, so reading
// in the opposite order can never observe more out than in).
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })

	out := Metrics{Sessions: len(sessions)}
	for _, s := range sessions {
		// Load out before in: out trails in, so the difference can never
		// underflow however ingestion races the snapshot.
		o := s.out.Load()
		i := s.in.Load()
		out.PerSession = append(out.PerSession, SessionMetrics{
			ID:         s.id,
			Shard:      s.shard.id,
			In:         i,
			Out:        o,
			Queued:     i - o,
			Dropped:    s.dropped.Load(),
			Detections: s.detections.Load(),
		})
	}
	for _, sh := range m.shards {
		processed := sh.processed.Load()
		dropped := sh.dropped.Load()
		sm := ShardMetrics{
			Shard:      sh.id,
			Sessions:   int(sh.sessions.Load()),
			QueueDepth: len(sh.queue),
			Enqueued:   sh.enqueued.Load(),
			Processed:  processed,
			Dropped:    dropped,
			Detections: sh.detections.Load(),
		}
		out.Enqueued += sm.Enqueued
		out.Processed += sm.Processed
		out.Dropped += sm.Dropped
		out.Detections += sm.Detections
		out.QueueDepth += sm.QueueDepth
		out.Shards = append(out.Shards, sm)
	}
	return out
}

// String renders a compact one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("sessions=%d in=%d out=%d dropped=%d detections=%d depth=%d",
		m.Sessions, m.Enqueued, m.Processed, m.Dropped, m.Detections, m.QueueDepth)
}

// Table renders a per-shard breakdown suitable for terminal output.
func (m Metrics) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %10s %10s %10s %10s %6s\n",
		"shard", "sessions", "enqueued", "processed", "dropped", "detections", "depth")
	for _, s := range m.Shards {
		fmt.Fprintf(&b, "%-6d %8d %10d %10d %10d %10d %6d\n",
			s.Shard, s.Sessions, s.Enqueued, s.Processed, s.Dropped, s.Detections, s.QueueDepth)
	}
	fmt.Fprintf(&b, "%-6s %8d %10d %10d %10d %10d %6d\n",
		"total", m.Sessions, m.Enqueued, m.Processed, m.Dropped, m.Detections, m.QueueDepth)
	if len(m.Backends) > 0 {
		fmt.Fprintf(&b, "\n%-12s %-21s %-10s %8s %10s %10s %10s %8s %8s %7s %8s\n",
			"backend", "addr", "state", "sessions", "batches", "tuples", "detections", "lost", "rehomed", "ejects", "readmits")
		for _, be := range m.Backends {
			state := be.State
			if state == "" {
				if be.Healthy {
					state = "live"
				} else {
					state = "unhealthy"
				}
			} else if state == "live" && !be.Healthy {
				state = "unreachable" // live on the ring, but the metrics fetch failed
			}
			fmt.Fprintf(&b, "%-12s %-21s %-10s %8d %10d %10d %10d %8d %8d %7d %8d\n",
				be.ID, be.Addr, state, be.Sessions, be.Batches, be.Tuples, be.Detections, be.Lost, be.Rehomed,
				be.Ejections, be.Readmissions)
		}
	}
	return b.String()
}
