package serve

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gesturecep/internal/stream"
	"gesturecep/internal/transform"
)

// Policy selects the backpressure behaviour of a full shard queue.
type Policy int

const (
	// Block makes Feed wait until the shard worker frees a queue slot —
	// lossless ingestion, producers are paced by detection throughput.
	Block Policy = iota
	// DropOldest evicts the oldest queued tuple to admit the new one —
	// bounded latency under overload, drops are counted per session and
	// per shard.
	DropOldest
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropOldest:
		return "drop-oldest"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a command-line flag value into a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop", "drop-oldest", "dropoldest":
		return DropOldest, nil
	default:
		return 0, fmt.Errorf("serve: unknown backpressure policy %q (want block or drop-oldest)", s)
	}
}

// Config tunes the session manager.
type Config struct {
	// Shards is the number of worker goroutines (and queues) tuples are
	// multiplexed over. Each session is pinned to one shard. Defaults to
	// GOMAXPROCS.
	Shards int
	// QueueDepth bounds each shard's tuple queue. Defaults to 256.
	QueueDepth int
	// Policy selects the backpressure behaviour when a queue is full.
	Policy Policy
	// Transform configures the §3.2 kinect_t view of every session; nil
	// selects transform.DefaultConfig().
	Transform *transform.Config
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Policy != Block && c.Policy != DropOldest {
		return fmt.Errorf("serve: invalid policy %d", int(c.Policy))
	}
	if c.Transform != nil {
		if err := c.Transform.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// envelope is one queued unit of work: a tuple bound for a session's raw
// stream. sentNs/enqNs are non-zero only for trace-sampled tuples with
// instruments installed; unsampled traffic never reads a clock here.
type envelope struct {
	sess   *Session
	tuple  stream.Tuple
	sentNs int64 // client-send unix nanos (from the wire trace timestamp)
	enqNs  int64 // local enqueue unix nanos
}

// shard is one ingestion lane: a bounded queue drained by exactly one
// worker goroutine. Sessions are pinned to shards by hashing their ID, so
// every session's tuples are published by a single goroutine in FIFO order
// — the stream package's single-publisher invariant, preserved at fleet
// scale.
type shard struct {
	id    int
	queue chan envelope
	quit  chan struct{}

	sessions   atomic.Int64
	enqueued   atomic.Uint64
	processed  atomic.Uint64
	dropped    atomic.Uint64
	detections atomic.Uint64

	// gate, when non-nil, runs before each dequeued envelope is processed.
	// Tests use it to hold the worker mid-drain; it must be set before any
	// tuple is fed.
	gate func(envelope)

	// ins, when non-nil, receives stage latencies of trace-sampled tuples.
	// Set via Manager.SetInstruments before traffic.
	ins *Instruments
}

// Manager owns the shard fleet and the session table.
type Manager struct {
	cfg    Config
	reg    *Registry
	shards []*shard
	wg     sync.WaitGroup

	// feedMu is the Feed/Close barrier: enqueue holds it for reading,
	// Close sets closed under the write lock before stopping the workers,
	// so an admitted tuple always has a live worker to drain it. It
	// intentionally guards nothing else — in particular CloseSession does
	// not take it, so a session may close itself from a detection
	// listener without deadlocking its shard.
	feedMu sync.RWMutex
	closed atomic.Bool

	mu       sync.Mutex
	sessions map[string]*Session

	// ins, when non-nil, is the trace-sampled stage instrumentation (see
	// SetInstruments).
	ins *Instruments
}

// NewManager starts cfg.Shards worker goroutines serving sessions that
// deploy plans from reg.
func NewManager(cfg Config, reg *Registry) (*Manager, error) {
	if reg == nil {
		return nil, fmt.Errorf("serve: nil registry")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:      cfg,
		reg:      reg,
		sessions: make(map[string]*Session),
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{
			id:    i,
			queue: make(chan envelope, cfg.QueueDepth),
			quit:  make(chan struct{}),
		}
		m.shards = append(m.shards, sh)
		m.wg.Add(1)
		go m.worker(sh)
	}
	return m, nil
}

// Registry returns the plan registry sessions deploy from.
func (m *Manager) Registry() *Registry { return m.reg }

// Shards returns the number of ingestion shards.
func (m *Manager) Shards() int { return len(m.shards) }

// shardFor pins a session ID to a shard (FNV-1a).
func (m *Manager) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return m.shards[int(h.Sum32())%len(m.shards)]
}

// worker drains one shard queue until the manager closes, then finishes
// whatever is still queued and exits.
func (m *Manager) worker(sh *shard) {
	defer m.wg.Done()
	for {
		select {
		case env := <-sh.queue:
			sh.process(env)
		case <-sh.quit:
			for {
				select {
				case env := <-sh.queue:
					sh.process(env)
				default:
					return
				}
			}
		}
	}
}

// process publishes one tuple into its session's engine. Detections fan out
// synchronously on this goroutine via the session's engine subscription.
func (sh *shard) process(env envelope) {
	if sh.gate != nil {
		sh.gate(env)
	}
	// Trace-sampled envelopes carry their enqueue time; everything else
	// skips the clock reads entirely.
	var start time.Time
	if env.enqNs != 0 {
		start = time.Now()
		sh.ins.QueueWait.Observe(time.Duration(start.UnixNano() - env.enqNs))
	}
	s := env.sess
	if !s.closed.Load() {
		// Feed validated the arity against the session schema, so Publish
		// cannot fail; a failure here is a programming error.
		if err := s.raw.Publish(env.tuple); err != nil {
			panic(fmt.Sprintf("serve: session %q: %v", s.id, err))
		}
	}
	s.out.Add(1)
	sh.processed.Add(1)
	if env.enqNs != 0 {
		end := time.Now()
		sh.ins.Detect.Observe(end.Sub(start))
		if env.sentNs != 0 {
			sh.ins.Ingest.Observe(time.Duration(end.UnixNano() - env.sentNs))
		}
	}
}

// enqueue admits one tuple into the session's shard queue, applying the
// configured backpressure policy.
//
// It holds the feed barrier for the duration: Close sets m.closed under
// the write side before stopping the workers, so a tuple admitted here is
// guaranteed to still have a live worker to drain it — Feed can never
// strand a tuple (and hang Flush) by racing Close.
func (m *Manager) enqueue(s *Session, t stream.Tuple) error {
	return m.enqueueTraced(s, t, 0)
}

// enqueueTraced is enqueue for a trace-sampled tuple: sentNs (the client-send
// unix-nano timestamp off the wire) rides in the envelope so the shard worker
// can record queue-wait, detect and end-to-end latencies. With no instruments
// installed the trace degrades to a plain enqueue.
func (m *Manager) enqueueTraced(s *Session, t stream.Tuple, sentNs int64) error {
	if s.closed.Load() {
		return fmt.Errorf("serve: session %q is closed", s.id)
	}
	if s.sealed.Load() {
		return fmt.Errorf("serve: session %q is sealed for migration", s.id)
	}
	if len(t.Fields) != s.raw.Schema().Len() {
		return fmt.Errorf("serve: session %q: tuple has %d fields, schema expects %d",
			s.id, len(t.Fields), s.raw.Schema().Len())
	}
	m.feedMu.RLock()
	defer m.feedMu.RUnlock()
	if m.closed.Load() {
		return fmt.Errorf("serve: manager closed")
	}
	sh := s.shard
	env := envelope{sess: s, tuple: t}
	if sentNs != 0 && m.ins != nil {
		env.sentNs = sentNs
		env.enqNs = time.Now().UnixNano()
	}
	// Past the closed check the tuple is guaranteed to be admitted — this
	// is where the recording tap observes it, so a recorded stream holds
	// exactly what the session accepted (including tuples DropOldest may
	// later evict: drops are a serving artifact, not part of the history).
	if s.tap != nil {
		s.tap(t)
	}
	// Count the tuple in before it becomes visible to the worker: counting
	// first means no snapshot can ever observe more tuples out of a queue
	// than went in.
	s.in.Add(1)
	sh.enqueued.Add(1)
	switch m.cfg.Policy {
	case Block:
		// The worker keeps draining until Close, and Close waits for this
		// read lock, so the send always completes.
		sh.queue <- env
	case DropOldest:
		for admitted := false; !admitted; {
			select {
			case sh.queue <- env:
				admitted = true
			default:
				// Queue full: evict the head to make room, then retry.
				// Competing with the worker's receive is fine — whichever
				// side wins, a slot frees up.
				select {
				case old := <-sh.queue:
					old.sess.dropped.Add(1)
					old.sess.out.Add(1)
					sh.dropped.Add(1)
				case sh.queue <- env:
					admitted = true
				}
			}
		}
	}
	return nil
}

// Session returns a live session by ID.
func (m *Manager) Session(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// SessionCount returns the number of live sessions.
func (m *Manager) SessionCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// CloseSession detaches and closes a session. Tuples of the session still
// queued are skipped, not published. Safe to call from a detection
// listener (i.e. from a shard worker).
func (m *Manager) CloseSession(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: no session %q", id)
	}
	s.shutdown()
	return nil
}

// Flush blocks until every tuple enqueued so far has been processed or
// dropped. Call it from the feeding side once producers are quiescent;
// concurrent feeders can make Flush wait for their tuples too.
func (m *Manager) Flush() {
	for _, sh := range m.shards {
		for sh.processed.Load()+sh.dropped.Load() < sh.enqueued.Load() {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// Close drains the shard queues, stops the workers and closes every
// session. The manager must not be used afterwards. Unlike CloseSession,
// Close must not be called from a detection listener: it waits for the
// shard workers.
func (m *Manager) Close() {
	// The write side of the feed barrier waits out in-flight Feeds and
	// makes the closed flag visible to later ones, so no tuple can be
	// admitted after the workers stop.
	m.feedMu.Lock()
	alreadyClosed := m.closed.Swap(true)
	m.feedMu.Unlock()
	if alreadyClosed {
		return
	}

	m.mu.Lock()
	sessions := make([]*Session, 0, len(m.sessions))
	for id, s := range m.sessions {
		sessions = append(sessions, s)
		delete(m.sessions, id)
	}
	m.mu.Unlock()

	for _, sh := range m.shards {
		close(sh.quit)
	}
	m.wg.Wait()
	for _, s := range sessions {
		s.shutdown()
	}
}
