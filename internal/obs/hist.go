package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: values 0..31 ns get one bucket each, then every
// power-of-two octave is split into 32 linear sub-buckets, so the relative
// error of any recorded value is bounded by 1/32 (~3%). 60 octaves cover
// every positive int64 nanosecond value (≈292 years), so recording can never
// index out of range.
const (
	histSubBits = 5
	histSubs    = 1 << histSubBits                  // linear sub-buckets per octave
	histBuckets = histSubs * (64 - histSubBits + 1) // 32 linear + 59 octaves × 32
)

// Histogram is a lock-free log-linear histogram of durations. Recording is
// one atomic add; snapshots copy the buckets without stopping writers and
// merge across shards, backends and processes. The zero value is NOT ready
// to use concurrently with Merge-heavy readers on 32-bit platforms — use
// NewHistogram; all methods are nil-safe so an unconfigured *Histogram is a
// valid no-op sink.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIdx maps a nanosecond value to its bucket.
func bucketIdx(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	u := uint64(ns)
	if u < histSubs {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= histSubBits
	sub := (u >> uint(exp-histSubBits)) & (histSubs - 1)
	return (exp-histSubBits+1)*histSubs + int(sub)
}

// bucketUpper returns the largest nanosecond value a bucket holds
// (inclusive), saturating at MaxInt64 for the top octave.
func bucketUpper(idx int) int64 {
	if idx < histSubs {
		return int64(idx)
	}
	block := idx >> histSubBits // >= 1
	exp := uint(block + histSubBits - 1)
	sub := uint64(idx & (histSubs - 1))
	if exp >= 63 {
		return math.MaxInt64
	}
	lower := uint64(1)<<exp + sub<<(exp-histSubBits)
	upper := lower + uint64(1)<<(exp-histSubBits) - 1
	if upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// Observe records one duration. Nil-safe and lock-free: callers on hot paths
// need no guard around an optional histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	h.buckets[bucketIdx(ns)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start))
}

// Count returns the number of recorded values (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot copies the histogram without pausing writers. Buckets are read
// individually, so a snapshot racing a record may see the count and the
// bucket disagree by in-flight observations — monitoring-consistent, the
// same contract the serve metrics counters follow. Quantiles are computed
// from the buckets, so they are always internally consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Sum = h.sum.Load()
	s.Buckets = make([]uint64, histBuckets)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	return s
}

// HistSnapshot is a point-in-time copy of a histogram. Snapshots merge: the
// fleet-wide distribution is the bucket-wise sum of the per-shard or
// per-backend ones, so a merged p999 is a true quantile of the union, never
// an average of quantiles.
type HistSnapshot struct {
	Count   uint64
	Sum     int64 // nanoseconds
	Buckets []uint64
}

// Merge folds another snapshot into this one.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if s.Buckets == nil {
		s.Buckets = make([]uint64, histBuckets)
	}
	for i := range o.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile returns the q-quantile (0 < q <= 1) as a duration: the upper
// bound of the bucket holding the target rank, so the true value is at most
// ~3% below the reported one. An empty snapshot reports 0.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(bucketUpper(len(s.Buckets) - 1))
}

// Mean returns the average recorded duration (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / int64(s.Count))
}

// Max returns the upper bound of the highest non-empty bucket.
func (s HistSnapshot) Max() time.Duration {
	for i := len(s.Buckets) - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return time.Duration(bucketUpper(i))
		}
	}
	return 0
}

// HistStats is the JSON-plane summary of a histogram.
type HistStats struct {
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Stats summarizes the snapshot for the JSON metrics plane.
func (s HistSnapshot) Stats() HistStats {
	return HistStats{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
		Max:   s.Max(),
	}
}
