package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHistogramBucketAccuracy(t *testing.T) {
	// Every recorded value must land in a bucket whose upper bound is within
	// 1/32 of the value — the documented relative-error bound.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		ns := rng.Int63n(int64(10 * time.Minute))
		idx := bucketIdx(ns)
		upper := bucketUpper(idx)
		if upper < ns {
			t.Fatalf("bucketUpper(%d)=%d below recorded value %d", idx, upper, ns)
		}
		if idx > 0 {
			lower := bucketUpper(idx-1) + 1
			if lower > ns {
				t.Fatalf("value %d below bucket %d lower bound %d", ns, idx, lower)
			}
			if slack := upper - lower; slack > 0 && float64(slack) > float64(ns)/32+1 {
				t.Fatalf("bucket %d spans %d..%d: width %d exceeds value/32=%d for value %d",
					idx, lower, upper, slack, ns/32, ns)
			}
		}
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	for _, ns := range []int64{0, 1, 31, 32, 33, 63, 64, 1 << 20, (1 << 62) + 12345, 1<<63 - 1} {
		idx := bucketIdx(ns)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range [0,%d)", ns, idx, histBuckets)
		}
		if up := bucketUpper(idx); up < ns {
			t.Errorf("bucketUpper(bucketIdx(%d)) = %d < value", ns, up)
		}
	}
	if idx := bucketIdx(-5); idx != 0 {
		t.Errorf("negative durations must clamp to bucket 0, got %d", idx)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1..1000 µs uniformly: p50 ≈ 500µs, p99 ≈ 990µs, within ~3.2%.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.50, 500 * time.Microsecond}, {0.90, 900 * time.Microsecond}, {0.99, 990 * time.Microsecond}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.want || float64(got) > float64(c.want)*1.033 {
			t.Errorf("p%v = %v, want within [%v, %v]", c.q*100, got, c.want, time.Duration(float64(c.want)*1.033))
		}
	}
	if mean := s.Mean(); mean < 495*time.Microsecond || mean > 506*time.Microsecond {
		t.Errorf("mean = %v, want ≈500.5µs", mean)
	}
	if max := s.Max(); max < time.Millisecond || max > 1033*time.Microsecond {
		t.Errorf("max = %v, want ≈1ms", max)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	h.ObserveSince(time.Now())
	if h.Count() != 0 {
		t.Error("nil histogram count != 0")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Error("nil histogram snapshot not empty")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	// Concurrent recorders, a merger and a snapshotter racing: the final
	// merged count must equal the number of observations, and intermediate
	// snapshots must never exceed it. Run under -race this also proves the
	// lock-free claims.
	const (
		workers = 8
		perW    = 20000
	)
	shards := make([]*Histogram, 4)
	for i := range shards {
		shards[i] = NewHistogram()
	}
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	var snapshots atomic.Uint64
	go func() { // concurrent reader racing the writers
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var merged HistSnapshot
			for _, h := range shards {
				merged.Merge(h.Snapshot())
			}
			if merged.Count > workers*perW {
				t.Errorf("racing snapshot count %d exceeds total observations %d", merged.Count, workers*perW)
				return
			}
			merged.Quantile(0.999) // must not panic mid-merge
			snapshots.Add(1)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				shards[w%len(shards)].Observe(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	var merged HistSnapshot
	for _, h := range shards {
		merged.Merge(h.Snapshot())
	}
	if merged.Count != workers*perW {
		t.Errorf("merged count = %d, want %d", merged.Count, workers*perW)
	}
	if snapshots.Load() == 0 {
		t.Error("reader never snapshotted while writers ran")
	}
}

func TestHistSnapshotMergeIsUnionQuantile(t *testing.T) {
	// A fast shard and a slow shard: the merged p50 must reflect the union,
	// not an average of the two shards' p50s.
	fast, slow := NewHistogram(), NewHistogram()
	for i := 0; i < 900; i++ {
		fast.Observe(time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		slow.Observe(time.Second)
	}
	merged := fast.Snapshot()
	merged.Merge(slow.Snapshot())
	if merged.Count != 1000 {
		t.Fatalf("merged count = %d", merged.Count)
	}
	if p50 := merged.Quantile(0.50); p50 > 2*time.Millisecond {
		t.Errorf("union p50 = %v, want ≈1ms (90%% of samples are fast)", p50)
	}
	if p99 := merged.Quantile(0.99); p99 < time.Second {
		t.Errorf("union p99 = %v, want ≥1s (slow shard dominates the tail)", p99)
	}
}

func TestSampler(t *testing.T) {
	s := NewSampler(1000) // rounds up to 1024
	hits := 0
	for i := 0; i < 1024*16; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 16 {
		t.Errorf("sampler hit %d of %d, want exactly 16 (deterministic mask)", hits, 1024*16)
	}
	if NewSampler(0).Sample() || NewSampler(-1).Sample() {
		t.Error("disabled sampler sampled")
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Error("nil sampler sampled")
	}
	every := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !every.Sample() {
			t.Fatal("NewSampler(1) must sample everything")
		}
	}
}

func TestLoggerRingAndLevels(t *testing.T) {
	var sunk []Event
	l := NewLogger(16, func(e Event) { sunk = append(sunk, e) })
	l.Debug("dropped") // below default LevelInfo
	for i := 0; i < 20; i++ {
		l.Info("event", F("i", i))
	}
	l.Error("boom", F("err", "x"))
	if got := l.Total(); got != 21 {
		t.Errorf("total = %d, want 21 (debug filtered)", got)
	}
	recent := l.Recent(0)
	if len(recent) != 16 {
		t.Fatalf("ring retained %d, want 16", len(recent))
	}
	if recent[len(recent)-1].Msg != "boom" {
		t.Errorf("last event = %q, want boom", recent[len(recent)-1].Msg)
	}
	if recent[0].Fields[0].Value.(int) <= recent[1].Fields[0].Value.(int)-2 {
		t.Errorf("events not oldest-first: %v then %v", recent[0], recent[1])
	}
	two := l.Recent(2)
	if len(two) != 2 || two[1].Msg != "boom" || two[0].Msg != "event" {
		t.Errorf("Recent(2) = %v", two)
	}
	if len(sunk) != 21 {
		t.Errorf("sink saw %d events, want 21", len(sunk))
	}
	if s := (Event{Level: LevelWarn, Msg: "m", Fields: []Field{F("k", "v")}}).String(); s != "warn m k=v" {
		t.Errorf("Event.String() = %q", s)
	}
	var nilL *Logger
	nilL.Info("no panic")
	nilL.Logf("still %s", "fine")
	if nilL.Total() != 0 || nilL.Recent(5) != nil {
		t.Error("nil logger not empty")
	}
}

// promLine matches one exposition sample: name{labels} value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+Inf]+)$`)

// parseProm validates Prometheus text exposition 0.0.4 line by line and
// returns the sample names seen. It fails the test on malformed lines,
// samples without a TYPE header, or non-cumulative histogram buckets.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	types := map[string]string{}
	samples := map[string]float64{}
	lastCum := map[string]float64{} // histogram name → last cumulative bucket
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("duplicate TYPE for %s", parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line %q", line)
		}
		name := m[1]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suffix); b != name && types[b] == "histogram" {
				base = b
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("sample %q has no TYPE header", name)
		}
		var v float64
		if m[3] == "+Inf" {
			v = float64(int64(1) << 62)
		} else {
			var err error
			if v, err = strconv.ParseFloat(m[3], 64); err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
		}
		samples[name+m[2]] = v
		if strings.HasSuffix(name, "_bucket") && types[base] == "histogram" {
			key := base + m[2][:strings.Index(m[2], "le=")]
			if v < lastCum[key] {
				t.Fatalf("histogram %s buckets not cumulative at %q", base, line)
			}
			lastCum[key] = v
		}
	}
	return samples
}

func TestPromWriterExposition(t *testing.T) {
	w := NewPromWriter()
	w.Counter("requests_total", "Total requests.", L("backend", "b0"), 42)
	w.Counter("requests_total", "", L("backend", "b1"), 7)
	w.Gauge("queue_depth", "Current depth.", nil, 3)
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	w.Histogram("latency_seconds", "Request latency.", L("stage", `we"ird\`), h.Snapshot())
	text := string(w.Bytes())
	samples := parseProm(t, text)
	if samples[`requests_total{backend="b0"}`] != 42 {
		t.Errorf("b0 counter missing or wrong in:\n%s", text)
	}
	if samples[`queue_depth`] != 3 {
		t.Errorf("gauge missing in:\n%s", text)
	}
	if strings.Count(text, "# TYPE requests_total") != 1 {
		t.Error("TYPE header emitted more than once for requests_total")
	}
	// The histogram must end at +Inf == count.
	var infKey string
	for k := range samples {
		if strings.Contains(k, "latency_seconds_bucket") && strings.Contains(k, "+Inf") {
			infKey = k
		}
	}
	if infKey == "" || samples[infKey] != 100 {
		t.Errorf("latency +Inf bucket = %v, want 100 in:\n%s", samples[infKey], text)
	}
	countKey := `latency_seconds_count{stage="we\"ird\\"}`
	if samples[countKey] != 100 {
		t.Errorf("histogram count sample missing (escaping?), have %v", samples)
	}
}

func TestAdminServerEndpoints(t *testing.T) {
	hist := NewHistogram()
	hist.Observe(5 * time.Millisecond)
	logger := NewLogger(16, nil)
	logger.Info("started", F("port", 1234))
	var healthy atomic.Bool
	healthy.Store(true)
	admin, err := StartAdmin("127.0.0.1:0", AdminConfig{
		Collect: func(w *PromWriter) {
			w.Counter("serve_tuples_total", "Tuples.", nil, 99)
			w.Histogram("stage_seconds", "Stage latency.", nil, hist.Snapshot())
		},
		MetricsJSON: func() any { return map[string]int{"sessions": 3} },
		Healthy: func() error {
			if !healthy.Load() {
				return fmt.Errorf("manager closed")
			}
			return nil
		},
		Ready:  func() error { return fmt.Errorf("0 of 3 backends live") },
		Events: logger.Recent,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	base := "http://" + admin.Addr().String()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	samples := parseProm(t, body)
	if samples["serve_tuples_total"] != 99 {
		t.Errorf("/metrics missing serve_tuples_total:\n%s", body)
	}
	if samples["stage_seconds_count"] != 1 {
		t.Errorf("/metrics missing stage histogram:\n%s", body)
	}

	code, body = get("/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json status %d", code)
	}
	var mj map[string]int
	if err := json.Unmarshal([]byte(body), &mj); err != nil || mj["sessions"] != 3 {
		t.Errorf("/metrics.json = %q, err %v", body, err)
	}

	if code, body = get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	healthy.Store(false)
	if code, body = get("/healthz"); code != 503 || !strings.Contains(body, "manager closed") {
		t.Errorf("/healthz after close = %d %q, want 503 manager closed", code, body)
	}
	if code, body = get("/readyz"); code != 503 || !strings.Contains(body, "backends live") {
		t.Errorf("/readyz = %d %q, want 503", code, body)
	}

	code, body = get("/events?n=10")
	if code != 200 {
		t.Fatalf("/events status %d", code)
	}
	var events []Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/events not JSON: %v in %q", err, body)
	}
	if len(events) != 1 || events[0].Msg != "started" {
		t.Errorf("/events = %+v", events)
	}

	if code, _ = get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	if err := admin.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	var nilAdmin *AdminServer
	if err := nilAdmin.Close(); err != nil {
		t.Errorf("nil close: %v", err)
	}
}
