// Package obs is the observability core of the serving runtime: low-overhead
// primitives every other layer records into, plus the HTTP admin plane that
// exposes them.
//
// The design goal is that observing a production hot path costs nearly
// nothing when idle and a bounded, predictable amount when active:
//
//   - Histogram — a lock-free log-linear latency histogram. Recording is one
//     atomic add into a bucket indexed by bit arithmetic (no locks, no
//     floating point); snapshots are consistent-enough per-bucket copies that
//     merge across shards, backends and gateways, so a fleet-wide p999 is the
//     quantile of the summed buckets, not an average of averages. Relative
//     bucket error is bounded by 1/32 (~3%).
//   - Sampler — a deciding counter for 1-in-N sampling. The unsampled path
//     pays one atomic increment and a mask; everything expensive (timestamps,
//     histogram records, trace propagation) happens only on sampled events.
//   - Trace timestamps — a sampled batch frame carries its client-send time
//     on the wire (see package wire), letting every hop record its stage of
//     the client-send → gateway-forward → backend-enqueue → NFA-match →
//     detection-ack pipeline into stage histograms without any per-tuple
//     cost on unsampled traffic.
//   - Logger — a structured, leveled event log with a bounded in-memory ring,
//     replacing ad-hoc printf logging so lifecycle events carry fields
//     (backend ID, incarnation, state) that the admin plane can serve as
//     JSON. A nil *Logger is a valid no-op logger.
//   - AdminServer — one HTTP listener per process serving /metrics
//     (Prometheus text exposition), /metrics.json, /healthz, /readyz,
//     /events and /debug/pprof/*.
//
// Cardinality rules: metric labels are bounded by configuration, never by
// traffic — backend IDs and shard indexes are fine, session IDs are not
// (sessions appear only in aggregate counters and in the JSON plane, which
// is paginated by being a point-in-time snapshot).
package obs

import "sync/atomic"

// Sampler decides 1-in-N sampling with a single atomic counter. N is rounded
// up to a power of two so the decision is an increment and a mask — cheap
// enough for a per-batch hot path. A zero or negative N samples nothing.
type Sampler struct {
	mask uint64
	on   bool
	n    atomic.Uint64
}

// NewSampler returns a sampler selecting roughly one event in every-th.
// every <= 0 disables sampling; every is rounded up to a power of two
// (so 1000 samples 1/1024). every == 1 samples everything.
func NewSampler(every int) *Sampler {
	s := &Sampler{}
	if every <= 0 {
		return s
	}
	p := uint64(1)
	for p < uint64(every) {
		p <<= 1
	}
	s.mask = p - 1
	s.on = true
	return s
}

// Sample reports whether this event is selected. Safe for concurrent use; a
// nil sampler never samples.
func (s *Sampler) Sample() bool {
	if s == nil || !s.on {
		return false
	}
	return s.n.Add(1)&s.mask == 0
}
