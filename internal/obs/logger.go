package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Level grades event severity.
type Level int8

// Levels, in increasing severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int8(l))
	}
}

// MarshalText makes levels render as their names in the JSON events plane.
func (l Level) MarshalText() ([]byte, error) { return []byte(l.String()), nil }

// UnmarshalText parses a level name, so /events payloads round-trip.
func (l *Level) UnmarshalText(text []byte) error {
	switch s := string(text); s {
	case "debug":
		*l = LevelDebug
	case "info":
		*l = LevelInfo
	case "warn":
		*l = LevelWarn
	case "error":
		*l = LevelError
	default:
		return fmt.Errorf("obs: unknown level %q", s)
	}
	return nil
}

// Field is one structured key/value attached to an event.
type Field struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// F builds a field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one structured log entry.
type Event struct {
	Time   time.Time `json:"time"`
	Level  Level     `json:"level"`
	Msg    string    `json:"msg"`
	Fields []Field   `json:"fields,omitempty"`
}

// String renders "LEVEL msg key=value key=value".
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Level.String())
	b.WriteByte(' ')
	b.WriteString(e.Msg)
	for _, f := range e.Fields {
		fmt.Fprintf(&b, " %s=%v", f.Key, f.Value)
	}
	return b.String()
}

// Logger is a structured, leveled event log with a bounded in-memory ring of
// recent events, built for lifecycle events (ejections, re-admissions,
// recovery attempts) rather than request logging: volume is low, but each
// event's fields matter and the admin plane serves the recent ring at
// /events. A nil *Logger is a valid no-op logger, so call sites need no
// guards. Safe for concurrent use.
type Logger struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	total uint64
	sink  func(Event) // optional mirror (terminal, test log, Logf shim)
	min   Level
}

// NewLogger returns a logger retaining the last ringSize events (minimum 16)
// at LevelInfo and above. sink, when non-nil, additionally receives every
// retained event synchronously — keep it fast.
func NewLogger(ringSize int, sink func(Event)) *Logger {
	if ringSize < 16 {
		ringSize = 16
	}
	return &Logger{ring: make([]Event, ringSize), sink: sink, min: LevelInfo}
}

// SetLevel drops events below min.
func (l *Logger) SetLevel(min Level) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.min = min
	l.mu.Unlock()
}

// Log records one event.
func (l *Logger) Log(level Level, msg string, fields ...Field) {
	if l == nil {
		return
	}
	e := Event{Time: time.Now(), Level: level, Msg: msg, Fields: fields}
	l.mu.Lock()
	if level < l.min {
		l.mu.Unlock()
		return
	}
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	l.total++
	sink := l.sink
	l.mu.Unlock()
	if sink != nil {
		sink(e)
	}
}

// Debug, Info, Warn and Error record one event at the named level.
func (l *Logger) Debug(msg string, fields ...Field) { l.Log(LevelDebug, msg, fields...) }
func (l *Logger) Info(msg string, fields ...Field)  { l.Log(LevelInfo, msg, fields...) }
func (l *Logger) Warn(msg string, fields ...Field)  { l.Log(LevelWarn, msg, fields...) }
func (l *Logger) Error(msg string, fields ...Field) { l.Log(LevelError, msg, fields...) }

// Logf is the printf compatibility shim for call sites not yet migrated to
// fields: the formatted string becomes an Info event with no fields.
func (l *Logger) Logf(format string, args ...any) {
	l.Log(LevelInfo, fmt.Sprintf(format, args...))
}

// Total returns how many events were retained since creation (0 for nil).
func (l *Logger) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Recent returns up to n of the most recent events, oldest first. n <= 0
// returns everything retained. Nil-safe.
func (l *Logger) Recent(n int) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	size := len(l.ring)
	have := int(l.total)
	if have > size {
		have = size
	}
	if n <= 0 || n > have {
		n = have
	}
	out := make([]Event, 0, n)
	// Events live at positions [next-have, next); take the last n of them.
	for i := have - n; i < have; i++ {
		out = append(out, l.ring[(l.next-have+i+size)%size])
	}
	return out
}
