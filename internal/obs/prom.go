package obs

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// PromWriter accumulates Prometheus text-exposition-format output. Layers
// that own counters implement a WriteProm(w *obs.PromWriter) method; the
// admin plane calls them per scrape. Emit metrics for one name together —
// the TYPE header is written once, on the name's first sample.
type PromWriter struct {
	buf   bytes.Buffer
	typed map[string]string // name → emitted TYPE
}

// NewPromWriter returns an empty exposition buffer.
func NewPromWriter() *PromWriter {
	return &PromWriter{typed: make(map[string]string)}
}

// Labels is an ordered label set. Order is preserved in the exposition so
// output is deterministic (tests and diffs depend on it).
type Labels [][2]string

// L builds a single-label set; chain with Add for more.
func L(key, value string) Labels { return Labels{{key, value}} }

// Add appends a label and returns the extended set.
func (l Labels) Add(key, value string) Labels { return append(l, [2]string{key, value}) }

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (w *PromWriter) header(name, typ, help string) {
	if w.typed[name] == "" {
		if help != "" {
			fmt.Fprintf(&w.buf, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(&w.buf, "# TYPE %s %s\n", name, typ)
		w.typed[name] = typ
	}
}

func (w *PromWriter) sample(name string, labels Labels, value string) {
	w.buf.WriteString(name)
	if len(labels) > 0 {
		w.buf.WriteByte('{')
		for i, kv := range labels {
			if i > 0 {
				w.buf.WriteByte(',')
			}
			fmt.Fprintf(&w.buf, `%s="%s"`, kv[0], escapeLabel(kv[1]))
		}
		w.buf.WriteByte('}')
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(value)
	w.buf.WriteByte('\n')
}

// Counter emits one monotonically-increasing sample.
func (w *PromWriter) Counter(name, help string, labels Labels, v uint64) {
	w.header(name, "counter", help)
	w.sample(name, labels, fmt.Sprintf("%d", v))
}

// Gauge emits one instantaneous sample.
func (w *PromWriter) Gauge(name, help string, labels Labels, v float64) {
	w.header(name, "gauge", help)
	w.sample(name, labels, formatFloat(v))
}

// Histogram emits a snapshot as a classic Prometheus histogram: cumulative
// buckets in seconds, _sum and _count. Only buckets where the cumulative
// count changes are emitted (plus +Inf), keeping the exposition proportional
// to the number of distinct latencies, not the 2k internal buckets.
func (w *PromWriter) Histogram(name, help string, labels Labels, s HistSnapshot) {
	w.header(name, "histogram", help)
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		le := float64(bucketUpper(i)) / 1e9
		w.sample(name+"_bucket", labels.Add("le", formatFloat(le)), fmt.Sprintf("%d", cum))
	}
	w.sample(name+"_bucket", labels.Add("le", "+Inf"), fmt.Sprintf("%d", s.Count))
	w.sample(name+"_sum", labels, formatFloat(float64(s.Sum)/1e9))
	w.sample(name+"_count", labels, fmt.Sprintf("%d", s.Count))
}

// Bytes returns the exposition accumulated so far.
func (w *PromWriter) Bytes() []byte { return w.buf.Bytes() }

// formatFloat renders a float without exponent notation surprises for
// integral values (Prometheus accepts both; plain decimals read better).
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// SortedLabelKeys is a small helper for callers building label sets from
// maps deterministically.
func SortedLabelKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
