package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// AdminConfig wires one process's observability sources into an AdminServer.
// Every hook is optional; a missing one degrades its endpoint gracefully
// (empty exposition, always-healthy, no events).
type AdminConfig struct {
	// Collect writes the process's Prometheus exposition. Called once per
	// /metrics scrape.
	Collect func(w *PromWriter)
	// MetricsJSON returns the /metrics.json payload (any JSON-marshalable
	// snapshot; typically the serve.Metrics struct plus histogram stats).
	MetricsJSON func() any
	// Healthy reports liveness: nil → 200, error → 503 with the error text.
	// Liveness is "the process is up and its core loop exists" — a gestured
	// daemon is unhealthy only once its manager closed.
	Healthy func() error
	// Ready reports readiness to take traffic: nil → 200, error → 503. A
	// gateway is unready while no backend is live; a single node mirrors
	// Healthy. Distinct from liveness so an orchestrator drains traffic
	// without killing the process.
	Ready func() error
	// Events returns the most recent structured log events, oldest first
	// (the Logger.Recent contract); served as JSON at /events?n=.
	Events func(n int) []Event
	// Routes adds process-specific endpoints to the admin mux (path →
	// handler) — e.g. a gateway's membership plane (/backends,
	// /backends/drain, /migrations). Registered alongside the fixed
	// endpoints; a route must not reuse one of their paths (the mux
	// panics on a duplicate pattern).
	Routes map[string]http.HandlerFunc
}

// AdminServer is the HTTP observability plane of one process: /metrics
// (Prometheus text), /metrics.json, /healthz, /readyz, /events and
// /debug/pprof/*. It binds its own listener so the data-plane TCP port and
// the admin port stay independent — a wedged frame loop never blocks a
// scrape, and the admin port can stay firewalled-in while the data port is
// open.
type AdminServer struct {
	cfg AdminConfig
	ln  net.Listener
	srv *http.Server
}

// StartAdmin listens on addr (e.g. ":9090" or "127.0.0.1:0") and serves the
// admin plane until Close.
func StartAdmin(addr string, cfg AdminConfig) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	a := &AdminServer{cfg: cfg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/metrics.json", a.handleMetricsJSON)
	mux.HandleFunc("/healthz", probeHandler(cfg.Healthy))
	mux.HandleFunc("/readyz", probeHandler(cfg.Ready))
	mux.HandleFunc("/events", a.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for path, h := range cfg.Routes {
		mux.HandleFunc(path, h)
	}
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound listener address.
func (a *AdminServer) Addr() net.Addr { return a.ln.Addr() }

// Close stops the admin listener. Nil-safe, so cmds can defer it
// unconditionally whether or not -admin-addr was given.
func (a *AdminServer) Close() error {
	if a == nil {
		return nil
	}
	return a.srv.Close()
}

func (a *AdminServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	pw := NewPromWriter()
	if a.cfg.Collect != nil {
		a.cfg.Collect(pw)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(pw.Bytes())
}

func (a *AdminServer) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	var v any
	if a.cfg.MetricsJSON != nil {
		v = a.cfg.MetricsJSON()
	}
	writeJSON(w, v)
}

func (a *AdminServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil {
			n = v
		}
	}
	events := []Event{}
	if a.cfg.Events != nil {
		if e := a.cfg.Events(n); e != nil {
			events = e
		}
	}
	writeJSON(w, events)
}

// probeHandler adapts a health hook into a 200/503 endpoint.
func probeHandler(probe func() error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if probe != nil {
			if err := probe(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
