package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// AtomicField enforces atomics-only access to counter fields, in two
// halves:
//
//  1. Any struct field whose address is passed to a sync/atomic function
//     (atomic.AddUint64(&s.n, 1), atomic.LoadInt64(&s.v), ...) must never
//     be read or written plainly anywhere in the package — a plain access
//     racing an atomic one is undefined, and unlike a mutex the race
//     detector only catches it when the interleaving actually happens.
//     Composite-literal initialisation is exempt (pre-publication).
//
//  2. A method with a value receiver on a struct containing
//     atomic.Int64-style fields copies the atomic out from under
//     concurrent writers; such receivers must be pointers.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly; no copied receivers with atomic fields",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: find fields used atomically, remembering the sanctioned
	// &x.f selector nodes so pass 2 can skip them.
	atomicFields := map[*types.Var]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods of atomic.Int64 etc. are the safe API
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldVarOf(pass.Info, sel); fv != nil {
					atomicFields[fv] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2: every other access to those fields is a race waiting for
	// its interleaving.
	if len(atomicFields) > 0 {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				fv := fieldVarOf(pass.Info, sel)
				if fv == nil || !atomicFields[fv] {
					return true
				}
				pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package; plain access races it (use atomic.Load/Store)", fv.Name())
				return true
			})
		}
	}

	// Value receivers copying atomic fields.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recv := fd.Recv.List[0]
			t := pass.Info.TypeOf(recv.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if name := atomicFieldIn(t); name != "" {
				pass.Reportf(fd.Name.Pos(), "method %s has a value receiver but %s contains atomic field %s; copying it tears concurrent updates (use a pointer receiver)",
					fd.Name.Name, types.TypeString(t, types.RelativeTo(pass.Pkg)), name)
			}
		}
	}
	return nil
}

// fieldVarOf resolves a selector to the struct field it denotes, or nil.
func fieldVarOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s := info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	// Qualified (pkg.Var) and other non-field selections land here.
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// atomicFieldIn reports the name of the first direct field of struct type
// t (or a descriptive path for embedded structs) whose type comes from
// sync/atomic, or "".
func atomicFieldIn(t types.Type) string {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if named := namedOf(f.Type()); named != nil {
			if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
				return f.Name()
			}
		}
		if _, isStruct := f.Type().Underlying().(*types.Struct); isStruct && f.Embedded() {
			if inner := atomicFieldIn(f.Type()); inner != "" {
				return fmt.Sprintf("%s.%s", f.Name(), inner)
			}
		}
	}
	return ""
}
