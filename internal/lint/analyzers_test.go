package lint

import (
	"path/filepath"
	"sync"
	"testing"
)

// sharedLoader caches the from-source type-check of the standard library
// across every test in the package; building one per test would redo that
// work each time.
var (
	loaderOnce sync.Once
	loader     *Loader
)

func testLoader() *Loader {
	loaderOnce.Do(func() { loader = NewLoader() })
	return loader
}

// TestFixtures runs every analyzer over its deliberate-violation fixture
// package (each also containing a clean twin file) and checks the
// reported diagnostics against the // want comments.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", a.Name)
			problems, err := CheckFixture(testLoader(), a, dir, "gesturecep/internal/lintfixture/"+a.Name)
			if err != nil {
				t.Fatalf("fixture %s: %v", a.Name, err)
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}
