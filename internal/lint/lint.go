// Package lint is a suite of custom static analyzers that enforce, at
// compile time, the concurrency and performance contracts the runtime
// otherwise enforces only by tests and -race soaks: frame-pool buffer
// ownership (framepool), the documented ps.mu → be.mu lock order
// (lockorder), atomics-only counter fields (atomicfield), structured
// logging in internal packages (obslog), and allocation-free hot paths
// (hotpathalloc).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic — but is built on the standard library alone
// (go/parser, go/types and the source importer), so the module stays
// dependency-free. Analyzers are per-package and purely syntactic +
// type-informed; none require facts from dependencies.
//
// A diagnostic may be suppressed with a directive comment on the same
// line or the line immediately above:
//
//	//lint:ignore framepool reason the buffer is owned by the arena
//
// The reason is mandatory: an unexplained suppression is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one named check. Run inspects a single type-checked package
// and reports findings through the Pass. A non-nil error means the
// analyzer itself could not run (distinct from "found violations").
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		FramePool,
		LockOrder,
		AtomicField,
		ObsLog,
		HotPathAlloc,
	}
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics sorted by position, after applying //lint:ignore directives.
// Analyzer errors (not findings) are returned as the error.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var errs []string
	for _, pkg := range pkgs {
		// Production contracts only: when the loader (or the go vet
		// protocol) hands us test files, the analyzers do not inspect
		// them. They still participate in type-checking.
		var prodFiles []*ast.File
		for _, f := range pkg.Files {
			if !strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				prodFiles = append(prodFiles, f)
			}
		}
		ignores := collectIgnores(pkg.Fset, prodFiles)
		for _, a := range analyzers {
			var raw []Diagnostic
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    prodFiles,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				errs = append(errs, fmt.Sprintf("%s: %s: %v", a.Name, pkg.Path, err))
				continue
			}
			for _, d := range raw {
				if !ignores.suppresses(pkg.Fset, d) {
					diags = append(diags, d)
				}
			}
		}
		diags = append(diags, ignores.malformed...)
	}
	sortDiagnostics(diags, pkgs)
	if len(errs) > 0 {
		return diags, fmt.Errorf("%s", strings.Join(errs, "\n"))
	}
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic, pkgs []*Package) {
	if len(pkgs) == 0 {
		return
	}
	fset := pkgs[0].Fset
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// --- suppression directives ---

var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

type ignoreSet struct {
	// byLine maps file → line → analyzer names suppressed there. A
	// directive at line L covers diagnostics on L (trailing comment) and
	// L+1 (comment line above the statement).
	byLine    map[string]map[int]map[string]bool
	malformed []Diagnostic
}

func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	ig := &ignoreSet{byLine: map[string]map[int]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					ig.malformed = append(ig.malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintdirective",
						Message:  "//lint:ignore directive needs a reason: //lint:ignore <analyzer> <why>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ig.byLine[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					ig.byLine[pos.Filename] = lines
				}
				for _, name := range strings.Split(m[1], ",") {
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						if lines[ln] == nil {
							lines[ln] = map[string]bool{}
						}
						lines[ln][strings.TrimSpace(name)] = true
					}
				}
			}
		}
	}
	return ig
}

func (ig *ignoreSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	lines := ig.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	names := lines[pos.Line]
	return names[d.Analyzer] || names["all"]
}

// --- shared type/AST helpers used by the analyzers ---

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for builtins, conversions, function-typed variables and method values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeName returns the fully qualified name of the called function —
// e.g. "gesturecep/internal/wire.GetFrameBuf" or
// "(*gesturecep/internal/wire.Reader).Detach" — or "" when unresolvable.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.FullName()
	}
	return ""
}

// funcFullName returns the manifest-style fully qualified name of a
// declared function: pkgpath.Name, (pkgpath.Recv).Name or
// (*pkgpath.Recv).Name.
func funcFullName(info *types.Info, decl *ast.FuncDecl) string {
	fn, _ := info.Defs[decl.Name].(*types.Func)
	if fn == nil {
		return ""
	}
	return fn.FullName()
}

// identVar resolves an expression to the *types.Var of a plain local
// identifier, or nil (selectors, indexes and globals are not tracked).
func identVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.ObjectOf(id).(*types.Var)
	if v == nil || v.IsField() || v.Parent() == nil || v.Parent().Parent() == types.Universe {
		return nil
	}
	return v
}

// namedOf unwraps pointers and aliases down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}
