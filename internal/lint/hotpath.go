package lint

import (
	_ "embed"
	"go/ast"
	"go/types"
	"strings"
)

// HotPathAlloc flags per-call allocation sources inside functions named
// in the checked-in hot-path manifest (hotpaths.txt) or annotated with a
// //lint:hotpath doc comment. The runtime allocation gates (codec
// 0-allocs/frame, gateway forward-path ≤450 allocs/op) catch regressions
// that actually execute in a benchmark; this analyzer catches them at
// review time and on paths the benchmarks do not drive.
//
// Flagged inside a hot function:
//   - a closure capturing a variable declared inside an enclosing loop
//     (the capture forces a per-iteration heap allocation);
//   - fmt.Sprintf/Sprint/Sprintln/Errorf and errors.New, unless the call
//     is part of a return statement (a cold error exit);
//   - map and chan construction (literals or make);
//   - interface boxing: passing or converting a non-pointer-shaped,
//     non-constant value to an interface type (each boxing heap-allocates
//     the value), with the same return-statement exemption.
//
// Genuinely cold spots inside hot functions are suppressed inline with
// //lint:ignore hotpathalloc <reason>.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocation sources inside manifest-listed hot-path functions",
	Run:  runHotPathAlloc,
}

//go:embed hotpaths.txt
var hotPathManifestRaw string

// HotPathManifest returns the embedded manifest entries (fully qualified
// function names, comments stripped).
func HotPathManifest() []string {
	var entries []string
	for _, line := range strings.Split(hotPathManifestRaw, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries = append(entries, line)
	}
	return entries
}

// manifestPkgPath extracts the package path of a manifest entry:
// "(*pkg/path.Type).Func" or "pkg/path.Func".
func manifestPkgPath(entry string) string {
	s := entry
	if strings.HasPrefix(s, "(") {
		s = strings.TrimPrefix(s, "(")
		s = strings.TrimPrefix(s, "*")
		if i := strings.IndexByte(s, ')'); i >= 0 {
			s = s[:i]
		}
	}
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[:i]
	}
	return s
}

// ManifestPackages returns the distinct package paths named by manifest
// entries, in manifest order — the load set for a drift check.
func ManifestPackages() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range HotPathManifest() {
		p := manifestPkgPath(e)
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// StaleManifest cross-checks the manifest against the loaded packages:
// an entry whose package was loaded but whose function no longer exists
// is reported, so renaming a hot function without updating the manifest
// fails the lint run instead of silently un-gating the path.
func StaleManifest(pkgs []*Package) []Diagnostic {
	declared := map[string]bool{}
	loaded := map[string]bool{}
	for _, pkg := range pkgs {
		loaded[pkg.Path] = true
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if name := funcFullName(pkg.Info, fd); name != "" {
						declared[name] = true
					}
				}
			}
		}
	}
	var diags []Diagnostic
	for _, entry := range HotPathManifest() {
		if !loaded[manifestPkgPath(entry)] {
			continue // package outside this run's patterns; cannot judge
		}
		if !declared[entry] {
			diags = append(diags, Diagnostic{
				Analyzer: "hotpathalloc",
				Message:  "stale hot-path manifest entry " + entry + ": no such function (update internal/lint/hotpaths.txt)",
			})
		}
	}
	return diags
}

var hotSprintfFuncs = map[string]bool{
	"fmt.Sprintf":  true,
	"fmt.Sprint":   true,
	"fmt.Sprintln": true,
	"fmt.Errorf":   true,
	"errors.New":   true,
}

func runHotPathAlloc(pass *Pass) error {
	manifest := map[string]bool{}
	for _, e := range HotPathManifest() {
		manifest[e] = true
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !manifest[funcFullName(pass.Info, fd)] && !hasHotPathAnnotation(fd.Doc) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func hasHotPathAnnotation(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//lint:hotpath" {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// Walk with an explicit parent stack so each node knows whether it
	// sits inside a loop or a return statement.
	var stack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.FuncLit:
			if v := loopCapture(pass, n, stack, fd); v != "" {
				pass.Reportf(n.Pos(), "hot path %s: closure captures loop variable %s, allocating per iteration", name, v)
			}
		case *ast.CallExpr:
			callee := calleeName(pass.Info, n)
			if hotSprintfFuncs[callee] {
				if !inReturn(stack) {
					pass.Reportf(n.Pos(), "hot path %s: %s allocates; format off the hot path or return the error directly", name, callee)
				}
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					switch pass.Info.TypeOf(n.Args[0]).Underlying().(type) {
					case *types.Map:
						pass.Reportf(n.Pos(), "hot path %s: make(map) allocates; hoist it out of the hot path", name)
					case *types.Chan:
						pass.Reportf(n.Pos(), "hot path %s: make(chan) allocates; hoist it out of the hot path", name)
					}
				}
			}
			checkBoxing(pass, name, n, stack)
		case *ast.CompositeLit:
			if t := pass.Info.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "hot path %s: map literal allocates; hoist it out of the hot path", name)
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
}

// inReturn reports whether the innermost statement on the stack is a
// return — the canonical cold error exit.
func inReturn(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ReturnStmt:
			return true
		case ast.Stmt:
			return false
		}
	}
	return false
}

// loopCapture reports the name of a variable that the closure captures
// from an enclosing loop body (declared inside the loop, outside the
// closure), or "".
func loopCapture(pass *Pass, lit *ast.FuncLit, stack []ast.Node, fd *ast.FuncDecl) string {
	// Find the innermost enclosing loop, if any.
	var loop ast.Node
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loop = stack[i]
		}
	}
	if loop == nil {
		return ""
	}
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, okv := pass.Info.Uses[id].(*types.Var)
		if !okv || v.IsField() {
			return true
		}
		// Declared inside the loop but outside the closure.
		if v.Pos() >= loop.Pos() && v.Pos() < loop.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			captured = v.Name()
		}
		return true
	})
	return captured
}

// checkBoxing flags call arguments that convert a non-pointer-shaped,
// non-constant value to an interface parameter: each such conversion
// heap-allocates a copy of the value. Pointer-shaped kinds (pointers,
// maps, chans, funcs) fit the interface word and stay allocation-free.
func checkBoxing(pass *Pass, hot string, call *ast.CallExpr, stack []ast.Node) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	if hotSprintfFuncs[fn.FullName()] {
		return // the whole call was already reported once
	}
	if inReturn(stack) {
		return // cold error exits wrap concrete values into error
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, okSlice := params.At(params.Len() - 1).Type().(*types.Slice)
			if !okSlice {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, okTV := pass.Info.Types[arg]
		if !okTV || tv.Value != nil || tv.IsNil() {
			continue // constants and nil never box at runtime
		}
		at := tv.Type
		if at == nil || boxingFree(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path %s: passing %s to interface parameter boxes it on the heap", hot, types.TypeString(at, types.RelativeTo(pass.Pkg)))
	}
}

// boxingFree reports whether storing a value of type t in an interface
// avoids a heap allocation: interfaces themselves, and pointer-shaped
// single-word kinds.
func boxingFree(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	}
	return false
}
