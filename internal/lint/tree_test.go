package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTreeClean is the gate: the full analyzer suite plus the
// stale-manifest check must report nothing on the real tree. A finding
// here is either a genuine contract violation to fix or a cold spot to
// suppress with //lint:ignore and a reason.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	pkgs, err := testLoader().Load("./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	diags = append(diags, StaleManifest(pkgs)...)
	for _, d := range diags {
		t.Errorf("%s", FormatDiagnostic(pkgs[0].Fset, d))
	}
}

// TestSeededViolation proves the gate gates: a copy of a fixture file
// with a deliberate violation is planted in a temporary package inside
// the module, and the suite must report it. If this fails, a broken
// loader or analyzer could silently let CI pass on a dirty tree.
func TestSeededViolation(t *testing.T) {
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", "obslog")
	src, err := os.ReadFile(filepath.Join(dir, "bad.go"))
	if err != nil {
		t.Fatal(err)
	}
	// Strip the want comments so only the violations themselves remain,
	// and plant the file in a fresh temp dir loaded as a module-internal
	// package path.
	var kept []string
	for _, line := range strings.Split(string(src), "\n") {
		if i := strings.Index(line, "// want"); i >= 0 {
			line = strings.TrimRight(line[:i], " \t")
		}
		kept = append(kept, line)
	}
	seeded := t.TempDir()
	if err := os.WriteFile(filepath.Join(seeded, "seeded.go"), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := testLoader().LoadDir(seeded, "gesturecep/internal/seededviolation")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run([]*Package{pkg}, All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("seeded violations produced zero diagnostics; the gate is not gating")
	}
	for _, d := range diags {
		if d.Analyzer == "obslog" {
			return
		}
	}
	t.Fatalf("no obslog diagnostic among %d findings", len(diags))
}
