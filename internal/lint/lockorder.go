package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// LockOrder enforces documented mutex acquisition orders. The gateway's
// contract (internal/cluster/gateway.go) is that proxySession.mu is
// always acquired before backend.mu, and Gateway.memberMu before
// Gateway.mu — the reverse nesting is a deadlock that only fires under
// the right interleaving, which is exactly what a soak can miss.
//
// The analyzer is driven by a registration table of ordered pairs keyed
// by (type name, field name): acquiring pair.First while pair.Second is
// held in the same function is reported. New lock pairs ride along by
// adding a RegisterLockOrder call (or a table entry) when the order is
// documented.
//
// Because the check is intra-procedural, functions whose callers hold a
// lock declare it with a doc-comment annotation, extending coverage one
// level down the call graph:
//
//	//lint:holds proxySession.mu
//	func (gw *Gateway) rehomeLocked(ps *proxySession) error { ... }
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "enforce documented mutex acquisition orders (ps.mu before be.mu)",
	Run:  runLockOrder,
}

// lockKey identifies an annotated lock: the named type carrying it and
// the mutex field name. Matching is by type base name, not full path, so
// analyzer fixtures can model the shape without importing internals.
type lockKey struct {
	Type  string
	Field string
}

func (k lockKey) String() string { return k.Type + "." + k.Field }

// lockOrderPair declares "First is acquired before Second"; holding
// Second while acquiring First is the violation.
type lockOrderPair struct{ First, Second lockKey }

var lockOrderTable = []lockOrderPair{
	// internal/cluster: the re-home and migration paths hold ps.mu and
	// take be.mu inside it; the reverse nesting deadlocks against them.
	{lockKey{"proxySession", "mu"}, lockKey{"backend", "mu"}},
	// internal/cluster: membership verbs serialize on memberMu and use
	// gw.mu for each fine-grained step inside.
	{lockKey{"Gateway", "memberMu"}, lockKey{"Gateway", "mu"}},
}

// RegisterLockOrder adds an ordered pair (firstType.firstField acquired
// before secondType.secondField) to the table. Exposed so future
// subsystems register their documented orders next to the documentation.
func RegisterLockOrder(firstType, firstField, secondType, secondField string) {
	lockOrderTable = append(lockOrderTable, lockOrderPair{
		lockKey{firstType, firstField}, lockKey{secondType, secondField},
	})
}

var holdsRe = regexp.MustCompile(`^//lint:holds\s+(\S+)$`)

func runLockOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lo := &lockOrderWalker{pass: pass}
			held := map[lockKey]token.Pos{}
			for _, k := range holdsAnnotations(fd.Doc) {
				held[k] = fd.Pos()
			}
			lo.stmts(fd.Body.List, held)
		}
	}
	return nil
}

func holdsAnnotations(doc *ast.CommentGroup) []lockKey {
	if doc == nil {
		return nil
	}
	var keys []lockKey
	for _, c := range doc.List {
		m := holdsRe.FindStringSubmatch(c.Text)
		if m == nil {
			continue
		}
		parts := strings.Split(m[1], ".")
		if len(parts) == 2 {
			keys = append(keys, lockKey{parts[0], parts[1]})
		}
	}
	return keys
}

type lockOrderWalker struct {
	pass *Pass
}

// stmts interprets a statement list, tracking which annotated locks are
// held. Branches are explored independently and joined by intersection
// (a lock only counts as held after a join if it is held on every path),
// so the analyzer never reports an order violation that some path avoids
// — it must run clean on correct code.
func (lo *lockOrderWalker) stmts(list []ast.Stmt, held map[lockKey]token.Pos) bool {
	for _, s := range list {
		if lo.stmt(s, held) {
			return true
		}
	}
	return false
}

// stmt returns true when the statement terminates the path.
func (lo *lockOrderWalker) stmt(s ast.Stmt, held map[lockKey]token.Pos) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return lo.stmts(s.List, held)
	case *ast.LabeledStmt:
		return lo.stmt(s.Stmt, held)
	case *ast.ExprStmt:
		lo.expr(s.X, held)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			lo.expr(r, held)
		}
	case *ast.DeclStmt:
		// no lock ops in declarations worth modelling
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to the end of the
		// function, which is the conservative direction for ordering.
		// A deferred Lock would be bizarre; ignore.
	case *ast.GoStmt:
		// The goroutine body starts with its own empty held-set.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			lo.stmts(fl.Body.List, map[lockKey]token.Pos{})
		}
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.IfStmt:
		if s.Init != nil {
			lo.stmt(s.Init, held)
		}
		lo.expr(s.Cond, held)
		thenHeld := copyHeld(held)
		thenTerm := lo.stmt(s.Body, thenHeld)
		elseHeld := copyHeld(held)
		elseTerm := false
		if s.Else != nil {
			elseTerm = lo.stmt(s.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replaceHeld(held, elseHeld)
		case elseTerm:
			replaceHeld(held, thenHeld)
		default:
			replaceHeld(held, intersectHeld(thenHeld, elseHeld))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lo.stmt(s.Init, held)
		}
		if s.Cond != nil {
			lo.expr(s.Cond, held)
		}
		body := copyHeld(held)
		lo.stmt(s.Body, body)
		if s.Post != nil {
			lo.stmt(s.Post, body)
		}
		// After the loop the zero-iteration path is possible: keep entry.
	case *ast.RangeStmt:
		lo.expr(s.X, held)
		body := copyHeld(held)
		lo.stmt(s.Body, body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		lo.branches(s, held)
	case *ast.SendStmt:
		lo.expr(s.Value, held)
	}
	return false
}

func (lo *lockOrderWalker) branches(s ast.Stmt, held map[lockKey]token.Pos) {
	var bodies [][]ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			lo.stmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CommClause).Body)
		}
	}
	var joined map[lockKey]token.Pos
	for _, body := range bodies {
		branch := copyHeld(held)
		if lo.stmts(body, branch) {
			continue
		}
		if joined == nil {
			joined = branch
		} else {
			joined = intersectHeld(joined, branch)
		}
	}
	if joined != nil {
		replaceHeld(held, joined)
	}
}

// expr looks for x.<field>.Lock()/Unlock() calls on annotated locks and
// updates the held set; nested calls inside the expression are visited.
func (lo *lockOrderWalker) expr(e ast.Expr, held map[lockKey]token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // deferred execution; analyzed via GoStmt or not at all
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op, ok := lo.lockOp(call)
		if !ok {
			return true
		}
		switch op {
		case "Lock", "RLock":
			for heldKey := range held {
				for _, pair := range lockOrderTable {
					if pair.First == key && pair.Second == heldKey {
						lo.pass.Reportf(call.Pos(),
							"acquiring %s while %s is held inverts the documented %s before %s lock order",
							key, heldKey, pair.First, pair.Second)
					}
				}
			}
			held[key] = call.Pos()
		case "Unlock", "RUnlock":
			delete(held, key)
		}
		return true
	})
}

// lockOp decodes a call of the form owner.field.Lock() where field is a
// sync mutex on a named struct type that appears in the order table.
func (lo *lockOrderWalker) lockOp(call *ast.CallExpr) (lockKey, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	op := sel.Sel.Name
	if op != "Lock" && op != "Unlock" && op != "RLock" && op != "RUnlock" {
		return lockKey{}, "", false
	}
	fn := calleeFunc(lo.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockKey{}, "", false
	}
	fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	fv := fieldVarOf(lo.pass.Info, fieldSel)
	if fv == nil {
		return lockKey{}, "", false
	}
	ownerType := lo.pass.Info.TypeOf(fieldSel.X)
	named := namedOf(ownerType)
	if named == nil {
		return lockKey{}, "", false
	}
	key := lockKey{named.Obj().Name(), fv.Name()}
	if !lockKeyKnown(key) {
		return lockKey{}, "", false
	}
	return key, op, true
}

func lockKeyKnown(k lockKey) bool {
	for _, pair := range lockOrderTable {
		if pair.First == k || pair.Second == k {
			return true
		}
	}
	return false
}

func copyHeld(held map[lockKey]token.Pos) map[lockKey]token.Pos {
	out := make(map[lockKey]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func replaceHeld(dst, src map[lockKey]token.Pos) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func intersectHeld(a, b map[lockKey]token.Pos) map[lockKey]token.Pos {
	out := map[lockKey]token.Pos{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}
