package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// wantRe matches expectation comments in fixture files:
//
//	x := foo() // want `regexp` `second regexp`
//
// Each backquoted pattern must match one diagnostic reported on that line.
var wantRe = regexp.MustCompile("// want((?: `[^`]*`)+)\\s*$")

// CheckFixture runs one analyzer over the fixture package in dir and
// compares the diagnostics against the package's // want comments. It
// returns a list of human-readable mismatches (empty means the fixture
// passed) so the caller — a test — can report them; a non-nil error means
// the fixture could not be loaded or the analyzer failed outright.
func CheckFixture(l *Loader, a *Analyzer, dir, importPath string) ([]string, error) {
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		return nil, err
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		return nil, err
	}

	type key struct {
		file string
		line int
	}
	got := map[key][]string{}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}

	want := map[key][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, pat := range strings.Split(strings.TrimSpace(m[1]), "` `") {
					want[k] = append(want[k], strings.Trim(pat, "`"))
				}
			}
		}
	}

	var problems []string
	for k, pats := range want {
		msgs := got[k]
		for _, pat := range pats {
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", k.file, k.line, pat, err)
			}
			idx := -1
			for i, msg := range msgs {
				if re.MatchString(msg) {
					idx = i
					break
				}
			}
			if idx < 0 {
				problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %q (got %v)", k.file, k.line, pat, msgs))
				continue
			}
			msgs = append(msgs[:idx], msgs[idx+1:]...)
		}
		if len(msgs) > 0 {
			problems = append(problems, fmt.Sprintf("%s:%d: unexpected diagnostics %v", k.file, k.line, msgs))
		}
		delete(got, k)
	}
	for k, msgs := range got {
		problems = append(problems, fmt.Sprintf("%s:%d: unexpected diagnostics %v", k.file, k.line, msgs))
	}
	sort.Strings(problems)
	return problems, nil
}

// FormatDiagnostic renders a diagnostic the way the multichecker prints
// it: file:line:col: [analyzer] message.
func FormatDiagnostic(fset *token.FileSet, d Diagnostic) string {
	if !d.Pos.IsValid() {
		return fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
	}
	pos := fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: [%s] %s", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
}
