package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks packages with a shared FileSet and a shared source
// importer, so the (expensive) from-source check of the standard library
// and of common dependencies happens once per process, not once per
// target package.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader builds a loader. It must be used from a working directory
// inside the module, because import resolution shells out to the go
// command in module mode.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// Load enumerates the packages matching the go-list patterns (e.g.
// "./...") and type-checks each. Test files are excluded: the analyzers
// enforce production-code contracts.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	root, err := ModuleRoot()
	if err != nil {
		return nil, err
	}
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	type listed struct {
		ImportPath string
		Dir        string
		GoFiles    []string
	}
	var pkgs []*Package
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var p listed
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := l.check(p.ImportPath, p.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir type-checks the non-test .go files of a single directory under
// the given import path. Used for analyzer test fixtures, which live in
// testdata and are invisible to go list.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.check(path, dir, files)
}

func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// ModuleRoot walks up from the working directory to the enclosing go.mod.
func ModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s (run from inside the module)", dir)
		}
		dir = parent
	}
}
