// Package obslog is a deliberate-violation fixture for the obslog
// analyzer: every flagged line carries a // want expectation.
package obslog

import (
	"fmt"
	"log"
	"os"
)

func adHocPrinting(err error) {
	fmt.Println("server started")                 // want `fmt.Println in internal package: use obs.Logger`
	fmt.Printf("listening on %s\n", "addr")       // want `fmt.Printf in internal package: use obs.Logger`
	fmt.Print("no newline")                       // want `fmt.Print in internal package: use obs.Logger`
	log.Printf("backend ejected: %v", err)        // want `log.Printf in internal package: use obs.Logger`
	log.Println("probe failed")                   // want `log.Println in internal package: use obs.Logger`
	log.Fatalf("cannot bind: %v", err)            // want `log.Fatalf in internal package: use obs.Logger`
	println("debug left behind")                  // want `builtin println in internal package: use obs.Logger`
	fmt.Fprintf(os.Stderr, "oops: %v\n", err)     // want `fmt.Fprintf to os.Stderr in internal package: use obs.Logger`
	fmt.Fprintln(os.Stdout, "session attached")   // want `fmt.Fprintln to os.Stdout in internal package: use obs.Logger`
	fmt.Fprintf(os.Stderr, "suppressed: %v", err) //lint:ignore obslog fixture demonstrates an explained suppression
}
