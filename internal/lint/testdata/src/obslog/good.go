package obslog

import (
	"fmt"
	"io"
	"strings"
)

// Clean twin: building strings with fmt, writing to an arbitrary
// io.Writer (an HTTP response, a buffer) and shadowing the builtin are
// all fine — only process-stdout/stderr printing is flagged.

func formatting(w io.Writer, n int) string {
	fmt.Fprintf(w, "rows: %d\n", n) // any non-os.Std* writer is fine
	var sb strings.Builder
	fmt.Fprintln(&sb, "header")
	return fmt.Sprintf("%d sessions", n)
}

func localPrintln(s string) int { return len(s) }

func shadowed() {
	println := localPrintln
	_ = println("not the builtin")
}
