// Deliberate inversions of the documented lock orders. The analyzer
// matches locks by (type base name, field name), so these fixture types
// model the cluster shapes without importing unexported internals.
package lockorder

import "sync"

type proxySession struct {
	mu sync.Mutex
}

type backend struct {
	mu sync.Mutex
}

type Gateway struct {
	memberMu sync.Mutex
	mu       sync.Mutex
}

// The documented order is ps.mu before be.mu; this nests the other way.
func inverted(ps *proxySession, be *backend) {
	be.mu.Lock()
	ps.mu.Lock() // want `acquiring proxySession\.mu while backend\.mu is held inverts the documented`
	ps.mu.Unlock()
	be.mu.Unlock()
}

// The caller holds be.mu (declared by annotation); taking ps.mu inside
// is the same inversion one level down the call graph.
//
//lint:holds backend.mu
func invertedViaAnnotation(ps *proxySession) {
	ps.mu.Lock() // want `acquiring proxySession\.mu while backend\.mu is held inverts the documented`
	ps.mu.Unlock()
}

// be.mu is released on only one path; on the other it is still held
// when ps.mu is acquired.
func invertedOnOnePath(ps *proxySession, be *backend, flag bool) {
	be.mu.Lock()
	if flag {
		be.mu.Unlock()
		return
	}
	ps.mu.Lock() // want `acquiring proxySession\.mu while backend\.mu is held inverts the documented`
	ps.mu.Unlock()
	be.mu.Unlock()
}

// Same contract for the membership pair: memberMu before mu.
func invertedGateway(gw *Gateway) {
	gw.mu.Lock()
	gw.memberMu.Lock() // want `acquiring Gateway\.memberMu while Gateway\.mu is held inverts the documented`
	gw.memberMu.Unlock()
	gw.mu.Unlock()
}
