// Clean twins: correct nesting and the shapes the gateway actually
// uses, which lockorder must accept without a diagnostic.
package lockorder

// Documented order: ps.mu first, be.mu inside it.
func okNested(ps *proxySession, be *backend) {
	ps.mu.Lock()
	be.mu.Lock()
	be.mu.Unlock()
	ps.mu.Unlock()
}

// Sequential, never nested: no ordering constraint applies.
func okSequential(ps *proxySession, be *backend) {
	be.mu.Lock()
	be.mu.Unlock()
	ps.mu.Lock()
	ps.mu.Unlock()
}

// Every branch releases be.mu before ps.mu is taken; the join keeps only
// locks held on all paths, so no false positive.
func okBranchRelease(ps *proxySession, be *backend, flag bool) {
	be.mu.Lock()
	if flag {
		be.mu.Unlock()
	} else {
		be.mu.Unlock()
	}
	ps.mu.Lock()
	ps.mu.Unlock()
}

// The annotation names the lock the caller holds; acquiring the second
// lock of the documented pair inside is the correct direction.
//
//lint:holds proxySession.mu
func okAnnotated(be *backend) {
	be.mu.Lock()
	be.mu.Unlock()
}

// memberMu before mu is the documented membership order.
func okGateway(gw *Gateway) {
	gw.memberMu.Lock()
	gw.mu.Lock()
	gw.mu.Unlock()
	gw.memberMu.Unlock()
}
