// Deliberate allocation sources inside hot-annotated functions. The
// //lint:hotpath doc annotation stands in for a hotpaths.txt manifest
// entry so the fixture does not depend on the real manifest.
package hotpathalloc

import (
	"errors"
	"fmt"
)

func consume(v interface{}) { _ = v }

func observe(f func() int) { _ = f() }

//lint:hotpath
func sprintfOnHotPath(id int) string {
	tag := fmt.Sprintf("session-%d", id) // want `fmt\.Sprintf allocates`
	return tag
}

//lint:hotpath
func errorsOffReturn(n int) error {
	err := errors.New("overflow") // want `errors\.New allocates`
	if n > 0 {
		return err
	}
	return nil
}

//lint:hotpath
func mapPerCall(keys []string) int {
	seen := map[string]bool{} // want `map literal allocates`
	for _, k := range keys {
		seen[k] = true
	}
	return len(seen)
}

//lint:hotpath
func makePerCall(n int) int {
	idx := make(map[int]int, n) // want `make\(map\) allocates`
	ch := make(chan int, 1)     // want `make\(chan\) allocates`
	idx[0] = n
	ch <- n
	return idx[0] + <-ch
}

//lint:hotpath
func closureInLoop(xs []int) {
	for _, x := range xs {
		observe(func() int { return x }) // want `closure captures loop variable x, allocating per iteration`
	}
}

//lint:hotpath
func boxesInt(n int) {
	consume(n) // want `passing int to interface parameter boxes it on the heap`
}
