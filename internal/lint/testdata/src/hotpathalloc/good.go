// Clean twins: allocation-free shapes and the sanctioned cold exits
// that hotpathalloc must accept inside hot functions.
package hotpathalloc

import "fmt"

//lint:hotpath
func okErrorReturn(n int) error {
	if n < 0 {
		return fmt.Errorf("negative count %d", n) // cold error exit
	}
	return nil
}

//lint:hotpath
func okReusedScratch(scratch map[int]int, xs []int) int {
	for i, x := range xs {
		scratch[i] = x // writing into a caller-owned map does not allocate here
	}
	return len(scratch)
}

//lint:hotpath
func okPointerToInterface(v *int) {
	consume(v) // pointers fit the interface word without boxing
}

//lint:hotpath
func okConstantToInterface() {
	consume(42) // constants never box at runtime
}

//lint:hotpath
func okClosureOutsideLoop(base int) {
	observe(func() int { return base }) // captures a parameter, not a loop variable
}

// Sprintf is fine in functions that are not on the hot-path manifest.
func coldFormat(id int) string {
	return fmt.Sprintf("cold-%d", id)
}

//lint:hotpath
func okSuppressed(id int) string {
	// This path runs once per re-home, not per frame; the annotation keeps
	// the function gated while excusing the one cold format.
	//lint:ignore hotpathalloc re-home is rare; formatting here is off the per-frame path
	s := fmt.Sprintf("rehome-%d", id)
	return s
}
