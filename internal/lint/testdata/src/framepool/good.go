// Clean twins: every ownership shape the codebase actually uses, which
// framepool must accept without a diagnostic.
package framepool

import "gesturecep/internal/wire"

func okStraightLine() {
	buf := wire.GetFrameBuf(64)
	buf[0] = 1
	wire.PutFrameBuf(buf)
}

func okDeferred() byte {
	buf := wire.GetFrameBuf(64)
	defer wire.PutFrameBuf(buf)
	buf[0] = 1
	return buf[0]
}

// The FlushBatch shape: enqueue/ProxyBatchOwned own the buffer on
// success; on error the caller releases it.
func okConditionalTransfer(h uint32) error {
	buf := wire.GetFrameBuf(128)
	if _, err := cl.ProxyBatchOwned(h, buf); err != nil {
		wire.PutFrameBuf(buf)
		return err
	}
	return nil
}

// Same contract with the polarity flipped.
func okConditionalTransferEq(h uint32) error {
	buf := wire.GetFrameBuf(128)
	_, err := cl.ProxyBatchOwned(h, buf)
	if err == nil {
		return nil
	}
	wire.PutFrameBuf(buf)
	return err
}

// Returning the buffer transfers ownership to the caller.
func okReturnTransfer() []byte {
	buf := wire.GetFrameBuf(8)
	buf[0] = 1
	return buf
}

// Sending the buffer away transfers ownership to the consumer.
func okChannelTransfer(sink chan<- []byte) {
	buf := wire.GetFrameBuf(8)
	sink <- buf
}

// A fresh buffer per iteration, released before the scope closes.
func okPerIteration(n int) {
	for i := 0; i < n; i++ {
		buf := wire.GetFrameBuf(16)
		buf[0] = byte(i)
		wire.PutFrameBuf(buf)
	}
}

// Safe uses — len, cap, copy, indexing, nil comparison — do not end
// tracking, so the release afterwards still counts.
func okSafeUses(src []byte) int {
	buf := wire.GetFrameBuf(len(src))
	n := copy(buf, src)
	if buf != nil && len(buf) > 0 {
		n += int(buf[0])
	}
	wire.PutFrameBuf(buf)
	return n
}
