// Deliberate violations of the frame-pool ownership contract. Each
// // want comment pins the diagnostic the framepool analyzer must emit.
package framepool

import "gesturecep/internal/wire"

var cl *wire.Client

// The buffer never reaches PutFrameBuf or a transfer.
func leak() {
	buf := wire.GetFrameBuf(64)
	buf[0] = 1
} // want `pooled frame buffer buf .* is neither released with PutFrameBuf nor ownership-transferred`

// Released only when flag is true: leaks on the other path.
func leakOnSomePath(flag bool) {
	buf := wire.GetFrameBuf(64)
	buf[0] = 1
	if flag {
		wire.PutFrameBuf(buf)
	}
} // want `pooled frame buffer buf .* is released on some paths but leaks on others`

func useAfterPut() {
	buf := wire.GetFrameBuf(32)
	wire.PutFrameBuf(buf)
	buf[0] = 1 // want `use of pooled frame buffer buf after PutFrameBuf`
}

func doublePut() {
	buf := wire.GetFrameBuf(32)
	wire.PutFrameBuf(buf)
	wire.PutFrameBuf(buf) // want `pooled frame buffer buf released twice`
}

// Parameters are tracked too once they pass through PutFrameBuf.
func putParam(payload []byte) byte {
	wire.PutFrameBuf(payload)
	return payload[0] // want `use of pooled frame buffer payload after PutFrameBuf`
}

// ProxyBatchOwned only takes ownership on success; the error path must
// release the buffer itself, and here it does not.
func transferErrLeak(h uint32) error {
	buf := wire.GetFrameBuf(128)
	if _, err := cl.ProxyBatchOwned(h, buf); err != nil {
		return err // want `pooled frame buffer buf .* is neither released with PutFrameBuf nor ownership-transferred`
	}
	return nil
}

func discard() {
	wire.GetFrameBuf(16) // want `GetFrameBuf result discarded`
}

func overwrite() {
	buf := wire.GetFrameBuf(16)
	buf = wire.GetFrameBuf(32) // want `pooled frame buffer buf .* overwritten before release`
	wire.PutFrameBuf(buf)
}

func doubleDeferredPut() {
	buf := wire.GetFrameBuf(8)
	defer wire.PutFrameBuf(buf)
	buf[0] = 1
	wire.PutFrameBuf(buf) // want `released twice \(a deferred PutFrameBuf is already registered\)`
}
