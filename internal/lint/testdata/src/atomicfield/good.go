// Clean twins for the atomicfield analyzer: typed atomics with pointer
// receivers, mutex-guarded plain fields, and pre-publication
// composite-literal initialisation.
package atomicfield

import (
	"sync"
	"sync/atomic"
)

type typedCounters struct {
	hits  atomic.Uint64
	drops atomic.Uint64
}

// Typed atomics make plain access impossible by construction; pointer
// receivers never copy them.
func (c *typedCounters) bump() {
	c.hits.Add(1)
	c.drops.Add(1)
}

func (c *typedCounters) read() uint64 {
	return c.hits.Load()
}

type guarded struct {
	mu sync.Mutex
	n  uint64
}

// Plain fields are fine when they are never touched via sync/atomic.
func (g *guarded) bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

type freeCounter struct {
	n uint64
}

func (f *freeCounter) bump() {
	atomic.AddUint64(&f.n, 1)
}

// Composite-literal initialisation happens before the value is
// published, so it is exempt from the mixed-access rule.
func newFreeCounter() *freeCounter {
	return &freeCounter{n: 0}
}

type config struct {
	window int
	depth  int
}

// A value receiver is fine on a struct without atomic fields.
func (c config) slots() int {
	return c.window * c.depth
}
