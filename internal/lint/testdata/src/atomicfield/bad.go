// Deliberate mixed atomic/plain field access and copied-receiver
// violations for the atomicfield analyzer.
package atomicfield

import "sync/atomic"

type counters struct {
	hits  uint64
	drops uint64
}

func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.drops, 1)
}

// hits is updated atomically in bump; reading it plainly races that.
func (c *counters) read() uint64 {
	return c.hits // want `field hits is accessed with sync/atomic elsewhere in this package; plain access races it`
}

// A plain write races the atomic adds just the same.
func (c *counters) reset() {
	c.drops = 0 // want `field drops is accessed with sync/atomic elsewhere in this package; plain access races it`
}

type gauge struct {
	val atomic.Int64
}

// A value receiver copies the atomic out from under concurrent writers.
func (g gauge) Read() int64 { // want `value receiver .* contains atomic field val`
	return g.val.Load()
}
