package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsLog forbids ad-hoc printing in internal packages: production code
// logs through obs.Logger (structured, leveled, ring-buffered, served at
// /events), never by writing to the process's stdout/stderr directly. The
// check covers fmt.Print/Printf/Println, the log package's printers, the
// print/println builtins, and fmt.Fprint* targeting os.Stdout/os.Stderr.
//
// Scope: packages under internal/ only — commands and examples are CLIs
// and print freely — and internal/obs itself is exempt (it implements the
// sink).
var ObsLog = &Analyzer{
	Name: "obslog",
	Doc:  "forbid fmt.Print*/log.Print* in internal packages; use obs.Logger",
	Run:  runObsLog,
}

var obslogForbidden = map[string]string{
	"fmt.Print":   "fmt.Print",
	"fmt.Printf":  "fmt.Printf",
	"fmt.Println": "fmt.Println",
	"log.Print":   "log.Print",
	"log.Printf":  "log.Printf",
	"log.Println": "log.Println",
	"log.Fatal":   "log.Fatal",
	"log.Fatalf":  "log.Fatalf",
	"log.Fatalln": "log.Fatalln",
	"log.Panic":   "log.Panic",
	"log.Panicf":  "log.Panicf",
	"log.Panicln": "log.Panicln",
}

func runObsLog(pass *Pass) error {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "/internal/") || strings.HasSuffix(path, "/internal/obs") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// print/println builtins write to stderr and allocate. A
			// user-defined shadow resolves to *types.Func instead.
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin &&
					(id.Name == "print" || id.Name == "println") {
					pass.Reportf(call.Pos(), "builtin %s in internal package: use obs.Logger", id.Name)
					return true
				}
			}
			name := calleeName(pass.Info, call)
			if want, bad := obslogForbidden[name]; bad {
				pass.Reportf(call.Pos(), "%s in internal package: use obs.Logger", want)
				return true
			}
			// fmt.Fprint*(os.Stdout|os.Stderr, ...) is the same thing with
			// extra steps.
			if strings.HasPrefix(name, "fmt.Fprint") && len(call.Args) > 0 {
				if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
					if base, ok := sel.X.(*ast.Ident); ok && base.Name == "os" &&
						(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
						pass.Reportf(call.Pos(), "%s to os.%s in internal package: use obs.Logger", name, sel.Sel.Name)
					}
				}
			}
			return true
		})
	}
	return nil
}
