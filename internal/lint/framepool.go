package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FramePool checks the frame-pool ownership contract from internal/wire:
// every buffer obtained with GetFrameBuf must, on every control-flow
// path, be released with PutFrameBuf or leave the function through a
// sanctioned ownership transfer — returning it, storing it into a
// structure, or handing it to a transfer API. The two transfer APIs with
// a conditional contract (Client.ProxyBatchOwned and coalescer.enqueue
// with owned=true: callee owns the buffer on success, the caller keeps it
// on error) are modelled path-sensitively through the error variable they
// return, which is exactly how the gateway's retry loop uses them.
//
// Additionally flagged, for any local variable including parameters:
// use after PutFrameBuf, and releasing the same buffer twice.
//
// The analysis is a structured abstract interpretation of the function
// body (if/else, loops, switch, select, defer) — not a full CFG — which
// is sound for this codebase's shapes: when tracking becomes ambiguous
// (aliasing, address-taken, handed to an unknown callee) the buffer is
// conservatively marked escaped and never reported.
var FramePool = &Analyzer{
	Name: "framepool",
	Doc:  "every wire.GetFrameBuf must reach PutFrameBuf or an ownership transfer on all paths",
	Run:  runFramePool,
}

const (
	fpGetName = "gesturecep/internal/wire.GetFrameBuf"
	fpPutName = "gesturecep/internal/wire.PutFrameBuf"
)

// fpTransfers maps sanctioned conditional-transfer functions to the
// index of the buffer argument. On success the callee owns the buffer;
// on a non-nil error, ownership stays with the caller.
var fpTransfers = map[string]int{
	"(*gesturecep/internal/wire.Client).ProxyBatchOwned": 1,
	"(*gesturecep/internal/wire.coalescer).enqueue":      1,
}

type fpState uint8

const (
	fpOwned    fpState = iota // must be released or transferred
	fpCond                    // transfer attempted; outcome rides on the error var
	fpMaybe                   // transfer attempted, outcome unobserved: no obligations
	fpDeferred                // defer PutFrameBuf registered; valid until return
	fpReleased                // back in the pool; any use is a bug
	fpEscaped                 // ownership left the function; tracking stops
	fpMixed                   // owned on some paths only
)

type fpInfo struct {
	st   fpState
	cond *types.Var // fpCond: error variable deciding ownership
	get  token.Pos  // where the buffer was obtained (or released, for fpReleased)
}

type fpEnv map[*types.Var]fpInfo

func cloneEnv(env fpEnv) fpEnv {
	out := make(fpEnv, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func runFramePool(pass *Pass) error {
	w := &fpWalker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w.analyzeBody(fd.Body)
			}
		}
	}
	// Function literals queued during the walk get their own analysis;
	// captures of enclosing buffers were already marked escaped.
	for len(w.lits) > 0 {
		lit := w.lits[0]
		w.lits = w.lits[1:]
		w.analyzeBody(lit.Body)
	}
	return nil
}

type fpWalker struct {
	pass *Pass
	lits []*ast.FuncLit
}

func (w *fpWalker) analyzeBody(body *ast.BlockStmt) {
	env := fpEnv{}
	w.execBlock(body.List, env, body.End())
}

// execBlock runs a statement list in its own lexical scope: buffers
// declared inside it that are still owned when the block falls off its
// end have leaked.
func (w *fpWalker) execBlock(list []ast.Stmt, env fpEnv, end token.Pos) bool {
	declared := map[*types.Var]bool{}
	term := w.execStmts(list, env, declared)
	if !term {
		for v := range declared {
			w.leakCheck(v, env, end)
		}
	}
	for v := range declared {
		delete(env, v)
	}
	return term
}

func (w *fpWalker) leakCheck(v *types.Var, env fpEnv, at token.Pos) {
	switch info := env[v]; info.st {
	case fpOwned:
		w.pass.Reportf(at, "pooled frame buffer %s (GetFrameBuf at line %d) is neither released with PutFrameBuf nor ownership-transferred on this path",
			v.Name(), w.pass.Fset.Position(info.get).Line)
	case fpMixed:
		w.pass.Reportf(at, "pooled frame buffer %s (GetFrameBuf at line %d) is released on some paths but leaks on others",
			v.Name(), w.pass.Fset.Position(info.get).Line)
	}
}

func (w *fpWalker) execStmts(list []ast.Stmt, env fpEnv, declared map[*types.Var]bool) bool {
	for _, s := range list {
		if w.execStmt(s, env, declared) {
			return true
		}
	}
	return false
}

// execStmt returns true when the statement terminates the path.
func (w *fpWalker) execStmt(s ast.Stmt, env fpEnv, declared map[*types.Var]bool) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.execBlock(s.List, env, s.End())
	case *ast.LabeledStmt:
		return w.execStmt(s.Stmt, env, declared)
	case *ast.EmptyStmt:
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if calleeName(w.pass.Info, call) == fpGetName {
				w.pass.Reportf(call.Pos(), "GetFrameBuf result discarded: the buffer can never be released")
				w.scanArgs(call, env)
				return false
			}
		}
		w.scanExpr(s.X, env, true)
	case *ast.AssignStmt:
		w.execAssign(s, env, declared)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					w.scanExpr(val, env, true)
				}
				if len(vs.Values) == 1 && len(vs.Names) == 1 {
					if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok &&
						calleeName(w.pass.Info, call) == fpGetName {
						if v, ok := w.pass.Info.Defs[vs.Names[0]].(*types.Var); ok {
							env[v] = fpInfo{st: fpOwned, get: call.Pos()}
							declared[v] = true
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			w.scanExpr(res, env, true) // returning the buffer transfers it
		}
		for v := range env {
			w.leakCheck(v, env, s.Pos())
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto end the current straight-line path; leak
		// detection for them rides on the surrounding loop analysis.
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.IfStmt:
		return w.execIf(s, env, declared)
	case *ast.ForStmt:
		if s.Init != nil {
			w.execStmt(s.Init, env, declared)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, env, false)
		}
		body := cloneEnv(env)
		if !w.execStmt(s.Body, body, declared) && s.Post != nil {
			w.execStmt(s.Post, body, declared)
		}
		joinInto(env, body)
	case *ast.RangeStmt:
		w.scanExpr(s.X, env, false)
		body := cloneEnv(env)
		w.execStmt(s.Body, body, declared)
		joinInto(env, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.execStmt(s.Init, env, declared)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, env, false)
		}
		return w.execBranches(caseBodies(s.Body), hasDefaultClause(s.Body), env)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.execStmt(s.Init, env, declared)
		}
		return w.execBranches(caseBodies(s.Body), hasDefaultClause(s.Body), env)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if comm := c.(*ast.CommClause).Comm; comm != nil {
				w.execStmt(comm, env, declared)
			}
		}
		return w.execBranches(commBodies(s.Body), true, env)
	case *ast.DeferStmt:
		if w.isPut(s.Call) {
			w.handlePut(s.Call, env, true)
			return false
		}
		w.scanExpr(s.Call, env, true)
	case *ast.GoStmt:
		w.scanExpr(s.Call, env, true)
	case *ast.IncDecStmt:
		w.scanExpr(s.X, env, false)
	case *ast.SendStmt:
		w.scanExpr(s.Chan, env, false)
		w.scanExpr(s.Value, env, true)
	}
	return false
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		out = append(out, c.(*ast.CaseClause).Body)
	}
	return out
}

func commBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		out = append(out, c.(*ast.CommClause).Body)
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// execBranches joins the branch environments; when the construct is not
// exhaustive (a switch without default) the entry environment joins too.
func (w *fpWalker) execBranches(bodies [][]ast.Stmt, exhaustive bool, env fpEnv) bool {
	var joined fpEnv
	allTerm := true
	for _, body := range bodies {
		branch := cloneEnv(env)
		if w.execBlock(body, branch, bodyEnd(body)) {
			continue
		}
		allTerm = false
		if joined == nil {
			joined = branch
		} else {
			joinInto(joined, branch)
		}
	}
	if !exhaustive || len(bodies) == 0 {
		if joined == nil {
			joined = cloneEnv(env)
		} else {
			joinInto(joined, env)
		}
		allTerm = false
	}
	if allTerm {
		return true
	}
	replaceEnv(env, joined)
	return false
}

func bodyEnd(body []ast.Stmt) token.Pos {
	if len(body) == 0 {
		return token.NoPos
	}
	return body[len(body)-1].End()
}

func (w *fpWalker) execIf(s *ast.IfStmt, env fpEnv, declared map[*types.Var]bool) bool {
	if s.Init != nil {
		w.execStmt(s.Init, env, declared)
	}
	condVar, isEql := nilCompare(w.pass.Info, s.Cond)
	w.scanExpr(s.Cond, env, false)
	thenEnv, elseEnv := cloneEnv(env), cloneEnv(env)
	if condVar != nil {
		for v, info := range env {
			if info.st == fpCond && info.cond == condVar {
				// err == nil: transfer succeeded in the then branch.
				if isEql {
					thenEnv[v] = fpInfo{st: fpReleased, get: info.get}
					elseEnv[v] = fpInfo{st: fpOwned, get: info.get}
				} else {
					thenEnv[v] = fpInfo{st: fpOwned, get: info.get}
					elseEnv[v] = fpInfo{st: fpReleased, get: info.get}
				}
			}
		}
	}
	thenTerm := w.execStmt(s.Body, thenEnv, declared)
	elseTerm := false
	if s.Else != nil {
		elseTerm = w.execStmt(s.Else, elseEnv, declared)
	}
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		replaceEnv(env, elseEnv)
	case elseTerm:
		replaceEnv(env, thenEnv)
	default:
		joinInto(thenEnv, elseEnv)
		replaceEnv(env, thenEnv)
	}
	return false
}

// nilCompare decodes `x == nil` / `x != nil` over a plain identifier.
func nilCompare(info *types.Info, cond ast.Expr) (*types.Var, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(info, x) {
		x, y = y, x
	}
	if !isNilIdent(info, y) {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, _ := info.ObjectOf(id).(*types.Var)
	return v, be.Op == token.EQL
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

func (w *fpWalker) execAssign(s *ast.AssignStmt, env fpEnv, declared map[*types.Var]bool) {
	// Sanctioned single-call forms first: v := GetFrameBuf(n) and
	// res..., err := transfer(..., v, ...).
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			name := calleeName(w.pass.Info, call)
			if name == fpGetName && len(s.Lhs) == 1 {
				w.scanArgs(call, env)
				if v := identVar(w.pass.Info, s.Lhs[0]); v != nil {
					if old, ok := env[v]; ok && (old.st == fpOwned || old.st == fpMixed) {
						w.pass.Reportf(s.Pos(), "pooled frame buffer %s (GetFrameBuf at line %d) overwritten before release",
							v.Name(), w.pass.Fset.Position(old.get).Line)
					}
					env[v] = fpInfo{st: fpOwned, get: call.Pos()}
					if s.Tok == token.DEFINE {
						declared[v] = true
					}
					return
				}
			}
			if idx, ok := w.transferIndex(call, name); ok {
				w.execTransfer(s, call, idx, env)
				return
			}
		}
	}
	for _, r := range s.Rhs {
		w.scanExpr(r, env, true)
	}
	for _, l := range s.Lhs {
		switch l := ast.Unparen(l).(type) {
		case *ast.Ident:
			v := identVar(w.pass.Info, l)
			if v == nil {
				continue
			}
			if old, ok := env[v]; ok {
				if old.st == fpOwned || old.st == fpMixed {
					w.pass.Reportf(s.Pos(), "pooled frame buffer %s (GetFrameBuf at line %d) overwritten before release",
						v.Name(), w.pass.Fset.Position(old.get).Line)
				}
				delete(env, v)
			}
		case *ast.IndexExpr:
			w.scanExpr(l.Index, env, false)
			w.scanExpr(l.X, env, false) // writing v[i] = x is a safe use
		case *ast.SelectorExpr:
			w.scanExpr(l.X, env, false)
		case *ast.StarExpr:
			w.scanExpr(l.X, env, false)
		}
	}
}

// transferIndex resolves a call to a sanctioned transfer API, requiring
// coalescer.enqueue's owned argument to be the literal true (otherwise
// the payload is borrowed, not transferred, and tracking gives up).
func (w *fpWalker) transferIndex(call *ast.CallExpr, name string) (int, bool) {
	idx, ok := fpTransfers[name]
	if !ok || idx >= len(call.Args) {
		return 0, false
	}
	if name == "(*gesturecep/internal/wire.coalescer).enqueue" && len(call.Args) >= 3 {
		lit, ok := ast.Unparen(call.Args[2]).(*ast.Ident)
		if !ok || lit.Name != "true" {
			return 0, false
		}
	}
	return idx, true
}

func (w *fpWalker) execTransfer(s *ast.AssignStmt, call *ast.CallExpr, bufIdx int, env fpEnv) {
	for i, arg := range call.Args {
		if i != bufIdx {
			w.scanExpr(arg, env, true)
		}
	}
	v := identVar(w.pass.Info, call.Args[bufIdx])
	if v == nil {
		w.scanExpr(call.Args[bufIdx], env, true)
		return
	}
	info, tracked := env[v]
	if tracked && info.st == fpReleased {
		w.reportUseAfterPut(call.Args[bufIdx].Pos(), v, info)
		env[v] = fpInfo{st: fpEscaped}
		return
	}
	if !tracked || info.st != fpOwned {
		if tracked {
			env[v] = fpInfo{st: fpEscaped}
		}
		return
	}
	// Bind the outcome to the error result when the caller names it.
	last := s.Lhs[len(s.Lhs)-1]
	if errV := identVar(w.pass.Info, last); errV != nil && isErrorVar(errV) {
		env[v] = fpInfo{st: fpCond, cond: errV, get: info.get}
		return
	}
	env[v] = fpInfo{st: fpMaybe, get: info.get}
}

func isErrorVar(v *types.Var) bool {
	named, ok := v.Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func (w *fpWalker) isPut(call *ast.CallExpr) bool {
	return calleeName(w.pass.Info, call) == fpPutName
}

// handlePut applies PutFrameBuf(v) (or its deferred form) to the
// environment. Untracked locals — typically parameters — become Released
// so later uses are still caught.
func (w *fpWalker) handlePut(call *ast.CallExpr, env fpEnv, deferred bool) {
	if len(call.Args) != 1 {
		return
	}
	v := identVar(w.pass.Info, call.Args[0])
	if v == nil {
		w.scanExpr(call.Args[0], env, false)
		return
	}
	info, tracked := env[v]
	if tracked {
		switch info.st {
		case fpReleased:
			w.pass.Reportf(call.Pos(), "pooled frame buffer %s released twice (previous PutFrameBuf at line %d)",
				v.Name(), w.pass.Fset.Position(info.get).Line)
			return
		case fpDeferred:
			w.pass.Reportf(call.Pos(), "pooled frame buffer %s released twice (a deferred PutFrameBuf is already registered)", v.Name())
			return
		case fpEscaped:
			return
		}
	}
	if deferred {
		env[v] = fpInfo{st: fpDeferred, get: info.get}
		return
	}
	env[v] = fpInfo{st: fpReleased, get: call.Pos()}
}

func (w *fpWalker) reportUseAfterPut(pos token.Pos, v *types.Var, info fpInfo) {
	w.pass.Reportf(pos, "use of pooled frame buffer %s after PutFrameBuf (released at line %d)",
		v.Name(), w.pass.Fset.Position(info.get).Line)
}

func (w *fpWalker) scanArgs(call *ast.CallExpr, env fpEnv) {
	for _, a := range call.Args {
		w.scanExpr(a, env, true)
	}
}

// scanExpr walks an expression looking for uses of tracked buffers.
// Released buffers report on any use. Live buffers in escaping positions
// transfer out of the analysis; safe uses (indexing, len/cap/copy,
// comparisons) keep their state.
func (w *fpWalker) scanExpr(e ast.Expr, env fpEnv, escaping bool) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		v := identVar(w.pass.Info, e)
		if v == nil {
			return
		}
		info, tracked := env[v]
		if !tracked {
			return
		}
		if info.st == fpReleased {
			w.reportUseAfterPut(e.Pos(), v, info)
			env[v] = fpInfo{st: fpEscaped}
			return
		}
		if escaping {
			env[v] = fpInfo{st: fpEscaped}
		}
	case *ast.ParenExpr:
		w.scanExpr(e.X, env, escaping)
	case *ast.IndexExpr:
		w.scanExpr(e.Index, env, false)
		w.scanExpr(e.X, env, false) // v[i] reads an element, not the buffer
	case *ast.SliceExpr:
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			w.scanExpr(idx, env, false)
		}
		w.scanExpr(e.X, env, true) // v[a:b] aliases the buffer
	case *ast.CallExpr:
		w.execCallExpr(e, env)
	case *ast.UnaryExpr:
		w.scanExpr(e.X, env, true) // &v and friends alias
	case *ast.BinaryExpr:
		w.scanExpr(e.X, env, false)
		w.scanExpr(e.Y, env, false)
	case *ast.StarExpr:
		w.scanExpr(e.X, env, escaping)
	case *ast.SelectorExpr:
		w.scanExpr(e.X, env, false)
	case *ast.TypeAssertExpr:
		w.scanExpr(e.X, env, true)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.scanExpr(kv.Value, env, true)
				continue
			}
			w.scanExpr(el, env, true)
		}
	case *ast.KeyValueExpr:
		w.scanExpr(e.Value, env, true)
	case *ast.FuncLit:
		w.lits = append(w.lits, e)
		// Everything a closure captures escapes this function's tracking.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v := identVar(w.pass.Info, id)
			if v == nil {
				return true
			}
			if info, tracked := env[v]; tracked {
				if info.st == fpReleased {
					w.reportUseAfterPut(id.Pos(), v, info)
				}
				env[v] = fpInfo{st: fpEscaped}
			}
			return true
		})
	}
}

// execCallExpr handles calls in expression position: sinks and transfers
// keep their semantics; unknown callees make buffer arguments escape;
// len/cap/copy are safe.
func (w *fpWalker) execCallExpr(call *ast.CallExpr, env fpEnv) {
	name := calleeName(w.pass.Info, call)
	if name == fpPutName {
		w.handlePut(call, env, false)
		return
	}
	if idx, ok := w.transferIndex(call, name); ok {
		for i, arg := range call.Args {
			if i != idx {
				w.scanExpr(arg, env, true)
			}
		}
		if v := identVar(w.pass.Info, call.Args[idx]); v != nil {
			if info, tracked := env[v]; tracked {
				if info.st == fpReleased {
					w.reportUseAfterPut(call.Args[idx].Pos(), v, info)
				}
				env[v] = fpInfo{st: fpMaybe, get: info.get}
			}
		} else {
			w.scanExpr(call.Args[idx], env, true)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := w.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap", "copy":
				for _, a := range call.Args {
					w.scanExpr(a, env, false)
				}
				return
			}
		}
	}
	w.scanExpr(call.Fun, env, false)
	w.scanArgs(call, env)
}

// --- joins ---

func replaceEnv(dst, src fpEnv) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// joinInto merges b into a at a control-flow join. Disagreements between
// "still owned" and "released" become fpMixed (reported only if the
// buffer is still mixed when a path ends); anything harder to reconcile
// escapes, which silences rather than misreports.
func joinInto(a fpEnv, b fpEnv) {
	for v, ia := range a {
		ib, ok := b[v]
		if !ok {
			delete(a, v)
			continue
		}
		if ia.st == ib.st && ia.cond == ib.cond {
			continue
		}
		pair := func(x, y fpState) bool {
			return (ia.st == x && ib.st == y) || (ia.st == y && ib.st == x)
		}
		get := ia.get
		if ia.st == fpReleased {
			get = ib.get
		}
		switch {
		case pair(fpOwned, fpReleased), pair(fpMixed, fpOwned), pair(fpMixed, fpReleased):
			a[v] = fpInfo{st: fpMixed, get: get}
		case pair(fpMaybe, fpReleased):
			a[v] = fpInfo{st: fpMaybe, get: get}
		default:
			a[v] = fpInfo{st: fpEscaped}
		}
	}
	// Vars present only in b were declared in a scope that already ran its
	// own exit check; they carry no obligation across the join.
}
