// Package anduin is the engine facade that plays the role of the AnduIN
// data-stream management system in the paper: it owns named streams and
// continuous views (kinect_t), a registry of user-defined operators (RPY
// angles, dist, …), and the set of deployed gesture detection queries.
// Detected gestures are fanned out to listeners, which is how the paper's
// applications receive "swipe_right" result tuples and map them to
// navigation operations.
//
// Queries can be deployed and undeployed at runtime — the property the
// paper's demo exploits to exchange gesture definitions while applications
// keep running.
package anduin

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gesturecep/internal/cep"
	"gesturecep/internal/kinect"
	"gesturecep/internal/query"
	"gesturecep/internal/stream"
	"gesturecep/internal/transform"
)

// Detection is the result tuple a matched gesture query produces.
type Detection struct {
	// Gesture is the query's SELECT output, e.g. "swipe_right".
	Gesture string
	// QueryID identifies the deployed query that fired.
	QueryID int
	// Start and End are the event times of the first and last contributing
	// sensor tuple.
	Start, End time.Time
	// Measures holds the query's output-measure expressions evaluated on
	// the final matched tuple (§3.3.4), in declaration order; nil when the
	// query declares none.
	Measures []float64
}

// Duration is the event-time span of the detected gesture.
func (d Detection) Duration() time.Duration { return d.End.Sub(d.Start) }

// QueryInfo describes one deployed query.
type QueryInfo struct {
	ID      int
	Gesture string
	Source  string
	Atoms   int
	Text    string
}

// Engine is the DSMS facade. Streams must be fed from a single goroutine at
// a time (the usual replay/pump pattern); management operations (deploy,
// subscribe, …) are safe for concurrent use.
type Engine struct {
	mu        sync.Mutex
	streams   map[string]*stream.Stream
	env       *query.Env
	queries   map[int]*deployed
	nextQuery int

	listenMu  sync.RWMutex
	listeners map[int]func(Detection)
	nextL     int
}

type deployed struct {
	info   QueryInfo
	nfa    *cep.NFA
	cancel func()
}

// New creates an engine with the builtin scalar functions plus the RPY
// user-defined operators of §3.2 pre-registered.
func New() *Engine {
	e := &Engine{
		streams:   make(map[string]*stream.Stream),
		env:       query.NewEnv(),
		queries:   make(map[int]*deployed),
		listeners: make(map[int]func(Detection)),
	}
	for _, udf := range transform.RPYUDFs() {
		e.env.UDFs[udf.Name] = udf
	}
	return e
}

// RegisterStream creates and registers a new source stream.
func (e *Engine) RegisterStream(name string, schema *stream.Schema) (*stream.Stream, error) {
	s, err := stream.New(name, schema)
	if err != nil {
		return nil, err
	}
	if err := e.attach(s); err != nil {
		return nil, err
	}
	return s, nil
}

func (e *Engine) attach(s *stream.Stream) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.streams[s.Name()]; dup {
		return fmt.Errorf("anduin: stream %q already registered", s.Name())
	}
	e.streams[s.Name()] = s
	e.env.Schemas[s.Name()] = s.Schema()
	return nil
}

// Stream returns a registered stream by name.
func (e *Engine) Stream(name string) (*stream.Stream, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.streams[name]
	return s, ok
}

// RegisterView derives a continuous view over the named base stream and
// registers it under its own name so queries can read it.
func (e *Engine) RegisterView(name, base string, schema *stream.Schema, f func(stream.Tuple) (stream.Tuple, bool)) (*stream.Stream, error) {
	e.mu.Lock()
	src, ok := e.streams[base]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("anduin: view %q references unknown stream %q", name, base)
	}
	v, err := stream.Derive(src, name, schema, f)
	if err != nil {
		return nil, err
	}
	if err := e.attach(v); err != nil {
		return nil, err
	}
	return v, nil
}

// RegisterUDF adds a scalar function to the query environment.
func (e *Engine) RegisterUDF(udf query.UDF) error {
	if udf.Name == "" || udf.Fn == nil {
		return fmt.Errorf("anduin: UDF needs a name and an implementation")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.env.UDFs[udf.Name]; dup {
		return fmt.Errorf("anduin: UDF %q already registered", udf.Name)
	}
	e.env.UDFs[udf.Name] = udf
	return nil
}

// KinectPipeline registers the raw "kinect" stream plus the transformed
// "kinect_t" view (§3.2) in one call and returns both. This is the standard
// setup of every example and experiment.
func (e *Engine) KinectPipeline(cfg transform.Config) (raw, view *stream.Stream, err error) {
	raw, err = e.RegisterStream("kinect", kinect.Schema())
	if err != nil {
		return nil, nil, err
	}
	tr, err := transform.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	view, err = e.RegisterView(transform.ViewName, "kinect", raw.Schema(), tr.Tuple)
	if err != nil {
		return nil, nil, err
	}
	return raw, view, nil
}

// DeployText parses, compiles and activates a gesture query, returning its
// ID. The query starts receiving tuples immediately.
func (e *Engine) DeployText(text string) (int, error) {
	q, err := query.Parse(text)
	if err != nil {
		return 0, err
	}
	return e.deploy(q, text)
}

// Deploy activates a parsed query.
func (e *Engine) Deploy(q *query.Query) (int, error) {
	return e.deploy(q, query.Print(q))
}

func (e *Engine) deploy(q *query.Query, text string) (int, error) {
	e.mu.Lock()
	compiled, err := query.CompileQuery(q, e.env)
	if err != nil {
		e.mu.Unlock()
		return 0, err
	}
	src, ok := e.streams[compiled.Source]
	if !ok {
		e.mu.Unlock()
		return 0, fmt.Errorf("anduin: query %q reads unregistered stream %q", compiled.Output, compiled.Source)
	}
	nfa, err := cep.Compile(compiled.Pattern, compiled.Select, compiled.Consume)
	if err != nil {
		e.mu.Unlock()
		return 0, err
	}
	id := e.nextQuery
	e.nextQuery++
	d := &deployed{
		info: QueryInfo{
			ID:      id,
			Gesture: compiled.Output,
			Source:  compiled.Source,
			Atoms:   compiled.NumAtoms,
			Text:    text,
		},
		nfa: nfa,
	}
	e.queries[id] = d
	e.mu.Unlock()

	// Subscribe outside the lock; stream subscription has its own lock.
	measures := compiled.Measures
	d.cancel = src.Subscribe(func(t stream.Tuple) {
		for _, m := range nfa.Process(t) {
			det := Detection{
				Gesture: d.info.Gesture,
				QueryID: id,
				Start:   m.Start,
				End:     m.End,
			}
			if len(measures) > 0 && len(m.Tuples) > 0 {
				last := m.Tuples[len(m.Tuples)-1]
				det.Measures = make([]float64, len(measures))
				for i, ev := range measures {
					det.Measures[i] = ev(last)
				}
			}
			e.dispatch(det)
		}
	})
	return id, nil
}

// Undeploy removes a query; its partial matches are discarded.
func (e *Engine) Undeploy(id int) error {
	e.mu.Lock()
	d, ok := e.queries[id]
	if ok {
		delete(e.queries, id)
	}
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("anduin: no query with id %d", id)
	}
	if d.cancel != nil {
		d.cancel()
	}
	return nil
}

// UndeployAll removes every deployed query.
func (e *Engine) UndeployAll() {
	e.mu.Lock()
	ds := make([]*deployed, 0, len(e.queries))
	for id, d := range e.queries {
		ds = append(ds, d)
		delete(e.queries, id)
	}
	e.mu.Unlock()
	for _, d := range ds {
		if d.cancel != nil {
			d.cancel()
		}
	}
}

// Queries lists deployed queries ordered by ID.
func (e *Engine) Queries() []QueryInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]QueryInfo, 0, len(e.queries))
	for _, d := range e.queries {
		out = append(out, d.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// QueryStats returns the NFA counters of one deployed query.
func (e *Engine) QueryStats(id int) (processed, predCalls, matches, pruned uint64, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.queries[id]
	if !ok {
		return 0, 0, 0, 0, fmt.Errorf("anduin: no query with id %d", id)
	}
	processed, predCalls, matches, pruned = d.nfa.Stats()
	return processed, predCalls, matches, pruned, nil
}

// Subscribe registers a detection listener; the returned function removes
// it. Listeners run synchronously on the tuple-publishing goroutine — keep
// them fast.
func (e *Engine) Subscribe(fn func(Detection)) func() {
	e.listenMu.Lock()
	id := e.nextL
	e.nextL++
	e.listeners[id] = fn
	e.listenMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			e.listenMu.Lock()
			delete(e.listeners, id)
			e.listenMu.Unlock()
		})
	}
}

func (e *Engine) dispatch(d Detection) {
	e.listenMu.RLock()
	fns := make([]func(Detection), 0, len(e.listeners))
	for _, fn := range e.listeners {
		fns = append(fns, fn)
	}
	e.listenMu.RUnlock()
	for _, fn := range fns {
		fn(d)
	}
}
