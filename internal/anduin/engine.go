// Package anduin is the engine facade that plays the role of the AnduIN
// data-stream management system in the paper: it owns named streams and
// continuous views (kinect_t), a registry of user-defined operators (RPY
// angles, dist, …), and the set of deployed gesture detection queries.
// Detected gestures are fanned out to listeners, which is how the paper's
// applications receive "swipe_right" result tuples and map them to
// navigation operations.
//
// Queries can be deployed and undeployed at runtime — the property the
// paper's demo exploits to exchange gesture definitions while applications
// keep running.
package anduin

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"gesturecep/internal/cep"
	"gesturecep/internal/kinect"
	"gesturecep/internal/query"
	"gesturecep/internal/stream"
	"gesturecep/internal/transform"
)

// Detection is the result tuple a matched gesture query produces.
type Detection struct {
	// Gesture is the query's SELECT output, e.g. "swipe_right".
	Gesture string
	// QueryID identifies the deployed query that fired.
	QueryID int
	// Start and End are the event times of the first and last contributing
	// sensor tuple.
	Start, End time.Time
	// Measures holds the query's output-measure expressions evaluated on
	// the final matched tuple (§3.3.4), in declaration order; nil when the
	// query declares none.
	Measures []float64
}

// Duration is the event-time span of the detected gesture.
func (d Detection) Duration() time.Duration { return d.End.Sub(d.Start) }

// QueryInfo describes one deployed query.
type QueryInfo struct {
	ID      int
	Gesture string
	Source  string
	Atoms   int
	Text    string
}

// Engine is the DSMS facade. Streams must be fed from a single goroutine at
// a time (the usual replay/pump pattern); management operations (deploy,
// subscribe, …) are safe for concurrent use.
type Engine struct {
	mu        sync.Mutex
	streams   map[string]*stream.Stream
	env       *query.Env
	queries   map[int]*deployed
	nextQuery int

	listenMu  sync.RWMutex
	listeners map[int]func(Detection)
	nextL     int
}

type deployed struct {
	info   QueryInfo
	nfa    *cep.NFA
	cancel func()
}

// RawStreamName is the conventional name of the raw sensor stream
// registered by KinectPipeline; transform.ViewName names its transformed
// view.
const RawStreamName = "kinect"

// newEnv builds the engine's base query environment: builtin scalar
// functions plus the RPY user-defined operators of §3.2. Both live engines
// and the standalone plan environment derive from it, so the two can never
// drift apart.
func newEnv() *query.Env {
	env := query.NewEnv()
	for _, udf := range transform.RPYUDFs() {
		env.UDFs[udf.Name] = udf
	}
	return env
}

// New creates an engine with the builtin scalar functions plus the RPY
// user-defined operators of §3.2 pre-registered.
func New() *Engine {
	return &Engine{
		streams:   make(map[string]*stream.Stream),
		env:       newEnv(),
		queries:   make(map[int]*deployed),
		listeners: make(map[int]func(Detection)),
	}
}

// RegisterStream creates and registers a new source stream.
func (e *Engine) RegisterStream(name string, schema *stream.Schema) (*stream.Stream, error) {
	s, err := stream.New(name, schema)
	if err != nil {
		return nil, err
	}
	if err := e.attach(s); err != nil {
		return nil, err
	}
	return s, nil
}

func (e *Engine) attach(s *stream.Stream) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.streams[s.Name()]; dup {
		return fmt.Errorf("anduin: stream %q already registered", s.Name())
	}
	e.streams[s.Name()] = s
	e.env.Schemas[s.Name()] = s.Schema()
	return nil
}

// Stream returns a registered stream by name.
func (e *Engine) Stream(name string) (*stream.Stream, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.streams[name]
	return s, ok
}

// RegisterView derives a continuous view over the named base stream and
// registers it under its own name so queries can read it.
func (e *Engine) RegisterView(name, base string, schema *stream.Schema, f func(stream.Tuple) (stream.Tuple, bool)) (*stream.Stream, error) {
	e.mu.Lock()
	src, ok := e.streams[base]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("anduin: view %q references unknown stream %q", name, base)
	}
	v, err := stream.Derive(src, name, schema, f)
	if err != nil {
		return nil, err
	}
	if err := e.attach(v); err != nil {
		return nil, err
	}
	return v, nil
}

// RegisterUDF adds a scalar function to the query environment.
func (e *Engine) RegisterUDF(udf query.UDF) error {
	if udf.Name == "" || udf.Fn == nil {
		return fmt.Errorf("anduin: UDF needs a name and an implementation")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.env.UDFs[udf.Name]; dup {
		return fmt.Errorf("anduin: UDF %q already registered", udf.Name)
	}
	e.env.UDFs[udf.Name] = udf
	return nil
}

// KinectPipeline registers the raw "kinect" stream plus the transformed
// "kinect_t" view (§3.2) in one call and returns both. This is the standard
// setup of every example and experiment.
func (e *Engine) KinectPipeline(cfg transform.Config) (raw, view *stream.Stream, err error) {
	raw, err = e.RegisterStream(RawStreamName, kinect.Schema())
	if err != nil {
		return nil, nil, err
	}
	tr, err := transform.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	view, err = e.RegisterView(transform.ViewName, RawStreamName, raw.Schema(), tr.Tuple)
	if err != nil {
		return nil, nil, err
	}
	return raw, view, nil
}

// Plan is a fully compiled, immutable gesture query: the shared cep.Program
// plus the resolved source stream name and output-measure evaluators. A Plan
// is compiled once and may then be deployed on any number of engines — each
// deployment instantiates its own cheap NFA from the shared Program, so a
// serving fleet of thousands of per-session engines never re-parses or
// re-compiles a learned query. Plans are safe for concurrent use.
type Plan struct {
	// Gesture is the query's SELECT output name.
	Gesture string
	// Source is the stream/view the pattern reads (normally "kinect_t").
	Source string
	// Text is the concrete query syntax the plan was compiled from.
	Text string
	// Atoms is the number of event atoms (NFA states).
	Atoms int
	// Program is the shared compiled pattern.
	Program *cep.Program
	// measures are the compiled output-measure evaluators (§3.3.4).
	measures []func(stream.Tuple) float64
}

// NewPlanEnv returns the canonical compilation environment for gesture
// queries outside a live engine: the raw "kinect" schema, the transformed
// "kinect_t" view schema, and the builtin plus RPY scalar functions. It
// mirrors exactly what New + KinectPipeline register on a live engine
// (KinectPipeline derives the view's schema from the raw stream's), so
// plans compiled against this environment deploy onto any engine whose
// pipeline was built with KinectPipeline.
func NewPlanEnv() *query.Env {
	env := newEnv()
	env.Schemas[RawStreamName] = kinect.Schema()
	env.Schemas[transform.ViewName] = kinect.Schema()
	return env
}

// CompilePlan compiles a parsed query against env into a deployable Plan.
// An empty text is filled in by re-printing the AST.
func CompilePlan(q *query.Query, text string, env *query.Env) (*Plan, error) {
	compiled, err := query.CompileQuery(q, env)
	if err != nil {
		return nil, err
	}
	prog, err := cep.CompileProgram(compiled.Pattern, compiled.Select, compiled.Consume)
	if err != nil {
		return nil, err
	}
	if text == "" {
		text = query.Print(q)
	}
	return &Plan{
		Gesture:  compiled.Output,
		Source:   compiled.Source,
		Text:     text,
		Atoms:    compiled.NumAtoms,
		Program:  prog,
		measures: compiled.Measures,
	}, nil
}

// CompilePlanText parses and compiles query text against env.
func CompilePlanText(text string, env *query.Env) (*Plan, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	return CompilePlan(q, text, env)
}

// CompilePlanText compiles query text against this engine's environment
// (its registered streams and UDFs) without deploying it.
func (e *Engine) CompilePlanText(text string) (*Plan, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return CompilePlan(q, text, e.env)
}

// DeployText parses, compiles and activates a gesture query, returning its
// ID. The query starts receiving tuples immediately.
func (e *Engine) DeployText(text string) (int, error) {
	q, err := query.Parse(text)
	if err != nil {
		return 0, err
	}
	return e.deploy(q, text)
}

// Deploy activates a parsed query.
func (e *Engine) Deploy(q *query.Query) (int, error) {
	return e.deploy(q, query.Print(q))
}

func (e *Engine) deploy(q *query.Query, text string) (int, error) {
	e.mu.Lock()
	p, err := CompilePlan(q, text, e.env)
	e.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return e.DeployPlan(p)
}

// DeployPlan activates a pre-compiled plan: it instantiates a fresh NFA from
// the plan's shared Program and subscribes it to the plan's source stream.
// This is the fast path of the serving layer — no parsing, type-checking or
// pattern flattening happens per deployment.
func (e *Engine) DeployPlan(p *Plan) (int, error) {
	if p == nil || p.Program == nil {
		return 0, fmt.Errorf("anduin: nil plan")
	}
	e.mu.Lock()
	src, ok := e.streams[p.Source]
	if !ok {
		e.mu.Unlock()
		return 0, fmt.Errorf("anduin: query %q reads unregistered stream %q", p.Gesture, p.Source)
	}
	nfa := p.Program.Instantiate()
	id := e.nextQuery
	e.nextQuery++
	d := &deployed{
		info: QueryInfo{
			ID:      id,
			Gesture: p.Gesture,
			Source:  p.Source,
			Atoms:   p.Atoms,
			Text:    p.Text,
		},
		nfa: nfa,
	}
	e.queries[id] = d
	e.mu.Unlock()

	// Subscribe outside the lock; stream subscription has its own lock.
	measures := p.measures
	cancel := src.Subscribe(func(t stream.Tuple) {
		for _, m := range nfa.Process(t) {
			det := Detection{
				Gesture: d.info.Gesture,
				QueryID: id,
				Start:   m.Start,
				End:     m.End,
			}
			if len(measures) > 0 && len(m.Tuples) > 0 {
				last := m.Tuples[len(m.Tuples)-1]
				det.Measures = make([]float64, len(measures))
				for i, ev := range measures {
					det.Measures[i] = ev(last)
				}
			}
			e.dispatch(det)
		}
	})

	// Publish the cancel function under the lock; if the query was
	// undeployed in the window since we released it, the undeployer saw a
	// nil cancel, so the subscription is ours to tear down.
	e.mu.Lock()
	_, live := e.queries[id]
	if live {
		d.cancel = cancel
	}
	e.mu.Unlock()
	if !live {
		cancel()
	}
	return id, nil
}

// Undeploy removes a query; its partial matches are discarded. A nil
// cancel means the deploying goroutine has not finished subscribing yet;
// it will observe the deletion and tear the subscription down itself.
func (e *Engine) Undeploy(id int) error {
	e.mu.Lock()
	d, ok := e.queries[id]
	var cancel func()
	if ok {
		delete(e.queries, id)
		cancel = d.cancel
	}
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("anduin: no query with id %d", id)
	}
	if cancel != nil {
		cancel()
	}
	return nil
}

// UndeployAll removes every deployed query.
func (e *Engine) UndeployAll() {
	e.mu.Lock()
	cancels := make([]func(), 0, len(e.queries))
	for id, d := range e.queries {
		if d.cancel != nil {
			cancels = append(cancels, d.cancel)
		}
		delete(e.queries, id)
	}
	e.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}

// Queries lists deployed queries ordered by ID.
func (e *Engine) Queries() []QueryInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]QueryInfo, 0, len(e.queries))
	for _, d := range e.queries {
		out = append(out, d.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// QueryStats returns the NFA counters of one deployed query.
func (e *Engine) QueryStats(id int) (processed, predCalls, matches, pruned uint64, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	d, ok := e.queries[id]
	if !ok {
		return 0, 0, 0, 0, fmt.Errorf("anduin: no query with id %d", id)
	}
	processed, predCalls, matches, pruned = d.nfa.Stats()
	return processed, predCalls, matches, pruned, nil
}

// Subscribe registers a detection listener; the returned function removes
// it. Listeners run synchronously on the tuple-publishing goroutine — keep
// them fast.
func (e *Engine) Subscribe(fn func(Detection)) func() {
	e.listenMu.Lock()
	id := e.nextL
	e.nextL++
	e.listeners[id] = fn
	e.listenMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			e.listenMu.Lock()
			delete(e.listeners, id)
			e.listenMu.Unlock()
		})
	}
}

func (e *Engine) dispatch(d Detection) {
	e.listenMu.RLock()
	fns := make([]func(Detection), 0, len(e.listeners))
	for _, fn := range e.listeners {
		fns = append(fns, fn)
	}
	e.listenMu.RUnlock()
	for _, fn := range fns {
		fn(d)
	}
}
