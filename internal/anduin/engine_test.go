package anduin

import (
	"sync"
	"testing"
	"time"

	"gesturecep/internal/kinect"
	"gesturecep/internal/query"
	"gesturecep/internal/stream"
	"gesturecep/internal/transform"
)

func t0() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

// simpleQuery matches field a crossing three thresholds in order.
const simpleQuery = `
SELECT "ramp"
MATCHING s(a < 10) -> s(a > 40 and a < 60) -> s(a > 90)
within 2 seconds select first consume all;
`

func rampTuples(ms0 int) []stream.Tuple {
	mk := func(ms int, v float64) stream.Tuple {
		return stream.Tuple{Ts: t0().Add(time.Duration(ms0+ms) * time.Millisecond), Fields: []float64{v}}
	}
	return []stream.Tuple{mk(0, 5), mk(100, 30), mk(200, 50), mk(300, 70), mk(400, 95)}
}

func newRampEngine(t *testing.T) (*Engine, *stream.Stream) {
	t.Helper()
	e := New()
	s, err := e.RegisterStream("s", stream.MustSchema("a"))
	if err != nil {
		t.Fatal(err)
	}
	return e, s
}

func TestDeployAndDetect(t *testing.T) {
	e, s := newRampEngine(t)
	id, err := e.DeployText(simpleQuery)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var dets []Detection
	e.Subscribe(func(d Detection) {
		mu.Lock()
		dets = append(dets, d)
		mu.Unlock()
	})
	if err := stream.Replay(s, rampTuples(0)); err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("detections = %d, want 1", len(dets))
	}
	d := dets[0]
	if d.Gesture != "ramp" || d.QueryID != id {
		t.Errorf("detection = %+v", d)
	}
	if d.Duration() != 400*time.Millisecond {
		t.Errorf("duration = %v", d.Duration())
	}
	processed, _, matches, _, err := e.QueryStats(id)
	if err != nil {
		t.Fatal(err)
	}
	if processed != 5 || matches != 1 {
		t.Errorf("stats processed=%d matches=%d", processed, matches)
	}
}

func TestUndeployStopsDetection(t *testing.T) {
	e, s := newRampEngine(t)
	id, err := e.DeployText(simpleQuery)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	e.Subscribe(func(Detection) { count++ })
	if err := e.Undeploy(id); err != nil {
		t.Fatal(err)
	}
	_ = stream.Replay(s, rampTuples(0))
	if count != 0 {
		t.Error("undeployed query still fired")
	}
	if err := e.Undeploy(id); err == nil {
		t.Error("double undeploy accepted")
	}
	if _, _, _, _, err := e.QueryStats(id); err == nil {
		t.Error("stats of removed query accessible")
	}
}

func TestRuntimeExchange(t *testing.T) {
	// The paper's headline property: exchange gesture definitions during
	// runtime without restarting anything.
	e, s := newRampEngine(t)
	var names []string
	e.Subscribe(func(d Detection) { names = append(names, d.Gesture) })

	id1, err := e.DeployText(simpleQuery)
	if err != nil {
		t.Fatal(err)
	}
	_ = stream.Replay(s, rampTuples(0))

	if err := e.Undeploy(id1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DeployText(`SELECT "ramp_v2" MATCHING s(a < 10) -> s(a > 90) within 2 seconds;`); err != nil {
		t.Fatal(err)
	}
	_ = stream.Replay(s, rampTuples(10000))

	if len(names) != 2 || names[0] != "ramp" || names[1] != "ramp_v2" {
		t.Errorf("detections = %v", names)
	}
}

func TestMultipleQueriesShareStream(t *testing.T) {
	e, s := newRampEngine(t)
	if _, err := e.DeployText(`SELECT "low" MATCHING s(a < 10);`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DeployText(`SELECT "high" MATCHING s(a > 90);`); err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	e.Subscribe(func(d Detection) { got[d.Gesture]++ })
	_ = stream.Replay(s, rampTuples(0))
	if got["low"] != 1 || got["high"] != 1 {
		t.Errorf("detections = %v", got)
	}
	qs := e.Queries()
	if len(qs) != 2 || qs[0].ID > qs[1].ID {
		t.Errorf("queries = %+v", qs)
	}
	e.UndeployAll()
	if len(e.Queries()) != 0 {
		t.Error("UndeployAll left queries")
	}
}

func TestDeployErrors(t *testing.T) {
	e, _ := newRampEngine(t)
	bad := []string{
		`SELECT "g" MATCHING nosuch(a < 1);`,  // unknown stream
		`SELECT "g" MATCHING s(nofield < 1);`, // unknown attribute
		`garbage`,                             // parse error
	}
	for _, src := range bad {
		if _, err := e.DeployText(src); err == nil {
			t.Errorf("DeployText(%q) did not fail", src)
		}
	}
}

func TestRegisterStreamAndViewValidation(t *testing.T) {
	e := New()
	if _, err := e.RegisterStream("s", stream.MustSchema("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterStream("s", stream.MustSchema("a")); err == nil {
		t.Error("duplicate stream accepted")
	}
	if _, err := e.RegisterView("v", "nosuch", stream.MustSchema("a"), nil); err == nil {
		t.Error("view over unknown stream accepted")
	}
	v, err := e.RegisterView("v", "s", stream.MustSchema("b"), func(t stream.Tuple) (stream.Tuple, bool) {
		return stream.Tuple{Ts: t.Ts, Fields: []float64{t.Fields[0] * 2}}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Stream("v"); !ok {
		t.Error("view not registered as stream")
	}
	// Queries can read views.
	if _, err := e.DeployText(`SELECT "doubled" MATCHING v(b > 5);`); err != nil {
		t.Fatal(err)
	}
	var got int
	e.Subscribe(func(Detection) { got++ })
	s, _ := e.Stream("s")
	_ = s.Publish(stream.Tuple{Ts: t0(), Fields: []float64{4}}) // view emits 8 > 5
	if got != 1 {
		t.Errorf("view-based detection = %d", got)
	}
	_ = v
}

func TestRegisterUDF(t *testing.T) {
	e := New()
	if err := e.RegisterUDF(query.UDF{}); err == nil {
		t.Error("empty UDF accepted")
	}
	udf := query.UDF{Name: "twice", Arity: 1, Fn: func(a []float64) float64 { return 2 * a[0] }}
	if err := e.RegisterUDF(udf); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterUDF(udf); err == nil {
		t.Error("duplicate UDF accepted")
	}
	if _, err := e.RegisterStream("s", stream.MustSchema("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DeployText(`SELECT "g" MATCHING s(twice(a) > 10);`); err != nil {
		t.Fatal(err)
	}
	var got int
	e.Subscribe(func(Detection) { got++ })
	s, _ := e.Stream("s")
	_ = s.Publish(stream.Tuple{Ts: t0(), Fields: []float64{6}})
	if got != 1 {
		t.Error("UDF-based query did not fire")
	}
}

func TestSubscribeCancel(t *testing.T) {
	e, s := newRampEngine(t)
	if _, err := e.DeployText(`SELECT "low" MATCHING s(a < 10);`); err != nil {
		t.Fatal(err)
	}
	var n int
	cancel := e.Subscribe(func(Detection) { n++ })
	_ = s.Publish(stream.Tuple{Ts: t0(), Fields: []float64{1}})
	cancel()
	cancel()
	_ = s.Publish(stream.Tuple{Ts: t0().Add(time.Second), Fields: []float64{1}})
	if n != 1 {
		t.Errorf("listener fired %d times after cancel", n)
	}
}

func TestKinectPipelineEndToEnd(t *testing.T) {
	// Full integration: simulator → raw stream → kinect_t view → deployed
	// gesture query → detection. The query windows are written against the
	// user-local reference frame of the standard swipe_right spec.
	e := New()
	raw, view, err := e.KinectPipeline(transform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if view.Name() != transform.ViewName {
		t.Errorf("view name = %s", view.Name())
	}
	qText := `
SELECT "swipe_right"
MATCHING (
  kinect_t(
    abs(rHand_x - 0) < 100 and
    abs(rHand_y - 150) < 100 and
    abs(rHand_z + 150) < 100
  ) ->
  kinect_t(
    abs(rHand_x - 350) < 100 and
    abs(rHand_y - 150) < 100 and
    abs(rHand_z + 400) < 100
  )
  within 1 seconds select first consume all
) ->
kinect_t(
  abs(rHand_x - 700) < 100 and
  abs(rHand_y - 150) < 100 and
  abs(rHand_z + 150) < 100
)
within 1 seconds select first consume all;
`
	if _, err := e.DeployText(qText); err != nil {
		t.Fatal(err)
	}
	var dets []Detection
	e.Subscribe(func(d Detection) { dets = append(dets, d) })

	// Three different users perform the same gesture; the transformation
	// must make all three match the single query.
	for i, p := range []kinect.Profile{kinect.DefaultProfile(), kinect.ChildProfile(), kinect.TallProfile()} {
		sim, err := kinect.NewSimulator(p, kinect.DefaultNoise(), int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		perf, err := sim.Perform(kinect.StandardGestures()[kinect.GestureSwipeRight],
			t0().Add(time.Duration(i)*time.Minute), kinect.PerformOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if err := stream.Replay(raw, kinect.ToTuples(perf.Frames)); err != nil {
			t.Fatal(err)
		}
	}
	if len(dets) != 3 {
		t.Fatalf("detections = %d, want 3 (one per user)", len(dets))
	}
	for _, d := range dets {
		if d.Gesture != "swipe_right" {
			t.Errorf("gesture = %q", d.Gesture)
		}
	}
}

func TestOutputMeasures(t *testing.T) {
	// §3.3.4: the output tuple may carry measures computed on the stream,
	// e.g. joint positions at detection time.
	e, s := newRampEngine(t)
	if _, err := e.DeployText(`SELECT "ramp", a, a * 2 MATCHING s(a < 10) -> s(a > 90) within 2 seconds;`); err != nil {
		t.Fatal(err)
	}
	var dets []Detection
	e.Subscribe(func(d Detection) { dets = append(dets, d) })
	_ = stream.Replay(s, rampTuples(0))
	if len(dets) != 1 {
		t.Fatalf("detections = %d", len(dets))
	}
	got := dets[0].Measures
	// The final matched tuple has a = 95.
	if len(got) != 2 || got[0] != 95 || got[1] != 190 {
		t.Errorf("measures = %v, want [95 190]", got)
	}
	// Queries without measures leave the field nil.
	e2, s2 := newRampEngine(t)
	if _, err := e2.DeployText(`SELECT "low" MATCHING s(a < 10);`); err != nil {
		t.Fatal(err)
	}
	var d2 []Detection
	e2.Subscribe(func(d Detection) { d2 = append(d2, d) })
	_ = stream.Replay(s2, rampTuples(0))
	if len(d2) == 0 || d2[0].Measures != nil {
		t.Errorf("expected nil measures, got %+v", d2)
	}
	// Invalid measure expressions are rejected at deploy time.
	if _, err := e.DeployText(`SELECT "bad", nosuch MATCHING s(a < 10);`); err == nil {
		t.Error("unknown measure attribute accepted")
	}
}
