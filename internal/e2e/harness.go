package e2e

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"gesturecep/internal/cluster"
	"gesturecep/internal/kinect"
	"gesturecep/internal/serve"
	"gesturecep/internal/store"
	"gesturecep/internal/stream"
	"gesturecep/internal/wire"
)

// Options configures a Harness.
type Options struct {
	// Backends is the number of in-process wire backends (default 1).
	Backends int
	// Gateway fronts the backends with a cluster gateway; Addr then points
	// at the gateway instead of backend 0.
	Gateway bool
	// Serve configures every backend's session manager.
	Serve serve.Config
	// Plans maps plan names to query text. Nil registers the learned
	// swipe_right query.
	Plans map[string]string
	// Record archives every session's tuple stream per backend under a
	// test temp dir (read them back with Recorded after Stop).
	Record bool
	// RecorderBuffer overrides the recorder tap buffer (0 = store default).
	RecorderBuffer int
	// VNodes / LoadFactor / ProbeInterval / ProbeTimeout tune the gateway
	// ring and health checks; zero values pick fast test defaults.
	VNodes        int
	LoadFactor    float64
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// Readmit enables the gateway's backend recovery loop; the backoff
	// knobs default to fast test values (10ms initial, 100ms cap).
	Readmit           bool
	ReadmitBackoff    time.Duration
	ReadmitMaxBackoff time.Duration
}

// Harness is one in-process serving cluster for end-to-end tests.
type Harness struct {
	t        testing.TB
	Registry *serve.Registry
	Spawner  *cluster.Spawner
	Gateway  *cluster.Gateway // nil unless Options.Gateway

	archives  []*store.Archive
	archiveOf map[string]*store.Archive // live archive per backend ID
	roots     []string
	recBuf    int
	gwAddr    string

	stopOnce sync.Once
}

// Start builds the cluster: registry → backends → optional gateway, with
// teardown registered on t.Cleanup (Stop may be called earlier to flush
// recording archives before reading them).
func Start(t testing.TB, opts Options) *Harness {
	t.Helper()
	if opts.Backends <= 0 {
		opts.Backends = 1
	}
	if opts.Plans == nil {
		opts.Plans = map[string]string{"swipe_right": SwipeQuery(t)}
	}
	h := &Harness{t: t, Registry: serve.NewRegistry()}
	for name, text := range opts.Plans {
		if _, err := h.Registry.Register(name, text); err != nil {
			t.Fatal(err)
		}
	}

	spawnOpts := cluster.SpawnOptions{Serve: opts.Serve}
	if opts.Record {
		h.recBuf = opts.RecorderBuffer
		h.archives = make([]*store.Archive, opts.Backends)
		h.roots = make([]string, opts.Backends)
		for i := range h.archives {
			h.roots[i] = t.TempDir()
			h.archives[i] = store.NewArchive(h.roots[i], store.Options{}, opts.RecorderBuffer)
		}
		archiveOf := make(map[string]*store.Archive, opts.Backends)
		h.archiveOf = archiveOf
		spawnOpts.TapSessions = func(backendID string) func(string) (func(stream.Tuple), func(bool), error) {
			arch := archiveOf[backendID]
			return func(sessionID string) (func(stream.Tuple), func(bool), error) {
				rec, err := arch.Record(sessionID, kinect.Schema())
				if err != nil {
					return nil, nil, err
				}
				return rec.Tap(), func(aborted bool) {
					if aborted {
						arch.Abort(rec)
					} else {
						arch.Release(rec)
					}
				}, nil
			}
		}
		// With a recording archive per backend, every session is also
		// live-migratable: the migration history source syncs the session's
		// recorder (draining the tap backlog to disk) and reads its stream
		// back — the replay a drain streams into the target.
		spawnOpts.MigrateSource = func(backendID string) func(string) (wire.HistoryReader, uint64, error) {
			arch := archiveOf[backendID]
			return func(sessionID string) (wire.HistoryReader, uint64, error) {
				rec, ok := arch.LiveRecorder(sessionID)
				if !ok {
					return nil, 0, fmt.Errorf("e2e: no live recording for session %q on %s", sessionID, backendID)
				}
				if err := rec.Sync(); err != nil {
					return nil, 0, err
				}
				r, err := store.OpenReader(arch.Root(), rec.Stream())
				if err != nil {
					return nil, 0, err
				}
				return r, rec.Recorded(), nil
			}
		}
		// Every recording backend can also serve offline backfills from its
		// archive — the fleet-parallel path gw.Backfill fans out over.
		spawnOpts.Backfill = func(backendID string) wire.BackfillFunc {
			arch := archiveOf[backendID]
			return store.NewWireBackfillSource(h.Registry, arch.OpenReader)
		}
		// Backend IDs are assigned by Spawn in order; pre-bind them.
		for i := 0; i < opts.Backends; i++ {
			archiveOf[cluster.BackendID(i)] = h.archives[i]
		}
	}

	sp, err := cluster.Spawn(opts.Backends, h.Registry, spawnOpts)
	if err != nil {
		t.Fatal(err)
	}
	h.Spawner = sp

	if opts.Gateway {
		if opts.ProbeInterval == 0 {
			opts.ProbeInterval = 50 * time.Millisecond
		}
		if opts.ProbeTimeout == 0 {
			opts.ProbeTimeout = time.Second
		}
		if opts.ReadmitBackoff == 0 {
			opts.ReadmitBackoff = 10 * time.Millisecond
		}
		if opts.ReadmitMaxBackoff == 0 {
			opts.ReadmitMaxBackoff = 100 * time.Millisecond
		}
		gw, err := cluster.NewGateway(cluster.Config{
			Backends:          sp.Backends(),
			Name:              "e2e-gateway",
			VNodes:            opts.VNodes,
			LoadFactor:        opts.LoadFactor,
			ProbeInterval:     opts.ProbeInterval,
			ProbeTimeout:      opts.ProbeTimeout,
			Readmit:           opts.Readmit,
			ReadmitBackoff:    opts.ReadmitBackoff,
			ReadmitMaxBackoff: opts.ReadmitMaxBackoff,
			Logf:              t.Logf,
		})
		if err != nil {
			sp.Close()
			t.Fatal(err)
		}
		h.Gateway = gw
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			gw.Close()
			sp.Close()
			t.Fatal(err)
		}
		h.gwAddr = ln.Addr().String()
		go gw.Serve(ln)
	}
	t.Cleanup(h.Stop)
	return h
}

// Stop tears the cluster down — gateway, then backends, then recording
// archives (flushing them so Recorded can read complete streams).
// Idempotent; also registered as the test cleanup.
func (h *Harness) Stop() {
	h.stopOnce.Do(func() {
		if h.Gateway != nil {
			h.Gateway.Close()
		}
		h.Spawner.Close()
		for _, arch := range h.archives {
			if err := arch.Close(); err != nil {
				h.t.Errorf("e2e: closing archive: %v", err)
			}
		}
	})
}

// Addr returns the address clients should dial: the gateway when fronting,
// backend 0 otherwise.
func (h *Harness) Addr() string {
	if h.Gateway != nil {
		return h.gwAddr
	}
	return h.Spawner.Addr(0)
}

// Dial connects a wire client to Addr, closed on test cleanup.
func (h *Harness) Dial() *wire.Client {
	h.t.Helper()
	cl, err := wire.Dial(h.Addr())
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(func() { cl.Close() })
	return cl
}

// Manager exposes backend i's session manager.
func (h *Harness) Manager(i int) *serve.Manager { return h.Spawner.Manager(i) }

// KillBackend abruptly stops backend i and flushes its recording archive
// (the recordings of a crashed backend stay readable, like a disk
// surviving its process).
func (h *Harness) KillBackend(i int) {
	h.Spawner.Kill(i)
	if h.archives != nil {
		if err := h.archives[i].Close(); err != nil {
			h.t.Errorf("e2e: closing killed backend %d archive: %v", i, err)
		}
	}
}

// RestartBackend brings a killed backend back up on the same address, so a
// readmitting gateway can recover it. With recording on, the fresh
// incarnation records into a fresh archive over the same root directory —
// the recordings of the dead incarnation stay readable beside the new ones,
// like a disk surviving its process twice over.
func (h *Harness) RestartBackend(i int) {
	h.t.Helper()
	if h.archives != nil {
		h.archives[i] = store.NewArchive(h.roots[i], store.Options{}, h.recBuf)
		h.archiveOf[cluster.BackendID(i)] = h.archives[i]
	}
	if err := h.Spawner.Restart(i); err != nil {
		h.t.Fatal(err)
	}
}

// RecordRoot returns backend i's archive directory (Record only).
func (h *Harness) RecordRoot(i int) string { return h.roots[i] }

// HasRecording reports whether backend i archived a stream for sessionID.
func (h *Harness) HasRecording(i int, sessionID string) bool {
	return store.Exists(h.roots[i], sessionID)
}

// Recorded reads back every tuple backend i archived for sessionID. Call
// after Stop (or KillBackend for that backend) so the writer has flushed.
func (h *Harness) Recorded(i int, sessionID string) []stream.Tuple {
	h.t.Helper()
	tuples, err := store.ReadAll(h.roots[i], sessionID)
	if err != nil {
		h.t.Fatal(err)
	}
	return tuples
}
