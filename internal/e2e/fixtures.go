// Package e2e is the shared end-to-end test harness: it spins up an
// in-process serving cluster — N wire backends, optionally fronted by a
// consistent-hash gateway, optionally recording every session into a
// per-backend stream-store archive — behind one Harness type, plus the
// deterministic fixtures (a learned query, playback recordings, canonical
// detection encoding, the bare-engine reference replay) that the cluster,
// wire and store test suites previously each hand-rolled.
//
// It lives outside _test files so multiple packages can import it; only
// test code should depend on it.
package e2e

import (
	"sync"
	"testing"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/stream"
	"gesturecep/internal/transform"
	"gesturecep/internal/wire"
)

// TestTime is the fixed event-time origin every fixture uses (the paper's
// submission week, as elsewhere in the repo).
func TestTime() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

var (
	learnOnce sync.Once
	learnTxt  string
	learnErr  error
)

// SwipeQuery learns the swipe_right gesture once per test binary and
// returns the generated query text.
func SwipeQuery(t testing.TB) string {
	t.Helper()
	learnOnce.Do(func() {
		sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 1)
		if err != nil {
			learnErr = err
			return
		}
		samples, err := sim.Samples(kinect.StandardGestures()[kinect.GestureSwipeRight], 4,
			TestTime(), kinect.PerformOpts{PathJitter: 25})
		if err != nil {
			learnErr = err
			return
		}
		res, err := learn.Learn("swipe_right", samples, learn.DefaultConfig())
		if err != nil {
			learnErr = err
			return
		}
		learnTxt = res.QueryText
	})
	if learnErr != nil {
		t.Fatal(learnErr)
	}
	return learnTxt
}

// PlaybackFrames synthesizes a deterministic session with two swipes and a
// circle distractor.
func PlaybackFrames(t testing.TB, seed int64) []kinect.Frame {
	t.Helper()
	player, err := kinect.NewSimulator(kinect.ChildProfile(), kinect.DefaultNoise(), seed)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := player.RunScript([]kinect.ScriptItem{
		{Idle: 500 * time.Millisecond},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
		{Gesture: kinect.GestureCircle},
		{Idle: 500 * time.Millisecond},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: 500 * time.Millisecond},
	}, TestTime(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return sess.Frames
}

// EncodeDets canonicalizes a detection list to wire bytes so lists from
// different code paths compare byte-for-byte.
func EncodeDets(t testing.TB, dets []anduin.Detection) []byte {
	t.Helper()
	buf, err := wire.AppendDetections(nil, 0, 0, dets)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// BareReplay replays tuples through a standalone engine deploying the same
// shared plan and returns its detections — the single-node reference
// semantics every served, proxied, recorded or replayed path must match.
func BareReplay(t testing.TB, plan *anduin.Plan, tuples []stream.Tuple) []anduin.Detection {
	t.Helper()
	engine := anduin.New()
	raw, _, err := engine.KinectPipeline(transform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var out []anduin.Detection
	engine.Subscribe(func(d anduin.Detection) { out = append(out, d) })
	if _, err := engine.DeployPlan(plan); err != nil {
		t.Fatal(err)
	}
	if err := stream.Replay(raw, tuples); err != nil {
		t.Fatal(err)
	}
	return out
}

// WireTuples round-trips tuples through the batch codec, yielding exactly
// what a served engine sees after network transport (UTC re-stamped
// timestamps).
func WireTuples(t testing.TB, tuples []stream.Tuple) []stream.Tuple {
	t.Helper()
	out := make([]stream.Tuple, 0, len(tuples))
	for start := 0; start < len(tuples); start += wire.MaxBatch {
		end := start + wire.MaxBatch
		if end > len(tuples) {
			end = len(tuples)
		}
		payload, err := wire.AppendBatch(nil, 1, len(tuples[start].Fields), tuples[start:end])
		if err != nil {
			t.Fatal(err)
		}
		b, err := wire.DecodeBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b.Tuples...)
	}
	return out
}
