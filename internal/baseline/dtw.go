package baseline

import (
	"fmt"
	"math"
	"sort"

	"gesturecep/internal/learn"
)

// DTW computes the dynamic-time-warping distance between two sequences of
// equal-dimensional points using Euclidean local cost and an optional
// Sakoe-Chiba band (band <= 0 disables the constraint). The standard
// O(len(a)·len(b)) dynamic program with two rolling rows.
func DTW(a, b [][]float64, band int) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("baseline: DTW over empty sequence")
	}
	n, m := len(a), len(b)
	if band > 0 {
		// The band must be wide enough to connect the corners.
		if diff := n - m; diff < 0 && -diff > band || diff > 0 && diff > band {
			band = abs(n - m)
		}
	}
	const inf = math.MaxFloat64
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		lo, hi := 1, m
		if band > 0 {
			lo = max(1, i-band)
			hi = min(m, i+band)
		}
		for j := range cur {
			cur[j] = inf
		}
		for j := lo; j <= hi; j++ {
			c := euclid(a[i-1], b[j-1])
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			if best == inf {
				continue
			}
			cur[j] = c + best
		}
		prev, cur = cur, prev
	}
	d := prev[m]
	if d == math.MaxFloat64 {
		return 0, fmt.Errorf("baseline: DTW band %d disconnected the alignment", band)
	}
	return d, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SampleSequence flattens a learn.Sample into the point sequence DTW
// consumes.
func SampleSequence(s learn.Sample) [][]float64 {
	out := make([][]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Coords
	}
	return out
}

// DTWClassifier is the 1-nearest-neighbour template matcher standing in for
// the "static ML model" gesture recognizers of §1. Templates are whole
// recorded samples; classification warps the query against every template.
type DTWClassifier struct {
	band      int
	templates []dtwTemplate
}

type dtwTemplate struct {
	name string
	seq  [][]float64
}

// NewDTWClassifier creates a classifier with the given Sakoe-Chiba band
// (0 = unconstrained).
func NewDTWClassifier(band int) *DTWClassifier {
	return &DTWClassifier{band: band}
}

// AddTemplate stores a training sample for the named gesture.
func (c *DTWClassifier) AddTemplate(name string, seq [][]float64) error {
	if name == "" {
		return fmt.Errorf("baseline: template without name")
	}
	if len(seq) < 2 {
		return fmt.Errorf("baseline: template %q too short (%d points)", name, len(seq))
	}
	c.templates = append(c.templates, dtwTemplate{name: name, seq: seq})
	return nil
}

// TemplateCount returns the number of stored templates.
func (c *DTWClassifier) TemplateCount() int { return len(c.templates) }

// Classes returns the distinct gesture names with templates, sorted.
func (c *DTWClassifier) Classes() []string {
	set := map[string]bool{}
	for _, t := range c.templates {
		set[t.name] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Classify returns the gesture of the nearest template (normalized DTW
// distance: total cost divided by query length) and that distance.
func (c *DTWClassifier) Classify(seq [][]float64) (string, float64, error) {
	if len(c.templates) == 0 {
		return "", 0, fmt.Errorf("baseline: classifier has no templates")
	}
	if len(seq) == 0 {
		return "", 0, fmt.Errorf("baseline: empty query sequence")
	}
	bestName, bestDist := "", math.MaxFloat64
	for _, t := range c.templates {
		d, err := DTW(seq, t.seq, c.band)
		if err != nil {
			return "", 0, err
		}
		norm := d / float64(len(seq))
		if norm < bestDist {
			bestName, bestDist = t.name, norm
		}
	}
	return bestName, bestDist, nil
}

// ClassifyWithReject is Classify with an open-set threshold: sequences whose
// nearest template is farther than maxDist are rejected (returned name "").
// CEP queries get their selectivity for free from range predicates; the
// classifier needs this extra knob for a fair comparison on sessions
// containing unknown movements.
func (c *DTWClassifier) ClassifyWithReject(seq [][]float64, maxDist float64) (string, float64, error) {
	name, d, err := c.Classify(seq)
	if err != nil {
		return "", 0, err
	}
	if d > maxDist {
		return "", d, nil
	}
	return name, d, nil
}
