// Package baseline implements the two comparison points the paper argues
// against or builds on:
//
//   - DBSCAN (Ester et al., KDD 1996 — the paper's reference [2]): the
//     density-based clustering algorithm that the distance-based sampler is
//     "comparable to". Used as an alternative pose-extraction front-end to
//     quantify what the paper's simpler, order-preserving sampler gives up
//     or gains.
//   - A DTW + 1-nearest-neighbour template classifier: the "static models
//     obtained by applying machine learning algorithms on many training
//     samples" strawman from §1, to compare sample efficiency and detection
//     cost against learned CEP patterns.
package baseline

import (
	"fmt"
	"math"
	"sort"
	"time"

	"gesturecep/internal/geom"
	"gesturecep/internal/learn"
)

// Noise is the DBSCAN label for points not assigned to any cluster.
const Noise = -1

// DBSCAN clusters points with the classic density-based algorithm: a point
// with at least minPts neighbours within eps is a core point; clusters are
// maximal sets of density-connected points. It returns one label per input
// point, Noise (-1) for outliers. Labels are 0-based in discovery order.
//
// The implementation is the textbook O(n²) region-query variant — gesture
// samples are a few hundred points, so no index is warranted.
func DBSCAN(points [][]float64, eps float64, minPts int) ([]int, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("baseline: eps must be positive, got %g", eps)
	}
	if minPts < 1 {
		return nil, fmt.Errorf("baseline: minPts must be >= 1, got %d", minPts)
	}
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	visited := make([]bool, n)

	regionQuery := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if euclid(points[i], points[j]) <= eps {
				out = append(out, j)
			}
		}
		return out
	}

	cluster := 0
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		neighbours := regionQuery(i)
		if len(neighbours) < minPts {
			continue // noise (may later be absorbed as border point)
		}
		labels[i] = cluster
		// Expand the cluster over the seed set.
		queue := append([]int(nil), neighbours...)
		for k := 0; k < len(queue); k++ {
			j := queue[k]
			if !visited[j] {
				visited[j] = true
				jn := regionQuery(j)
				if len(jn) >= minPts {
					queue = append(queue, jn...)
				}
			}
			if labels[j] == Noise {
				labels[j] = cluster
			}
		}
		cluster++
	}
	return labels, nil
}

func euclid(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// DBSCANSampler extracts pose clusters from a gesture sample using DBSCAN
// instead of the paper's distance-based sampling, then orders the clusters
// by their mean timestamp so they can feed the same window-merging step.
// Noise points are dropped.
//
// Note the structural weakness this exposes (and the reason the paper's
// sampler preserves order instead of clustering globally): a gesture that
// revisits a region — e.g. a circle ending where it starts — collapses into
// one cluster and loses its sequence structure.
func DBSCANSampler(s learn.Sample, eps float64, minPts int) ([]learn.Cluster, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	points := make([][]float64, len(s.Points))
	for i, p := range s.Points {
		points[i] = p.Coords
	}
	labels, err := DBSCAN(points, eps, minPts)
	if err != nil {
		return nil, err
	}

	type agg struct {
		sum    []float64
		bounds geom.MBR
		count  int
		first  time.Time
		last   time.Time
		// meanIdx orders clusters along the gesture.
		idxSum int
	}
	byLabel := map[int]*agg{}
	for i, l := range labels {
		if l == Noise {
			continue
		}
		a, ok := byLabel[l]
		if !ok {
			a = &agg{
				sum:   make([]float64, len(points[i])),
				first: s.Points[i].Ts,
				last:  s.Points[i].Ts,
			}
			byLabel[l] = a
		}
		for d, v := range points[i] {
			a.sum[d] += v
		}
		// Extend never fails here: all sample points share dimensionality.
		_ = a.bounds.Extend(points[i])
		a.count++
		a.idxSum += i
		if s.Points[i].Ts.Before(a.first) {
			a.first = s.Points[i].Ts
		}
		if s.Points[i].Ts.After(a.last) {
			a.last = s.Points[i].Ts
		}
	}
	if len(byLabel) == 0 {
		return nil, fmt.Errorf("baseline: DBSCAN labelled every point noise (eps %g, minPts %d)", eps, minPts)
	}

	aggs := make([]*agg, 0, len(byLabel))
	for _, a := range byLabel {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool {
		return float64(aggs[i].idxSum)/float64(aggs[i].count) < float64(aggs[j].idxSum)/float64(aggs[j].count)
	})

	out := make([]learn.Cluster, len(aggs))
	for i, a := range aggs {
		centroid := make([]float64, len(a.sum))
		for d, v := range a.sum {
			centroid[d] = v / float64(a.count)
		}
		out[i] = learn.Cluster{
			Centroid: centroid,
			Bounds:   a.bounds,
			Count:    a.count,
			Start:    a.first,
			End:      a.last,
		}
	}
	return out, nil
}
