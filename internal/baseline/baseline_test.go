package baseline

import (
	"math"
	"testing"
	"time"

	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/transform"
)

func t0() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

func TestDBSCANTwoBlobs(t *testing.T) {
	var pts [][]float64
	// Blob A around (0,0), blob B around (100,100), two isolated noise
	// points.
	for i := 0; i < 10; i++ {
		pts = append(pts, []float64{float64(i % 3), float64(i / 3)})
	}
	for i := 0; i < 10; i++ {
		pts = append(pts, []float64{100 + float64(i%3), 100 + float64(i/3)})
	}
	pts = append(pts, []float64{500, 500}, []float64{-500, 300})

	labels, err := DBSCAN(pts, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] == Noise || labels[10] == Noise {
		t.Fatal("core points labelled noise")
	}
	if labels[0] == labels[10] {
		t.Error("distinct blobs merged")
	}
	for i := 1; i < 10; i++ {
		if labels[i] != labels[0] {
			t.Errorf("blob A point %d got label %d", i, labels[i])
		}
		if labels[10+i] != labels[10] {
			t.Errorf("blob B point %d got label %d", i, labels[10+i])
		}
	}
	if labels[20] != Noise || labels[21] != Noise {
		t.Error("isolated points not noise")
	}
}

func TestDBSCANValidation(t *testing.T) {
	if _, err := DBSCAN(nil, 0, 1); err == nil {
		t.Error("eps 0 accepted")
	}
	if _, err := DBSCAN(nil, 1, 0); err == nil {
		t.Error("minPts 0 accepted")
	}
	labels, err := DBSCAN(nil, 1, 1)
	if err != nil || len(labels) != 0 {
		t.Error("empty input mishandled")
	}
}

func TestDBSCANBorderPoints(t *testing.T) {
	// A dense line with a border point at the end: the border point joins
	// the cluster even though it is not core.
	pts := [][]float64{{0}, {1}, {2}, {3}, {4.5}}
	labels, err := DBSCAN(pts, 1.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if labels[i] != 0 {
			t.Errorf("point %d label %d", i, labels[i])
		}
	}
}

// lineSample reuses the learn package shape: straight-line right-hand
// movement.
func lineSample(n int, length float64) learn.Sample {
	s := learn.Sample{Joints: []kinect.Joint{kinect.RightHand}}
	for i := 0; i < n; i++ {
		x := length * float64(i) / float64(n-1)
		s.Points = append(s.Points, learn.PathPoint{
			Index:  i,
			Ts:     t0().Add(time.Duration(i) * 33 * time.Millisecond),
			Coords: []float64{x, 0, 0},
		})
	}
	return s
}

// dwellSample synthesizes a gesture with realistic speed profile: the hand
// dwells near pose positions and transits quickly between them. DBSCAN can
// only find pose clusters when transit spacing exceeds eps — a uniformly
// sampled path is one density-connected chain (see the collapse test
// below).
func dwellSample(poses []float64, dwell int, transit int) learn.Sample {
	s := learn.Sample{Joints: []kinect.Joint{kinect.RightHand}}
	idx := 0
	add := func(x float64) {
		s.Points = append(s.Points, learn.PathPoint{
			Index: idx, Ts: t0().Add(time.Duration(idx) * 33 * time.Millisecond),
			Coords: []float64{x, 0, 0},
		})
		idx++
	}
	for pi, p := range poses {
		for d := 0; d < dwell; d++ {
			add(p + float64(d%3)) // tiny jitter inside the dwell region
		}
		if pi < len(poses)-1 {
			for tr := 1; tr <= transit; tr++ {
				add(p + (poses[pi+1]-p)*float64(tr)/float64(transit+1))
			}
		}
	}
	return s
}

func TestDBSCANSamplerOrdersClusters(t *testing.T) {
	// Three dwell regions 500 mm apart with only 2 fast transit points in
	// between (250 mm spacing): eps 50 separates the regions.
	s := dwellSample([]float64{0, 500, 1000}, 10, 2)
	clusters, err := DBSCANSampler(s, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d, want 3", len(clusters))
	}
	for i := 1; i < len(clusters); i++ {
		if clusters[i].Centroid[0] <= clusters[i-1].Centroid[0] {
			t.Error("clusters not ordered along the gesture")
		}
	}
	// Too small eps with a high core requirement: everything noise.
	if _, err := DBSCANSampler(s, 0.001, 8); err == nil {
		t.Error("all-noise result not reported")
	}
}

func TestDBSCANChainsUniformPath(t *testing.T) {
	// A uniformly sampled path is one density-connected component: DBSCAN
	// cannot segment it into poses, unlike the paper's sampler. This is
	// the structural argument for distance-based sampling.
	s := lineSample(100, 1000)
	clusters, err := DBSCANSampler(s, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Errorf("uniform path produced %d DBSCAN clusters, expected 1 chain", len(clusters))
	}
	paper, err := learn.ExtractClusters(s, learn.SamplerConfig{Metric: learn.Euclidean{}, MaxDist: 250})
	if err != nil {
		t.Fatal(err)
	}
	if len(paper) < 3 {
		t.Errorf("paper sampler found %d poses on the same path", len(paper))
	}
}

func TestDBSCANSamplerCollapsesRevisits(t *testing.T) {
	// A there-and-back path: DBSCAN merges the outbound and return points
	// (same region) — the structural weakness vs. the paper's sampler.
	s := learn.Sample{Joints: []kinect.Joint{kinect.RightHand}}
	n := 60
	for i := 0; i < n; i++ {
		x := float64(i) * 20
		if i >= n/2 {
			x = float64(n-1-i) * 20
		}
		s.Points = append(s.Points, learn.PathPoint{
			Index: i, Ts: t0().Add(time.Duration(i) * 33 * time.Millisecond),
			Coords: []float64{x, 0, 0},
		})
	}
	dbClusters, err := DBSCANSampler(s, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	paperClusters, err := learn.ExtractClusters(s, learn.SamplerConfig{Metric: learn.Euclidean{}, MaxDist: 150})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's sampler sees the revisit as separate poses; DBSCAN sees
	// roughly half as many regions.
	if len(dbClusters) >= len(paperClusters) {
		t.Errorf("expected DBSCAN to collapse revisited regions: dbscan=%d paper=%d",
			len(dbClusters), len(paperClusters))
	}
}

func TestDTWIdenticalAndShifted(t *testing.T) {
	a := [][]float64{{0}, {1}, {2}, {3}}
	if d, err := DTW(a, a, 0); err != nil || d != 0 {
		t.Errorf("self distance = %v, %v", d, err)
	}
	// Time-warped version of the same shape: small distance.
	b := [][]float64{{0}, {0}, {1}, {1}, {2}, {2}, {3}, {3}}
	dw, err := DTW(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dw != 0 {
		t.Errorf("warped distance = %v, want 0 (pure time stretching)", dw)
	}
	// A different shape is far.
	c := [][]float64{{10}, {11}, {12}, {13}}
	dc, err := DTW(a, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dc <= 1 {
		t.Errorf("different shape distance = %v", dc)
	}
	if _, err := DTW(nil, a, 0); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestDTWBand(t *testing.T) {
	a := [][]float64{{0}, {1}, {2}, {3}, {4}, {5}}
	b := [][]float64{{0}, {1}, {2}, {3}, {4}, {5}}
	exact, err := DTW(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	banded, err := DTW(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-banded) > 1e-9 {
		t.Errorf("band changed diagonal alignment: %v vs %v", exact, banded)
	}
	// Band narrower than the length difference is widened automatically.
	short := [][]float64{{0}, {5}}
	if _, err := DTW(a, short, 1); err != nil {
		t.Errorf("auto-widened band failed: %v", err)
	}
}

func TestDTWClassifier(t *testing.T) {
	c := NewDTWClassifier(0)
	if _, _, err := c.Classify([][]float64{{0}}); err == nil {
		t.Error("empty classifier classified")
	}
	if err := c.AddTemplate("", [][]float64{{0}, {1}}); err == nil {
		t.Error("unnamed template accepted")
	}
	if err := c.AddTemplate("x", [][]float64{{0}}); err == nil {
		t.Error("short template accepted")
	}

	ramp := [][]float64{{0}, {1}, {2}, {3}, {4}}
	flat := [][]float64{{2}, {2}, {2}, {2}, {2}}
	if err := c.AddTemplate("ramp", ramp); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTemplate("flat", flat); err != nil {
		t.Fatal(err)
	}
	if c.TemplateCount() != 2 || len(c.Classes()) != 2 {
		t.Error("template bookkeeping wrong")
	}
	name, d, err := c.Classify([][]float64{{0}, {1.1}, {2}, {2.9}, {4}})
	if err != nil {
		t.Fatal(err)
	}
	if name != "ramp" {
		t.Errorf("classified as %q (d=%v)", name, d)
	}
	// Open-set rejection.
	far := [][]float64{{100}, {101}, {102}}
	name, _, err = c.ClassifyWithReject(far, 5)
	if err != nil {
		t.Fatal(err)
	}
	if name != "" {
		t.Errorf("far query not rejected: %q", name)
	}
	if _, _, err := c.Classify(nil); err == nil {
		t.Error("empty query accepted")
	}
}

func TestDTWClassifierOnSimulatedGestures(t *testing.T) {
	// Sanity: with 3 templates per gesture, DTW-1NN distinguishes
	// swipe_right from push in the transformed frame.
	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 5)
	if err != nil {
		t.Fatal(err)
	}
	specs := kinect.StandardGestures()
	c := NewDTWClassifier(20)
	for _, g := range []string{kinect.GestureSwipeRight, kinect.GesturePush} {
		samples, err := sim.Samples(specs[g], 3, t0(), kinect.PerformOpts{PathJitter: 20})
		if err != nil {
			t.Fatal(err)
		}
		for _, frames := range samples {
			tf, err := transform.FrameSlice(transform.DefaultConfig(), frames)
			if err != nil {
				t.Fatal(err)
			}
			sample, err := learn.SampleFromFrames(tf, []kinect.Joint{kinect.RightHand})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.AddTemplate(g, SampleSequence(sample)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Classify fresh executions.
	for _, g := range []string{kinect.GestureSwipeRight, kinect.GesturePush} {
		samples, err := sim.Samples(specs[g], 2, t0().Add(time.Hour), kinect.PerformOpts{PathJitter: 20})
		if err != nil {
			t.Fatal(err)
		}
		for i, frames := range samples {
			tf, _ := transform.FrameSlice(transform.DefaultConfig(), frames)
			sample, _ := learn.SampleFromFrames(tf, []kinect.Joint{kinect.RightHand})
			name, d, err := c.Classify(SampleSequence(sample))
			if err != nil {
				t.Fatal(err)
			}
			if name != g {
				t.Errorf("%s sample %d classified as %q (d=%.1f)", g, i, name, d)
			}
		}
	}
}
