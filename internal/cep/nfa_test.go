package cep

import (
	"testing"
	"time"

	"gesturecep/internal/stream"
)

// fieldAbove returns a predicate true when field 0 is in [lo, hi).
func fieldIn(lo, hi float64) func(stream.Tuple) bool {
	return func(t stream.Tuple) bool { return t.Fields[0] >= lo && t.Fields[0] < hi }
}

func tup(ms int, v float64) stream.Tuple {
	base := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
	return stream.Tuple{Ts: base.Add(time.Duration(ms) * time.Millisecond), Fields: []float64{v}}
}

// threeStep builds the canonical 3-pose pattern: values near 0, then near
// 400, then near 800 (the Fig. 1 swipe_right shape in one dimension).
func threeStep(within time.Duration) Pattern {
	return SeqWithin(within,
		NewAtom("pose0", fieldIn(-50, 50)),
		NewAtom("pose1", fieldIn(350, 450)),
		NewAtom("pose2", fieldIn(750, 850)),
	)
}

func TestCompileValidation(t *testing.T) {
	if _, err := Compile(nil, SelectFirst, ConsumeAll); err == nil {
		t.Error("nil pattern accepted")
	}
	if _, err := Compile(&Atom{Label: "x"}, SelectFirst, ConsumeAll); err == nil {
		t.Error("nil predicate accepted")
	}
	if _, err := Compile(Seq(), SelectFirst, ConsumeAll); err == nil {
		t.Error("empty sequence accepted")
	}
	if _, err := Compile(&Sequence{Elems: []Pattern{nil}}, SelectFirst, ConsumeAll); err == nil {
		t.Error("nil element accepted")
	}
	if _, err := Compile(&Sequence{Elems: []Pattern{NewAtom("a", fieldIn(0, 1))}, Within: -time.Second}, SelectFirst, ConsumeAll); err == nil {
		t.Error("negative within accepted")
	}
	n, err := Compile(threeStep(time.Second), SelectFirst, ConsumeAll)
	if err != nil {
		t.Fatal(err)
	}
	if n.Len() != 3 {
		t.Errorf("Len = %d, want 3", n.Len())
	}
}

func TestSimpleSequenceMatch(t *testing.T) {
	n, _ := Compile(threeStep(time.Second), SelectFirst, ConsumeAll)
	inputs := []stream.Tuple{
		tup(0, 0),     // pose0
		tup(33, 100),  // ignored (skip-till-next-match)
		tup(66, 400),  // pose1
		tup(99, 600),  // ignored
		tup(133, 800), // pose2 -> match
	}
	var matches []Match
	for _, in := range inputs {
		matches = append(matches, n.Process(in)...)
	}
	if len(matches) != 1 {
		t.Fatalf("got %d matches, want 1", len(matches))
	}
	m := matches[0]
	if m.Duration() != 133*time.Millisecond {
		t.Errorf("match duration = %v", m.Duration())
	}
	if len(m.Tuples) != 3 {
		t.Errorf("match captured %d tuples", len(m.Tuples))
	}
	if m.Tuples[1].Fields[0] != 400 {
		t.Errorf("second captured tuple = %v", m.Tuples[1].Fields)
	}
}

func TestNoMatchOutOfOrder(t *testing.T) {
	n, _ := Compile(threeStep(time.Second), SelectFirst, ConsumeAll)
	// Poses in the wrong order never complete the pattern (but the 0 seen
	// later starts a new partial run).
	for _, in := range []stream.Tuple{tup(0, 800), tup(33, 400), tup(66, 0)} {
		if got := n.Process(in); len(got) != 0 {
			t.Fatalf("unexpected match on %v", in.Fields)
		}
	}
	if n.ActiveRuns() == 0 {
		t.Error("expected a partial run from the trailing pose0")
	}
}

func TestWithinExpires(t *testing.T) {
	n, _ := Compile(threeStep(time.Second), SelectFirst, ConsumeAll)
	inputs := []stream.Tuple{
		tup(0, 0),
		tup(500, 400),
		tup(1500, 800), // 1.5s after start: window violated
	}
	var total int
	for _, in := range inputs {
		total += len(n.Process(in))
	}
	if total != 0 {
		t.Fatalf("match fired despite within violation")
	}
	// A fresh fast repetition still matches (expired run was pruned).
	inputs2 := []stream.Tuple{tup(2000, 0), tup(2200, 400), tup(2400, 800)}
	for i, in := range inputs2 {
		got := n.Process(in)
		if i == 2 && len(got) != 1 {
			t.Fatalf("fresh repetition did not match: %d", len(got))
		}
	}
}

func TestWithinBoundaryInclusive(t *testing.T) {
	n, _ := Compile(threeStep(time.Second), SelectFirst, ConsumeAll)
	// Last pose exactly at the deadline is still within.
	inputs := []stream.Tuple{tup(0, 0), tup(500, 400), tup(1000, 800)}
	var total int
	for _, in := range inputs {
		total += len(n.Process(in))
	}
	if total != 1 {
		t.Fatalf("boundary match count = %d, want 1", total)
	}
}

func TestNestedWithin(t *testing.T) {
	// (pose0 -> pose1 within 300ms) -> pose2 within 2s — like Fig. 1's
	// nested structure.
	p := SeqWithin(2*time.Second,
		SeqWithin(300*time.Millisecond,
			NewAtom("pose0", fieldIn(-50, 50)),
			NewAtom("pose1", fieldIn(350, 450)),
		),
		NewAtom("pose2", fieldIn(750, 850)),
	)
	n, err := Compile(p, SelectFirst, ConsumeAll)
	if err != nil {
		t.Fatal(err)
	}
	// Inner window violated: pose0 -> pose1 takes 400ms.
	for _, in := range []stream.Tuple{tup(0, 0), tup(400, 400), tup(500, 800)} {
		if got := n.Process(in); len(got) != 0 {
			t.Fatal("matched despite inner within violation")
		}
	}
	n.Reset()
	// Inner window satisfied, outer satisfied.
	var total int
	for _, in := range []stream.Tuple{tup(0, 0), tup(200, 400), tup(1800, 800)} {
		total += len(n.Process(in))
	}
	if total != 1 {
		t.Fatalf("nested match count = %d, want 1", total)
	}
	n.Reset()
	// Inner satisfied but outer violated (pose2 at 2.5s).
	total = 0
	for _, in := range []stream.Tuple{tup(0, 0), tup(200, 400), tup(2500, 800)} {
		total += len(n.Process(in))
	}
	if total != 0 {
		t.Fatalf("outer within violation not enforced")
	}
}

func TestConsumeAllSuppressesOverlap(t *testing.T) {
	n, _ := Compile(threeStep(time.Second), SelectFirst, ConsumeAll)
	// Two interleaved instances: 0a 0b 400a 400b 800a 800b. With consume
	// all, the completion of instance a consumes instance b's partial run.
	inputs := []stream.Tuple{
		tup(0, 0), tup(50, 10), tup(100, 400), tup(150, 410), tup(200, 800), tup(250, 810),
	}
	var total int
	for _, in := range inputs {
		total += len(n.Process(in))
	}
	if total != 1 {
		t.Fatalf("consume all: got %d matches, want 1", total)
	}
}

func TestConsumeNoneAllowsReuse(t *testing.T) {
	// Staggered instances: run A completes at t=150 while run B is still at
	// pose1; B completes later at t=250. With consume none both survive;
	// with consume all (next test variant) A's completion kills B.
	inputs := []stream.Tuple{
		tup(0, 0),     // A: pose0
		tup(50, 400),  // A: pose1
		tup(100, 10),  // B: pose0
		tup(150, 800), // A completes; B still waits for pose1
		tup(200, 410), // B: pose1
		tup(250, 810), // B completes (only under consume none)
	}
	n, _ := Compile(threeStep(time.Second), SelectFirst, ConsumeNone)
	var total int
	for _, in := range inputs {
		total += len(n.Process(in))
	}
	if total != 2 {
		t.Fatalf("consume none: got %d matches, want 2", total)
	}

	n2, _ := Compile(threeStep(time.Second), SelectFirst, ConsumeAll)
	total = 0
	for _, in := range inputs {
		total += len(n2.Process(in))
	}
	if total != 1 {
		t.Fatalf("consume all on staggered input: got %d matches, want 1", total)
	}
}

func TestSelectAllEmitsAllCompletions(t *testing.T) {
	n, _ := Compile(threeStep(time.Second), SelectAll, ConsumeNone)
	// Two partial runs complete on the same final tuple.
	inputs := []stream.Tuple{
		tup(0, 0), tup(50, 10), tup(100, 400), tup(200, 800),
	}
	var total int
	for _, in := range inputs {
		total += len(n.Process(in))
	}
	if total != 2 {
		t.Fatalf("select all: got %d matches, want 2", total)
	}
}

func TestSelectFirstPicksEarliestRun(t *testing.T) {
	n, _ := Compile(threeStep(time.Second), SelectFirst, ConsumeAll)
	inputs := []stream.Tuple{
		tup(0, 0), tup(50, 10), tup(100, 400), tup(200, 800),
	}
	var matches []Match
	for _, in := range inputs {
		matches = append(matches, n.Process(in)...)
	}
	if len(matches) != 1 {
		t.Fatalf("got %d matches", len(matches))
	}
	if !matches[0].Start.Equal(tup(0, 0).Ts) {
		t.Errorf("selected run started at %v, want the earliest", matches[0].Start)
	}
}

func TestSingleAtomPattern(t *testing.T) {
	n, err := Compile(NewAtom("only", fieldIn(0, 1)), SelectFirst, ConsumeAll)
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Process(tup(0, 0.5)); len(got) != 1 {
		t.Fatalf("single-atom match count = %d", len(got))
	}
	if got := n.Process(tup(33, 5)); len(got) != 0 {
		t.Fatal("single-atom matched wrong tuple")
	}
	if n.ActiveRuns() != 0 {
		t.Error("single-atom pattern leaked runs")
	}
}

func TestMaxRunsEviction(t *testing.T) {
	n, _ := Compile(threeStep(time.Hour), SelectFirst, ConsumeNone)
	n.SetMaxRuns(4)
	for i := 0; i < 100; i++ {
		n.Process(tup(i*10, 0)) // each starts a new run
	}
	if n.ActiveRuns() > 4 {
		t.Errorf("active runs = %d exceeds cap", n.ActiveRuns())
	}
	n.SetMaxRuns(0) // ignored
	if n.maxRuns != 4 {
		t.Error("SetMaxRuns(0) should be ignored")
	}
}

func TestStatsAndReset(t *testing.T) {
	n, _ := Compile(threeStep(time.Second), SelectFirst, ConsumeAll)
	for _, in := range []stream.Tuple{tup(0, 0), tup(50, 400), tup(100, 800)} {
		n.Process(in)
	}
	processed, predCalls, matches, _ := n.Stats()
	if processed != 3 {
		t.Errorf("processed = %d", processed)
	}
	if matches != 1 {
		t.Errorf("matches = %d", matches)
	}
	if predCalls == 0 {
		t.Error("predCalls not counted")
	}
	n.Reset()
	processed, _, matches, _ = n.Stats()
	if processed != 0 || matches != 0 || n.ActiveRuns() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestRepeatedDetections(t *testing.T) {
	n, _ := Compile(threeStep(time.Second), SelectFirst, ConsumeAll)
	var total int
	// Perform the gesture three times in a row with pauses.
	for rep := 0; rep < 3; rep++ {
		base := rep * 2000
		for _, in := range []stream.Tuple{tup(base, 0), tup(base+100, 400), tup(base+200, 800)} {
			total += len(n.Process(in))
		}
	}
	if total != 3 {
		t.Fatalf("repeated detections = %d, want 3", total)
	}
}

func TestPolicyStrings(t *testing.T) {
	if SelectFirst.String() != "first" || SelectAll.String() != "all" {
		t.Error("SelectPolicy strings wrong")
	}
	if ConsumeAll.String() != "all" || ConsumeNone.String() != "none" {
		t.Error("ConsumePolicy strings wrong")
	}
	if SelectPolicy(9).String() == "" || ConsumePolicy(9).String() == "" {
		t.Error("unknown policies should still render")
	}
}
