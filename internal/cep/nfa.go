package cep

import (
	"fmt"
	"time"

	"gesturecep/internal/stream"
)

// state is one flattened NFA state: it accepts a single tuple satisfying
// pred and moves the run forward.
type state struct {
	label string
	pred  func(stream.Tuple) bool
}

// windowConstraint enforces a `within` clause over the atoms [first, last]
// (inclusive, indices into the flattened state list): the tuple matched at
// state `last` must arrive no later than `within` after the tuple matched at
// state `first`.
type windowConstraint struct {
	first, last int
	within      time.Duration
}

// Program is the immutable, compiled form of a Pattern: the flattened state
// list, window constraints and policies, with no run state. A Program is
// safe to share between any number of NFAs — the serving layer compiles each
// learned query once and instantiates a cheap per-session NFA from the
// shared Program, so ten thousand sessions do not re-flatten the pattern.
type Program struct {
	states      []state
	constraints []windowConstraint
	sel         SelectPolicy
	consume     ConsumePolicy
}

// CompileProgram flattens a validated Pattern into a shareable Program.
func CompileProgram(p Pattern, sel SelectPolicy, consume ConsumePolicy) (*Program, error) {
	if p == nil {
		return nil, fmt.Errorf("cep: nil pattern")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	prog := &Program{sel: sel, consume: consume}
	prog.flatten(p)
	if len(prog.states) == 0 {
		return nil, fmt.Errorf("cep: pattern compiled to zero states")
	}
	return prog, nil
}

// flatten appends p's states to prog and records window constraints. It
// returns the index range [first, last] of the appended states.
func (prog *Program) flatten(p Pattern) (first, last int) {
	switch pt := p.(type) {
	case *Atom:
		prog.states = append(prog.states, state{label: pt.Label, pred: pt.Pred})
		i := len(prog.states) - 1
		return i, i
	case *Sequence:
		first = len(prog.states)
		for _, e := range pt.Elems {
			_, last = prog.flatten(e)
		}
		if pt.Within > 0 {
			prog.constraints = append(prog.constraints, windowConstraint{first: first, last: last, within: pt.Within})
		}
		return first, last
	default:
		panic(fmt.Sprintf("cep: unknown pattern type %T", p))
	}
}

// Len returns the number of program states (atoms in the pattern).
func (prog *Program) Len() int { return len(prog.states) }

// Select returns the program's selection policy.
func (prog *Program) Select() SelectPolicy { return prog.sel }

// Consume returns the program's consumption policy.
func (prog *Program) Consume() ConsumePolicy { return prog.consume }

// Instantiate creates a fresh NFA executing the shared program. The returned
// NFA carries only run state (partial matches and counters), so instantiation
// is O(1) and allocation-light regardless of pattern size.
func (prog *Program) Instantiate() *NFA {
	return &NFA{prog: prog, maxRuns: DefaultMaxRuns}
}

// NFA is an executable instance of a compiled Program. It follows
// skip-till-next-match semantics: tuples that do not satisfy the next state
// of a run are ignored (the run waits), which is what makes pose-sequence
// gesture queries robust against the 30 Hz tuples between poses. Runs are
// discarded as soon as a window constraint can no longer be met.
//
// An NFA is not safe for concurrent use; the engine serializes Process
// calls per stream. The underlying Program is immutable and may be shared
// by many NFAs concurrently.
type NFA struct {
	prog *Program

	// maxRuns caps simultaneous partial matches to bound memory under
	// adversarial input; the oldest run is evicted when exceeded.
	maxRuns int

	runs []*run

	// free recycles run objects (and their ts/tuples backing arrays) so the
	// steady-state Process path does not allocate. An NFA is single-threaded
	// by contract, so a plain slice suffices. Bounded by maxRuns.
	free []*run

	// stats
	processed  uint64
	predCalls  uint64
	matches    uint64
	runsPruned uint64
}

// run is one partial match: next is the state awaiting a tuple, ts[i] holds
// the match time for state i < next.
type run struct {
	next   int
	ts     []time.Time
	tuples []stream.Tuple
}

// DefaultMaxRuns bounds simultaneous partial matches per query.
const DefaultMaxRuns = 1024

// Compile flattens a validated Pattern into an executable NFA. It is
// CompileProgram followed by Instantiate; callers that deploy the same
// pattern many times should compile the Program once and instantiate per
// deployment instead.
func Compile(p Pattern, sel SelectPolicy, consume ConsumePolicy) (*NFA, error) {
	prog, err := CompileProgram(p, sel, consume)
	if err != nil {
		return nil, err
	}
	return prog.Instantiate(), nil
}

// Program returns the shared compiled program this NFA executes.
func (n *NFA) Program() *Program { return n.prog }

// Len returns the number of NFA states (atoms in the pattern).
func (n *NFA) Len() int { return len(n.prog.states) }

// SetMaxRuns adjusts the partial-match cap. Values < 1 are ignored.
func (n *NFA) SetMaxRuns(limit int) {
	if limit >= 1 {
		n.maxRuns = limit
	}
}

// ActiveRuns returns the number of live partial matches.
func (n *NFA) ActiveRuns() int { return len(n.runs) }

// Reset discards all partial matches and statistics.
func (n *NFA) Reset() {
	n.runs = nil
	n.free = nil
	n.processed, n.predCalls, n.matches, n.runsPruned = 0, 0, 0, 0
}

// getRun takes a run from the free list (or allocates one) and initialises
// it as a fresh partial match holding only t.
func (n *NFA) getRun(t stream.Tuple) *run {
	if len(n.free) > 0 {
		r := n.free[len(n.free)-1]
		n.free = n.free[:len(n.free)-1]
		r.next = 1
		r.ts = append(r.ts[:0], t.Ts)
		r.tuples = append(r.tuples[:0], t)
		return r
	}
	return &run{next: 1, ts: []time.Time{t.Ts}, tuples: []stream.Tuple{t}}
}

// putRun recycles a run that is no longer referenced anywhere. Tuple
// references are cleared so a parked run does not pin field arrays.
func (n *NFA) putRun(r *run) {
	if len(n.free) >= n.maxRuns {
		return
	}
	for i := range r.tuples {
		r.tuples[i] = stream.Tuple{}
	}
	n.free = append(n.free, r)
}

// Stats reports counters accumulated since the last Reset.
func (n *NFA) Stats() (processed, predCalls, matches, pruned uint64) {
	return n.processed, n.predCalls, n.matches, n.runsPruned
}

// Process advances the automaton with one tuple and returns any matches it
// completes. Tuples must arrive in non-decreasing timestamp order.
func (n *NFA) Process(t stream.Tuple) []Match {
	states := n.prog.states
	n.processed++
	n.expire(t.Ts)

	var completed []*run

	// Advance existing runs. Each run consumes at most one tuple per step.
	for _, r := range n.runs {
		st := states[r.next]
		n.predCalls++
		if !st.pred(t) {
			continue
		}
		r.ts = append(r.ts, t.Ts)
		r.tuples = append(r.tuples, t)
		r.next++
		if !n.satisfiable(r, t.Ts) {
			r.next = -1 // mark dead; swept below
			n.runsPruned++
			continue
		}
		if r.next == len(states) {
			completed = append(completed, r)
		}
	}

	// Try to start a fresh run with this tuple.
	n.predCalls++
	if states[0].pred(t) {
		r := n.getRun(t)
		if len(states) == 1 {
			r.next = len(states)
			completed = append(completed, r)
		} else if n.satisfiable(r, t.Ts) {
			n.runs = append(n.runs, r)
			if len(n.runs) > n.maxRuns {
				// Evict the oldest partial run to bound memory. A completed
				// run is still referenced by the completed slice and is
				// recycled after the matches are built, not here.
				if ev := n.runs[0]; ev.next != len(states) {
					n.putRun(ev)
				}
				n.runs = n.runs[1:]
				n.runsPruned++
			}
		} else {
			n.putRun(r)
		}
	}

	// Sweep dead and completed runs out of the active set.
	n.sweep()

	if len(completed) == 0 {
		return nil
	}

	// Apply selection policy. Runs complete in activation order, so the
	// first element is the earliest-started instance.
	selected := completed
	if n.prog.sel == SelectFirst {
		selected = completed[:1]
	}
	out := make([]Match, 0, len(selected))
	for _, r := range selected {
		out = append(out, Match{
			Start:  r.ts[0],
			End:    r.ts[len(r.ts)-1],
			Tuples: append([]stream.Tuple(nil), r.tuples...),
		})
	}
	n.matches += uint64(len(out))
	// Matches copy the tuples out above, so every completed run (selected or
	// not) can be recycled now.
	for _, r := range completed {
		n.putRun(r)
	}

	if n.prog.consume == ConsumeAll {
		// Consuming a match invalidates all in-flight partial matches.
		n.runsPruned += uint64(len(n.runs))
		for _, r := range n.runs {
			n.putRun(r)
		}
		n.runs = n.runs[:0]
	}
	return out
}

// satisfiable checks the window constraints that the run has started but not
// yet finished, plus those fully matched. A constraint whose `first` state
// is matched imposes a deadline; if the constraint's `last` state is already
// matched it must hold now, otherwise it must still be reachable.
func (n *NFA) satisfiable(r *run, now time.Time) bool {
	for _, c := range n.prog.constraints {
		if r.next <= c.first {
			continue // constraint window not entered yet
		}
		deadline := r.ts[c.first].Add(c.within)
		if r.next > c.last {
			// Fully matched: verify the recorded times.
			if r.ts[c.last].After(deadline) {
				return false
			}
			continue
		}
		// Partially inside the window: the last state will be matched at
		// some time >= now.
		if now.After(deadline) {
			return false
		}
	}
	return true
}

// expire removes runs whose pending window constraints can no longer be met
// at time now.
func (n *NFA) expire(now time.Time) {
	if len(n.runs) == 0 || len(n.prog.constraints) == 0 {
		return
	}
	kept := n.runs[:0]
	for _, r := range n.runs {
		if n.satisfiable(r, now) {
			kept = append(kept, r)
		} else {
			n.runsPruned++
			n.putRun(r)
		}
	}
	n.runs = kept
}

// sweep removes completed and dead runs from the active set. A dead run
// (next == -1) is referenced by nothing else and is recycled immediately; a
// completed run (next == len(states)) is still referenced by Process's
// completed slice and is recycled there after the matches are copied out.
func (n *NFA) sweep() {
	if len(n.runs) == 0 {
		return
	}
	kept := n.runs[:0]
	for _, r := range n.runs {
		switch {
		case r.next >= 0 && r.next < len(n.prog.states):
			kept = append(kept, r)
		case r.next < 0:
			n.putRun(r)
		}
	}
	n.runs = kept
}
