// Package cep implements the complex-event-processing pattern matcher that
// AnduIN exposes as its MATCH operator (§2 of the paper): sequences of
// predicate-guarded events combined with the -> operator, optional `within`
// time constraints, and `select` / `consume` policies, evaluated with a
// non-deterministic finite automaton (NFA) over a tuple stream.
package cep

import (
	"fmt"
	"time"

	"gesturecep/internal/stream"
)

// SelectPolicy controls which of several simultaneously completing pattern
// instances produce a match.
type SelectPolicy int

const (
	// SelectFirst emits only the earliest-started completing run per tuple.
	// This is the policy the paper's generated queries use
	// ("select first").
	SelectFirst SelectPolicy = iota
	// SelectAll emits every completing run.
	SelectAll
)

// String implements fmt.Stringer.
func (p SelectPolicy) String() string {
	switch p {
	case SelectFirst:
		return "first"
	case SelectAll:
		return "all"
	}
	return fmt.Sprintf("SelectPolicy(%d)", int(p))
}

// ConsumePolicy controls what happens to partial matches once a match is
// emitted.
type ConsumePolicy int

const (
	// ConsumeAll discards all partial runs when a match fires, so events
	// participate in at most one detection ("consume all" in generated
	// queries). This prevents one physical gesture from firing twice.
	ConsumeAll ConsumePolicy = iota
	// ConsumeNone keeps partial runs alive across matches.
	ConsumeNone
)

// String implements fmt.Stringer.
func (p ConsumePolicy) String() string {
	switch p {
	case ConsumeAll:
		return "all"
	case ConsumeNone:
		return "none"
	}
	return fmt.Sprintf("ConsumePolicy(%d)", int(p))
}

// Pattern is the abstract syntax of a MATCHING clause: either an Atom (a
// single predicate over one tuple) or a Sequence combining sub-patterns with
// the -> operator.
type Pattern interface {
	isPattern()
	// Validate reports structural problems (nil predicates, empty
	// sequences, negative windows).
	Validate() error
}

// Atom matches a single tuple satisfying Pred. Label is used in diagnostics
// and trace output (e.g. "pose 2 of swipe_right").
type Atom struct {
	Label string
	Pred  func(stream.Tuple) bool
}

func (*Atom) isPattern() {}

// Validate implements Pattern.
func (a *Atom) Validate() error {
	if a.Pred == nil {
		return fmt.Errorf("cep: atom %q has nil predicate", a.Label)
	}
	return nil
}

// Sequence matches its elements in order (the -> operator). If Within is
// positive, the timestamps of the first and last matched tuple of the
// sequence must differ by at most Within — exactly the semantics of the
// paper's "within 1 seconds" clauses, which may be attached to nested
// sub-sequences independently.
type Sequence struct {
	Elems  []Pattern
	Within time.Duration
}

func (*Sequence) isPattern() {}

// Validate implements Pattern.
func (s *Sequence) Validate() error {
	if len(s.Elems) == 0 {
		return fmt.Errorf("cep: empty sequence")
	}
	if s.Within < 0 {
		return fmt.Errorf("cep: negative within duration %v", s.Within)
	}
	for i, e := range s.Elems {
		if e == nil {
			return fmt.Errorf("cep: nil element %d in sequence", i)
		}
		if err := e.Validate(); err != nil {
			return fmt.Errorf("cep: sequence element %d: %w", i, err)
		}
	}
	return nil
}

// Seq is a convenience constructor for a Sequence without a time constraint.
func Seq(elems ...Pattern) *Sequence { return &Sequence{Elems: elems} }

// SeqWithin is a convenience constructor for a time-constrained Sequence.
func SeqWithin(within time.Duration, elems ...Pattern) *Sequence {
	return &Sequence{Elems: elems, Within: within}
}

// NewAtom is a convenience constructor for an Atom.
func NewAtom(label string, pred func(stream.Tuple) bool) *Atom {
	return &Atom{Label: label, Pred: pred}
}

// Match is one successful pattern instance.
type Match struct {
	// Start and End are the timestamps of the first and last contributing
	// tuple.
	Start, End time.Time
	// Tuples holds the tuple matched by each atom, in pattern order.
	Tuples []stream.Tuple
}

// Duration returns End - Start.
func (m Match) Duration() time.Duration { return m.End.Sub(m.Start) }
