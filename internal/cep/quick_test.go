package cep

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"gesturecep/internal/stream"
)

// This file checks the NFA against a brute-force reference implementation
// on randomized inputs: for small tuple sequences, the number and timing of
// matches under `select first consume all` must equal the greedy
// left-to-right subsequence search, and under `select all consume none`
// every valid subsequence must be found.

// bruteForceFirstConsumeAll mimics "select first consume all": repeatedly
// find the earliest-starting subsequence (indices strictly increasing, one
// tuple per state, within over the whole span), emit it, and resume the
// search strictly after the match's last tuple.
//
// "Earliest-starting" mirrors run-activation order in the NFA; for each
// candidate start, the remaining states match greedily at their earliest
// possible positions (skip-till-next-match).
func bruteForceFirstConsumeAll(values []float64, times []time.Time, preds []func(float64) bool, within time.Duration) []int {
	var matchEnds []int
	from := 0
	for {
		end := -1
		// Try candidate starts in order; the NFA keeps all partial runs,
		// so the match that completes first wins. Simulate: advance all
		// candidate runs greedily and take the one completing earliest,
		// breaking ties by earlier start.
		bestEnd := -1
		for s := from; s < len(values); s++ {
			if !preds[0](values[s]) {
				continue
			}
			idx := s
			ok := true
			for p := 1; p < len(preds); p++ {
				idx++
				for idx < len(values) {
					if preds[p](values[idx]) && times[idx].Sub(times[s]) <= within {
						break
					}
					// A run dies when its window can no longer be met.
					if times[idx].Sub(times[s]) > within {
						break
					}
					idx++
				}
				if idx >= len(values) || times[idx].Sub(times[s]) > within || !preds[p](values[idx]) {
					ok = false
					break
				}
			}
			if ok && (bestEnd == -1 || idx < bestEnd) {
				bestEnd = idx
			}
		}
		end = bestEnd
		if end < 0 {
			return matchEnds
		}
		matchEnds = append(matchEnds, end)
		from = end + 1
	}
}

func TestQuickNFAMatchesBruteForce(t *testing.T) {
	// Three-state pattern over value classes 0,1,2 (values 0..4; classes
	// 3,4 are noise).
	preds := []func(float64) bool{
		func(v float64) bool { return v == 0 },
		func(v float64) bool { return v == 1 },
		func(v float64) bool { return v == 2 },
	}
	const within = 500 * time.Millisecond

	f := func(seed int64, rawLen uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawLen%40) + 3
		values := make([]float64, n)
		times := make([]time.Time, n)
		ts := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
		for i := 0; i < n; i++ {
			values[i] = float64(rng.Intn(5))
			// Random gaps 30..330 ms keep some matches inside and some
			// outside the window.
			ts = ts.Add(time.Duration(30+rng.Intn(300)) * time.Millisecond)
			times[i] = ts
		}

		pattern := SeqWithin(within,
			NewAtom("s0", func(tp stream.Tuple) bool { return preds[0](tp.Fields[0]) }),
			NewAtom("s1", func(tp stream.Tuple) bool { return preds[1](tp.Fields[0]) }),
			NewAtom("s2", func(tp stream.Tuple) bool { return preds[2](tp.Fields[0]) }),
		)
		nfa, err := Compile(pattern, SelectFirst, ConsumeAll)
		if err != nil {
			return false
		}
		var got []int
		for i := 0; i < n; i++ {
			ms := nfa.Process(stream.Tuple{Ts: times[i], Fields: []float64{values[i]}})
			for range ms {
				got = append(got, i)
			}
		}
		want := bruteForceFirstConsumeAll(values, times, preds, within)
		if len(got) != len(want) {
			t.Logf("seed %d: values %v", seed, values)
			t.Logf("got ends %v, want %v", got, want)
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed %d: values %v", seed, values)
				t.Logf("got ends %v, want %v", got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSelectAllFindsEverySuffixRun verifies under select all / consume
// none that each match corresponds to a distinct run start and match count
// equals the number of starts that can complete.
func TestQuickSelectAllConsumeNone(t *testing.T) {
	const within = time.Second
	f := func(seed int64, rawLen uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawLen%25) + 2
		values := make([]float64, n)
		times := make([]time.Time, n)
		ts := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
		for i := 0; i < n; i++ {
			values[i] = float64(rng.Intn(3))
			ts = ts.Add(100 * time.Millisecond)
			times[i] = ts
		}
		pattern := SeqWithin(within,
			NewAtom("a", func(tp stream.Tuple) bool { return tp.Fields[0] == 0 }),
			NewAtom("b", func(tp stream.Tuple) bool { return tp.Fields[0] == 1 }),
		)
		nfa, err := Compile(pattern, SelectAll, ConsumeNone)
		if err != nil {
			return false
		}
		var matches int
		for i := 0; i < n; i++ {
			matches += len(nfa.Process(stream.Tuple{Ts: times[i], Fields: []float64{values[i]}}))
		}
		// Reference: each index i with value 0 completes at the first
		// following index j with value 1 and times[j]-times[i] <= within.
		want := 0
		for i := 0; i < n; i++ {
			if values[i] != 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				if times[j].Sub(times[i]) > within {
					break
				}
				if values[j] == 1 {
					want++
					break
				}
			}
		}
		if matches != want {
			t.Logf("seed %d values %v: matches %d want %d", seed, values, matches, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickNoMatchWithoutCompleteSubsequence: streams lacking one of the
// value classes can never match.
func TestQuickNoMatchWithoutCompleteSubsequence(t *testing.T) {
	f := func(seed int64, rawLen uint8, missing uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		skip := float64(missing % 3)
		n := int(rawLen%30) + 1
		pattern := Seq(
			NewAtom("a", func(tp stream.Tuple) bool { return tp.Fields[0] == 0 }),
			NewAtom("b", func(tp stream.Tuple) bool { return tp.Fields[0] == 1 }),
			NewAtom("c", func(tp stream.Tuple) bool { return tp.Fields[0] == 2 }),
		)
		nfa, err := Compile(pattern, SelectFirst, ConsumeAll)
		if err != nil {
			return false
		}
		ts := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
		for i := 0; i < n; i++ {
			v := float64(rng.Intn(3))
			if v == skip {
				v = 3 // replace the missing class with noise
			}
			ts = ts.Add(33 * time.Millisecond)
			if got := nfa.Process(stream.Tuple{Ts: ts, Fields: []float64{v}}); len(got) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
