// Package graphdb is a miniature in-memory property graph with the
// traversal operations of the paper's "Kevin Bacon game" demo ([1],
// BTW 2013): cursor-based navigation over neighbours, path history, and
// BFS shortest paths (Bacon numbers). The examples bind detected gestures
// to these operations.
package graphdb

import (
	"fmt"
	"sort"
)

// Graph is an undirected labelled graph. Nodes are identified by string
// IDs; edges carry an optional label (e.g. the movie connecting two
// actors).
type Graph struct {
	nodes map[string]string            // id -> kind ("actor", "movie", …)
	adj   map[string]map[string]string // from -> to -> edge label
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes: make(map[string]string),
		adj:   make(map[string]map[string]string),
	}
}

// AddNode inserts a node; re-adding updates the kind.
func (g *Graph) AddNode(id, kind string) error {
	if id == "" {
		return fmt.Errorf("graphdb: empty node id")
	}
	g.nodes[id] = kind
	if g.adj[id] == nil {
		g.adj[id] = make(map[string]string)
	}
	return nil
}

// AddEdge connects two existing nodes (undirected) with a label.
func (g *Graph) AddEdge(a, b, label string) error {
	if _, ok := g.nodes[a]; !ok {
		return fmt.Errorf("graphdb: unknown node %q", a)
	}
	if _, ok := g.nodes[b]; !ok {
		return fmt.Errorf("graphdb: unknown node %q", b)
	}
	if a == b {
		return fmt.Errorf("graphdb: self loop on %q", a)
	}
	g.adj[a][b] = label
	g.adj[b][a] = label
	return nil
}

// Has reports whether the node exists.
func (g *Graph) Has(id string) bool {
	_, ok := g.nodes[id]
	return ok
}

// Kind returns a node's kind.
func (g *Graph) Kind(id string) (string, bool) {
	k, ok := g.nodes[id]
	return k, ok
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// Neighbors returns the sorted neighbour IDs of a node.
func (g *Graph) Neighbors(id string) []string {
	out := make([]string, 0, len(g.adj[id]))
	for n := range g.adj[id] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EdgeLabel returns the label of the edge between two nodes.
func (g *Graph) EdgeLabel(a, b string) (string, bool) {
	l, ok := g.adj[a][b]
	return l, ok
}

// ShortestPath returns a BFS shortest path between two nodes (inclusive),
// or ok=false when disconnected.
func (g *Graph) ShortestPath(from, to string) ([]string, bool) {
	if !g.Has(from) || !g.Has(to) {
		return nil, false
	}
	if from == to {
		return []string{from}, true
	}
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range g.Neighbors(cur) {
			if _, seen := prev[n]; seen {
				continue
			}
			prev[n] = cur
			if n == to {
				var path []string
				for at := to; at != from; at = prev[at] {
					path = append(path, at)
				}
				path = append(path, from)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, true
			}
			queue = append(queue, n)
		}
	}
	return nil, false
}

// BaconNumber returns the shortest-path hop count between an actor and the
// reference node, counting only actor-to-actor steps (two graph hops via a
// movie = one Bacon step in the classic bipartite actor-movie graph).
func (g *Graph) BaconNumber(actor, reference string) (int, bool) {
	path, ok := g.ShortestPath(actor, reference)
	if !ok {
		return 0, false
	}
	return (len(path) - 1) / 2, true
}

// Cursor is the gesture-driven navigation state: a current node, a
// selection index over its neighbours, and a history stack for going back.
type Cursor struct {
	g       *Graph
	current string
	sel     int
	history []string
}

// NewCursor starts navigation at the given node.
func NewCursor(g *Graph, start string) (*Cursor, error) {
	if !g.Has(start) {
		return nil, fmt.Errorf("graphdb: unknown start node %q", start)
	}
	return &Cursor{g: g, current: start}, nil
}

// Current returns the node the cursor is on.
func (c *Cursor) Current() string { return c.current }

// Selected returns the currently selected neighbour ("" when the node has
// none).
func (c *Cursor) Selected() string {
	ns := c.g.Neighbors(c.current)
	if len(ns) == 0 {
		return ""
	}
	return ns[((c.sel%len(ns))+len(ns))%len(ns)]
}

// Next moves the neighbour selection forward (swipe right).
func (c *Cursor) Next() string {
	c.sel++
	return c.Selected()
}

// Prev moves the neighbour selection backward (swipe left).
func (c *Cursor) Prev() string {
	c.sel--
	return c.Selected()
}

// Descend moves onto the selected neighbour (push gesture), pushing the
// previous node onto the history.
func (c *Cursor) Descend() (string, error) {
	target := c.Selected()
	if target == "" {
		return "", fmt.Errorf("graphdb: node %q has no neighbours", c.current)
	}
	c.history = append(c.history, c.current)
	c.current = target
	c.sel = 0
	return target, nil
}

// Back returns to the previously visited node (pull gesture).
func (c *Cursor) Back() (string, error) {
	if len(c.history) == 0 {
		return "", fmt.Errorf("graphdb: history is empty")
	}
	c.current = c.history[len(c.history)-1]
	c.history = c.history[:len(c.history)-1]
	c.sel = 0
	return c.current, nil
}

// HistoryDepth returns how many nodes are on the back stack.
func (c *Cursor) HistoryDepth() int { return len(c.history) }

// SampleBaconGraph builds the actor–movie graph for the Kevin Bacon game
// demo: a bipartite graph where actors connect through shared movies.
func SampleBaconGraph() (*Graph, error) {
	g := New()
	movies := map[string][]string{
		"Apollo 13":      {"Kevin Bacon", "Tom Hanks", "Bill Paxton"},
		"Footloose":      {"Kevin Bacon", "Lori Singer", "John Lithgow"},
		"A Few Good Men": {"Kevin Bacon", "Tom Cruise", "Jack Nicholson", "Demi Moore"},
		"Cast Away":      {"Tom Hanks", "Helen Hunt"},
		"The Terminal":   {"Tom Hanks", "Catherine Zeta-Jones"},
		"Top Gun":        {"Tom Cruise", "Val Kilmer", "Meg Ryan"},
		"Twister":        {"Bill Paxton", "Helen Hunt"},
		"Ocean's Twelve": {"Catherine Zeta-Jones", "George Clooney", "Julia Roberts"},
		"Notting Hill":   {"Julia Roberts", "Hugh Grant"},
	}
	for movie, cast := range movies {
		if err := g.AddNode(movie, "movie"); err != nil {
			return nil, err
		}
		for _, actor := range cast {
			if err := g.AddNode(actor, "actor"); err != nil {
				return nil, err
			}
			if err := g.AddEdge(actor, movie, "acted_in"); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}
