package graphdb

import "testing"

func bacon(t *testing.T) *Graph {
	t.Helper()
	g, err := SampleBaconGraph()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAddNodeEdgeValidation(t *testing.T) {
	g := New()
	if err := g.AddNode("", "x"); err == nil {
		t.Error("empty id accepted")
	}
	_ = g.AddNode("a", "actor")
	if err := g.AddEdge("a", "missing", "l"); err == nil {
		t.Error("edge to missing node accepted")
	}
	if err := g.AddEdge("a", "a", "l"); err == nil {
		t.Error("self loop accepted")
	}
	_ = g.AddNode("b", "actor")
	if err := g.AddEdge("a", "b", "knows"); err != nil {
		t.Fatal(err)
	}
	if l, ok := g.EdgeLabel("b", "a"); !ok || l != "knows" {
		t.Error("undirected edge label missing")
	}
	if k, ok := g.Kind("a"); !ok || k != "actor" {
		t.Error("kind lost")
	}
	if g.Len() != 2 {
		t.Errorf("len = %d", g.Len())
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := bacon(t)
	ns := g.Neighbors("Kevin Bacon")
	if len(ns) != 3 {
		t.Fatalf("Kevin Bacon in %d movies", len(ns))
	}
	for i := 1; i < len(ns); i++ {
		if ns[i] < ns[i-1] {
			t.Error("neighbours not sorted")
		}
	}
}

func TestShortestPath(t *testing.T) {
	g := bacon(t)
	path, ok := g.ShortestPath("Kevin Bacon", "Tom Hanks")
	if !ok {
		t.Fatal("no path")
	}
	// Kevin Bacon -> Apollo 13 -> Tom Hanks.
	if len(path) != 3 || path[0] != "Kevin Bacon" || path[2] != "Tom Hanks" {
		t.Errorf("path = %v", path)
	}
	if _, ok := g.ShortestPath("Kevin Bacon", "missing"); ok {
		t.Error("path to missing node")
	}
	self, ok := g.ShortestPath("Kevin Bacon", "Kevin Bacon")
	if !ok || len(self) != 1 {
		t.Error("self path wrong")
	}
}

func TestBaconNumbers(t *testing.T) {
	g := bacon(t)
	cases := []struct {
		actor string
		want  int
	}{
		{"Kevin Bacon", 0},
		{"Tom Hanks", 1},
		{"Helen Hunt", 2},     // via Twister/Bill Paxton or Cast Away/Tom Hanks
		{"George Clooney", 3}, // Clooney - Zeta-Jones - Hanks - Bacon
		{"Hugh Grant", 4},
	}
	for _, c := range cases {
		got, ok := g.BaconNumber(c.actor, "Kevin Bacon")
		if !ok {
			t.Errorf("%s: disconnected", c.actor)
			continue
		}
		if got != c.want {
			t.Errorf("%s: bacon number = %d, want %d", c.actor, got, c.want)
		}
	}
}

func TestCursorNavigation(t *testing.T) {
	g := bacon(t)
	if _, err := NewCursor(g, "missing"); err == nil {
		t.Error("cursor on missing node accepted")
	}
	c, err := NewCursor(g, "Kevin Bacon")
	if err != nil {
		t.Fatal(err)
	}
	if c.Current() != "Kevin Bacon" {
		t.Error("wrong start")
	}
	first := c.Selected()
	second := c.Next()
	if first == second {
		t.Error("Next did not advance")
	}
	if back := c.Prev(); back != first {
		t.Errorf("Prev = %q, want %q", back, first)
	}
	// Selection wraps around.
	for i := 0; i < 10; i++ {
		c.Next()
	}
	if c.Selected() == "" {
		t.Error("selection lost after wrapping")
	}
	// Descend and go back.
	target := c.Selected()
	got, err := c.Descend()
	if err != nil || got != target {
		t.Fatalf("Descend = %q, %v", got, err)
	}
	if c.HistoryDepth() != 1 {
		t.Errorf("history depth = %d", c.HistoryDepth())
	}
	back, err := c.Back()
	if err != nil || back != "Kevin Bacon" {
		t.Fatalf("Back = %q, %v", back, err)
	}
	if _, err := c.Back(); err == nil {
		t.Error("Back on empty history accepted")
	}
}

func TestCursorIsolatedNode(t *testing.T) {
	g := New()
	_ = g.AddNode("lonely", "actor")
	c, err := NewCursor(g, "lonely")
	if err != nil {
		t.Fatal(err)
	}
	if c.Selected() != "" {
		t.Error("isolated node has a selection")
	}
	if _, err := c.Descend(); err == nil {
		t.Error("descend from isolated node accepted")
	}
}
