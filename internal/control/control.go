// Package control implements the "Controller" of the paper's Fig. 2: the
// learning tool is itself gesture-controlled (§3.1). Pre-defined — but
// configurable — control gestures drive the interactive loop:
//
//   - a wave arms the recorder for the next training sample ("when the user
//     wants to record a new sample for a gesture, he triggers the process
//     with a wave gesture");
//   - the §3.1 stillness protocol segments the actual sample;
//   - a swipe with both hands finalizes the learning process and hands the
//     generated query to the application for deployment and testing.
//
// The controller is engine-agnostic: the embedding application deploys the
// control queries (ControlQueries) on its engine, forwards control
// detections via HandleDetection and raw frames via HandleFrame, and
// receives Events.
package control

import (
	"fmt"
	"time"

	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
)

// Control gesture names used by the pre-defined queries.
const (
	// WaveGesture arms sample recording.
	WaveGesture = "ctl_wave"
	// FinalizeGesture ends the learning session.
	FinalizeGesture = "ctl_finalize"
)

// ControlQueries returns the pre-defined control queries in the paper's
// dialect, written against the transformed kinect_t stream. The wave is a
// left-right-left oscillation of the raised right hand; finalize is both
// hands swiping upward together.
func ControlQueries() []string {
	wave := `
SELECT "ctl_wave"
MATCHING (
  kinect_t(rHand_y > 330 and rHand_x < 310) ->
  kinect_t(rHand_y > 330 and rHand_x > 360)
  within 1 seconds
) ->
kinect_t(rHand_y > 330 and rHand_x < 310)
within 2 seconds select first consume all;
`
	finalize := `
SELECT "ctl_finalize"
MATCHING kinect_t(rHand_y < 120 and lHand_y < 120 and rHand_y > -150 and lHand_y > -150 and rHand_z < -150 and lHand_z < -150) ->
kinect_t(rHand_y > 300 and lHand_y > 300)
within 2 seconds select first consume all;
`
	return []string{wave, finalize}
}

// Phase is the controller state.
type Phase int

const (
	// PhaseIdle: waiting for the wave control gesture.
	PhaseIdle Phase = iota
	// PhaseArmed: the recorder is running; the next segmented movement
	// becomes a training sample.
	PhaseArmed
	// PhaseDone: the session was finalized.
	PhaseDone
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseArmed:
		return "armed"
	case PhaseDone:
		return "done"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// EventKind classifies controller events.
type EventKind int

const (
	// EventArmed: a wave was detected, recording is armed.
	EventArmed EventKind = iota
	// EventSampleRecorded: a sample was segmented and merged.
	EventSampleRecorded
	// EventSampleRejected: a segmented movement was too short to be a
	// sample.
	EventSampleRejected
	// EventWarning: the merged sample deviates from prior ones (§3.3.2).
	EventWarning
	// EventFinalized: the session ended; Result carries the outcome.
	EventFinalized
)

// Event is a controller notification.
type Event struct {
	Kind EventKind
	// Samples is the number of samples accepted so far.
	Samples int
	// Warning is set for EventWarning.
	Warning *learn.Warning
	// Result is set for EventFinalized.
	Result *learn.Result
	// Err is set when finalization failed (e.g. no samples).
	Err error
}

// Config tunes the controller.
type Config struct {
	// Learn is the learning pipeline configuration.
	Learn learn.Config
	// Recorder is the §3.1 segmentation configuration.
	Recorder kinect.RecorderConfig
	// MinSampleDuration filters out approach movements the recorder
	// captures before the actual gesture (the automated version of the
	// paper's visual sample review).
	MinSampleDuration time.Duration
}

// DefaultConfig returns standard controller settings.
func DefaultConfig() Config {
	return Config{
		Learn:             learn.DefaultConfig(),
		Recorder:          kinect.DefaultRecorderConfig(),
		MinSampleDuration: 600 * time.Millisecond,
	}
}

// Controller drives one interactive learning session for one new gesture.
type Controller struct {
	cfg      Config
	learner  *learn.Learner
	recorder *kinect.Recorder
	phase    Phase
	samples  int
	events   func(Event)
}

// New creates a controller for learning the named gesture. events receives
// every notification (may be nil).
func New(gestureName string, cfg Config, events func(Event)) (*Controller, error) {
	learner, err := learn.NewLearner(gestureName, cfg.Learn)
	if err != nil {
		return nil, err
	}
	if events == nil {
		events = func(Event) {}
	}
	return &Controller{
		cfg:     cfg,
		learner: learner,
		phase:   PhaseIdle,
		events:  events,
	}, nil
}

// Phase returns the current controller phase.
func (c *Controller) Phase() Phase { return c.phase }

// Samples returns the number of accepted training samples.
func (c *Controller) Samples() int { return c.samples }

// HandleDetection feeds a control-gesture detection (by output name) into
// the controller state machine.
func (c *Controller) HandleDetection(name string) {
	switch name {
	case WaveGesture:
		if c.phase != PhaseIdle {
			return
		}
		rec, err := kinect.NewRecorder(c.cfg.Recorder)
		if err != nil {
			// Recorder config was validated implicitly at first use; a
			// failure here is a programming error worth surfacing.
			panic(err)
		}
		c.recorder = rec
		c.phase = PhaseArmed
		c.events(Event{Kind: EventArmed, Samples: c.samples})
	case FinalizeGesture:
		if c.phase == PhaseDone {
			return
		}
		c.finalize()
	}
}

// HandleFrame feeds a raw camera frame. While armed, frames run through the
// recorder; completed segments become training samples.
func (c *Controller) HandleFrame(f kinect.Frame) {
	if c.phase != PhaseArmed || c.recorder == nil {
		return
	}
	sample := c.recorder.Feed(f)
	if sample == nil {
		return
	}
	dur := sample[len(sample)-1].Ts.Sub(sample[0].Ts)
	if dur < c.cfg.MinSampleDuration {
		c.events(Event{Kind: EventSampleRejected, Samples: c.samples})
		return
	}
	warns, err := c.learner.AddSample(sample)
	if err != nil {
		c.events(Event{Kind: EventSampleRejected, Samples: c.samples, Err: err})
		return
	}
	c.samples++
	for i := range warns {
		w := warns[i]
		c.events(Event{Kind: EventWarning, Samples: c.samples, Warning: &w})
	}
	c.events(Event{Kind: EventSampleRecorded, Samples: c.samples})
}

// finalize produces the learning result and emits EventFinalized.
func (c *Controller) finalize() {
	c.phase = PhaseDone
	c.recorder = nil
	res, err := c.learner.Result()
	c.events(Event{Kind: EventFinalized, Samples: c.samples, Result: res, Err: err})
}

// Finalize ends the session programmatically (equivalent to the finalize
// control gesture) and returns the result.
func (c *Controller) Finalize() (*learn.Result, error) {
	if c.phase == PhaseDone {
		return nil, fmt.Errorf("control: session already finalized")
	}
	c.phase = PhaseDone
	c.recorder = nil
	res, err := c.learner.Result()
	if err != nil {
		return nil, err
	}
	c.events(Event{Kind: EventFinalized, Samples: c.samples, Result: res})
	return res, nil
}
