package control

import (
	"testing"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/detect"
	"gesturecep/internal/geom"
	"gesturecep/internal/kinect"
	"gesturecep/internal/stream"
	"gesturecep/internal/transform"
)

func t0() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

// letterL is the custom gesture used throughout the interactive tests.
func letterL() kinect.GestureSpec {
	return kinect.GestureSpec{
		Name:     "letter_l",
		Duration: 1100 * time.Millisecond,
		Paths: map[kinect.Joint][]geom.Vec3{
			kinect.RightHand: {
				{X: 100, Y: 450, Z: -200},
				{X: 100, Y: -50, Z: -200},
				{X: 450, Y: -50, Z: -200},
			},
		},
	}
}

func TestControlQueriesDeployAndFire(t *testing.T) {
	h, err := detect.NewHarness(transform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Deploy(ControlQueries()...); err != nil {
		t.Fatal(err)
	}
	var names []string
	h.Engine.Subscribe(func(d anduin.Detection) { names = append(names, d.Gesture) })

	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sim.RunScript([]kinect.ScriptItem{
		{Idle: time.Second},
		{Gesture: kinect.GestureWave},
		{Idle: time.Second},
		{Gesture: kinect.GestureTwoHandSwipe},
		{Idle: time.Second},
	}, t0(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Replay(h.Raw, kinect.ToTuples(sess.Frames)); err != nil {
		t.Fatal(err)
	}
	var wave, fin bool
	for _, n := range names {
		switch n {
		case WaveGesture:
			wave = true
		case FinalizeGesture:
			fin = true
		}
	}
	if !wave {
		t.Errorf("wave control query did not fire: %v", names)
	}
	if !fin {
		t.Errorf("finalize control query did not fire: %v", names)
	}
}

func TestControlQueriesIgnoreOrdinaryGestures(t *testing.T) {
	h, err := detect.NewHarness(transform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Deploy(ControlQueries()...); err != nil {
		t.Fatal(err)
	}
	var fired int
	h.Engine.Subscribe(func(anduin.Detection) { fired++ })
	sim, _ := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 2)
	sess, err := sim.RunScript([]kinect.ScriptItem{
		{Idle: time.Second},
		{Gesture: kinect.GestureSwipeRight},
		{Idle: time.Second},
		{Gesture: kinect.GesturePush},
		{Idle: time.Second},
		{Gesture: kinect.GestureCircle},
		{Idle: time.Second},
	}, t0(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Replay(h.Raw, kinect.ToTuples(sess.Frames)); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Errorf("control queries fired %d times on ordinary gestures", fired)
	}
}

func TestControllerStateMachine(t *testing.T) {
	var events []Event
	c, err := New("letter_l", DefaultConfig(), func(e Event) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}
	if c.Phase() != PhaseIdle || c.Phase().String() != "idle" {
		t.Errorf("initial phase = %v", c.Phase())
	}
	// Frames in idle phase are ignored.
	sim, _ := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 3)
	for _, f := range sim.Idle(t0(), 500*time.Millisecond) {
		c.HandleFrame(f)
	}
	if len(events) != 0 {
		t.Error("idle frames produced events")
	}
	// Unknown detections are ignored; wave arms.
	c.HandleDetection("swipe_right")
	if c.Phase() != PhaseIdle {
		t.Error("non-control detection changed phase")
	}
	c.HandleDetection(WaveGesture)
	if c.Phase() != PhaseArmed {
		t.Fatalf("phase after wave = %v", c.Phase())
	}
	// Re-waving while armed is a no-op.
	c.HandleDetection(WaveGesture)
	if got := countKind(events, EventArmed); got != 1 {
		t.Errorf("armed events = %d", got)
	}
}

// TestInteractiveSessionEndToEnd reproduces the complete §3.1 interactive
// loop: control queries on the engine drive the controller; the user waves,
// performs the new gesture three times, then finalizes with the two-hand
// swipe; the learned query is deployed and detects the gesture.
func TestInteractiveSessionEndToEnd(t *testing.T) {
	h, err := detect.NewHarness(transform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Deploy(ControlQueries()...); err != nil {
		t.Fatal(err)
	}

	var events []Event
	ctl, err := New("letter_l", DefaultConfig(), func(e Event) { events = append(events, e) })
	if err != nil {
		t.Fatal(err)
	}
	h.Engine.Subscribe(func(d anduin.Detection) { ctl.HandleDetection(d.Gesture) })

	// The raw stream fans out to the engine (via harness) and the
	// controller's recorder.
	h.Raw.Subscribe(func(tp stream.Tuple) {
		f, err := kinect.FromTuple(tp)
		if err == nil {
			ctl.HandleFrame(f)
		}
	})

	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 11)
	if err != nil {
		t.Fatal(err)
	}
	extra := map[string]kinect.GestureSpec{"letter_l": letterL()}
	script := []kinect.ScriptItem{
		{Idle: time.Second},
		{Gesture: kinect.GestureWave}, // arm recording
		{Idle: time.Second},
		{Gesture: "letter_l", Opts: kinect.PerformOpts{PathJitter: 25}},
		{Idle: 1500 * time.Millisecond},
		{Gesture: "letter_l", Opts: kinect.PerformOpts{PathJitter: 25}},
		{Idle: 1500 * time.Millisecond},
		{Gesture: "letter_l", Opts: kinect.PerformOpts{PathJitter: 25}},
		{Idle: 1500 * time.Millisecond},
		{Gesture: kinect.GestureTwoHandSwipe}, // finalize
		{Idle: time.Second},
	}
	sess, err := sim.RunScript(script, t0(), extra)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Replay(h.Raw, kinect.ToTuples(sess.Frames)); err != nil {
		t.Fatal(err)
	}

	if ctl.Phase() != PhaseDone {
		t.Fatalf("controller phase = %v, want done (events: %d)", ctl.Phase(), len(events))
	}
	if ctl.Samples() < 3 {
		t.Fatalf("controller accepted %d samples, want >= 3", ctl.Samples())
	}
	var result *Event
	for i := range events {
		if events[i].Kind == EventFinalized {
			result = &events[i]
		}
	}
	if result == nil || result.Err != nil || result.Result == nil {
		t.Fatalf("no finalize result: %+v", result)
	}

	// Deploy the freshly learned gesture and verify detection in a second
	// session.
	if err := h.Deploy(result.Result.QueryText); err != nil {
		t.Fatalf("deploying learned query: %v", err)
	}
	test, err := sim.RunScript([]kinect.ScriptItem{
		{Idle: time.Second},
		{Gesture: "letter_l", Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
	}, t0().Add(time.Hour), extra)
	if err != nil {
		t.Fatal(err)
	}
	out, err := h.RunAndEvaluate(test, detect.DefaultTolerance)
	if err != nil {
		t.Fatal(err)
	}
	if out["letter_l"].TruePositives != 1 {
		t.Errorf("learned letter_l outcome: %v", out["letter_l"])
	}
}

func TestFinalizeWithoutSamples(t *testing.T) {
	c, err := New("g", DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Finalize(); err == nil {
		t.Error("finalize without samples succeeded")
	}
	if _, err := c.Finalize(); err == nil {
		t.Error("double finalize succeeded")
	}
}

func TestPhaseStrings(t *testing.T) {
	if PhaseIdle.String() != "idle" || PhaseArmed.String() != "armed" || PhaseDone.String() != "done" {
		t.Error("phase strings wrong")
	}
	if Phase(9).String() == "" {
		t.Error("unknown phase should render")
	}
}

func countKind(events []Event, k EventKind) int {
	n := 0
	for _, e := range events {
		if e.Kind == k {
			n++
		}
	}
	return n
}
