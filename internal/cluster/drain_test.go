package cluster_test

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gesturecep/internal/cluster"
	"gesturecep/internal/e2e"
	"gesturecep/internal/kinect"
	"gesturecep/internal/serve"
	"gesturecep/internal/wire"
)

// TestGatewayDrainUnderLoad is the membership acceptance soak (run under
// -race in CI): a backend carrying a share of 24 live sessions is drained
// while every session is mid-stream. The contract is total: zero tuple
// drops, detections byte-identical to the bare-engine replay of the full
// stream (migration must not re-fire, lose or reorder a detection), the
// drained backend ends with zero sessions and off the ring, and AddBackend
// afterwards restores it to the placement path through the bounded-load
// ring's ceil(c·avg) cap.
func TestGatewayDrainUnderLoad(t *testing.T) {
	frames := e2e.PlaybackFrames(t, 13)
	tuples := kinect.ToTuples(frames)
	half := len(tuples) / 2
	chunk1, chunk2 := tuples[:half], tuples[half:]

	const backends = 3
	h := e2e.Start(t, e2e.Options{
		Backends:       backends,
		Gateway:        true,
		Serve:          serve.Config{Shards: 2, QueueDepth: 128},
		Record:         true,
		RecorderBuffer: 1 << 15,
		ProbeInterval:  25 * time.Millisecond,
	})
	gw := h.Gateway
	plan, _ := h.Registry.Get("swipe_right")
	want := e2e.EncodeDets(t, e2e.BareReplay(t, plan, e2e.WireTuples(t, tuples)))

	// Phase 1: 24 sessions across 4 connections feed the first half and ack
	// it, which also records each session's placement.
	const sessions, conns = 24, 4
	clients := make([]*wire.Client, conns)
	for i := range clients {
		clients[i] = h.Dial()
	}
	ids := make([]string, sessions)
	rss := make([]*wire.RemoteSession, sessions)
	for i := range rss {
		ids[i] = fmt.Sprintf("move-%02d", i)
		rs, err := clients[i%conns].Attach(ids[i], wire.AttachOptions{BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		rss[i] = rs
		for _, tp := range chunk1 {
			if err := rs.FeedTuple(tp); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rs.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	victim := -1
	onVictim := make(map[string]bool)
	for b := 0; b < backends && victim < 0; b++ {
		for _, id := range ids {
			if h.HasRecording(b, id) {
				victim = b
				break
			}
		}
	}
	if victim < 0 {
		t.Fatal("no backend owns any session")
	}
	victimID := h.Spawner.ID(victim)
	victimSessions := 0
	for _, id := range ids {
		onVictim[id] = h.HasRecording(victim, id)
		if onVictim[id] {
			victimSessions++
		}
	}

	// Phase 2: drain the victim while the second half is in flight — the
	// drain lands once a third of it has been fed.
	var fed atomic.Int64
	drainAt := int64(sessions * len(chunk2) / 3)
	var moved int
	var drainErr error
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for fed.Load() < drainAt {
			time.Sleep(time.Millisecond)
		}
		moved, drainErr = gw.Drain(victimID)
	}()
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := range rss {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, tp := range chunk2 {
				if err := rss[i].FeedTuple(tp); err != nil {
					errs <- fmt.Errorf("session %s: %w", ids[i], err)
					return
				}
				fed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	<-drained
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if drainErr != nil {
		t.Fatalf("drain under load failed after moving %d sessions: %v", moved, drainErr)
	}
	if moved != victimSessions {
		t.Errorf("drain moved %d sessions, victim owned %d", moved, victimSessions)
	}
	if moved == 0 {
		t.Fatal("victim backend owned no sessions; the migration path never ran")
	}

	// The drained backend is fully retired: state machine, ring and the
	// admin plane's membership listing all agree it carries nothing.
	if st := gw.State(victimID); st != cluster.StateDrained {
		t.Errorf("victim state = %q, want %q", st, cluster.StateDrained)
	}
	for _, id := range gw.Ring().Backends() {
		if id == victimID {
			t.Error("drained backend still on the ring")
		}
	}
	var liveSessions int
	for _, row := range gw.BackendsInfo() {
		if row.ID == victimID {
			if row.State != cluster.StateDrained || row.Sessions != 0 || row.RingLoad != 0 {
				t.Errorf("drained row = %+v, want state=drained sessions=0 ring_load=0", row)
			}
		} else {
			if row.State != cluster.StateLive {
				t.Errorf("survivor %s state = %q, want live", row.ID, row.State)
			}
			liveSessions += row.Sessions
		}
	}
	if liveSessions != sessions {
		t.Errorf("survivors carry %d sessions, want all %d", liveSessions, sessions)
	}
	ms := gw.MigrationStats()
	if ms.Migrations != uint64(moved) || ms.Failed != 0 {
		t.Errorf("migration stats = %+v, want %d migrations, 0 failed", ms, moved)
	}
	if ms.Tuples == 0 || ms.Duration.Count != uint64(moved) {
		t.Errorf("migration stats = %+v, want replayed tuples and %d timed moves", ms, moved)
	}

	// Phase 3: re-admit the drained backend — the rolling-restart AddBackend
	// leg — and check that the bounded-load ring steers a share of 16 fresh
	// sessions onto it (pigeonhole: the survivors' caps cannot hold them all).
	if err := gw.AddBackend(victimID, h.Spawner.Addr(victim)); err != nil {
		t.Fatalf("re-adding the drained backend: %v", err)
	}
	if st := gw.State(victimID); st != cluster.StateLive {
		t.Fatalf("re-added backend state = %q, want live", st)
	}
	const fresh = 16
	freshRss := make([]*wire.RemoteSession, fresh)
	for i := range freshRss {
		rs, err := clients[i%conns].Attach(fmt.Sprintf("fresh-%02d", i), wire.AttachOptions{BatchSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		freshRss[i] = rs
	}
	if load := gw.Ring().Load(victimID); load == 0 {
		t.Error("no fresh session placed on the re-added backend")
	}
	for i, rs := range freshRss {
		for _, tp := range tuples[:32] {
			if err := rs.FeedTuple(tp); err != nil {
				t.Fatal(err)
			}
		}
		if c, err := rs.Detach(); err != nil || c.In != 32 || c.Dropped != 0 {
			t.Fatalf("fresh session %d detach = %+v, %v; want in=32 dropped=0", i, c, err)
		}
	}

	// Drain the stream state: every session acked in full with zero drops,
	// detections byte-identical to a run that never moved.
	finalDets := make([][]byte, sessions)
	finalCounters := make([]wire.SessionCounters, sessions)
	for i, rs := range rss {
		if _, err := rs.Flush(); err != nil {
			t.Fatalf("session %s: final flush: %v", ids[i], err)
		}
		finalDets[i] = e2e.EncodeDets(t, rs.Detections())
		c, err := rs.Detach()
		if err != nil {
			t.Fatalf("session %s: detach: %v", ids[i], err)
		}
		finalCounters[i] = c
	}
	h.Stop() // flush the archives so the recordings are readable

	total := uint64(len(tuples))
	for i, id := range ids {
		c := finalCounters[i]
		if c.In != total || c.Out != c.In || c.Dropped != 0 {
			t.Errorf("session %s counters = %+v, want in=out=%d dropped=0", id, c, total)
		}
		if !bytes.Equal(finalDets[i], want) {
			t.Errorf("session %s detections diverge from the bare-engine replay", id)
		}
		// The session's final home holds the complete stream: for a migrated
		// session, the catch-up replay plus the live tail were both tapped
		// into the target's archive, so its recording reconstructs the full
		// run byte for byte.
		home := -1
		for b := 0; b < backends; b++ {
			if b != victim && h.HasRecording(b, id) {
				home = b
				break
			}
		}
		if home < 0 {
			t.Errorf("session %s has no recording off the drained backend", id)
			continue
		}
		recorded := h.Recorded(home, id)
		if uint64(len(recorded)) != total {
			t.Errorf("session %s: final home recorded %d of %d tuples", id, len(recorded), total)
			continue
		}
		if onVictim[id] {
			if got := e2e.EncodeDets(t, e2e.BareReplay(t, plan, recorded)); !bytes.Equal(got, want) {
				t.Errorf("session %s: replaying the migrated recording diverges from the bare replay", id)
			}
		}
	}
}

// TestDrainDeadTargetSticky pins the failure ledger when a drain's only
// re-home target is itself dead: the target is ejected mid-migration, the
// drain aborts and reverts with zero loss for the source's sessions, the
// dead target's own sessions get a sticky rehomeErr (every later flush
// reports the same failure), and once the whole fleet is gone the surviving
// sessions' rehomeErr goes sticky the same way.
func TestDrainDeadTargetSticky(t *testing.T) {
	frames := e2e.PlaybackFrames(t, 5)
	tuples := kinect.ToTuples(frames)
	half := len(tuples) / 2
	chunk1, chunk2 := tuples[:half], tuples[half:]

	h := e2e.Start(t, e2e.Options{
		Backends:      2,
		Gateway:       true,
		Serve:         serve.Config{Shards: 1, QueueDepth: 128},
		Record:        true,
		ProbeInterval: -1, // probes off: only the data and migration paths may eject
	})
	gw := h.Gateway
	plan, _ := h.Registry.Get("swipe_right")
	want := e2e.EncodeDets(t, e2e.BareReplay(t, plan, e2e.WireTuples(t, tuples)))

	const sessions = 8
	cl := h.Dial()
	ids := make([]string, sessions)
	rss := make([]*wire.RemoteSession, sessions)
	for i := range rss {
		ids[i] = fmt.Sprintf("sticky-%02d", i)
		rs, err := cl.Attach(ids[i], wire.AttachOptions{BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		rss[i] = rs
		for _, tp := range chunk1 {
			if err := rs.FeedTuple(tp); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rs.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	victim := -1
	for b := 0; b < 2 && victim < 0; b++ {
		for _, id := range ids {
			if h.HasRecording(b, id) {
				victim = b
				break
			}
		}
	}
	if victim < 0 {
		t.Fatal("no backend owns any session")
	}
	other := 1 - victim
	victimID, otherID := h.Spawner.ID(victim), h.Spawner.ID(other)
	onVictim := make(map[string]bool)
	for _, id := range ids {
		onVictim[id] = h.HasRecording(victim, id)
	}

	// The only possible migration target dies silently (no probes), so the
	// drain discovers the corpse mid-migration, ejects it and aborts.
	h.KillBackend(other)
	moved, err := gw.Drain(victimID)
	if err == nil {
		t.Fatal("drain succeeded with the only target dead")
	}
	if !strings.Contains(err.Error(), "no live backend to migrate onto") {
		t.Errorf("drain error = %v, want the no-live-backend abort", err)
	}
	if moved != 0 {
		t.Errorf("drain moved %d sessions with no live target", moved)
	}
	if st := gw.State(victimID); st != cluster.StateLive {
		t.Errorf("aborted drain left the source in state %q, want live (reverted)", st)
	}
	if st := gw.State(otherID); st != cluster.StateEjected {
		t.Errorf("dead target state = %q, want ejected", st)
	}
	if ids := gw.Ring().Backends(); len(ids) != 1 || ids[0] != victimID {
		t.Errorf("ring holds %v, want only the reverted source", ids)
	}
	ms := gw.MigrationStats()
	if ms.Migrations != 0 || ms.Failed != 1 {
		t.Errorf("migration stats = %+v, want 0 completed, 1 failed", ms)
	}

	// The aborted migration unsealed its source: every session still on the
	// reverted backend finishes the stream with zero loss and byte-identical
	// detections — a failed drain costs nothing.
	for i, id := range ids {
		if !onVictim[id] {
			continue
		}
		rs := rss[i]
		for _, tp := range chunk2 {
			if err := rs.FeedTuple(tp); err != nil {
				t.Fatal(err)
			}
		}
		c, err := rs.Flush()
		if err != nil {
			t.Fatalf("session %s: post-abort flush: %v", id, err)
		}
		if c.In != uint64(len(tuples)) || c.Out != c.In || c.Dropped != 0 {
			t.Errorf("session %s counters = %+v, want in=out=%d dropped=0", id, c, len(tuples))
		}
		if got := e2e.EncodeDets(t, rs.Detections()); !bytes.Equal(got, want) {
			t.Errorf("session %s detections diverge after the aborted migration", id)
		}
	}

	// The dead target's sessions were swept with an empty ring (the source
	// had already left it for the drain): their rehomeErr is sticky — the
	// same failure on every flush, the session never half-recovers.
	for i, id := range ids {
		if onVictim[id] {
			continue
		}
		for attempt := 1; attempt <= 2; attempt++ {
			_, err := rss[i].Flush()
			if err == nil {
				t.Fatalf("session %s flush %d succeeded on a dead backend with no re-home target", id, attempt)
			}
			if _, ok := err.(*wire.ErrorReply); !ok {
				t.Fatalf("session %s flush %d error is %T, want *wire.ErrorReply", id, attempt, err)
			}
			if !strings.Contains(err.Error(), "no live backend to re-home onto") {
				t.Errorf("session %s flush %d error = %v, want the sticky re-home failure", id, attempt, err)
			}
		}
	}

	// Kill the reverted source too: its sessions hit the same sticky path on
	// their next flush, and the failure stays pinned across retries.
	h.KillBackend(victim)
	for i, id := range ids {
		if !onVictim[id] {
			continue
		}
		for attempt := 1; attempt <= 2; attempt++ {
			_, err := rss[i].Flush()
			if err == nil {
				t.Fatalf("session %s flush %d succeeded with the whole fleet dead", id, attempt)
			}
			if !strings.Contains(err.Error(), "no live backend to re-home onto") {
				t.Errorf("session %s flush %d error = %v, want the sticky re-home failure", id, attempt, err)
			}
		}
	}
}

// TestDrainThenCloseNoGoroutineLeak races Close against an in-flight Drain
// and requires the goroutine count to return to baseline: Close interrupts
// the drain at its next quit poll (aborting the in-flight migration and
// unsealing its source), waits the drain goroutine out, and only then tears
// down the backend connections the drain was speaking over.
func TestDrainThenCloseNoGoroutineLeak(t *testing.T) {
	frames := e2e.PlaybackFrames(t, 3)
	tuples := kinect.ToTuples(frames)
	h := e2e.Start(t, e2e.Options{
		Backends: 2,
		Serve:    serve.Config{Shards: 1, QueueDepth: 128},
		Record:   true,
	})
	before := runtime.NumGoroutine()

	gw, err := cluster.NewGateway(cluster.Config{
		Backends:      h.Spawner.Backends(),
		Name:          "drain-close",
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		gw.Close()
		t.Fatal(err)
	}
	go gw.Serve(ln)
	cl, err := wire.Dial(ln.Addr().String())
	if err != nil {
		gw.Close()
		t.Fatal(err)
	}
	ids := make([]string, 8)
	for i := range ids {
		ids[i] = fmt.Sprintf("leak-%02d", i)
		rs, err := cl.Attach(ids[i], wire.AttachOptions{BatchSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range tuples {
			if err := rs.FeedTuple(tp); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rs.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	victimID := ""
	for b := 0; b < 2 && victimID == ""; b++ {
		for _, id := range ids {
			if h.HasRecording(b, id) {
				victimID = h.Spawner.ID(b)
				break
			}
		}
	}
	if victimID == "" {
		t.Fatal("no backend owns any session")
	}

	// Launch the drain and close the gateway the moment it is committed
	// (state flipped to draining) — or already done, both orders must leak
	// nothing.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		gw.Drain(victimID)
	}()
	for gw.State(victimID) == cluster.StateLive {
		select {
		case <-drained:
		default:
			runtime.Gosched()
			continue
		}
		break
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	<-drained
	cl.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("%d goroutines after drain-then-close (baseline %d):\n%s",
				runtime.NumGoroutine(), before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// BenchmarkGatewayMigration measures live-migration replay throughput: one
// session with a recorded history is drained back and forth between two
// backends, a full stateful move per iteration. The tuples/s metric is the
// catch-up replay rate (source recording → gateway → target), the number
// that bounds how fast a rolling restart can evacuate a loaded backend.
func BenchmarkGatewayMigration(b *testing.B) {
	h := e2e.Start(b, e2e.Options{
		Backends:      2,
		Gateway:       true,
		Serve:         serve.Config{Shards: 2, QueueDepth: 256},
		Record:        true,
		ProbeInterval: -1,
	})
	gw := h.Gateway
	tuples := kinect.ToTuples(e2e.PlaybackFrames(b, 7))
	cl := h.Dial()
	rs, err := cl.Attach("bench", wire.AttachOptions{BatchSize: 64, Discard: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, tp := range tuples {
		if err := rs.FeedTuple(tp); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := rs.Flush(); err != nil {
		b.Fatal(err)
	}
	owner := 0
	if !h.HasRecording(0, "bench") {
		owner = 1
	}
	start := gw.MigrationStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := h.Spawner.ID(owner)
		if _, err := gw.Drain(id); err != nil {
			b.Fatal(err)
		}
		if err := gw.AddBackend(id, h.Spawner.Addr(owner)); err != nil {
			b.Fatal(err)
		}
		owner = 1 - owner
	}
	b.StopTimer()
	ms := gw.MigrationStats()
	if got := ms.Migrations - start.Migrations; got != uint64(b.N) {
		b.Fatalf("%d migrations completed over %d iterations", got, b.N)
	}
	if ms.Failed != start.Failed {
		b.Fatalf("%d migrations failed mid-benchmark", ms.Failed-start.Failed)
	}
	b.ReportMetric(float64(ms.Tuples-start.Tuples)/b.Elapsed().Seconds(), "tuples/s")
	if _, err := rs.Detach(); err != nil {
		b.Fatal(err)
	}
}
