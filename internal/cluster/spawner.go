package cluster

import (
	"fmt"
	"net"
	"sync"

	"gesturecep/internal/serve"
	"gesturecep/internal/stream"
	"gesturecep/internal/wire"
)

// SpawnOptions tunes an in-process backend fleet.
type SpawnOptions struct {
	// Serve configures every backend's session manager.
	Serve serve.Config
	// TapSessions, when non-nil, builds each backend's recording hook (see
	// wire.Server.TapSessions) with the backend ID bound — how an
	// all-in-one gateway process records per-backend archives. It is
	// invoked again on Restart, so a hook backed by mutable state (e.g. a
	// fresh archive per incarnation) picks up the restarted backend.
	TapSessions func(backendID string) func(sessionID string) (func(stream.Tuple), func(bool), error)
	// MigrateSource, when non-nil, builds each backend's migration history
	// hook (see wire.Server.MigrateSource) with the backend ID bound — the
	// recording counterpart that makes the fleet's sessions live-migratable.
	// Like TapSessions it is re-invoked on Restart.
	MigrateSource func(backendID string) func(sessionID string) (wire.HistoryReader, uint64, error)
	// Backfill, when non-nil, builds each backend's offline backfill hook
	// (see wire.Server.BackfillSource) with the backend ID bound — the
	// standard implementation is store.NewWireBackfillSource over the
	// backend's recording archive. Like TapSessions it is re-invoked on
	// Restart, so a fresh incarnation serves from its fresh archive.
	Backfill func(backendID string) wire.BackfillFunc
}

// spawned is one in-process backend: its own session manager and wire
// server on a loopback listener.
type spawned struct {
	id     string
	mgr    *serve.Manager
	srv    *wire.Server
	addr   string
	killed bool
}

// Spawner runs an in-process fleet of wire backends sharing one plan
// registry — the all-in-one deployment cmd/gesturegateway defaults to, and
// the substrate the e2e harness builds clusters from. Every backend is a
// full gestured node: its own serve.Manager (private shard workers and
// sessions) behind its own wire.Server on a loopback listener, so a
// gateway, cmd/gestureload, or any wire client can target it unchanged.
type Spawner struct {
	reg  *serve.Registry
	opts SpawnOptions

	mu       sync.Mutex
	backends []*spawned
}

// BackendID is the canonical identifier Spawn assigns backend i.
func BackendID(i int) string { return fmt.Sprintf("backend-%d", i) }

// Spawn starts n backends. The registry is shared — plans compile once for
// the whole fleet, the per-backend cost is only managers and listeners.
func Spawn(n int, reg *serve.Registry, opts SpawnOptions) (*Spawner, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: spawn %d backends (want ≥ 1)", n)
	}
	sp := &Spawner{reg: reg, opts: opts}
	for i := 0; i < n; i++ {
		id := BackendID(i)
		mgr, err := serve.NewManager(opts.Serve, reg)
		if err != nil {
			sp.Close()
			return nil, err
		}
		srv := wire.NewServer(mgr)
		srv.Name = id
		if opts.TapSessions != nil {
			srv.TapSessions = opts.TapSessions(id)
		}
		if opts.MigrateSource != nil {
			srv.MigrateSource = opts.MigrateSource(id)
		}
		if opts.Backfill != nil {
			srv.BackfillSource = opts.Backfill(id)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			mgr.Close()
			sp.Close()
			return nil, err
		}
		go srv.Serve(ln)
		sp.backends = append(sp.backends, &spawned{id: id, mgr: mgr, srv: srv, addr: ln.Addr().String()})
	}
	return sp, nil
}

// Backends returns the fleet descriptors for Config.Backends.
func (sp *Spawner) Backends() []Backend {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	out := make([]Backend, len(sp.backends))
	for i, b := range sp.backends {
		out[i] = Backend{ID: b.id, Addr: b.addr}
	}
	return out
}

// Len returns the number of spawned backends (killed ones included).
func (sp *Spawner) Len() int { return len(sp.backends) }

// Addr returns backend i's wire address.
func (sp *Spawner) Addr(i int) string { return sp.backends[i].addr }

// ID returns backend i's identifier.
func (sp *Spawner) ID(i int) string { return sp.backends[i].id }

// Manager exposes backend i's session manager (tests inspect its metrics).
func (sp *Spawner) Manager(i int) *serve.Manager {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.backends[i].mgr
}

// Kill abruptly stops backend i — server, connections, manager — the way a
// crashed process disappears from its peers. Idempotent.
func (sp *Spawner) Kill(i int) {
	sp.mu.Lock()
	b := sp.backends[i]
	if b.killed {
		sp.mu.Unlock()
		return
	}
	b.killed = true
	srv, mgr := b.srv, b.mgr
	sp.mu.Unlock()
	srv.Close()
	mgr.Close()
}

// Restart brings a killed backend back up on the same address — the
// restarted process a recovering cluster re-admits. The incarnation is
// genuinely fresh, exactly like a crashed gestured coming back: a new
// manager (empty session table; the old NFA state died with the kill)
// behind a new server on a re-bound listener, with the recording hook
// re-derived from SpawnOptions.TapSessions.
func (sp *Spawner) Restart(i int) error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	b := sp.backends[i]
	if !b.killed {
		return fmt.Errorf("cluster: backend %s is still running", b.id)
	}
	mgr, err := serve.NewManager(sp.opts.Serve, sp.reg)
	if err != nil {
		return err
	}
	srv := wire.NewServer(mgr)
	srv.Name = b.id
	if sp.opts.TapSessions != nil {
		srv.TapSessions = sp.opts.TapSessions(b.id)
	}
	if sp.opts.MigrateSource != nil {
		srv.MigrateSource = sp.opts.MigrateSource(b.id)
	}
	if sp.opts.Backfill != nil {
		srv.BackfillSource = sp.opts.Backfill(b.id)
	}
	ln, err := net.Listen("tcp", b.addr)
	if err != nil {
		mgr.Close()
		return fmt.Errorf("cluster: backend %s: rebinding %s: %w", b.id, b.addr, err)
	}
	b.mgr, b.srv, b.killed = mgr, srv, false
	go srv.Serve(ln)
	return nil
}

// Close stops every backend still running.
func (sp *Spawner) Close() {
	for i := range sp.backends {
		sp.Kill(i)
	}
}
