//go:build !race

package cluster_test

// raceEnabled reports whether this test binary was built with the race
// detector, which changes allocation behavior enough to invalidate
// allocation-gate thresholds.
const raceEnabled = false
