package cluster

import (
	"fmt"

	"gesturecep/internal/obs"
)

// LiveBackends reports how many configured backends are currently on the
// ring, alongside the configured total.
func (gw *Gateway) LiveBackends() (live, total int) {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	for _, st := range gw.states {
		if st == StateLive {
			live++
		}
	}
	return live, len(gw.states)
}

// Ready implements the admin plane's readiness probe: nil while at least one
// backend is live (the gateway can place sessions), an error otherwise. A
// TolerateDown gateway that started with its whole fleet down is running but
// unready — exactly the state an orchestrator should drain traffic around —
// and flips ready the moment a recovery loop admits a backend.
func (gw *Gateway) Ready() error {
	live, total := gw.LiveBackends()
	if live == 0 {
		return fmt.Errorf("cluster: 0 of %d backends live", total)
	}
	return nil
}

// Events returns the gateway's recent structured lifecycle events, oldest
// first — the admin plane's /events source.
func (gw *Gateway) Events(n int) []obs.Event { return gw.log.Recent(n) }

// WriteProm writes the gateway's full Prometheus exposition: the aggregated
// fleet metrics (which include the per-backend proxy counters) plus the
// gateway-only series — per-backend forward-latency and probe-RTT histograms,
// incarnation counts, and ring load.
func (gw *Gateway) WriteProm(w *obs.PromWriter) {
	gw.Metrics().WriteProm(w)
	for _, id := range gw.order {
		stats := gw.stats[id]
		l := obs.L("backend", id)
		w.Histogram("cluster_backend_forward_seconds",
			"ProxyBatch forward latency of trace-sampled batches.", l, stats.forward.Snapshot())
		w.Histogram("cluster_backend_probe_seconds",
			"Health-probe round-trip time.", l, stats.probeRTT.Snapshot())
		w.Counter("cluster_backend_probes_total", "Successful health probes.", l, stats.probes.Load())
		w.Counter("cluster_backend_incarnations_total",
			"Incarnations built (initial dial plus re-admissions).", l, stats.incarnations.Load())
		w.Gauge("cluster_backend_ring_load", "Sessions the ring charges to the backend.", l,
			float64(gw.ring.Load(id)))
	}
	live, total := gw.LiveBackends()
	w.Gauge("cluster_backends_live", "Backends currently on the ring.", nil, float64(live))
	w.Gauge("cluster_backends_total", "Configured backends.", nil, float64(total))
	w.Counter("cluster_events_total", "Structured lifecycle events retained since start.", nil, gw.log.Total())
}

// ForwardStats summarizes the per-backend stage histograms for the JSON
// metrics plane, keyed by backend ID.
func (gw *Gateway) ForwardStats() map[string]obs.HistStats {
	out := make(map[string]obs.HistStats, len(gw.order))
	for _, id := range gw.order {
		out[id] = gw.stats[id].forward.Snapshot().Stats()
	}
	return out
}
