package cluster

import (
	"fmt"

	"gesturecep/internal/obs"
)

// LiveBackends reports how many configured backends are currently on the
// ring, alongside the configured total.
func (gw *Gateway) LiveBackends() (live, total int) {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	for _, st := range gw.states {
		if st == StateLive {
			live++
		}
	}
	return live, len(gw.states)
}

// Ready implements the admin plane's readiness probe: nil while at least one
// backend is live (the gateway can place sessions), an error otherwise. A
// TolerateDown gateway that started with its whole fleet down is running but
// unready — exactly the state an orchestrator should drain traffic around —
// and flips ready the moment a recovery loop admits a backend.
func (gw *Gateway) Ready() error {
	live, total := gw.LiveBackends()
	if live == 0 {
		return fmt.Errorf("cluster: 0 of %d backends live", total)
	}
	return nil
}

// Events returns the gateway's recent structured lifecycle events, oldest
// first — the admin plane's /events source.
func (gw *Gateway) Events(n int) []obs.Event { return gw.log.Recent(n) }

// members snapshots the member list and per-ID counter blocks under gw.mu —
// membership is mutable at runtime (AddBackend/RemoveBackend), so readers
// may no longer walk gw.order lock-free.
func (gw *Gateway) members() (order []string, stats map[string]*backendStats) {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	order = append([]string(nil), gw.order...)
	stats = make(map[string]*backendStats, len(gw.stats))
	for id, st := range gw.stats {
		stats[id] = st
	}
	return order, stats
}

// WriteProm writes the gateway's full Prometheus exposition: the aggregated
// fleet metrics (which include the per-backend proxy counters) plus the
// gateway-only series — per-backend forward-latency and probe-RTT histograms,
// incarnation counts, ring load, and the migration plane's counters.
func (gw *Gateway) WriteProm(w *obs.PromWriter) {
	gw.Metrics().WriteProm(w)
	order, byID := gw.members()
	for _, id := range order {
		stats := byID[id]
		l := obs.L("backend", id)
		w.Histogram("cluster_backend_forward_seconds",
			"ProxyBatch forward latency of trace-sampled batches.", l, stats.forward.Snapshot())
		w.Histogram("cluster_backend_probe_seconds",
			"Health-probe round-trip time.", l, stats.probeRTT.Snapshot())
		w.Counter("cluster_backend_probes_total", "Successful health probes.", l, stats.probes.Load())
		w.Counter("cluster_backend_incarnations_total",
			"Incarnations built (initial dial plus re-admissions).", l, stats.incarnations.Load())
		w.Gauge("cluster_backend_ring_load", "Sessions the ring charges to the backend.", l,
			float64(gw.ring.Load(id)))
	}
	live, total := gw.LiveBackends()
	w.Gauge("cluster_backends_live", "Backends currently on the ring.", nil, float64(live))
	w.Gauge("cluster_backends_total", "Configured backends.", nil, float64(total))
	w.Counter("cluster_events_total", "Structured lifecycle events retained since start.", nil, gw.log.Total())
	w.Counter("cluster_migrations_total", "Completed live session migrations.", nil, gw.migrations.Load())
	w.Counter("cluster_migrations_failed_total", "Session migrations that failed or fell back to lossy re-home.", nil, gw.migrationsFailed.Load())
	w.Counter("cluster_migrated_tuples_total", "Tuples replayed into migration targets.", nil, gw.migratedTuples.Load())
	w.Histogram("cluster_migration_seconds", "Per-session live migration duration.", nil, gw.migrateDur.Snapshot())
	w.Counter("cluster_backfills_total", "Completed fleet backfill runs.", nil, gw.backfills.Load())
	w.Counter("cluster_backfills_failed_total", "Fleet backfill runs that failed outright.", nil, gw.backfillsFailed.Load())
	w.Counter("cluster_backfill_streams_total", "Recorded streams evaluated by fleet backfills.", nil, gw.backfillStreams.Load())
	w.Histogram("cluster_backfill_seconds", "Per-run fleet backfill duration.", nil, gw.backfillDur.Snapshot())
}

// ForwardStats summarizes the per-backend stage histograms for the JSON
// metrics plane, keyed by backend ID.
func (gw *Gateway) ForwardStats() map[string]obs.HistStats {
	order, byID := gw.members()
	out := make(map[string]obs.HistStats, len(order))
	for _, id := range order {
		out[id] = byID[id].forward.Snapshot().Stats()
	}
	return out
}

// MigrationStats is the migration plane's counter snapshot: how many
// sessions moved, how many moves failed, how many tuples were replayed into
// targets, and the per-move duration distribution.
type MigrationStats struct {
	Migrations uint64        `json:"migrations"`
	Failed     uint64        `json:"failed"`
	Tuples     uint64        `json:"tuples"`
	Duration   obs.HistStats `json:"duration"`
}

// MigrationStats snapshots the migration counters.
func (gw *Gateway) MigrationStats() MigrationStats {
	return MigrationStats{
		Migrations: gw.migrations.Load(),
		Failed:     gw.migrationsFailed.Load(),
		Tuples:     gw.migratedTuples.Load(),
		Duration:   gw.migrateDur.Snapshot().Stats(),
	}
}
