package cluster

import (
	"fmt"
	"testing"
)

// TestRingBoundedDistribution places a session population across fleets of
// 1, 3 and 16 backends and checks the bounded-load guarantee: no backend
// ever exceeds ceil(factor × total / n) sessions, and no backend starves.
func TestRingBoundedDistribution(t *testing.T) {
	const sessions = 5000
	const factor = 1.25
	for _, n := range []int{1, 3, 16} {
		t.Run(fmt.Sprintf("backends=%d", n), func(t *testing.T) {
			r := NewRing(0, factor)
			for i := 0; i < n; i++ {
				if err := r.Add(fmt.Sprintf("backend-%d", i)); err != nil {
					t.Fatal(err)
				}
			}
			placed := make([]string, sessions)
			for i := range placed {
				id, ok := r.Acquire(fmt.Sprintf("session-%05d", i))
				if !ok {
					t.Fatalf("session %d unplaceable on a %d-backend ring", i, n)
				}
				placed[i] = id
			}
			bound := int(factor*sessions/float64(n)) + 1 // ceil, conservatively
			total := 0
			for _, id := range r.Backends() {
				load := r.Load(id)
				total += load
				if load > bound {
					t.Errorf("backend %s holds %d sessions, bounded-load cap is %d", id, load, bound)
				}
				if load == 0 {
					t.Errorf("backend %s starved (0 of %d sessions)", id, sessions)
				}
			}
			if total != sessions {
				t.Errorf("ring accounts for %d sessions, placed %d", total, sessions)
			}
			// Releasing every placement returns the ring to empty load.
			for _, id := range placed {
				r.Release(id)
			}
			for _, id := range r.Backends() {
				if load := r.Load(id); load != 0 {
					t.Errorf("backend %s still holds %d sessions after releasing all", id, load)
				}
			}
		})
	}
}

// TestRingMinimalMovement pins the property consistent hashing exists for:
// adding a backend only moves keys onto the new backend (nothing shuffles
// between survivors), the moved fraction is near 1/(n+1), and removing it
// again restores the exact original assignment.
func TestRingMinimalMovement(t *testing.T) {
	const keys = 10000
	for _, n := range []int{3, 16} {
		t.Run(fmt.Sprintf("backends=%d", n), func(t *testing.T) {
			r := NewRing(0, 0)
			for i := 0; i < n; i++ {
				if err := r.Add(fmt.Sprintf("backend-%d", i)); err != nil {
					t.Fatal(err)
				}
			}
			before := make([]string, keys)
			for i := range before {
				before[i], _ = r.Lookup(fmt.Sprintf("key-%05d", i))
			}

			const newcomer = "backend-new"
			if err := r.Add(newcomer); err != nil {
				t.Fatal(err)
			}
			moved := 0
			for i := range before {
				after, _ := r.Lookup(fmt.Sprintf("key-%05d", i))
				if after == before[i] {
					continue
				}
				moved++
				if after != newcomer {
					t.Fatalf("key %d moved %s → %s: keys may only move onto the joining backend",
						i, before[i], after)
				}
			}
			want := float64(keys) / float64(n+1)
			if f := float64(moved); f < want/2 || f > want*2 {
				t.Errorf("join moved %d keys, want ≈ %.0f (1/(n+1) of %d)", moved, want, keys)
			}

			r.Remove(newcomer)
			for i := range before {
				if after, _ := r.Lookup(fmt.Sprintf("key-%05d", i)); after != before[i] {
					t.Fatalf("key %d maps to %s after leave, originally %s: leave must restore the assignment",
						i, after, before[i])
				}
			}
		})
	}
}

// TestRingEdgeCases covers the empty ring, duplicate adds and unknown
// removals/releases.
func TestRingEdgeCases(t *testing.T) {
	r := NewRing(8, 1.25)
	if _, ok := r.Lookup("k"); ok {
		t.Error("empty ring Lookup reported an owner")
	}
	if _, ok := r.Acquire("k"); ok {
		t.Error("empty ring Acquire placed a session")
	}
	if err := r.Add("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("a"); err == nil {
		t.Error("duplicate Add succeeded")
	}
	if err := r.Add(""); err == nil {
		t.Error("empty backend id accepted")
	}
	r.Remove("ghost") // no-op
	r.Release("ghost")
	r.Release("a") // load already 0: no underflow
	if id, ok := r.Lookup("k"); !ok || id != "a" {
		t.Errorf("Lookup on singleton ring = %q/%t, want a/true", id, ok)
	}
	if got := r.Load("a"); got != 0 {
		t.Errorf("load = %d after no-op releases, want 0", got)
	}
}

// FuzzRingLookup drives arbitrary membership churn and then requires that
// Lookup and Acquire never panic and always return a live backend exactly
// when the ring is non-empty.
func FuzzRingLookup(f *testing.F) {
	f.Add([]byte{0, 1, 2}, "session-1")
	f.Add([]byte{}, "")
	f.Add([]byte{3, 0, 3, 1, 7, 255}, "user-42")
	f.Fuzz(func(t *testing.T, ops []byte, key string) {
		r := NewRing(4, 1.25)
		live := make(map[string]bool)
		for _, op := range ops {
			id := fmt.Sprintf("backend-%d", op%8)
			switch {
			case op%4 == 3:
				r.Remove(id)
				delete(live, id)
			default:
				if err := r.Add(id); (err == nil) == live[id] {
					t.Fatalf("Add(%s) err=%v with live=%t", id, err, live[id])
				}
				live[id] = true
			}
		}
		for _, probe := range []func(string) (string, bool){r.Lookup, r.Acquire} {
			id, ok := probe(key)
			if ok != (len(live) > 0) {
				t.Fatalf("ok=%t with %d live backends", ok, len(live))
			}
			if ok && !live[id] {
				t.Fatalf("returned dead backend %q", id)
			}
		}
		if len(live) > 0 {
			id, _ := r.Lookup(key)
			r.Release(id)
		}
	})
}
