package cluster_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/cluster"
	"gesturecep/internal/e2e"
	"gesturecep/internal/serve"
	"gesturecep/internal/store"
	"gesturecep/internal/wire"
)

// recordSessions drives n sessions through the harness address with distinct
// playback recordings and detaches them, so every backend's archive holds
// sealed, durable streams. Returns the session/stream names.
func recordSessions(t testing.TB, h *e2e.Harness, n int) []string {
	t.Helper()
	cl := h.Dial()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("sess-%d", i)
		rs, err := cl.Attach(names[i], wire.AttachOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.FeedFrames(e2e.PlaybackFrames(t, int64(7+i))); err != nil {
			t.Fatal(err)
		}
		if _, err := rs.Detach(); err != nil {
			t.Fatal(err)
		}
	}
	return names
}

// unionRoot copies every named stream out of the per-backend archive roots
// into one directory — the single-node archive a fleet's recordings would
// form had one process recorded them all.
func unionRoot(t testing.TB, h *e2e.Harness, backends int, streams []string) string {
	t.Helper()
	root := t.TempDir()
	for _, name := range streams {
		found := false
		for i := 0; i < backends; i++ {
			if !store.Exists(h.RecordRoot(i), name) {
				continue
			}
			if found {
				t.Fatalf("stream %q recorded on more than one backend", name)
			}
			found = true
			src := filepath.Join(h.RecordRoot(i), name)
			if err := os.CopyFS(filepath.Join(root, name), os.DirFS(src)); err != nil {
				t.Fatal(err)
			}
		}
		if !found {
			t.Fatalf("stream %q recorded nowhere", name)
		}
	}
	return root
}

// TestFleetBackfillByteIdentity is the acceptance bar for fleet-parallel
// backfill: over three backends, the merged result must be byte-identical to
// single-node store.BackfillStreams over the union of the fleet's archives.
// Sessions are placed by bounded-load Acquire while the backfill partition
// uses pure ring Lookup, so recordings routinely live off-partition — the
// Missing-retry path runs as part of the ordinary flow, not as a contrived
// failure.
func TestFleetBackfillByteIdentity(t *testing.T) {
	const backends = 3
	h := e2e.Start(t, e2e.Options{
		Backends: backends,
		Gateway:  true,
		Record:   true,
		Serve:    serve.Config{Shards: 2},
	})
	streams := recordSessions(t, h, 6)

	res, err := h.Gateway.Backfill(cluster.BackfillSpec{Streams: streams})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 0 {
		t.Fatalf("fleet backfill missing streams %v", res.Missing)
	}
	if res.Found != len(streams) {
		t.Fatalf("found %d of %d streams", res.Found, len(streams))
	}
	if res.DetectionTotal() == 0 {
		t.Fatal("fleet backfill produced zero detections; expected swipes in every session")
	}
	if res.Records == 0 || res.Tuples == 0 {
		t.Fatalf("counters not accumulated: %+v", res)
	}

	// Single-node baseline over the union archive, same canonical order.
	plan, _ := h.Registry.Get("swipe_right")
	root := unionRoot(t, h, backends, streams)
	want, err := store.BackfillStreams(root, streams, []*anduin.Plan{plan}, store.BackfillOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(res.Detections) {
		t.Fatalf("baseline evaluated %d streams, fleet %d", len(want), len(res.Detections))
	}
	for i, name := range res.Streams {
		got := e2e.EncodeDets(t, res.Detections[i])
		exp := e2e.EncodeDets(t, want[i])
		if !bytes.Equal(got, exp) {
			t.Errorf("stream %q: fleet detections diverge from single-node backfill\nfleet: %+v\nnode:  %+v",
				name, res.Detections[i], want[i])
		}
	}

	if stats := h.Gateway.BackfillStats(); stats.Runs != 1 || stats.Streams != uint64(len(streams)) {
		t.Errorf("backfill stats = %+v, want 1 run over %d streams", stats, len(streams))
	}

	// A second run with a duplicate-laden, unsorted list merges identically.
	shuffled := append([]string{streams[3], streams[3], streams[0]}, streams...)
	res2, err := h.Gateway.Backfill(cluster.BackfillSpec{Streams: shuffled})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Streams {
		if !bytes.Equal(e2e.EncodeDets(t, res2.Detections[i]), e2e.EncodeDets(t, res.Detections[i])) {
			t.Errorf("stream %q: re-run diverges", res.Streams[i])
		}
	}

	// A stream nobody recorded is reported missing, not fatal.
	res3, err := h.Gateway.Backfill(cluster.BackfillSpec{Streams: append([]string{"ghost"}, streams...)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Missing) != 1 || res3.Missing[0] != "ghost" {
		t.Errorf("Missing = %v, want [ghost]", res3.Missing)
	}
}

// TestFleetBackfillSurvivesDeadBackend kills one backend (flushing its
// archive) and requires the fleet to still evaluate every stream the live
// backends hold, reporting the dead backend's recordings as missing.
func TestFleetBackfillSurvivesDeadBackend(t *testing.T) {
	const backends = 3
	h := e2e.Start(t, e2e.Options{
		Backends:      backends,
		Gateway:       true,
		Record:        true,
		Serve:         serve.Config{Shards: 1},
		ProbeInterval: 20 * time.Millisecond, // fast ejection
	})
	streams := recordSessions(t, h, 5)

	// Locate each stream's recording before killing anything.
	onBackend := make(map[string]int, len(streams))
	for _, name := range streams {
		for i := 0; i < backends; i++ {
			if store.Exists(h.RecordRoot(i), name) {
				onBackend[name] = i
			}
		}
	}
	h.KillBackend(2)
	// Wait until the gateway ejects it so the run's live set is stable.
	deadline := 200
	for ; deadline > 0; deadline-- {
		if live, _ := h.Gateway.LiveBackends(); live == backends-1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if deadline == 0 {
		t.Fatal("gateway never ejected the killed backend")
	}

	res, err := h.Gateway.Backfill(cluster.BackfillSpec{Streams: streams})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range streams {
		wantMissing := onBackend[name] == 2
		gotMissing := false
		for _, m := range res.Missing {
			gotMissing = gotMissing || m == name
		}
		if gotMissing != wantMissing {
			t.Errorf("stream %q (backend %d): missing=%v, want %v", name, onBackend[name], gotMissing, wantMissing)
		}
	}
}

// BenchmarkFleetBackfill measures a full fan-out-and-merge over three
// backends' recorded sessions.
func BenchmarkFleetBackfill(b *testing.B) {
	const backends = 3
	h := e2e.Start(b, e2e.Options{
		Backends: backends,
		Gateway:  true,
		Record:   true,
		Serve:    serve.Config{Shards: 2},
	})
	streams := recordSessions(b, h, 6)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := h.Gateway.Backfill(cluster.BackfillSpec{Streams: streams})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Missing) != 0 {
			b.Fatalf("missing streams %v", res.Missing)
		}
	}
}
