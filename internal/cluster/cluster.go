// Package cluster scales the serving runtime horizontally: a Gateway
// terminates the wire protocol in front of a fleet of gestured backends and
// partitions remote sessions across them with a bounded-load consistent-hash
// ring, so the single-node determinism PRs 1–3 established survives
// scale-out unchanged — a session lives on exactly one backend, its tuples
// arrive there in feed order through one proxied connection, and its
// detections come back byte-identical to a direct single-node run.
//
// The moving parts:
//
//   - Ring — consistent hashing with virtual nodes plus the classic
//     bounded-load refinement: a backend never holds more than
//     ceil(c × average) sessions, so a hot arc cannot melt one node while
//     membership changes still move only ~1/n of the keyspace;
//   - Gateway — a frame-level proxy: batch payloads are validated
//     structurally, re-addressed in place and forwarded without decoding a
//     tuple; control frames (attach/flush/detach) round-trip to the owning
//     backend so the flush-ack contract ("every detection for tuples fed
//     before the ack") holds end to end;
//   - health checking — each backend gets a dedicated probe connection
//     pinged on an interval; a probe failure, timeout, or data-path write
//     error ejects the backend from the ring;
//   - re-home — sessions of an ejected backend re-attach on a healthy
//     node. Serving state (NFA progress) cannot be migrated, so every
//     tuple forwarded to the dead incarnation is charged to the session's
//     Lost/Dropped accounting and surfaced through the existing flush-ack
//     and detection-push drop counters — loss is explicit, never silent;
//   - Spawner — an in-process backend fleet (manager + wire server per
//     backend) for cmd/gesturegateway's all-in-one mode and the e2e test
//     harness.
package cluster

import (
	"fmt"
	"time"

	"gesturecep/internal/obs"
)

// Backend describes one wire backend the gateway fronts.
type Backend struct {
	// ID names the backend on the ring and in metrics. Must be unique.
	ID string
	// Addr is the backend's wire-protocol TCP address.
	Addr string
}

// Config tunes a Gateway.
type Config struct {
	// Backends is the initial fleet. All are dialed eagerly by NewGateway.
	Backends []Backend
	// Name identifies the gateway in Pong replies.
	Name string
	// VNodes is the number of virtual nodes per backend on the ring
	// (default DefaultVNodes).
	VNodes int
	// LoadFactor is the bounded-load factor c (default DefaultLoadFactor).
	LoadFactor float64
	// ProbeInterval is the health-check period (default 500ms; negative
	// disables probing — data-path errors still eject).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe round trip (default 2s). It also
	// bounds each re-dial attempt of the recovery machinery.
	ProbeTimeout time.Duration
	// Readmit enables backend recovery: an ejected backend is re-dialed
	// with capped exponential backoff and returned to the ring once it
	// answers pings again. Off, ejection is permanent for the gateway's
	// lifetime (the pre-recovery behavior).
	Readmit bool
	// ReadmitBackoff is the recovery loop's initial re-dial delay (default
	// 250ms); it doubles per failed attempt.
	ReadmitBackoff time.Duration
	// ReadmitMaxBackoff caps the exponential backoff (default 5s; raised to
	// ReadmitBackoff if set below it).
	ReadmitMaxBackoff time.Duration
	// TolerateDown admits initially-unreachable backends through the
	// recovery machinery instead of failing NewGateway: the gateway starts
	// serving on whatever subset of the fleet answered, and the rest join
	// the ring when they come up. Startup recovery runs even with Readmit
	// off; Readmit only governs recovery after a later ejection.
	TolerateDown bool
	// Logger, when non-nil, receives structured backend lifecycle events
	// (ejection, recovery, re-admission) with backend ID, incarnation and
	// state fields, and backs the admin plane's /events endpoint. When nil,
	// the gateway builds its own ring-buffered logger internally — and if
	// Logf is set, mirrors each event to it as a formatted line.
	Logger *obs.Logger
	// Logf, when non-nil, receives one line per backend lifecycle event
	// (ejection, recovery attempt exhaustion, re-admission). Kept as the
	// printf-compatibility shim over Logger; prefer Logger for new code.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ReadmitBackoff <= 0 {
		c.ReadmitBackoff = 250 * time.Millisecond
	}
	if c.ReadmitMaxBackoff <= 0 {
		c.ReadmitMaxBackoff = 5 * time.Second
	}
	if c.ReadmitMaxBackoff < c.ReadmitBackoff {
		c.ReadmitMaxBackoff = c.ReadmitBackoff
	}
	return c
}

// BackendState is one step of a backend's lifecycle state machine:
//
//	         AddBackend
//	             │
//	             ▼
//	live ──eject──▶ ejected (terminal unless Readmit) ──RemoveBackend──▶ gone
//	  ▲  ▲             │ Readmit
//	  │  │         recovering ──re-dial + ping ok──▶ live (fresh incarnation)
//	  │  │             │ └──────────────────────────────▲
//	  │  │             └──RemoveBackend──▶ gone         │
//	  │  Drain                                     AddBackend
//	  │  │                                              │
//	  │  ▼                                              │
//	  │ draining ──every session migrated──▶ drained ───┘
//	  │    │                                    │
//	  └────┘ (no capacity: revert)              └──RemoveBackend──▶ gone
//
// A re-admitted backend is a brand-new incarnation — fresh data and probe
// connections, an empty session set — so a session still bound to a dead
// incarnation can never write to the new one. TolerateDown enters backends
// at "recovering" straight from NewGateway.
//
// Drain is the graceful counterpart of eject: the backend leaves the ring
// first (no new placements), then every session it carries is live-migrated
// onto the rest of the fleet with full NFA state — zero tuples lost, zero
// detections diverging — and only then are its connections dropped. A
// drained backend is out of the serving path but remains a configured
// member: AddBackend with the same ID re-admits it (the rolling-restart
// cycle), RemoveBackend forgets it.
type BackendState string

const (
	// StateLive: on the ring, receiving sessions, health-probed.
	StateLive BackendState = "live"
	// StateEjected: off the ring permanently (Readmit disabled).
	StateEjected BackendState = "ejected"
	// StateRecovering: off the ring; a recovery loop is re-dialing it with
	// capped exponential backoff.
	StateRecovering BackendState = "recovering"
	// StateDraining: off the ring; Drain is live-migrating its sessions
	// onto the rest of the fleet.
	StateDraining BackendState = "draining"
	// StateDrained: off the ring with zero sessions, connections closed;
	// awaiting AddBackend (re-admission) or RemoveBackend (decommission).
	StateDrained BackendState = "drained"
)

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Backends) == 0 {
		return fmt.Errorf("cluster: no backends configured")
	}
	seen := make(map[string]struct{}, len(c.Backends))
	for _, b := range c.Backends {
		if b.ID == "" || b.Addr == "" {
			return fmt.Errorf("cluster: backend needs both an id and an address, got %+v", b)
		}
		if _, dup := seen[b.ID]; dup {
			return fmt.Errorf("cluster: duplicate backend id %q", b.ID)
		}
		seen[b.ID] = struct{}{}
	}
	return nil
}
