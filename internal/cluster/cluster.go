// Package cluster scales the serving runtime horizontally: a Gateway
// terminates the wire protocol in front of a fleet of gestured backends and
// partitions remote sessions across them with a bounded-load consistent-hash
// ring, so the single-node determinism PRs 1–3 established survives
// scale-out unchanged — a session lives on exactly one backend, its tuples
// arrive there in feed order through one proxied connection, and its
// detections come back byte-identical to a direct single-node run.
//
// The moving parts:
//
//   - Ring — consistent hashing with virtual nodes plus the classic
//     bounded-load refinement: a backend never holds more than
//     ceil(c × average) sessions, so a hot arc cannot melt one node while
//     membership changes still move only ~1/n of the keyspace;
//   - Gateway — a frame-level proxy: batch payloads are validated
//     structurally, re-addressed in place and forwarded without decoding a
//     tuple; control frames (attach/flush/detach) round-trip to the owning
//     backend so the flush-ack contract ("every detection for tuples fed
//     before the ack") holds end to end;
//   - health checking — each backend gets a dedicated probe connection
//     pinged on an interval; a probe failure, timeout, or data-path write
//     error ejects the backend from the ring;
//   - re-home — sessions of an ejected backend re-attach on a healthy
//     node. Serving state (NFA progress) cannot be migrated, so every
//     tuple forwarded to the dead incarnation is charged to the session's
//     Lost/Dropped accounting and surfaced through the existing flush-ack
//     and detection-push drop counters — loss is explicit, never silent;
//   - Spawner — an in-process backend fleet (manager + wire server per
//     backend) for cmd/gesturegateway's all-in-one mode and the e2e test
//     harness.
package cluster

import (
	"fmt"
	"time"
)

// Backend describes one wire backend the gateway fronts.
type Backend struct {
	// ID names the backend on the ring and in metrics. Must be unique.
	ID string
	// Addr is the backend's wire-protocol TCP address.
	Addr string
}

// Config tunes a Gateway.
type Config struct {
	// Backends is the initial fleet. All are dialed eagerly by NewGateway.
	Backends []Backend
	// Name identifies the gateway in Pong replies.
	Name string
	// VNodes is the number of virtual nodes per backend on the ring
	// (default DefaultVNodes).
	VNodes int
	// LoadFactor is the bounded-load factor c (default DefaultLoadFactor).
	LoadFactor float64
	// ProbeInterval is the health-check period (default 500ms; negative
	// disables probing — data-path errors still eject).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe round trip (default 2s).
	ProbeTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Backends) == 0 {
		return fmt.Errorf("cluster: no backends configured")
	}
	seen := make(map[string]struct{}, len(c.Backends))
	for _, b := range c.Backends {
		if b.ID == "" || b.Addr == "" {
			return fmt.Errorf("cluster: backend needs both an id and an address, got %+v", b)
		}
		if _, dup := seen[b.ID]; dup {
			return fmt.Errorf("cluster: duplicate backend id %q", b.ID)
		}
		seen[b.ID] = struct{}{}
	}
	return nil
}
