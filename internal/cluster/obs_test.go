package cluster_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"gesturecep/internal/e2e"
	"gesturecep/internal/kinect"
	"gesturecep/internal/obs"
	"gesturecep/internal/serve"
	"gesturecep/internal/wire"
)

// TestGatewayAdminPlane wires a live gateway into an obs.AdminServer the way
// cmd/gesturegateway does and checks the orchestration contract: /readyz
// tracks the live-backend count through eject and re-admit, /metrics carries
// the per-backend forward-latency histograms, and /events serves the
// structured lifecycle log with backend/incarnation fields.
func TestGatewayAdminPlane(t *testing.T) {
	frames := e2e.PlaybackFrames(t, 7)
	tuples := kinect.ToTuples(frames)
	h := e2e.Start(t, e2e.Options{
		Backends: 2,
		Gateway:  true,
		Readmit:  true,
		Serve:    serve.Config{Shards: 1},
	})
	gw := h.Gateway
	admin, err := obs.StartAdmin("127.0.0.1:0", obs.AdminConfig{
		Collect: gw.WriteProm,
		Ready:   gw.Ready,
		Events:  gw.Events,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + admin.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	waitStatus := func(path string, want int) string {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			code, body := get(path)
			if code == want {
				return body
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s stuck at %d (%q), want %d", path, code, body, want)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	waitStatus("/readyz", 200)

	// Stream one fully trace-sampled session so the forward histograms fill.
	cl := h.Dial()
	rs, err := cl.Attach("admin-probe", wire.AttachOptions{BatchSize: 16, TraceEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples {
		if err := rs.FeedTuple(tp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Detach(); err != nil {
		t.Fatal(err)
	}

	_, metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE cluster_backend_forward_seconds histogram",
		"cluster_backend_forward_seconds_bucket",
		`cluster_backend_forward_seconds_count{backend="`,
		"cluster_backends_live 2",
		"cluster_backends_total 2",
		"cluster_backend_probes_total",
		`serve_tuples_total{stage="enqueued"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, metrics)
		}
	}
	// The traced session's batches were timed on the forward path.
	fs := gw.ForwardStats()
	var forwarded uint64
	for _, st := range fs {
		forwarded += st.Count
	}
	if wantBatches := uint64((len(tuples) + 15) / 16); forwarded != wantBatches {
		t.Errorf("forward histograms recorded %d batches, want %d", forwarded, wantBatches)
	}

	// Kill the whole fleet: the probes eject both backends and readiness
	// must flip while the process itself keeps serving the admin plane.
	h.KillBackend(0)
	h.KillBackend(1)
	body := waitStatus("/readyz", 503)
	if !strings.Contains(body, "0 of 2 backends live") {
		t.Errorf("/readyz 503 body = %q, want live-backend count", body)
	}

	// One backend returns: the recovery loop re-admits it and readiness
	// flips back without a restart of the gateway.
	h.RestartBackend(0)
	waitStatus("/readyz", 200)

	_, eventsBody := get("/events?n=64")
	var events []obs.Event
	if err := json.Unmarshal([]byte(eventsBody), &events); err != nil {
		t.Fatalf("/events not JSON: %v in %q", err, eventsBody)
	}
	var ejected, readmitted bool
	for _, e := range events {
		fields := map[string]any{}
		for _, f := range e.Fields {
			fields[f.Key] = f.Value
		}
		switch {
		case strings.Contains(e.Msg, "eject"):
			ejected = true
			if fields["backend"] == nil || fields["incarnation"] == nil {
				t.Errorf("ejection event lacks backend/incarnation fields: %+v", e)
			}
		case strings.Contains(e.Msg, "re-admitted"):
			readmitted = true
			if fields["state"] != "live" {
				t.Errorf("re-admission event state = %v, want live: %+v", fields["state"], e)
			}
		}
	}
	if !ejected || !readmitted {
		t.Errorf("events missing lifecycle coverage (ejected=%v readmitted=%v): %q", ejected, readmitted, eventsBody)
	}

	_, metrics = get("/metrics")
	if !strings.Contains(metrics, "cluster_backends_live 1") {
		t.Errorf("post-recovery /metrics does not report 1 live backend:\n%s", metrics)
	}
}
