package cluster_test

import (
	"encoding/json"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"gesturecep/internal/cluster"
	"gesturecep/internal/e2e"
	"gesturecep/internal/kinect"
	"gesturecep/internal/stream"
	"gesturecep/internal/wire"
)

// flapBackend is a protocol-correct wire backend that dies on the data
// path: it answers pings, attaches and flushes like a healthy server, then
// closes the connection the moment real work arrives (a batch frame — or,
// with killOnAttach, right after acknowledging an attach). Every re-dial is
// accepted, so with re-admission enabled the gateway sees an endlessly
// flapping backend: probes and attaches keep succeeding, batch writes keep
// failing.
type flapBackend struct {
	ln           net.Listener
	killOnAttach bool
	conns        atomic.Int64
}

func startFlapBackend(t *testing.T, killOnAttach bool) *flapBackend {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fb := &flapBackend{ln: ln, killOnAttach: killOnAttach}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			fb.conns.Add(1)
			go fb.serve(c)
		}
	}()
	return fb
}

func (fb *flapBackend) serve(c net.Conn) {
	defer c.Close()
	r := wire.NewReader(c)
	w := wire.NewWriter(c)
	var handles uint32
	for {
		f, err := r.Next()
		if err != nil {
			return
		}
		switch f.Type {
		case wire.FramePing:
			var p wire.Ping
			if json.Unmarshal(f.Payload, &p) != nil {
				return
			}
			if w.WriteJSON(wire.FramePong, &wire.Pong{Seq: p.Seq, Name: "flap"}) != nil {
				return
			}
		case wire.FrameAttach:
			handles++
			if w.WriteJSON(wire.FrameAttachOK, &wire.AttachReply{
				Handle: handles,
				Fields: kinect.Schema().Len(),
				Plans:  []string{"swipe_right"},
			}) != nil {
				return
			}
			if fb.killOnAttach {
				return
			}
		case wire.FrameBatch:
			return // the flap: die whenever data arrives
		case wire.FrameFlush, wire.FrameDetach:
			var ref wire.SessionRef
			if json.Unmarshal(f.Payload, &ref) != nil {
				return
			}
			ack := wire.FrameFlushOK
			if f.Type == wire.FrameDetach {
				ack = wire.FrameDetachOK
			}
			if w.WriteJSON(ack, &wire.SessionCounters{Handle: ref.Handle}) != nil {
				return
			}
		default:
			return
		}
	}
}

// flapTuple builds one kinect-width tuple.
func flapTuple(i int) stream.Tuple {
	return stream.Tuple{
		Ts:     e2e.TestTime().Add(time.Duration(i) * 33 * time.Millisecond),
		Seq:    uint64(i),
		Fields: make([]float64, kinect.Schema().Len()),
	}
}

// testFlappingBackend pins the intended behavior of handleBatch's
// eject-and-retry loop against a backend that keeps coming back and keeps
// dying: the session must FAIL deterministically — a bounded number of
// attempts with backoff, then a sticky session error surfaced to the client
// — rather than spinning hot forever re-homing onto fresh incarnations of
// the same flapping backend. Run under -race, the test also shreds the
// retry loop's locking against the recovery goroutines re-admitting the
// backend concurrently.
func testFlappingBackend(t *testing.T, killOnAttach bool) {
	fb := startFlapBackend(t, killOnAttach)
	gw, err := cluster.NewGateway(cluster.Config{
		Backends:          []cluster.Backend{{ID: "flap", Addr: fb.ln.Addr().String()}},
		Name:              "flap-gw",
		ProbeInterval:     -1, // batch failures alone drive the eject/readmit cycle
		ProbeTimeout:      time.Second,
		Readmit:           true,
		ReadmitBackoff:    time.Millisecond,
		ReadmitMaxBackoff: 5 * time.Millisecond,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve(ln)

	cl, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	rs, err := cl.Attach("flappy", wire.AttachOptions{BatchSize: 1, Discard: true})
	if err != nil {
		t.Fatal(err)
	}

	// Feed until the session failure surfaces. Unbounded retries would
	// never return an error here; a hot spin would burn the deadline.
	fed := make(chan error, 1)
	go func() {
		for i := 0; i < 1_000_000; i++ {
			if err := rs.FeedTuple(flapTuple(i)); err != nil {
				fed <- err
				return
			}
			if i%8 == 7 {
				if _, err := rs.Flush(); err != nil {
					fed <- err
					return
				}
			}
		}
		fed <- nil
	}()
	select {
	case err := <-fed:
		if err == nil {
			t.Fatal("session survived 1M tuples against a perpetually flapping backend; expected a bounded, sticky failure")
		}
		t.Logf("session failed as intended: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("gateway still retrying after 30s: flapping backend wedged the batch path")
	}
	if n := fb.conns.Load(); n < 2 {
		t.Fatalf("backend saw %d connections; the flap cycle never re-dialed", n)
	}
}

func TestGatewayFlappingBackendFailsBounded(t *testing.T) {
	testFlappingBackend(t, false)
}

// The kill-on-attach variant re-homes onto incarnations that are already
// dead by the time the batch is retried, exercising the attempt counter
// rather than the enqueue-then-discover cycle.
func TestGatewayFlappingBackendDeadOnArrival(t *testing.T) {
	testFlappingBackend(t, true)
}

// TestGatewayForwardAllocGate is the allocation regression gate for the
// proxied data path. It runs the full BenchmarkGatewayProxy harness and
// fails if allocations per iteration (one recording replay: ~66 tuples in
// 64-tuple batches plus a flush round trip) creep back toward the
// pre-pooling level of ~1600. The pooled forward path measures ~185; the
// gate at 450 leaves headroom for runtime variance while still catching
// any lost pooling on the hot path.
func TestGatewayForwardAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation thresholds are not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("benchmark-backed gate skipped in short mode")
	}
	res := testing.Benchmark(func(b *testing.B) { benchGatewayProxy(b, 0) })
	const maxAllocsPerOp = 450
	t.Logf("gateway proxy: %d allocs/op, %d B/op over %d iterations",
		res.AllocsPerOp(), res.AllocedBytesPerOp(), res.N)
	if res.AllocsPerOp() > maxAllocsPerOp {
		t.Fatalf("gateway forward path allocates %d per replay iteration, gate is %d — zero-copy forwarding has regressed",
			res.AllocsPerOp(), maxAllocsPerOp)
	}
}
