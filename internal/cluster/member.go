package cluster

import (
	"fmt"

	"gesturecep/internal/obs"
)

// AddBackend admits a new fleet member at runtime: dial its data and probe
// connections, install the incarnation and enter it on the ring. The
// bounded-load placement then steers new sessions toward the fresh, empty
// backend (ceil(c × avg) caps everyone else) — a gradual re-balance, no
// forced movement. Re-using the ID of a drained or terminally-ejected
// member re-admits it (the rolling-restart cycle: drain → deploy →
// AddBackend); a live, draining or recovering ID is refused.
func (gw *Gateway) AddBackend(id, addr string) error {
	if id == "" || addr == "" {
		return fmt.Errorf("cluster: backend needs both an id and an address")
	}
	gw.memberMu.Lock()
	defer gw.memberMu.Unlock()
	gw.mu.Lock()
	if gw.closed {
		gw.mu.Unlock()
		return fmt.Errorf("cluster: gateway closed")
	}
	if st, ok := gw.states[id]; ok {
		switch st {
		case StateDrained, StateEjected:
			// Off the ring with no incarnation: free to re-admit.
		default:
			gw.mu.Unlock()
			return fmt.Errorf("cluster: backend %s is already a member (state %s)", id, st)
		}
	}
	gw.mu.Unlock()
	be, err := gw.dialBackend(id, addr)
	if err != nil {
		return err
	}
	gw.mu.Lock()
	if gw.closed {
		gw.mu.Unlock()
		be.cl.Close()
		be.pr.Close()
		return fmt.Errorf("cluster: gateway closed")
	}
	if err := gw.ring.Add(id); err != nil {
		gw.mu.Unlock()
		be.cl.Close()
		be.pr.Close()
		return err
	}
	if _, known := gw.states[id]; !known {
		gw.order = append(gw.order, id)
	}
	gw.addrs[id] = addr
	gw.backends[id] = be
	gw.states[id] = StateLive
	gw.mu.Unlock()
	gw.log.Info("backend added",
		obs.F("backend", id), obs.F("addr", addr), obs.F("incarnation", be.inc),
		obs.F("state", string(StateLive)))
	return nil
}

// Drain gracefully retires a live backend: it leaves the ring first (no new
// placements), then every session it carries is live-migrated onto the rest
// of the fleet — full NFA state, zero tuple loss, detections byte-identical
// to a run that never moved — and only then are its connections dropped.
// The drained member stays configured: AddBackend re-admits it, or
// RemoveBackend forgets it. On a migration failure (typically no remaining
// capacity) the drain reverts: the backend returns to the ring live, the
// already-moved sessions stay validly placed on their targets, and the
// error reports the first session that could not move. Returns the number
// of sessions migrated.
func (gw *Gateway) Drain(id string) (moved int, err error) {
	gw.memberMu.Lock()
	defer gw.memberMu.Unlock()
	gw.mu.Lock()
	if gw.closed {
		gw.mu.Unlock()
		return 0, fmt.Errorf("cluster: gateway closed")
	}
	be := gw.backends[id]
	if be == nil || gw.states[id] != StateLive {
		st, ok := gw.states[id]
		gw.mu.Unlock()
		if !ok {
			return 0, fmt.Errorf("cluster: no backend %s", id)
		}
		return 0, fmt.Errorf("cluster: backend %s is not live (state %s)", id, st)
	}
	gw.states[id] = StateDraining
	gw.drainWG.Add(1) // under gw.mu: Close sets closed before waiting, so no Add-after-Wait
	gw.mu.Unlock()
	defer gw.drainWG.Done()

	gw.ring.Remove(id) // no new sessions land here while draining
	gw.log.Info("backend draining",
		obs.F("backend", id), obs.F("addr", be.addr), obs.F("incarnation", be.inc),
		obs.F("state", string(StateDraining)))

	// revert returns a drain that cannot complete to live service. The ring
	// re-enters the ID with a reset load (exactly like a re-admission), so
	// the bounded-load walk steers new placements toward it until the count
	// catches up; the sessions it still carries never stopped serving — a
	// failed drain loses nothing.
	revert := func(cause error) (int, error) {
		gw.mu.Lock()
		if gw.backends[id] == be && gw.states[id] == StateDraining {
			if rerr := gw.ring.Add(id); rerr == nil {
				gw.states[id] = StateLive
			}
		}
		gw.mu.Unlock()
		gw.log.Warn("backend drain reverted",
			obs.F("backend", id), obs.F("incarnation", be.inc),
			obs.F("sessions_moved", moved), obs.F("err", cause.Error()))
		return moved, cause
	}

	for {
		select {
		case <-gw.quit:
			return revert(fmt.Errorf("cluster: drain of %s aborted by shutdown", id))
		default:
		}
		be.mu.Lock()
		var ps *proxySession
		for s := range be.sessions {
			ps = s
			break
		}
		be.mu.Unlock()
		if ps == nil {
			break
		}
		ps.mu.Lock()
		if ps.be != be || ps.detached || ps.rehomeErr != nil {
			// The session moved or ended between the snapshot and the lock;
			// make sure it leaves the set so the sweep terminates.
			ps.mu.Unlock()
			be.dropSession(ps)
			continue
		}
		merr := gw.migrateLocked(ps)
		ps.mu.Unlock()
		if merr != nil {
			if be.isEjected() {
				// The source died mid-drain: eject re-homed the survivors
				// (lossily, with explicit accounting) and retired the
				// incarnation; there is nothing left to drain or revert.
				return moved, fmt.Errorf("cluster: backend %s died while draining: %w", id, merr)
			}
			return revert(fmt.Errorf("cluster: drain %s: session %q: %w", id, ps.id, merr))
		}
		moved++
	}

	// Finalize: retire the drained incarnation. A concurrent ejection (a
	// probe or data-path failure mid-drain) wins the race — it already
	// re-homed whatever was left and moved the state machine on.
	gw.mu.Lock()
	if gw.backends[id] != be || gw.states[id] != StateDraining {
		st := gw.states[id]
		gw.mu.Unlock()
		return moved, fmt.Errorf("cluster: backend %s was ejected mid-drain (state %s)", id, st)
	}
	gw.backends[id] = nil
	gw.states[id] = StateDrained
	gw.mu.Unlock()
	// Mark the incarnation ejected so any straggling reference (a stale
	// probe verdict, a late data-path error) finds eject a no-op, then drop
	// the connections — the backend carries no sessions anymore.
	be.mu.Lock()
	be.ejected = true
	be.mu.Unlock()
	be.cl.Close()
	be.pr.Close()
	gw.log.Info("backend drained",
		obs.F("backend", id), obs.F("addr", be.addr), obs.F("incarnation", be.inc),
		obs.F("state", string(StateDrained)), obs.F("sessions", moved))
	return moved, nil
}

// RemoveBackend forgets a member that is out of the serving path — drained,
// terminally ejected, or still recovering (its re-dial loop is cancelled).
// A live or draining backend must be drained first; removal never moves
// sessions.
func (gw *Gateway) RemoveBackend(id string) error {
	gw.memberMu.Lock()
	defer gw.memberMu.Unlock()
	gw.mu.Lock()
	if gw.closed {
		gw.mu.Unlock()
		return fmt.Errorf("cluster: gateway closed")
	}
	st, ok := gw.states[id]
	if !ok {
		gw.mu.Unlock()
		return fmt.Errorf("cluster: no backend %s", id)
	}
	switch st {
	case StateDrained, StateEjected, StateRecovering:
	default:
		gw.mu.Unlock()
		return fmt.Errorf("cluster: backend %s is %s; drain it before removing", id, st)
	}
	if ch, running := gw.recoverCancel[id]; running {
		close(ch)
		delete(gw.recoverCancel, id)
	}
	delete(gw.states, id)
	delete(gw.backends, id)
	delete(gw.addrs, id)
	delete(gw.stats, id)
	for i, oid := range gw.order {
		if oid == id {
			gw.order = append(gw.order[:i], gw.order[i+1:]...)
			break
		}
	}
	gw.mu.Unlock()
	gw.log.Info("backend removed",
		obs.F("backend", id), obs.F("state", string(st)))
	return nil
}

// BackendInfo is one row of the admin plane's read-only /backends listing.
type BackendInfo struct {
	ID          string       `json:"id"`
	Addr        string       `json:"addr"`
	State       BackendState `json:"state"`
	Incarnation uint64       `json:"incarnation"`
	RingLoad    int          `json:"ring_load"`
	Sessions    int          `json:"sessions"`
}

// BackendsInfo snapshots the fleet membership: one row per configured
// member in admission order, with its lifecycle state, current incarnation
// ordinal, ring load and proxied session count.
func (gw *Gateway) BackendsInfo() []BackendInfo {
	gw.mu.Lock()
	order := append([]string(nil), gw.order...)
	states := make(map[string]BackendState, len(gw.states))
	addrs := make(map[string]string, len(gw.addrs))
	byID := make(map[string]*backend, len(gw.backends))
	stats := make(map[string]*backendStats, len(gw.stats))
	for id, st := range gw.states {
		states[id] = st
	}
	for id, a := range gw.addrs {
		addrs[id] = a
	}
	for id, be := range gw.backends {
		byID[id] = be
	}
	for id, st := range gw.stats {
		stats[id] = st
	}
	gw.mu.Unlock()
	out := make([]BackendInfo, 0, len(order))
	for _, id := range order {
		info := BackendInfo{
			ID:       id,
			Addr:     addrs[id],
			State:    states[id],
			RingLoad: gw.ring.Load(id),
		}
		if st := stats[id]; st != nil {
			info.Incarnation = st.incarnations.Load()
		}
		if be := byID[id]; be != nil {
			be.mu.Lock()
			info.Sessions = len(be.sessions)
			be.mu.Unlock()
		}
		out = append(out, info)
	}
	return out
}
