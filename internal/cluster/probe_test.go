package cluster

import (
	"encoding/json"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"gesturecep/internal/serve"
	"gesturecep/internal/wire"
)

// fakeBackend is a wire endpoint that accepts connections and answers at
// most pingsPerConn pings on each before going silent — pingsPerConn 0 is
// a pure black hole (accepts, reads, never replies), the wedged-process
// shape a health prober must not be stalled by; pingsPerConn 1 passes a
// Redial liveness check and then times out every later probe, which is how
// the leak test manufactures an endless eject/re-admit cycle.
type fakeBackend struct {
	t  *testing.T
	ln net.Listener

	mu    sync.Mutex
	conns []net.Conn
}

func startFakeBackend(t *testing.T, pingsPerConn int) *fakeBackend {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fb := &fakeBackend{t: t, ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			fb.mu.Lock()
			fb.conns = append(fb.conns, c)
			fb.mu.Unlock()
			go fb.serveConn(c, pingsPerConn)
		}
	}()
	t.Cleanup(fb.Close)
	return fb
}

func (fb *fakeBackend) serveConn(c net.Conn, pings int) {
	r := wire.NewReader(c)
	w := wire.NewWriter(c)
	answered := 0
	for {
		f, err := r.Next()
		if err != nil {
			return
		}
		if f.Type == wire.FramePing && answered < pings {
			var ping wire.Ping
			if err := json.Unmarshal(f.Payload, &ping); err != nil {
				return
			}
			if err := w.WriteJSON(wire.FramePong, &wire.Pong{Seq: ping.Seq, Name: "fake"}); err != nil {
				return
			}
			answered++
		}
		// Everything else — and every ping past the quota — is swallowed.
	}
}

func (fb *fakeBackend) Addr() string { return fb.ln.Addr().String() }

func (fb *fakeBackend) Close() {
	fb.ln.Close()
	fb.mu.Lock()
	defer fb.mu.Unlock()
	for _, c := range fb.conns {
		c.Close()
	}
	fb.conns = nil
}

// TestProbeSweepConcurrent pins the concurrent health sweep: with one
// backend black-holed (its probe parked for the full 2s ProbeTimeout),
// every other backend must still be probed on every tick. The sequential
// sweep this replaces stalled behind the black hole, starving the healthy
// backends of health checks for ProbeTimeout per tick.
func TestProbeSweepConcurrent(t *testing.T) {
	sp, err := Spawn(2, serve.NewRegistry(), SpawnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	hole := startFakeBackend(t, 0)

	const interval = 25 * time.Millisecond
	gw, err := NewGateway(Config{
		Backends:      append(sp.Backends(), Backend{ID: "blackhole", Addr: hole.Addr()}),
		ProbeInterval: interval,
		ProbeTimeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	// Both healthy backends must rack up probes while the black hole's
	// very first probe is still in flight. 5 probes ≫ one interval proves
	// no sweep ever waited on the stuck one.
	deadline := time.Now().Add(1500 * time.Millisecond)
	for {
		p0 := gw.stats[sp.ID(0)].probes.Load()
		p1 := gw.stats[sp.ID(1)].probes.Load()
		if p0 >= 5 && p1 >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthy backends probed %d/%d times while one backend is black-holed; "+
				"the sweep is being serialized behind the stuck probe", p0, p1)
		}
		time.Sleep(interval)
	}
	// The black hole has not even timed out yet (ProbeTimeout is 2s), so
	// the healthy probes above cannot have waited for its verdict.
	if st := gw.State("blackhole"); st != StateLive {
		t.Fatalf("black-holed backend already %q before its ProbeTimeout elapsed", st)
	}
	if got := gw.stats["blackhole"].probes.Load(); got != 0 {
		t.Fatalf("black-holed backend completed %d probes, want 0", got)
	}
}

// TestProbeTimeoutNoGoroutineLeak manufactures an endless probe-timeout
// storm — a backend that passes every Redial liveness check and then
// black-holes its probes, so the gateway cycles eject → recover → re-admit
// → probe timeout — and requires the goroutine count to return to baseline
// after Close: in-flight pings die with their probe, never accumulate.
func TestProbeTimeoutNoGoroutineLeak(t *testing.T) {
	fb := startFakeBackend(t, 1)
	before := runtime.NumGoroutine()

	gw, err := NewGateway(Config{
		Backends:          []Backend{{ID: "flappy", Addr: fb.Addr()}},
		ProbeInterval:     10 * time.Millisecond,
		ProbeTimeout:      40 * time.Millisecond,
		Readmit:           true,
		ReadmitBackoff:    5 * time.Millisecond,
		ReadmitMaxBackoff: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	stats := gw.stats["flappy"]
	deadline := time.Now().Add(10 * time.Second)
	for stats.readmissions.Load() < 3 {
		if time.Now().After(deadline) {
			gw.Close()
			t.Fatalf("only %d re-admissions after %d ejections; the eject/recover cycle stalled",
				stats.readmissions.Load(), stats.ejections.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cycles := stats.ejections.Load()
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}

	// Every probe timeout spawned a ping goroutine and every recovery
	// attempt a client read loop; all must be gone now. Allow the runtime
	// a moment to retire the final handful.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("%d goroutines after %d probe-timeout cycles (baseline %d):\n%s",
				runtime.NumGoroutine(), cycles, before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
	if stats.readmissions.Load() < 3 || cycles < 3 {
		t.Fatalf("cycle counters implausible: %d ejections, %d readmissions",
			cycles, stats.readmissions.Load())
	}
}
