package cluster

import (
	"errors"
	"fmt"
	"time"

	"gesturecep/internal/obs"
	"gesturecep/internal/wire"
)

// migrateLocked moves one proxied session from its current backend onto a
// ring-chosen target with full NFA state, detections byte-identical to a
// run that never moved. The caller holds ps.mu, which pauses the session
// for the duration: no batch is forwarded, no flush or detach round-trips,
// and the front producer is paced by TCP backpressure exactly as under a
// slow backend — pausing costs nothing the serving path does not already
// model.
//
// The protocol, in cut-ordinal terms (the invariant is that the target
// replays exactly the source's admitted-tuple count, no more, no fewer):
//
//  1. MigrateBegin on the source seals the session, drains its queue and
//     verifies the recorded history is complete; the reply carries the cut
//     ordinal (tuples admitted so far).
//  2. A target is acquired from the ring and attached with StartAt = cut:
//     catch-up mode, detections muted server-side so replay cannot re-fire
//     what the source already delivered.
//  3. The recorded history [0, cut) streams source → gateway → target in
//     batch-frame chunks. A target death mid-replay restarts on a fresh
//     target from ordinal 0 (the source rewinds its history cursor).
//  4. MigrateCommit on the target flushes, verifies exactly cut tuples
//     arrived and unmutes — target state now equals source state at the
//     cut, byte for byte.
//  5. The source session is detached (relaying its final detections before
//     the ack, per the wire ordering contract) and the binding flips.
//
// Failure honesty: an abort before the flip unseals the source and the
// session resumes where it was — zero loss. A source death mid-migration
// falls back to the lossy re-home path with its explicit Lost accounting,
// exactly as an eject would.
func (gw *Gateway) migrateLocked(ps *proxySession) error {
	start := time.Now()
	if err := gw.migrateSessionLocked(ps); err != nil {
		gw.migrationsFailed.Add(1)
		return err
	}
	gw.migrations.Add(1)
	gw.migrateDur.ObserveSince(start)
	return nil
}

func (gw *Gateway) migrateSessionLocked(ps *proxySession) error {
	src := ps.be
	begin, err := ps.rs.MigrateBegin()
	if err != nil {
		var er *wire.ErrorReply
		if errors.As(err, &er) {
			// The source is healthy but refused (no history source, lossy
			// recording, migration already running): the session is still
			// serving, nothing to clean up.
			return fmt.Errorf("cluster: session %q: migrate-begin refused: %w", ps.id, err)
		}
		return gw.sourceDiedLocked(ps, src, err)
	}
	cut := begin.Ordinal
	// The target's push hook is bound to the next generation, which only
	// becomes current at the flip — so if the migration aborts, the source's
	// hook (bound to the current generation) is still the live one.
	gen := ps.gen.Load() + 1

	// abort releases the source's history cursor and unseals it, resuming
	// live service with zero loss. A failed abort means the source died
	// under it; the session will take the eject path on its next frame.
	abort := func(cause error) error {
		if _, aerr := ps.rs.MigrateAbort(); aerr != nil {
			return fmt.Errorf("%w (abort failed: %v)", cause, aerr)
		}
		return cause
	}

Target:
	for {
		select {
		case <-gw.quit:
			return abort(fmt.Errorf("cluster: session %q: migration aborted by shutdown", ps.id))
		default:
		}
		id, ok := gw.ring.Acquire(ps.id)
		if !ok {
			return abort(fmt.Errorf("cluster: session %q: no live backend to migrate onto", ps.id))
		}
		tgt := gw.backend(id)
		if tgt == nil || tgt.isEjected() {
			gw.ring.Release(id)
			continue
		}
		if tgt == src {
			// Only reachable when the caller left the source on the ring —
			// a drain removes it first. Fail rather than ping-pong.
			gw.ring.Release(id)
			return abort(fmt.Errorf("cluster: session %q: ring still offers the migration source %s", ps.id, id))
		}
		trs, err := tgt.cl.Attach(ps.id, wire.AttachOptions{
			Gestures:     ps.gestures,
			Discard:      true,
			StartAt:      cut,
			OnDetections: ps.pushHook(gen),
		})
		if err != nil {
			gw.ring.Release(id)
			var er *wire.ErrorReply
			if errors.As(err, &er) {
				return abort(fmt.Errorf("cluster: session %q: migration target %s refused attach: %w", ps.id, id, err))
			}
			gw.eject(tgt, ps)
			continue
		}
		// dropTarget abandons the half-caught-up target session on a path
		// where the target itself is healthy (terminal aborts); a dead
		// target is handled by eject instead.
		dropTarget := func() {
			trs.Detach()
			if !tgt.isEjected() {
				gw.ring.Release(id)
			}
		}

		// Replay the recorded history [0, cut) into the target. Chunks are
		// raw batch payloads: fetched once from the source, re-addressed in
		// place and forwarded — the gateway never decodes a tuple.
		var replayed uint64
		for replayed < cut {
			select {
			case <-gw.quit:
				dropTarget()
				return abort(fmt.Errorf("cluster: session %q: migration aborted by shutdown", ps.id))
			default:
			}
			payload, err := ps.rs.MigrateFetch(replayed)
			if err != nil {
				dropTarget()
				var er *wire.ErrorReply
				if errors.As(err, &er) {
					return abort(fmt.Errorf("cluster: session %q: migrate-state refused: %w", ps.id, err))
				}
				return gw.sourceDiedLocked(ps, src, err)
			}
			if len(payload) == 0 {
				// MigrateBegin verified recorded == admitted, so running dry
				// short of the cut is a history corruption — surface it, do
				// not commit a short state.
				dropTarget()
				return abort(fmt.Errorf("cluster: session %q: history ended at tuple %d, cut ordinal is %d", ps.id, replayed, cut))
			}
			n, err := tgt.cl.ProxyBatch(trs.Handle(), payload)
			if err != nil {
				// Target died mid-catch-up: nothing committed, the source is
				// still sealed with its full history — restart on a fresh
				// target from ordinal 0 (the source rewinds its cursor).
				gw.eject(tgt, ps)
				continue Target
			}
			replayed += uint64(n)
		}
		if cut > 0 {
			if _, err := trs.MigrateCommit(cut); err != nil {
				var er *wire.ErrorReply
				if errors.As(err, &er) {
					dropTarget()
					return abort(fmt.Errorf("cluster: session %q: migrate-commit refused by target %s: %w", ps.id, id, err))
				}
				gw.eject(tgt, ps)
				continue Target
			}
		}
		// The target now holds the session's exact state at the cut. Detach
		// the source first: the wire ordering contract relays every source
		// detection to the front before the detach ack, so nothing the
		// source produced can be lost or reordered behind target pushes. A
		// detach failure means the source died after the commit — the state
		// is safely on the target, proceed.
		srcRS := ps.rs
		if _, err := srcRS.Detach(); err != nil && !src.isEjected() {
			gw.log.Warn("migration source detach failed; state already committed on target",
				obs.F("backend", src.id), obs.F("session", ps.id), obs.F("err", err.Error()))
		}
		src.dropSession(ps)
		if !src.isEjected() {
			// A drain already removed the source from the ring (Release is
			// then a no-op); a plain rebalance migration releases its slot.
			gw.ring.Release(src.id)
		}
		ps.gen.Add(1) // == gen: the target's push hook becomes current
		ps.be, ps.rs = tgt, trs
		ps.beStats.Store(tgt.stats)
		ps.forwarded = cut
		ps.backendDropped.Store(0)
		tgt.addSession(ps)
		gw.migratedTuples.Add(cut)
		if tgt.isEjected() {
			// The target died between commit and registration; the eject
			// sweep may have snapshotted its sessions before we appeared.
			// Fall back to the lossy re-home path — the loss is real (the
			// migrated state just died) and is accounted as such.
			tgt.dropSession(ps)
			if ps.rehomeErr == nil {
				ps.rehomeErr = gw.rehomeLocked(ps)
			}
			if ps.rehomeErr != nil {
				return fmt.Errorf("cluster: session %q: migration target died and re-home failed: %w", ps.id, ps.rehomeErr)
			}
			return fmt.Errorf("cluster: session %q: migration target died after commit; re-homed with loss", ps.id)
		}
		return nil
	}
}

// sourceDiedLocked handles a source backend dying mid-migration: eject it
// (re-homing its other sessions) and fall back to the lossy re-home path
// for this one, charging the forwarded tuples to Lost exactly as a plain
// ejection would. The caller holds ps.mu.
func (gw *Gateway) sourceDiedLocked(ps *proxySession, src *backend, cause error) error {
	gw.eject(src, ps)
	if ps.rehomeErr == nil && !ps.detached {
		ps.rehomeErr = gw.rehomeLocked(ps)
	}
	if ps.rehomeErr != nil {
		return fmt.Errorf("cluster: session %q: source died mid-migration (%v) and re-home failed: %w", ps.id, cause, ps.rehomeErr)
	}
	return fmt.Errorf("cluster: session %q: source died mid-migration (%v); re-homed with loss", ps.id, cause)
}
