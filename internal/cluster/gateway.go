package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/obs"
	"gesturecep/internal/serve"
	"gesturecep/internal/wire"
)

// maxPendingDetections bounds a proxied session's detection relay buffer,
// mirroring the wire server's own push buffer: past the cap the oldest
// pending detection is evicted and counted.
const maxPendingDetections = 65536

// backendStats is the per-backend-ID counter block Metrics reports. It is
// shared by every incarnation of one backend (the gateway allocates it once
// per configured ID), so counters stay monotonic across eject/re-admit
// cycles and a session straggling on a dead incarnation still charges its
// losses to the right row.
type backendStats struct {
	batches      atomic.Uint64
	tuples       atomic.Uint64
	detections   atomic.Uint64
	lost         atomic.Uint64
	rehomed      atomic.Uint64
	probeSeq     atomic.Uint64
	probes       atomic.Uint64 // completed successful health probes
	ejections    atomic.Uint64
	readmissions atomic.Uint64 // admissions via the recovery loop
	incarnations atomic.Uint64 // incarnations built for this ID (dial or re-admit)

	// forward records ProxyBatch write latency of trace-sampled batches;
	// probeRTT records every successful health-probe round trip. Both span
	// incarnations, like the counters above.
	forward  *obs.Histogram
	probeRTT *obs.Histogram
}

func newBackendStats() *backendStats {
	return &backendStats{forward: obs.NewHistogram(), probeRTT: obs.NewHistogram()}
}

// backend is one incarnation of a fleet member: a shared data connection
// carrying every proxied session homed there, a dedicated probe connection
// (so a health check never queues behind a long flush), and a reference to
// the backend ID's cross-incarnation counters. An ejected incarnation is
// never resurrected — re-admission builds a fresh one with fresh
// connections, which is what keeps stale sessions from ever writing to a
// recovered backend's new sockets.
type backend struct {
	id    string
	addr  string
	inc   uint64 // incarnation ordinal (1-based), for lifecycle log fields
	stats *backendStats
	cl    *wire.Client // data + control for proxied sessions
	pr    *wire.Client // health probes only

	mu       sync.Mutex
	sessions map[*proxySession]struct{}
	ejected  bool

	probing atomic.Bool // a health probe is in flight for this incarnation
}

func (be *backend) isEjected() bool {
	be.mu.Lock()
	defer be.mu.Unlock()
	return be.ejected
}

func (be *backend) addSession(ps *proxySession) {
	be.mu.Lock()
	be.sessions[ps] = struct{}{}
	be.mu.Unlock()
}

func (be *backend) dropSession(ps *proxySession) {
	be.mu.Lock()
	delete(be.sessions, ps)
	be.mu.Unlock()
}

// Gateway terminates the wire protocol in front of a backend fleet. Remote
// clients speak to it exactly as they would to a single gestured process —
// attach, batch, flush, detach, metrics, ping — while each session's frames
// are proxied to the backend the ring assigns it.
type Gateway struct {
	cfg  Config
	ring *Ring
	log  *obs.Logger // never nil; see NewGateway

	// memberMu serializes membership operations — AddBackend, Drain,
	// RemoveBackend — against each other; gw.mu stays the fine-grained
	// lock for each individual state step inside them. Lock ordering:
	// memberMu before mu, never the reverse.
	memberMu sync.Mutex

	mu       sync.Mutex
	stats    map[string]*backendStats // per-ID counters, across incarnations
	addrs    map[string]string
	order    []string                // member IDs in admission order, for metrics
	backends map[string]*backend     // current incarnation; nil while down
	states   map[string]BackendState // lifecycle state per backend ID
	// recoverCancel holds one cancel channel per running recovery loop;
	// RemoveBackend closes it so a decommissioned ID stops being re-dialed.
	recoverCancel map[string]chan struct{}
	conns         map[*frontConn]struct{}
	ln            net.Listener
	closed        bool

	// Migration counters (see MigrationStats): completed and failed session
	// moves, tuples replayed into targets, and per-migration duration.
	migrations       atomic.Uint64
	migrationsFailed atomic.Uint64
	migratedTuples   atomic.Uint64
	migrateDur       *obs.Histogram

	// Fleet-backfill counters (see BackfillStats) plus the merge lock the
	// per-backend calls of one run share.
	backfillMu      sync.Mutex
	backfills       atomic.Uint64
	backfillsFailed atomic.Uint64
	backfillStreams atomic.Uint64
	backfillDur     *obs.Histogram

	wg        sync.WaitGroup // front connection handlers
	quit      chan struct{}
	probeDone chan struct{}
	probeWG   sync.WaitGroup // in-flight probes and their ping goroutines
	recoverWG sync.WaitGroup // per-backend recovery loops
	drainWG   sync.WaitGroup // in-flight Drain calls; Close waits them out
}

// NewGateway dials every configured backend (data + probe connections) and
// builds the ring. By default it fails fast if any backend is unreachable:
// a fleet that starts degraded is a configuration error, whereas a backend
// lost later is a runtime event the gateway survives by ejection. With
// Config.TolerateDown, an unreachable backend is instead admitted through
// the recovery machinery — the gateway starts on the reachable subset and
// the rest join the ring when they answer pings.
func NewGateway(cfg Config) (*Gateway, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	log := cfg.Logger
	if log == nil {
		// Build the event ring ourselves; a configured Logf becomes the
		// sink, so printf-style consumers keep getting their lines while
		// the admin plane serves the structured ring.
		var sink func(obs.Event)
		if lf := cfg.Logf; lf != nil {
			sink = func(e obs.Event) { lf("%s", e.String()) }
		}
		log = obs.NewLogger(256, sink)
	}
	gw := &Gateway{
		cfg:           cfg,
		ring:          NewRing(cfg.VNodes, cfg.LoadFactor),
		log:           log,
		stats:         make(map[string]*backendStats),
		addrs:         make(map[string]string),
		backends:      make(map[string]*backend),
		states:        make(map[string]BackendState),
		recoverCancel: make(map[string]chan struct{}),
		conns:         make(map[*frontConn]struct{}),
		quit:          make(chan struct{}),
		probeDone:     make(chan struct{}),
		migrateDur:    obs.NewHistogram(),
		backfillDur:   obs.NewHistogram(),
	}
	for _, b := range cfg.Backends {
		gw.stats[b.ID] = newBackendStats()
		gw.addrs[b.ID] = b.Addr
		gw.order = append(gw.order, b.ID)
		be, err := gw.dialBackend(b.ID, b.Addr)
		if err != nil {
			if cfg.TolerateDown {
				gw.backends[b.ID] = nil
				gw.states[b.ID] = StateRecovering
				continue
			}
			gw.closeBackends()
			return nil, err
		}
		gw.backends[b.ID] = be
		gw.states[b.ID] = StateLive
		if err := gw.ring.Add(b.ID); err != nil {
			gw.closeBackends()
			return nil, err
		}
	}
	for id, st := range gw.states {
		if st == StateRecovering {
			gw.log.Warn("backend down at startup; admitting through recovery",
				obs.F("backend", id), obs.F("addr", gw.addrs[id]), obs.F("state", string(StateRecovering)))
			gw.startRecoveryLocked(id, gw.addrs[id])
		}
	}
	go gw.probeLoop()
	return gw, nil
}

// startRecoveryLocked launches the recovery loop for one backend ID and
// registers its cancel channel (so RemoveBackend can stop the re-dialing).
// Callers hold gw.mu, or own the gateway exclusively (NewGateway).
func (gw *Gateway) startRecoveryLocked(id, addr string) {
	cancel := make(chan struct{})
	gw.recoverCancel[id] = cancel
	gw.recoverWG.Add(1)
	go gw.recoverLoop(id, addr, cancel)
}

// statsFor returns the cross-incarnation counter block of one backend ID,
// creating it on first sight — membership is mutable at runtime, so the
// block can no longer be assumed pre-built by NewGateway.
func (gw *Gateway) statsFor(id string) *backendStats {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	st := gw.stats[id]
	if st == nil {
		st = newBackendStats()
		gw.stats[id] = st
	}
	return st
}

// dialBackend opens one incarnation's data and probe connections.
func (gw *Gateway) dialBackend(id, addr string) (*backend, error) {
	cl, err := wire.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: backend %s (%s): %w", id, addr, err)
	}
	pr, err := wire.Dial(addr)
	if err != nil {
		cl.Close()
		return nil, fmt.Errorf("cluster: backend %s (%s): probe: %w", id, addr, err)
	}
	// The data connection coalesces: all front sessions homed on this
	// backend funnel their frames through one flusher goroutine and one
	// vectored write per flush cycle. The probe connection stays plain — it
	// carries one ping at a time.
	cl.EnableCoalescing()
	stats := gw.statsFor(id)
	return &backend{id: id, addr: addr, inc: stats.incarnations.Add(1),
		stats: stats, cl: cl, pr: pr,
		sessions: make(map[*proxySession]struct{})}, nil
}

// Log returns the gateway's structured lifecycle event log (never nil); the
// admin plane serves its recent ring at /events.
func (gw *Gateway) Log() *obs.Logger { return gw.log }

// State reports a backend's lifecycle state ("" for an unknown ID).
func (gw *Gateway) State(id string) BackendState {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return gw.states[id]
}

// Ring exposes the placement ring (read-mostly: lookups and load).
func (gw *Gateway) Ring() *Ring { return gw.ring }

// backend returns a live gateway backend by ID (nil if unknown).
func (gw *Gateway) backend(id string) *backend {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return gw.backends[id]
}

// Serve accepts front connections on ln until Close. It always returns a
// non-nil error; after Close the error is net.ErrClosed.
func (gw *Gateway) Serve(ln net.Listener) error {
	gw.mu.Lock()
	if gw.closed {
		gw.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	gw.ln = ln
	gw.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		fc := &frontConn{gw: gw, c: c, r: wire.NewReader(c), w: wire.NewWriter(c), sessions: make(map[uint32]*proxySession)}
		gw.mu.Lock()
		if gw.closed {
			gw.mu.Unlock()
			c.Close()
			return net.ErrClosed
		}
		gw.conns[fc] = struct{}{}
		gw.wg.Add(1)
		gw.mu.Unlock()
		go func() {
			defer gw.wg.Done()
			fc.serve()
			gw.mu.Lock()
			delete(gw.conns, fc)
			gw.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (gw *Gateway) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return gw.Serve(ln)
}

// Addr returns the front listener address once Serve is running.
func (gw *Gateway) Addr() net.Addr {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	if gw.ln == nil {
		return nil
	}
	return gw.ln.Addr()
}

// Close stops the prober (waiting out any in-flight pings), the recovery
// loops, the listener and every front connection (whose teardown detaches
// their backend sessions), then drops the backend connections.
func (gw *Gateway) Close() error {
	gw.mu.Lock()
	if gw.closed {
		gw.mu.Unlock()
		return nil
	}
	gw.closed = true
	ln := gw.ln
	conns := make([]*frontConn, 0, len(gw.conns))
	for fc := range gw.conns {
		conns = append(conns, fc)
	}
	gw.mu.Unlock()
	close(gw.quit)
	<-gw.probeDone
	gw.probeWG.Wait()
	gw.recoverWG.Wait()
	// Drains poll gw.quit between sessions and between replay chunks, so an
	// in-flight migration aborts (unsealing its source) and Drain returns
	// before the backend connections it is speaking over are torn down.
	gw.drainWG.Wait()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, fc := range conns {
		fc.c.Close()
	}
	gw.wg.Wait()
	gw.closeBackends()
	return err
}

func (gw *Gateway) closeBackends() {
	gw.mu.Lock()
	backends := make([]*backend, 0, len(gw.backends))
	for _, be := range gw.backends {
		if be != nil {
			backends = append(backends, be)
		}
	}
	gw.mu.Unlock()
	for _, be := range backends {
		be.cl.Close()
		be.pr.Close()
	}
}

// probeLoop health-checks the live fleet on the configured interval, each
// backend over its dedicated probe connection. The sweep is concurrent: one
// probe per backend, launched together, so a single timing-out backend
// cannot delay any other backend's health check (the sequential sweep it
// replaces stalled the whole fleet for up to ProbeTimeout per sick
// backend). A backend whose previous probe is still in flight is skipped —
// at most one outstanding probe per incarnation. A failed or timed-out
// probe ejects the backend and re-homes its sessions.
func (gw *Gateway) probeLoop() {
	defer close(gw.probeDone)
	if gw.cfg.ProbeInterval < 0 {
		<-gw.quit
		return
	}
	ticker := time.NewTicker(gw.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-gw.quit:
			return
		case <-ticker.C:
		}
		gw.mu.Lock()
		backends := make([]*backend, 0, len(gw.backends))
		for _, be := range gw.backends {
			if be != nil {
				backends = append(backends, be)
			}
		}
		gw.mu.Unlock()
		for _, be := range backends {
			if be.isEjected() || !be.probing.CompareAndSwap(false, true) {
				continue
			}
			gw.probeWG.Add(1)
			go func(be *backend) {
				defer gw.probeWG.Done()
				defer be.probing.Store(false)
				if err := gw.probe(be); err != nil {
					select {
					case <-gw.quit: // shutting down; not a health verdict
					default:
						gw.log.Error("backend probe failed; ejecting",
							obs.F("backend", be.id), obs.F("addr", be.addr),
							obs.F("incarnation", be.inc), obs.F("state", string(StateEjected)),
							obs.F("err", err.Error()))
						gw.eject(be, nil)
					}
				}
			}(be)
		}
	}
}

// probe pings one backend, bounding the round trip by ProbeTimeout. The
// in-flight ping's lifetime is tied to the probe's: on timeout or gateway
// shutdown the probe client is closed, which unblocks the ping goroutine
// immediately and the probe waits for it to exit — repeated timeouts
// against a black-holed backend can never accumulate parked goroutines
// (closing the client is fine: a timed-out probe ejects the incarnation,
// and a shutdown closes every backend connection anyway).
func (gw *Gateway) probe(be *backend) error {
	done := make(chan error, 1)
	seq := be.stats.probeSeq.Add(1)
	start := time.Now()
	gw.probeWG.Add(1)
	go func() {
		defer gw.probeWG.Done()
		_, err := be.pr.Ping(seq)
		done <- err
	}()
	timer := time.NewTimer(gw.cfg.ProbeTimeout)
	defer timer.Stop()
	select {
	case err := <-done:
		if err == nil {
			be.stats.probes.Add(1)
			be.stats.probeRTT.ObserveSince(start)
		}
		return err
	case <-timer.C:
		be.pr.Close()
		<-done
		return fmt.Errorf("cluster: backend %s: probe timeout after %v", be.id, gw.cfg.ProbeTimeout)
	case <-gw.quit:
		be.pr.Close()
		<-done
		return fmt.Errorf("cluster: backend %s: probe aborted by shutdown", be.id)
	}
}

// eject removes a failed backend incarnation from the ring, closes its
// connections and re-homes every session it carried. Idempotent: the
// ejected flag admits exactly one caller per incarnation; every later call
// returns immediately. The except parameter, when non-nil, names a session
// the caller re-homes itself, because the caller already holds that
// session's lock and re-homing it here would deadlock.
//
// Lock ordering: ps.mu is always acquired before be.mu (the re-home and
// detach paths hold a session's lock while registering it on a backend),
// so a goroutine holding be.mu must never block on ps.mu. eject complies
// by snapshotting the session set under be.mu, releasing it, and only then
// locking the sessions one at a time — which is also why the except
// session, whose ps.mu the caller holds across this whole call, is safe to
// skip rather than a deadlock.
func (gw *Gateway) eject(be *backend, except *proxySession) {
	be.mu.Lock()
	if be.ejected {
		be.mu.Unlock()
		return
	}
	be.ejected = true
	be.mu.Unlock()
	be.stats.ejections.Add(1)
	gw.ring.Remove(be.id)
	// Retire the incarnation and, when recovery is on, hand its ID to a
	// recovery loop that will admit a fresh incarnation once the backend
	// answers pings again.
	gw.mu.Lock()
	if gw.backends[be.id] == be {
		gw.backends[be.id] = nil
		if gw.cfg.Readmit && !gw.closed {
			gw.states[be.id] = StateRecovering
			gw.startRecoveryLocked(be.id, be.addr)
		} else {
			gw.states[be.id] = StateEjected
		}
	}
	gw.mu.Unlock()
	// Closing the clients first makes every round trip still blocked on
	// this backend fail fast, so session locks free up for the re-home
	// sweep below.
	be.cl.Close()
	be.pr.Close()
	be.mu.Lock()
	sessions := make([]*proxySession, 0, len(be.sessions))
	for ps := range be.sessions {
		if ps != except {
			sessions = append(sessions, ps)
		}
	}
	be.sessions = make(map[*proxySession]struct{})
	be.mu.Unlock()
	gw.mu.Lock()
	state := gw.states[be.id]
	gw.mu.Unlock()
	gw.log.Warn("backend ejected; re-homing its sessions",
		obs.F("backend", be.id), obs.F("addr", be.addr), obs.F("incarnation", be.inc),
		obs.F("state", string(state)), obs.F("sessions", len(sessions)))
	for _, ps := range sessions {
		ps.mu.Lock()
		if ps.be == be && !ps.detached && ps.rehomeErr == nil {
			ps.rehomeErr = gw.rehomeLocked(ps)
		}
		ps.mu.Unlock()
	}
}

// rehomeLocked re-attaches a session whose backend died onto a healthy
// one. The caller holds ps.mu, and ps.be is the dead backend. Every tuple
// forwarded to the dead incarnation is charged to the session's lost
// counter — its NFA state died with the backend, so those tuples can never
// contribute to a detection again; the flush-ack path surfaces them as
// drops.
func (gw *Gateway) rehomeLocked(ps *proxySession) error {
	old := ps.be
	old.stats.rehomed.Add(1)
	old.stats.lost.Add(ps.forwarded)
	ps.lost.Add(ps.forwarded)
	ps.forwarded = 0
	gen := ps.gen.Add(1) // stale pushes from the dead incarnation are ignored
	ps.backendDropped.Store(0)
	for {
		id, ok := gw.ring.Acquire(ps.id)
		if !ok {
			return fmt.Errorf("cluster: session %q: no live backend to re-home onto", ps.id)
		}
		be := gw.backend(id)
		if be == nil || be.isEjected() {
			gw.ring.Release(id)
			continue
		}
		rs, err := be.cl.Attach(ps.id, wire.AttachOptions{
			Gestures:     ps.gestures,
			Discard:      true,
			OnDetections: ps.pushHook(gen),
		})
		if err == nil {
			ps.be, ps.rs = be, rs
			ps.beStats.Store(be.stats)
			be.addSession(ps)
			if !be.isEjected() {
				return nil
			}
			// The backend died between Attach and addSession, and the
			// eject sweep may have snapshotted its sessions before we
			// registered (it cannot reach us anyway — we hold ps.mu).
			// Nothing was forwarded yet, so just move on to the next
			// backend.
			be.dropSession(ps)
			gen = ps.gen.Add(1)
			continue
		}
		gw.ring.Release(id)
		var er *wire.ErrorReply
		if errors.As(err, &er) {
			// The backend is healthy but refused the session (e.g. a
			// duplicate ID from a split client) — unplaceable, not a fleet
			// problem.
			return fmt.Errorf("cluster: session %q: re-home refused: %w", ps.id, err)
		}
		gw.eject(be, ps)
	}
}

// recoverLoop re-dials one ejected (or initially-down) backend with capped
// exponential backoff until it is re-admitted, decommissioned
// (RemoveBackend closes cancel) or the gateway closes. One loop runs per
// backend in StateRecovering; eject starts it, and it ends by installing a
// fresh incarnation.
func (gw *Gateway) recoverLoop(id, addr string, cancel chan struct{}) {
	defer gw.recoverWG.Done()
	backoff := gw.cfg.ReadmitBackoff
	timer := time.NewTimer(backoff)
	defer timer.Stop()
	for {
		select {
		case <-gw.quit:
			return
		case <-cancel:
			return
		case <-timer.C:
		}
		if gw.tryReadmit(id, addr) {
			return
		}
		backoff *= 2
		if backoff > gw.cfg.ReadmitMaxBackoff {
			backoff = gw.cfg.ReadmitMaxBackoff
		}
		timer.Reset(backoff)
	}
}

// errClosing aborts a recovery attempt because the gateway is shutting
// down.
var errClosing = errors.New("cluster: gateway closing")

// redial verifies one connection to a recovering backend (wire.Redial:
// dial + ping within ProbeTimeout), abandoning the attempt the moment the
// gateway starts closing so Close never waits out a black-holed address.
// An abandoned attempt's connection is reaped by a short-lived goroutine
// bounded by the Redial timeout itself.
func (gw *Gateway) redial(addr string) (*wire.Client, error) {
	type result struct {
		cl  *wire.Client
		err error
	}
	done := make(chan result, 1)
	go func() {
		cl, err := wire.Redial(addr, gw.cfg.ProbeTimeout)
		done <- result{cl, err}
	}()
	select {
	case r := <-done:
		return r.cl, r.err
	case <-gw.quit:
		go func() {
			if r := <-done; r.cl != nil {
				r.cl.Close()
			}
		}()
		return nil, errClosing
	}
}

// tryReadmit attempts one recovery round trip: re-dial the data and probe
// connections (each verified live by a ping within ProbeTimeout — a bare
// TCP accept is not liveness), then install the fresh incarnation and
// return the backend to the ring. Existing sessions are untouched — no
// forced migration; the bounded-load ring's ceil(c·avg) cap steers new
// sessions toward the recovered, empty backend, a gradual re-balance. It
// returns true when the recovery loop should stop (re-admitted, or the
// gateway is closing).
func (gw *Gateway) tryReadmit(id, addr string) bool {
	cl, err := gw.redial(addr)
	if err != nil {
		return err == errClosing
	}
	pr, err := gw.redial(addr)
	if err != nil {
		cl.Close()
		return err == errClosing
	}
	cl.EnableCoalescing()
	stats := gw.statsFor(id)
	be := &backend{id: id, addr: addr, inc: stats.incarnations.Add(1),
		stats: stats, cl: cl, pr: pr,
		sessions: make(map[*proxySession]struct{})}
	// Ring entry and incarnation install must be one atomic step under
	// gw.mu: nothing can eject the new incarnation before it is published
	// (probes and sessions only discover it through gw.backends), so an
	// eject can never interleave between the two and leave the ID on the
	// ring with a nil incarnation behind it.
	gw.mu.Lock()
	if gw.closed {
		gw.mu.Unlock()
		cl.Close()
		pr.Close()
		return true
	}
	if st := gw.states[id]; st != StateRecovering {
		// RemoveBackend decommissioned the ID (or membership changed under
		// us) while the re-dial was in flight; drop the fresh connections
		// and end the loop.
		gw.mu.Unlock()
		cl.Close()
		pr.Close()
		return true
	}
	delete(gw.recoverCancel, id)
	if err := gw.ring.Add(id); err != nil {
		// Unreachable: the ID left the ring when its last incarnation was
		// ejected, and only one recovery loop per ID runs. Fail safe by
		// staying in recovery rather than serving with a corrupt ring.
		gw.mu.Unlock()
		cl.Close()
		pr.Close()
		gw.log.Error("backend re-admission ring entry failed; staying in recovery",
			obs.F("backend", id), obs.F("addr", addr), obs.F("incarnation", be.inc),
			obs.F("state", string(StateRecovering)), obs.F("err", err.Error()))
		return false
	}
	gw.backends[id] = be
	gw.states[id] = StateLive
	gw.mu.Unlock()
	be.stats.readmissions.Add(1)
	gw.log.Info("backend re-admitted",
		obs.F("backend", id), obs.F("addr", addr), obs.F("incarnation", be.inc),
		obs.F("state", string(StateLive)))
	return true
}

// Metrics aggregates the fleet: every live backend's serve.Metrics summed,
// plus the per-backend proxy counters (including ejected backends, marked
// unhealthy).
func (gw *Gateway) Metrics() serve.Metrics {
	gw.mu.Lock()
	order := append([]string(nil), gw.order...)
	byID := make(map[string]*backend, len(gw.backends))
	states := make(map[string]BackendState, len(gw.states))
	byStats := make(map[string]*backendStats, len(gw.stats))
	addrs := make(map[string]string, len(gw.addrs))
	for id, be := range gw.backends {
		byID[id] = be
	}
	for id, st := range gw.states {
		states[id] = st
	}
	for id, st := range gw.stats {
		byStats[id] = st
	}
	for id, a := range gw.addrs {
		addrs[id] = a
	}
	gw.mu.Unlock()
	var out serve.Metrics
	for _, id := range order {
		be, st, stats := byID[id], states[id], byStats[id]
		healthy := st == StateLive && be != nil && !be.isEjected()
		if healthy {
			if m, err := gw.fetchMetrics(be); err == nil {
				out.Sessions += m.Sessions
				out.Enqueued += m.Enqueued
				out.Processed += m.Processed
				out.Dropped += m.Dropped
				out.Detections += m.Detections
				out.QueueDepth += m.QueueDepth
				out.Shards = append(out.Shards, m.Shards...)
			} else {
				healthy = false
			}
		}
		proxied := 0
		if be != nil {
			be.mu.Lock()
			proxied = len(be.sessions)
			be.mu.Unlock()
		}
		out.Backends = append(out.Backends, serve.BackendMetrics{
			ID:           id,
			Addr:         addrs[id],
			Healthy:      healthy,
			State:        string(st),
			Sessions:     proxied,
			Batches:      stats.batches.Load(),
			Tuples:       stats.tuples.Load(),
			Detections:   stats.detections.Load(),
			Lost:         stats.lost.Load(),
			Rehomed:      stats.rehomed.Load(),
			Ejections:    stats.ejections.Load(),
			Readmissions: stats.readmissions.Load(),
		})
	}
	return out
}

// fetchMetrics snapshots one backend's metrics with the probe timeout, so
// a wedged backend renders as an unhealthy row instead of hanging the
// front connection that asked (Metrics runs on its reader goroutine). On
// timeout the fetch goroutine stays parked until the backend answers or is
// ejected — bounded by one per metrics request.
func (gw *Gateway) fetchMetrics(be *backend) (serve.Metrics, error) {
	type result struct {
		m   serve.Metrics
		err error
	}
	done := make(chan result, 1)
	go func() {
		m, err := be.cl.Metrics()
		done <- result{m, err}
	}()
	select {
	case r := <-done:
		return r.m, r.err
	case <-time.After(gw.cfg.ProbeTimeout):
		return serve.Metrics{}, fmt.Errorf("cluster: backend %s: metrics timeout after %v", be.id, gw.cfg.ProbeTimeout)
	}
}

// sessionTotal counts proxied sessions across all front connections.
func (gw *Gateway) sessionTotal() int {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	n := 0
	for fc := range gw.conns {
		fc.mu.Lock()
		n += len(fc.sessions)
		fc.mu.Unlock()
	}
	return n
}

// frontConn is one client connection to the gateway: a reader goroutine
// proxying frames synchronously (so backend-side backpressure propagates to
// the front socket) plus per-session relay goroutines pushing detections
// back.
type frontConn struct {
	gw *Gateway
	c  net.Conn
	r  *wire.Reader

	wmu sync.Mutex
	w   *wire.Writer

	mu         sync.Mutex
	sessions   map[uint32]*proxySession
	nextHandle uint32
}

// proxySession is one front session and its current backend binding.
type proxySession struct {
	fc       *frontConn
	front    uint32
	id       string
	gestures []string
	fields   int

	// mu serializes the data/control path against re-home: forwards, flush
	// and detach round trips, and backend re-binding all hold it.
	mu        sync.Mutex
	be        *backend
	rs        *wire.RemoteSession
	in        uint64 // tuples forwarded, all incarnations
	forwarded uint64 // tuples forwarded to the current incarnation
	detached  bool
	rehomeErr error // sticky re-home failure, surfaced on the next frame

	lost           atomic.Uint64 // tuples charged to dead incarnations
	backendDropped atomic.Uint64 // current incarnation's reported drops
	gen            atomic.Uint64 // incarnation generation; bumped on re-home

	// beStats shadows ps.be's per-ID stats block for the relay goroutine,
	// which attributes detection counts without holding ps.mu (a re-home
	// or migration may be rebinding ps.be concurrently). Updated at every
	// owner change, always under ps.mu.
	beStats atomic.Pointer[backendStats]

	pmu        sync.Mutex
	pending    []anduin.Detection
	detSent    atomic.Uint64
	detDropped atomic.Uint64
	notify     chan struct{}
	done       chan struct{}
	encBuf     []byte // detection encode scratch; guarded by fc.wmu
}

// dropTotal is the cumulative tuple-drop count the front client sees:
// failover losses plus the live incarnation's DropOldest evictions.
func (ps *proxySession) dropTotal() uint64 {
	return ps.lost.Load() + ps.backendDropped.Load()
}

// pushHook builds the OnDetections callback for one backend incarnation,
// pinning the generation so a stale push cannot corrupt state after a
// re-home.
func (ps *proxySession) pushHook(gen uint64) func(uint64, []anduin.Detection) {
	return func(dropped uint64, dets []anduin.Detection) { ps.relayPush(gen, dropped, dets) }
}

// relayPush runs on a backend client's read goroutine for every detection
// push frame of this session; it parks the detections for the relay
// goroutine, which owns the front socket writes. The detections are always
// relayed (they happened), but the drop counter is only taken from the
// live incarnation: a dead backend's read goroutine may still be mid-push
// during a re-home, and its cumulative count is already folded into lost.
func (ps *proxySession) relayPush(gen, dropped uint64, dets []anduin.Detection) {
	if ps.gen.Load() == gen {
		ps.backendDropped.Store(dropped)
	}
	ps.pmu.Lock()
	for len(ps.pending)+len(dets) > maxPendingDetections && len(ps.pending) > 0 {
		ps.pending = ps.pending[1:]
		ps.detDropped.Add(1)
	}
	ps.pending = append(ps.pending, dets...)
	ps.pmu.Unlock()
	select {
	case ps.notify <- struct{}{}:
	default:
	}
}

// serve runs the front connection's frame loop until the peer disconnects
// or a protocol violation occurs, then tears down every proxied session.
func (fc *frontConn) serve() {
	defer fc.teardown()
	for {
		f, err := fc.r.Next()
		if err != nil {
			return
		}
		if err := fc.handle(f); err != nil {
			fc.wmu.Lock()
			fc.w.WriteJSON(wire.FrameError, &wire.ErrorReply{Msg: err.Error()})
			fc.wmu.Unlock()
			return
		}
	}
}

// teardown detaches every proxied session from its backend (best effort —
// a dead backend's sessions are simply finalized) and releases ring slots.
func (fc *frontConn) teardown() {
	fc.c.Close()
	fc.mu.Lock()
	sessions := make([]*proxySession, 0, len(fc.sessions))
	for h, ps := range fc.sessions {
		sessions = append(sessions, ps)
		delete(fc.sessions, h)
	}
	fc.mu.Unlock()
	for _, ps := range sessions {
		ps.mu.Lock()
		if !ps.detached {
			ps.detached = true
			if ps.rs != nil {
				ps.rs.Detach()
				ps.be.dropSession(ps)
				// Only a live incarnation holds a ring slot: ejection
				// removed the backend's loads wholesale, and with
				// re-admission on, a stale Release here would debit the
				// fresh incarnation's load for a session it never carried.
				if !ps.be.isEjected() {
					fc.gw.ring.Release(ps.be.id)
				}
			}
			close(ps.done)
		}
		ps.mu.Unlock()
	}
}

// handle processes one front frame on the reader goroutine. Returning an
// error closes the connection; session-scoped failures are reported with
// FrameError instead.
func (fc *frontConn) handle(f wire.Frame) error {
	switch f.Type {
	case wire.FrameAttach:
		return fc.handleAttach(f.Payload)
	case wire.FrameBatch:
		return fc.handleBatch(f.Payload)
	case wire.FrameFlush:
		return fc.handleSessionOp(f.Payload, wire.FrameFlushOK, false)
	case wire.FrameDetach:
		return fc.handleSessionOp(f.Payload, wire.FrameDetachOK, true)
	case wire.FrameMetricsReq:
		m := fc.gw.Metrics()
		fc.wmu.Lock()
		defer fc.wmu.Unlock()
		return fc.w.WriteJSON(wire.FrameMetricsOK, m)
	case wire.FramePing:
		var ping wire.Ping
		if err := unmarshal(f.Payload, &ping); err != nil {
			return fmt.Errorf("ping: %w", err)
		}
		pong := wire.Pong{Seq: ping.Seq, Name: fc.gw.cfg.Name, Sessions: fc.gw.sessionTotal()}
		fc.wmu.Lock()
		defer fc.wmu.Unlock()
		return fc.w.WriteJSON(wire.FramePong, &pong)
	default:
		return fmt.Errorf("unexpected %s frame from client", f.Type)
	}
}

func (fc *frontConn) handleAttach(payload []byte) error {
	var req wire.AttachRequest
	if err := unmarshal(payload, &req); err != nil {
		return fmt.Errorf("attach: %w", err)
	}
	if req.Version != wire.ProtocolVersion {
		return fmt.Errorf("attach: protocol version %d, gateway speaks %d", req.Version, wire.ProtocolVersion)
	}
	ps := &proxySession{
		fc:       fc,
		id:       req.ID,
		gestures: req.Gestures,
		notify:   make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	var reply *wire.AttachReply
	for {
		id, ok := fc.gw.ring.Acquire(req.ID)
		if !ok {
			return fc.sessionError(0, fmt.Errorf("cluster: no live backends"))
		}
		be := fc.gw.backend(id)
		if be == nil || be.isEjected() {
			fc.gw.ring.Release(id)
			continue
		}
		rs, err := be.cl.Attach(req.ID, wire.AttachOptions{
			Gestures:     req.Gestures,
			Discard:      true,
			OnDetections: ps.pushHook(ps.gen.Load()),
		})
		if err != nil {
			fc.gw.ring.Release(id)
			var er *wire.ErrorReply
			if errors.As(err, &er) {
				// Backend refused (duplicate ID, unknown plan, …): a
				// session-scoped error; the connection survives.
				return fc.sessionError(0, err)
			}
			fc.gw.eject(be, nil)
			continue
		}
		ps.mu.Lock()
		ps.be, ps.rs = be, rs
		ps.beStats.Store(be.stats)
		ps.fields = rs.Fields()
		ps.mu.Unlock()
		be.addSession(ps)
		if be.isEjected() {
			// The backend died between Attach and addSession; the eject
			// sweep may have snapshotted its sessions before we registered,
			// so re-home ourselves (the sweep-vs-self race is settled by
			// ps.mu plus the ps.be check, exactly as in the sweep).
			ps.mu.Lock()
			if ps.be == be && ps.rehomeErr == nil {
				ps.rehomeErr = fc.gw.rehomeLocked(ps)
			}
			err := ps.rehomeErr
			ps.mu.Unlock()
			if err != nil {
				return fc.sessionError(0, err)
			}
		}
		reply = &wire.AttachReply{Fields: rs.Fields(), Plans: rs.Plans()}
		break
	}
	fc.mu.Lock()
	fc.nextHandle++
	ps.front = fc.nextHandle
	fc.sessions[ps.front] = ps
	fc.mu.Unlock()
	reply.Handle = ps.front
	go fc.relayLoop(ps)
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	return fc.w.WriteJSON(wire.FrameAttachOK, reply)
}

// Bounds on the handleBatch eject-and-retry loop. A flapping backend (dies
// under the write, is re-admitted as a fresh incarnation, dies again) used
// to spin this loop hot and without end; now each retry backs off
// exponentially and the batch fails the session after batchRetryLimit
// incarnations — a deterministic termination the flapping-backend test pins.
const (
	batchRetryLimit      = 8
	batchRetryBackoff    = time.Millisecond
	batchRetryBackoffMax = 50 * time.Millisecond
)

func (fc *frontConn) handleBatch(payload []byte) error {
	handle, count, fields, err := wire.BatchGeometry(payload)
	if err != nil {
		return err
	}
	ps := fc.session(handle)
	if ps == nil {
		return fmt.Errorf("batch for unknown session handle %d", handle)
	}
	if fields != ps.fields {
		return fmt.Errorf("session %q: batch carries %d-field tuples, schema expects %d", ps.id, fields, ps.fields)
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if err := ps.failedLocked(); err != nil {
		return err
	}
	// Only trace-sampled batches pay for forward timing; the flag check is
	// a byte mask on the raw payload, which rides through ProxyBatch
	// untouched (it only patches the handle bytes).
	traced := wire.BatchTraced(payload)
	// Take ownership of the reader's pooled payload buffer: the batch was
	// read once from the front socket and is handed to the backend
	// connection in place — no intermediate copy. On success the backend's
	// coalescing flusher returns the buffer to the frame pool after the
	// vectored write; until then (and on every error path below) this
	// function owns it.
	fc.r.Detach()
	backoff := batchRetryBackoff
	for attempt := 1; ; attempt++ {
		// The hand-off blocks when the backend connection's coalescer is
		// full — that is serve.Block's backpressure, relayed one hop: this
		// reader goroutine stalls, the front socket fills, TCP paces the
		// remote producer. For traced batches the forward histogram times
		// exactly that hand-off (queue admission), the gateway's share of
		// the pipeline.
		var start time.Time
		if traced {
			start = time.Now()
		}
		if _, err := ps.be.cl.ProxyBatchOwned(ps.rs.Handle(), payload); err == nil {
			if traced {
				ps.be.stats.forward.ObserveSince(start)
			}
			ps.in += uint64(count)
			ps.forwarded += uint64(count)
			ps.be.stats.batches.Add(1)
			ps.be.stats.tuples.Add(uint64(count))
			return nil
		}
		// The backend died under the write: eject it, re-home this session
		// and retry the batch on the new owner — the tuples of THIS batch
		// were never admitted anywhere (a failed ProxyBatchOwned leaves
		// ownership with us), so forwarding them again loses nothing and
		// drops nothing.
		fc.gw.eject(ps.be, ps)
		if ps.be.isEjected() && ps.rehomeErr == nil {
			if attempt >= batchRetryLimit {
				//lint:ignore hotpathalloc sticky give-up after batchRetryLimit backend deaths; runs at most once per session, never per frame
				ps.rehomeErr = fmt.Errorf("cluster: session %q: batch failed on %d backend incarnations, giving up", ps.id, attempt)
			} else {
				ps.rehomeErr = fc.gw.rehomeLocked(ps)
			}
		}
		if err := ps.failedLocked(); err != nil {
			wire.PutFrameBuf(payload)
			return err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > batchRetryBackoffMax {
			backoff = batchRetryBackoffMax
		}
	}
}

// failedLocked reports a sticky session failure (an unplaceable re-home).
// Callers hold ps.mu.
func (ps *proxySession) failedLocked() error {
	if ps.rehomeErr != nil {
		return fmt.Errorf("session %q: %w", ps.id, ps.rehomeErr)
	}
	if ps.detached {
		return fmt.Errorf("session %q is detached", ps.id)
	}
	return nil
}

// handleSessionOp implements flush and detach: round-trip to the owning
// backend (which guarantees every prior tuple's detection was pushed to the
// gateway first), then drain the relay buffer and acknowledge with
// gateway-adjusted counters — all under the front write lock, so the ack
// can never overtake a detection.
func (fc *frontConn) handleSessionOp(payload []byte, ack wire.FrameType, detach bool) error {
	var ref wire.SessionRef
	if err := unmarshal(payload, &ref); err != nil {
		return fmt.Errorf("%s: %w", ack, err)
	}
	ps := fc.session(ref.Handle)
	if ps == nil {
		return fc.sessionError(ref.Handle, fmt.Errorf("cluster: no session with handle %d", ref.Handle))
	}
	ps.mu.Lock()
	if err := ps.failedLocked(); err != nil {
		ps.mu.Unlock()
		return fc.sessionError(ref.Handle, err)
	}
	var bc wire.SessionCounters
	var err error
	for {
		if detach {
			bc, err = ps.rs.Detach()
		} else {
			bc, err = ps.rs.Flush()
		}
		if err == nil {
			break
		}
		var er *wire.ErrorReply
		if errors.As(err, &er) {
			ps.mu.Unlock()
			return fc.sessionError(ref.Handle, err)
		}
		// Backend died under the round trip. For a flush: eject, re-home
		// and flush the fresh (empty) session — the lost tuples are now in
		// the drop accounting. For a detach: the session is going away
		// anyway; finalize locally instead of re-homing a corpse.
		fc.gw.eject(ps.be, ps)
		if detach {
			ps.lost.Add(ps.forwarded)
			ps.be.stats.lost.Add(ps.forwarded)
			ps.forwarded = 0
			ps.backendDropped.Store(0)
			bc = wire.SessionCounters{}
			break
		}
		if ps.be.isEjected() && ps.rehomeErr == nil {
			ps.rehomeErr = fc.gw.rehomeLocked(ps)
		}
		if err := ps.failedLocked(); err != nil {
			ps.mu.Unlock()
			return fc.sessionError(ref.Handle, err)
		}
	}
	ps.backendDropped.Store(bc.Dropped)
	lost := ps.lost.Load()
	counters := wire.SessionCounters{
		Handle:            ps.front,
		In:                ps.in,
		Out:               lost + bc.Out,
		Dropped:           lost + bc.Dropped,
		DetectionsDropped: bc.DetectionsDropped + ps.detDropped.Load(),
	}
	if detach {
		ps.detached = true
		if !ps.be.isEjected() {
			ps.be.dropSession(ps)
			fc.gw.ring.Release(ps.be.id)
		}
		close(ps.done)
	}
	ps.mu.Unlock()
	if detach {
		fc.mu.Lock()
		delete(fc.sessions, ps.front)
		fc.mu.Unlock()
	}
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	if err := fc.relayDetectionsLocked(ps); err != nil {
		return err
	}
	counters.Detections = ps.detSent.Load()
	return fc.w.WriteJSON(ack, &counters)
}

func (fc *frontConn) session(handle uint32) *proxySession {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.sessions[handle]
}

// sessionError reports a session-scoped failure without closing the front
// connection.
func (fc *frontConn) sessionError(handle uint32, err error) error {
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	return fc.w.WriteJSON(wire.FrameError, &wire.ErrorReply{Handle: handle, Msg: err.Error()})
}

// relayLoop streams parked detections to the front client until the
// session detaches or the connection dies.
func (fc *frontConn) relayLoop(ps *proxySession) {
	for {
		select {
		case <-ps.notify:
			fc.wmu.Lock()
			err := fc.relayDetectionsLocked(ps)
			fc.wmu.Unlock()
			if err != nil {
				fc.c.Close() // wake the reader, which tears down
				return
			}
		case <-ps.done:
			return
		}
	}
}

// relayDetectionsLocked drains the session's parked detections into
// FrameDetections frames addressed with the front handle and the
// gateway-adjusted drop count. Callers hold fc.wmu.
func (fc *frontConn) relayDetectionsLocked(ps *proxySession) error {
	for {
		ps.pmu.Lock()
		pending := ps.pending
		ps.pending = nil
		ps.pmu.Unlock()
		if len(pending) == 0 {
			return nil
		}
		dropped := ps.dropTotal()
		for len(pending) > 0 {
			n := len(pending)
			if n > wire.MaxDetections {
				n = wire.MaxDetections
			}
			buf, err := wire.AppendDetections(ps.encBuf[:0], ps.front, dropped, pending[:n])
			if err != nil {
				return err
			}
			ps.encBuf = buf[:0]
			if err := fc.w.WriteFrame(wire.FrameDetections, buf); err != nil {
				return err
			}
			ps.detSent.Add(uint64(n))
			ps.beStats.Load().detections.Add(uint64(n))
			pending = pending[n:]
		}
	}
}

// unmarshal decodes a JSON control payload.
func unmarshal(payload []byte, v any) error {
	return json.Unmarshal(payload, v)
}
