package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/serve"
	"gesturecep/internal/wire"
)

// maxPendingDetections bounds a proxied session's detection relay buffer,
// mirroring the wire server's own push buffer: past the cap the oldest
// pending detection is evicted and counted.
const maxPendingDetections = 65536

// backend is the gateway's live state for one fleet member: a shared data
// connection carrying every proxied session homed there, a dedicated probe
// connection (so a health check never queues behind a long flush), and the
// per-backend counters Metrics reports.
type backend struct {
	id   string
	addr string
	cl   *wire.Client // data + control for proxied sessions
	pr   *wire.Client // health probes only

	mu       sync.Mutex
	sessions map[*proxySession]struct{}
	ejected  bool

	batches    atomic.Uint64
	tuples     atomic.Uint64
	detections atomic.Uint64
	lost       atomic.Uint64
	rehomed    atomic.Uint64
	probeSeq   atomic.Uint64
}

func (be *backend) isEjected() bool {
	be.mu.Lock()
	defer be.mu.Unlock()
	return be.ejected
}

func (be *backend) addSession(ps *proxySession) {
	be.mu.Lock()
	be.sessions[ps] = struct{}{}
	be.mu.Unlock()
}

func (be *backend) dropSession(ps *proxySession) {
	be.mu.Lock()
	delete(be.sessions, ps)
	be.mu.Unlock()
}

// Gateway terminates the wire protocol in front of a backend fleet. Remote
// clients speak to it exactly as they would to a single gestured process —
// attach, batch, flush, detach, metrics, ping — while each session's frames
// are proxied to the backend the ring assigns it.
type Gateway struct {
	cfg  Config
	ring *Ring

	mu       sync.Mutex
	backends map[string]*backend
	order    []string // backend IDs in configuration order, for metrics
	conns    map[*frontConn]struct{}
	ln       net.Listener
	closed   bool

	wg        sync.WaitGroup // front connection handlers
	probeQuit chan struct{}
	probeDone chan struct{}
}

// NewGateway dials every configured backend (data + probe connections) and
// builds the ring. It fails fast if any backend is unreachable: a fleet
// that starts degraded is a configuration error, whereas a backend lost
// later is a runtime event the gateway survives by ejection.
func NewGateway(cfg Config) (*Gateway, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	gw := &Gateway{
		cfg:       cfg,
		ring:      NewRing(cfg.VNodes, cfg.LoadFactor),
		backends:  make(map[string]*backend),
		conns:     make(map[*frontConn]struct{}),
		probeQuit: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	for _, b := range cfg.Backends {
		cl, err := wire.Dial(b.Addr)
		if err != nil {
			gw.closeBackends()
			return nil, fmt.Errorf("cluster: backend %s (%s): %w", b.ID, b.Addr, err)
		}
		pr, err := wire.Dial(b.Addr)
		if err != nil {
			cl.Close()
			gw.closeBackends()
			return nil, fmt.Errorf("cluster: backend %s (%s): probe: %w", b.ID, b.Addr, err)
		}
		be := &backend{id: b.ID, addr: b.Addr, cl: cl, pr: pr, sessions: make(map[*proxySession]struct{})}
		gw.backends[b.ID] = be
		gw.order = append(gw.order, b.ID)
		if err := gw.ring.Add(b.ID); err != nil {
			gw.closeBackends()
			return nil, err
		}
	}
	go gw.probeLoop()
	return gw, nil
}

// Ring exposes the placement ring (read-mostly: lookups and load).
func (gw *Gateway) Ring() *Ring { return gw.ring }

// backend returns a live gateway backend by ID (nil if unknown).
func (gw *Gateway) backend(id string) *backend {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	return gw.backends[id]
}

// Serve accepts front connections on ln until Close. It always returns a
// non-nil error; after Close the error is net.ErrClosed.
func (gw *Gateway) Serve(ln net.Listener) error {
	gw.mu.Lock()
	if gw.closed {
		gw.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	gw.ln = ln
	gw.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		fc := &frontConn{gw: gw, c: c, r: wire.NewReader(c), w: wire.NewWriter(c), sessions: make(map[uint32]*proxySession)}
		gw.mu.Lock()
		if gw.closed {
			gw.mu.Unlock()
			c.Close()
			return net.ErrClosed
		}
		gw.conns[fc] = struct{}{}
		gw.wg.Add(1)
		gw.mu.Unlock()
		go func() {
			defer gw.wg.Done()
			fc.serve()
			gw.mu.Lock()
			delete(gw.conns, fc)
			gw.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (gw *Gateway) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return gw.Serve(ln)
}

// Addr returns the front listener address once Serve is running.
func (gw *Gateway) Addr() net.Addr {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	if gw.ln == nil {
		return nil
	}
	return gw.ln.Addr()
}

// Close stops the prober, the listener and every front connection (whose
// teardown detaches their backend sessions), then drops the backend
// connections.
func (gw *Gateway) Close() error {
	gw.mu.Lock()
	if gw.closed {
		gw.mu.Unlock()
		return nil
	}
	gw.closed = true
	ln := gw.ln
	conns := make([]*frontConn, 0, len(gw.conns))
	for fc := range gw.conns {
		conns = append(conns, fc)
	}
	gw.mu.Unlock()
	close(gw.probeQuit)
	<-gw.probeDone
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, fc := range conns {
		fc.c.Close()
	}
	gw.wg.Wait()
	gw.closeBackends()
	return err
}

func (gw *Gateway) closeBackends() {
	gw.mu.Lock()
	backends := make([]*backend, 0, len(gw.backends))
	for _, be := range gw.backends {
		backends = append(backends, be)
	}
	gw.mu.Unlock()
	for _, be := range backends {
		if be.cl != nil {
			be.cl.Close()
		}
		if be.pr != nil {
			be.pr.Close()
		}
	}
}

// probeLoop health-checks every live backend on the configured interval
// over its dedicated probe connection; a failed or timed-out probe ejects
// the backend and re-homes its sessions.
func (gw *Gateway) probeLoop() {
	defer close(gw.probeDone)
	if gw.cfg.ProbeInterval < 0 {
		<-gw.probeQuit
		return
	}
	ticker := time.NewTicker(gw.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-gw.probeQuit:
			return
		case <-ticker.C:
		}
		gw.mu.Lock()
		backends := make([]*backend, 0, len(gw.backends))
		for _, be := range gw.backends {
			backends = append(backends, be)
		}
		gw.mu.Unlock()
		for _, be := range backends {
			if be.isEjected() {
				continue
			}
			if err := gw.probe(be); err != nil {
				gw.eject(be, nil)
			}
		}
	}
}

// probe pings one backend with a timeout. The ping goroutine is unblocked
// on timeout by the ejection that follows (eject closes the probe client).
func (gw *Gateway) probe(be *backend) error {
	done := make(chan error, 1)
	seq := be.probeSeq.Add(1)
	go func() {
		_, err := be.pr.Ping(seq)
		done <- err
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(gw.cfg.ProbeTimeout):
		return fmt.Errorf("cluster: backend %s: probe timeout after %v", be.id, gw.cfg.ProbeTimeout)
	}
}

// eject removes a failed backend from the ring, closes its connections and
// re-homes every session it carried. Idempotent. except, when non-nil,
// names a session the caller re-homes itself (it already holds that
// session's lock — re-homing it here would deadlock).
func (gw *Gateway) eject(be *backend, except *proxySession) {
	be.mu.Lock()
	if be.ejected {
		be.mu.Unlock()
		return
	}
	be.ejected = true
	be.mu.Unlock()
	gw.ring.Remove(be.id)
	// Closing the clients first makes every round trip still blocked on
	// this backend fail fast, so session locks free up for the re-home
	// sweep below.
	be.cl.Close()
	be.pr.Close()
	be.mu.Lock()
	sessions := make([]*proxySession, 0, len(be.sessions))
	for ps := range be.sessions {
		if ps != except {
			sessions = append(sessions, ps)
		}
	}
	be.sessions = make(map[*proxySession]struct{})
	be.mu.Unlock()
	for _, ps := range sessions {
		ps.mu.Lock()
		if ps.be == be && !ps.detached && ps.rehomeErr == nil {
			ps.rehomeErr = gw.rehomeLocked(ps)
		}
		ps.mu.Unlock()
	}
}

// rehomeLocked re-attaches a session whose backend died onto a healthy
// one. The caller holds ps.mu, and ps.be is the dead backend. Every tuple
// forwarded to the dead incarnation is charged to the session's lost
// counter — its NFA state died with the backend, so those tuples can never
// contribute to a detection again; the flush-ack path surfaces them as
// drops.
func (gw *Gateway) rehomeLocked(ps *proxySession) error {
	old := ps.be
	old.rehomed.Add(1)
	old.lost.Add(ps.forwarded)
	ps.lost.Add(ps.forwarded)
	ps.forwarded = 0
	gen := ps.gen.Add(1) // stale pushes from the dead incarnation are ignored
	ps.backendDropped.Store(0)
	for {
		id, ok := gw.ring.Acquire(ps.id)
		if !ok {
			return fmt.Errorf("cluster: session %q: no live backend to re-home onto", ps.id)
		}
		be := gw.backend(id)
		if be == nil || be.isEjected() {
			gw.ring.Release(id)
			continue
		}
		rs, err := be.cl.Attach(ps.id, wire.AttachOptions{
			Gestures:     ps.gestures,
			Discard:      true,
			OnDetections: ps.pushHook(gen),
		})
		if err == nil {
			ps.be, ps.rs = be, rs
			be.addSession(ps)
			if !be.isEjected() {
				return nil
			}
			// The backend died between Attach and addSession, and the
			// eject sweep may have snapshotted its sessions before we
			// registered (it cannot reach us anyway — we hold ps.mu).
			// Nothing was forwarded yet, so just move on to the next
			// backend.
			be.dropSession(ps)
			gen = ps.gen.Add(1)
			continue
		}
		gw.ring.Release(id)
		var er *wire.ErrorReply
		if errors.As(err, &er) {
			// The backend is healthy but refused the session (e.g. a
			// duplicate ID from a split client) — unplaceable, not a fleet
			// problem.
			return fmt.Errorf("cluster: session %q: re-home refused: %w", ps.id, err)
		}
		gw.eject(be, ps)
	}
}

// Metrics aggregates the fleet: every live backend's serve.Metrics summed,
// plus the per-backend proxy counters (including ejected backends, marked
// unhealthy).
func (gw *Gateway) Metrics() serve.Metrics {
	gw.mu.Lock()
	order := append([]string(nil), gw.order...)
	byID := make(map[string]*backend, len(gw.backends))
	for id, be := range gw.backends {
		byID[id] = be
	}
	gw.mu.Unlock()
	var out serve.Metrics
	for _, id := range order {
		be := byID[id]
		healthy := !be.isEjected()
		if healthy {
			if m, err := gw.fetchMetrics(be); err == nil {
				out.Sessions += m.Sessions
				out.Enqueued += m.Enqueued
				out.Processed += m.Processed
				out.Dropped += m.Dropped
				out.Detections += m.Detections
				out.QueueDepth += m.QueueDepth
				out.Shards = append(out.Shards, m.Shards...)
			} else {
				healthy = false
			}
		}
		be.mu.Lock()
		proxied := len(be.sessions)
		be.mu.Unlock()
		out.Backends = append(out.Backends, serve.BackendMetrics{
			ID:         be.id,
			Addr:       be.addr,
			Healthy:    healthy,
			Sessions:   proxied,
			Batches:    be.batches.Load(),
			Tuples:     be.tuples.Load(),
			Detections: be.detections.Load(),
			Lost:       be.lost.Load(),
			Rehomed:    be.rehomed.Load(),
		})
	}
	return out
}

// fetchMetrics snapshots one backend's metrics with the probe timeout, so
// a wedged backend renders as an unhealthy row instead of hanging the
// front connection that asked (Metrics runs on its reader goroutine). On
// timeout the fetch goroutine stays parked until the backend answers or is
// ejected — bounded by one per metrics request.
func (gw *Gateway) fetchMetrics(be *backend) (serve.Metrics, error) {
	type result struct {
		m   serve.Metrics
		err error
	}
	done := make(chan result, 1)
	go func() {
		m, err := be.cl.Metrics()
		done <- result{m, err}
	}()
	select {
	case r := <-done:
		return r.m, r.err
	case <-time.After(gw.cfg.ProbeTimeout):
		return serve.Metrics{}, fmt.Errorf("cluster: backend %s: metrics timeout after %v", be.id, gw.cfg.ProbeTimeout)
	}
}

// sessionTotal counts proxied sessions across all front connections.
func (gw *Gateway) sessionTotal() int {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	n := 0
	for fc := range gw.conns {
		fc.mu.Lock()
		n += len(fc.sessions)
		fc.mu.Unlock()
	}
	return n
}

// frontConn is one client connection to the gateway: a reader goroutine
// proxying frames synchronously (so backend-side backpressure propagates to
// the front socket) plus per-session relay goroutines pushing detections
// back.
type frontConn struct {
	gw *Gateway
	c  net.Conn
	r  *wire.Reader

	wmu sync.Mutex
	w   *wire.Writer

	mu         sync.Mutex
	sessions   map[uint32]*proxySession
	nextHandle uint32
}

// proxySession is one front session and its current backend binding.
type proxySession struct {
	fc       *frontConn
	front    uint32
	id       string
	gestures []string
	fields   int

	// mu serializes the data/control path against re-home: forwards, flush
	// and detach round trips, and backend re-binding all hold it.
	mu        sync.Mutex
	be        *backend
	rs        *wire.RemoteSession
	in        uint64 // tuples forwarded, all incarnations
	forwarded uint64 // tuples forwarded to the current incarnation
	detached  bool
	rehomeErr error // sticky re-home failure, surfaced on the next frame

	lost           atomic.Uint64 // tuples charged to dead incarnations
	backendDropped atomic.Uint64 // current incarnation's reported drops
	gen            atomic.Uint64 // incarnation generation; bumped on re-home

	pmu        sync.Mutex
	pending    []anduin.Detection
	detSent    atomic.Uint64
	detDropped atomic.Uint64
	notify     chan struct{}
	done       chan struct{}
	encBuf     []byte // detection encode scratch; guarded by fc.wmu
}

// dropTotal is the cumulative tuple-drop count the front client sees:
// failover losses plus the live incarnation's DropOldest evictions.
func (ps *proxySession) dropTotal() uint64 {
	return ps.lost.Load() + ps.backendDropped.Load()
}

// pushHook builds the OnDetections callback for one backend incarnation,
// pinning the generation so a stale push cannot corrupt state after a
// re-home.
func (ps *proxySession) pushHook(gen uint64) func(uint64, []anduin.Detection) {
	return func(dropped uint64, dets []anduin.Detection) { ps.relayPush(gen, dropped, dets) }
}

// relayPush runs on a backend client's read goroutine for every detection
// push frame of this session; it parks the detections for the relay
// goroutine, which owns the front socket writes. The detections are always
// relayed (they happened), but the drop counter is only taken from the
// live incarnation: a dead backend's read goroutine may still be mid-push
// during a re-home, and its cumulative count is already folded into lost.
func (ps *proxySession) relayPush(gen, dropped uint64, dets []anduin.Detection) {
	if ps.gen.Load() == gen {
		ps.backendDropped.Store(dropped)
	}
	ps.pmu.Lock()
	for len(ps.pending)+len(dets) > maxPendingDetections && len(ps.pending) > 0 {
		ps.pending = ps.pending[1:]
		ps.detDropped.Add(1)
	}
	ps.pending = append(ps.pending, dets...)
	ps.pmu.Unlock()
	select {
	case ps.notify <- struct{}{}:
	default:
	}
}

// serve runs the front connection's frame loop until the peer disconnects
// or a protocol violation occurs, then tears down every proxied session.
func (fc *frontConn) serve() {
	defer fc.teardown()
	for {
		f, err := fc.r.Next()
		if err != nil {
			return
		}
		if err := fc.handle(f); err != nil {
			fc.wmu.Lock()
			fc.w.WriteJSON(wire.FrameError, &wire.ErrorReply{Msg: err.Error()})
			fc.wmu.Unlock()
			return
		}
	}
}

// teardown detaches every proxied session from its backend (best effort —
// a dead backend's sessions are simply finalized) and releases ring slots.
func (fc *frontConn) teardown() {
	fc.c.Close()
	fc.mu.Lock()
	sessions := make([]*proxySession, 0, len(fc.sessions))
	for h, ps := range fc.sessions {
		sessions = append(sessions, ps)
		delete(fc.sessions, h)
	}
	fc.mu.Unlock()
	for _, ps := range sessions {
		ps.mu.Lock()
		if !ps.detached {
			ps.detached = true
			if ps.rs != nil {
				ps.rs.Detach()
				ps.be.dropSession(ps)
				fc.gw.ring.Release(ps.be.id)
			}
			close(ps.done)
		}
		ps.mu.Unlock()
	}
}

// handle processes one front frame on the reader goroutine. Returning an
// error closes the connection; session-scoped failures are reported with
// FrameError instead.
func (fc *frontConn) handle(f wire.Frame) error {
	switch f.Type {
	case wire.FrameAttach:
		return fc.handleAttach(f.Payload)
	case wire.FrameBatch:
		return fc.handleBatch(f.Payload)
	case wire.FrameFlush:
		return fc.handleSessionOp(f.Payload, wire.FrameFlushOK, false)
	case wire.FrameDetach:
		return fc.handleSessionOp(f.Payload, wire.FrameDetachOK, true)
	case wire.FrameMetricsReq:
		m := fc.gw.Metrics()
		fc.wmu.Lock()
		defer fc.wmu.Unlock()
		return fc.w.WriteJSON(wire.FrameMetricsOK, m)
	case wire.FramePing:
		var ping wire.Ping
		if err := unmarshal(f.Payload, &ping); err != nil {
			return fmt.Errorf("ping: %w", err)
		}
		pong := wire.Pong{Seq: ping.Seq, Name: fc.gw.cfg.Name, Sessions: fc.gw.sessionTotal()}
		fc.wmu.Lock()
		defer fc.wmu.Unlock()
		return fc.w.WriteJSON(wire.FramePong, &pong)
	default:
		return fmt.Errorf("unexpected %s frame from client", f.Type)
	}
}

func (fc *frontConn) handleAttach(payload []byte) error {
	var req wire.AttachRequest
	if err := unmarshal(payload, &req); err != nil {
		return fmt.Errorf("attach: %w", err)
	}
	if req.Version != wire.ProtocolVersion {
		return fmt.Errorf("attach: protocol version %d, gateway speaks %d", req.Version, wire.ProtocolVersion)
	}
	ps := &proxySession{
		fc:       fc,
		id:       req.ID,
		gestures: req.Gestures,
		notify:   make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	var reply *wire.AttachReply
	for {
		id, ok := fc.gw.ring.Acquire(req.ID)
		if !ok {
			return fc.sessionError(0, fmt.Errorf("cluster: no live backends"))
		}
		be := fc.gw.backend(id)
		if be == nil || be.isEjected() {
			fc.gw.ring.Release(id)
			continue
		}
		rs, err := be.cl.Attach(req.ID, wire.AttachOptions{
			Gestures:     req.Gestures,
			Discard:      true,
			OnDetections: ps.pushHook(ps.gen.Load()),
		})
		if err != nil {
			fc.gw.ring.Release(id)
			var er *wire.ErrorReply
			if errors.As(err, &er) {
				// Backend refused (duplicate ID, unknown plan, …): a
				// session-scoped error; the connection survives.
				return fc.sessionError(0, err)
			}
			fc.gw.eject(be, nil)
			continue
		}
		ps.mu.Lock()
		ps.be, ps.rs = be, rs
		ps.fields = rs.Fields()
		ps.mu.Unlock()
		be.addSession(ps)
		if be.isEjected() {
			// The backend died between Attach and addSession; the eject
			// sweep may have snapshotted its sessions before we registered,
			// so re-home ourselves (the sweep-vs-self race is settled by
			// ps.mu plus the ps.be check, exactly as in the sweep).
			ps.mu.Lock()
			if ps.be == be && ps.rehomeErr == nil {
				ps.rehomeErr = fc.gw.rehomeLocked(ps)
			}
			err := ps.rehomeErr
			ps.mu.Unlock()
			if err != nil {
				return fc.sessionError(0, err)
			}
		}
		reply = &wire.AttachReply{Fields: rs.Fields(), Plans: rs.Plans()}
		break
	}
	fc.mu.Lock()
	fc.nextHandle++
	ps.front = fc.nextHandle
	fc.sessions[ps.front] = ps
	fc.mu.Unlock()
	reply.Handle = ps.front
	go fc.relayLoop(ps)
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	return fc.w.WriteJSON(wire.FrameAttachOK, reply)
}

func (fc *frontConn) handleBatch(payload []byte) error {
	handle, count, fields, err := wire.BatchGeometry(payload)
	if err != nil {
		return err
	}
	ps := fc.session(handle)
	if ps == nil {
		return fmt.Errorf("batch for unknown session handle %d", handle)
	}
	if fields != ps.fields {
		return fmt.Errorf("session %q: batch carries %d-field tuples, schema expects %d", ps.id, fields, ps.fields)
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if err := ps.failedLocked(); err != nil {
		return err
	}
	for {
		// The forward write blocks when the backend connection's socket
		// fills — that is serve.Block's backpressure, relayed one hop: this
		// reader goroutine stalls, the front socket fills, TCP paces the
		// remote producer.
		if _, err := ps.be.cl.ProxyBatch(ps.rs.Handle(), payload); err == nil {
			ps.in += uint64(count)
			ps.forwarded += uint64(count)
			ps.be.batches.Add(1)
			ps.be.tuples.Add(uint64(count))
			return nil
		}
		// The backend died under the write: eject it, re-home this session
		// and retry the batch on the new owner — the tuples of THIS batch
		// were never admitted anywhere, so forwarding them again loses
		// nothing and drops nothing.
		fc.gw.eject(ps.be, ps)
		if ps.be.isEjected() && ps.rehomeErr == nil {
			ps.rehomeErr = fc.gw.rehomeLocked(ps)
		}
		if err := ps.failedLocked(); err != nil {
			return err
		}
	}
}

// failedLocked reports a sticky session failure (an unplaceable re-home).
// Callers hold ps.mu.
func (ps *proxySession) failedLocked() error {
	if ps.rehomeErr != nil {
		return fmt.Errorf("session %q: %w", ps.id, ps.rehomeErr)
	}
	if ps.detached {
		return fmt.Errorf("session %q is detached", ps.id)
	}
	return nil
}

// handleSessionOp implements flush and detach: round-trip to the owning
// backend (which guarantees every prior tuple's detection was pushed to the
// gateway first), then drain the relay buffer and acknowledge with
// gateway-adjusted counters — all under the front write lock, so the ack
// can never overtake a detection.
func (fc *frontConn) handleSessionOp(payload []byte, ack wire.FrameType, detach bool) error {
	var ref wire.SessionRef
	if err := unmarshal(payload, &ref); err != nil {
		return fmt.Errorf("%s: %w", ack, err)
	}
	ps := fc.session(ref.Handle)
	if ps == nil {
		return fc.sessionError(ref.Handle, fmt.Errorf("cluster: no session with handle %d", ref.Handle))
	}
	ps.mu.Lock()
	if err := ps.failedLocked(); err != nil {
		ps.mu.Unlock()
		return fc.sessionError(ref.Handle, err)
	}
	var bc wire.SessionCounters
	var err error
	for {
		if detach {
			bc, err = ps.rs.Detach()
		} else {
			bc, err = ps.rs.Flush()
		}
		if err == nil {
			break
		}
		var er *wire.ErrorReply
		if errors.As(err, &er) {
			ps.mu.Unlock()
			return fc.sessionError(ref.Handle, err)
		}
		// Backend died under the round trip. For a flush: eject, re-home
		// and flush the fresh (empty) session — the lost tuples are now in
		// the drop accounting. For a detach: the session is going away
		// anyway; finalize locally instead of re-homing a corpse.
		fc.gw.eject(ps.be, ps)
		if detach {
			ps.lost.Add(ps.forwarded)
			ps.be.lost.Add(ps.forwarded)
			ps.forwarded = 0
			ps.backendDropped.Store(0)
			bc = wire.SessionCounters{}
			break
		}
		if ps.be.isEjected() && ps.rehomeErr == nil {
			ps.rehomeErr = fc.gw.rehomeLocked(ps)
		}
		if err := ps.failedLocked(); err != nil {
			ps.mu.Unlock()
			return fc.sessionError(ref.Handle, err)
		}
	}
	ps.backendDropped.Store(bc.Dropped)
	lost := ps.lost.Load()
	counters := wire.SessionCounters{
		Handle:            ps.front,
		In:                ps.in,
		Out:               lost + bc.Out,
		Dropped:           lost + bc.Dropped,
		DetectionsDropped: bc.DetectionsDropped + ps.detDropped.Load(),
	}
	if detach {
		ps.detached = true
		if !ps.be.isEjected() {
			ps.be.dropSession(ps)
			fc.gw.ring.Release(ps.be.id)
		}
		close(ps.done)
	}
	ps.mu.Unlock()
	if detach {
		fc.mu.Lock()
		delete(fc.sessions, ps.front)
		fc.mu.Unlock()
	}
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	if err := fc.relayDetectionsLocked(ps); err != nil {
		return err
	}
	counters.Detections = ps.detSent.Load()
	return fc.w.WriteJSON(ack, &counters)
}

func (fc *frontConn) session(handle uint32) *proxySession {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.sessions[handle]
}

// sessionError reports a session-scoped failure without closing the front
// connection.
func (fc *frontConn) sessionError(handle uint32, err error) error {
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	return fc.w.WriteJSON(wire.FrameError, &wire.ErrorReply{Handle: handle, Msg: err.Error()})
}

// relayLoop streams parked detections to the front client until the
// session detaches or the connection dies.
func (fc *frontConn) relayLoop(ps *proxySession) {
	for {
		select {
		case <-ps.notify:
			fc.wmu.Lock()
			err := fc.relayDetectionsLocked(ps)
			fc.wmu.Unlock()
			if err != nil {
				fc.c.Close() // wake the reader, which tears down
				return
			}
		case <-ps.done:
			return
		}
	}
}

// relayDetectionsLocked drains the session's parked detections into
// FrameDetections frames addressed with the front handle and the
// gateway-adjusted drop count. Callers hold fc.wmu.
func (fc *frontConn) relayDetectionsLocked(ps *proxySession) error {
	for {
		ps.pmu.Lock()
		pending := ps.pending
		ps.pending = nil
		ps.pmu.Unlock()
		if len(pending) == 0 {
			return nil
		}
		dropped := ps.dropTotal()
		for len(pending) > 0 {
			n := len(pending)
			if n > wire.MaxDetections {
				n = wire.MaxDetections
			}
			buf, err := wire.AppendDetections(ps.encBuf[:0], ps.front, dropped, pending[:n])
			if err != nil {
				return err
			}
			ps.encBuf = buf[:0]
			if err := fc.w.WriteFrame(wire.FrameDetections, buf); err != nil {
				return err
			}
			ps.detSent.Add(uint64(n))
			ps.be.detections.Add(uint64(n))
			pending = pending[n:]
		}
	}
}

// unmarshal decodes a JSON control payload.
func unmarshal(payload []byte, v any) error {
	return json.Unmarshal(payload, v)
}
