package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// Ring defaults.
const (
	// DefaultVNodes is the number of virtual nodes per backend. 64 points
	// per backend keeps the per-backend arc lengths within a few percent of
	// each other while membership changes stay cheap (re-sorting a few
	// hundred points).
	DefaultVNodes = 64
	// DefaultLoadFactor is the bounded-load factor c: no backend is handed
	// more than ceil(c × average) sessions. 1.25 is the classic
	// consistent-hashing-with-bounded-loads setting — tight enough to cap
	// skew, loose enough that lookups rarely have to walk past the first
	// owner.
	DefaultLoadFactor = 1.25
)

// point is one virtual node: a position on the hash circle owned by a
// backend.
type point struct {
	hash uint64
	id   string
}

// Ring is a consistent-hash ring with virtual nodes and bounded-load
// placement: Lookup maps a key to the backend owning the first virtual node
// at or after the key's hash, and Acquire additionally skips backends that
// already hold their fair share of sessions (load > ceil(c × average)),
// walking on to the next arc. Safe for concurrent use.
//
// Two properties matter to the gateway above it:
//
//   - minimal movement — adding or removing one backend only remaps the
//     keys on the arcs that backend's virtual nodes owned, about 1/n of
//     the keyspace;
//   - bounded skew — with load factor c, no backend's session count
//     exceeds ceil(c × (total+1) / n), by the pigeonhole walk in Acquire.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	factor float64
	points []point        // sorted by hash
	loads  map[string]int // sessions currently placed per backend
	total  int            // sum of loads
}

// NewRing creates an empty ring. vnodes <= 0 selects DefaultVNodes; factor
// < 1 selects DefaultLoadFactor (a factor below 1 cannot place anything —
// the bound would sit under the average).
func NewRing(vnodes int, factor float64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	if factor < 1 {
		factor = DefaultLoadFactor
	}
	return &Ring{vnodes: vnodes, factor: factor, loads: make(map[string]int)}
}

// mix64 finalizes a hash value (the splitmix64 finalizer). FNV alone
// distributes sequential vnode suffixes poorly; the finalizer spreads them
// over the full circle.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// Add inserts a backend's virtual nodes. Adding a present backend is an
// error (the caller tracks membership; a silent double-add would double the
// backend's arc share).
func (r *Ring) Add(id string) error {
	if id == "" {
		return fmt.Errorf("cluster: empty backend id")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.loads[id]; dup {
		return fmt.Errorf("cluster: backend %q already on the ring", id)
	}
	r.loads[id] = 0
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, point{hash: hashKey(id + "#" + strconv.Itoa(v)), id: id})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return nil
}

// Remove ejects a backend and its virtual nodes. The sessions it carried
// keep counting toward total until their owners Release them and re-Acquire
// elsewhere; removing an absent backend is a no-op.
func (r *Ring) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	load, ok := r.loads[id]
	if !ok {
		return
	}
	delete(r.loads, id)
	r.total -= load
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Backends returns the live backend IDs, sorted.
func (r *Ring) Backends() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.loads))
	for id := range r.loads {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live backends.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.loads)
}

// Load returns the sessions currently placed on a backend.
func (r *Ring) Load(id string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.loads[id]
}

// start returns the index of the first point at or after the key's hash.
// Callers hold r.mu.
func (r *Ring) start(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Lookup maps a key to its owning backend, ignoring load — the pure
// consistent-hash assignment that the minimal-movement property speaks
// about. ok is false on an empty ring.
func (r *Ring) Lookup(key string) (id string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.start(key)].id, true
}

// Acquire places a session: it walks the ring from the key's position and
// picks the first backend whose load is below the bound
// ceil(factor × (total+1) / n), then counts the session against it. The
// bound always admits at least one backend (if every load reached it, the
// total would exceed itself), so the walk terminates on the first lap; the
// least-loaded fallback only guards the degenerate float paths. ok is false
// on an empty ring. Pair every Acquire with a Release.
func (r *Ring) Acquire(key string) (id string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.points) == 0 {
		return "", false
	}
	bound := int(r.factor * float64(r.total+1) / float64(len(r.loads)))
	if float64(bound) < r.factor*float64(r.total+1)/float64(len(r.loads)) {
		bound++ // ceil
	}
	if bound < 1 {
		bound = 1
	}
	start := r.start(key)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if r.loads[p.id] < bound {
			r.loads[p.id]++
			r.total++
			return p.id, true
		}
	}
	// Unreachable with factor ≥ 1; pick the least-loaded backend so a
	// misconfigured ring still places rather than spins.
	min := ""
	for id := range r.loads {
		if min == "" || r.loads[id] < r.loads[min] || (r.loads[id] == r.loads[min] && id < min) {
			min = id
		}
	}
	r.loads[min]++
	r.total++
	return min, true
}

// Release returns a session slot previously taken by Acquire. Releasing an
// already-removed backend is a no-op (Remove forgot its load wholesale).
func (r *Ring) Release(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if load, ok := r.loads[id]; ok && load > 0 {
		r.loads[id] = load - 1
		r.total--
	}
}
