package cluster

import (
	"fmt"
	"sync"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/obs"
	"gesturecep/internal/store"
	"gesturecep/internal/wire"
)

// BackfillSpec names the offline work a fleet backfill fans out: which
// recorded streams to evaluate, under which plans (empty = every registered
// plan), bounded to event times in [Since, Until) (zero = unbounded).
type BackfillSpec struct {
	Streams  []string
	Gestures []string
	Since    time.Time
	Until    time.Time
}

// BackfillResult is the deterministic merge of a fleet backfill. Streams is
// the canonical evaluation order (sorted, deduped — store.SortStreams);
// Detections is aligned with it, each stream's detections in evaluation
// order. Because every stream is evaluated by exactly one backend's
// store.Backfill path and the merge concatenates the per-stream groups in
// canonical order, the result is byte-identical to single-node
// store.BackfillStreams over the union of the fleet's archives — regardless
// of how the ring happened to partition the work.
type BackfillResult struct {
	Streams    []string             `json:"streams"`
	Detections [][]anduin.Detection `json:"-"`
	Partitions map[string][]string  `json:"partitions"`
	Missing    []string             `json:"missing,omitempty"`
	Records    uint64               `json:"records"`
	Tuples     uint64               `json:"tuples"`
	Found      int                  `json:"found"`
	Retried    int                  `json:"retried"`
}

// DetectionTotal counts the merged detections.
func (r *BackfillResult) DetectionTotal() int {
	n := 0
	for _, g := range r.Detections {
		n += len(g)
	}
	return n
}

// Backfill evaluates recorded streams across the live fleet in parallel and
// merges the detections deterministically. The plan:
//
//  1. Canonicalize the stream list (sorted, deduped) — the order both the
//     merge and the single-node baseline use.
//  2. Partition streams across live backends by ring lookup (the pure
//     consistent-hash assignment; load bounds don't apply to batch work).
//  3. Run each partition through the wire protocol's backfill path on a
//     dedicated connection per backend — a backfill request holds its
//     server connection's reader goroutine, so the proxied live sessions'
//     shared connections are never touched.
//  4. Sessions are placed by bounded-load Acquire, not pure Lookup, so a
//     stream's recording often lives on a different backend than the ring
//     names: streams a backend reports Missing (and whole partitions whose
//     backend call failed) are retried on the remaining live backends in
//     admission order until located or exhausted.
//
// Streams no live backend archives come back in Result.Missing with an
// empty detection group; the caller decides whether that is an error.
// A failed backend call never contributes partial results — its streams are
// wholly retried elsewhere — so no detection is ever merged twice.
func (gw *Gateway) Backfill(spec BackfillSpec) (*BackfillResult, error) {
	start := time.Now()
	res, err := gw.backfill(spec)
	if err != nil {
		gw.backfillsFailed.Add(1)
		return nil, err
	}
	gw.backfills.Add(1)
	gw.backfillStreams.Add(uint64(res.Found))
	gw.backfillDur.ObserveSince(start)
	return res, nil
}

func (gw *Gateway) backfill(spec BackfillSpec) (*BackfillResult, error) {
	streams := store.SortStreams(spec.Streams)
	if len(streams) == 0 {
		return nil, fmt.Errorf("cluster: backfill needs at least one stream")
	}
	live := gw.liveIDs()
	if len(live) == 0 {
		return nil, fmt.Errorf("cluster: backfill: no live backends")
	}
	res := &BackfillResult{
		Streams:    streams,
		Detections: make([][]anduin.Detection, len(streams)),
		Partitions: make(map[string][]string, len(live)),
	}

	// Ring partition: stream name → owning live backend. Deterministic for
	// a given membership, but correctness never depends on it — any
	// backend may hold any recording (see the retry pass).
	partition := make(map[string][]int, len(live))
	for i, name := range streams {
		id, ok := gw.ring.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("cluster: backfill: ring is empty")
		}
		partition[id] = append(partition[id], i)
	}

	// located[i] flips when stream i's detections are merged; tried tracks
	// which backends already answered (or failed) for a stream so the retry
	// pass never re-asks.
	located := make([]bool, len(streams))
	tried := make([]map[string]bool, len(streams))
	for i := range tried {
		tried[i] = map[string]bool{}
	}

	type call struct {
		id   string
		idxs []int
	}
	runWave := func(calls []call) {
		var wg sync.WaitGroup
		for _, c := range calls {
			wg.Add(1)
			go func(c call) {
				defer wg.Done()
				gw.backfillOn(spec, c.id, c.idxs, streams, res, located, tried)
			}(c)
		}
		wg.Wait()
	}

	var wave []call
	for _, id := range live {
		if idxs := partition[id]; len(idxs) > 0 {
			wave = append(wave, call{id, idxs})
			names := make([]string, len(idxs))
			for j, i := range idxs {
				names[j] = streams[i]
			}
			res.Partitions[id] = names
		}
	}
	runWave(wave)

	// Retry pass: offer every still-unlocated stream to each remaining live
	// backend, one backend per wave, until everything is found or the fleet
	// is exhausted. Waves stay parallel-free here (one backend at a time)
	// because each wave's remainder depends on the last.
	for _, id := range live {
		var idxs []int
		for i := range streams {
			if !located[i] && !tried[i][id] {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) == 0 {
			continue
		}
		res.Retried += len(idxs)
		runWave([]call{{id, idxs}})
	}

	for i, name := range streams {
		if located[i] {
			res.Found++
		} else {
			res.Missing = append(res.Missing, name)
		}
	}
	gw.log.Info("fleet backfill merged",
		obs.F("streams", len(streams)), obs.F("found", res.Found),
		obs.F("missing", len(res.Missing)), obs.F("retried", res.Retried),
		obs.F("detections", res.DetectionTotal()))
	return res, nil
}

// backfillOn runs one backfill call against backend id for the given stream
// indices, merging what it finds. Results land at disjoint global indices
// (idxs never overlaps across concurrent calls of one wave), so only the
// shared counters need res's lock, held via gw.backfillMu. On any call-level
// error the backend is marked tried for every offered stream and nothing is
// merged — the whole sublist stays eligible for retry elsewhere.
func (gw *Gateway) backfillOn(spec BackfillSpec, id string, idxs []int, streams []string,
	res *BackfillResult, located []bool, tried []map[string]bool) {
	for _, i := range idxs {
		tried[i][id] = true
	}
	addr, ok := gw.addrOf(id)
	if !ok {
		return
	}
	names := make([]string, len(idxs))
	for j, i := range idxs {
		names[j] = streams[i]
	}
	// A dedicated connection per call: the backfill request occupies the
	// server connection's reader goroutine until done, which must never
	// stall the proxied live sessions sharing the pooled data connection.
	cl, err := wire.DialTimeout(addr, gw.cfg.ProbeTimeout)
	if err != nil {
		gw.log.Warn("backfill dial failed",
			obs.F("backend", id), obs.F("streams", len(names)), obs.F("err", err.Error()))
		return
	}
	defer cl.Close()
	req := wire.BackfillRequest{Streams: names, Gestures: spec.Gestures}
	if !spec.Since.IsZero() {
		req.SinceNs = spec.Since.UnixNano()
	}
	if !spec.Until.IsZero() {
		req.UntilNs = spec.Until.UnixNano()
	}
	// Detections buffer locally and merge only after the reply confirms
	// success — a mid-request failure must not leave partial groups behind.
	got := make([][]anduin.Detection, len(idxs))
	reply, err := cl.Backfill(req, func(local int, dets []anduin.Detection) {
		if local >= 0 && local < len(got) {
			got[local] = append(got[local], dets...)
		}
	})
	if err != nil {
		gw.log.Warn("backfill call failed",
			obs.F("backend", id), obs.F("streams", len(names)), obs.F("err", err.Error()))
		return
	}
	missing := make(map[int]bool, len(reply.Missing))
	for _, local := range reply.Missing {
		missing[local] = true
	}
	gw.backfillMu.Lock()
	for j, i := range idxs {
		if missing[j] {
			continue
		}
		res.Detections[i] = got[j]
		located[i] = true
	}
	res.Records += reply.Records
	res.Tuples += reply.Tuples
	gw.backfillMu.Unlock()
}

// liveIDs snapshots the live member IDs in admission order.
func (gw *Gateway) liveIDs() []string {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	var live []string
	for _, id := range gw.order {
		if gw.states[id] == StateLive && gw.backends[id] != nil {
			live = append(live, id)
		}
	}
	return live
}

// addrOf resolves a member's wire address; ok is false once it is removed.
func (gw *Gateway) addrOf(id string) (string, bool) {
	gw.mu.Lock()
	defer gw.mu.Unlock()
	addr, ok := gw.addrs[id]
	return addr, ok
}

// BackfillStats is the backfill plane's counter snapshot.
type BackfillStats struct {
	Runs     uint64        `json:"runs"`
	Failed   uint64        `json:"failed"`
	Streams  uint64        `json:"streams"`
	Duration obs.HistStats `json:"duration"`
}

// BackfillStats snapshots the fleet-backfill counters.
func (gw *Gateway) BackfillStats() BackfillStats {
	return BackfillStats{
		Runs:     gw.backfills.Load(),
		Failed:   gw.backfillsFailed.Load(),
		Streams:  gw.backfillStreams.Load(),
		Duration: gw.backfillDur.Snapshot().Stats(),
	}
}
