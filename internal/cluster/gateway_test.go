package cluster_test

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/cluster"
	"gesturecep/internal/e2e"
	"gesturecep/internal/kinect"
	"gesturecep/internal/obs"
	"gesturecep/internal/serve"
	"gesturecep/internal/wire"
)

// TestGatewayZeroDivergence is the cluster acceptance bar: 64 sessions
// driven through the gateway across 3 backends must produce detections
// byte-identical to the same stream on a single direct node AND to the
// bare-engine reference replay — scale-out must not perturb semantics. The
// whole run executes with the observability layer live (stage instruments
// on every backend, trace sampling on every session, the admin plane
// scraping mid-flight) to prove observing the pipeline does not perturb it
// either.
func TestGatewayZeroDivergence(t *testing.T) {
	frames := e2e.PlaybackFrames(t, 7)
	tuples := kinect.ToTuples(frames)
	h := e2e.Start(t, e2e.Options{
		Backends: 3,
		Gateway:  true,
		Serve:    serve.Config{Shards: 2, QueueDepth: 128},
	})
	for i := 0; i < 3; i++ {
		h.Manager(i).SetInstruments(serve.NewInstruments())
	}
	admin, err := obs.StartAdmin("127.0.0.1:0", obs.AdminConfig{
		Collect: h.Gateway.WriteProm,
		Ready:   h.Gateway.Ready,
		Events:  h.Gateway.Events,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	plan, _ := h.Registry.Get("swipe_right")
	want := e2e.EncodeDets(t, e2e.BareReplay(t, plan, e2e.WireTuples(t, tuples)))

	// The same stream against one backend directly, bypassing the gateway.
	direct, err := wire.Dial(h.Spawner.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	drs, err := direct.Attach("direct-reference", wire.AttachOptions{BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples {
		if err := drs.FeedTuple(tp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := drs.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := e2e.EncodeDets(t, drs.Detections()); !bytes.Equal(got, want) {
		t.Fatal("single direct node diverges from bare replay")
	}

	const sessions, conns = 64, 4
	clients := make([]*wire.Client, conns)
	for i := range clients {
		clients[i] = h.Dial()
	}
	results := make([][]byte, sessions)
	counters := make([]wire.SessionCounters, sessions)
	errs := make(chan error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Every 8th batch trace-sampled: the observability acceptance
			// bar is byte-identical detections with tracing live.
			rs, err := clients[i%conns].Attach(fmt.Sprintf("user-%02d", i), wire.AttachOptions{BatchSize: 16, TraceEvery: 8})
			if err != nil {
				errs <- err
				return
			}
			for _, tp := range tuples {
				if err := rs.FeedTuple(tp); err != nil {
					errs <- err
					return
				}
			}
			if _, err := rs.Flush(); err != nil {
				errs <- err
				return
			}
			results[i] = e2e.EncodeDets(t, rs.Detections())
			if counters[i], err = rs.Detach(); err != nil {
				errs <- err
			}
		}(i)
	}
	// Scrape the admin plane while the sessions stream — observation under
	// load must not perturb the data path.
	if resp, err := http.Get("http://" + admin.Addr().String() + "/metrics"); err != nil {
		t.Errorf("mid-run /metrics scrape: %v", err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if bytes.Equal(want, e2e.EncodeDets(t, nil)) {
		t.Fatal("bare replay detected nothing")
	}
	for i, got := range results {
		if !bytes.Equal(got, want) {
			t.Errorf("session %d routed through the gateway diverged from the direct node", i)
		}
		if c := counters[i]; c.In != uint64(len(tuples)) || c.Out != c.In || c.Dropped != 0 {
			t.Errorf("session %d counters = %+v, want in=out=%d dropped=0", i, c, len(tuples))
		}
	}

	// The load actually spread: at least two backends forwarded tuples, and
	// the per-backend forward counters account for every tuple fed.
	mm := h.Gateway.Metrics()
	if len(mm.Backends) != 3 {
		t.Fatalf("gateway reports %d backends, want 3", len(mm.Backends))
	}
	var forwarded uint64
	busy := 0
	for _, be := range mm.Backends {
		forwarded += be.Tuples
		if be.Tuples > 0 {
			busy++
		}
		if !be.Healthy {
			t.Errorf("backend %s unhealthy after a clean run", be.ID)
		}
	}
	if wantFwd := uint64(sessions * len(tuples)); forwarded != wantFwd {
		t.Errorf("backends saw %d forwarded tuples, want %d", forwarded, wantFwd)
	}
	if busy < 2 {
		t.Errorf("only %d backends received traffic; the ring did not spread 64 sessions", busy)
	}

	// The final exposition carries the per-backend forward-latency
	// histograms fed by the trace-sampled batches.
	resp, err := http.Get("http://" + admin.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	exposition := string(body)
	for _, want := range []string{
		"# TYPE cluster_backend_forward_seconds histogram",
		"cluster_backend_forward_seconds_bucket",
		"cluster_backends_live 3",
		`serve_tuples_total{stage="processed"}`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("final /metrics missing %q", want)
		}
	}
	var sampled uint64
	for _, st := range h.Gateway.ForwardStats() {
		sampled += st.Count
	}
	if sampled == 0 {
		t.Error("no batch was forward-timed despite TraceEvery=8 on 64 sessions")
	}
}

// TestGatewayFailover kills a backend while sessions are mid-stream and
// checks the re-home contract: every session finishes on a healthy
// backend, detections acknowledged before the kill survive it, the
// post-re-home detections are exactly a replay of what the surviving
// backend admitted, and the reported drop count equals fed-minus-recorded
// — the recorder's tally. Run under -race in CI, this is the failover soak.
func TestGatewayFailover(t *testing.T) {
	frames := e2e.PlaybackFrames(t, 9)
	tuples := kinect.ToTuples(frames)
	half := len(tuples) / 2
	chunk1, chunk2 := tuples[:half], tuples[half:]

	const backends = 3
	h := e2e.Start(t, e2e.Options{
		Backends:       backends,
		Gateway:        true,
		Serve:          serve.Config{Shards: 2, QueueDepth: 128},
		Record:         true,
		RecorderBuffer: 1 << 15,
		ProbeInterval:  25 * time.Millisecond,
	})
	plan, _ := h.Registry.Get("swipe_right")

	const sessions = 12
	cl := h.Dial()
	ids := make([]string, sessions)
	rss := make([]*wire.RemoteSession, sessions)
	preKill := make([][]byte, sessions)
	for i := range rss {
		ids[i] = fmt.Sprintf("soak-%02d", i)
		rs, err := cl.Attach(ids[i], wire.AttachOptions{BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		rss[i] = rs
		for _, tp := range chunk1 {
			if err := rs.FeedTuple(tp); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rs.Flush(); err != nil {
			t.Fatal(err)
		}
		preKill[i] = e2e.EncodeDets(t, rs.Detections())
	}

	// Pick the victim: a backend that owns at least one session. Recording
	// streams are created at attach, so the archive tells us placement.
	victim := -1
	onVictim := make(map[string]bool)
	for b := 0; b < backends && victim < 0; b++ {
		for _, id := range ids {
			if h.HasRecording(b, id) {
				victim = b
				break
			}
		}
	}
	if victim < 0 {
		t.Fatal("no backend owns any session")
	}
	for _, id := range ids {
		onVictim[id] = h.HasRecording(victim, id)
	}

	// Kill it mid-stream: feeders are pushing chunk2 concurrently; the
	// kill lands once a third of the second half is in flight.
	var fed atomic.Int64
	killAt := int64(sessions * len(chunk2) / 3)
	killed := make(chan struct{})
	go func() {
		for fed.Load() < killAt {
			time.Sleep(time.Millisecond)
		}
		h.KillBackend(victim)
		close(killed)
	}()
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := range rss {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, tp := range chunk2 {
				if err := rss[i].FeedTuple(tp); err != nil {
					errs <- fmt.Errorf("session %s: %w", ids[i], err)
					return
				}
				fed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	<-killed
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	finalDets := make([][]byte, sessions)
	finalCounters := make([]wire.SessionCounters, sessions)
	for i, rs := range rss {
		if _, err := rs.Flush(); err != nil {
			t.Fatalf("session %s: final flush: %v", ids[i], err)
		}
		finalDets[i] = e2e.EncodeDets(t, rs.Detections())
		c, err := rs.Detach()
		if err != nil {
			t.Fatalf("session %s: detach: %v", ids[i], err)
		}
		finalCounters[i] = c
	}
	h.Stop() // flush the surviving archives so recordings are readable

	total := uint64(len(tuples))
	rehomed := 0
	for i, id := range ids {
		c := finalCounters[i]
		if c.In != total || c.Out != c.In {
			t.Errorf("session %s counters = %+v, want in=out=%d", id, c, total)
		}
		// Locate the session's final home among the survivors.
		home := -1
		for b := 0; b < backends; b++ {
			if b != victim && h.HasRecording(b, id) {
				home = b
				break
			}
		}
		if onVictim[id] {
			rehomed++
			if home < 0 {
				t.Errorf("session %s never re-homed off the dead backend", id)
				continue
			}
			if c.Dropped < uint64(len(chunk1)) {
				t.Errorf("session %s dropped %d tuples, want ≥ %d (its pre-kill state died)",
					id, c.Dropped, len(chunk1))
			}
		} else {
			if home < 0 {
				t.Errorf("session %s has no recording on its healthy backend", id)
				continue
			}
			if c.Dropped != 0 {
				t.Errorf("session %s on a healthy backend dropped %d tuples", id, c.Dropped)
			}
		}
		recorded := h.Recorded(home, id)
		// The recorder's tally IS the drop accounting: every fed tuple is
		// either in the final home's recording or reported dropped.
		if got := total - uint64(len(recorded)); c.Dropped != got {
			t.Errorf("session %s reports %d drops, recorder tally says %d (fed %d, recorded %d)",
				id, c.Dropped, got, total, len(recorded))
		}
		// No acked detection is lost, and everything after re-home is
		// byte-identical to a bare replay of what the final home admitted.
		var want []byte
		if onVictim[id] {
			want = mergeDetFrames(t, preKill[i], e2e.BareReplay(t, plan, recorded))
		} else {
			want = e2e.EncodeDets(t, e2e.BareReplay(t, plan, recorded))
		}
		if !bytes.Equal(finalDets[i], want) {
			t.Errorf("session %s detections diverge from the deterministic reconstruction", id)
		}
	}
	if rehomed == 0 {
		t.Fatal("victim backend owned no sessions; failover path never exercised")
	}

	mm := h.Gateway.Metrics()
	var lost, rehomedCount uint64
	for _, be := range mm.Backends {
		if be.ID == h.Spawner.ID(victim) {
			if be.Healthy {
				t.Error("victim backend still marked healthy")
			}
			lost = be.Lost
			rehomedCount = be.Rehomed
		}
	}
	if rehomedCount != uint64(rehomed) {
		t.Errorf("gateway re-homed %d sessions off the victim, metrics say %d", rehomed, rehomedCount)
	}
	var wantLost uint64
	for i, id := range ids {
		if onVictim[id] {
			wantLost += finalCounters[i].Dropped
		}
	}
	if lost != wantLost {
		t.Errorf("victim Lost = %d, session drop counts sum to %d", lost, wantLost)
	}
	for _, id := range h.Gateway.Ring().Backends() {
		if id == h.Spawner.ID(victim) {
			t.Error("victim backend still on the ring")
		}
	}
}

// TestGatewayRecovery is the recovery soak (run under -race in CI): a
// backend is killed mid-stream, its sessions re-home with explicit loss
// accounting, then the backend restarts on the same address and the
// gateway must re-admit it — fresh incarnation, back on the ring — within
// the backoff budget. Existing sessions stay put (no forced migration);
// new sessions land on the recovered backend through the bounded-load
// ring. Across the whole episode, all 64 sessions (24 pre-kill + 40
// post-recovery) must reconcile drop accounting against the stream-store
// recorder and produce detections byte-identical to the deterministic
// reconstruction.
func TestGatewayRecovery(t *testing.T) {
	frames := e2e.PlaybackFrames(t, 11)
	tuples := kinect.ToTuples(frames)
	half := len(tuples) / 2
	chunk1, chunk2 := tuples[:half], tuples[half:]

	const backends = 3
	h := e2e.Start(t, e2e.Options{
		Backends:       backends,
		Gateway:        true,
		Serve:          serve.Config{Shards: 2, QueueDepth: 128},
		Record:         true,
		RecorderBuffer: 1 << 15,
		ProbeInterval:  25 * time.Millisecond,
		Readmit:        true,
	})
	plan, _ := h.Registry.Get("swipe_right")
	want := e2e.EncodeDets(t, e2e.BareReplay(t, plan, e2e.WireTuples(t, tuples)))

	// Phase 1: 24 sessions feed the first half of the stream and ack it.
	const oldSessions = 24
	cl := h.Dial()
	ids := make([]string, oldSessions)
	rss := make([]*wire.RemoteSession, oldSessions)
	preKill := make([][]byte, oldSessions)
	for i := range rss {
		ids[i] = fmt.Sprintf("soak-%02d", i)
		rs, err := cl.Attach(ids[i], wire.AttachOptions{BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		rss[i] = rs
		for _, tp := range chunk1 {
			if err := rs.FeedTuple(tp); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rs.Flush(); err != nil {
			t.Fatal(err)
		}
		preKill[i] = e2e.EncodeDets(t, rs.Detections())
	}

	// Pick a victim that owns at least one session (placement is visible
	// through the recording archives).
	victim := -1
	onVictim := make(map[string]bool)
	for b := 0; b < backends && victim < 0; b++ {
		for _, id := range ids {
			if h.HasRecording(b, id) {
				victim = b
				break
			}
		}
	}
	if victim < 0 {
		t.Fatal("no backend owns any session")
	}
	victimID := h.Spawner.ID(victim)
	for _, id := range ids {
		onVictim[id] = h.HasRecording(victim, id)
	}

	// Phase 2: kill the victim while the second half is in flight.
	var fed atomic.Int64
	killAt := int64(oldSessions * len(chunk2) / 3)
	killed := make(chan struct{})
	go func() {
		for fed.Load() < killAt {
			time.Sleep(time.Millisecond)
		}
		h.KillBackend(victim)
		close(killed)
	}()
	var wg sync.WaitGroup
	errs := make(chan error, oldSessions)
	for i := range rss {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, tp := range chunk2 {
				if err := rss[i].FeedTuple(tp); err != nil {
					errs <- fmt.Errorf("session %s: %w", ids[i], err)
					return
				}
				fed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	<-killed
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Settle every old session before the restart: a flush forces any
	// session still bound to the dead incarnation through eject + re-home,
	// so the fleet deterministically reaches the steady state recovery
	// starts from — victim ejected, every old session homed on a survivor.
	for i, rs := range rss {
		if _, err := rs.Flush(); err != nil {
			t.Fatalf("session %s: settling flush: %v", ids[i], err)
		}
	}
	settleDeadline := time.Now().Add(10 * time.Second)
	for h.Gateway.State(victimID) == cluster.StateLive {
		if time.Now().After(settleDeadline) {
			t.Fatal("victim never ejected after its kill")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 3: restart the victim on the same address; the gateway must
	// re-admit it within the backoff budget (the harness backoff caps at
	// 100ms — 10s of grace is pure CI slack).
	h.RestartBackend(victim)
	deadline := time.Now().Add(10 * time.Second)
	for h.Gateway.State(victimID) != cluster.StateLive {
		if time.Now().After(deadline) {
			t.Fatalf("victim in state %q, not re-admitted within the backoff budget",
				h.Gateway.State(victimID))
		}
		time.Sleep(5 * time.Millisecond)
	}
	onRing := false
	for _, id := range h.Gateway.Ring().Backends() {
		onRing = onRing || id == victimID
	}
	if !onRing {
		t.Fatal("victim re-admitted but absent from the ring")
	}
	// No forced migration: the recovered backend starts empty; every old
	// session stays where failover put it.
	mm := h.Gateway.Metrics()
	for _, be := range mm.Backends {
		if be.ID == victimID {
			if !be.Healthy || be.State != string(cluster.StateLive) {
				t.Errorf("victim row after re-admission: healthy=%t state=%q", be.Healthy, be.State)
			}
			if be.Sessions != 0 {
				t.Errorf("victim carries %d sessions right after re-admission; re-balance must be gradual", be.Sessions)
			}
			if be.Ejections != 1 || be.Readmissions != 1 {
				t.Errorf("victim ejections=%d readmissions=%d, want 1/1", be.Ejections, be.Readmissions)
			}
		}
	}

	// Phase 4: 40 new sessions arrive. The bounded-load ring must steer a
	// share of them onto the recovered backend (pigeonhole: the two
	// survivors' caps cannot absorb all of them).
	const newSessions = 40
	const conns = 4
	newClients := make([]*wire.Client, conns)
	for i := range newClients {
		newClients[i] = h.Dial()
	}
	newIDs := make([]string, newSessions)
	newRss := make([]*wire.RemoteSession, newSessions)
	for i := range newRss {
		newIDs[i] = fmt.Sprintf("fresh-%02d", i)
		rs, err := newClients[i%conns].Attach(newIDs[i], wire.AttachOptions{BatchSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		newRss[i] = rs
	}
	if load := h.Gateway.Ring().Load(victimID); load == 0 {
		t.Fatal("no new session placed on the recovered backend")
	}
	newErrs := make(chan error, newSessions)
	for i := range newRss {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, tp := range tuples {
				if err := newRss[i].FeedTuple(tp); err != nil {
					newErrs <- fmt.Errorf("session %s: %w", newIDs[i], err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-newErrs:
		t.Fatal(err)
	default:
	}

	// Drain everything and snapshot the fleet while it is still alive.
	finalDets := make([][]byte, oldSessions)
	finalCounters := make([]wire.SessionCounters, oldSessions)
	for i, rs := range rss {
		if _, err := rs.Flush(); err != nil {
			t.Fatalf("session %s: final flush: %v", ids[i], err)
		}
		finalDets[i] = e2e.EncodeDets(t, rs.Detections())
		c, err := rs.Detach()
		if err != nil {
			t.Fatalf("session %s: detach: %v", ids[i], err)
		}
		finalCounters[i] = c
	}
	newDets := make([][]byte, newSessions)
	newCounters := make([]wire.SessionCounters, newSessions)
	for i, rs := range newRss {
		if _, err := rs.Flush(); err != nil {
			t.Fatalf("session %s: flush: %v", newIDs[i], err)
		}
		newDets[i] = e2e.EncodeDets(t, rs.Detections())
		c, err := rs.Detach()
		if err != nil {
			t.Fatalf("session %s: detach: %v", newIDs[i], err)
		}
		newCounters[i] = c
	}
	mm = h.Gateway.Metrics()
	h.Stop() // flush every archive so the recordings are readable

	// Old sessions: same contract as the failover soak — every fed tuple
	// is either in the final home's recording or reported dropped, and the
	// detections are exactly the acked prefix plus a bare replay of what
	// the final home admitted.
	total := uint64(len(tuples))
	rehomed := 0
	for i, id := range ids {
		c := finalCounters[i]
		if c.In != total || c.Out != c.In {
			t.Errorf("session %s counters = %+v, want in=out=%d", id, c, total)
		}
		home := -1
		for b := 0; b < backends; b++ {
			if b != victim && h.HasRecording(b, id) {
				home = b
				break
			}
		}
		if onVictim[id] {
			rehomed++
			if home < 0 {
				t.Errorf("session %s never re-homed off the dead backend", id)
				continue
			}
		} else if home < 0 {
			t.Errorf("session %s has no recording on its healthy backend", id)
			continue
		} else if c.Dropped != 0 {
			t.Errorf("session %s on a healthy backend dropped %d tuples", id, c.Dropped)
		}
		recorded := h.Recorded(home, id)
		if got := total - uint64(len(recorded)); c.Dropped != got {
			t.Errorf("session %s reports %d drops, recorder tally says %d (fed %d, recorded %d)",
				id, c.Dropped, got, total, len(recorded))
		}
		var wantDets []byte
		if onVictim[id] {
			wantDets = mergeDetFrames(t, preKill[i], e2e.BareReplay(t, plan, recorded))
		} else {
			wantDets = e2e.EncodeDets(t, e2e.BareReplay(t, plan, recorded))
		}
		if !bytes.Equal(finalDets[i], wantDets) {
			t.Errorf("session %s detections diverge from the deterministic reconstruction", id)
		}
	}
	if rehomed == 0 {
		t.Fatal("victim backend owned no sessions; recovery path never stressed")
	}

	// New sessions: a fully clean run — zero drops, full-stream semantics
	// byte-identical to the bare replay — wherever they landed, the
	// recovered backend included.
	onRecovered := 0
	for i, id := range newIDs {
		c := newCounters[i]
		if c.In != total || c.Out != c.In || c.Dropped != 0 {
			t.Errorf("session %s counters = %+v, want in=out=%d dropped=0", id, c, total)
		}
		home := -1
		for b := 0; b < backends; b++ {
			if h.HasRecording(b, id) {
				home = b
				break
			}
		}
		if home < 0 {
			t.Errorf("session %s was never recorded anywhere", id)
			continue
		}
		if home == victim {
			onRecovered++
		}
		if got := uint64(len(h.Recorded(home, id))); got != total {
			t.Errorf("session %s: home recorded %d of %d tuples", id, got, total)
		}
		if !bytes.Equal(newDets[i], want) {
			t.Errorf("session %s detections diverge from the bare replay", id)
		}
	}
	if onRecovered == 0 {
		t.Error("no new session served by the recovered backend")
	}

	// Fleet accounting: the victim's row carries the episode — sessions
	// re-homed off it, their dead-incarnation tuples as Lost — and the
	// survivors never flapped.
	var wantLost uint64
	for i, id := range ids {
		if onVictim[id] {
			wantLost += finalCounters[i].Dropped
		}
	}
	for _, be := range mm.Backends {
		if be.ID == victimID {
			if be.Rehomed != uint64(rehomed) {
				t.Errorf("victim Rehomed = %d, want %d", be.Rehomed, rehomed)
			}
			if be.Lost != wantLost {
				t.Errorf("victim Lost = %d, session drop counts sum to %d", be.Lost, wantLost)
			}
		} else {
			if be.Ejections != 0 || be.Readmissions != 0 || be.State != string(cluster.StateLive) {
				t.Errorf("survivor %s: ejections=%d readmissions=%d state=%q, want a quiet live row",
					be.ID, be.Ejections, be.Readmissions, be.State)
			}
		}
	}
}

// TestGatewayTolerateDown starts a gateway against a fleet with one dead
// backend: strict mode must refuse, TolerateDown must serve on the live
// subset and admit the dead backend through the recovery machinery when it
// comes up.
func TestGatewayTolerateDown(t *testing.T) {
	h := e2e.Start(t, e2e.Options{Backends: 2, Serve: serve.Config{Shards: 1}})
	h.KillBackend(1)
	downID := h.Spawner.ID(1)

	// Strict mode: a down backend at startup is a configuration error.
	if _, err := cluster.NewGateway(cluster.Config{Backends: h.Spawner.Backends()}); err == nil {
		t.Fatal("strict NewGateway accepted a fleet with a dead backend")
	}

	gw, err := cluster.NewGateway(cluster.Config{
		Backends:          h.Spawner.Backends(),
		Name:              "tolerant",
		ProbeInterval:     25 * time.Millisecond,
		ProbeTimeout:      time.Second,
		TolerateDown:      true,
		ReadmitBackoff:    10 * time.Millisecond,
		ReadmitMaxBackoff: 100 * time.Millisecond,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	if st := gw.State(downID); st != cluster.StateRecovering {
		t.Fatalf("down backend state = %q, want %q", st, cluster.StateRecovering)
	}
	if ids := gw.Ring().Backends(); len(ids) != 1 || ids[0] != h.Spawner.ID(0) {
		t.Fatalf("ring holds %v, want only the live backend", ids)
	}

	// The degraded gateway serves: a session lands on the live backend.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.Serve(ln)
	cl, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rs, err := cl.Attach("degraded-0", wire.AttachOptions{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	frames := e2e.PlaybackFrames(t, 3)
	if err := rs.FeedFrames(frames); err != nil {
		t.Fatal(err)
	}
	if c, err := rs.Flush(); err != nil || c.In != uint64(len(frames)) || c.Out != c.In || c.Dropped != 0 {
		t.Fatalf("degraded flush = %+v, %v; want in=out=%d dropped=0", c, err, len(frames))
	}

	// Bring the backend up; the recovery loop must admit it.
	h.RestartBackend(1)
	deadline := time.Now().Add(10 * time.Second)
	for gw.State(downID) != cluster.StateLive {
		if time.Now().After(deadline) {
			t.Fatalf("restarted backend in state %q, never admitted", gw.State(downID))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := gw.Ring().Len(); got != 2 {
		t.Fatalf("ring holds %d backends after admission, want 2", got)
	}
	for _, be := range gw.Metrics().Backends {
		if be.ID == downID && (be.Ejections != 0 || be.Readmissions != 1) {
			t.Errorf("admitted backend ejections=%d readmissions=%d, want 0/1", be.Ejections, be.Readmissions)
		}
	}

	// The late-joining backend must start receiving sessions: the live
	// backend's bounded-load cap cannot absorb them all.
	for i := 0; i < 8; i++ {
		if _, err := cl.Attach(fmt.Sprintf("late-%d", i), wire.AttachOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if load := gw.Ring().Load(downID); load == 0 {
		t.Error("no session placed on the late-joining backend")
	}
}

// mergeDetFrames appends a detection list to an already-encoded one and
// re-encodes the concatenation canonically.
func mergeDetFrames(t testing.TB, encoded []byte, extra []anduin.Detection) []byte {
	t.Helper()
	_, _, dets, err := wire.DecodeDetections(encoded)
	if err != nil {
		t.Fatal(err)
	}
	return e2e.EncodeDets(t, append(dets, extra...))
}

// TestGatewayControlPlane exercises ping, metrics aggregation and
// session-scoped errors through the gateway.
func TestGatewayControlPlane(t *testing.T) {
	h := e2e.Start(t, e2e.Options{Backends: 2, Gateway: true, Serve: serve.Config{Shards: 1}})
	cl := h.Dial()

	pong, err := cl.Ping(42)
	if err != nil {
		t.Fatal(err)
	}
	if pong.Seq != 42 || pong.Name != "e2e-gateway" || pong.Sessions != 0 {
		t.Errorf("pong = %+v, want seq=42 name=e2e-gateway sessions=0", pong)
	}

	rs, err := cl.Attach("cp-1", wire.AttachOptions{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rs.Fields(), kinect.Schema().Len(); got != want {
		t.Errorf("attach reports %d fields, want %d", got, want)
	}
	// Duplicate IDs collide on the owning backend and surface as a
	// session-scoped error; the connection survives.
	if _, err := cl.Attach("cp-1", wire.AttachOptions{}); err == nil {
		t.Error("duplicate session id accepted through the gateway")
	} else if _, ok := err.(*wire.ErrorReply); !ok {
		t.Errorf("duplicate id error is %T, want *wire.ErrorReply", err)
	}
	if _, err := cl.Attach("cp-ghost", wire.AttachOptions{Gestures: []string{"nosuch"}}); err == nil {
		t.Error("unknown plan accepted through the gateway")
	}

	frames := e2e.PlaybackFrames(t, 3)
	if err := rs.FeedFrames(frames); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	pong, err = cl.Ping(43)
	if err != nil {
		t.Fatal(err)
	}
	if pong.Sessions != 1 {
		t.Errorf("gateway reports %d proxied sessions, want 1", pong.Sessions)
	}
	mm, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.Backends) != 2 {
		t.Fatalf("aggregated metrics carry %d backends, want 2", len(mm.Backends))
	}
	if mm.Enqueued != uint64(len(frames)) || mm.Sessions != 1 {
		t.Errorf("aggregated metrics = %+v, want %d enqueued across 1 session", mm, len(frames))
	}
	if _, err := rs.Detach(); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Detach(); err == nil {
		t.Error("double detach succeeded through the gateway")
	} else if _, ok := err.(*wire.ErrorReply); !ok {
		t.Errorf("double detach error is %T, want *wire.ErrorReply", err)
	}
}

// BenchmarkGatewayProxy measures the full proxied path — client codec →
// gateway frame relay → backend frame loop → sharded manager → detection
// relay back through the gateway — for one session replaying a recording
// per iteration. Compare with BenchmarkWireLoopback (same path minus the
// gateway hop) for the proxy overhead.
func BenchmarkGatewayProxy(b *testing.B) {
	benchGatewayProxy(b, 0)
}

// BenchmarkGatewayProxyTraced is the same path with the observability layer
// live: stage instruments on every backend and 1-in-1024 trace sampling on
// the client. The delta against BenchmarkGatewayProxy is the observability
// overhead at the production sampling rate.
func BenchmarkGatewayProxyTraced(b *testing.B) {
	benchGatewayProxy(b, 1024)
}

func benchGatewayProxy(b *testing.B, traceEvery int) {
	h := e2e.Start(b, e2e.Options{Backends: 3, Gateway: true, Serve: serve.Config{Shards: 2}})
	if traceEvery > 0 {
		for i := 0; i < 3; i++ {
			h.Manager(i).SetInstruments(serve.NewInstruments())
		}
	}
	player, err := kinect.NewSimulator(kinect.ChildProfile(), kinect.DefaultNoise(), 7)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := player.RunScript([]kinect.ScriptItem{
		{Idle: 500 * time.Millisecond},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
	}, e2e.TestTime(), nil)
	if err != nil {
		b.Fatal(err)
	}
	tuples := kinect.ToTuples(rec.Frames)
	stride := rec.Duration() + time.Second

	cl := h.Dial()
	rs, err := cl.Attach("bench", wire.AttachOptions{BatchSize: 64, Discard: true, TraceEvery: traceEvery})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offset := time.Duration(i) * stride
		for _, tp := range tuples {
			tp.Ts = tp.Ts.Add(offset)
			if err := rs.FeedTuple(tp); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := rs.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(tuples))/b.Elapsed().Seconds(), "tuples/s")
}
