package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"

	"gesturecep/internal/serve"
)

func TestConfigDefaults(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		in   Config
		want Config
	}{
		{
			name: "zero values pick the documented defaults",
			in:   Config{},
			want: Config{
				ProbeInterval:     500 * time.Millisecond,
				ProbeTimeout:      2 * time.Second,
				ReadmitBackoff:    250 * time.Millisecond,
				ReadmitMaxBackoff: 5 * time.Second,
			},
		},
		{
			name: "negative probe interval survives — it means probing is disabled",
			in:   Config{ProbeInterval: -1},
			want: Config{
				ProbeInterval:     -1,
				ProbeTimeout:      2 * time.Second,
				ReadmitBackoff:    250 * time.Millisecond,
				ReadmitMaxBackoff: 5 * time.Second,
			},
		},
		{
			name: "explicit values survive",
			in: Config{
				ProbeInterval:     time.Second,
				ProbeTimeout:      time.Second,
				ReadmitBackoff:    time.Millisecond,
				ReadmitMaxBackoff: time.Minute,
			},
			want: Config{
				ProbeInterval:     time.Second,
				ProbeTimeout:      time.Second,
				ReadmitBackoff:    time.Millisecond,
				ReadmitMaxBackoff: time.Minute,
			},
		},
		{
			name: "max backoff below the initial backoff is raised to it",
			in:   Config{ReadmitBackoff: time.Second, ReadmitMaxBackoff: 100 * time.Millisecond},
			want: Config{
				ProbeInterval:     500 * time.Millisecond,
				ProbeTimeout:      2 * time.Second,
				ReadmitBackoff:    time.Second,
				ReadmitMaxBackoff: time.Second,
			},
		},
	}
	for _, tc := range cases {
		got := tc.in.withDefaults()
		if got.ProbeInterval != tc.want.ProbeInterval ||
			got.ProbeTimeout != tc.want.ProbeTimeout ||
			got.ReadmitBackoff != tc.want.ReadmitBackoff ||
			got.ReadmitMaxBackoff != tc.want.ReadmitMaxBackoff {
			t.Errorf("%s: withDefaults = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		in      Config
		wantErr string // substring; "" means valid
	}{
		{"no backends", Config{}, "no backends"},
		{"empty id", Config{Backends: []Backend{{ID: "", Addr: "localhost:1"}}}, "both an id and an address"},
		{"empty addr", Config{Backends: []Backend{{ID: "b0", Addr: ""}}}, "both an id and an address"},
		{
			"duplicate id",
			Config{Backends: []Backend{{ID: "b0", Addr: "localhost:1"}, {ID: "b0", Addr: "localhost:2"}}},
			`duplicate backend id "b0"`,
		},
		{
			"distinct backends are fine",
			Config{Backends: []Backend{{ID: "b0", Addr: "localhost:1"}, {ID: "b1", Addr: "localhost:2"}}},
			"",
		},
	}
	for _, tc := range cases {
		err := tc.in.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: Validate = %v, want nil", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: Validate = %v, want error containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestEjectConcurrentIdempotent races many ejectors of the same incarnation
// (run under -race in CI): exactly one must win — one ejections tick, one
// ring removal — and the gateway must stay consistent however the losers
// interleave.
func TestEjectConcurrentIdempotent(t *testing.T) {
	sp, err := Spawn(2, serve.NewRegistry(), SpawnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	gw, err := NewGateway(Config{Backends: sp.Backends(), ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	victim := sp.ID(0)
	be := gw.backend(victim)
	if be == nil {
		t.Fatalf("backend %s not admitted", victim)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gw.eject(be, nil)
		}()
	}
	wg.Wait()

	if got := gw.stats[victim].ejections.Load(); got != 1 {
		t.Errorf("16 concurrent ejects of one incarnation counted %d ejections, want 1", got)
	}
	if gw.State(victim) != StateEjected {
		t.Errorf("victim state = %q, want %q (Readmit off)", gw.State(victim), StateEjected)
	}
	if ids := gw.ring.Backends(); len(ids) != 1 || ids[0] != sp.ID(1) {
		t.Errorf("ring holds %v after ejection, want only %s", ids, sp.ID(1))
	}
	// A second eject of the same (now long-dead) incarnation stays a no-op.
	gw.eject(be, nil)
	if got := gw.stats[victim].ejections.Load(); got != 1 {
		t.Errorf("late re-eject bumped ejections to %d", got)
	}
}
