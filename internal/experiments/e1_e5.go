package experiments

import (
	"fmt"
	"strings"
	"time"

	"gesturecep/internal/detect"
	"gesturecep/internal/geom"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/query"
	"gesturecep/internal/transform"
)

// E1SwipeRight reproduces Fig. 1: learn the swipe_right gesture from a few
// samples, show the generated query's pose windows (the figure's three
// boxes with their centers and ±widths), verify the query's structure
// matches the paper's (nested sequences, within, select first consume all)
// and that it detects fresh executions.
func E1SwipeRight(seed int64) (Table, string, error) {
	t := Table{
		ID:     "E1",
		Title:  "Fig. 1 — learned swipe_right windows and generated query",
		Header: []string{"pose", "center_x", "center_y", "center_z", "±half_x", "±half_y", "±half_z"},
	}
	samples, err := trainSamples(kinect.DefaultProfile(), kinect.GestureSwipeRight, 4, seed)
	if err != nil {
		return t, "", err
	}
	res, err := learn.Learn(kinect.GestureSwipeRight, samples, learn.DefaultConfig())
	if err != nil {
		return t, "", err
	}
	for i, w := range res.Model.Windows {
		c, h := w.Center(), w.HalfWidth()
		t.AddRow(iStr(i), f0(c[0]), f0(c[1]), f0(c[2]), f0(h[0]), f0(h[1]), f0(h[2]))
	}

	// Structural checks against the paper's query shape.
	q, err := query.Parse(res.QueryText)
	if err != nil {
		return t, "", fmt.Errorf("generated query does not re-parse: %w", err)
	}
	var structure []string
	if len(q.Pattern.Atoms()) >= 2 {
		structure = append(structure, fmt.Sprintf("%d pose atoms", len(q.Pattern.Atoms())))
	}
	if q.Pattern.HasWithin {
		structure = append(structure, "outer within")
	}
	if q.Pattern.HasSelect && q.Pattern.HasConsume {
		structure = append(structure, "select first consume all")
	}
	if strings.Contains(res.QueryText, "abs(") {
		structure = append(structure, "abs() range predicates")
	}
	t.Notes = append(t.Notes, "query structure: "+strings.Join(structure, ", "))

	// Detection check on a fresh session.
	sess, err := testSession(kinect.DefaultProfile(), []string{kinect.GestureSwipeRight}, 3, seed+1)
	if err != nil {
		return t, "", err
	}
	out, err := runDetection(transform.DefaultConfig(), []string{res.QueryText}, sess)
	if err != nil {
		return t, "", err
	}
	o := out[kinect.GestureSwipeRight]
	t.Notes = append(t.Notes, fmt.Sprintf("detection on fresh session: %s", o))
	return t, res.QueryText, nil
}

// E2SampleEfficiency quantifies the claim "usually, 3-5 samples are
// sufficient to achieve acceptable results": F1 as a function of training
// sample count for two gestures.
//
// To expose the sample-count dependence, the test regime is deliberately
// hard: windows are NOT inflated by the generalization minimum (MinWidth 0,
// ScaleFactor 1.05 — the windows must earn their width from the merged
// samples), and the test sessions vary execution much more strongly than
// the training jitter. With one sample the windows are degenerate and
// recall suffers; merging more samples grows them until detection
// stabilizes.
func E2SampleEfficiency(maxSamples int, seed int64) (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "F1 vs number of training samples (claim: 3-5 suffice)",
		Header: []string{"samples", "F1(swipe_right)", "F1(circle)", "mean"},
	}
	gestures := []string{kinect.GestureSwipeRight, kinect.GestureCircle}
	cfg := learn.DefaultConfig()
	cfg.ScaleFactor = 1.05
	cfg.MinWidth = 0
	cfg.Gen.MinHalfWidth = 10

	// Harder test sessions: strong per-execution variation.
	var sessions []kinect.Session
	for si := int64(0); si < 3; si++ {
		sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), seed+900+si)
		if err != nil {
			return t, err
		}
		var script []kinect.ScriptItem
		script = append(script, kinect.ScriptItem{Idle: time.Second})
		for r := 0; r < 3; r++ {
			for _, g := range append(gestures, kinect.GesturePush) {
				script = append(script,
					kinect.ScriptItem{Gesture: g, Opts: kinect.PerformOpts{PathJitter: 35}},
					kinect.ScriptItem{Idle: 1200 * time.Millisecond},
				)
			}
		}
		sess, err := sim.RunScript(script, baseTime().Add(time.Duration(si)*time.Hour), nil)
		if err != nil {
			return t, err
		}
		sessions = append(sessions, sess)
	}

	for k := 1; k <= maxSamples; k++ {
		results, err := learnQueries(kinect.DefaultProfile(), gestures, k, seed+int64(k)*7, cfg)
		if err != nil {
			return t, err
		}
		texts := []string{results[gestures[0]].QueryText, results[gestures[1]].QueryText}
		var f1a, f1b float64
		for _, sess := range sessions {
			out, err := runDetection(transform.DefaultConfig(), texts, sess)
			if err != nil {
				return t, err
			}
			f1a += out[gestures[0]].F1()
			f1b += out[gestures[1]].F1()
		}
		f1a /= float64(len(sessions))
		f1b /= float64(len(sessions))
		t.AddRow(iStr(k), f2(f1a), f2(f1b), f2((f1a+f1b)/2))
	}
	t.Notes = append(t.Notes,
		"hard regime: no minimum window width; widths must come from merged samples (training jitter 25 mm, test jitter 35 mm)")
	return t, nil
}

// E3TransformAblation reproduces the §3.2 invariance argument: recall of a
// swipe_right learned from the default user, detected on three different
// users, with each transformation step toggled. Learning and detection
// share the same transform configuration (as they do in the real pipeline).
func E3TransformAblation(seed int64) (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "Transformation ablation — recall per user (§3.2)",
		Header: []string{"config", "adult", "child", "tall+15°", "turned-40°", "falsePos"},
	}
	configs := []struct {
		name string
		cfg  transform.Config
	}{
		{"full", transform.DefaultConfig()},
		{"no-shift", transform.Config{Shift: false, Rotate: true, Scale: true, ReferenceForearm: 250, ForearmSmoothing: 0.2}},
		{"no-rotate", transform.Config{Shift: true, Rotate: false, Scale: true, ReferenceForearm: 250, ForearmSmoothing: 0.2}},
		{"no-scale", transform.Config{Shift: true, Rotate: true, Scale: false, ReferenceForearm: 250}},
		{"none", transform.Config{ReferenceForearm: 250}},
	}
	turned := kinect.Profile{Name: "turned", Height: 1800, Position: geom.V(-500, 100, 2600), Yaw: geom.Radians(-40)}
	users := []kinect.Profile{kinect.DefaultProfile(), kinect.ChildProfile(), kinect.TallProfile(), turned}

	for _, c := range configs {
		lcfg := learn.DefaultConfig()
		lcfg.Transform = c.cfg
		results, err := learnQueries(kinect.DefaultProfile(), []string{kinect.GestureSwipeRight}, 4, seed, lcfg)
		if err != nil {
			return t, err
		}
		text := results[kinect.GestureSwipeRight].QueryText
		row := []string{c.name}
		var fps int
		for ui, u := range users {
			sess, err := testSession(u, []string{kinect.GestureSwipeRight, kinect.GesturePush}, 3, seed+int64(ui)*13)
			if err != nil {
				return t, err
			}
			out, err := runDetection(c.cfg, []string{text}, sess)
			if err != nil {
				return t, err
			}
			o := out[kinect.GestureSwipeRight]
			row = append(row, f2(o.Recall()))
			fps += o.FalsePositives
		}
		row = append(row, iStr(fps))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"expect: full config ≈ 1.0 recall everywhere; no-shift/no-rotate/no-scale break the users they claim to normalize")
	return t, nil
}

// E4MaxDistSweep reproduces the §3.3.1 threshold discussion: the relative
// max_dist fraction controls the number of extracted windows, trading
// detection complexity against overfitting.
func E4MaxDistSweep(seed int64) (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "max_dist sweep — windows vs detection quality (§3.3.1)",
		Header: []string{"fraction", "poses", "F1", "predicates"},
	}
	sess, err := testSession(kinect.DefaultProfile(), []string{kinect.GestureCircle, kinect.GesturePush}, 4, seed+5)
	if err != nil {
		return t, err
	}
	for _, frac := range []float64{0.05, 0.10, 0.15, 0.22, 0.30, 0.45, 0.60} {
		cfg := learn.DefaultConfig()
		cfg.Sampler.RelativeFraction = frac
		results, err := learnQueries(kinect.DefaultProfile(), []string{kinect.GestureCircle}, 4, seed, cfg)
		if err != nil {
			return t, err
		}
		res := results[kinect.GestureCircle]
		out, err := runDetection(transform.DefaultConfig(), []string{res.QueryText}, sess)
		if err != nil {
			return t, err
		}
		poses := len(res.Model.Windows)
		t.AddRow(fmt.Sprintf("%.2f", frac), iStr(poses), f2(out[kinect.GestureCircle].F1()), iStr(poses*3))
	}
	t.Notes = append(t.Notes,
		"small fractions overfit (many windows, slower, brittle); large fractions underfit (too few poses to stay selective)")
	return t, nil
}

// E5ScalingOverlap reproduces the §3.3.2 overlap discussion: widening
// windows generalizes patterns until different gestures start detecting
// the same movement. swipe_right and swipe_left share the same spatial
// region in opposite order — the paper's canonical conflict case.
func E5ScalingOverlap(seed int64) (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "Window scaling vs overlap problem (§3.3.2)",
		Header: []string{"scale", "recall(right)", "recall(left)", "crossFP", "overlapPairs"},
	}
	gestures := []string{kinect.GestureSwipeRight, kinect.GestureSwipeLeft}
	sess, err := testSession(kinect.DefaultProfile(), gestures, 4, seed+3)
	if err != nil {
		return t, err
	}
	for _, scale := range []float64{1.0, 1.3, 2.0, 3.5, 6.0} {
		cfg := learn.DefaultConfig()
		cfg.ScaleFactor = scale
		results, err := learnQueries(kinect.DefaultProfile(), gestures, 4, seed, cfg)
		if err != nil {
			return t, err
		}
		texts := []string{results[gestures[0]].QueryText, results[gestures[1]].QueryText}
		out, err := runDetection(transform.DefaultConfig(), texts, sess)
		if err != nil {
			return t, err
		}
		crossFP := out[gestures[0]].FalsePositives + out[gestures[1]].FalsePositives

		// §3.3.3 validation predicts the conflict statically.
		models := []learn.Model{results[gestures[0]].Model, results[gestures[1]].Model}
		overlaps := 0
		for _, ov := range checkPairOverlaps(models) {
			_ = ov
			overlaps++
		}
		t.AddRow(fmt.Sprintf("%.1f", scale),
			f2(out[gestures[0]].Recall()), f2(out[gestures[1]].Recall()),
			iStr(crossFP), iStr(overlaps))
	}
	t.Notes = append(t.Notes,
		"moderate scaling improves recall; excessive scaling raises cross-gesture false positives — the overlap problem")
	return t, nil
}

// E1Trace reproduces the sensor trace shown on the right of Fig. 1: the
// raw tuple stream of a swipe_right (torso + right hand columns).
func E1Trace(seed int64, rows int) (Table, error) {
	t := Table{
		ID:     "E1-trace",
		Title:  "Fig. 1 (right) — raw sensor tuples during swipe_right",
		Header: []string{"torsoX", "torsoY", "torsoZ", "rHandX", "rHandY", "rHandZ"},
	}
	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), seed)
	if err != nil {
		return t, err
	}
	perf, err := sim.Perform(kinect.StandardGestures()[kinect.GestureSwipeRight], baseTime(), kinect.PerformOpts{})
	if err != nil {
		return t, err
	}
	count := 0
	for _, f := range perf.Frames {
		if f.Ts.Before(perf.PathStart) || count >= rows {
			continue
		}
		torso, hand := f.Pos(kinect.Torso), f.Pos(kinect.RightHand)
		t.AddRow(
			fmt.Sprintf("%.2f", torso.X), fmt.Sprintf("%.2f", torso.Y), fmt.Sprintf("%.2f", torso.Z),
			fmt.Sprintf("%.2f", hand.X), fmt.Sprintf("%.2f", hand.Y), fmt.Sprintf("%.2f", hand.Z),
		)
		count++
	}
	return t, nil
}

// DetectionLatency summarizes true-positive latency over a session —
// support data for E6.
func DetectionLatency(out map[string]detect.Outcome) time.Duration {
	var all detect.Outcome
	for _, o := range out {
		all = all.Merge(o)
	}
	return all.MeanLatency()
}
