package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// These tests run each experiment end-to-end at small scale and assert the
// qualitative shape the paper claims — they are the executable version of
// EXPERIMENTS.md.

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestE1SwipeRight(t *testing.T) {
	tab, queryText, err := E1SwipeRight(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatalf("E1 windows = %d", len(tab.Rows))
	}
	if !strings.Contains(queryText, `SELECT "swipe_right"`) {
		t.Error("query text wrong")
	}
	// Detection note must report full recall (TP>=1, FN=0).
	joined := strings.Join(tab.Notes, " ")
	if !strings.Contains(joined, "FN=0") {
		t.Errorf("E1 notes: %v", tab.Notes)
	}
	if tab.String() == "" {
		t.Error("empty render")
	}
}

func TestE1Trace(t *testing.T) {
	tab, err := E1Trace(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Errorf("trace rows = %d", len(tab.Rows))
	}
}

func TestE2SampleEfficiency(t *testing.T) {
	tab, err := E2SampleEfficiency(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The paper's claim: by 3-5 samples the result is acceptable. Require
	// the mean F1 at >=3 samples to be at least 0.8 and no worse than at 1
	// sample.
	meanAt := func(row int) float64 { return parseF(t, tab.Rows[row][3]) }
	if meanAt(2) < 0.8 || meanAt(3) < 0.8 || meanAt(4) < 0.8 {
		t.Errorf("F1 at 3-5 samples below 0.8: %v", tab.Rows)
	}
}

func TestE3TransformAblation(t *testing.T) {
	tab, err := E3TransformAblation(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Row 0 = full config: recall ≈ 1 for every user.
	for col := 1; col <= 3; col++ {
		if parseF(t, tab.Rows[0][col]) < 0.99 {
			t.Errorf("full transform recall[%d] = %s", col, tab.Rows[0][col])
		}
	}
	// no-shift breaks the child user (different stand-off position).
	if parseF(t, tab.Rows[1][2]) > 0.5 {
		t.Errorf("no-shift should break the child user: %v", tab.Rows[1])
	}
	// no-scale breaks the child user (different body size).
	if parseF(t, tab.Rows[3][2]) > 0.5 {
		t.Errorf("no-scale should break the child user: %v", tab.Rows[3])
	}
	// none breaks everyone except possibly the adult at the same spot —
	// but the adult profile IS the training profile, and without shift the
	// camera offset still matches, so just require child broken.
	if parseF(t, tab.Rows[4][2]) > 0.5 {
		t.Errorf("no transform should break the child user: %v", tab.Rows[4])
	}
}

func TestE4MaxDistSweep(t *testing.T) {
	tab, err := E4MaxDistSweep(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Window count decreases monotonically as the fraction grows.
	prev := 1 << 30
	for _, r := range tab.Rows {
		poses, _ := strconv.Atoi(r[1])
		if poses > prev {
			t.Errorf("window count not monotone: %v", tab.Rows)
			break
		}
		prev = poses
	}
	// The default fraction (0.22) achieves F1 >= 0.8.
	for _, r := range tab.Rows {
		if r[0] == "0.22" && parseF(t, r[2]) < 0.8 {
			t.Errorf("default fraction F1 = %s", r[2])
		}
	}
}

func TestE5ScalingOverlap(t *testing.T) {
	tab, err := E5ScalingOverlap(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	fpFirst, _ := strconv.Atoi(first[3])
	fpLast, _ := strconv.Atoi(last[3])
	if fpLast <= fpFirst {
		t.Errorf("expected cross-detections to grow with scaling: first=%d last=%d", fpFirst, fpLast)
	}
	// Static overlap analysis flags the conflict at high scale.
	ovLast, _ := strconv.Atoi(last[4])
	if ovLast == 0 {
		t.Error("validation found no overlaps at extreme scaling")
	}
}

func TestE6EngineThroughput(t *testing.T) {
	tab, err := E6EngineThroughput(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Even at 64 queries the engine must beat 30 Hz comfortably.
	last := tab.Rows[len(tab.Rows)-1]
	if tps := parseF(t, last[1]); tps < 300 {
		t.Errorf("64-query throughput = %s tuples/s", last[1])
	}
}

func TestE7Optimization(t *testing.T) {
	tab, err := E7Optimization(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	posesOver, _ := strconv.Atoi(tab.Rows[0][1])
	posesMerged, _ := strconv.Atoi(tab.Rows[1][1])
	if posesMerged >= posesOver {
		t.Errorf("merging did not reduce poses: %v", tab.Rows)
	}
	// Merging must preserve detection quality.
	if parseF(t, tab.Rows[1][3]) < 0.9 {
		t.Errorf("merged F1 = %s", tab.Rows[1][3])
	}
	// Elimination keeps the gesture detectable (recall), though precision
	// may drop — that is the experiment's honest finding.
	if parseF(t, tab.Rows[2][3]) < 0.5 {
		t.Errorf("optimized F1 = %s", tab.Rows[2][3])
	}
}

func TestE8Baselines(t *testing.T) {
	tab, err := E8Baselines(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "paper-learner" {
		t.Errorf("row order: %v", tab.Rows)
	}
	// The paper pipeline reaches high F1 with 3 samples.
	if parseF(t, tab.Rows[0][1]) < 0.8 {
		t.Errorf("paper learner F1 = %s", tab.Rows[0][1])
	}
	// DTW classifies segmented samples well too (it's a strong classifier,
	// just not a stream detector).
	if !strings.HasPrefix(tab.Rows[2][0], "dtw") {
		t.Errorf("rows: %v", tab.Rows)
	}
}

func TestE9Recorder(t *testing.T) {
	tab, err := E9Recorder(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		gestures, _ := strconv.Atoi(r[1])
		covered, _ := strconv.Atoi(r[3])
		if covered < gestures {
			t.Errorf("noise %s: covered %d of %d gestures", r[0], covered, gestures)
		}
	}
}

func TestE10WindowMode(t *testing.T) {
	tab, err := E10WindowMode(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Raw centroid MBRs (row 0) must be clearly worse than scaled
	// centroids (row 1): the literal §3.3.2 reading depends on the
	// generalization step.
	if parseF(t, tab.Rows[0][4]) >= parseF(t, tab.Rows[1][4]) {
		t.Errorf("raw centroid windows unexpectedly competitive: %v", tab.Rows)
	}
	// Scaled variants of both modes reach F1 >= 0.9 across users.
	for _, row := range [][]string{tab.Rows[1], tab.Rows[4]} {
		if parseF(t, row[4]) < 0.9 {
			t.Errorf("scaled variant below 0.9: %v", row)
		}
	}
}
