package experiments

import (
	"fmt"

	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/transform"
)

// E10WindowMode is the design-choice ablation called out in DESIGN.md: what
// should a merged pose window cover? §3.3.2 literally says "MBRs around all
// cluster centroids with the same sequence number" (WindowCentroids); this
// implementation defaults to unioning the member-point bounds
// (WindowClusterBounds) because centroid MBRs of few samples are degenerate
// and rely entirely on the generalization scaling for tolerance. The
// experiment quantifies the trade-off at two scaling levels.
func E10WindowMode(seed int64) (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "Window mode ablation — centroid MBRs vs cluster bounds (§3.3.2)",
		Header: []string{"mode", "scale", "minWidth", "F1(same user)", "F1(other users)", "avgWidth"},
	}
	gestures := []string{kinect.GestureSwipeRight}
	sameUser, err := testSession(kinect.DefaultProfile(), []string{kinect.GestureSwipeRight, kinect.GesturePush}, 4, seed+1)
	if err != nil {
		return t, err
	}
	otherA, err := testSession(kinect.ChildProfile(), []string{kinect.GestureSwipeRight, kinect.GesturePush}, 2, seed+2)
	if err != nil {
		return t, err
	}
	otherB, err := testSession(kinect.TallProfile(), []string{kinect.GestureSwipeRight, kinect.GesturePush}, 2, seed+3)
	if err != nil {
		return t, err
	}

	type variant struct {
		name     string
		mode     learn.WindowMode
		scale    float64
		minWidth float64
	}
	variants := []variant{
		{"centroids", learn.WindowCentroids, 1.0, 0},
		{"centroids", learn.WindowCentroids, 1.3, 100},
		{"centroids", learn.WindowCentroids, 2.5, 100},
		{"bounds", learn.WindowClusterBounds, 1.0, 0},
		{"bounds", learn.WindowClusterBounds, 1.3, 100},
	}
	for _, v := range variants {
		cfg := learn.DefaultConfig()
		cfg.Merger.Mode = v.mode
		cfg.ScaleFactor = v.scale
		cfg.MinWidth = v.minWidth
		if v.minWidth == 0 {
			cfg.Gen.MinHalfWidth = 5
		}
		results, err := learnQueries(kinect.DefaultProfile(), gestures, 4, seed, cfg)
		if err != nil {
			return t, err
		}
		res := results[kinect.GestureSwipeRight]
		texts := []string{res.QueryText}

		outSame, err := runDetection(transform.DefaultConfig(), texts, sameUser)
		if err != nil {
			return t, err
		}
		var f1Other float64
		for _, sess := range []kinect.Session{otherA, otherB} {
			out, err := runDetection(transform.DefaultConfig(), texts, sess)
			if err != nil {
				return t, err
			}
			f1Other += out[kinect.GestureSwipeRight].F1()
		}
		f1Other /= 2

		var widthSum float64
		var widthN int
		for _, w := range res.Model.Windows {
			for _, width := range w.Width() {
				widthSum += width
				widthN++
			}
		}
		t.AddRow(v.name, fmt.Sprintf("%.1f", v.scale), f0(v.minWidth),
			f2(outSame[kinect.GestureSwipeRight].F1()), f2(f1Other), f0(widthSum/float64(widthN)))
	}
	t.Notes = append(t.Notes,
		"raw centroid MBRs (scale 1.0, no minimum width) are too tight for fresh executions; the literal §3.3.2 reading *requires* the scaling step, while cluster bounds work even unscaled")
	return t, nil
}
