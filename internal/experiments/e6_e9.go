package experiments

import (
	"fmt"
	"time"

	"gesturecep/internal/baseline"
	"gesturecep/internal/detect"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/query"
	"gesturecep/internal/transform"
	"gesturecep/internal/validate"
)

// queryText renders a query AST to its concrete syntax.
func queryText(q *query.Query) string { return query.Print(q) }

// checkPairOverlaps runs the §3.3.3 pairwise window intersection test and
// returns one string per overlapping window pair.
func checkPairOverlaps(models []learn.Model) []string {
	var out []string
	rep := validate.CheckAll(models, 0.3)
	for _, o := range rep.Overlaps {
		out = append(out, o.String())
	}
	return out
}

// E6EngineThroughput measures the stream engine under increasing query
// load: the paper's substrate must sustain the Kinect's 30 Hz tuple rate
// (§2). Reported: wall-clock tuples/second and the real-time factor.
func E6EngineThroughput(seed int64) (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  "Engine throughput vs deployed queries (must sustain 30 Hz)",
		Header: []string{"queries", "tuples/s", "x realtime", "avg poses/query"},
	}
	// Learn one query per standard gesture; replicate to reach the target
	// counts.
	gestures := []string{
		kinect.GestureSwipeRight, kinect.GestureSwipeLeft, kinect.GestureSwipeUp,
		kinect.GestureSwipeDown, kinect.GesturePush, kinect.GesturePull,
		kinect.GestureCircle, kinect.GestureRaiseHand,
	}
	results, err := learnQueries(kinect.DefaultProfile(), gestures, 3, seed, learn.DefaultConfig())
	if err != nil {
		return t, err
	}
	var texts []string
	var totalPoses int
	for _, g := range gestures {
		texts = append(texts, results[g].QueryText)
		totalPoses += len(results[g].Model.Windows)
	}

	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), seed+77)
	if err != nil {
		return t, err
	}
	sess, err := sim.RunScript([]kinect.ScriptItem{
		{Idle: 2 * time.Second},
		{Gesture: kinect.GestureSwipeRight},
		{Idle: time.Second},
		{Gesture: kinect.GestureCircle},
		{Idle: 2 * time.Second},
	}, baseTime(), nil)
	if err != nil {
		return t, err
	}

	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		h, err := detect.NewHarness(transform.DefaultConfig())
		if err != nil {
			return t, err
		}
		for i := 0; i < n; i++ {
			// Re-deploying the same text under the engine is fine: each
			// deployment is an independent NFA.
			if err := h.Deploy(texts[i%len(texts)]); err != nil {
				return t, err
			}
		}
		tps, err := h.Throughput(sess.Frames)
		if err != nil {
			return t, err
		}
		t.AddRow(iStr(n), f0(tps), fmt.Sprintf("%.0fx", tps/30),
			fmt.Sprintf("%.1f", float64(totalPoses)/float64(len(gestures))))
	}
	t.Notes = append(t.Notes, "x realtime = throughput / 30 Hz Kinect rate")
	return t, nil
}

// E7Optimization measures the §3.3.3 post-processing: an intentionally
// overfitted pattern (small max_dist → many windows) before and after
// window merging + coordinate elimination — predicate evaluations per
// tuple drop while F1 holds.
func E7Optimization(seed int64) (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "Validation/optimization ablation (§3.3.3)",
		Header: []string{"variant", "poses", "predCalls/tuple", "F1"},
	}
	// Overfit on purpose: fine-grained sampling of the push gesture, whose
	// movement is almost pure Z — X and Y are near-irrelevant.
	cfg := learn.DefaultConfig()
	cfg.Sampler.RelativeFraction = 0.08
	samples, err := trainSamples(kinect.DefaultProfile(), kinect.GesturePush, 4, seed)
	if err != nil {
		return t, err
	}
	res, err := learn.Learn(kinect.GesturePush, samples, cfg)
	if err != nil {
		return t, err
	}
	sess, err := testSession(kinect.DefaultProfile(), []string{kinect.GesturePush, kinect.GestureSwipeRight}, 4, seed+9)
	if err != nil {
		return t, err
	}

	measure := func(variant string, model learn.Model) error {
		q, err := learn.GenerateQuery(model, learn.DefaultGenConfig())
		if err != nil {
			return err
		}
		h, err := detect.NewHarness(transform.DefaultConfig())
		if err != nil {
			return err
		}
		id, err := h.Engine.Deploy(q)
		if err != nil {
			return err
		}
		out, err := h.RunAndEvaluate(sess, detect.DefaultTolerance)
		if err != nil {
			return err
		}
		processed, predCalls, _, _, err := h.Engine.QueryStats(id)
		if err != nil {
			return err
		}
		perTuple := 0.0
		if processed > 0 {
			perTuple = float64(predCalls) / float64(processed)
		}
		t.AddRow(variant, iStr(len(model.Windows)), f2(perTuple), f2(out[kinect.GesturePush].F1()))
		return nil
	}

	if err := measure("overfitted", res.Model); err != nil {
		return t, err
	}
	// Merge via Optimize with elimination disabled (minSpread 0): it
	// raises the threshold until at least two poses survive, since a
	// single wide window is no sequence pattern at all.
	merged, err := validate.Optimize(res.Model, 0.25, 0)
	if err != nil {
		return t, err
	}
	if err := measure("merged", merged); err != nil {
		return t, err
	}
	optimized, err := validate.Optimize(res.Model, 0.25, 120)
	if err != nil {
		return t, err
	}
	if err := measure("merged+elim", optimized); err != nil {
		return t, err
	}
	t.Notes = append(t.Notes,
		"predCalls/tuple is the NFA work per arriving sensor tuple",
		"eliminating coordinates shrinks each predicate but widens the window, so more partial runs stay alive — the paper's 'decrease detection effort' comes from merging, not elimination")
	return t, nil
}

// E8Baselines compares the paper's learner against (a) a DBSCAN-based pose
// extractor feeding the same merging/generation backend (ref [2]) and
// (b) a DTW 1-NN template classifier (the §1 "static ML model" approach),
// all trained on the same 3 samples per gesture.
func E8Baselines(seed int64) (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "Learner vs DBSCAN sampler vs DTW-1NN (3 training samples)",
		Header: []string{"method", "F1/accuracy", "poses|templates", "cost"},
	}
	gestures := []string{kinect.GestureSwipeRight, kinect.GesturePush, kinect.GestureCircle}
	const nTrain = 3

	// --- (1) The paper's pipeline.
	results, err := learnQueries(kinect.DefaultProfile(), gestures, nTrain, seed, learn.DefaultConfig())
	if err != nil {
		return t, err
	}
	sess, err := testSession(kinect.DefaultProfile(), gestures, 4, seed+21)
	if err != nil {
		return t, err
	}
	var texts []string
	var posesSum int
	for _, g := range gestures {
		texts = append(texts, results[g].QueryText)
		posesSum += len(results[g].Model.Windows)
	}
	start := time.Now()
	out, err := runDetection(transform.DefaultConfig(), texts, sess)
	if err != nil {
		return t, err
	}
	cepTime := time.Since(start)
	var f1Sum float64
	for _, g := range gestures {
		f1Sum += out[g].F1()
	}
	t.AddRow("paper-learner", f2(f1Sum/float64(len(gestures))), iStr(posesSum),
		fmt.Sprintf("%s stream", cepTime.Round(time.Millisecond)))

	// --- (2) DBSCAN front-end into the same merge/generate backend.
	dbF1, dbPoses, err := dbscanPipeline(gestures, nTrain, seed, sess)
	if err != nil {
		t.AddRow("dbscan-sampler", "failed: "+err.Error(), "-", "-")
	} else {
		t.AddRow("dbscan-sampler", f2(dbF1), iStr(dbPoses), "same backend")
	}

	// --- (3) DTW 1-NN on recorder-segmented samples.
	acc, classifyCost, nTemplates, err := dtwPipeline(gestures, nTrain, seed)
	if err != nil {
		return t, err
	}
	t.AddRow("dtw-1nn", f2(acc), iStr(nTemplates),
		fmt.Sprintf("%s/classification", classifyCost.Round(time.Microsecond)))

	t.Notes = append(t.Notes,
		"DTW accuracy is over pre-segmented samples (it cannot run on the raw stream); the CEP methods detect on the unsegmented stream")
	return t, nil
}

// dbscanPipeline swaps the distance-based sampler for DBSCAN and keeps the
// rest of the pipeline.
func dbscanPipeline(gestures []string, nTrain int, seed int64, sess kinect.Session) (float64, int, error) {
	var texts []string
	var posesSum int
	for gi, g := range gestures {
		samples, err := trainSamples(kinect.DefaultProfile(), g, nTrain, seed+int64(gi)*101)
		if err != nil {
			return 0, 0, err
		}
		merger, err := learn.NewMerger(learn.DefaultMergerConfig(), []kinect.Joint{kinect.RightHand})
		if err != nil {
			return 0, 0, err
		}
		for _, frames := range samples {
			tf, err := transform.FrameSlice(transform.DefaultConfig(), frames)
			if err != nil {
				return 0, 0, err
			}
			sample, err := learn.SampleFromFrames(tf, []kinect.Joint{kinect.RightHand})
			if err != nil {
				return 0, 0, err
			}
			clusters, err := baseline.DBSCANSampler(sample, 45, 3)
			if err != nil {
				return 0, 0, fmt.Errorf("gesture %q: %w", g, err)
			}
			if _, err := merger.Add(clusters); err != nil {
				return 0, 0, err
			}
		}
		model, err := merger.Model(g)
		if err != nil {
			return 0, 0, err
		}
		model, err = model.ScaleWindows(1.3, 100)
		if err != nil {
			return 0, 0, err
		}
		q, err := learn.GenerateQuery(model, learn.DefaultGenConfig())
		if err != nil {
			return 0, 0, err
		}
		texts = append(texts, queryText(q))
		posesSum += len(model.Windows)
	}
	out, err := runDetection(transform.DefaultConfig(), texts, sess)
	if err != nil {
		return 0, 0, err
	}
	var f1Sum float64
	for _, g := range gestures {
		f1Sum += out[g].F1()
	}
	return f1Sum / float64(len(gestures)), posesSum, nil
}

// dtwPipeline trains the DTW classifier and measures classification
// accuracy on fresh segmented samples.
func dtwPipeline(gestures []string, nTrain int, seed int64) (acc float64, cost time.Duration, templates int, err error) {
	clf := baseline.NewDTWClassifier(20)
	toSeq := func(frames []kinect.Frame) ([][]float64, error) {
		tf, err := transform.FrameSlice(transform.DefaultConfig(), frames)
		if err != nil {
			return nil, err
		}
		sample, err := learn.SampleFromFrames(tf, []kinect.Joint{kinect.RightHand})
		if err != nil {
			return nil, err
		}
		return baseline.SampleSequence(sample), nil
	}
	for gi, g := range gestures {
		samples, err := trainSamples(kinect.DefaultProfile(), g, nTrain, seed+int64(gi)*101)
		if err != nil {
			return 0, 0, 0, err
		}
		for _, frames := range samples {
			seq, err := toSeq(frames)
			if err != nil {
				return 0, 0, 0, err
			}
			if err := clf.AddTemplate(g, seq); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	correct, total := 0, 0
	var totalCost time.Duration
	for gi, g := range gestures {
		samples, err := trainSamples(kinect.DefaultProfile(), g, 4, seed+5000+int64(gi)*77)
		if err != nil {
			return 0, 0, 0, err
		}
		for _, frames := range samples {
			seq, err := toSeq(frames)
			if err != nil {
				return 0, 0, 0, err
			}
			start := time.Now()
			name, _, err := clf.Classify(seq)
			totalCost += time.Since(start)
			if err != nil {
				return 0, 0, 0, err
			}
			if name == g {
				correct++
			}
			total++
		}
	}
	return float64(correct) / float64(total), totalCost / time.Duration(total), clf.TemplateCount(), nil
}

// E9Recorder evaluates the §3.1 motion-detection segmentation: how many of
// the scripted gestures the recorder isolates and how tight the boundaries
// are.
func E9Recorder(seed int64) (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "Motion-detection recorder segmentation (§3.1)",
		Header: []string{"noise(mm)", "gestures", "segments", "covered", "meanStartErr", "meanEndErr"},
	}
	for _, jitter := range []float64{0, 4, 8} {
		noise := kinect.NoiseModel{Jitter: jitter, DropoutProb: 0.01}
		sim, err := kinect.NewSimulator(kinect.DefaultProfile(), noise, seed)
		if err != nil {
			return t, err
		}
		var script []kinect.ScriptItem
		script = append(script, kinect.ScriptItem{Idle: 2 * time.Second})
		gs := []string{kinect.GestureSwipeRight, kinect.GestureCircle, kinect.GesturePush, kinect.GestureRaiseHand}
		for _, g := range gs {
			script = append(script,
				kinect.ScriptItem{Gesture: g},
				kinect.ScriptItem{Idle: 2 * time.Second},
			)
		}
		sess, err := sim.RunScript(script, baseTime(), nil)
		if err != nil {
			return t, err
		}
		segments, err := kinect.SegmentFrames(kinect.DefaultRecorderConfig(), sess.Frames)
		if err != nil {
			return t, err
		}
		covered := 0
		var startErr, endErr time.Duration
		for _, truth := range sess.Truth {
			best := time.Duration(-1)
			var bs, be time.Duration
			for _, seg := range segments {
				if len(seg) == 0 {
					continue
				}
				s, e := seg[0].Ts, seg[len(seg)-1].Ts
				if e.Before(truth.Start) || s.After(truth.End) {
					continue
				}
				ds := absDur(s.Sub(truth.Start))
				de := absDur(e.Sub(truth.End))
				if best < 0 || ds+de < best {
					best, bs, be = ds+de, ds, de
				}
			}
			if best >= 0 {
				covered++
				startErr += bs
				endErr += be
			}
		}
		if covered > 0 {
			startErr /= time.Duration(covered)
			endErr /= time.Duration(covered)
		}
		t.AddRow(f0(jitter), iStr(len(sess.Truth)), iStr(len(segments)), iStr(covered),
			durMs(startErr), durMs(endErr))
	}
	t.Notes = append(t.Notes,
		"start error includes the approach movement the recorder deliberately captures before the scripted path")
	return t, nil
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}
