// Package experiments implements the reproduction experiments E1–E10 from
// DESIGN.md. Each experiment returns a Table whose rows are the series the
// paper's figures/claims describe; cmd/gesturebench prints them and
// bench_test.go wraps them as benchmarks.
//
// The paper is a demo paper without numbered result tables, so the
// experiments quantify its figures and prose claims: Fig. 1 (E1), the
// "3-5 samples suffice" claim (E2), the §3.2 invariance transformation
// (E3), the max_dist sampling threshold (E4), the window-scaling/overlap
// trade-off (E5), the 30 Hz real-time requirement (E6), the §3.3.3
// optimizations (E7), baselines (E8), the §3.1 recorder (E9) and the
// window-mode design ablation (E10).
package experiments

import (
	"fmt"
	"strings"
	"time"

	"gesturecep/internal/detect"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/transform"
)

// Table is a printable experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as fixed-width text.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// baseTime anchors all synthetic sessions.
func baseTime() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

// trainSamples records n samples of a gesture with the given user.
func trainSamples(profile kinect.Profile, gestureName string, n int, seed int64) ([][]kinect.Frame, error) {
	sim, err := kinect.NewSimulator(profile, kinect.DefaultNoise(), seed)
	if err != nil {
		return nil, err
	}
	spec, ok := kinect.StandardGestures()[gestureName]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown gesture %q", gestureName)
	}
	return sim.Samples(spec, n, baseTime(), kinect.PerformOpts{PathJitter: 25})
}

// testSession builds a labelled session containing reps repetitions of each
// listed gesture interleaved with idle periods.
func testSession(profile kinect.Profile, gestures []string, reps int, seed int64) (kinect.Session, error) {
	sim, err := kinect.NewSimulator(profile, kinect.DefaultNoise(), seed)
	if err != nil {
		return kinect.Session{}, err
	}
	var script []kinect.ScriptItem
	script = append(script, kinect.ScriptItem{Idle: time.Second})
	for r := 0; r < reps; r++ {
		for _, g := range gestures {
			script = append(script,
				kinect.ScriptItem{Gesture: g, Opts: kinect.PerformOpts{PathJitter: 18}},
				kinect.ScriptItem{Idle: 1500 * time.Millisecond},
			)
		}
	}
	return sim.RunScript(script, baseTime().Add(time.Hour), nil)
}

// learnQueries learns each gesture from n samples and returns the generated
// query texts in order.
func learnQueries(profile kinect.Profile, gestures []string, n int, seed int64, cfg learn.Config) (map[string]*learn.Result, error) {
	out := make(map[string]*learn.Result, len(gestures))
	for i, g := range gestures {
		samples, err := trainSamples(profile, g, n, seed+int64(i)*101)
		if err != nil {
			return nil, err
		}
		res, err := learn.Learn(g, samples, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: learning %q: %w", g, err)
		}
		out[g] = res
	}
	return out, nil
}

// runDetection deploys the queries in a fresh harness with the given
// transform config and evaluates the session.
func runDetection(cfg transform.Config, queryTexts []string, sess kinect.Session) (map[string]detect.Outcome, error) {
	h, err := detect.NewHarness(cfg)
	if err != nil {
		return nil, err
	}
	if err := h.Deploy(queryTexts...); err != nil {
		return nil, err
	}
	return h.RunAndEvaluate(sess, detect.DefaultTolerance)
}

func f2(v float64) string          { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string          { return fmt.Sprintf("%.0f", v) }
func iStr(v int) string            { return fmt.Sprintf("%d", v) }
func durMs(d time.Duration) string { return fmt.Sprintf("%dms", d.Milliseconds()) }
