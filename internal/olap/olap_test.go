package olap

import (
	"strings"
	"testing"
)

func sampleCube(t *testing.T) *Cube {
	t.Helper()
	c, err := SampleSalesCube()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDimensionValidate(t *testing.T) {
	bad := []Dimension{
		{},
		{Name: "d"},
		{Name: "d", Levels: []string{""}},
		{Name: "d", Levels: []string{"a", "a"}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad dimension %d accepted", i)
		}
	}
}

func TestNewCubeValidation(t *testing.T) {
	if _, err := NewCube(Dimension{Name: "only", Levels: []string{"l"}}); err == nil {
		t.Error("single-dimension cube accepted")
	}
	d := Dimension{Name: "d", Levels: []string{"l"}}
	if _, err := NewCube(d, d); err == nil {
		t.Error("duplicate dimension accepted")
	}
}

func TestAddFactValidation(t *testing.T) {
	c, err := NewCube(
		Dimension{Name: "a", Levels: []string{"x"}},
		Dimension{Name: "b", Levels: []string{"y"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddFact(map[string]string{"x": "1"}, 5); err == nil {
		t.Error("fact missing level accepted")
	}
	if err := c.AddFact(map[string]string{"x": "1", "y": "2"}, 5); err != nil {
		t.Error(err)
	}
	if c.Facts() != 1 {
		t.Errorf("facts = %d", c.Facts())
	}
}

func TestSampleCubeShape(t *testing.T) {
	c := sampleCube(t)
	if c.Facts() == 0 {
		t.Fatal("no facts")
	}
	dims := c.Dimensions()
	if len(dims) != 3 || dims[0].Name != "time" {
		t.Errorf("dimensions = %v", dims)
	}
}

func TestAggregateCoarse(t *testing.T) {
	v := NewView(sampleCube(t))
	tab, err := v.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if tab.RowLevel != "year" || tab.ColLevel != "country" {
		t.Errorf("levels = %s × %s", tab.RowLevel, tab.ColLevel)
	}
	if len(tab.Rows) != 2 || len(tab.Cols) != 2 {
		t.Errorf("shape = %d × %d", len(tab.Rows), len(tab.Cols))
	}
	// Total over all cells equals total over all facts.
	var cells float64
	for _, row := range tab.Cells {
		for _, v := range row {
			cells += v
		}
	}
	if cells <= 0 {
		t.Error("empty aggregate")
	}
	if !strings.Contains(tab.String(), "year\\country") {
		t.Errorf("render: %s", tab.String())
	}
}

func TestDrillDownRollUp(t *testing.T) {
	v := NewView(sampleCube(t))
	if err := v.DrillDown(); err != nil {
		t.Fatal(err)
	}
	tab, _ := v.Aggregate()
	if tab.RowLevel != "quarter" {
		t.Errorf("after drill-down: %s", tab.RowLevel)
	}
	if err := v.DrillDown(); err != nil {
		t.Fatal(err)
	}
	if err := v.DrillDown(); err == nil {
		t.Error("drill below finest level accepted")
	}
	if err := v.RollUp(); err != nil {
		t.Fatal(err)
	}
	if err := v.RollUp(); err != nil {
		t.Fatal(err)
	}
	if err := v.RollUp(); err == nil {
		t.Error("roll above coarsest level accepted")
	}
	if v.Depth("time") != 1 {
		t.Errorf("depth = %d", v.Depth("time"))
	}
}

func TestPivotAndRotate(t *testing.T) {
	v := NewView(sampleCube(t))
	v.Pivot()
	if v.RowDim() != "geo" || v.ColDim() != "time" {
		t.Errorf("after pivot: %s × %s", v.RowDim(), v.ColDim())
	}
	v.RotateDims()
	if v.ColDim() != "product" {
		t.Errorf("after rotate: col = %s", v.ColDim())
	}
	// Rotation never selects the row dimension.
	for i := 0; i < 5; i++ {
		v.RotateDims()
		if v.ColDim() == v.RowDim() {
			t.Fatal("rotate selected the row dimension")
		}
	}
}

func TestSliceUnslice(t *testing.T) {
	v := NewView(sampleCube(t))
	base, _ := v.Aggregate()
	if err := v.Slice("country", "DE"); err != nil {
		t.Fatal(err)
	}
	sliced, _ := v.Aggregate()
	if len(sliced.Cols) != 1 || sliced.Cols[0] != "DE" {
		t.Errorf("sliced cols = %v", sliced.Cols)
	}
	if err := v.Slice("nosuch", "x"); err == nil {
		t.Error("unknown level accepted")
	}
	if !v.Unslice("country") {
		t.Error("unslice missed")
	}
	if v.Unslice("country") {
		t.Error("double unslice reported true")
	}
	back, _ := v.Aggregate()
	if len(back.Cols) != len(base.Cols) {
		t.Error("unslice did not restore")
	}
	if len(v.Filters()) != 0 {
		t.Error("filters remain")
	}
}

func TestReset(t *testing.T) {
	v := NewView(sampleCube(t))
	_ = v.DrillDown()
	v.Pivot()
	_ = v.Slice("country", "DE")
	v.Reset()
	if v.RowDim() != "time" || v.Depth("time") != 1 || len(v.Filters()) != 0 {
		t.Error("reset incomplete")
	}
}
