// Package olap is a miniature in-memory OLAP cube with the navigation
// operations the paper's Data³ demo ([3], ICDE 2012) binds to gestures:
// drill-down, roll-up, pivot and slice over dimension hierarchies. It
// exists so the examples can demonstrate the full loop "gesture detected →
// navigation operator executed" against a real data structure.
package olap

import (
	"fmt"
	"sort"
	"strings"
)

// Dimension is a named hierarchy of attribute levels, coarse to fine, e.g.
// time: year → quarter → month.
type Dimension struct {
	Name   string
	Levels []string
}

// Validate reports structural problems.
func (d Dimension) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("olap: dimension without name")
	}
	if len(d.Levels) == 0 {
		return fmt.Errorf("olap: dimension %q has no levels", d.Name)
	}
	seen := map[string]bool{}
	for _, l := range d.Levels {
		if l == "" {
			return fmt.Errorf("olap: dimension %q has an empty level", d.Name)
		}
		if seen[l] {
			return fmt.Errorf("olap: dimension %q repeats level %q", d.Name, l)
		}
		seen[l] = true
	}
	return nil
}

// Fact is one base record: a value for every hierarchy level plus the
// measure.
type Fact struct {
	Attrs   map[string]string
	Measure float64
}

// Cube holds dimensions and base facts.
type Cube struct {
	dims  []Dimension
	facts []Fact
}

// NewCube validates the dimensions and returns an empty cube.
func NewCube(dims ...Dimension) (*Cube, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("olap: a cube needs at least 2 dimensions, got %d", len(dims))
	}
	names := map[string]bool{}
	for _, d := range dims {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if names[d.Name] {
			return nil, fmt.Errorf("olap: duplicate dimension %q", d.Name)
		}
		names[d.Name] = true
	}
	return &Cube{dims: append([]Dimension(nil), dims...)}, nil
}

// AddFact inserts a base record; it must provide a value for every level of
// every dimension.
func (c *Cube) AddFact(attrs map[string]string, measure float64) error {
	for _, d := range c.dims {
		for _, l := range d.Levels {
			if attrs[l] == "" {
				return fmt.Errorf("olap: fact missing attribute %q", l)
			}
		}
	}
	cp := make(map[string]string, len(attrs))
	for k, v := range attrs {
		cp[k] = v
	}
	c.facts = append(c.facts, Fact{Attrs: cp, Measure: measure})
	return nil
}

// Dimensions returns the cube's dimensions.
func (c *Cube) Dimensions() []Dimension { return append([]Dimension(nil), c.dims...) }

// Facts returns the number of base records.
func (c *Cube) Facts() int { return len(c.facts) }

// View is a navigation state over a cube: a current hierarchy depth per
// dimension, slice filters, and the two dimensions spanning the displayed
// crosstab (rows × columns). All of the paper's gesture-bound operators
// mutate a View; the cube itself is immutable during navigation.
type View struct {
	cube *Cube
	// depth[dim] = number of hierarchy levels expanded (1 = coarsest).
	depth map[string]int
	// filters pins level attributes to values (slice).
	filters map[string]string
	rowDim  string
	colDim  string
}

// NewView starts navigation at the coarsest level of the first two
// dimensions.
func NewView(c *Cube) *View {
	v := &View{
		cube:    c,
		depth:   make(map[string]int),
		filters: make(map[string]string),
		rowDim:  c.dims[0].Name,
		colDim:  c.dims[1].Name,
	}
	for _, d := range c.dims {
		v.depth[d.Name] = 1
	}
	return v
}

// Reset returns to the initial navigation state.
func (v *View) Reset() {
	for _, d := range v.cube.dims {
		v.depth[d.Name] = 1
	}
	v.filters = make(map[string]string)
	v.rowDim = v.cube.dims[0].Name
	v.colDim = v.cube.dims[1].Name
}

// RowDim and ColDim return the crosstab dimensions.
func (v *View) RowDim() string { return v.rowDim }

// ColDim returns the column dimension.
func (v *View) ColDim() string { return v.colDim }

// Depth returns the expanded level count of a dimension.
func (v *View) Depth(dim string) int { return v.depth[dim] }

func (v *View) dim(name string) (Dimension, error) {
	for _, d := range v.cube.dims {
		if d.Name == name {
			return d, nil
		}
	}
	return Dimension{}, fmt.Errorf("olap: unknown dimension %q", name)
}

// DrillDown expands the row dimension one hierarchy level deeper.
func (v *View) DrillDown() error {
	d, err := v.dim(v.rowDim)
	if err != nil {
		return err
	}
	if v.depth[d.Name] >= len(d.Levels) {
		return fmt.Errorf("olap: dimension %q already at finest level %q", d.Name, d.Levels[len(d.Levels)-1])
	}
	v.depth[d.Name]++
	return nil
}

// RollUp collapses the row dimension one hierarchy level.
func (v *View) RollUp() error {
	if v.depth[v.rowDim] <= 1 {
		return fmt.Errorf("olap: dimension %q already at coarsest level", v.rowDim)
	}
	v.depth[v.rowDim]--
	return nil
}

// Pivot swaps the row and column dimensions.
func (v *View) Pivot() { v.rowDim, v.colDim = v.colDim, v.rowDim }

// RotateDims replaces the column dimension with the next unused dimension
// of the cube, cycling through all dimensions.
func (v *View) RotateDims() {
	names := make([]string, len(v.cube.dims))
	for i, d := range v.cube.dims {
		names[i] = d.Name
	}
	idx := 0
	for i, n := range names {
		if n == v.colDim {
			idx = i
			break
		}
	}
	for step := 1; step <= len(names); step++ {
		cand := names[(idx+step)%len(names)]
		if cand != v.rowDim {
			v.colDim = cand
			return
		}
	}
}

// Slice pins a level attribute to a value, filtering all aggregates.
func (v *View) Slice(level, value string) error {
	found := false
	for _, d := range v.cube.dims {
		for _, l := range d.Levels {
			if l == level {
				found = true
			}
		}
	}
	if !found {
		return fmt.Errorf("olap: unknown level %q", level)
	}
	v.filters[level] = value
	return nil
}

// Unslice removes a filter; it reports whether one existed.
func (v *View) Unslice(level string) bool {
	_, ok := v.filters[level]
	delete(v.filters, level)
	return ok
}

// Filters returns the active slice filters.
func (v *View) Filters() map[string]string {
	out := make(map[string]string, len(v.filters))
	for k, val := range v.filters {
		out[k] = val
	}
	return out
}

// Table is an aggregated crosstab.
type Table struct {
	RowLevel, ColLevel string
	Rows, Cols         []string
	// Cells[r][c] is the summed measure.
	Cells [][]float64
}

// Aggregate computes the crosstab for the current navigation state: rows
// grouped by the row dimension's current level, columns by the column
// dimension's current level, measures summed over matching facts.
func (v *View) Aggregate() (Table, error) {
	rd, err := v.dim(v.rowDim)
	if err != nil {
		return Table{}, err
	}
	cd, err := v.dim(v.colDim)
	if err != nil {
		return Table{}, err
	}
	rowLevel := rd.Levels[v.depth[rd.Name]-1]
	colLevel := cd.Levels[v.depth[cd.Name]-1]

	sums := map[[2]string]float64{}
	rowSet, colSet := map[string]bool{}, map[string]bool{}
	for _, f := range v.cube.facts {
		match := true
		for level, want := range v.filters {
			if f.Attrs[level] != want {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		r, c := f.Attrs[rowLevel], f.Attrs[colLevel]
		sums[[2]string{r, c}] += f.Measure
		rowSet[r] = true
		colSet[c] = true
	}

	t := Table{RowLevel: rowLevel, ColLevel: colLevel}
	for r := range rowSet {
		t.Rows = append(t.Rows, r)
	}
	for c := range colSet {
		t.Cols = append(t.Cols, c)
	}
	sort.Strings(t.Rows)
	sort.Strings(t.Cols)
	t.Cells = make([][]float64, len(t.Rows))
	for i, r := range t.Rows {
		t.Cells[i] = make([]float64, len(t.Cols))
		for j, c := range t.Cols {
			t.Cells[i][j] = sums[[2]string{r, c}]
		}
	}
	return t, nil
}

// String renders the table as fixed-width text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", t.RowLevel+"\\"+t.ColLevel)
	for _, c := range t.Cols {
		fmt.Fprintf(&b, "%12s", c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s", r)
		for j := range t.Cols {
			fmt.Fprintf(&b, "%12.0f", t.Cells[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SampleSalesCube builds a small 3-dimensional sales cube (time, geography,
// product) with deterministic synthetic facts — the demo dataset for the
// OLAP navigation example.
func SampleSalesCube() (*Cube, error) {
	cube, err := NewCube(
		Dimension{Name: "time", Levels: []string{"year", "quarter", "month"}},
		Dimension{Name: "geo", Levels: []string{"country", "city"}},
		Dimension{Name: "product", Levels: []string{"category", "item"}},
	)
	if err != nil {
		return nil, err
	}
	years := []string{"2012", "2013"}
	months := map[string][]string{"Q1": {"Jan", "Feb", "Mar"}, "Q2": {"Apr", "May", "Jun"}}
	cities := map[string][]string{"DE": {"Berlin", "Ilmenau"}, "IT": {"Genoa", "Rome"}}
	items := map[string][]string{"camera": {"kinect", "webcam"}, "display": {"touch", "wall"}}

	val := 0.0
	for _, y := range years {
		for q, ms := range months {
			for _, m := range ms {
				for country, cs := range cities {
					for _, city := range cs {
						for cat, is := range items {
							for _, item := range is {
								val += 7
								err := cube.AddFact(map[string]string{
									"year": y, "quarter": y + q, "month": y + m,
									"country": country, "city": city,
									"category": cat, "item": item,
								}, 100+float64(int(val)%97))
								if err != nil {
									return nil, err
								}
							}
						}
					}
				}
			}
		}
	}
	return cube, nil
}
