package wire_test

import (
	"bytes"
	"testing"

	"gesturecep/internal/e2e"
	"gesturecep/internal/kinect"
	"gesturecep/internal/obs"
	"gesturecep/internal/serve"
	"gesturecep/internal/wire"
)

// TestWireTracePropagation proves trace sampling is semantically invisible:
// a session streaming with every batch trace-sampled must produce
// detections byte-identical to an untraced session and to the bare-engine
// replay, while the server-side stage histograms (queue wait, detect,
// ingest) and the client's flush-RTT histogram actually record samples —
// i.e. the timestamps really propagated, they just never touched the data.
func TestWireTracePropagation(t *testing.T) {
	frames := e2e.PlaybackFrames(t, 7)
	tuples := kinect.ToTuples(frames)
	h := e2e.Start(t, e2e.Options{Serve: serve.Config{Shards: 2}})
	ins := serve.NewInstruments()
	h.Manager(0).SetInstruments(ins)

	plan, _ := h.Registry.Get("swipe_right")
	want := e2e.EncodeDets(t, e2e.BareReplay(t, plan, e2e.WireTuples(t, tuples)))

	run := func(id string, traceEvery int) []byte {
		t.Helper()
		cl := h.Dial()
		cl.FlushRTT = obs.NewHistogram()
		rs, err := cl.Attach(id, wire.AttachOptions{BatchSize: 7, TraceEvery: traceEvery})
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range tuples {
			if err := rs.FeedTuple(tp); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rs.Flush(); err != nil {
			t.Fatal(err)
		}
		dets := e2e.EncodeDets(t, rs.Detections())
		if _, err := rs.Detach(); err != nil {
			t.Fatal(err)
		}
		if traceEvery > 0 && cl.FlushRTT.Count() == 0 {
			t.Errorf("session %s: client flush-RTT histogram recorded nothing", id)
		}
		return dets
	}

	untraced := run("untraced", 0)
	if ins.Ingest.Count() != 0 {
		t.Fatalf("untraced traffic recorded %d ingest samples; tracing must be opt-in", ins.Ingest.Count())
	}
	traced := run("traced", 1) // every batch sampled

	if bytes.Equal(want, e2e.EncodeDets(t, nil)) {
		t.Fatal("bare replay detected nothing")
	}
	if !bytes.Equal(untraced, want) {
		t.Error("untraced session diverges from bare replay")
	}
	if !bytes.Equal(traced, want) {
		t.Error("traced session diverges from bare replay — tracing perturbed detections")
	}

	// Every traced batch contributes exactly one sample per stage histogram
	// (its first tuple), so with TraceEvery=1 the counts equal the number of
	// batches: ceil(len(tuples)/7) plus any partial flush.
	batches := (len(tuples) + 6) / 7
	for name, hist := range map[string]*obs.Histogram{
		"queue_wait": ins.QueueWait, "detect": ins.Detect, "ingest": ins.Ingest,
	} {
		if got := hist.Count(); got != uint64(batches) {
			t.Errorf("%s histogram has %d samples, want %d (one per traced batch)", name, got, batches)
		}
	}
}
