package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/stream"
)

// Unit tests of the codec and the client's error plumbing, which need the
// package internals. The end-to-end protocol suites (differential,
// 64-session divergence, drop reporting, protocol errors) live in
// e2e_test.go on top of the shared internal/e2e harness.

func testTime() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

// TestCodecRoundTrip pins the canonical encodings: batches and detection
// lists survive encode → decode exactly.
func TestCodecRoundTrip(t *testing.T) {
	tuples := []stream.Tuple{
		{Ts: testTime(), Seq: 1, Fields: []float64{1.5, -2.25, 3}},
		{Ts: testTime().Add(33 * time.Millisecond), Seq: 2, Fields: []float64{0, -0.0, 9e99}},
	}
	payload, err := AppendBatch(nil, 7, 3, tuples)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if b.Handle != 7 || b.Fields != 3 || len(b.Tuples) != 2 {
		t.Fatalf("decoded batch = %+v", b)
	}
	re, err := AppendBatch(nil, b.Handle, b.Fields, b.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, re) {
		t.Error("batch encoding is not canonical under round trip")
	}

	dets := []anduin.Detection{
		{Gesture: "swipe_right", QueryID: 3, Start: testTime(), End: testTime().Add(time.Second), Measures: []float64{1, 2}},
		{Gesture: "", QueryID: 0, Start: testTime(), End: testTime()},
	}
	dp, err := AppendDetections(nil, 9, 11, dets)
	if err != nil {
		t.Fatal(err)
	}
	handle, dropped, got, err := DecodeDetections(dp)
	if err != nil {
		t.Fatal(err)
	}
	if handle != 9 || dropped != 11 || len(got) != 2 {
		t.Fatalf("decoded detections = %d/%d/%d", handle, dropped, len(got))
	}
	rd, err := AppendDetections(nil, handle, dropped, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dp, rd) {
		t.Error("detection encoding is not canonical under round trip")
	}
}

// TestBatchGeometry checks the proxy-side structural validator agrees with
// the decoder: a payload passing BatchGeometry decodes, a payload failing
// it is rejected by DecodeBatch too.
func TestBatchGeometry(t *testing.T) {
	tuples := []stream.Tuple{
		{Ts: testTime(), Seq: 1, Fields: []float64{1, 2, 3}},
		{Ts: testTime().Add(time.Millisecond), Seq: 2, Fields: []float64{4, 5, 6}},
	}
	payload, err := AppendBatch(nil, 99, 3, tuples)
	if err != nil {
		t.Fatal(err)
	}
	handle, count, fields, err := BatchGeometry(payload)
	if err != nil || handle != 99 || count != 2 || fields != 3 {
		t.Fatalf("geometry = %d/%d/%d/%v, want 99/2/3/nil", handle, count, fields, err)
	}
	for _, bad := range [][]byte{
		nil,
		payload[:7],              // shorter than the header
		payload[:len(payload)-1], // truncated body
		append(payload, 0),       // trailing byte
		func() []byte { // count lies
			p := append([]byte(nil), payload...)
			p[5] = 3
			return p
		}(),
	} {
		if _, _, _, err := BatchGeometry(bad); err == nil {
			t.Errorf("BatchGeometry accepted malformed payload of %d bytes", len(bad))
		}
		if _, err := DecodeBatch(bad); err == nil {
			t.Errorf("DecodeBatch accepted malformed payload of %d bytes", len(bad))
		}
	}
}

// TestClientSurfacesWriteError kills the peer under a feeding client and
// requires the root-cause socket error in the returned chain — not the
// generic "connection closed" (nor the secondary "use of closed network
// connection" the read loop produces an instant later).
func TestClientSurfacesWriteError(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	cl := NewClient(clientEnd)
	defer cl.Close()
	rs := &RemoteSession{cl: cl, handle: 1, fields: 2, batchSize: 1}

	serverEnd.Close() // the socket dies mid-batch

	var err error
	deadline := time.Now().Add(2 * time.Second)
	for err == nil && time.Now().Before(deadline) {
		err = rs.FeedTuple(stream.Tuple{Ts: testTime(), Fields: []float64{1, 2}})
	}
	if err == nil {
		t.Fatal("feeding a dead socket never failed")
	}
	if !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("error chain lacks the underlying socket error: %v", err)
	}
	if cerr := cl.Err(); !errors.Is(cerr, io.ErrClosedPipe) {
		t.Fatalf("Client.Err() = %v, want the root-cause socket error", cerr)
	}
	// A deliberate Close on a healthy client stays a plain close: no
	// misleading root cause recorded.
	c2End, s2End := net.Pipe()
	go func() { _, _ = io.Copy(io.Discard, s2End) }()
	cl2 := NewClient(c2End)
	if err := cl2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Err(); err != nil {
		t.Fatalf("deliberate Close recorded an error: %v", err)
	}
}
