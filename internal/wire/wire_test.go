package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/serve"
	"gesturecep/internal/stream"
	"gesturecep/internal/transform"
)

func testTime() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

var (
	learnOnce  sync.Once
	learnedTxt string
	learnErr   error
)

// swipeQuery learns swipe_right once per test binary.
func swipeQuery(t testing.TB) string {
	t.Helper()
	learnOnce.Do(func() {
		sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 1)
		if err != nil {
			learnErr = err
			return
		}
		samples, err := sim.Samples(kinect.StandardGestures()[kinect.GestureSwipeRight], 4,
			testTime(), kinect.PerformOpts{PathJitter: 25})
		if err != nil {
			learnErr = err
			return
		}
		res, err := learn.Learn("swipe_right", samples, learn.DefaultConfig())
		if err != nil {
			learnErr = err
			return
		}
		learnedTxt = res.QueryText
	})
	if learnErr != nil {
		t.Fatal(learnErr)
	}
	return learnedTxt
}

// playbackFrames synthesizes a session with two swipes and a distractor.
func playbackFrames(t testing.TB, seed int64) []kinect.Frame {
	t.Helper()
	player, err := kinect.NewSimulator(kinect.ChildProfile(), kinect.DefaultNoise(), seed)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := player.RunScript([]kinect.ScriptItem{
		{Idle: 500 * time.Millisecond},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
		{Gesture: kinect.GestureCircle},
		{Idle: 500 * time.Millisecond},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: 500 * time.Millisecond},
	}, testTime(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return sess.Frames
}

// startServer spins up a manager + wire server on a loopback listener.
func startServer(t testing.TB, cfg serve.Config, plans map[string]string) (*Server, string) {
	t.Helper()
	reg := serve.NewRegistry()
	for name, text := range plans {
		if _, err := reg.Register(name, text); err != nil {
			t.Fatal(err)
		}
	}
	m, err := serve.NewManager(cfg, reg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(m)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		m.Close()
	})
	return srv, ln.Addr().String()
}

// encodeDets canonicalizes a detection list to wire bytes so lists from
// different code paths can be compared byte-for-byte.
func encodeDets(t testing.TB, dets []anduin.Detection) []byte {
	t.Helper()
	buf, err := AppendDetections(nil, 0, 0, dets)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// bareReplay replays tuples through a standalone engine deploying the same
// shared plan and returns its detections — the reference semantics.
func bareReplay(t testing.TB, plan *anduin.Plan, tuples []stream.Tuple) []anduin.Detection {
	t.Helper()
	engine := anduin.New()
	raw, _, err := engine.KinectPipeline(transform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var out []anduin.Detection
	engine.Subscribe(func(d anduin.Detection) { out = append(out, d) })
	if _, err := engine.DeployPlan(plan); err != nil {
		t.Fatal(err)
	}
	if err := stream.Replay(raw, tuples); err != nil {
		t.Fatal(err)
	}
	return out
}

// wireTuples round-trips tuples through the batch codec, yielding exactly
// what a served engine sees after network transport (UTC re-stamped times).
func wireTuples(t testing.TB, tuples []stream.Tuple) []stream.Tuple {
	t.Helper()
	out := make([]stream.Tuple, 0, len(tuples))
	for start := 0; start < len(tuples); start += MaxBatch {
		end := start + MaxBatch
		if end > len(tuples) {
			end = len(tuples)
		}
		payload, err := AppendBatch(nil, 1, len(tuples[start].Fields), tuples[start:end])
		if err != nil {
			t.Fatal(err)
		}
		b, err := DecodeBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b.Tuples...)
	}
	return out
}

// TestWireDifferential is the network twin of the serving determinism test:
// a session driven through the full wire loopback (client → gestured →
// Manager) must yield byte-identical detections to a bare-engine replay of
// the same frames.
func TestWireDifferential(t *testing.T) {
	qtext := swipeQuery(t)
	frames := playbackFrames(t, 7)
	srv, addr := startServer(t, serve.Config{Shards: 4}, map[string]string{"swipe_right": qtext})

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// An odd batch size exercises partial final batches.
	rs, err := cl.Attach("user-1", AttachOptions{BatchSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rs.Fields(), kinect.Schema().Len(); got != want {
		t.Fatalf("attach reports %d fields, want %d", got, want)
	}
	if err := rs.FeedFrames(frames); err != nil {
		t.Fatal(err)
	}
	counters, err := rs.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if counters.In != uint64(len(frames)) || counters.Out != counters.In || counters.Dropped != 0 {
		t.Errorf("counters = %+v, want in=out=%d dropped=0", counters, len(frames))
	}
	remote := rs.Detections()
	if len(remote) == 0 {
		t.Fatal("remote session detected nothing; expected at least one swipe_right")
	}

	// Reference: bare engine fed the identical post-transport tuples.
	plan, _ := srv.Manager().Registry().Get("swipe_right")
	bare := bareReplay(t, plan, wireTuples(t, kinect.ToTuples(frames)))
	if !bytes.Equal(encodeDets(t, remote), encodeDets(t, bare)) {
		t.Errorf("wire detections diverge from bare engine:\nremote: %+v\nbare:   %+v", remote, bare)
	}

	if _, err := rs.Detach(); err != nil {
		t.Fatal(err)
	}
	if srv.Manager().SessionCount() != 0 {
		t.Error("session still live after detach")
	}
}

// TestWire64Sessions drives 64 concurrent remote sessions over several
// connections and requires zero detection divergence from the bare-engine
// replay — the acceptance bar for the ingestion layer.
func TestWire64Sessions(t *testing.T) {
	qtext := swipeQuery(t)
	frames := playbackFrames(t, 7)
	tuples := kinect.ToTuples(frames)
	srv, addr := startServer(t, serve.Config{Shards: 4, QueueDepth: 128}, map[string]string{"swipe_right": qtext})

	plan, _ := srv.Manager().Registry().Get("swipe_right")
	want := encodeDets(t, bareReplay(t, plan, wireTuples(t, tuples)))

	const sessions, conns = 64, 4
	clients := make([]*Client, conns)
	for i := range clients {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		clients[i] = cl
	}
	var wg sync.WaitGroup
	results := make([][]byte, sessions)
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, err := clients[i%conns].Attach(fmt.Sprintf("user-%02d", i), AttachOptions{BatchSize: 16})
			if err != nil {
				errs <- err
				return
			}
			for _, tp := range tuples {
				if err := rs.FeedTuple(tp); err != nil {
					errs <- err
					return
				}
			}
			if _, err := rs.Flush(); err != nil {
				errs <- err
				return
			}
			results[i] = encodeDets(t, rs.Detections())
			if _, err := rs.Detach(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if bytes.Equal(want, encodeDets(t, nil)) {
		t.Fatal("bare replay detected nothing")
	}
	diverged := 0
	for i, got := range results {
		if !bytes.Equal(got, want) {
			diverged++
			t.Errorf("session %d diverged from bare replay", i)
		}
	}
	if diverged == 0 {
		mm := srv.Manager().Metrics()
		if mm.Enqueued != uint64(sessions*len(tuples)) {
			t.Errorf("server enqueued %d tuples, want %d", mm.Enqueued, sessions*len(tuples))
		}
	}
}

// TestWireDropReporting verifies DropOldest drop counts propagate to the
// client: a single gated shard with a tiny queue must evict tuples, and the
// flush acknowledgement must carry the session's cumulative drop count.
func TestWireDropReporting(t *testing.T) {
	// Eight instantiations of a cheap always-false plan make per-tuple
	// processing slow enough that a depth-1 queue must drop under a burst.
	const neverQuery = `SELECT "never" MATCHING kinect_t(rHand_y > 100000);`
	plans := map[string]string{}
	for i := 0; i < 8; i++ {
		plans[fmt.Sprintf("never%d", i)] = neverQuery
	}
	_, addr := startServer(t, serve.Config{Shards: 1, QueueDepth: 1, Policy: serve.DropOldest}, plans)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rs, err := cl.Attach("bursty", AttachOptions{BatchSize: MaxBatch})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.NoNoise(), 3)
	if err != nil {
		t.Fatal(err)
	}
	frames := sim.Idle(testTime(), 10*time.Second)

	var counters SessionCounters
	fed := uint64(0)
	for round := 0; round < 50 && counters.Dropped == 0; round++ {
		if err := rs.FeedFrames(frames); err != nil {
			t.Fatal(err)
		}
		fed += uint64(len(frames))
		if counters, err = rs.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if counters.Dropped == 0 {
		t.Fatal("no drops observed through a depth-1 DropOldest queue")
	}
	if counters.In != fed || counters.Out != counters.In {
		t.Errorf("counters = %+v, want in=out=%d", counters, fed)
	}
	if rs.Dropped() != counters.Dropped {
		t.Errorf("client cached drop count %d, flush reported %d", rs.Dropped(), counters.Dropped)
	}
}

// TestWireMetrics fetches a fleet metrics snapshot over the wire.
func TestWireMetrics(t *testing.T) {
	const neverQuery = `SELECT "never" MATCHING kinect_t(rHand_y > 100000);`
	_, addr := startServer(t, serve.Config{Shards: 2}, map[string]string{"never": neverQuery})
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rs, err := cl.Attach("m", AttachOptions{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.NoNoise(), 3)
	if err != nil {
		t.Fatal(err)
	}
	frames := sim.Idle(testTime(), time.Second)
	if err := rs.FeedFrames(frames); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	mm, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if mm.Sessions != 1 || mm.Enqueued != uint64(len(frames)) || len(mm.Shards) != 2 {
		t.Errorf("metrics = %+v, want 1 session, %d enqueued, 2 shards", mm, len(frames))
	}
}

// TestWireProtocolErrors exercises the failure paths a remote client can
// trigger: duplicate session IDs, unknown plans, version mismatch, and
// batches for unknown handles.
func TestWireProtocolErrors(t *testing.T) {
	const neverQuery = `SELECT "never" MATCHING kinect_t(rHand_y > 100000);`
	_, addr := startServer(t, serve.Config{Shards: 1}, map[string]string{"never": neverQuery})

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Attach("dup", AttachOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Attach("dup", AttachOptions{}); err == nil {
		t.Error("duplicate session id accepted over the wire")
	} else if _, ok := err.(*ErrorReply); !ok {
		t.Errorf("duplicate id error is %T, want *ErrorReply", err)
	}
	if _, err := cl.Attach("ghost", AttachOptions{Gestures: []string{"nosuch"}}); err == nil {
		t.Error("unknown plan accepted over the wire")
	}
	// Double detach is a session-scoped error, not a connection killer.
	rs, err := cl.Attach("twice", AttachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Detach(); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Detach(); err == nil {
		t.Error("double detach succeeded")
	} else if _, ok := err.(*ErrorReply); !ok {
		t.Errorf("double detach error is %T, want *ErrorReply", err)
	}

	// The connection survives session-scoped errors.
	if _, err := cl.Metrics(); err != nil {
		t.Errorf("connection dead after session-scoped errors: %v", err)
	}

	// Version mismatch is connection-fatal.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(raw)
	if err := w.WriteJSON(FrameAttach, &AttachRequest{Version: 99, ID: "v"}); err != nil {
		t.Fatal(err)
	}
	r := NewReader(raw)
	f, err := r.Next()
	if err != nil || f.Type != FrameError {
		t.Fatalf("version mismatch reply = %v/%v, want error frame", f.Type, err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("connection survived a version mismatch")
	}
	raw.Close()

	// A batch for a never-attached handle is connection-fatal too.
	raw2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWriter(raw2)
	payload, err := AppendBatch(nil, 42, 3, []stream.Tuple{{Ts: testTime(), Fields: []float64{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteFrame(FrameBatch, payload); err != nil {
		t.Fatal(err)
	}
	r2 := NewReader(raw2)
	if f, err := r2.Next(); err != nil || f.Type != FrameError {
		t.Fatalf("unknown-handle reply = %v/%v, want error frame", f.Type, err)
	}
	raw2.Close()
}

// TestCodecRoundTrip pins the canonical encodings: batches and detection
// lists survive encode → decode exactly.
func TestCodecRoundTrip(t *testing.T) {
	tuples := []stream.Tuple{
		{Ts: testTime(), Seq: 1, Fields: []float64{1.5, -2.25, 3}},
		{Ts: testTime().Add(33 * time.Millisecond), Seq: 2, Fields: []float64{0, -0.0, 9e99}},
	}
	payload, err := AppendBatch(nil, 7, 3, tuples)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if b.Handle != 7 || b.Fields != 3 || len(b.Tuples) != 2 {
		t.Fatalf("decoded batch = %+v", b)
	}
	re, err := AppendBatch(nil, b.Handle, b.Fields, b.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, re) {
		t.Error("batch encoding is not canonical under round trip")
	}

	dets := []anduin.Detection{
		{Gesture: "swipe_right", QueryID: 3, Start: testTime(), End: testTime().Add(time.Second), Measures: []float64{1, 2}},
		{Gesture: "", QueryID: 0, Start: testTime(), End: testTime()},
	}
	dp, err := AppendDetections(nil, 9, 11, dets)
	if err != nil {
		t.Fatal(err)
	}
	handle, dropped, got, err := DecodeDetections(dp)
	if err != nil {
		t.Fatal(err)
	}
	if handle != 9 || dropped != 11 || len(got) != 2 {
		t.Fatalf("decoded detections = %d/%d/%d", handle, dropped, len(got))
	}
	rd, err := AppendDetections(nil, handle, dropped, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dp, rd) {
		t.Error("detection encoding is not canonical under round trip")
	}
}

// TestClientSurfacesWriteError kills the peer under a feeding client and
// requires the root-cause socket error in the returned chain — not the
// generic "connection closed" (nor the secondary "use of closed network
// connection" the read loop produces an instant later).
func TestClientSurfacesWriteError(t *testing.T) {
	clientEnd, serverEnd := net.Pipe()
	cl := NewClient(clientEnd)
	defer cl.Close()
	rs := &RemoteSession{cl: cl, handle: 1, fields: 2, batchSize: 1}

	serverEnd.Close() // the socket dies mid-batch

	var err error
	deadline := time.Now().Add(2 * time.Second)
	for err == nil && time.Now().Before(deadline) {
		err = rs.FeedTuple(stream.Tuple{Ts: testTime(), Fields: []float64{1, 2}})
	}
	if err == nil {
		t.Fatal("feeding a dead socket never failed")
	}
	if !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("error chain lacks the underlying socket error: %v", err)
	}
	if cerr := cl.Err(); !errors.Is(cerr, io.ErrClosedPipe) {
		t.Fatalf("Client.Err() = %v, want the root-cause socket error", cerr)
	}
	// A deliberate Close on a healthy client stays a plain close: no
	// misleading root cause recorded.
	c2End, s2End := net.Pipe()
	go func() { _, _ = io.Copy(io.Discard, s2End) }()
	cl2 := NewClient(c2End)
	if err := cl2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Err(); err != nil {
		t.Fatalf("deliberate Close recorded an error: %v", err)
	}
}
