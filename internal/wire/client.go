package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/kinect"
	"gesturecep/internal/obs"
	"gesturecep/internal/serve"
	"gesturecep/internal/stream"
)

// DefaultBatchSize is the number of tuples buffered client-side before a
// batch frame is flushed to the socket.
const DefaultBatchSize = 64

// Client is one wire-protocol connection. Multiple remote sessions may be
// attached and fed concurrently; socket writes are serialized internally
// and control round trips are pipelined: any number may be in flight, and
// replies are matched to requests in wire order (the server processes each
// connection's frames serially and replies in order).
type Client struct {
	c net.Conn

	// FlushRTT, when non-nil, records the round-trip time of every Flush
	// and Detach control exchange — the client's view of "my tuples are
	// fully processed" latency. Set it before issuing traffic; the
	// histogram is nil-safe so leaving it unset costs nothing.
	FlushRTT *obs.Histogram

	wmu sync.Mutex
	w   *Writer

	// co, when non-nil, replaces direct Writer access: every frame is
	// enqueued to the per-connection flusher goroutine, which gathers
	// concurrent frames into single vectored writes. Enabled by the cluster
	// gateway on its backend connections (EnableCoalescing); set before any
	// traffic and never cleared, so data paths read it without locking.
	co *coalescer

	// waiters is the FIFO of in-flight control round trips; the read loop
	// dispatches each control reply to the head. Appends happen in the same
	// critical section as the request's write (or enqueue), so queue order
	// always matches wire order. A backfill request additionally carries a
	// detection callback: its FrameBackfillDet frames arrive while the
	// request is the queue head and are delivered through the callback
	// WITHOUT popping it — only the summarizing reply (or an error) pops.
	pmu     sync.Mutex
	waiters []pendingReq

	mu       sync.Mutex
	sessions map[uint32]*RemoteSession

	closed atomic.Bool
	err    atomic.Value // error that killed the connection
	done   chan struct{}
}

type controlResp struct {
	frameType FrameType
	payload   []byte // copied out of the reader buffer
}

// pendingReq is one in-flight control round trip. onDets is non-nil only
// for backfill requests; the read loop calls it for every FrameBackfillDet
// frame that arrives while this request heads the queue.
type pendingReq struct {
	ch     chan controlResp
	onDets func(streamIdx uint32, dets []anduin.Detection)
}

// Dial connects to a gestured server.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// DialTimeout connects to a gestured server, bounding the TCP connect
// instead of waiting out the OS default.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// Redial dials addr and proves the server is actually serving — one ping
// round trip must complete within timeout — before handing the connection
// out. A bare TCP accept is not liveness: a listen backlog happily accepts
// for a process that is wedged or half-dead, which is exactly the state a
// recovering cluster backend may be in. On any failure the connection is
// closed and an error returned; the in-flight ping is unblocked by that
// close, so a timed-out Redial leaves no goroutine behind.
func Redial(addr string, timeout time.Duration) (*Client, error) {
	cl, err := DialTimeout(addr, timeout)
	if err != nil {
		return nil, err
	}
	done := make(chan error, 1)
	go func() {
		_, err := cl.Ping(0)
		done <- err
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-done:
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("wire: redial %s: %w", addr, err)
		}
		return cl, nil
	case <-timer.C:
		cl.Close()
		<-done
		return nil, fmt.Errorf("wire: redial %s: no pong within %v", addr, timeout)
	}
}

// NewClient speaks the wire protocol over an established connection and
// takes ownership of it.
func NewClient(c net.Conn) *Client {
	cl := &Client{
		c:        c,
		w:        NewWriter(c),
		sessions: make(map[uint32]*RemoteSession),
		done:     make(chan struct{}),
	}
	go cl.readLoop()
	return cl
}

// EnableCoalescing routes every subsequent frame write through a dedicated
// flusher goroutine that gathers frames from concurrent producers into
// single vectored writes — the cluster gateway enables it on each backend
// connection so many front sessions share one syscall per flush cycle.
// Call it once, before issuing any traffic on the connection.
func (cl *Client) EnableCoalescing() {
	if cl.co == nil {
		cl.co = newCoalescer(cl)
	}
}

// Close tears down the connection. Attached sessions become unusable.
func (cl *Client) Close() error {
	if cl.closed.Swap(true) {
		return nil
	}
	err := cl.c.Close()
	if cl.co != nil {
		cl.co.stop()
	}
	<-cl.done
	return err
}

// errBox gives atomic.Value a single concrete type to store errors under.
type errBox struct{ err error }

// Err returns the error that terminated the connection, if any.
func (cl *Client) Err() error {
	if b, ok := cl.err.Load().(errBox); ok {
		return b.err
	}
	return nil
}

// fail records the connection-killing error and wakes pending requests.
// The first failure wins: a write error that kills the socket is not
// overwritten by the "use of closed network connection" noise the read
// loop produces moments later, and a deliberate Close (closed already set)
// records no error at all. It returns the canonical connection error so
// call sites surface the root cause rather than whatever secondary error
// they happened to observe.
func (cl *Client) fail(err error) error {
	if !cl.closed.Swap(true) {
		cl.err.Store(errBox{err})
	}
	cl.c.Close()
	if cl.co != nil {
		// Wake the flusher and any producers blocked on backpressure; the
		// flusher releases still-queued pooled buffers and exits.
		cl.co.poison(err)
	}
	return cl.closedErr()
}

// readLoop dispatches incoming frames: detection pushes go straight to
// their session, control replies to the single in-flight request.
func (cl *Client) readLoop() {
	defer close(cl.done)
	r := NewReader(cl.c)
	for {
		f, err := r.Next()
		if err != nil {
			cl.fail(err)
			return
		}
		switch f.Type {
		case FrameDetections:
			handle, dropped, dets, err := DecodeDetections(f.Payload)
			if err != nil {
				cl.fail(err)
				return
			}
			cl.mu.Lock()
			rs := cl.sessions[handle]
			cl.mu.Unlock()
			if rs != nil {
				rs.deliver(dropped, dets)
			}
		case FrameBackfillDet:
			// Detections of the head backfill request: deliver through its
			// callback without popping — the summarizing FrameBackfillOK
			// (or a FrameError) completes the round trip.
			streamIdx, _, dets, err := DecodeDetections(f.Payload)
			if err != nil {
				cl.fail(err)
				return
			}
			cl.pmu.Lock()
			var onDets func(uint32, []anduin.Detection)
			if len(cl.waiters) > 0 {
				onDets = cl.waiters[0].onDets
			}
			cl.pmu.Unlock()
			if onDets == nil {
				cl.fail(fmt.Errorf("wire: unsolicited %s frame", f.Type))
				return
			}
			onDets(streamIdx, dets)
		case FrameAttachOK, FrameFlushOK, FrameDetachOK, FrameMetricsOK, FramePong,
			FrameMigrateBeginOK, FrameMigrateStateOK, FrameMigrateCommitOK,
			FrameBackfillOK, FrameError:
			payload := append([]byte(nil), f.Payload...)
			cl.pmu.Lock()
			var waiter chan controlResp
			if len(cl.waiters) > 0 {
				waiter = cl.waiters[0].ch
				cl.waiters = cl.waiters[1:]
			}
			cl.pmu.Unlock()
			if waiter == nil {
				cl.fail(fmt.Errorf("wire: unsolicited %s frame", f.Type))
				return
			}
			waiter <- controlResp{frameType: f.Type, payload: payload}
		default:
			cl.fail(fmt.Errorf("wire: unexpected %s frame from server", f.Type))
			return
		}
	}
}

// roundTrip sends one control frame and waits for the matching reply type.
// Round trips pipeline: concurrent callers each get the reply matching
// their request's position in wire order. A FrameError reply is surfaced
// as *ErrorReply.
func (cl *Client) roundTrip(req FrameType, v any, wantReply FrameType, out any) error {
	return cl.roundTripWith(req, v, wantReply, out, nil)
}

// roundTripWith is roundTrip with an optional per-request detection
// callback (backfill requests stream detections before their reply).
func (cl *Client) roundTripWith(req FrameType, v any, wantReply FrameType, out any,
	onDets func(uint32, []anduin.Detection)) error {
	if cl.closed.Load() {
		return cl.closedErr()
	}
	ch := make(chan controlResp, 1)
	pr := pendingReq{ch: ch, onDets: onDets}
	if cl.co != nil {
		payload, err := json.Marshal(v)
		if err != nil {
			return err
		}
		// The marshalled payload is freshly allocated, so the coalescer may
		// reference it until flushed without a copy.
		if err := cl.co.enqueue(req, payload, false, &pr); err != nil {
			return err
		}
	} else {
		cl.wmu.Lock()
		cl.pmu.Lock()
		cl.waiters = append(cl.waiters, pr)
		cl.pmu.Unlock()
		err := cl.w.WriteJSON(req, v)
		cl.wmu.Unlock()
		if err != nil {
			return cl.fail(err)
		}
	}
	select {
	case resp := <-ch:
		switch resp.frameType {
		case wantReply:
			if out == nil {
				return nil
			}
			return unmarshalStrict(resp.payload, out)
		case FrameError:
			var er ErrorReply
			if err := unmarshalStrict(resp.payload, &er); err != nil {
				return err
			}
			return &er
		default:
			return cl.fail(fmt.Errorf("wire: got %s reply, want %s", resp.frameType, wantReply))
		}
	case <-cl.done:
		return cl.closedErr()
	}
}

// roundTripRaw is roundTrip for replies whose payload is not JSON: it
// returns the raw reply bytes (already copied out of the read buffer by the
// read loop) instead of unmarshalling them. FrameError replies still surface
// as *ErrorReply.
func (cl *Client) roundTripRaw(req FrameType, v any, wantReply FrameType) ([]byte, error) {
	if cl.closed.Load() {
		return nil, cl.closedErr()
	}
	ch := make(chan controlResp, 1)
	pr := pendingReq{ch: ch}
	if cl.co != nil {
		payload, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		if err := cl.co.enqueue(req, payload, false, &pr); err != nil {
			return nil, err
		}
	} else {
		cl.wmu.Lock()
		cl.pmu.Lock()
		cl.waiters = append(cl.waiters, pr)
		cl.pmu.Unlock()
		err := cl.w.WriteJSON(req, v)
		cl.wmu.Unlock()
		if err != nil {
			return nil, cl.fail(err)
		}
	}
	select {
	case resp := <-ch:
		switch resp.frameType {
		case wantReply:
			return resp.payload, nil
		case FrameError:
			var er ErrorReply
			if err := unmarshalStrict(resp.payload, &er); err != nil {
				return nil, err
			}
			return nil, &er
		default:
			return nil, cl.fail(fmt.Errorf("wire: got %s reply, want %s", resp.frameType, wantReply))
		}
	case <-cl.done:
		return nil, cl.closedErr()
	}
}

func (cl *Client) closedErr() error {
	if err := cl.Err(); err != nil {
		return fmt.Errorf("wire: connection closed: %w", err)
	}
	return fmt.Errorf("wire: connection closed")
}

// AttachOptions tunes one remote session.
type AttachOptions struct {
	// Gestures names the plans to deploy; empty deploys every registered
	// plan.
	Gestures []string
	// BatchSize is the client-side tuple batching threshold (default
	// DefaultBatchSize, 1 disables batching).
	BatchSize int
	// OnDetection, when non-nil, runs on the client's read goroutine for
	// every pushed detection — keep it fast. Detections are additionally
	// collected for Detections/TakeDetections unless Discard is set.
	OnDetection func(anduin.Detection)
	// OnDetections, when non-nil, runs on the client's read goroutine for
	// every detection push frame with the frame's detections and the
	// session's server-reported cumulative tuple-drop count. The cluster
	// gateway uses it to re-frame whole pushes toward front clients without
	// touching individual detections.
	OnDetections func(dropped uint64, dets []anduin.Detection)
	// Discard skips the client-side detection buffer (use with
	// OnDetection for long-lived sessions).
	Discard bool
	// TraceEvery samples one outgoing batch in N for end-to-end tracing:
	// the sampled batch carries the client-send timestamp on the wire so
	// the gateway and backend record their stage latencies. 0 disables
	// tracing; unsampled batches are byte-identical to untraced traffic.
	TraceEvery int
	// StartAt, when non-zero, attaches the session in migration catch-up
	// mode: the server expects exactly StartAt replayed tuples (the source's
	// cut ordinal) before MigrateCommit, and mutes detections until the
	// commit so replayed state does not re-fire detections the source
	// already delivered.
	StartAt uint64
}

// Attach opens a remote session under the given ID.
func (cl *Client) Attach(id string, opts AttachOptions) (*RemoteSession, error) {
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.BatchSize > MaxBatch {
		opts.BatchSize = MaxBatch
	}
	var reply AttachReply
	err := cl.roundTrip(FrameAttach, &AttachRequest{
		Version:  ProtocolVersion,
		ID:       id,
		Gestures: opts.Gestures,
		StartAt:  opts.StartAt,
	}, FrameAttachOK, &reply)
	if err != nil {
		return nil, err
	}
	rs := &RemoteSession{
		cl:        cl,
		handle:    reply.Handle,
		id:        id,
		fields:    reply.Fields,
		plans:     reply.Plans,
		batchSize: opts.BatchSize,
		onDet:     opts.OnDetection,
		onDets:    opts.OnDetections,
		discard:   opts.Discard,
		tracer:    obs.NewSampler(opts.TraceEvery),
	}
	cl.mu.Lock()
	cl.sessions[reply.Handle] = rs
	cl.mu.Unlock()
	return rs, nil
}

// Metrics fetches the server's fleet-wide metrics snapshot.
func (cl *Client) Metrics() (serve.Metrics, error) {
	var m serve.Metrics
	err := cl.roundTrip(FrameMetricsReq, struct{}{}, FrameMetricsOK, &m)
	return m, err
}

// Ping probes the server's liveness and returns its identity and session
// count. The sequence number is echoed back in the reply.
func (cl *Client) Ping(seq uint64) (Pong, error) {
	var pong Pong
	err := cl.roundTrip(FramePing, &Ping{Seq: seq}, FramePong, &pong)
	if err == nil && pong.Seq != seq {
		return pong, cl.fail(fmt.Errorf("wire: pong seq %d for ping %d", pong.Seq, seq))
	}
	return pong, err
}

// ProxyBatch forwards an already-encoded FrameBatch payload to the server
// after re-addressing it to the given session handle — the cluster
// gateway's zero-copy data path: the payload bytes a front connection read
// are patched in place and written out, never decoded into tuples. It
// returns the number of tuples the batch carries. The payload must be a
// structurally valid batch (the front decoded its geometry to route it).
func (cl *Client) ProxyBatch(handle uint32, payload []byte) (int, error) {
	return cl.proxyBatch(handle, payload, false)
}

// ProxyBatchOwned is ProxyBatch for a payload living in a pooled frame
// buffer (Reader.Detach): on success the connection takes ownership and
// returns the buffer to the frame pool once it has been written out —
// through the coalescing flusher when enabled, so the bytes a front
// connection read reach the backend socket with no intermediate copy. On
// error, ownership stays with the caller (who may retry it on another
// backend or release it).
func (cl *Client) ProxyBatchOwned(handle uint32, payload []byte) (int, error) {
	return cl.proxyBatch(handle, payload, true)
}

func (cl *Client) proxyBatch(handle uint32, payload []byte, owned bool) (int, error) {
	if len(payload) < 8 {
		return 0, fmt.Errorf("wire: batch payload of %d bytes is shorter than its header", len(payload))
	}
	if cl.closed.Load() {
		return 0, cl.closedErr()
	}
	binary.BigEndian.PutUint32(payload[:4], handle)
	count := int(binary.BigEndian.Uint16(payload[4:6]))
	if cl.co != nil {
		if err := cl.co.enqueue(FrameBatch, payload, owned, nil); err != nil {
			return 0, err
		}
		return count, nil
	}
	cl.wmu.Lock()
	err := cl.w.WriteFrame(FrameBatch, payload)
	cl.wmu.Unlock()
	if err != nil {
		return 0, cl.fail(err)
	}
	if owned {
		PutFrameBuf(payload)
	}
	return count, nil
}

// RemoteSession is the client-side handle of one served session: tuples go
// out in batches, detections and drop counts come back asynchronously.
// Feed/FeedTuple/FlushBatch must be called from one goroutine at a time per
// session; distinct sessions of one client may feed concurrently.
type RemoteSession struct {
	cl        *Client
	handle    uint32
	id        string
	fields    int
	plans     []string
	batchSize int
	onDet     func(anduin.Detection)
	onDets    func(dropped uint64, dets []anduin.Detection)
	discard   bool
	tracer    *obs.Sampler

	batch  []stream.Tuple // pending tuples, flushed at batchSize
	encBuf []byte         // batch encode scratch

	dmu     sync.Mutex
	dets    []anduin.Detection
	dropped atomic.Uint64 // server-reported cumulative tuple drops
}

// ID returns the session identifier.
func (rs *RemoteSession) ID() string { return rs.id }

// Handle returns the connection-local session handle the server assigned —
// what ProxyBatch needs to re-address forwarded batch payloads.
func (rs *RemoteSession) Handle() uint32 { return rs.handle }

// Plans returns the plan names the session deployed.
func (rs *RemoteSession) Plans() []string { return append([]string(nil), rs.plans...) }

// Fields returns the server's raw tuple schema width.
func (rs *RemoteSession) Fields() int { return rs.fields }

// deliver runs on the client read goroutine for every detection push.
func (rs *RemoteSession) deliver(dropped uint64, dets []anduin.Detection) {
	rs.dropped.Store(dropped)
	if !rs.discard {
		rs.dmu.Lock()
		rs.dets = append(rs.dets, dets...)
		rs.dmu.Unlock()
	}
	if rs.onDet != nil {
		for _, d := range dets {
			rs.onDet(d)
		}
	}
	if rs.onDets != nil {
		rs.onDets(dropped, dets)
	}
}

// Feed enqueues one camera frame.
func (rs *RemoteSession) Feed(f kinect.Frame) error {
	return rs.FeedTuple(kinect.ToTuple(f))
}

// FeedFrames enqueues a frame sequence in order.
func (rs *RemoteSession) FeedFrames(frames []kinect.Frame) error {
	for i := range frames {
		if err := rs.Feed(frames[i]); err != nil {
			return fmt.Errorf("wire: frame %d: %w", i, err)
		}
	}
	return nil
}

// FeedTuple buffers one raw tuple, flushing a full batch to the socket.
// The tuple's field slice is copied during encoding; the caller may reuse it.
func (rs *RemoteSession) FeedTuple(t stream.Tuple) error {
	if len(t.Fields) != rs.fields {
		return fmt.Errorf("wire: tuple has %d fields, session schema expects %d", len(t.Fields), rs.fields)
	}
	rs.batch = append(rs.batch, t)
	if len(rs.batch) >= rs.batchSize {
		return rs.FlushBatch()
	}
	return nil
}

// FlushBatch sends any buffered tuples immediately.
func (rs *RemoteSession) FlushBatch() error {
	if len(rs.batch) == 0 {
		return nil
	}
	if rs.cl.closed.Load() {
		return rs.cl.closedErr()
	}
	var buf []byte
	var err error
	if rs.tracer.Sample() {
		buf, err = AppendBatchTraced(rs.encBuf[:0], rs.handle, rs.fields, rs.batch, time.Now().UnixNano())
	} else {
		buf, err = AppendBatch(rs.encBuf[:0], rs.handle, rs.fields, rs.batch)
	}
	if err != nil {
		return err
	}
	rs.encBuf = buf[:0]
	rs.batch = rs.batch[:0]
	if co := rs.cl.co; co != nil {
		// The encode scratch is reused by the next FlushBatch, so hand the
		// coalescer its own pooled copy.
		p := GetFrameBuf(len(buf))
		copy(p, buf)
		if err := co.enqueue(FrameBatch, p, true, nil); err != nil {
			PutFrameBuf(p)
			return err
		}
		return nil
	}
	rs.cl.wmu.Lock()
	err = rs.cl.w.WriteFrame(FrameBatch, buf)
	rs.cl.wmu.Unlock()
	if err != nil {
		// fail keeps the first error: if the socket died under the read
		// loop an instant ago, the caller sees that root cause instead of
		// this write's "use of closed network connection".
		return rs.cl.fail(err)
	}
	return nil
}

// Flush pushes buffered tuples, waits until the server has drained the
// session's queue, and returns the server-side counters. All detections for
// tuples fed before the call are delivered before Flush returns.
func (rs *RemoteSession) Flush() (SessionCounters, error) {
	var counters SessionCounters
	if err := rs.FlushBatch(); err != nil {
		return counters, err
	}
	start := time.Now()
	err := rs.cl.roundTrip(FrameFlush, &SessionRef{Handle: rs.handle}, FrameFlushOK, &counters)
	if err == nil {
		rs.cl.FlushRTT.ObserveSince(start)
		rs.dropped.Store(counters.Dropped)
	}
	return counters, err
}

// Detach flushes, closes the remote session and returns the final counters.
func (rs *RemoteSession) Detach() (SessionCounters, error) {
	var counters SessionCounters
	if err := rs.FlushBatch(); err != nil {
		return counters, err
	}
	start := time.Now()
	err := rs.cl.roundTrip(FrameDetach, &SessionRef{Handle: rs.handle}, FrameDetachOK, &counters)
	rs.cl.mu.Lock()
	delete(rs.cl.sessions, rs.handle)
	rs.cl.mu.Unlock()
	if err == nil {
		rs.cl.FlushRTT.ObserveSince(start)
		rs.dropped.Store(counters.Dropped)
	}
	return counters, err
}

// Detections returns a copy of the detections received so far.
func (rs *RemoteSession) Detections() []anduin.Detection {
	rs.dmu.Lock()
	defer rs.dmu.Unlock()
	return append([]anduin.Detection(nil), rs.dets...)
}

// TakeDetections drains and returns the received detections.
func (rs *RemoteSession) TakeDetections() []anduin.Detection {
	rs.dmu.Lock()
	defer rs.dmu.Unlock()
	out := rs.dets
	rs.dets = nil
	return out
}

// Dropped returns the last server-reported cumulative tuple-drop count for
// this session (non-zero only under the DropOldest policy).
func (rs *RemoteSession) Dropped() uint64 { return rs.dropped.Load() }

// MigrateBegin seals the remote session for migration: the server stops
// admitting tuples, drains its queue, verifies the recorded history is
// complete, and returns the cut ordinal — the exact number of tuples the
// session has admitted, and therefore the number the target must replay
// before MigrateCommit. On error the session is left unsealed and serving.
func (rs *RemoteSession) MigrateBegin() (MigrateBeginReply, error) {
	var reply MigrateBeginReply
	err := rs.cl.roundTrip(FrameMigrateBegin, &MigrateBeginRequest{Handle: rs.handle}, FrameMigrateBeginOK, &reply)
	return reply, err
}

// MigrateFetch returns the next chunk of the sealed session's recorded
// history starting at the given tuple ordinal, as a raw batch payload
// (handle 0) ready for ProxyBatch toward the migration target. An empty
// payload means the history is exhausted. after may rewind — e.g. to
// restart the transfer from 0 toward a fresh target — at the cost of the
// server reopening its history reader.
func (rs *RemoteSession) MigrateFetch(after uint64) ([]byte, error) {
	return rs.cl.roundTripRaw(FrameMigrateState, &MigrateStateRequest{Handle: rs.handle, After: after}, FrameMigrateStateOK)
}

// MigrateCommit completes a catch-up attach on the migration target: the
// server drains the replayed tuples, verifies exactly ordinal tuples
// arrived, and unmutes detections. From this moment the session serves
// live traffic with state byte-identical to the source at its cut.
func (rs *RemoteSession) MigrateCommit(ordinal uint64) (SessionCounters, error) {
	var counters SessionCounters
	err := rs.cl.roundTrip(FrameMigrateCommit,
		&MigrateCommitRequest{Handle: rs.handle, Ordinal: ordinal}, FrameMigrateCommitOK, &counters)
	return counters, err
}

// Backfill asks the server to evaluate plans over recorded streams it
// archives. onDets, when non-nil, runs on the client's read goroutine for
// every detection push with the index into req.Streams the detections
// belong to; pushes arrive in stream order, each stream's detections in
// evaluation order, all before Backfill returns. The reply lists streams
// the server does not archive in Missing — those produced no detections
// and should be retried against the backend that has them. Note the
// request holds the server connection's reader goroutine for its whole
// run; use a dedicated connection when live traffic shares the client.
func (cl *Client) Backfill(req BackfillRequest, onDets func(streamIdx int, dets []anduin.Detection)) (BackfillReply, error) {
	var reply BackfillReply
	var cb func(uint32, []anduin.Detection)
	if onDets != nil {
		cb = func(idx uint32, dets []anduin.Detection) { onDets(int(idx), dets) }
	} else {
		cb = func(uint32, []anduin.Detection) {}
	}
	err := cl.roundTripWith(FrameBackfill, &req, FrameBackfillOK, &reply, cb)
	return reply, err
}

// MigrateAbort cancels a migration on the source: the history reader is
// released and the session unsealed, resuming live service with zero loss.
func (rs *RemoteSession) MigrateAbort() (SessionCounters, error) {
	var counters SessionCounters
	err := rs.cl.roundTrip(FrameMigrateCommit,
		&MigrateCommitRequest{Handle: rs.handle, Abort: true}, FrameMigrateCommitOK, &counters)
	return counters, err
}
