// Package wire is the network ingestion layer of the serving runtime: a
// compact length-prefixed binary frame protocol spoken over TCP between
// remote sensor clients and a gestured server process, multiplexing many
// remote sessions onto one serve.Manager.
//
// The paper runs its learned CEP queries inside AnduIN, a networked DSMS
// that remote sensor clients publish into; this package is that deployment
// shape for the reproduction. Design points:
//
//   - the data plane (tuple batches, detection pushes) is hand-rolled
//     big-endian binary with reused buffers — no reflection, no JSON, no
//     per-tuple allocations beyond the tuple field arena itself;
//   - the control plane (attach/detach/flush/metrics) is small JSON
//     payloads, where clarity beats nanoseconds;
//   - backpressure propagates from the shard queues to the socket: each
//     connection's frames are processed synchronously on its reader
//     goroutine, so a full shard queue under serve.Block stops the read
//     loop and lets TCP flow control pace the remote producer, while
//     serve.DropOldest keeps the reader draining and reports the session's
//     cumulative drop count back to the client on every detection push and
//     flush acknowledgement.
//
// # Frame layout
//
// Every frame is a 5-byte header followed by a payload:
//
//	+----------------+---------+-------------------+
//	| length uint32  | type u8 | payload (length B) |
//	+----------------+---------+-------------------+
//
// length counts payload bytes only and must not exceed MaxFrame. Multi-byte
// integers are big-endian throughout.
//
// Data-plane payloads:
//
//	FrameBatch      handle u32 | count u16 | fields u16 |
//	                count × (ts i64 unix-ns | seq u64 | fields × f64)
//	FrameDetections handle u32 | dropped u64 | count u16 |
//	                count × (nameLen u16 | name | queryID u32 |
//	                         start i64 | end i64 | nMeasures u16 |
//	                         nMeasures × f64)
//
// Control-plane payloads are JSON-encoded structs (AttachRequest,
// AttachReply, SessionRef, SessionCounters, serve.Metrics, ErrorReply,
// Ping, Pong).
// Decoding is strict: a payload must be consumed exactly, and counts are
// validated against the remaining payload length before any allocation, so
// an adversarial length prefix can never make the decoder over-allocate.
package wire

import (
	"errors"
	"fmt"
	"time"
)

// ProtocolVersion identifies the frame protocol. It is carried in the
// attach handshake; servers reject clients speaking a different version.
const ProtocolVersion = 1

// Limits enforced by the codec. Frames above MaxFrame are rejected before
// their payload is read; batch geometry is validated against the actual
// payload size before decoding.
const (
	// MaxFrame bounds a frame payload (1 MiB): a full batch of 1024
	// 45-field tuples is ~376 KiB, so the cap leaves generous headroom
	// without letting a hostile peer demand unbounded buffers.
	MaxFrame = 1 << 20
	// MaxBatch bounds tuples per batch frame.
	MaxBatch = 1024
	// MaxTupleFields bounds attributes per tuple (the kinect schema has 45).
	MaxTupleFields = 1024
	// MaxDetections bounds detections per push frame.
	MaxDetections = 4096
)

// FrameType discriminates frame payloads.
type FrameType uint8

// Frame types. Client→server: Attach, Batch, Flush, Detach, MetricsReq.
// Server→client: AttachOK, Detections, FlushOK, DetachOK, MetricsOK, Error.
const (
	FrameInvalid    FrameType = 0
	FrameAttach     FrameType = 1  // JSON AttachRequest
	FrameAttachOK   FrameType = 2  // JSON AttachReply
	FrameDetach     FrameType = 3  // JSON SessionRef
	FrameDetachOK   FrameType = 4  // JSON SessionCounters
	FrameBatch      FrameType = 5  // binary tuple batch
	FrameDetections FrameType = 6  // binary detection push
	FrameFlush      FrameType = 7  // JSON SessionRef
	FrameFlushOK    FrameType = 8  // JSON SessionCounters
	FrameMetricsReq FrameType = 9  // empty
	FrameMetricsOK  FrameType = 10 // JSON serve.Metrics
	FrameError      FrameType = 11 // JSON ErrorReply
	FramePing       FrameType = 12 // JSON Ping
	FramePong       FrameType = 13 // JSON Pong

	// Migration control plane: a gateway moving a session between backends
	// seals the source (Begin), streams the recorded history out of it
	// (State), and finalizes or aborts the move (Commit). See MigrateBegin*,
	// MigrateState*, MigrateCommit* below.
	FrameMigrateBegin    FrameType = 14 // JSON MigrateBeginRequest
	FrameMigrateBeginOK  FrameType = 15 // JSON MigrateBeginReply
	FrameMigrateState    FrameType = 16 // JSON MigrateStateRequest
	FrameMigrateStateOK  FrameType = 17 // binary batch payload (empty = end of history)
	FrameMigrateCommit   FrameType = 18 // JSON MigrateCommitRequest
	FrameMigrateCommitOK FrameType = 19 // JSON SessionCounters

	// Offline backfill: a client (the fleet coordinator, or gesturereplay
	// directly) asks a server to evaluate compiled plans over recorded
	// streams it archives. Detections stream back per request-stream index
	// (FrameBackfillDet), then one FrameBackfillOK summarizes the run. See
	// BackfillRequest/BackfillReply.
	FrameBackfill    FrameType = 20 // JSON BackfillRequest
	FrameBackfillDet FrameType = 21 // binary detections payload (handle = stream index)
	FrameBackfillOK  FrameType = 22 // JSON BackfillReply

	frameTypeEnd FrameType = 23
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	names := [...]string{
		"invalid", "attach", "attach-ok", "detach", "detach-ok", "batch",
		"detections", "flush", "flush-ok", "metrics-req", "metrics-ok", "error",
		"ping", "pong", "migrate-begin", "migrate-begin-ok", "migrate-state",
		"migrate-state-ok", "migrate-commit", "migrate-commit-ok",
		"backfill", "backfill-det", "backfill-ok",
	}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// AttachRequest opens a session on the server. Gestures names the plans to
// deploy (empty = every registered plan). StartAt > 0 creates the session in
// catch-up mode: it is the migration cut ordinal, the server mutes detection
// pushes while the first StartAt tuples (the session's recorded history)
// replay into the fresh engine, and a MigrateCommit carrying the same
// ordinal unmutes it. Detections fired during catch-up were already
// delivered by the source backend; muting them is what makes a migration
// exactly-once from the client's point of view.
type AttachRequest struct {
	Version  int      `json:"version"`
	ID       string   `json:"id"`
	Gestures []string `json:"gestures,omitempty"`
	StartAt  uint64   `json:"start_at,omitempty"`
}

// AttachReply acknowledges an attach: the connection-local session handle
// used by all subsequent data frames, the raw tuple schema width, and the
// deployed plan names.
type AttachReply struct {
	Handle uint32   `json:"handle"`
	Fields int      `json:"fields"`
	Plans  []string `json:"plans"`
}

// SessionRef addresses one attached session in control frames.
type SessionRef struct {
	Handle uint32 `json:"handle"`
}

// SessionCounters reports a session's ingestion accounting: tuples admitted
// (In), tuples that left the queue (Out), tuples evicted under DropOldest
// (Dropped), detections pushed to the client (Detections), and detections
// evicted from the push buffer because the client read too slowly
// (DetectionsDropped).
type SessionCounters struct {
	Handle            uint32 `json:"handle"`
	In                uint64 `json:"in"`
	Out               uint64 `json:"out"`
	Dropped           uint64 `json:"dropped"`
	Detections        uint64 `json:"detections"`
	DetectionsDropped uint64 `json:"detections_dropped"`
}

// Ping is a liveness probe. Seq is echoed back in the matching Pong so a
// prober can correlate probes with replies.
type Ping struct {
	Seq uint64 `json:"seq"`
}

// Pong answers a Ping with the server's identity and live-session count —
// enough for a cluster gateway to health-check a backend without paying for
// a full metrics snapshot.
type Pong struct {
	Seq      uint64 `json:"seq"`
	Name     string `json:"name,omitempty"`
	Sessions int    `json:"sessions"`
}

// MigrateBeginRequest seals a session for migration: the server flushes it,
// verifies the recorded history is complete (recorded == admitted — a lossy
// recording cannot reconstruct engine state), refuses further tuple feeds,
// and opens a history cursor. On any verification failure the session is
// left untouched and a session-scoped FrameError comes back instead.
type MigrateBeginRequest struct {
	Handle uint32 `json:"handle"`
}

// MigrateBeginReply acknowledges a seal. Ordinal is the cut: the number of
// tuples admitted (and recorded) by the sealed session. The target must
// replay exactly this many tuples before the flip.
type MigrateBeginReply struct {
	Handle  uint32 `json:"handle"`
	Ordinal uint64 `json:"ordinal"`
}

// MigrateStateRequest asks a sealed session for the next chunk of its
// recorded history. After is the count of tuples the requester already
// holds; the server repositions its cursor if it disagrees (a retry against
// a fresh target restarts from 0). The reply payload is a canonical batch
// encoding (handle field zero — the requester patches it) or empty once
// After reaches the cut.
type MigrateStateRequest struct {
	Handle uint32 `json:"handle"`
	After  uint64 `json:"after"`
}

// MigrateCommitRequest finalizes a migration leg. On a catch-up target
// (Abort false) the server flushes the session, verifies exactly Ordinal
// tuples were admitted, and unmutes detection pushes — from here the session
// is live on its new owner. On a sealed source (Abort true) the server
// unseals the session and drops the history cursor — the migration failed
// and the session resumes where it was, having lost nothing.
type MigrateCommitRequest struct {
	Handle  uint32 `json:"handle"`
	Ordinal uint64 `json:"ordinal"`
	Abort   bool   `json:"abort,omitempty"`
}

// BackfillRequest asks a server to evaluate compiled plans over recorded
// streams from its archive. Gestures names the plans (empty = every
// registered plan); SinceNs/UntilNs bound evaluation to event times in
// [Since, Until) (0 = unbounded). Detections stream back in
// FrameBackfillDet frames whose handle is the index into Streams — in
// stream order, each stream's detections in evaluation order — followed by
// one FrameBackfillOK. Streams the server does not archive are reported in
// the reply's Missing list rather than failing the request, so a fleet
// coordinator can retry just those on other backends.
type BackfillRequest struct {
	Streams  []string `json:"streams"`
	Gestures []string `json:"gestures,omitempty"`
	SinceNs  int64    `json:"since_ns,omitempty"`
	UntilNs  int64    `json:"until_ns,omitempty"`
}

// BackfillReply summarizes a backfill run: totals across the evaluated
// streams plus the request indices of streams this server has no recording
// of (their detections were not produced).
type BackfillReply struct {
	Records    uint64 `json:"records"`
	Tuples     uint64 `json:"tuples"`
	Detections uint64 `json:"detections"`
	Missing    []int  `json:"missing,omitempty"`
}

// ErrUnknownStream is the sentinel a Server.BackfillSource wraps (or
// returns) for a stream the server does not archive; the request reports
// the stream in BackfillReply.Missing instead of failing.
var ErrUnknownStream = errors.New("wire: unknown stream")

// ErrorReply reports a request failure. Handle 0 addresses the connection
// itself (protocol violations; the server closes the connection after).
type ErrorReply struct {
	Handle uint32 `json:"handle,omitempty"`
	Msg    string `json:"msg"`
}

// Error implements the error interface.
func (e *ErrorReply) Error() string { return "wire: server: " + e.Msg }

// decodeTime reconstructs an event time from wire nanoseconds in UTC, so
// both endpoints observe the identical instant regardless of host timezone.
func decodeTime(ns int64) time.Time { return time.Unix(0, ns).UTC() }
