package wire

import (
	"bytes"
	"testing"
	"time"

	"gesturecep/internal/stream"
)

// TestCodecTracedBatch pins the traced-batch encoding: the trace flag and
// trailing timestamp round-trip, an untraced batch stays byte-identical to
// the pre-trace format, and the two encodings differ only by the flag bit
// plus the trailing 8 bytes — so a gateway relaying payload bytes verbatim
// cannot perturb either form.
func TestCodecTracedBatch(t *testing.T) {
	tuples := []stream.Tuple{
		{Ts: testTime(), Seq: 1, Fields: []float64{1.5, -2.25, 3}},
		{Ts: testTime().Add(33 * time.Millisecond), Seq: 2, Fields: []float64{0, -0.0, 9e99}},
	}
	const sentNs = int64(1395655200123456789)

	plain, err := AppendBatch(nil, 7, 3, tuples)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := AppendBatchTraced(nil, 7, 3, tuples, sentNs)
	if err != nil {
		t.Fatal(err)
	}

	if BatchTraced(plain) {
		t.Error("untraced payload reports the trace flag")
	}
	if !BatchTraced(traced) {
		t.Error("traced payload does not report the trace flag")
	}
	if len(traced) != len(plain)+8 {
		t.Fatalf("traced payload is %d bytes, want %d+8", len(traced), len(plain))
	}
	// Identical except the flag bit in the fields word and the trailer.
	if traced[6]&0x7f != plain[6] || !bytes.Equal(traced[:6], plain[:6]) ||
		!bytes.Equal(traced[7:len(plain)], plain[7:]) {
		t.Error("traced encoding differs from plain beyond flag bit and trailer")
	}

	// Geometry sees through the flag.
	for _, p := range [][]byte{plain, traced} {
		handle, count, fields, err := BatchGeometry(p)
		if err != nil || handle != 7 || count != 2 || fields != 3 {
			t.Fatalf("geometry = %d/%d/%d/%v, want 7/2/3/nil", handle, count, fields, err)
		}
	}

	b, err := DecodeBatch(traced)
	if err != nil {
		t.Fatal(err)
	}
	if b.SentNs != sentNs {
		t.Errorf("decoded SentNs = %d, want %d", b.SentNs, sentNs)
	}
	if b.Handle != 7 || b.Fields != 3 || len(b.Tuples) != 2 {
		t.Fatalf("decoded traced batch = %+v", b)
	}
	// The tuples themselves are unaffected by tracing.
	pb, err := DecodeBatch(plain)
	if err != nil {
		t.Fatal(err)
	}
	if pb.SentNs != 0 {
		t.Errorf("plain batch decoded SentNs = %d, want 0", pb.SentNs)
	}
	for i := range b.Tuples {
		if !b.Tuples[i].Ts.Equal(pb.Tuples[i].Ts) || b.Tuples[i].Seq != pb.Tuples[i].Seq {
			t.Errorf("tuple %d differs between traced and plain decode", i)
		}
	}
	// Canonical re-encode.
	re, err := AppendBatchTraced(nil, b.Handle, b.Fields, b.Tuples, b.SentNs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traced, re) {
		t.Error("traced encoding is not canonical under round trip")
	}

	if _, err := AppendBatchTraced(nil, 7, 3, tuples, 0); err == nil {
		t.Error("AppendBatchTraced accepted a zero timestamp")
	}
	// A traced payload missing its trailer must be rejected.
	if _, _, _, err := BatchGeometry(traced[:len(traced)-8]); err == nil {
		t.Error("BatchGeometry accepted a traced payload without its trailer")
	}
	if _, err := DecodeBatch(traced[:len(traced)-1]); err == nil {
		t.Error("DecodeBatch accepted a truncated traced payload")
	}
}
