package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/obs"
	"gesturecep/internal/serve"
	"gesturecep/internal/stream"
)

// maxPendingDetections bounds a session's detection push buffer. The buffer
// absorbs bursts while the client socket is busy; past the cap the oldest
// pending detection is evicted and counted, mirroring DropOldest semantics
// (a detection listener runs on the shard worker and must never block on a
// slow client socket).
const maxPendingDetections = 65536

// Server accepts wire-protocol connections and multiplexes their sessions
// onto a serve.Manager. The manager's backpressure policy decides the
// socket behaviour: Block parks the connection's reader goroutine on the
// full shard queue (TCP flow control pushes back to the remote producer),
// DropOldest keeps the reader draining and surfaces drop counts to the
// client.
type Server struct {
	mgr *serve.Manager

	// Name identifies this server in Pong replies (a cluster gateway shows
	// it in per-backend metrics). Set it before Serve; empty is fine.
	Name string

	// BatchDecode, when non-nil, records the FrameBatch decode time of
	// trace-sampled batches; Ingress records client-send → decoded for the
	// same batches (cross-clock when client and server are on different
	// hosts). Both are nil-safe; set before Serve. Unsampled batches never
	// touch them.
	BatchDecode *obs.Histogram
	Ingress     *obs.Histogram

	// TapSessions, when non-nil, is consulted on every attach: it returns
	// the tuple tap to install on the new session (see
	// serve.SessionOptions.Tap) plus a release function called exactly
	// once when the session ends — aborted=true means the session was
	// never created (the attach failed after the tap was made), so the
	// hook can discard a recording no tuple ever reached; aborted=false
	// means a normal detach or connection teardown. An error fails the
	// attach. This is how cmd/gestured records remote sessions into a
	// stream-store archive without the wire layer knowing about disks.
	// Set it before Serve; it must be safe for concurrent use.
	TapSessions func(sessionID string) (tap func(stream.Tuple), release func(aborted bool), err error)

	// BackfillSource, when non-nil, serves FrameBackfill requests: it must
	// evaluate the named plans over the named recorded stream within the
	// given event-time window, calling emit (possibly repeatedly, in order)
	// with the detections as they fire, and return the records and tuples
	// evaluated. A stream the server does not archive is reported by
	// returning (or wrapping) ErrUnknownStream — the request then lists it
	// as missing instead of failing, which is how a fleet coordinator
	// discovers it must retry the stream elsewhere. The standard
	// implementation is store.NewWireBackfillSource over the server's
	// archive. Runs on the connection's reader goroutine; set before Serve,
	// safe for concurrent use.
	BackfillSource BackfillFunc

	// MigrateSource, when non-nil, makes this server's sessions migratable:
	// on FrameMigrateBegin it must return a reader over the session's
	// recorded history plus the recorded-tuple count, with everything tapped
	// so far flushed to readable state (the session is sealed and drained
	// before the call, so the tap is quiescent). The standard implementation
	// syncs the session's store.Recorder and opens a store.Reader on its
	// stream. A recorded count short of the session's admitted count fails
	// the migration cleanly — a lossy recording cannot rebuild engine state.
	// Set before Serve; safe for concurrent use.
	MigrateSource func(sessionID string) (hr HistoryReader, recorded uint64, err error)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// NewServer creates a server over an existing session manager. The caller
// keeps ownership of the manager and closes it after the server.
func NewServer(mgr *serve.Manager) *Server {
	return &Server{mgr: mgr, conns: make(map[*conn]struct{})}
}

// Manager returns the session manager the server serves.
func (s *Server) Manager() *serve.Manager { return s.mgr }

// Serve accepts connections on ln until Close. It always returns a non-nil
// error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		cc := &conn{srv: s, c: c, r: NewReader(c), w: NewWriter(c), sessions: make(map[uint32]*connSession)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return net.ErrClosed
		}
		s.conns[cc] = struct{}{}
		// Register with the handler group under the lock: Close marks
		// closed before calling Wait, so an Add here cannot race a Wait
		// that is already draining.
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			cc.serve()
			s.mu.Lock()
			delete(s.conns, cc)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address once Serve is running.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every connection and waits for their
// handlers to finish. The underlying manager is left running.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		c.c.Close()
	}
	s.wg.Wait()
	return err
}

// conn is one client connection: a reader goroutine processing frames
// synchronously (the backpressure path) plus per-session pusher goroutines
// streaming detections back.
type conn struct {
	srv *Server
	c   net.Conn
	r   *Reader

	wmu sync.Mutex
	w   *Writer

	mu         sync.Mutex
	sessions   map[uint32]*connSession
	nextHandle uint32
}

// HistoryReader iterates a recorded session's admitted tuples in record
// batches, ending with io.EOF — the shape of *store.Reader, declared here so
// the wire layer can stream migration history without importing the store.
type HistoryReader interface {
	Next() ([]stream.Tuple, error)
	Close() error
}

// BackfillFunc evaluates plans over one recorded stream for a backfill
// request — the Server.BackfillSource contract, declared here so the wire
// layer can serve offline evaluation without importing the store. A zero
// since or until leaves that side of the event-time window unbounded.
type BackfillFunc func(stream string, gestures []string, since, until time.Time,
	emit func([]anduin.Detection) error) (records, tuples uint64, err error)

// connSession is one attached session with its detection push state.
type connSession struct {
	handle  uint32
	sess    *serve.Session
	cancel  func()
	release func(aborted bool) // recording tap release; nil when not recording

	// Migration source state: the open history cursor of a sealed session
	// and its absolute tuple position. Only the connection's reader
	// goroutine touches these (every migrate frame, detach and teardown run
	// there), so they need no lock.
	migReader HistoryReader
	migSent   uint64

	pmu        sync.Mutex
	pending    []anduin.Detection
	detSent    atomic.Uint64
	detDropped atomic.Uint64
	notify     chan struct{}
	done       chan struct{}
	encBuf     []byte // detection encode scratch; guarded by conn.wmu
}

// serve runs the connection's frame loop until the peer disconnects or a
// protocol violation occurs, then tears down every attached session.
func (c *conn) serve() {
	defer c.teardown()
	for {
		f, err := c.r.Next()
		if err != nil {
			return
		}
		if err := c.handle(f); err != nil {
			// Protocol violation: report once and drop the connection.
			c.wmu.Lock()
			c.w.WriteJSON(FrameError, &ErrorReply{Msg: err.Error()})
			c.wmu.Unlock()
			return
		}
	}
}

func (c *conn) teardown() {
	c.c.Close()
	c.mu.Lock()
	sessions := make([]*connSession, 0, len(c.sessions))
	for h, cs := range c.sessions {
		sessions = append(sessions, cs)
		delete(c.sessions, h)
	}
	c.mu.Unlock()
	for _, cs := range sessions {
		cs.cancel()
		close(cs.done)
		if cs.migReader != nil {
			cs.migReader.Close()
			cs.migReader = nil
		}
		cs.sess.Close()
		if cs.release != nil {
			cs.release(false)
		}
	}
}

// handle processes one frame on the reader goroutine. Returning an error
// closes the connection; session-scoped failures are reported with
// FrameError instead and keep the connection alive.
func (c *conn) handle(f Frame) error {
	switch f.Type {
	case FrameAttach:
		return c.handleAttach(f.Payload)
	case FrameBatch:
		return c.handleBatch(f.Payload)
	case FrameFlush:
		return c.handleSessionOp(f.Payload, FrameFlushOK, false)
	case FrameDetach:
		return c.handleSessionOp(f.Payload, FrameDetachOK, true)
	case FrameMigrateBegin:
		return c.handleMigrateBegin(f.Payload)
	case FrameMigrateState:
		return c.handleMigrateState(f.Payload)
	case FrameMigrateCommit:
		return c.handleMigrateCommit(f.Payload)
	case FrameBackfill:
		return c.handleBackfill(f.Payload)
	case FrameMetricsReq:
		c.wmu.Lock()
		defer c.wmu.Unlock()
		return c.w.WriteJSON(FrameMetricsOK, c.srv.mgr.Metrics())
	case FramePing:
		var ping Ping
		if err := unmarshalStrict(f.Payload, &ping); err != nil {
			return fmt.Errorf("ping: %w", err)
		}
		c.wmu.Lock()
		defer c.wmu.Unlock()
		return c.w.WriteJSON(FramePong, &Pong{
			Seq:      ping.Seq,
			Name:     c.srv.Name,
			Sessions: c.srv.mgr.SessionCount(),
		})
	default:
		return fmt.Errorf("unexpected %s frame from client", f.Type)
	}
}

func (c *conn) handleAttach(payload []byte) error {
	var req AttachRequest
	if err := unmarshalStrict(payload, &req); err != nil {
		return fmt.Errorf("attach: %w", err)
	}
	if req.Version != ProtocolVersion {
		return fmt.Errorf("attach: protocol version %d, server speaks %d", req.Version, ProtocolVersion)
	}
	var tap func(stream.Tuple)
	var release func(aborted bool)
	if c.srv.TapSessions != nil {
		var err error
		tap, release, err = c.srv.TapSessions(req.ID)
		if err != nil {
			return c.sessionError(0, fmt.Errorf("wire: recording %q: %w", req.ID, err))
		}
	}
	sess, err := c.srv.mgr.CreateSessionWith(req.ID, serve.SessionOptions{
		Gestures:  req.Gestures,
		Tap:       tap,
		CatchUpTo: req.StartAt,
	})
	if err != nil {
		if release != nil {
			release(true)
		}
		return c.sessionError(0, err)
	}
	c.mu.Lock()
	c.nextHandle++
	cs := &connSession{
		handle:  c.nextHandle,
		sess:    sess,
		release: release,
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	c.sessions[cs.handle] = cs
	c.mu.Unlock()

	// Stream detections out instead of buffering them in the session: the
	// listener runs on the shard worker, so it only appends to the pending
	// slice; the pusher goroutine owns the socket writes.
	cs.cancel = sess.OnDetection(func(d anduin.Detection) {
		if sess.CatchingUp() {
			// Catch-up replay re-fires detections the source backend
			// already delivered to the client; muting them here is the
			// exactly-once half of the migration contract. MigrateCommit
			// flushes before unmuting, so no replayed detection can race
			// past this check.
			return
		}
		cs.pmu.Lock()
		if len(cs.pending) >= maxPendingDetections {
			cs.pending = cs.pending[1:]
			cs.detDropped.Add(1)
		}
		cs.pending = append(cs.pending, d)
		cs.pmu.Unlock()
		select {
		case cs.notify <- struct{}{}:
		default:
		}
	})
	sess.SetCollect(false)
	go c.pushLoop(cs)

	plans := req.Gestures
	if len(plans) == 0 {
		plans = c.srv.mgr.Registry().Names()
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.w.WriteJSON(FrameAttachOK, &AttachReply{
		Handle: cs.handle,
		Fields: rawFields(sess),
		Plans:  plans,
	})
}

// rawFields returns the width of the session's raw ingestion schema.
func rawFields(sess *serve.Session) int {
	if raw, ok := sess.Engine().Stream(anduin.RawStreamName); ok {
		return raw.Schema().Len()
	}
	return 0
}

func (c *conn) handleBatch(payload []byte) error {
	// Only trace-sampled batches pay for clock reads; the flag check is a
	// byte mask on the raw payload.
	var start time.Time
	if traced := BatchTraced(payload); traced {
		start = time.Now()
	}
	b, err := DecodeBatch(payload)
	if err != nil {
		return err
	}
	if b.SentNs != 0 {
		c.srv.BatchDecode.ObserveSince(start)
		c.srv.Ingress.Observe(time.Duration(start.UnixNano() - b.SentNs))
	}
	cs := c.session(b.Handle)
	if cs == nil {
		return fmt.Errorf("batch for unknown session handle %d", b.Handle)
	}
	for i := range b.Tuples {
		// FeedTuple blocks on a full shard queue under serve.Block — this
		// is the backpressure path: the reader goroutine stalls, the kernel
		// socket buffer fills, TCP flow control paces the remote client.
		// The first tuple of a traced batch carries the trace through the
		// shard so the serve-side stage histograms see it.
		var err error
		if i == 0 && b.SentNs != 0 {
			err = cs.sess.FeedTupleTraced(b.Tuples[i], b.SentNs)
		} else {
			err = cs.sess.FeedTuple(b.Tuples[i])
		}
		if err != nil {
			// A feed failure means the session or manager closed under the
			// connection; treat it as fatal so the client never receives an
			// error frame it has no request in flight for.
			return fmt.Errorf("session %q: %w", cs.sess.ID(), err)
		}
	}
	return nil
}

// handleSessionOp implements flush and detach: wait until the session's
// queue is drained, push any pending detections, then acknowledge with the
// final counters — all under the write lock, so the client is guaranteed to
// have every detection for tuples fed before the request once the ack
// arrives.
func (c *conn) handleSessionOp(payload []byte, ack FrameType, detach bool) error {
	var ref SessionRef
	if err := unmarshalStrict(payload, &ref); err != nil {
		return fmt.Errorf("%s: %w", ack, err)
	}
	cs := c.session(ref.Handle)
	if cs == nil {
		// The client has a request in flight, so this is answerable as a
		// session-scoped error (e.g. a double Detach) — the connection and
		// its other sessions survive.
		return c.sessionError(ref.Handle, fmt.Errorf("wire: no session with handle %d", ref.Handle))
	}
	cs.sess.Flush()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.writeDetectionsLocked(cs); err != nil {
		return err
	}
	in, out, dropped := cs.sess.Counters()
	counters := SessionCounters{
		Handle:            cs.handle,
		In:                in,
		Out:               out,
		Dropped:           dropped,
		Detections:        cs.detSent.Load(),
		DetectionsDropped: cs.detDropped.Load(),
	}
	if detach {
		c.mu.Lock()
		delete(c.sessions, cs.handle)
		c.mu.Unlock()
		cs.cancel()
		close(cs.done)
		if cs.migReader != nil {
			cs.migReader.Close()
			cs.migReader = nil
		}
		cs.sess.Close()
		if cs.release != nil {
			cs.release(false)
		}
	}
	return c.w.WriteJSON(ack, &counters)
}

// handleMigrateBegin seals a session for migration: feeds are refused, the
// queue is drained, and the recorded history is opened and verified complete
// against the admitted-tuple count — which becomes the cut ordinal. On any
// failure the session is unsealed and resumes untouched.
func (c *conn) handleMigrateBegin(payload []byte) error {
	var req MigrateBeginRequest
	if err := unmarshalStrict(payload, &req); err != nil {
		return fmt.Errorf("migrate-begin: %w", err)
	}
	cs := c.session(req.Handle)
	if cs == nil {
		return c.sessionError(req.Handle, fmt.Errorf("wire: no session with handle %d", req.Handle))
	}
	if c.srv.MigrateSource == nil {
		return c.sessionError(req.Handle, fmt.Errorf("wire: session %q: server has no migration history source", cs.sess.ID()))
	}
	if cs.migReader != nil {
		return c.sessionError(req.Handle, fmt.Errorf("wire: session %q: migration already in progress", cs.sess.ID()))
	}
	// Seal first so the admitted count is a stable cut, then drain the
	// queue so every admitted tuple has been evaluated and tapped.
	cs.sess.Seal()
	cs.sess.Flush()
	in, _, _ := cs.sess.Counters()
	hr, recorded, err := c.srv.MigrateSource(cs.sess.ID())
	if err == nil && recorded != in {
		hr.Close()
		err = fmt.Errorf("recording holds %d of %d admitted tuples; a lossy tap cannot rebuild state", recorded, in)
	}
	if err != nil {
		cs.sess.Unseal()
		return c.sessionError(req.Handle, fmt.Errorf("wire: session %q: %w", cs.sess.ID(), err))
	}
	cs.migReader, cs.migSent = hr, 0
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.w.WriteJSON(FrameMigrateBeginOK, &MigrateBeginReply{Handle: cs.handle, Ordinal: in})
}

// handleMigrateState streams the next chunk of a sealed session's recorded
// history: one record re-encoded as a canonical batch payload (handle 0; the
// requester patches it before forwarding), empty payload at end of history.
// A request whose After disagrees with the cursor reopens the history and
// skips forward — how a retry against a fresh target restarts from zero.
func (c *conn) handleMigrateState(payload []byte) error {
	var req MigrateStateRequest
	if err := unmarshalStrict(payload, &req); err != nil {
		return fmt.Errorf("migrate-state: %w", err)
	}
	cs := c.session(req.Handle)
	if cs == nil {
		return c.sessionError(req.Handle, fmt.Errorf("wire: no session with handle %d", req.Handle))
	}
	if cs.migReader == nil {
		return c.sessionError(req.Handle, fmt.Errorf("wire: session %q: no migration in progress", cs.sess.ID()))
	}
	if req.After < cs.migSent {
		cs.migReader.Close()
		cs.migReader = nil
		hr, _, err := c.srv.MigrateSource(cs.sess.ID())
		if err != nil {
			// The session stays sealed: the requester decides whether to
			// retry or abort (which unseals).
			return c.sessionError(req.Handle, fmt.Errorf("wire: session %q: reopen history: %w", cs.sess.ID(), err))
		}
		cs.migReader, cs.migSent = hr, 0
	}
	var chunk []stream.Tuple
	for chunk == nil {
		tuples, err := cs.migReader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return c.sessionError(req.Handle, fmt.Errorf("wire: session %q: history read: %w", cs.sess.ID(), err))
		}
		end := cs.migSent + uint64(len(tuples))
		if req.After >= end {
			cs.migSent = end
			continue
		}
		chunk = tuples[req.After-cs.migSent:]
		cs.migSent = end
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if len(chunk) == 0 {
		return c.w.WriteFrame(FrameMigrateStateOK, nil)
	}
	buf, err := AppendBatch(cs.encBuf[:0], 0, len(chunk[0].Fields), chunk)
	if err != nil {
		return err
	}
	cs.encBuf = buf[:0]
	return c.w.WriteFrame(FrameMigrateStateOK, buf)
}

// handleMigrateCommit finalizes a migration leg. Abort resumes a sealed
// source in place (the target never materialized — nothing was lost);
// otherwise the session is a catch-up target whose replay must land exactly
// on the cut ordinal before detection delivery resumes.
func (c *conn) handleMigrateCommit(payload []byte) error {
	var req MigrateCommitRequest
	if err := unmarshalStrict(payload, &req); err != nil {
		return fmt.Errorf("migrate-commit: %w", err)
	}
	cs := c.session(req.Handle)
	if cs == nil {
		return c.sessionError(req.Handle, fmt.Errorf("wire: no session with handle %d", req.Handle))
	}
	if req.Abort {
		if cs.migReader != nil {
			cs.migReader.Close()
			cs.migReader = nil
		}
		if !cs.sess.Sealed() {
			return c.sessionError(req.Handle, fmt.Errorf("wire: session %q: no migration to abort", cs.sess.ID()))
		}
		cs.sess.Unseal()
	} else {
		cs.sess.Flush()
		if got := cs.sess.CatchUpTarget(); req.Ordinal != got {
			return c.sessionError(req.Handle, fmt.Errorf("wire: session %q: commit ordinal %d, attached at %d", cs.sess.ID(), req.Ordinal, got))
		}
		if err := cs.sess.EndCatchUp(); err != nil {
			return c.sessionError(req.Handle, err)
		}
	}
	in, out, dropped := cs.sess.Counters()
	counters := SessionCounters{
		Handle:            cs.handle,
		In:                in,
		Out:               out,
		Dropped:           dropped,
		Detections:        cs.detSent.Load(),
		DetectionsDropped: cs.detDropped.Load(),
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.w.WriteJSON(FrameMigrateCommitOK, &counters)
}

// handleBackfill evaluates plans over recorded streams on the connection's
// reader goroutine: per stream, detections go out as FrameBackfillDet
// frames addressed by the stream's request index, then one FrameBackfillOK
// summarizes the run. Unknown streams are collected in Missing; any other
// per-stream failure aborts the request with a FrameError (the connection
// and its sessions survive).
func (c *conn) handleBackfill(payload []byte) error {
	var req BackfillRequest
	if err := unmarshalStrict(payload, &req); err != nil {
		return fmt.Errorf("backfill: %w", err)
	}
	if c.srv.BackfillSource == nil {
		return c.sessionError(0, fmt.Errorf("wire: server has no backfill source"))
	}
	var since, until time.Time
	if req.SinceNs != 0 {
		since = decodeTime(req.SinceNs)
	}
	if req.UntilNs != 0 {
		until = decodeTime(req.UntilNs)
	}
	var reply BackfillReply
	var encBuf []byte
	for i, name := range req.Streams {
		idx := uint32(i)
		emit := func(dets []anduin.Detection) error {
			for len(dets) > 0 {
				n := len(dets)
				if n > MaxDetections {
					n = MaxDetections
				}
				buf, err := AppendDetections(encBuf[:0], idx, 0, dets[:n])
				if err != nil {
					return err
				}
				encBuf = buf[:0]
				c.wmu.Lock()
				err = c.w.WriteFrame(FrameBackfillDet, buf)
				c.wmu.Unlock()
				if err != nil {
					return err
				}
				reply.Detections += uint64(n)
				dets = dets[n:]
			}
			return nil
		}
		records, tuples, err := c.srv.BackfillSource(name, req.Gestures, since, until, emit)
		reply.Records += records
		reply.Tuples += tuples
		if err != nil {
			if errors.Is(err, ErrUnknownStream) {
				reply.Missing = append(reply.Missing, i)
				continue
			}
			return c.sessionError(0, fmt.Errorf("wire: backfill stream %q: %w", name, err))
		}
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.w.WriteJSON(FrameBackfillOK, &reply)
}

func (c *conn) session(handle uint32) *connSession {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sessions[handle]
}

// sessionError reports a session-scoped failure without closing the
// connection.
func (c *conn) sessionError(handle uint32, err error) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.w.WriteJSON(FrameError, &ErrorReply{Handle: handle, Msg: err.Error()})
}

// pushLoop streams pending detections to the client until the session
// detaches or the connection dies.
func (c *conn) pushLoop(cs *connSession) {
	for {
		select {
		case <-cs.notify:
			c.wmu.Lock()
			err := c.writeDetectionsLocked(cs)
			c.wmu.Unlock()
			if err != nil {
				c.c.Close() // wake the reader goroutine, which tears down
				return
			}
		case <-cs.done:
			return
		}
	}
}

// writeDetectionsLocked drains the session's pending detections into
// FrameDetections frames. Callers hold c.wmu, which makes take-and-write
// atomic: no acknowledgement can overtake a detection taken before it.
func (c *conn) writeDetectionsLocked(cs *connSession) error {
	for {
		cs.pmu.Lock()
		pending := cs.pending
		cs.pending = nil
		cs.pmu.Unlock()
		if len(pending) == 0 {
			return nil
		}
		_, _, dropped := cs.sess.Counters()
		for len(pending) > 0 {
			n := len(pending)
			if n > MaxDetections {
				n = MaxDetections
			}
			buf, err := AppendDetections(cs.encBuf[:0], cs.handle, dropped, pending[:n])
			if err != nil {
				return err
			}
			cs.encBuf = buf[:0]
			if err := c.w.WriteFrame(FrameDetections, buf); err != nil {
				return err
			}
			cs.detSent.Add(uint64(n))
			pending = pending[n:]
		}
	}
}

// unmarshalStrict decodes a JSON control payload; json.Unmarshal already
// rejects trailing non-whitespace data.
func unmarshalStrict(payload []byte, v any) error {
	return json.Unmarshal(payload, v)
}
