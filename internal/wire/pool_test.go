package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"gesturecep/internal/stream"
)

// poolTuples builds n kinect-width tuples for batch encoding.
func poolTuples(n, fields int) []stream.Tuple {
	out := make([]stream.Tuple, n)
	for i := range out {
		fs := make([]float64, fields)
		for j := range fs {
			fs[j] = float64(i*fields+j) * 0.25
		}
		out[i] = stream.Tuple{Ts: testTime().Add(time.Duration(i) * 33 * time.Millisecond), Seq: uint64(i), Fields: fs}
	}
	return out
}

// frameBytes encodes one frame (header + payload) for feeding a Reader.
func frameBytes(t *testing.T, ft FrameType, payload []byte) []byte {
	t.Helper()
	hdr := make([]byte, headerSize)
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = byte(ft)
	return append(hdr, payload...)
}

// loopReader replays the same byte sequence forever — an infinite frame
// stream for allocation measurements.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	n := copy(p, l.data[l.off:])
	l.off = (l.off + n) % len(l.data)
	return n, nil
}

// TestReaderReleasesOversizedBuffer is the regression test for the
// grow-only Reader buffer: one maximum-size frame must not pin its
// high-water-mark allocation for the life of the connection. After the big
// frame, the next small frame must leave the Reader holding at most
// maxRetainedBuf of capacity.
func TestReaderReleasesOversizedBuffer(t *testing.T) {
	big := make([]byte, MaxFrame)
	small := []byte(`{"seq":1}`)
	var buf []byte
	buf = append(buf, frameBytes(t, FrameBatch, big)...) // geometry not validated by Next
	buf = append(buf, frameBytes(t, FramePing, small)...)
	buf = append(buf, frameBytes(t, FramePing, small)...)

	r := NewReader(&loopReader{data: buf})
	f, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Payload) != MaxFrame {
		t.Fatalf("big frame payload %d, want %d", len(f.Payload), MaxFrame)
	}
	if cap(r.buf) < MaxFrame {
		t.Fatalf("reader buffer cap %d after big frame, want >= %d", cap(r.buf), MaxFrame)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if cap(r.buf) > maxRetainedBuf {
		t.Fatalf("reader retains %d bytes of capacity after a small frame, cap is %d", cap(r.buf), maxRetainedBuf)
	}
}

// TestWriterReleasesOversizedBuffer is the matching regression test for the
// Writer's scratch buffer.
func TestWriterReleasesOversizedBuffer(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteFrame(FrameBatch, make([]byte, MaxFrame)); err != nil {
		t.Fatal(err)
	}
	if cap(w.buf) > maxRetainedBuf {
		t.Fatalf("writer retains %d bytes of scratch capacity, cap is %d", cap(w.buf), maxRetainedBuf)
	}
	if err := w.WriteFrame(FramePing, []byte(`{"seq":1}`)); err != nil {
		t.Fatal(err)
	}
	if cap(w.buf) > maxRetainedBuf {
		t.Fatalf("writer retains %d bytes of scratch capacity after small frame, cap is %d", cap(w.buf), maxRetainedBuf)
	}
}

// TestFrameBufClasses pins the pool contract: GetFrameBuf returns a buffer
// of the requested length whose capacity covers its size class, and
// PutFrameBuf recycles it for the next same-class Get.
func TestFrameBufClasses(t *testing.T) {
	for _, n := range []int{1, 100, 4096, 5000, 64 << 10, 300 << 10, MaxFrame} {
		b := GetFrameBuf(n)
		if len(b) != n {
			t.Fatalf("GetFrameBuf(%d) has len %d", n, len(b))
		}
		PutFrameBuf(b)
	}
	// Undersized and nil slices are silently dropped, never panic.
	PutFrameBuf(nil)
	PutFrameBuf(make([]byte, 10))
}

// TestCodecAllocFree gates the codec hot path at zero allocations per
// frame in steady state: batch encode into a reused scratch, frame write
// through a retained Writer, frame read through a retained Reader. The
// pooling work of this layer cannot silently regress without tripping it.
func TestCodecAllocFree(t *testing.T) {
	const fields = 45
	tuples := poolTuples(DefaultBatchSize, fields)

	// Encode: AppendBatch into a reused scratch buffer.
	scratch, err := AppendBatch(nil, 7, fields, tuples)
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), scratch...)
	scratch = scratch[:0]
	if n := testing.AllocsPerRun(200, func() {
		out, err := AppendBatch(scratch[:0], 7, fields, tuples)
		if err != nil {
			t.Fatal(err)
		}
		scratch = out[:0]
	}); n != 0 {
		t.Fatalf("AppendBatch allocates %.1f per batch, want 0", n)
	}

	// Write: WriteFrame with a warmed scratch buffer.
	w := NewWriter(io.Discard)
	if err := w.WriteFrame(FrameBatch, payload); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := w.WriteFrame(FrameBatch, payload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("WriteFrame allocates %.1f per frame, want 0", n)
	}

	// Read: Next over an endless pre-encoded stream.
	r := NewReader(&loopReader{data: frameBytes(t, FrameBatch, payload)})
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Reader.Next allocates %.1f per frame, want 0", n)
	}
}

// TestCoalescerOrderAndDrain proves the coalescing flusher preserves frame
// order (the relay's flush contract depends on it) and releases every
// enqueued frame to the socket even when frames pile up faster than the
// flusher drains them.
func TestCoalescerOrderAndDrain(t *testing.T) {
	const frames = 500
	a, b := net.Pipe()
	defer b.Close()

	type rf struct {
		seq uint32
		err error
	}
	got := make(chan rf, frames)
	go func() {
		r := NewReader(b)
		for i := 0; i < frames; i++ {
			f, err := r.Next()
			if err != nil {
				got <- rf{err: err}
				return
			}
			if f.Type != FrameBatch || len(f.Payload) < 8 {
				got <- rf{err: fmt.Errorf("frame %d: type %s payload %d", i, f.Type, len(f.Payload))}
				return
			}
			got <- rf{seq: binary.BigEndian.Uint32(f.Payload[4:])}
		}
	}()

	cl := NewClient(a)
	cl.EnableCoalescing()
	for i := 0; i < frames; i++ {
		p := GetFrameBuf(16)
		binary.BigEndian.PutUint32(p[4:], uint32(i))
		if err := cl.co.enqueue(FrameBatch, p, true, nil); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	for i := 0; i < frames; i++ {
		f := <-got
		if f.err != nil {
			t.Fatal(f.err)
		}
		if f.seq != uint32(i) {
			t.Fatalf("frame %d arrived with seq %d: coalescer reordered", i, f.seq)
		}
	}
	cl.Close()
}
