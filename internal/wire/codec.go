package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"

	"gesturecep/internal/anduin"
	"gesturecep/internal/stream"
)

const headerSize = 5 // u32 payload length + u8 frame type

// Frame payload buffers are pooled by size class so a reader can hand a
// just-read payload to another connection's writer without a copy and
// without either side retaining a high-water-mark allocation. A buffer's
// class is the largest class that fits inside its capacity, so any slice
// whose capacity covers a class may be recycled.
var frameClasses = [...]int{4 << 10, 32 << 10, 256 << 10, MaxFrame + headerSize}

var framePools [len(frameClasses)]sync.Pool

// maxRetainedBuf caps the payload/scratch capacity a Reader or Writer keeps
// across frames. Larger buffers are released to the shared pool after use so
// one oversized frame does not pin its allocation for the connection's life.
const maxRetainedBuf = 64 << 10

// GetFrameBuf returns a length-n buffer from the frame pool (n up to
// MaxFrame plus header). Release it with PutFrameBuf when done.
func GetFrameBuf(n int) []byte {
	for i, c := range frameClasses {
		if n <= c {
			if bp, _ := framePools[i].Get().(*[]byte); bp != nil {
				return (*bp)[:n]
			}
			return make([]byte, n, c)
		}
	}
	return make([]byte, n)
}

// PutFrameBuf returns a buffer obtained from GetFrameBuf (or any slice with
// at least the smallest class capacity) to the pool. Passing nil or an
// undersized slice is a no-op. The caller must not touch b afterwards.
func PutFrameBuf(b []byte) {
	c := cap(b)
	for i := len(frameClasses) - 1; i >= 0; i-- {
		if c >= frameClasses[i] {
			b = b[:0]
			framePools[i].Put(&b)
			return
		}
	}
}

// Frame is one decoded frame. Payload references the Reader's internal
// buffer and is only valid until the next call to Next, unless the caller
// takes ownership with Reader.Detach.
type Frame struct {
	Type    FrameType
	Payload []byte
}

// Reader decodes frames from a byte stream, reusing one pooled payload
// buffer across frames. It is not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	hdr [headerSize]byte
	buf []byte
}

// NewReader wraps r for frame decoding.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 32<<10)}
}

// Next reads one frame. The returned payload is valid until the next call.
// A frame whose declared length exceeds MaxFrame or whose type is unknown
// is rejected before its payload is read.
func (d *Reader) Next() (Frame, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(d.hdr[:4])
	t := FrameType(d.hdr[4])
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("wire: frame of %d bytes exceeds the %d maximum", n, MaxFrame)
	}
	if t == FrameInvalid || t >= frameTypeEnd {
		return Frame{}, fmt.Errorf("wire: unknown frame type %d", uint8(t))
	}
	if cap(d.buf) < int(n) || cap(d.buf) > maxRetainedBuf {
		// Either the retained buffer is too small, or it is an oversized
		// one we do not want to pin past this frame: swap it through the
		// pool for a right-classed buffer.
		PutFrameBuf(d.buf)
		d.buf = GetFrameBuf(int(n))
	}
	payload := d.buf[:n]
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return Frame{}, fmt.Errorf("wire: short %s frame: %w", t, err)
	}
	return Frame{Type: t, Payload: payload}, nil
}

// Detach transfers ownership of the last returned frame's payload buffer to
// the caller: the payload stays valid past the next call to Next, and the
// caller must release it with PutFrameBuf once done (the cluster gateway
// does so after the backend flusher has written it out). Calling Detach with
// no frame outstanding is a no-op.
func (d *Reader) Detach() {
	d.buf = nil
}

// Writer encodes frames onto a byte stream, reusing one pooled scratch
// buffer. It is not safe for concurrent use; callers serialize with their
// own lock.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter wraps w for frame encoding.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteFrame emits one frame. Header and payload go out in a single Write
// so a frame is never interleaved with another writer's bytes as long as
// callers hold the connection write lock.
func (e *Writer) WriteFrame(t FrameType, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds the %d maximum", len(payload), MaxFrame)
	}
	need := headerSize + len(payload)
	if cap(e.buf) < need {
		PutFrameBuf(e.buf)
		e.buf = GetFrameBuf(need)
	}
	b := e.buf[:need]
	binary.BigEndian.PutUint32(b[:4], uint32(len(payload)))
	b[4] = byte(t)
	copy(b[headerSize:], payload)
	_, err := e.w.Write(b)
	if cap(e.buf) > maxRetainedBuf {
		// Do not pin an oversized scratch buffer on the connection.
		PutFrameBuf(e.buf)
		e.buf = nil
	}
	return err
}

// WriteJSON emits one control frame with a JSON payload.
func (e *Writer) WriteJSON(t FrameType, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return e.WriteFrame(t, payload)
}

// --- Tuple batch (data plane, client → server). ---

const tupleHeadSize = 16 // ts i64 + seq u64

// batchTraceFlag is the top bit of the batch header's fields word. A set
// flag means the payload carries a trailing 8-byte client-send timestamp
// (unix nanoseconds) after the tuple bodies — the sampled trace timestamp of
// the observability layer. Field counts are bounded by MaxTupleFields
// (1024), so the bit can never collide with a real width, and an untraced
// batch is byte-identical to the pre-trace encoding.
const batchTraceFlag = 0x8000

// AppendBatch appends a FrameBatch payload for the given tuples to dst and
// returns the extended slice. Every tuple must have exactly fields values.
func AppendBatch(dst []byte, handle uint32, fields int, tuples []stream.Tuple) ([]byte, error) {
	return appendBatch(dst, handle, fields, tuples, 0)
}

// AppendBatchTraced is AppendBatch with the batch marked as trace-sampled:
// sentNs (a non-zero client-send unix-nano timestamp) rides at the end of
// the payload so every downstream hop can record its stage latency. The
// receiving session's detections are unaffected — tracing annotates the
// batch, not the tuples.
func AppendBatchTraced(dst []byte, handle uint32, fields int, tuples []stream.Tuple, sentNs int64) ([]byte, error) {
	if sentNs == 0 {
		return nil, fmt.Errorf("wire: traced batch needs a non-zero send timestamp")
	}
	return appendBatch(dst, handle, fields, tuples, sentNs)
}

func appendBatch(dst []byte, handle uint32, fields int, tuples []stream.Tuple, sentNs int64) ([]byte, error) {
	if len(tuples) == 0 || len(tuples) > MaxBatch {
		return nil, fmt.Errorf("wire: batch of %d tuples (want 1..%d)", len(tuples), MaxBatch)
	}
	if fields <= 0 || fields > MaxTupleFields {
		return nil, fmt.Errorf("wire: %d fields per tuple (want 1..%d)", fields, MaxTupleFields)
	}
	flags := uint16(fields)
	if sentNs != 0 {
		flags |= batchTraceFlag
	}
	dst = binary.BigEndian.AppendUint32(dst, handle)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(tuples)))
	dst = binary.BigEndian.AppendUint16(dst, flags)
	for i := range tuples {
		t := &tuples[i]
		if len(t.Fields) != fields {
			return nil, fmt.Errorf("wire: tuple %d has %d fields, batch declares %d", i, len(t.Fields), fields)
		}
		dst = binary.BigEndian.AppendUint64(dst, uint64(t.Ts.UnixNano()))
		dst = binary.BigEndian.AppendUint64(dst, t.Seq)
		for _, f := range t.Fields {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(f))
		}
	}
	if sentNs != 0 {
		dst = binary.BigEndian.AppendUint64(dst, uint64(sentNs))
	}
	return dst, nil
}

// BatchTraced reports whether a batch payload carries the trace-sample
// timestamp, by flag alone — cheap enough for a proxy hot path deciding
// whether to time a forward. It does not validate the payload.
func BatchTraced(payload []byte) bool {
	return len(payload) >= 8 && payload[6]&(batchTraceFlag>>8) != 0
}

// BatchGeometry validates a FrameBatch payload's structure — header, tuple
// count, field width, exact body length — without decoding a single tuple,
// and returns the routing facts a proxy needs. A payload that passes is
// guaranteed to decode, so a gateway may forward it verbatim knowing the
// backend cannot reject it as a protocol violation (tuple bodies are
// arbitrary float64 bits; only geometry can be malformed).
func BatchGeometry(payload []byte) (handle uint32, count, fields int, err error) {
	if len(payload) < 8 {
		return 0, 0, 0, fmt.Errorf("wire: batch payload of %d bytes is shorter than its header", len(payload))
	}
	handle = binary.BigEndian.Uint32(payload[:4])
	count = int(binary.BigEndian.Uint16(payload[4:6]))
	flags := binary.BigEndian.Uint16(payload[6:8])
	fields = int(flags &^ batchTraceFlag)
	if count == 0 || count > MaxBatch {
		return 0, 0, 0, fmt.Errorf("wire: batch of %d tuples (want 1..%d)", count, MaxBatch)
	}
	if fields == 0 || fields > MaxTupleFields {
		return 0, 0, 0, fmt.Errorf("wire: batch declares %d fields per tuple (want 1..%d)", fields, MaxTupleFields)
	}
	body := len(payload) - 8
	if flags&batchTraceFlag != 0 {
		body -= 8 // trailing trace timestamp
	}
	if body != count*(tupleHeadSize+8*fields) {
		return 0, 0, 0, fmt.Errorf("wire: batch body of %d bytes, want %d×%d", body, count, tupleHeadSize+8*fields)
	}
	return handle, count, fields, nil
}

// Batch is a decoded FrameBatch. Tuples share one freshly allocated field
// arena per decode; they remain valid after the next Reader.Next and may be
// retained by the engine (matched tuples feed output measures).
type Batch struct {
	Handle uint32
	Fields int
	Tuples []stream.Tuple
	// SentNs is the client-send unix-nano timestamp of a trace-sampled
	// batch, 0 when the batch was not sampled.
	SentNs int64
}

// DecodeBatch decodes a FrameBatch payload. The payload must be consumed
// exactly; the tuple count and width are validated against the payload
// length before the arena is allocated.
func DecodeBatch(payload []byte) (Batch, error) {
	handle, count, fields, err := BatchGeometry(payload)
	if err != nil {
		return Batch{}, err
	}
	b := Batch{Handle: handle, Fields: fields}
	body := payload[8:]
	if BatchTraced(payload) {
		b.SentNs = int64(binary.BigEndian.Uint64(body[len(body)-8:]))
		body = body[:len(body)-8]
	}
	tupleSize := tupleHeadSize + 8*b.Fields
	arena := make([]float64, count*b.Fields)
	b.Tuples = make([]stream.Tuple, count)
	for i := 0; i < count; i++ {
		off := i * tupleSize
		fields := arena[i*b.Fields : (i+1)*b.Fields : (i+1)*b.Fields]
		for j := range fields {
			fields[j] = math.Float64frombits(binary.BigEndian.Uint64(body[off+tupleHeadSize+8*j:]))
		}
		b.Tuples[i] = stream.Tuple{
			Ts:     decodeTime(int64(binary.BigEndian.Uint64(body[off:]))),
			Seq:    binary.BigEndian.Uint64(body[off+8:]),
			Fields: fields,
		}
	}
	return b, nil
}

// --- Detection push (data plane, server → client). ---

// AppendDetections appends a FrameDetections payload to dst: the session's
// cumulative tuple-drop counter plus the detections themselves.
func AppendDetections(dst []byte, handle uint32, dropped uint64, dets []anduin.Detection) ([]byte, error) {
	if len(dets) > MaxDetections {
		return nil, fmt.Errorf("wire: %d detections in one frame (max %d)", len(dets), MaxDetections)
	}
	dst = binary.BigEndian.AppendUint32(dst, handle)
	dst = binary.BigEndian.AppendUint64(dst, dropped)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(dets)))
	for i := range dets {
		d := &dets[i]
		if len(d.Gesture) > 0xffff {
			return nil, fmt.Errorf("wire: gesture name of %d bytes", len(d.Gesture))
		}
		if d.QueryID < 0 || int64(d.QueryID) > 0xffffffff {
			return nil, fmt.Errorf("wire: query id %d out of range", d.QueryID)
		}
		if len(d.Measures) > 0xffff {
			return nil, fmt.Errorf("wire: %d measures", len(d.Measures))
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(d.Gesture)))
		dst = append(dst, d.Gesture...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(d.QueryID))
		dst = binary.BigEndian.AppendUint64(dst, uint64(d.Start.UnixNano()))
		dst = binary.BigEndian.AppendUint64(dst, uint64(d.End.UnixNano()))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(d.Measures)))
		for _, m := range d.Measures {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(m))
		}
	}
	return dst, nil
}

// minDetSize is the encoded size of a detection with no name and no
// measures; it bounds how many detections a payload can possibly hold.
const minDetSize = 2 + 4 + 8 + 8 + 2

// DecodeDetections decodes a FrameDetections payload strictly.
func DecodeDetections(payload []byte) (handle uint32, dropped uint64, dets []anduin.Detection, err error) {
	if len(payload) < 14 {
		return 0, 0, nil, fmt.Errorf("wire: detections payload of %d bytes is shorter than its header", len(payload))
	}
	handle = binary.BigEndian.Uint32(payload[:4])
	dropped = binary.BigEndian.Uint64(payload[4:12])
	count := int(binary.BigEndian.Uint16(payload[12:14]))
	body := payload[14:]
	if count > MaxDetections {
		return 0, 0, nil, fmt.Errorf("wire: %d detections in one frame (max %d)", count, MaxDetections)
	}
	if max := len(body) / minDetSize; count > max {
		return 0, 0, nil, fmt.Errorf("wire: %d detections cannot fit in %d payload bytes", count, len(body))
	}
	dets = make([]anduin.Detection, 0, count)
	for i := 0; i < count; i++ {
		if len(body) < 2 {
			return 0, 0, nil, fmt.Errorf("wire: detection %d truncated", i)
		}
		nameLen := int(binary.BigEndian.Uint16(body[:2]))
		body = body[2:]
		if len(body) < nameLen+22 {
			return 0, 0, nil, fmt.Errorf("wire: detection %d truncated", i)
		}
		var d anduin.Detection
		d.Gesture = string(body[:nameLen])
		body = body[nameLen:]
		d.QueryID = int(binary.BigEndian.Uint32(body[:4]))
		d.Start = decodeTime(int64(binary.BigEndian.Uint64(body[4:12])))
		d.End = decodeTime(int64(binary.BigEndian.Uint64(body[12:20])))
		nm := int(binary.BigEndian.Uint16(body[20:22]))
		body = body[22:]
		if len(body) < 8*nm {
			return 0, 0, nil, fmt.Errorf("wire: detection %d measures truncated", i)
		}
		if nm > 0 {
			d.Measures = make([]float64, nm)
			for j := range d.Measures {
				d.Measures[j] = math.Float64frombits(binary.BigEndian.Uint64(body[8*j:]))
			}
			body = body[8*nm:]
		}
		dets = append(dets, d)
	}
	if len(body) != 0 {
		return 0, 0, nil, fmt.Errorf("wire: %d trailing bytes after detections", len(body))
	}
	return handle, dropped, dets, nil
}
