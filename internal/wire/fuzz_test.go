package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/stream"
)

// FuzzDecodeFrame feeds adversarial bytes to the frame reader and the
// data-plane payload decoders. Contracts: never panic, never allocate
// beyond the declared limits however the length fields lie, and decode
// strictly enough that every accepted data-plane payload re-encodes to the
// identical bytes (canonical encoding).
func FuzzDecodeFrame(f *testing.F) {
	ts := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
	seed := func(t FrameType, payload []byte) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteFrame(t, payload); err == nil {
			f.Add(buf.Bytes())
		}
	}
	if p, err := AppendBatch(nil, 1, 3, []stream.Tuple{
		{Ts: ts, Seq: 1, Fields: []float64{1, 2, 3}},
		{Ts: ts.Add(33 * time.Millisecond), Seq: 2, Fields: []float64{-1, 0.5, 9e99}},
	}); err == nil {
		seed(FrameBatch, p)
	}
	if p, err := AppendDetections(nil, 1, 5, []anduin.Detection{
		{Gesture: "swipe_right", QueryID: 2, Start: ts, End: ts.Add(time.Second), Measures: []float64{7}},
	}); err == nil {
		seed(FrameDetections, p)
	}
	seed(FrameAttach, []byte(`{"version":1,"id":"u"}`))
	seed(FrameFlush, []byte(`{"handle":1}`))
	// Lying length prefix and truncated header.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, byte(FrameBatch)})
	f.Add([]byte{0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewReader(bytes.NewReader(data))
		for i := 0; i < 16; i++ {
			fr, err := d.Next()
			if err != nil {
				return
			}
			if len(fr.Payload) > MaxFrame {
				t.Fatalf("frame payload of %d bytes exceeds MaxFrame", len(fr.Payload))
			}
			// The reader's buffer must never grow past the frame cap — the
			// over-allocation guard against hostile length prefixes.
			if cap(d.buf) > MaxFrame {
				t.Fatalf("reader buffer grew to %d bytes", cap(d.buf))
			}
			switch fr.Type {
			case FrameBatch:
				b, err := DecodeBatch(fr.Payload)
				if err != nil {
					continue
				}
				if len(b.Tuples) > MaxBatch || b.Fields > MaxTupleFields {
					t.Fatalf("decoded batch exceeds limits: %d×%d", len(b.Tuples), b.Fields)
				}
				re, err := AppendBatch(nil, b.Handle, b.Fields, b.Tuples)
				if err != nil {
					t.Fatalf("accepted batch does not re-encode: %v", err)
				}
				if !bytes.Equal(re, fr.Payload) {
					t.Fatalf("batch decode/encode not canonical:\nin:  %x\nout: %x", fr.Payload, re)
				}
			case FrameDetections:
				handle, dropped, dets, err := DecodeDetections(fr.Payload)
				if err != nil {
					continue
				}
				if len(dets) > MaxDetections {
					t.Fatalf("decoded %d detections", len(dets))
				}
				re, err := AppendDetections(nil, handle, dropped, dets)
				if err != nil {
					t.Fatalf("accepted detections do not re-encode: %v", err)
				}
				if !bytes.Equal(re, fr.Payload) {
					t.Fatalf("detections decode/encode not canonical:\nin:  %x\nout: %x", fr.Payload, re)
				}
			}
		}
	})
}

// FuzzDecodeBatch hits the batch decoder directly (no frame header), so the
// mutator spends its budget on payload structure.
func FuzzDecodeBatch(f *testing.F) {
	ts := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
	if p, err := AppendBatch(nil, 3, 2, []stream.Tuple{{Ts: ts, Seq: 9, Fields: []float64{4, 5}}}); err == nil {
		f.Add(p)
	}
	var lying []byte
	lying = binary.BigEndian.AppendUint32(lying, 1)
	lying = binary.BigEndian.AppendUint16(lying, 0xffff) // claims 65535 tuples
	lying = binary.BigEndian.AppendUint16(lying, 0xffff) // of 65535 fields
	f.Add(lying)
	f.Fuzz(func(t *testing.T, payload []byte) {
		b, err := DecodeBatch(payload)
		if err != nil {
			return
		}
		re, err := AppendBatch(nil, b.Handle, b.Fields, b.Tuples)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		if !bytes.Equal(re, payload) {
			t.Fatalf("batch decode/encode not canonical")
		}
	})
}
