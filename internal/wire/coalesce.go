package wire

import (
	"encoding/binary"
	"net"
	"sync"
)

// maxCoalescedBytes bounds the bytes a coalescer buffers before producers
// block. This is the gateway's one-hop relay of serve.Block backpressure: a
// slow backend fills the coalescer, which stalls the front-connection reader
// goroutines, which lets TCP flow control pace the remote producers.
const maxCoalescedBytes = 1 << 20

// hdrChunkSize is the arena-chunk size for frame headers queued in a
// coalescer; chunks come from (and return to) the shared frame pool.
const hdrChunkSize = 4 << 10

// coalescer serializes all frame writes of one connection through a single
// flusher goroutine. Frames enqueued by any number of producer goroutines
// (the cluster gateway's front-connection readers) while a previous flush is
// on the wire are gathered into one vectored write (writev via net.Buffers):
// N front sessions sharing a backend cost one syscall per flush cycle, not
// one per frame, and pooled payloads travel from the front reader to the
// backend socket with zero intermediate copies.
//
// Wire order is enqueue order (a single mutex), which preserves the relay's
// flush contract: a flush request enqueued after a batch is written after
// it, so the backend still processes every prior tuple before acking.
type coalescer struct {
	cl *Client

	mu    sync.Mutex
	cond  *sync.Cond
	bufs  net.Buffers // pending iovec: hdr, payload, hdr, payload, ...
	owned [][]byte    // pooled buffers (payloads + header chunks) released after the flush
	hdr   []byte      // current header arena chunk; its refs live in bufs
	queue int         // queued bytes, gates producer admission
	err   error       // first write error; poisons the coalescer
	stopd bool        // Close requested; drain then exit

	done chan struct{}
}

func newCoalescer(cl *Client) *coalescer {
	co := &coalescer{cl: cl, done: make(chan struct{})}
	co.cond = sync.NewCond(&co.mu)
	go co.flushLoop()
	return co
}

// enqueue appends one frame to the pending vectored write. When owned is
// true the payload buffer is released to the frame pool after it hits the
// socket; otherwise the payload must stay valid and untouched until then —
// freshly marshalled JSON qualifies, a caller-reused scratch buffer does
// not (copy it into a pooled buffer first). waiter, when non-nil, is
// registered for the next control reply in the same critical section, so
// reply order matches wire order even with concurrent producers. enqueue
// blocks while maxCoalescedBytes are already pending. On error, payload
// ownership stays with the caller.
func (co *coalescer) enqueue(t FrameType, payload []byte, owned bool, waiter *pendingReq) error {
	co.mu.Lock()
	for co.queue >= maxCoalescedBytes && co.err == nil && !co.stopd && !co.cl.closed.Load() {
		co.cond.Wait()
	}
	if co.err != nil || co.stopd || co.cl.closed.Load() {
		co.mu.Unlock()
		return co.cl.closedErr()
	}
	if cap(co.hdr)-len(co.hdr) < headerSize {
		// Headers live in pooled arena chunks: the chunk is referenced by
		// the iovec entries sliced from it and released with them, so a
		// steady-state flush cycle allocates nothing.
		co.hdr = GetFrameBuf(hdrChunkSize)[:0]
		co.owned = append(co.owned, co.hdr)
	}
	h := co.hdr[len(co.hdr) : len(co.hdr)+headerSize]
	co.hdr = co.hdr[:len(co.hdr)+headerSize]
	binary.BigEndian.PutUint32(h[:4], uint32(len(payload)))
	h[4] = byte(t)
	co.bufs = append(co.bufs, h)
	if len(payload) > 0 {
		co.bufs = append(co.bufs, payload)
	}
	if owned {
		co.owned = append(co.owned, payload)
	}
	co.queue += headerSize + len(payload)
	if waiter != nil {
		co.cl.pmu.Lock()
		co.cl.waiters = append(co.cl.waiters, *waiter)
		co.cl.pmu.Unlock()
	}
	co.cond.Broadcast()
	co.mu.Unlock()
	return nil
}

// flushLoop is the single writer: it swaps the pending queue out under the
// lock, writes it with one vectored write, releases the pooled buffers, and
// repeats. Frames enqueued during the unlocked write are picked up by the
// next cycle — that gap is exactly where coalescing happens.
func (co *coalescer) flushLoop() {
	defer close(co.done)
	var (
		bufs  net.Buffers
		owned [][]byte
	)
	co.mu.Lock()
	for {
		for len(co.bufs) == 0 && co.err == nil && !co.stopd {
			co.cond.Wait()
		}
		if co.err != nil || (co.stopd && len(co.bufs) == 0) {
			for _, b := range co.owned {
				PutFrameBuf(b)
			}
			co.bufs, co.owned, co.hdr, co.queue = nil, nil, nil, 0
			co.cond.Broadcast()
			co.mu.Unlock()
			return
		}
		bufs, co.bufs = co.bufs, bufs[:0]
		owned, co.owned = co.owned, owned[:0]
		co.hdr = nil
		co.queue = 0
		co.cond.Broadcast()
		co.mu.Unlock()

		nb := bufs // WriteTo consumes its receiver; keep bufs for capacity reuse
		_, err := nb.WriteTo(co.cl.c)
		for i := range owned {
			PutFrameBuf(owned[i])
			owned[i] = nil
		}
		if err != nil {
			co.cl.fail(err)
		}
		co.mu.Lock()
		if err != nil && co.err == nil {
			co.err = err
			co.cond.Broadcast()
		}
	}
}

// poison marks the coalescer dead and wakes the flusher and all blocked
// producers, without waiting. Called from Client.fail — possibly on the
// flusher's own goroutine, so it must not block on the flusher.
func (co *coalescer) poison(err error) {
	co.mu.Lock()
	if co.err == nil {
		co.err = err
	}
	co.cond.Broadcast()
	co.mu.Unlock()
}

// stop drains pending frames (when the connection is still healthy) and
// waits for the flusher to exit. Safe to call more than once.
func (co *coalescer) stop() {
	co.mu.Lock()
	co.stopd = true
	co.cond.Broadcast()
	co.mu.Unlock()
	<-co.done
}
