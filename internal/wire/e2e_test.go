package wire_test

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"gesturecep/internal/e2e"
	"gesturecep/internal/kinect"
	"gesturecep/internal/serve"
	"gesturecep/internal/stream"
	"gesturecep/internal/wire"
)

// End-to-end protocol suites over the shared internal/e2e harness (one
// in-process backend, no gateway — the single-node deployment).

// TestWireDifferential is the network twin of the serving determinism test:
// a session driven through the full wire loopback (client → gestured →
// Manager) must yield byte-identical detections to a bare-engine replay of
// the same frames.
func TestWireDifferential(t *testing.T) {
	frames := e2e.PlaybackFrames(t, 7)
	h := e2e.Start(t, e2e.Options{Serve: serve.Config{Shards: 4}})

	cl := h.Dial()
	// An odd batch size exercises partial final batches.
	rs, err := cl.Attach("user-1", wire.AttachOptions{BatchSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rs.Fields(), kinect.Schema().Len(); got != want {
		t.Fatalf("attach reports %d fields, want %d", got, want)
	}
	if err := rs.FeedFrames(frames); err != nil {
		t.Fatal(err)
	}
	counters, err := rs.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if counters.In != uint64(len(frames)) || counters.Out != counters.In || counters.Dropped != 0 {
		t.Errorf("counters = %+v, want in=out=%d dropped=0", counters, len(frames))
	}
	remote := rs.Detections()
	if len(remote) == 0 {
		t.Fatal("remote session detected nothing; expected at least one swipe_right")
	}

	// Reference: bare engine fed the identical post-transport tuples.
	plan, _ := h.Registry.Get("swipe_right")
	bare := e2e.BareReplay(t, plan, e2e.WireTuples(t, kinect.ToTuples(frames)))
	if !bytes.Equal(e2e.EncodeDets(t, remote), e2e.EncodeDets(t, bare)) {
		t.Errorf("wire detections diverge from bare engine:\nremote: %+v\nbare:   %+v", remote, bare)
	}

	if _, err := rs.Detach(); err != nil {
		t.Fatal(err)
	}
	if h.Manager(0).SessionCount() != 0 {
		t.Error("session still live after detach")
	}
}

// TestWire64Sessions drives 64 concurrent remote sessions over several
// connections and requires zero detection divergence from the bare-engine
// replay — the acceptance bar for the ingestion layer.
func TestWire64Sessions(t *testing.T) {
	frames := e2e.PlaybackFrames(t, 7)
	tuples := kinect.ToTuples(frames)
	h := e2e.Start(t, e2e.Options{Serve: serve.Config{Shards: 4, QueueDepth: 128}})

	plan, _ := h.Registry.Get("swipe_right")
	want := e2e.EncodeDets(t, e2e.BareReplay(t, plan, e2e.WireTuples(t, tuples)))

	const sessions, conns = 64, 4
	clients := make([]*wire.Client, conns)
	for i := range clients {
		clients[i] = h.Dial()
	}
	var wg sync.WaitGroup
	results := make([][]byte, sessions)
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, err := clients[i%conns].Attach(fmt.Sprintf("user-%02d", i), wire.AttachOptions{BatchSize: 16})
			if err != nil {
				errs <- err
				return
			}
			for _, tp := range tuples {
				if err := rs.FeedTuple(tp); err != nil {
					errs <- err
					return
				}
			}
			if _, err := rs.Flush(); err != nil {
				errs <- err
				return
			}
			results[i] = e2e.EncodeDets(t, rs.Detections())
			if _, err := rs.Detach(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if bytes.Equal(want, e2e.EncodeDets(t, nil)) {
		t.Fatal("bare replay detected nothing")
	}
	diverged := 0
	for i, got := range results {
		if !bytes.Equal(got, want) {
			diverged++
			t.Errorf("session %d diverged from bare replay", i)
		}
	}
	if diverged == 0 {
		mm := h.Manager(0).Metrics()
		if mm.Enqueued != uint64(sessions*len(tuples)) {
			t.Errorf("server enqueued %d tuples, want %d", mm.Enqueued, sessions*len(tuples))
		}
	}
}

// TestWireDropReporting verifies DropOldest drop counts propagate to the
// client: a single gated shard with a tiny queue must evict tuples, and the
// flush acknowledgement must carry the session's cumulative drop count.
func TestWireDropReporting(t *testing.T) {
	// Eight instantiations of a cheap always-false plan make per-tuple
	// processing slow enough that a depth-1 queue must drop under a burst.
	const neverQuery = `SELECT "never" MATCHING kinect_t(rHand_y > 100000);`
	plans := map[string]string{}
	for i := 0; i < 8; i++ {
		plans[fmt.Sprintf("never%d", i)] = neverQuery
	}
	h := e2e.Start(t, e2e.Options{
		Serve: serve.Config{Shards: 1, QueueDepth: 1, Policy: serve.DropOldest},
		Plans: plans,
	})

	cl := h.Dial()
	rs, err := cl.Attach("bursty", wire.AttachOptions{BatchSize: wire.MaxBatch})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.NoNoise(), 3)
	if err != nil {
		t.Fatal(err)
	}
	frames := sim.Idle(e2e.TestTime(), 10*time.Second)

	var counters wire.SessionCounters
	fed := uint64(0)
	for round := 0; round < 50 && counters.Dropped == 0; round++ {
		if err := rs.FeedFrames(frames); err != nil {
			t.Fatal(err)
		}
		fed += uint64(len(frames))
		if counters, err = rs.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if counters.Dropped == 0 {
		t.Fatal("no drops observed through a depth-1 DropOldest queue")
	}
	if counters.In != fed || counters.Out != counters.In {
		t.Errorf("counters = %+v, want in=out=%d", counters, fed)
	}
	if rs.Dropped() != counters.Dropped {
		t.Errorf("client cached drop count %d, flush reported %d", rs.Dropped(), counters.Dropped)
	}
}

// TestWireMetricsAndPing fetches a fleet metrics snapshot and a pong over
// the wire.
func TestWireMetricsAndPing(t *testing.T) {
	const neverQuery = `SELECT "never" MATCHING kinect_t(rHand_y > 100000);`
	h := e2e.Start(t, e2e.Options{Serve: serve.Config{Shards: 2}, Plans: map[string]string{"never": neverQuery}})
	cl := h.Dial()
	rs, err := cl.Attach("m", wire.AttachOptions{BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.NoNoise(), 3)
	if err != nil {
		t.Fatal(err)
	}
	frames := sim.Idle(e2e.TestTime(), time.Second)
	if err := rs.FeedFrames(frames); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Flush(); err != nil {
		t.Fatal(err)
	}
	mm, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if mm.Sessions != 1 || mm.Enqueued != uint64(len(frames)) || len(mm.Shards) != 2 {
		t.Errorf("metrics = %+v, want 1 session, %d enqueued, 2 shards", mm, len(frames))
	}
	pong, err := cl.Ping(7)
	if err != nil {
		t.Fatal(err)
	}
	if pong.Seq != 7 || pong.Name != "backend-0" || pong.Sessions != 1 {
		t.Errorf("pong = %+v, want seq=7 name=backend-0 sessions=1", pong)
	}
}

// TestWireRedial pins the recovery primitive: Redial must hand out a
// connection only after a ping round trip proves the server is serving —
// a dead address fails on connect, and a listener that accepts but never
// answers (a wedged process) fails on the ping timeout without leaking the
// connection's goroutines.
func TestWireRedial(t *testing.T) {
	t.Parallel()
	h := e2e.Start(t, e2e.Options{Serve: serve.Config{Shards: 1}})

	cl, err := wire.Redial(h.Addr(), time.Second)
	if err != nil {
		t.Fatalf("redial against a live server: %v", err)
	}
	if pong, err := cl.Ping(7); err != nil || pong.Seq != 7 {
		t.Fatalf("redialed connection unusable: %+v, %v", pong, err)
	}
	cl.Close()

	// A dead address: the listener is gone, so the dial itself fails.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	if _, err := wire.Redial(deadAddr, 250*time.Millisecond); err == nil {
		t.Fatal("redial against a closed listener succeeded")
	}

	// A wedged server: accepts the connection, never answers the ping.
	wedged, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer wedged.Close()
	var held []net.Conn
	var mu sync.Mutex
	go func() {
		for {
			c, err := wedged.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, c)
			mu.Unlock()
		}
	}()
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range held {
			c.Close()
		}
	}()
	start := time.Now()
	if _, err := wire.Redial(wedged.Addr().String(), 100*time.Millisecond); err == nil {
		t.Fatal("redial against a wedged server succeeded without a pong")
	} else if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("redial took %v to give up on a wedged server", elapsed)
	}
}

// TestWireProtocolErrors exercises the failure paths a remote client can
// trigger: duplicate session IDs, unknown plans, version mismatch, and
// batches for unknown handles.
func TestWireProtocolErrors(t *testing.T) {
	const neverQuery = `SELECT "never" MATCHING kinect_t(rHand_y > 100000);`
	h := e2e.Start(t, e2e.Options{Serve: serve.Config{Shards: 1}, Plans: map[string]string{"never": neverQuery}})
	addr := h.Addr()

	cl := h.Dial()
	if _, err := cl.Attach("dup", wire.AttachOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Attach("dup", wire.AttachOptions{}); err == nil {
		t.Error("duplicate session id accepted over the wire")
	} else if _, ok := err.(*wire.ErrorReply); !ok {
		t.Errorf("duplicate id error is %T, want *wire.ErrorReply", err)
	}
	if _, err := cl.Attach("ghost", wire.AttachOptions{Gestures: []string{"nosuch"}}); err == nil {
		t.Error("unknown plan accepted over the wire")
	}
	// Double detach is a session-scoped error, not a connection killer.
	rs, err := cl.Attach("twice", wire.AttachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Detach(); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Detach(); err == nil {
		t.Error("double detach succeeded")
	} else if _, ok := err.(*wire.ErrorReply); !ok {
		t.Errorf("double detach error is %T, want *wire.ErrorReply", err)
	}

	// The connection survives session-scoped errors.
	if _, err := cl.Metrics(); err != nil {
		t.Errorf("connection dead after session-scoped errors: %v", err)
	}

	// Version mismatch is connection-fatal.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	w := wire.NewWriter(raw)
	if err := w.WriteJSON(wire.FrameAttach, &wire.AttachRequest{Version: 99, ID: "v"}); err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(raw)
	f, err := r.Next()
	if err != nil || f.Type != wire.FrameError {
		t.Fatalf("version mismatch reply = %v/%v, want error frame", f.Type, err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("connection survived a version mismatch")
	}
	raw.Close()

	// A batch for a never-attached handle is connection-fatal too.
	raw2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	w2 := wire.NewWriter(raw2)
	payload, err := wire.AppendBatch(nil, 42, 3, []stream.Tuple{{Ts: e2e.TestTime(), Fields: []float64{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.WriteFrame(wire.FrameBatch, payload); err != nil {
		t.Fatal(err)
	}
	r2 := wire.NewReader(raw2)
	if f, err := r2.Next(); err != nil || f.Type != wire.FrameError {
		t.Fatalf("unknown-handle reply = %v/%v, want error frame", f.Type, err)
	}
	raw2.Close()
}
