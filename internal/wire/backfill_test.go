package wire_test

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/serve"
	"gesturecep/internal/wire"
)

// Backfill protocol tests: a stub BackfillSource stands in for the archive,
// so these pin the frame exchange itself — ordering, chunking, Missing
// reporting, error scoping — independent of store-layer behavior.

// startBackfillServer runs a wire server whose BackfillSource is the given
// stub; the manager is incidental (backfill never touches sessions).
func startBackfillServer(t *testing.T, source wire.BackfillFunc) string {
	t.Helper()
	mgr, err := serve.NewManager(serve.Config{Shards: 1}, serve.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(mgr)
	srv.BackfillSource = source
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		mgr.Close()
	})
	return ln.Addr().String()
}

// synthDets fabricates n distinguishable detections for a stream.
func synthDets(stream string, n int) []anduin.Detection {
	base := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
	dets := make([]anduin.Detection, n)
	for i := range dets {
		dets[i] = anduin.Detection{
			Gesture:  stream + "-swipe",
			QueryID:  i,
			Start:    base.Add(time.Duration(i) * time.Second),
			End:      base.Add(time.Duration(i)*time.Second + 100*time.Millisecond),
			Measures: []float64{float64(i), 0.5},
		}
	}
	return dets
}

// stubSource serves synthDets(stream, countOf[stream]) per stream, emitting
// in chunks of emitEvery; streams absent from countOf are unknown.
func stubSource(t *testing.T, countOf map[string]int, emitEvery int) wire.BackfillFunc {
	return func(stream string, gestures []string, since, until time.Time,
		emit func([]anduin.Detection) error) (uint64, uint64, error) {
		n, ok := countOf[stream]
		if !ok {
			return 0, 0, fmt.Errorf("no archive for %q: %w", stream, wire.ErrUnknownStream)
		}
		dets := synthDets(stream, n)
		for len(dets) > 0 {
			c := emitEvery
			if c > len(dets) {
				c = len(dets)
			}
			if err := emit(dets[:c]); err != nil {
				return 0, 0, err
			}
			dets = dets[c:]
		}
		return uint64(n/4 + 1), uint64(n), nil
	}
}

func dialBackfill(t *testing.T, addr string, coalesce bool) *wire.Client {
	t.Helper()
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if coalesce {
		cl.EnableCoalescing()
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestWireBackfill exercises the full request shape — multiple streams, an
// unknown stream mid-list, detections larger than one push frame — with and
// without write coalescing on the client.
func TestWireBackfill(t *testing.T) {
	counts := map[string]int{
		"alpha": 3,
		// > MaxDetections forces the server to chunk this stream across
		// several FrameBackfillDet frames.
		"bravo":   wire.MaxDetections + 37,
		"charlie": 1,
	}
	addr := startBackfillServer(t, stubSource(t, counts, 500))

	for _, coalesce := range []bool{false, true} {
		t.Run(fmt.Sprintf("coalesce=%v", coalesce), func(t *testing.T) {
			cl := dialBackfill(t, addr, coalesce)
			streams := []string{"alpha", "ghost", "bravo", "charlie"}
			got := make(map[int][]anduin.Detection)
			var order []int
			reply, err := cl.Backfill(wire.BackfillRequest{Streams: streams},
				func(idx int, dets []anduin.Detection) {
					if len(got[idx]) == 0 {
						order = append(order, idx)
					}
					got[idx] = append(got[idx], dets...)
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(reply.Missing) != 1 || reply.Missing[0] != 1 {
				t.Errorf("Missing = %v, want [1]", reply.Missing)
			}
			wantDets := uint64(counts["alpha"] + counts["bravo"] + counts["charlie"])
			if reply.Detections != wantDets {
				t.Errorf("reply.Detections = %d, want %d", reply.Detections, wantDets)
			}
			if reply.Tuples != wantDets || reply.Records == 0 {
				t.Errorf("reply counters = %+v", reply)
			}
			// Pushes arrive grouped per stream, in request order, unknown
			// stream skipped.
			if want := []int{0, 2, 3}; fmt.Sprint(order) != fmt.Sprint(want) {
				t.Errorf("stream delivery order = %v, want %v", order, want)
			}
			for i, name := range streams {
				if i == 1 {
					if len(got[i]) != 0 {
						t.Errorf("unknown stream %q delivered %d detections", name, len(got[i]))
					}
					continue
				}
				want := synthDets(name, counts[name])
				if len(got[i]) != len(want) {
					t.Fatalf("stream %q: %d detections, want %d", name, len(got[i]), len(want))
				}
				for j := range want {
					g, w := got[i][j], want[j]
					if g.Gesture != w.Gesture || g.QueryID != w.QueryID ||
						!g.Start.Equal(w.Start) || !g.End.Equal(w.End) ||
						len(g.Measures) != len(w.Measures) {
						t.Fatalf("stream %q detection %d = %+v, want %+v", name, j, g, w)
					}
				}
			}
		})
	}
}

// TestWireBackfillErrors pins failure scoping: no source configured and a
// source that fails mid-stream both abort the request with a FrameError, and
// the connection stays usable for ordinary control traffic afterwards.
func TestWireBackfillErrors(t *testing.T) {
	t.Run("no source", func(t *testing.T) {
		addr := startBackfillServer(t, nil)
		cl := dialBackfill(t, addr, false)
		_, err := cl.Backfill(wire.BackfillRequest{Streams: []string{"x"}}, nil)
		var er *wire.ErrorReply
		if !errors.As(err, &er) {
			t.Fatalf("backfill without a source: err = %v, want *wire.ErrorReply", err)
		}
		if _, err := cl.Ping(1); err != nil {
			t.Errorf("connection dead after refused backfill: %v", err)
		}
	})

	t.Run("source error mid-request", func(t *testing.T) {
		source := func(stream string, _ []string, _, _ time.Time,
			emit func([]anduin.Detection) error) (uint64, uint64, error) {
			if stream == "bad" {
				return 0, 0, errors.New("disk exploded")
			}
			if err := emit(synthDets(stream, 2)); err != nil {
				return 0, 0, err
			}
			return 1, 2, nil
		}
		addr := startBackfillServer(t, source)
		cl := dialBackfill(t, addr, false)
		var delivered int
		_, err := cl.Backfill(wire.BackfillRequest{Streams: []string{"ok", "bad", "never"}},
			func(int, []anduin.Detection) { delivered++ })
		var er *wire.ErrorReply
		if !errors.As(err, &er) || !strings.Contains(er.Msg, "disk exploded") {
			t.Fatalf("err = %v, want *wire.ErrorReply wrapping the source error", err)
		}
		if delivered != 1 {
			t.Errorf("delivered %d pushes before the abort, want 1 (stream \"ok\" only)", delivered)
		}
		if _, err := cl.Ping(2); err != nil {
			t.Errorf("connection dead after aborted backfill: %v", err)
		}
	})
}

// TestWireBackfillTimeBounds verifies Since/Until cross the wire intact and
// unset bounds arrive as zero times.
func TestWireBackfillTimeBounds(t *testing.T) {
	since := time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC)
	until := since.Add(time.Hour)
	var mu sync.Mutex
	var gotSince, gotUntil []time.Time
	source := func(_ string, _ []string, s, u time.Time,
		_ func([]anduin.Detection) error) (uint64, uint64, error) {
		mu.Lock()
		gotSince = append(gotSince, s)
		gotUntil = append(gotUntil, u)
		mu.Unlock()
		return 0, 0, nil
	}
	addr := startBackfillServer(t, source)
	cl := dialBackfill(t, addr, false)

	if _, err := cl.Backfill(wire.BackfillRequest{
		Streams: []string{"s"},
		SinceNs: since.UnixNano(),
		UntilNs: until.UnixNano(),
	}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Backfill(wire.BackfillRequest{Streams: []string{"s"}}, nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !gotSince[0].Equal(since) || !gotUntil[0].Equal(until) {
		t.Errorf("bounded call saw [%v, %v), want [%v, %v)", gotSince[0], gotUntil[0], since, until)
	}
	if !gotSince[1].IsZero() || !gotUntil[1].IsZero() {
		t.Errorf("unbounded call saw [%v, %v), want zero times", gotSince[1], gotUntil[1])
	}
}
