package kinect

import (
	"fmt"
	"sort"
	"time"

	"gesturecep/internal/geom"
)

// GestureSpec is the parametric definition of one gesture: per-joint control
// points of the movement path in the user-local reference frame (reference
// millimetres: torso at origin, X to the camera's right at yaw 0, Y up, Z
// away from the camera — a hand in front of the body has negative Z).
//
// The simulator interpolates a smooth trajectory through the control points
// over Duration; all joints not listed hold their rest pose (elbows follow
// their hand via analytic IK so the forearm length stays exact, which the
// §3.2 scale factor depends on).
type GestureSpec struct {
	Name     string
	Duration time.Duration
	Paths    map[Joint][]geom.Vec3
}

// Validate reports structural problems with the spec.
func (g GestureSpec) Validate() error {
	if g.Name == "" {
		return fmt.Errorf("kinect: gesture without a name")
	}
	if g.Duration <= 0 {
		return fmt.Errorf("kinect: gesture %q has non-positive duration", g.Name)
	}
	if len(g.Paths) == 0 {
		return fmt.Errorf("kinect: gesture %q has no joint paths", g.Name)
	}
	for j, pts := range g.Paths {
		if len(pts) < 2 {
			return fmt.Errorf("kinect: gesture %q path for %s needs >= 2 control points", g.Name, j)
		}
	}
	return nil
}

// PrimaryJoint returns the joint with the longest path — the joint whose
// movement defines the gesture (usually the right hand). Ties break by
// joint order.
func (g GestureSpec) PrimaryJoint() Joint {
	best := Joint(-1)
	bestLen := -1.0
	order := make([]Joint, 0, len(g.Paths))
	for j := range g.Paths {
		order = append(order, j)
	}
	sort.Slice(order, func(i, k int) bool { return order[i] < order[k] })
	for _, j := range order {
		l := geom.PathLength(g.Paths[j])
		if l > bestLen {
			best, bestLen = j, l
		}
	}
	return best
}

// Standard gesture names.
const (
	GestureSwipeRight   = "swipe_right"
	GestureSwipeLeft    = "swipe_left"
	GestureSwipeUp      = "swipe_up"
	GestureSwipeDown    = "swipe_down"
	GesturePush         = "push"
	GesturePull         = "pull"
	GestureCircle       = "circle"
	GestureWave         = "wave"
	GestureRaiseHand    = "raise_hand"
	GestureTwoHandSwipe = "two_hand_swipe"
)

// StandardGestures returns the built-in gesture library keyed by name. The
// set mirrors the paper's demos: swipes for OLAP/graph navigation ([1],[3]),
// circle (Fig. 2), wave as the record-control gesture and the two-hand
// swipe that finalizes learning (§3.1).
func StandardGestures() map[string]GestureSpec {
	reverse := func(pts []geom.Vec3) []geom.Vec3 {
		out := make([]geom.Vec3, len(pts))
		for i, p := range pts {
			out[len(pts)-1-i] = p
		}
		return out
	}

	swipeRightPath := []geom.Vec3{
		{X: 0, Y: 150, Z: -150},
		{X: 350, Y: 150, Z: -400},
		{X: 700, Y: 150, Z: -150},
	}
	swipeUpPath := []geom.Vec3{
		{X: 250, Y: -150, Z: -250},
		{X: 280, Y: 150, Z: -380},
		{X: 250, Y: 480, Z: -250},
	}
	pushPath := []geom.Vec3{
		{X: 200, Y: 150, Z: -120},
		{X: 200, Y: 160, Z: -480},
	}
	// An approximate circle in the frontal (XY) plane, drawn clockwise
	// starting at the top; loosely follows the five windows of Fig. 2.
	circlePath := []geom.Vec3{
		{X: 100, Y: 420, Z: -200},
		{X: 300, Y: 280, Z: -200},
		{X: 330, Y: 60, Z: -200},
		{X: 120, Y: -120, Z: -200},
		{X: -100, Y: -10, Z: -200},
		{X: -130, Y: 250, Z: -200},
		{X: 100, Y: 420, Z: -200},
	}
	// Wave: forearm oscillates left-right above the shoulder; the lateral
	// oscillation is what the pre-defined control query keys on.
	wavePath := []geom.Vec3{
		{X: 250, Y: 420, Z: -150},
		{X: 420, Y: 450, Z: -150},
		{X: 230, Y: 430, Z: -150},
		{X: 420, Y: 450, Z: -150},
		{X: 230, Y: 430, Z: -150},
		{X: 420, Y: 450, Z: -150},
	}
	raisePath := []geom.Vec3{
		{X: 240, Y: -210, Z: -60},
		{X: 260, Y: 150, Z: -200},
		{X: 250, Y: 520, Z: -120},
	}
	twoRight := []geom.Vec3{
		{X: 300, Y: 0, Z: -250},
		{X: 280, Y: 400, Z: -300},
	}
	twoLeft := []geom.Vec3{
		{X: -300, Y: 0, Z: -250},
		{X: -280, Y: 400, Z: -300},
	}

	specs := []GestureSpec{
		{Name: GestureSwipeRight, Duration: 800 * time.Millisecond,
			Paths: map[Joint][]geom.Vec3{RightHand: swipeRightPath}},
		{Name: GestureSwipeLeft, Duration: 800 * time.Millisecond,
			Paths: map[Joint][]geom.Vec3{RightHand: reverse(swipeRightPath)}},
		{Name: GestureSwipeUp, Duration: 800 * time.Millisecond,
			Paths: map[Joint][]geom.Vec3{RightHand: swipeUpPath}},
		{Name: GestureSwipeDown, Duration: 800 * time.Millisecond,
			Paths: map[Joint][]geom.Vec3{RightHand: reverse(swipeUpPath)}},
		{Name: GesturePush, Duration: 600 * time.Millisecond,
			Paths: map[Joint][]geom.Vec3{RightHand: pushPath}},
		{Name: GesturePull, Duration: 600 * time.Millisecond,
			Paths: map[Joint][]geom.Vec3{RightHand: reverse(pushPath)}},
		{Name: GestureCircle, Duration: 1600 * time.Millisecond,
			Paths: map[Joint][]geom.Vec3{RightHand: circlePath}},
		{Name: GestureWave, Duration: 1200 * time.Millisecond,
			Paths: map[Joint][]geom.Vec3{RightHand: wavePath}},
		{Name: GestureRaiseHand, Duration: 700 * time.Millisecond,
			Paths: map[Joint][]geom.Vec3{RightHand: raisePath}},
		{Name: GestureTwoHandSwipe, Duration: 800 * time.Millisecond,
			Paths: map[Joint][]geom.Vec3{RightHand: twoRight, LeftHand: twoLeft}},
	}

	out := make(map[string]GestureSpec, len(specs))
	for _, s := range specs {
		out[s.Name] = s
	}
	return out
}

// GestureNames returns the names of the standard library in sorted order.
func GestureNames() []string {
	specs := StandardGestures()
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DemoGestureNames returns the eight gestures the serving CLIs learn and
// drive, in their canonical demo order (the order the gestureserve,
// gestured and gestureload `-gestures N` prefix selects from). One shared
// list keeps the three binaries serving and driving the same gesture set.
func DemoGestureNames() []string {
	return []string{
		GestureSwipeRight, GestureSwipeLeft, GestureSwipeUp,
		GestureSwipeDown, GesturePush, GesturePull,
		GestureCircle, GestureRaiseHand,
	}
}
