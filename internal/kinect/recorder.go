package kinect

import (
	"fmt"
	"time"

	"gesturecep/internal/geom"
)

// RecorderConfig tunes the motion-detection segmentation of §3.1: after
// recording is armed (in the paper: by the wave control gesture), the user
// moves to the start pose and holds still; recording begins when stillness
// is observed for StillDuration and lasts until the user is still again at
// the end pose. "Everything in between is regarded as part of the gesture."
type RecorderConfig struct {
	// Joints to monitor for motion; empty means both hands.
	Joints []Joint
	// StillSpeed is the speed (mm/s) below which a monitored joint counts
	// as still.
	StillSpeed float64
	// StillDuration is how long all monitored joints must stay still to
	// arm/stop the recording.
	StillDuration time.Duration
	// MinGestureDuration discards recordings shorter than this (spurious
	// twitches).
	MinGestureDuration time.Duration
	// MaxGestureDuration aborts runaway recordings.
	MaxGestureDuration time.Duration
}

// DefaultRecorderConfig matches the simulator's hold periods.
func DefaultRecorderConfig() RecorderConfig {
	return RecorderConfig{
		Joints:             []Joint{LeftHand, RightHand},
		StillSpeed:         220, // mm/s; sensor jitter at 30 Hz stays well below
		StillDuration:      400 * time.Millisecond,
		MinGestureDuration: 200 * time.Millisecond,
		MaxGestureDuration: 10 * time.Second,
	}
}

// Validate reports configuration errors.
func (c RecorderConfig) Validate() error {
	if c.StillSpeed <= 0 {
		return fmt.Errorf("kinect: StillSpeed must be positive")
	}
	if c.StillDuration <= 0 {
		return fmt.Errorf("kinect: StillDuration must be positive")
	}
	if c.MinGestureDuration < 0 || c.MaxGestureDuration <= c.MinGestureDuration {
		return fmt.Errorf("kinect: invalid gesture duration bounds [%v, %v]",
			c.MinGestureDuration, c.MaxGestureDuration)
	}
	return nil
}

// recorderState is the segmentation state machine phase.
type recorderState int

const (
	// stateWaitStill: waiting for the user to settle at the start pose.
	stateWaitStill recorderState = iota
	// stateStill: user is still; recording starts at the next movement.
	stateStill
	// stateRecording: gesture in progress; ends at the next stillness.
	stateRecording
)

// speedWindow is the number of past frames the speed estimate spans.
// Differencing consecutive 30 Hz frames would amplify sensor jitter into
// hundreds of mm/s of apparent speed; a ~100 ms baseline low-passes the
// jitter while real gesture motion (>1 m/s mid-path) remains obvious.
const speedWindow = 5

// Recorder segments a frame stream into gesture samples following the §3.1
// protocol. Feed frames in order with Feed; completed samples are returned
// as they finish.
type Recorder struct {
	cfg   RecorderConfig
	state recorderState

	recent     []Frame // last speedWindow+1 frames, newest last
	stillSince time.Time
	hasStill   bool

	recStart time.Time
	buf      []Frame
	// moveFrames tracks sustained movement to avoid triggering on a single
	// noisy frame.
	moveFrames int
}

// NewRecorder validates the config and returns a recorder in the
// wait-for-stillness state.
func NewRecorder(cfg RecorderConfig) (*Recorder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Joints) == 0 {
		cfg.Joints = []Joint{LeftHand, RightHand}
	}
	return &Recorder{cfg: cfg}, nil
}

// State exposes the current phase for UI feedback ("hold still", "go",
// "recording…").
func (r *Recorder) State() string {
	switch r.state {
	case stateWaitStill:
		return "wait-still"
	case stateStill:
		return "armed"
	case stateRecording:
		return "recording"
	}
	return "unknown"
}

// speed returns the fastest monitored-joint speed between two frames in
// mm/s.
func (r *Recorder) speed(a, b Frame) float64 {
	dt := b.Ts.Sub(a.Ts).Seconds()
	if dt <= 0 {
		return 0
	}
	var worst float64
	for _, j := range r.cfg.Joints {
		v := b.Joints[j].Dist(a.Joints[j]) / dt
		if v > worst {
			worst = v
		}
	}
	return worst
}

// Feed advances the state machine with one frame and returns a completed
// gesture sample when one just finished (nil otherwise).
func (r *Recorder) Feed(f Frame) []Frame {
	r.recent = append(r.recent, f)
	if len(r.recent) > speedWindow+1 {
		r.recent = r.recent[1:]
	}
	if len(r.recent) == 1 {
		r.stillSince = f.Ts
		r.hasStill = true
		return nil
	}
	prev := r.recent[len(r.recent)-2]
	moving := r.speed(r.recent[0], f) > r.cfg.StillSpeed
	if moving {
		r.hasStill = false
		r.moveFrames++
	} else {
		if !r.hasStill {
			r.hasStill = true
			r.stillSince = f.Ts
		}
		r.moveFrames = 0
	}
	stillFor := time.Duration(0)
	if r.hasStill {
		stillFor = f.Ts.Sub(r.stillSince)
	}

	switch r.state {
	case stateWaitStill:
		if r.hasStill && stillFor >= r.cfg.StillDuration {
			r.state = stateStill
		}
		return nil

	case stateStill:
		// Require two consecutive moving frames so one jitter spike does
		// not start a recording.
		if r.moveFrames >= 2 {
			r.state = stateRecording
			r.recStart = prev.Ts
			r.buf = append(r.buf[:0], prev, f)
		}
		return nil

	case stateRecording:
		r.buf = append(r.buf, f)
		dur := f.Ts.Sub(r.recStart)
		if dur > r.cfg.MaxGestureDuration {
			// Runaway: drop and re-arm via stillness.
			r.state = stateWaitStill
			r.buf = nil
			return nil
		}
		if r.hasStill && stillFor >= r.cfg.StillDuration {
			// The gesture ended when stillness began; trim the trailing
			// still frames.
			var sample []Frame
			for _, bf := range r.buf {
				if bf.Ts.Before(r.stillSince) {
					sample = append(sample, bf)
				}
			}
			r.state = stateStill
			r.buf = nil
			if len(sample) > 1 && sample[len(sample)-1].Ts.Sub(sample[0].Ts) >= r.cfg.MinGestureDuration {
				return sample
			}
			return nil
		}
		return nil
	}
	return nil
}

// SegmentFrames runs a whole frame sequence through a fresh recorder and
// returns all completed samples.
func SegmentFrames(cfg RecorderConfig, frames []Frame) ([][]Frame, error) {
	r, err := NewRecorder(cfg)
	if err != nil {
		return nil, err
	}
	var out [][]Frame
	for _, f := range frames {
		if sample := r.Feed(f); sample != nil {
			out = append(out, sample)
		}
	}
	return out, nil
}

// PathCenter returns the centroid of a joint's positions over a sample —
// handy for recorder diagnostics.
func PathCenter(sample []Frame, j Joint) geom.Vec3 {
	pts := make([]geom.Vec3, len(sample))
	for i, f := range sample {
		pts[i] = f.Joints[j]
	}
	return geom.Centroid(pts)
}
