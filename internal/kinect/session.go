package kinect

import (
	"fmt"
	"time"
)

// ScriptItem is one step of a simulated session: either an idle period
// (Gesture == "") or a gesture performance.
type ScriptItem struct {
	Gesture string
	Idle    time.Duration
	Opts    PerformOpts
}

// TruthInterval is a ground-truth annotation: the named gesture's path was
// performed during [Start, End].
type TruthInterval struct {
	Name  string
	Start time.Time
	End   time.Time
}

// Session is a synthesized skeleton stream with ground-truth labels, the
// input to the detection evaluation harness.
type Session struct {
	Frames []Frame
	Truth  []TruthInterval
}

// Duration returns the time span covered by the session frames.
func (s Session) Duration() time.Duration {
	if len(s.Frames) == 0 {
		return 0
	}
	return s.Frames[len(s.Frames)-1].Ts.Sub(s.Frames[0].Ts) + FramePeriod
}

// RunScript synthesizes a full session from the script, using the standard
// gesture library extended (or overridden) by extra specs. Unknown gesture
// names fail.
func (s *Simulator) RunScript(script []ScriptItem, start time.Time, extra map[string]GestureSpec) (Session, error) {
	specs := StandardGestures()
	for n, sp := range extra {
		specs[n] = sp
	}
	var out Session
	ts := start
	for i, item := range script {
		if item.Idle > 0 {
			frames := s.Idle(ts, item.Idle)
			out.Frames = append(out.Frames, frames...)
			if len(frames) > 0 {
				ts = frames[len(frames)-1].Ts.Add(FramePeriod)
			}
		}
		if item.Gesture == "" {
			continue
		}
		spec, ok := specs[item.Gesture]
		if !ok {
			return Session{}, fmt.Errorf("kinect: script item %d references unknown gesture %q", i, item.Gesture)
		}
		perf, err := s.Perform(spec, ts, item.Opts)
		if err != nil {
			return Session{}, fmt.Errorf("kinect: script item %d: %w", i, err)
		}
		out.Frames = append(out.Frames, perf.Frames...)
		out.Truth = append(out.Truth, TruthInterval{Name: item.Gesture, Start: perf.PathStart, End: perf.PathEnd})
		if len(perf.Frames) > 0 {
			ts = perf.Frames[len(perf.Frames)-1].Ts.Add(FramePeriod)
		}
	}
	return out, nil
}

// Samples synthesizes n independent recordings of one gesture and returns
// just the path portion of each (what the §3.1 recorder would deliver to
// the learner). Each repetition uses fresh jitter so samples differ like
// real human repetitions.
func (s *Simulator) Samples(spec GestureSpec, n int, start time.Time, opts PerformOpts) ([][]Frame, error) {
	if n <= 0 {
		return nil, fmt.Errorf("kinect: sample count must be positive, got %d", n)
	}
	var out [][]Frame
	ts := start
	for i := 0; i < n; i++ {
		perf, err := s.Perform(spec, ts, opts)
		if err != nil {
			return nil, err
		}
		var path []Frame
		for _, f := range perf.Frames {
			if !f.Ts.Before(perf.PathStart) && !f.Ts.After(perf.PathEnd) {
				path = append(path, f)
			}
		}
		if len(path) == 0 {
			return nil, fmt.Errorf("kinect: performance %d produced an empty path", i)
		}
		out = append(out, path)
		ts = perf.Frames[len(perf.Frames)-1].Ts.Add(2 * time.Second)
	}
	return out, nil
}
