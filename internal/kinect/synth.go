package kinect

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gesturecep/internal/geom"
)

// NoiseModel configures sensor imperfections applied to every synthesized
// frame.
type NoiseModel struct {
	// Jitter is the standard deviation (mm) of Gaussian noise added to
	// every joint coordinate. Real Kinect skeletons jitter by a few mm.
	Jitter float64
	// DropoutProb is the probability that the tracker misses a frame and
	// repeats the previous skeleton (a common OpenNI failure mode).
	DropoutProb float64
}

// DefaultNoise approximates a well-lit Kinect setup.
func DefaultNoise() NoiseModel { return NoiseModel{Jitter: 4, DropoutProb: 0.01} }

// NoNoise disables all sensor imperfections (useful for deterministic
// unit tests).
func NoNoise() NoiseModel { return NoiseModel{} }

// Validate reports configuration errors.
func (n NoiseModel) Validate() error {
	if n.Jitter < 0 {
		return fmt.Errorf("kinect: negative jitter %g", n.Jitter)
	}
	if n.DropoutProb < 0 || n.DropoutProb >= 1 {
		return fmt.Errorf("kinect: dropout probability %g outside [0, 1)", n.DropoutProb)
	}
	return nil
}

// PerformOpts vary one gesture performance, producing the natural
// sample-to-sample differences the window-merging step must absorb
// (§3.3.2).
type PerformOpts struct {
	// Speed scales playback: 1 performs in the spec duration, 0.5 takes
	// twice as long. Defaults to 1.
	Speed float64
	// PathJitter perturbs each control point by a uniform offset up to
	// this magnitude (mm), making repetitions differ like human motion.
	PathJitter float64
	// HoldStart / HoldEnd are stillness periods at the start and end pose,
	// which the §3.1 recorder keys on. Both default to 600 ms.
	HoldStart, HoldEnd time.Duration
}

func (o PerformOpts) withDefaults() PerformOpts {
	if o.Speed == 0 {
		o.Speed = 1
	}
	if o.HoldStart == 0 {
		o.HoldStart = 600 * time.Millisecond
	}
	if o.HoldEnd == 0 {
		o.HoldEnd = 600 * time.Millisecond
	}
	return o
}

// Validate reports option errors.
func (o PerformOpts) Validate() error {
	if o.Speed < 0 {
		return fmt.Errorf("kinect: negative speed %g", o.Speed)
	}
	if o.PathJitter < 0 {
		return fmt.Errorf("kinect: negative path jitter %g", o.PathJitter)
	}
	if o.HoldStart < 0 || o.HoldEnd < 0 {
		return fmt.Errorf("kinect: negative hold duration")
	}
	return nil
}

// Performance is one synthesized gesture execution: the frame sequence
// (approach → hold → path → hold) plus the ground-truth interval of the
// actual gesture path, which the evaluation harness scores detections
// against.
type Performance struct {
	Frames    []Frame
	PathStart time.Time
	PathEnd   time.Time
}

// Simulator synthesizes skeleton streams for one user. It is deterministic
// for a given seed.
type Simulator struct {
	profile Profile
	noise   NoiseModel
	rng     *rand.Rand
	seq     uint64
	last    *Frame // previous emitted frame, for dropout repetition
}

// NewSimulator validates the configuration and returns a simulator.
func NewSimulator(profile Profile, noise NoiseModel, seed int64) (*Simulator, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if err := noise.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{
		profile: profile,
		noise:   noise,
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// Profile returns the simulated user.
func (s *Simulator) Profile() Profile { return s.profile }

// RestLocal returns the user-local rest position of joint j in reference
// millimetres.
func RestLocal(j Joint) geom.Vec3 { return restPose()[j] }

// frameAt assembles a camera-frame skeleton for the given user-local joint
// overrides, applying IK for elbows of moved hands, then noise.
func (s *Simulator) frameAt(ts time.Time, overrides map[Joint]geom.Vec3) Frame {
	local := restPose()
	for j, p := range overrides {
		local[j] = p
	}
	// Elbows are always IK-derived from the hand targets so that
	// dist(elbow, hand) — the §3.2 scale factor — is exactly the forearm
	// length in every frame, moving or at rest.
	local[RightElbow], local[RightHand] = solveElbow(local[RightShoulder], local[RightHand])
	local[LeftElbow], local[LeftHand] = solveElbow(local[LeftShoulder], local[LeftHand])

	var f Frame
	f.Ts = ts
	f.Seq = s.seq
	s.seq++
	for j := 0; j < NumJoints; j++ {
		f.Joints[j] = s.profile.LocalToCamera(local[j])
	}

	// Sensor dropout: repeat the previous skeleton (timestamps advance).
	if s.last != nil && s.noise.DropoutProb > 0 && s.rng.Float64() < s.noise.DropoutProb {
		f.Joints = s.last.Joints
	} else if s.noise.Jitter > 0 {
		for j := 0; j < NumJoints; j++ {
			f.Joints[j] = f.Joints[j].Add(geom.V(
				s.rng.NormFloat64()*s.noise.Jitter,
				s.rng.NormFloat64()*s.noise.Jitter,
				s.rng.NormFloat64()*s.noise.Jitter,
			))
		}
	}
	s.last = &f
	return f
}

// referenceArm are the reference-user arm segment lengths (mm) used for the
// analytic elbow IK, consistent with restPose and Profile proportions.
const (
	refUpperArm = 280.0
	refForearm  = ReferenceForearm
)

// solveElbow places the elbow for a given shoulder and desired hand target
// using two-bone IK with a downward pole vector (human elbows hang down).
// If the target is out of reach the hand is clamped to the reachable
// sphere. It returns (elbow, actualHand); forearm length is exact by
// construction.
func solveElbow(shoulder, hand geom.Vec3) (geom.Vec3, geom.Vec3) {
	a, f := refUpperArm, refForearm
	dir := hand.Sub(shoulder)
	d := dir.Norm()
	min, max := math.Abs(a-f)+1, a+f-1
	if d < min {
		d = min
	} else if d > max {
		d = max
	}
	if dir.IsZero() {
		dir = geom.V(0, -1, 0)
	}
	u := dir.Unit()
	target := shoulder.Add(u.Scale(d))
	// Distance from shoulder to the elbow's projection on the
	// shoulder→hand axis.
	d1 := (a*a - f*f + d*d) / (2 * d)
	h2 := a*a - d1*d1
	if h2 < 0 {
		h2 = 0
	}
	h := math.Sqrt(h2)
	// Pole vector: elbow bends downward; fall back to backwards (+Z) when
	// the arm itself points straight down.
	pole := geom.V(0, -1, 0)
	perp := pole.Sub(u.Scale(pole.Dot(u)))
	if perp.Norm() < 1e-6 {
		pole = geom.V(0, 0, 1)
		perp = pole.Sub(u.Scale(pole.Dot(u)))
	}
	elbow := shoulder.Add(u.Scale(d1)).Add(perp.Unit().Scale(h))
	return elbow, target
}

// catmullRom evaluates the centripetal-flavoured Catmull-Rom spline through
// the control points at global parameter t in [0, 1] with uniform knot
// spacing, clamping the ends.
func catmullRom(pts []geom.Vec3, t float64) geom.Vec3 {
	n := len(pts)
	if n == 1 {
		return pts[0]
	}
	if t <= 0 {
		return pts[0]
	}
	if t >= 1 {
		return pts[n-1]
	}
	seg := t * float64(n-1)
	i := int(seg)
	if i >= n-1 {
		i = n - 2
	}
	u := seg - float64(i)
	p1, p2 := pts[i], pts[i+1]
	p0 := p1
	if i > 0 {
		p0 = pts[i-1]
	}
	p3 := p2
	if i+2 < n {
		p3 = pts[i+2]
	}
	u2, u3 := u*u, u*u*u
	w0 := -0.5*u3 + u2 - 0.5*u
	w1 := 1.5*u3 - 2.5*u2 + 1
	w2 := -1.5*u3 + 2*u2 + 0.5*u
	w3 := 0.5*u3 - 0.5*u2
	return p0.Scale(w0).Add(p1.Scale(w1)).Add(p2.Scale(w2)).Add(p3.Scale(w3))
}

// smoothstep eases the global path parameter so motion accelerates from the
// start pose and decelerates into the end pose.
func smoothstep(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t >= 1 {
		return 1
	}
	return t * t * (3 - 2*t)
}

// Perform synthesizes one execution of the gesture: the moved joints travel
// from their rest position to the path start (approach), hold still
// (HoldStart), traverse the control-point path over Duration/Speed, then
// hold the end pose (HoldEnd). The returned Performance records the
// ground-truth path interval.
func (s *Simulator) Perform(spec GestureSpec, start time.Time, opts PerformOpts) (Performance, error) {
	if err := spec.Validate(); err != nil {
		return Performance{}, err
	}
	if err := opts.Validate(); err != nil {
		return Performance{}, err
	}
	opts = opts.withDefaults()

	// Perturb control points per performance for natural variation.
	paths := make(map[Joint][]geom.Vec3, len(spec.Paths))
	for j, pts := range spec.Paths {
		cp := make([]geom.Vec3, len(pts))
		for i, p := range pts {
			if opts.PathJitter > 0 {
				p = p.Add(geom.V(
					(s.rng.Float64()*2-1)*opts.PathJitter,
					(s.rng.Float64()*2-1)*opts.PathJitter,
					(s.rng.Float64()*2-1)*opts.PathJitter,
				))
			}
			cp[i] = p
		}
		paths[j] = cp
	}

	var frames []Frame
	ts := start
	emit := func(overrides map[Joint]geom.Vec3) {
		frames = append(frames, s.frameAt(ts, overrides))
		ts = ts.Add(FramePeriod)
	}
	frameCount := func(d time.Duration) int {
		n := int(d / FramePeriod)
		if n < 1 {
			n = 1
		}
		return n
	}

	// Approach: interpolate each moved joint from rest to its path start.
	const approach = 500 * time.Millisecond
	nApproach := frameCount(approach)
	for i := 0; i < nApproach; i++ {
		u := smoothstep(float64(i+1) / float64(nApproach))
		ov := make(map[Joint]geom.Vec3, len(paths))
		for j, cp := range paths {
			ov[j] = RestLocal(j).Lerp(cp[0], u)
		}
		emit(ov)
	}

	// Hold the start pose.
	startPose := make(map[Joint]geom.Vec3, len(paths))
	for j, cp := range paths {
		startPose[j] = cp[0]
	}
	for i := 0; i < frameCount(opts.HoldStart); i++ {
		emit(startPose)
	}

	// Traverse the path.
	pathStart := ts
	dur := time.Duration(float64(spec.Duration) / opts.Speed)
	nPath := frameCount(dur)
	for i := 0; i < nPath; i++ {
		u := smoothstep(float64(i+1) / float64(nPath))
		ov := make(map[Joint]geom.Vec3, len(paths))
		for j, cp := range paths {
			ov[j] = catmullRom(cp, u)
		}
		emit(ov)
	}
	pathEnd := ts.Add(-FramePeriod)

	// Hold the end pose.
	endPose := make(map[Joint]geom.Vec3, len(paths))
	for j, cp := range paths {
		endPose[j] = cp[len(cp)-1]
	}
	for i := 0; i < frameCount(opts.HoldEnd); i++ {
		emit(endPose)
	}

	return Performance{Frames: frames, PathStart: pathStart, PathEnd: pathEnd}, nil
}

// Idle synthesizes d worth of rest-pose frames (with sensor noise).
func (s *Simulator) Idle(start time.Time, d time.Duration) []Frame {
	n := int(d / FramePeriod)
	frames := make([]Frame, 0, n)
	ts := start
	for i := 0; i < n; i++ {
		frames = append(frames, s.frameAt(ts, nil))
		ts = ts.Add(FramePeriod)
	}
	return frames
}
