package kinect

import (
	"fmt"

	"gesturecep/internal/geom"
	"gesturecep/internal/stream"
)

// Schema returns the tuple schema of the raw kinect stream: three attributes
// per joint, named <joint>_x, <joint>_y, <joint>_z in joint order — the flat
// layout sketched at the right of the paper's Fig. 1.
func Schema() *stream.Schema {
	fields := make([]string, 0, NumJoints*3)
	for j := 0; j < NumJoints; j++ {
		n := jointNames[j]
		fields = append(fields, n+"_x", n+"_y", n+"_z")
	}
	return stream.MustSchema(fields...)
}

// FieldIndex returns the tuple index of the given joint coordinate
// (coord 0 = x, 1 = y, 2 = z).
func FieldIndex(j Joint, coord int) int {
	if j < 0 || int(j) >= NumJoints || coord < 0 || coord > 2 {
		panic(fmt.Sprintf("kinect: invalid joint/coord %d/%d", j, coord))
	}
	return int(j)*3 + coord
}

// FieldName returns the attribute name of the given joint coordinate, e.g.
// FieldName(RightHand, 0) == "rHand_x".
func FieldName(j Joint, coord int) string {
	suffix := [3]string{"_x", "_y", "_z"}
	if j < 0 || int(j) >= NumJoints || coord < 0 || coord > 2 {
		panic(fmt.Sprintf("kinect: invalid joint/coord %d/%d", j, coord))
	}
	return jointNames[j] + suffix[coord]
}

// ToTuple flattens a frame into a stream tuple under Schema().
func ToTuple(f Frame) stream.Tuple {
	fields := make([]float64, NumJoints*3)
	for j := 0; j < NumJoints; j++ {
		p := f.Joints[j]
		fields[j*3+0] = p.X
		fields[j*3+1] = p.Y
		fields[j*3+2] = p.Z
	}
	return stream.Tuple{Ts: f.Ts, Seq: f.Seq, Fields: fields}
}

// FromTuple reassembles a frame from a tuple produced by ToTuple.
func FromTuple(t stream.Tuple) (Frame, error) {
	if len(t.Fields) != NumJoints*3 {
		return Frame{}, fmt.Errorf("kinect: tuple has %d fields, want %d", len(t.Fields), NumJoints*3)
	}
	f := Frame{Ts: t.Ts, Seq: t.Seq}
	for j := 0; j < NumJoints; j++ {
		f.Joints[j] = geom.V(t.Fields[j*3], t.Fields[j*3+1], t.Fields[j*3+2])
	}
	return f, nil
}

// ToTuples converts a frame sequence to tuples.
func ToTuples(frames []Frame) []stream.Tuple {
	out := make([]stream.Tuple, len(frames))
	for i, f := range frames {
		out[i] = ToTuple(f)
	}
	return out
}
