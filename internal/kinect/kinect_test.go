package kinect

import (
	"math"
	"testing"
	"time"

	"gesturecep/internal/geom"
)

func t0() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

func newSim(t *testing.T, p Profile, n NoiseModel) *Simulator {
	t.Helper()
	s, err := NewSimulator(p, n, 42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestJointNames(t *testing.T) {
	if Torso.String() != "torso" || RightHand.String() != "rHand" {
		t.Errorf("joint names: %s, %s", Torso, RightHand)
	}
	if Joint(99).String() == "" {
		t.Error("out-of-range joint should render")
	}
	j, ok := JointByName("rElbow")
	if !ok || j != RightElbow {
		t.Errorf("JointByName(rElbow) = %v, %v", j, ok)
	}
	if _, ok := JointByName("nope"); ok {
		t.Error("unknown joint resolved")
	}
	if len(AllJoints()) != NumJoints {
		t.Error("AllJoints wrong length")
	}
}

func TestSchemaLayout(t *testing.T) {
	s := Schema()
	if s.Len() != NumJoints*3 {
		t.Fatalf("schema has %d fields", s.Len())
	}
	idx, ok := s.Index("rHand_x")
	if !ok {
		t.Fatal("rHand_x missing")
	}
	if idx != FieldIndex(RightHand, 0) {
		t.Errorf("rHand_x at %d, FieldIndex says %d", idx, FieldIndex(RightHand, 0))
	}
	if FieldName(Torso, 2) != "torso_z" {
		t.Errorf("FieldName = %s", FieldName(Torso, 2))
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid FieldIndex should panic")
		}
	}()
	FieldIndex(Joint(99), 0)
}

func TestTupleRoundTrip(t *testing.T) {
	var f Frame
	f.Ts = t0()
	f.Seq = 7
	for j := 0; j < NumJoints; j++ {
		f.Joints[j] = geom.V(float64(j), float64(j)+0.5, -float64(j))
	}
	tup := ToTuple(f)
	got, err := FromTuple(tup)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ts != f.Ts || got.Seq != f.Seq {
		t.Error("metadata lost")
	}
	for j := 0; j < NumJoints; j++ {
		if got.Joints[j] != f.Joints[j] {
			t.Errorf("joint %d: %v != %v", j, got.Joints[j], f.Joints[j])
		}
	}
	if _, err := FromTuple(ToTuples([]Frame{f})[0]); err != nil {
		t.Error(err)
	}
	bad := tup
	bad.Fields = bad.Fields[:3]
	if _, err := FromTuple(bad); err == nil {
		t.Error("short tuple accepted")
	}
}

func TestProfileValidate(t *testing.T) {
	good := DefaultProfile()
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := good
	bad.Height = 100
	if err := bad.Validate(); err == nil {
		t.Error("tiny height accepted")
	}
	bad = good
	bad.Position.Z = 100
	if err := bad.Validate(); err == nil {
		t.Error("too-close user accepted")
	}
	bad = good
	bad.Yaw = 10
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range yaw accepted")
	}
	for _, p := range []Profile{DefaultProfile(), ChildProfile(), TallProfile()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestLocalCameraRoundTrip(t *testing.T) {
	for _, p := range []Profile{DefaultProfile(), ChildProfile(), TallProfile()} {
		pts := []geom.Vec3{{}, {X: 100, Y: 200, Z: -300}, {X: -50, Y: 0, Z: 10}}
		for _, local := range pts {
			cam := p.LocalToCamera(local)
			back := p.CameraToLocal(cam)
			if !back.ApproxEqual(local, 1e-9) {
				t.Errorf("%s: round trip %v -> %v", p.Name, local, back)
			}
		}
		// Torso maps to the profile position.
		if !p.LocalToCamera(geom.Vec3{}).ApproxEqual(p.Position, 1e-9) {
			t.Errorf("%s: torso not at position", p.Name)
		}
	}
}

func TestScaleFactorAndForearm(t *testing.T) {
	p := DefaultProfile()
	if p.ScaleFactor() != 1 || p.Forearm() != ReferenceForearm {
		t.Error("default profile should be the reference scale")
	}
	c := ChildProfile()
	if c.Forearm() >= p.Forearm() {
		t.Error("child forearm should be shorter")
	}
}

func TestStandardGesturesValid(t *testing.T) {
	specs := StandardGestures()
	if len(specs) != 10 {
		t.Errorf("standard library has %d gestures", len(specs))
	}
	for name, spec := range specs {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if spec.Name != name {
			t.Errorf("map key %q != spec name %q", name, spec.Name)
		}
	}
	if len(GestureNames()) != len(specs) {
		t.Error("GestureNames length mismatch")
	}
	// Primary joint of the two-hand swipe is deterministic.
	two := specs[GestureTwoHandSwipe]
	pj := two.PrimaryJoint()
	if pj != LeftHand && pj != RightHand {
		t.Errorf("two-hand primary joint = %v", pj)
	}
}

func TestGestureSpecValidate(t *testing.T) {
	bad := []GestureSpec{
		{},
		{Name: "g"},
		{Name: "g", Duration: time.Second},
		{Name: "g", Duration: time.Second, Paths: map[Joint][]geom.Vec3{RightHand: {{X: 1}}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestPerformShape(t *testing.T) {
	sim := newSim(t, DefaultProfile(), NoNoise())
	spec := StandardGestures()[GestureSwipeRight]
	perf, err := sim.Perform(spec, t0(), PerformOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(perf.Frames) == 0 {
		t.Fatal("no frames")
	}
	if !perf.PathStart.Before(perf.PathEnd) {
		t.Error("path interval inverted")
	}
	// Frames are 30 Hz spaced and ordered.
	for i := 1; i < len(perf.Frames); i++ {
		if gap := perf.Frames[i].Ts.Sub(perf.Frames[i-1].Ts); gap != FramePeriod {
			t.Fatalf("frame %d gap = %v", i, gap)
		}
	}
	// The hand starts near rest, ends near the final control point.
	p := DefaultProfile()
	first := perf.Frames[0].Pos(RightHand)
	wantFirst := p.LocalToCamera(RestLocal(RightHand))
	if first.Dist(wantFirst) > 80 {
		t.Errorf("first hand pos %v far from rest %v", first, wantFirst)
	}
	last := perf.Frames[len(perf.Frames)-1].Pos(RightHand)
	wantLast := p.LocalToCamera(spec.Paths[RightHand][2])
	if last.Dist(wantLast) > 80 {
		t.Errorf("final hand pos %v far from end control point %v", last, wantLast)
	}
}

func TestPerformForearmConstant(t *testing.T) {
	// The §3.2 scale factor depends on dist(elbow, hand) staying constant
	// while the hand moves; the IK must guarantee it.
	for _, prof := range []Profile{DefaultProfile(), ChildProfile(), TallProfile()} {
		sim := newSim(t, prof, NoNoise())
		perf, err := sim.Perform(StandardGestures()[GestureCircle], t0(), PerformOpts{})
		if err != nil {
			t.Fatal(err)
		}
		want := prof.Forearm()
		for i, f := range perf.Frames {
			got := f.Pos(RightElbow).Dist(f.Pos(RightHand))
			if math.Abs(got-want) > 1.5 {
				t.Fatalf("%s frame %d: forearm %.2f, want %.2f", prof.Name, i, got, want)
				break
			}
		}
	}
}

func TestPerformSpeedAndJitterOptions(t *testing.T) {
	sim := newSim(t, DefaultProfile(), NoNoise())
	spec := StandardGestures()[GesturePush]
	slow, err := sim.Perform(spec, t0(), PerformOpts{Speed: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := sim.Perform(spec, t0(), PerformOpts{Speed: 2})
	if err != nil {
		t.Fatal(err)
	}
	slowDur := slow.PathEnd.Sub(slow.PathStart)
	fastDur := fast.PathEnd.Sub(fast.PathStart)
	if slowDur <= fastDur*2 {
		t.Errorf("slow path %v not ~4x fast path %v", slowDur, fastDur)
	}
	// Jittered repetitions differ.
	a, _ := sim.Perform(spec, t0(), PerformOpts{PathJitter: 30})
	b, _ := sim.Perform(spec, t0(), PerformOpts{PathJitter: 30})
	if a.Frames[len(a.Frames)-1].Pos(RightHand) == b.Frames[len(b.Frames)-1].Pos(RightHand) {
		t.Error("path jitter produced identical end poses")
	}
	// Invalid options rejected.
	if _, err := sim.Perform(spec, t0(), PerformOpts{Speed: -1}); err == nil {
		t.Error("negative speed accepted")
	}
	if _, err := sim.Perform(spec, t0(), PerformOpts{PathJitter: -1}); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestNoiseModelValidate(t *testing.T) {
	if err := DefaultNoise().Validate(); err != nil {
		t.Error(err)
	}
	if err := (NoiseModel{Jitter: -1}).Validate(); err == nil {
		t.Error("negative jitter accepted")
	}
	if err := (NoiseModel{DropoutProb: 1}).Validate(); err == nil {
		t.Error("dropout prob 1 accepted")
	}
	if _, err := NewSimulator(DefaultProfile(), NoiseModel{Jitter: -1}, 1); err == nil {
		t.Error("NewSimulator accepted bad noise")
	}
	if _, err := NewSimulator(Profile{Height: 1}, NoNoise(), 1); err == nil {
		t.Error("NewSimulator accepted bad profile")
	}
}

func TestSimulatorDeterminism(t *testing.T) {
	mk := func() []Frame {
		sim, _ := NewSimulator(DefaultProfile(), DefaultNoise(), 1234)
		perf, _ := sim.Perform(StandardGestures()[GestureSwipeRight], t0(), PerformOpts{PathJitter: 20})
		return perf.Frames
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].Joints != b[i].Joints {
			t.Fatalf("frame %d differs despite identical seed", i)
		}
	}
}

func TestIdle(t *testing.T) {
	sim := newSim(t, DefaultProfile(), NoNoise())
	frames := sim.Idle(t0(), time.Second)
	if len(frames) != FrameRate {
		t.Errorf("idle frames = %d, want %d", len(frames), FrameRate)
	}
	// Hands stay at rest.
	rest := DefaultProfile().LocalToCamera(RestLocal(RightHand))
	for _, f := range frames {
		if f.Pos(RightHand).Dist(rest) > 1 {
			t.Error("idle hand moved")
		}
	}
}

func TestRunScript(t *testing.T) {
	sim := newSim(t, DefaultProfile(), DefaultNoise())
	sess, err := sim.RunScript([]ScriptItem{
		{Idle: time.Second},
		{Gesture: GestureSwipeRight},
		{Idle: 500 * time.Millisecond},
		{Gesture: GesturePush},
	}, t0(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Truth) != 2 {
		t.Fatalf("truth intervals = %d", len(sess.Truth))
	}
	if sess.Truth[0].Name != GestureSwipeRight || sess.Truth[1].Name != GesturePush {
		t.Error("truth names wrong")
	}
	// Timestamps strictly increase across the whole session.
	for i := 1; i < len(sess.Frames); i++ {
		if !sess.Frames[i].Ts.After(sess.Frames[i-1].Ts) {
			t.Fatalf("timestamps not increasing at %d", i)
		}
	}
	if sess.Duration() <= 0 {
		t.Error("non-positive session duration")
	}
	if _, err := sim.RunScript([]ScriptItem{{Gesture: "nope"}}, t0(), nil); err == nil {
		t.Error("unknown gesture accepted")
	}
	// Extra specs override.
	custom := GestureSpec{Name: "custom", Duration: 500 * time.Millisecond,
		Paths: map[Joint][]geom.Vec3{RightHand: {{X: 0, Y: 0, Z: -100}, {X: 100, Y: 0, Z: -100}}}}
	if _, err := sim.RunScript([]ScriptItem{{Gesture: "custom"}}, t0(), map[string]GestureSpec{"custom": custom}); err != nil {
		t.Error(err)
	}
}

func TestSamples(t *testing.T) {
	sim := newSim(t, DefaultProfile(), DefaultNoise())
	samples, err := sim.Samples(StandardGestures()[GestureSwipeRight], 3, t0(), PerformOpts{PathJitter: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("samples = %d", len(samples))
	}
	for i, s := range samples {
		if len(s) < 10 {
			t.Errorf("sample %d too short: %d frames", i, len(s))
		}
	}
	if _, err := sim.Samples(StandardGestures()[GestureSwipeRight], 0, t0(), PerformOpts{}); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestRecorderSegmentsGesture(t *testing.T) {
	sim := newSim(t, DefaultProfile(), DefaultNoise())
	sess, err := sim.RunScript([]ScriptItem{
		{Idle: time.Second},
		{Gesture: GestureSwipeRight},
		{Idle: time.Second},
		{Gesture: GestureCircle},
		{Idle: time.Second},
	}, t0(), nil)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := SegmentFrames(DefaultRecorderConfig(), sess.Frames)
	if err != nil {
		t.Fatal(err)
	}
	// The recorder should find one segment per performed gesture. The
	// approach movement and path may merge or split into approach+path;
	// accept 2-4 segments but require that each truth interval is covered
	// by some segment.
	if len(samples) < 2 {
		t.Fatalf("recorder found %d segments, want >= 2", len(samples))
	}
	for _, truth := range sess.Truth {
		covered := false
		for _, seg := range samples {
			if len(seg) == 0 {
				continue
			}
			s, e := seg[0].Ts, seg[len(seg)-1].Ts
			if !s.After(truth.Start.Add(300*time.Millisecond)) && !e.Before(truth.End.Add(-300*time.Millisecond)) {
				covered = true
			}
		}
		if !covered {
			t.Errorf("truth interval %s [%v..%v] not covered by any segment",
				truth.Name, truth.Start, truth.End)
		}
	}
}

func TestRecorderIgnoresIdle(t *testing.T) {
	sim := newSim(t, DefaultProfile(), DefaultNoise())
	frames := sim.Idle(t0(), 5*time.Second)
	samples, err := SegmentFrames(DefaultRecorderConfig(), frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 0 {
		t.Errorf("recorder produced %d samples from pure idle", len(samples))
	}
}

func TestRecorderConfigValidate(t *testing.T) {
	bad := []RecorderConfig{
		{StillSpeed: 0, StillDuration: time.Second, MaxGestureDuration: time.Second},
		{StillSpeed: 10, StillDuration: 0, MaxGestureDuration: time.Second},
		{StillSpeed: 10, StillDuration: time.Second, MinGestureDuration: 2 * time.Second, MaxGestureDuration: time.Second},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := NewRecorder(RecorderConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	r, err := NewRecorder(DefaultRecorderConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.State() != "wait-still" {
		t.Errorf("initial state = %s", r.State())
	}
}

func TestPathCenter(t *testing.T) {
	sim := newSim(t, DefaultProfile(), NoNoise())
	frames := sim.Idle(t0(), time.Second)
	c := PathCenter(frames, Torso)
	if c.Dist(DefaultProfile().Position) > 1 {
		t.Errorf("idle torso center = %v", c)
	}
}
