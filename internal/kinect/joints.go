// Package kinect simulates the sensor substrate of the paper: a Microsoft
// Kinect camera with OpenNI-style skeleton tracking delivering a 30 Hz
// stream of joint positions (millimetres, camera coordinate frame).
//
// The simulator is deterministic (seeded) and parametric: user anthropometry
// (height, forearm length), stand-off position and facing direction, sensor
// jitter and dropout are all configurable, which is exactly what the
// evaluation harness varies to probe the position/scale invariance claims of
// §3.2. A motion-detection recorder reproduces the sample capture protocol
// of §3.1 (recording starts after the user holds the start pose and stops at
// the end pose).
package kinect

import (
	"fmt"
	"time"

	"gesturecep/internal/geom"
)

// Joint identifies one tracked skeleton joint. The set matches OpenNI's
// 15-joint skeleton profile, which the paper's middleware stack (OpenNI)
// delivers; the paper's queries reference the torso, right hand and right
// elbow.
type Joint int

const (
	Head Joint = iota
	Neck
	Torso
	LeftShoulder
	LeftElbow
	LeftHand
	RightShoulder
	RightElbow
	RightHand
	LeftHip
	LeftKnee
	LeftFoot
	RightHip
	RightKnee
	RightFoot

	NumJoints int = iota
)

// jointNames uses the attribute prefixes that appear in the paper's queries
// (torso, rHand, …).
var jointNames = [NumJoints]string{
	"head", "neck", "torso",
	"lShoulder", "lElbow", "lHand",
	"rShoulder", "rElbow", "rHand",
	"lHip", "lKnee", "lFoot",
	"rHip", "rKnee", "rFoot",
}

// String implements fmt.Stringer.
func (j Joint) String() string {
	if j >= 0 && int(j) < NumJoints {
		return jointNames[j]
	}
	return fmt.Sprintf("Joint(%d)", int(j))
}

// JointByName resolves a joint from its attribute prefix ("rHand" →
// RightHand).
func JointByName(name string) (Joint, bool) {
	for i, n := range jointNames {
		if n == name {
			return Joint(i), true
		}
	}
	return 0, false
}

// AllJoints returns every joint in schema order.
func AllJoints() []Joint {
	out := make([]Joint, NumJoints)
	for i := range out {
		out[i] = Joint(i)
	}
	return out
}

// Frame is one skeleton snapshot: the position of every joint at one sensor
// tick.
type Frame struct {
	Ts     time.Time
	Seq    uint64
	Joints [NumJoints]geom.Vec3
}

// Pos returns the position of joint j.
func (f Frame) Pos(j Joint) geom.Vec3 { return f.Joints[j] }

// FrameRate is the Kinect sensor frequency (tuples per second, §3.3.1).
const FrameRate = 30

// FramePeriod is the time between consecutive sensor frames.
const FramePeriod = time.Second / FrameRate
