package kinect

import (
	"fmt"
	"math"

	"gesturecep/internal/geom"
)

// ReferenceForearm is the forearm length (mm) of the reference user whose
// proportions gesture path specifications are expressed in. The data
// transformation normalizes every user to this reference (§3.2), so learned
// window centers stay in familiar millimetre magnitudes like the paper's
// Fig. 1 query (0/400/800 mm).
const ReferenceForearm = 250.0

// ReferenceHeight is the body height (mm) of the reference user.
const ReferenceHeight = 1750.0

// Profile describes one simulated user: anthropometry plus placement in the
// camera frame. The evaluation harness varies Height (scale invariance),
// Position (position invariance) and Yaw (orientation invariance) to test
// the §3.2 transformation.
type Profile struct {
	// Name labels the user in reports.
	Name string
	// Height is the body height in millimetres. Limb lengths scale
	// proportionally ("tall people have longer arms", §3.2).
	Height float64
	// Position is the torso position in camera coordinates (mm). The
	// camera looks along +Z; a user two metres away stands near
	// (0, 0, 2000).
	Position geom.Vec3
	// Yaw is the facing direction: 0 faces the camera, positive turns
	// towards the camera's right (radians).
	Yaw float64
}

// Validate reports configuration errors.
func (p Profile) Validate() error {
	if p.Height < 500 || p.Height > 2500 {
		return fmt.Errorf("kinect: implausible height %.0f mm", p.Height)
	}
	if p.Position.Z < 500 {
		return fmt.Errorf("kinect: user too close to camera (z = %.0f mm)", p.Position.Z)
	}
	if math.IsNaN(p.Yaw) || math.Abs(p.Yaw) > math.Pi {
		return fmt.Errorf("kinect: yaw %v out of range [-π, π]", p.Yaw)
	}
	return nil
}

// ScaleFactor returns the body-size ratio relative to the reference user.
func (p Profile) ScaleFactor() float64 { return p.Height / ReferenceHeight }

// Forearm returns the right forearm length (elbow→hand, mm) — the scale
// factor the paper's transformation divides by (§3.2).
func (p Profile) Forearm() float64 { return ReferenceForearm * p.ScaleFactor() }

// UpperArm returns the shoulder→elbow length (mm).
func (p Profile) UpperArm() float64 { return 280 * p.ScaleFactor() }

// DefaultProfile is an average adult standing 2 m in front of the camera,
// facing it — comparable to the trace shown in the paper's Fig. 1 (torso
// near (45, 165, 1960)).
func DefaultProfile() Profile {
	return Profile{
		Name:     "adult",
		Height:   ReferenceHeight,
		Position: geom.V(45, 165, 1960),
		Yaw:      0,
	}
}

// ChildProfile is a small user, exercising the scale-invariance claim
// ("testing the same gestures with children and adults", §3.2).
func ChildProfile() Profile {
	return Profile{
		Name:     "child",
		Height:   1250,
		Position: geom.V(-150, -120, 2400),
		Yaw:      0,
	}
}

// TallProfile is a tall user standing off-centre and slightly turned.
func TallProfile() Profile {
	return Profile{
		Name:     "tall",
		Height:   1980,
		Position: geom.V(400, 210, 2800),
		Yaw:      geom.Radians(15),
	}
}

// restPose returns the reference user's idle skeleton in the user-local
// frame: torso at the origin, X towards the camera's right (yaw 0), Y up,
// Z away from the camera, so a hand held in front of the body has negative
// local Z. Units are reference millimetres; Scale() by the profile factor
// before placing into the camera frame.
func restPose() [NumJoints]geom.Vec3 {
	var p [NumJoints]geom.Vec3
	p[Torso] = geom.V(0, 0, 0)
	p[Neck] = geom.V(0, 330, 0)
	p[Head] = geom.V(0, 500, 0)
	p[LeftShoulder] = geom.V(-200, 300, 0)
	p[RightShoulder] = geom.V(200, 300, 0)
	// Arms hang down and slightly forward at rest.
	p[LeftElbow] = geom.V(-230, 30, -30)
	p[RightElbow] = geom.V(230, 30, -30)
	p[LeftHand] = geom.V(-240, -210, -60)
	p[RightHand] = geom.V(240, -210, -60)
	p[LeftHip] = geom.V(-100, -280, 0)
	p[RightHip] = geom.V(100, -280, 0)
	p[LeftKnee] = geom.V(-105, -700, 0)
	p[RightKnee] = geom.V(105, -700, 0)
	p[LeftFoot] = geom.V(-110, -1100, 30)
	p[RightFoot] = geom.V(110, -1100, 30)
	return p
}

// orientation returns the rotation mapping user-local vectors into the
// camera frame for this profile's yaw: local (0,0,-1) (user's front) maps to
// geom.DirectionFromYaw(p.Yaw).
func (p Profile) orientation() geom.Mat3 {
	return geom.RotY(-p.Yaw)
}

// LocalToCamera places a user-local point (reference millimetres) into the
// camera frame: scale by body size, rotate by yaw, translate by torso
// position.
func (p Profile) LocalToCamera(local geom.Vec3) geom.Vec3 {
	return p.Position.Add(p.orientation().Apply(local.Scale(p.ScaleFactor())))
}

// CameraToLocal inverts LocalToCamera. It is used by tests to verify the
// engine-side transformation recovers user-local coordinates.
func (p Profile) CameraToLocal(cam geom.Vec3) geom.Vec3 {
	return p.orientation().Transpose().Apply(cam.Sub(p.Position)).Scale(1 / p.ScaleFactor())
}
