// Package transform implements the data transformation of §3.2 (Fig. 3):
// converting raw camera-frame skeleton tuples into a user-invariant frame so
// that one gesture definition detects the same movement regardless of where
// the user stands (position invariance), which way he faces (orientation
// invariance) and how tall he is (scale invariance).
//
// The three steps, each independently switchable for the ablation experiment
// (E3):
//
//  1. Shift: subtract the torso position — the torso becomes the origin.
//  2. Rotate: rotate about the vertical axis so the user's viewing
//     direction is canonical. The yaw is estimated from the shoulder line.
//  3. Scale: divide by the right forearm length (distance right elbow →
//     right hand), then re-multiply by a reference forearm so coordinates
//     remain in familiar millimetres (the paper's Fig. 1 windows are
//     mm-sized). This is the paper's scale factor up to the constant
//     reference factor.
//
// Like the paper's kinect_t view, the whole transformation is "a single step
// performed on the incoming data stream": View attaches it as a derived
// stream.
package transform

import (
	"fmt"
	"math"

	"gesturecep/internal/geom"
	"gesturecep/internal/kinect"
	"gesturecep/internal/stream"
)

// Config controls the transformation steps.
type Config struct {
	// Shift enables torso-origin translation (position invariance).
	Shift bool
	// Rotate enables yaw normalization (orientation invariance).
	Rotate bool
	// Scale enables forearm-length scaling (scale invariance).
	Scale bool
	// ReferenceForearm is the forearm length (mm) users are normalized to.
	ReferenceForearm float64
	// ForearmSmoothing is the EMA coefficient applied to the per-frame
	// forearm estimate (0 disables smoothing, 0.2 is a good default):
	// sensor jitter on elbow/hand otherwise wobbles the scale factor.
	ForearmSmoothing float64
}

// DefaultConfig enables all three invariance steps.
func DefaultConfig() Config {
	return Config{
		Shift:            true,
		Rotate:           true,
		Scale:            true,
		ReferenceForearm: kinect.ReferenceForearm,
		ForearmSmoothing: 0.2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ReferenceForearm <= 0 {
		return fmt.Errorf("transform: reference forearm must be positive, got %g", c.ReferenceForearm)
	}
	if c.ForearmSmoothing < 0 || c.ForearmSmoothing > 1 {
		return fmt.Errorf("transform: smoothing %g outside [0, 1]", c.ForearmSmoothing)
	}
	return nil
}

// minForearm guards the scale division against tracker glitches that report
// elbow and hand on top of each other.
const minForearm = 50.0

// Transformer applies the §3.2 transformation frame by frame. It keeps a
// smoothed forearm estimate across frames and is therefore stateful; use
// one Transformer per stream and do not share across goroutines.
type Transformer struct {
	cfg        Config
	emaForearm float64
	hasEMA     bool
}

// New validates cfg and returns a Transformer.
func New(cfg Config) (*Transformer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Transformer{cfg: cfg}, nil
}

// Config returns the transformer configuration.
func (t *Transformer) Config() Config { return t.cfg }

// Reset clears the smoothed forearm state.
func (t *Transformer) Reset() { t.hasEMA = false; t.emaForearm = 0 }

// EstimateYaw returns the user's facing direction estimated from the
// shoulder line of the frame: with the simulator's conventions the vector
// from left to right shoulder maps under the user rotation to
// (cos yaw, 0, sin yaw).
func EstimateYaw(f kinect.Frame) float64 {
	v := f.Pos(kinect.RightShoulder).Sub(f.Pos(kinect.LeftShoulder))
	if v.X == 0 && v.Z == 0 {
		return 0
	}
	return math.Atan2(v.Z, v.X)
}

// forearm returns the smoothed right-forearm length of the frame.
func (t *Transformer) forearm(f kinect.Frame) float64 {
	raw := f.Pos(kinect.RightElbow).Dist(f.Pos(kinect.RightHand))
	if raw < minForearm {
		if t.hasEMA {
			return t.emaForearm
		}
		raw = t.cfg.ReferenceForearm
	}
	if t.cfg.ForearmSmoothing <= 0 || !t.hasEMA {
		t.emaForearm = raw
		t.hasEMA = true
		return raw
	}
	a := t.cfg.ForearmSmoothing
	t.emaForearm = a*raw + (1-a)*t.emaForearm
	return t.emaForearm
}

// Frame transforms one skeleton frame into the user-invariant frame.
func (t *Transformer) Frame(f kinect.Frame) kinect.Frame {
	out := f
	origin := geom.Vec3{}
	if t.cfg.Shift {
		origin = f.Pos(kinect.Torso)
	}
	rot := geom.Identity()
	if t.cfg.Rotate {
		rot = geom.RotY(EstimateYaw(f)) // inverse of the user's RotY(-yaw)
	}
	scale := 1.0
	if t.cfg.Scale {
		scale = t.cfg.ReferenceForearm / t.forearm(f)
	}
	for j := 0; j < kinect.NumJoints; j++ {
		p := f.Joints[j].Sub(origin)
		p = rot.Apply(p)
		out.Joints[j] = p.Scale(scale)
	}
	return out
}

// Tuple transforms a raw kinect tuple. Malformed tuples are dropped
// (ok = false).
func (t *Transformer) Tuple(in stream.Tuple) (stream.Tuple, bool) {
	f, err := kinect.FromTuple(in)
	if err != nil {
		return stream.Tuple{}, false
	}
	return kinect.ToTuple(t.Frame(f)), true
}

// ViewName is the conventional name of the transformed stream, matching the
// paper's kinect_t.
const ViewName = "kinect_t"

// View attaches the transformation as a derived stream over src (the raw
// kinect stream) and returns it. The view shares the kinect schema: same
// attributes, transformed values.
func View(src *stream.Stream, cfg Config) (*stream.Stream, error) {
	tr, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return stream.Derive(src, ViewName, src.Schema(), tr.Tuple)
}

// FrameSlice transforms a recorded sample (e.g. from the recorder) into the
// user-invariant frame with a fresh transformer.
func FrameSlice(cfg Config, frames []kinect.Frame) ([]kinect.Frame, error) {
	tr, err := New(cfg)
	if err != nil {
		return nil, err
	}
	out := make([]kinect.Frame, len(frames))
	for i, f := range frames {
		out[i] = tr.Frame(f)
	}
	return out, nil
}
