package transform

import (
	"math"

	"gesturecep/internal/geom"
	"gesturecep/internal/kinect"
	"gesturecep/internal/query"
)

// This file provides the Roll-Pitch-Yaw user-defined operators of §3.2:
// "The calculation of Roll-Pitch-Yaw (RPY) angles defined in this system
// were implemented as user defined operators in AnduIN. They can be used to
// easily express movements using any kind of rotations, e.g., a wave
// gesture."
//
// Each UDF takes the six coordinates of a limb segment (from-point, then
// to-point, both already in the transformed user frame) and returns one
// angle in degrees. In the user frame the viewing direction is the
// East axis of an East-North-Up ground frame:
//
//	yaw   — heading of the segment in the horizontal plane,
//	pitch — elevation of the segment above the horizontal plane,
//	roll  — rotation about the segment's own axis is not observable from
//	        two points; the provided roll operator instead reports the
//	        segment's bank relative to the frontal plane, which is the
//	        useful quantity for wave-like forearm rotations.
type rpyArgs struct {
	from, to geom.Vec3
}

func rpyFromArgs(a []float64) rpyArgs {
	return rpyArgs{
		from: geom.V(a[0], a[1], a[2]),
		to:   geom.V(a[3], a[4], a[5]),
	}
}

// segmentYaw returns the heading (degrees) of the segment in the horizontal
// plane. 0° points to the user's front (-Z in the transformed frame),
// +90° to the transformed +X direction.
func segmentYaw(a rpyArgs) float64 {
	d := a.to.Sub(a.from)
	if d.X == 0 && d.Z == 0 {
		return 0
	}
	return geom.Degrees(math.Atan2(d.X, -d.Z))
}

// segmentPitch returns the elevation (degrees) of the segment above the
// horizontal plane: +90° points straight up.
func segmentPitch(a rpyArgs) float64 {
	d := a.to.Sub(a.from)
	h := math.Hypot(d.X, d.Z)
	if h == 0 && d.Y == 0 {
		return 0
	}
	return geom.Degrees(math.Atan2(d.Y, h))
}

// segmentRoll returns the bank (degrees) of the segment relative to the
// frontal (XY) plane: 0° for a segment in the frontal plane, ±90° for one
// pointing straight forward/backward.
func segmentRoll(a rpyArgs) float64 {
	d := a.to.Sub(a.from)
	h := math.Hypot(d.X, d.Y)
	if h == 0 && d.Z == 0 {
		return 0
	}
	return geom.Degrees(math.Atan2(-d.Z, h))
}

// RPYUDFs returns the user-defined operators registered with the engine:
// rpy_yaw, rpy_pitch, rpy_roll — each with signature
// f(from_x, from_y, from_z, to_x, to_y, to_z) → degrees.
func RPYUDFs() map[string]query.UDF {
	return map[string]query.UDF{
		"rpy_yaw": {Name: "rpy_yaw", Arity: 6, Fn: func(a []float64) float64 {
			return segmentYaw(rpyFromArgs(a))
		}},
		"rpy_pitch": {Name: "rpy_pitch", Arity: 6, Fn: func(a []float64) float64 {
			return segmentPitch(rpyFromArgs(a))
		}},
		"rpy_roll": {Name: "rpy_roll", Arity: 6, Fn: func(a []float64) float64 {
			return segmentRoll(rpyFromArgs(a))
		}},
	}
}

// ForearmYaw computes the rpy_yaw of the right forearm for a transformed
// frame — convenience for tests and the wave control query.
func ForearmYaw(f kinect.Frame) float64 {
	return segmentYaw(rpyArgs{from: f.Pos(kinect.RightElbow), to: f.Pos(kinect.RightHand)})
}
