package transform

import (
	"math"
	"testing"
	"time"

	"gesturecep/internal/geom"
	"gesturecep/internal/kinect"
	"gesturecep/internal/stream"
)

func t0() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := DefaultConfig()
	bad.ReferenceForearm = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero reference forearm accepted")
	}
	bad = DefaultConfig()
	bad.ForearmSmoothing = 2
	if err := bad.Validate(); err == nil {
		t.Error("smoothing > 1 accepted")
	}
	if _, err := New(bad); err == nil {
		t.Error("New accepted invalid config")
	}
}

// frameFor synthesizes a noise-free idle frame for the profile.
func frameFor(t *testing.T, p kinect.Profile) kinect.Frame {
	t.Helper()
	sim, err := kinect.NewSimulator(p, kinect.NoNoise(), 1)
	if err != nil {
		t.Fatal(err)
	}
	frames := sim.Idle(t0(), 100*time.Millisecond)
	return frames[0]
}

func TestTransformRecoversLocalFrame(t *testing.T) {
	// For any user profile, the transformed rest skeleton must coincide
	// with the reference rest pose: that is precisely the invariance §3.2
	// claims.
	profiles := []kinect.Profile{
		kinect.DefaultProfile(),
		kinect.ChildProfile(),
		kinect.TallProfile(),
		{Name: "turned", Height: 1800, Position: geom.V(-600, 90, 3100), Yaw: geom.Radians(-35)},
	}
	for _, p := range profiles {
		tr, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		got := tr.Frame(frameFor(t, p))
		for j := 0; j < kinect.NumJoints; j++ {
			joint := kinect.Joint(j)
			if joint == kinect.RightElbow || joint == kinect.LeftElbow {
				continue // elbows are IK-derived, not at the literal rest pose
			}
			want := kinect.RestLocal(joint)
			if got.Pos(joint).Dist(want) > 20 {
				t.Errorf("%s: joint %s transformed to %v, want %v", p.Name, joint, got.Pos(joint), want)
			}
		}
	}
}

func TestTransformInvarianceAcrossUsers(t *testing.T) {
	// The same gesture performed by different users must land in the same
	// transformed windows: compare right-hand paths pointwise.
	spec := kinect.StandardGestures()[kinect.GestureSwipeRight]
	var paths [][]geom.Vec3
	for _, p := range []kinect.Profile{kinect.DefaultProfile(), kinect.ChildProfile(), kinect.TallProfile()} {
		sim, err := kinect.NewSimulator(p, kinect.NoNoise(), 7)
		if err != nil {
			t.Fatal(err)
		}
		perf, err := sim.Perform(spec, t0(), kinect.PerformOpts{})
		if err != nil {
			t.Fatal(err)
		}
		frames, err := FrameSlice(DefaultConfig(), perf.Frames)
		if err != nil {
			t.Fatal(err)
		}
		var path []geom.Vec3
		for _, f := range frames {
			path = append(path, f.Pos(kinect.RightHand))
		}
		paths = append(paths, path)
	}
	ref := paths[0]
	for i, other := range paths[1:] {
		if len(other) != len(ref) {
			t.Fatalf("path %d has %d points, ref has %d", i+1, len(other), len(ref))
		}
		var worst float64
		for k := range ref {
			if d := ref[k].Dist(other[k]); d > worst {
				worst = d
			}
		}
		// Tolerance: IK reach clamping plus smoothing differ slightly per
		// body size; must stay well inside the paper's ±50 mm windows.
		if worst > 40 {
			t.Errorf("user %d transformed path deviates up to %.1f mm from reference", i+1, worst)
		}
	}
}

func TestAblationBreaksInvariance(t *testing.T) {
	// Disabling the shift step must leave the child user's transformed
	// coordinates far from the adult's (they stand in different places).
	spec := kinect.StandardGestures()[kinect.GestureSwipeRight]
	endpoints := make(map[string]geom.Vec3)
	for _, cfgCase := range []struct {
		name string
		cfg  Config
	}{
		{"full", DefaultConfig()},
		{"noShift", Config{Shift: false, Rotate: true, Scale: true, ReferenceForearm: 250}},
		{"noScale", Config{Shift: true, Rotate: true, Scale: false, ReferenceForearm: 250}},
	} {
		for _, p := range []kinect.Profile{kinect.DefaultProfile(), kinect.ChildProfile()} {
			sim, _ := kinect.NewSimulator(p, kinect.NoNoise(), 7)
			perf, _ := sim.Perform(spec, t0(), kinect.PerformOpts{})
			frames, err := FrameSlice(cfgCase.cfg, perf.Frames)
			if err != nil {
				t.Fatal(err)
			}
			endpoints[cfgCase.name+"/"+p.Name] = frames[len(frames)-1].Pos(kinect.RightHand)
		}
	}
	if d := endpoints["full/adult"].Dist(endpoints["full/child"]); d > 40 {
		t.Errorf("full transform: adult/child endpoints differ by %.1f mm", d)
	}
	if d := endpoints["noShift/adult"].Dist(endpoints["noShift/child"]); d < 100 {
		t.Errorf("shift ablation: endpoints still close (%.1f mm) — ablation ineffective", d)
	}
	if d := endpoints["noScale/adult"].Dist(endpoints["noScale/child"]); d < 100 {
		t.Errorf("scale ablation: endpoints still close (%.1f mm) — ablation ineffective", d)
	}
}

func TestEstimateYaw(t *testing.T) {
	for _, yawDeg := range []float64{0, 20, -35, 60} {
		p := kinect.DefaultProfile()
		p.Yaw = geom.Radians(yawDeg)
		f := frameFor(t, p)
		got := geom.Degrees(EstimateYaw(f))
		if math.Abs(got-yawDeg) > 1 {
			t.Errorf("yaw %v: estimated %.2f", yawDeg, got)
		}
	}
}

func TestForearmGuard(t *testing.T) {
	tr, _ := New(DefaultConfig())
	f := frameFor(t, kinect.DefaultProfile())
	// Glitch: elbow collapses onto the hand. The scale must not explode.
	glitch := f
	glitch.Joints[kinect.RightElbow] = glitch.Joints[kinect.RightHand]
	out := tr.Frame(glitch)
	for j := 0; j < kinect.NumJoints; j++ {
		p := out.Joints[j]
		if !p.IsFinite() || p.Norm() > 1e5 {
			t.Fatalf("glitch frame exploded: joint %d at %v", j, p)
		}
	}
	// After a good frame, the EMA recovers.
	tr.Reset()
	_ = tr.Frame(f)
	out2 := tr.Frame(glitch)
	if !out2.Pos(kinect.Head).IsFinite() {
		t.Error("EMA fallback failed")
	}
}

func TestTupleViewDropsMalformed(t *testing.T) {
	src, err := stream.New("kinect", kinect.Schema())
	if err != nil {
		t.Fatal(err)
	}
	view, err := View(src, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if view.Name() != ViewName {
		t.Errorf("view name = %q", view.Name())
	}
	var c stream.Collector
	c.Attach(view)
	f := frameFor(t, kinect.DefaultProfile())
	if err := src.Publish(kinect.ToTuple(f)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("view emitted %d tuples", c.Len())
	}
	// Malformed tuples cannot be published on the typed stream at all —
	// the Tuple transform's drop path is still exercised directly:
	tr, _ := New(DefaultConfig())
	if _, ok := tr.Tuple(stream.Tuple{Fields: []float64{1, 2}}); ok {
		t.Error("malformed tuple not dropped")
	}
	if _, err := View(src, Config{ReferenceForearm: -1}); err == nil {
		t.Error("invalid view config accepted")
	}
}

func TestRPYUDFs(t *testing.T) {
	udfs := RPYUDFs()
	for _, name := range []string{"rpy_yaw", "rpy_pitch", "rpy_roll"} {
		if _, ok := udfs[name]; !ok {
			t.Fatalf("missing UDF %s", name)
		}
		if udfs[name].Arity != 6 {
			t.Errorf("%s arity = %d", name, udfs[name].Arity)
		}
	}
	yaw := udfs["rpy_yaw"].Fn
	pitch := udfs["rpy_pitch"].Fn
	roll := udfs["rpy_roll"].Fn

	// Segment pointing straight forward (user frame -Z): yaw 0, pitch 0,
	// roll -90 (fully out of the frontal plane).
	fwd := []float64{0, 0, 0, 0, 0, -100}
	if got := yaw(fwd); math.Abs(got) > 1e-9 {
		t.Errorf("forward yaw = %v", got)
	}
	if got := pitch(fwd); math.Abs(got) > 1e-9 {
		t.Errorf("forward pitch = %v", got)
	}
	if got := roll(fwd); math.Abs(got-90) > 1e-9 {
		t.Errorf("forward roll = %v, want 90", got)
	}
	// Segment pointing to transformed +X: yaw +90.
	right := []float64{0, 0, 0, 100, 0, 0}
	if got := yaw(right); math.Abs(got-90) > 1e-9 {
		t.Errorf("right yaw = %v", got)
	}
	// Segment pointing straight up: pitch +90.
	up := []float64{0, 0, 0, 0, 100, 0}
	if got := pitch(up); math.Abs(got-90) > 1e-9 {
		t.Errorf("up pitch = %v", got)
	}
	// Degenerate zero segment returns 0 everywhere.
	zero := []float64{1, 2, 3, 1, 2, 3}
	if yaw(zero) != 0 || pitch(zero) != 0 || roll(zero) != 0 {
		t.Error("zero segment should yield zero angles")
	}
}

func TestForearmYawOscillatesDuringWave(t *testing.T) {
	sim, _ := kinect.NewSimulator(kinect.DefaultProfile(), kinect.NoNoise(), 3)
	perf, err := sim.Perform(kinect.StandardGestures()[kinect.GestureWave], t0(), kinect.PerformOpts{})
	if err != nil {
		t.Fatal(err)
	}
	frames, err := FrameSlice(DefaultConfig(), perf.Frames)
	if err != nil {
		t.Fatal(err)
	}
	minYaw, maxYaw := math.Inf(1), math.Inf(-1)
	for _, f := range frames {
		if !f.Ts.Before(perf.PathStart) && !f.Ts.After(perf.PathEnd) {
			y := ForearmYaw(f)
			minYaw = math.Min(minYaw, y)
			maxYaw = math.Max(maxYaw, y)
		}
	}
	if maxYaw-minYaw < 15 {
		t.Errorf("wave forearm yaw swing = %.1f°, expected a visible oscillation", maxYaw-minYaw)
	}
}
