// Package detect is the evaluation harness: it deploys gesture queries in a
// fresh engine, replays labelled sessions from the simulator, matches
// detections against ground truth and computes precision/recall/F1 and
// latency statistics. Every experiment in EXPERIMENTS.md is built on this
// package.
package detect

import (
	"fmt"
	"sort"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/kinect"
	"gesturecep/internal/stream"
	"gesturecep/internal/transform"
)

// Outcome aggregates detection quality for one gesture (or overall).
type Outcome struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	// Latencies holds, per true positive, how far the detection time (the
	// event time of the last matched tuple) lagged the ground-truth
	// gesture end. Negative values mean the pattern completed before the
	// performer reached the scripted end pose.
	Latencies []time.Duration
}

// Precision returns TP / (TP + FP), or 1 when nothing was detected.
func (o Outcome) Precision() float64 {
	if o.TruePositives+o.FalsePositives == 0 {
		return 1
	}
	return float64(o.TruePositives) / float64(o.TruePositives+o.FalsePositives)
}

// Recall returns TP / (TP + FN), or 1 when nothing was expected.
func (o Outcome) Recall() float64 {
	if o.TruePositives+o.FalseNegatives == 0 {
		return 1
	}
	return float64(o.TruePositives) / float64(o.TruePositives+o.FalseNegatives)
}

// F1 returns the harmonic mean of precision and recall.
func (o Outcome) F1() float64 {
	p, r := o.Precision(), o.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MeanLatency returns the average true-positive latency (0 when there were
// none).
func (o Outcome) MeanLatency() time.Duration {
	if len(o.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range o.Latencies {
		sum += l
	}
	return sum / time.Duration(len(o.Latencies))
}

// Merge combines two outcomes.
func (o Outcome) Merge(other Outcome) Outcome {
	return Outcome{
		TruePositives:  o.TruePositives + other.TruePositives,
		FalsePositives: o.FalsePositives + other.FalsePositives,
		FalseNegatives: o.FalseNegatives + other.FalseNegatives,
		Latencies:      append(append([]time.Duration(nil), o.Latencies...), other.Latencies...),
	}
}

// String implements fmt.Stringer.
func (o Outcome) String() string {
	return fmt.Sprintf("TP=%d FP=%d FN=%d P=%.2f R=%.2f F1=%.2f",
		o.TruePositives, o.FalsePositives, o.FalseNegatives, o.Precision(), o.Recall(), o.F1())
}

// DefaultTolerance is how far outside a ground-truth interval a detection's
// end time may fall and still count as a true positive. Generated queries
// can complete slightly after the scripted path end (the matched end pose
// extends into the hold period).
const DefaultTolerance = 700 * time.Millisecond

// Evaluate matches detections against ground truth per gesture name.
//
// A detection counts as a true positive when a yet-unmatched truth interval
// of the same gesture contains its end time (widened by tolerance). Each
// truth interval absorbs at most one detection; surplus detections are
// false positives, unmatched truth intervals are false negatives.
func Evaluate(truth []kinect.TruthInterval, dets []anduin.Detection, tolerance time.Duration) map[string]Outcome {
	out := make(map[string]Outcome)

	// Group truth by gesture, preserving order.
	truthBy := map[string][]kinect.TruthInterval{}
	for _, tr := range truth {
		truthBy[tr.Name] = append(truthBy[tr.Name], tr)
		if _, ok := out[tr.Name]; !ok {
			out[tr.Name] = Outcome{}
		}
	}
	detsBy := map[string][]anduin.Detection{}
	for _, d := range dets {
		detsBy[d.Gesture] = append(detsBy[d.Gesture], d)
		if _, ok := out[d.Gesture]; !ok {
			out[d.Gesture] = Outcome{}
		}
	}

	for name := range out {
		o := out[name]
		intervals := truthBy[name]
		matched := make([]bool, len(intervals))
		ds := detsBy[name]
		sort.Slice(ds, func(i, j int) bool { return ds[i].End.Before(ds[j].End) })
		for _, d := range ds {
			hit := -1
			for i, tr := range intervals {
				if matched[i] {
					continue
				}
				if !d.End.Before(tr.Start.Add(-tolerance)) && !d.End.After(tr.End.Add(tolerance)) {
					hit = i
					break
				}
			}
			if hit < 0 {
				o.FalsePositives++
				continue
			}
			matched[hit] = true
			o.TruePositives++
			o.Latencies = append(o.Latencies, d.End.Sub(intervals[hit].End))
		}
		for _, m := range matched {
			if !m {
				o.FalseNegatives++
			}
		}
		out[name] = o
	}
	return out
}

// Overall folds a per-gesture evaluation into one outcome.
func Overall(byGesture map[string]Outcome) Outcome {
	var o Outcome
	names := make([]string, 0, len(byGesture))
	for n := range byGesture {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		o = o.Merge(byGesture[n])
	}
	return o
}

// Harness wires a fresh engine with the kinect pipeline and collects
// detections.
type Harness struct {
	Engine *anduin.Engine
	Raw    *stream.Stream
	View   *stream.Stream

	dets []anduin.Detection
}

// NewHarness builds an engine with the given transformation config and an
// attached detection collector.
func NewHarness(cfg transform.Config) (*Harness, error) {
	e := anduin.New()
	raw, view, err := e.KinectPipeline(cfg)
	if err != nil {
		return nil, err
	}
	h := &Harness{Engine: e, Raw: raw, View: view}
	e.Subscribe(func(d anduin.Detection) { h.dets = append(h.dets, d) })
	return h, nil
}

// Deploy activates one or more query texts.
func (h *Harness) Deploy(queryTexts ...string) error {
	for _, q := range queryTexts {
		if _, err := h.Engine.DeployText(q); err != nil {
			return err
		}
	}
	return nil
}

// Run replays a session and returns the detections it produced (also
// accumulated on the harness).
func (h *Harness) Run(sess kinect.Session) ([]anduin.Detection, error) {
	before := len(h.dets)
	if err := stream.Replay(h.Raw, kinect.ToTuples(sess.Frames)); err != nil {
		return nil, err
	}
	return append([]anduin.Detection(nil), h.dets[before:]...), nil
}

// Detections returns everything detected so far.
func (h *Harness) Detections() []anduin.Detection {
	return append([]anduin.Detection(nil), h.dets...)
}

// Reset clears collected detections.
func (h *Harness) Reset() { h.dets = nil }

// RunAndEvaluate replays the session and scores it in one step.
func (h *Harness) RunAndEvaluate(sess kinect.Session, tolerance time.Duration) (map[string]Outcome, error) {
	dets, err := h.Run(sess)
	if err != nil {
		return nil, err
	}
	return Evaluate(sess.Truth, dets, tolerance), nil
}

// Throughput measures wall-clock tuples/second for replaying the given
// frames through the harness (all deployed queries active).
func (h *Harness) Throughput(frames []kinect.Frame) (float64, error) {
	tuples := kinect.ToTuples(frames)
	start := time.Now()
	if err := stream.Replay(h.Raw, tuples); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(len(tuples)) / elapsed.Seconds(), nil
}
