package detect

import (
	"math"
	"testing"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
	"gesturecep/internal/transform"
)

func t0() time.Time { return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC) }

func truth(name string, startMs, endMs int) kinect.TruthInterval {
	return kinect.TruthInterval{
		Name:  name,
		Start: t0().Add(time.Duration(startMs) * time.Millisecond),
		End:   t0().Add(time.Duration(endMs) * time.Millisecond),
	}
}

func det(name string, endMs int) anduin.Detection {
	return anduin.Detection{
		Gesture: name,
		Start:   t0().Add(time.Duration(endMs-300) * time.Millisecond),
		End:     t0().Add(time.Duration(endMs) * time.Millisecond),
	}
}

func TestOutcomeMetrics(t *testing.T) {
	o := Outcome{TruePositives: 3, FalsePositives: 1, FalseNegatives: 2}
	if p := o.Precision(); math.Abs(p-0.75) > 1e-9 {
		t.Errorf("precision = %v", p)
	}
	if r := o.Recall(); math.Abs(r-0.6) > 1e-9 {
		t.Errorf("recall = %v", r)
	}
	want := 2 * 0.75 * 0.6 / (0.75 + 0.6)
	if f := o.F1(); math.Abs(f-want) > 1e-9 {
		t.Errorf("f1 = %v", f)
	}
	empty := Outcome{}
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty outcome should have P=R=1")
	}
	if (Outcome{FalsePositives: 1}).F1() != 0 {
		t.Error("FP-only outcome should have F1=0")
	}
	if o.String() == "" {
		t.Error("empty string")
	}
}

func TestOutcomeLatencyAndMerge(t *testing.T) {
	a := Outcome{TruePositives: 1, Latencies: []time.Duration{100 * time.Millisecond}}
	b := Outcome{TruePositives: 1, Latencies: []time.Duration{300 * time.Millisecond}}
	m := a.Merge(b)
	if m.TruePositives != 2 || len(m.Latencies) != 2 {
		t.Fatalf("merge = %+v", m)
	}
	if m.MeanLatency() != 200*time.Millisecond {
		t.Errorf("mean latency = %v", m.MeanLatency())
	}
	if (Outcome{}).MeanLatency() != 0 {
		t.Error("empty mean latency")
	}
}

func TestEvaluateBasic(t *testing.T) {
	truths := []kinect.TruthInterval{
		truth("swipe", 1000, 1800),
		truth("swipe", 5000, 5800),
		truth("push", 9000, 9500),
	}
	dets := []anduin.Detection{
		det("swipe", 1700), // TP
		det("swipe", 3000), // FP (no interval nearby)
		det("push", 9400),  // TP
	}
	res := Evaluate(truths, dets, DefaultTolerance)
	sw := res["swipe"]
	if sw.TruePositives != 1 || sw.FalsePositives != 1 || sw.FalseNegatives != 1 {
		t.Errorf("swipe outcome = %+v", sw)
	}
	pu := res["push"]
	if pu.TruePositives != 1 || pu.FalsePositives != 0 || pu.FalseNegatives != 0 {
		t.Errorf("push outcome = %+v", pu)
	}
	if pu.Latencies[0] != -100*time.Millisecond {
		t.Errorf("push latency = %v", pu.Latencies[0])
	}
	all := Overall(res)
	if all.TruePositives != 2 || all.FalsePositives != 1 || all.FalseNegatives != 1 {
		t.Errorf("overall = %+v", all)
	}
}

func TestEvaluateOneDetectionPerTruth(t *testing.T) {
	truths := []kinect.TruthInterval{truth("g", 1000, 2000)}
	dets := []anduin.Detection{det("g", 1500), det("g", 1600), det("g", 1700)}
	res := Evaluate(truths, dets, DefaultTolerance)
	o := res["g"]
	if o.TruePositives != 1 || o.FalsePositives != 2 {
		t.Errorf("outcome = %+v", o)
	}
}

func TestEvaluateToleranceWindow(t *testing.T) {
	truths := []kinect.TruthInterval{truth("g", 1000, 2000)}
	// Detection slightly after the interval end: inside tolerance.
	res := Evaluate(truths, []anduin.Detection{det("g", 2400)}, 500*time.Millisecond)
	if res["g"].TruePositives != 1 {
		t.Errorf("tolerant match failed: %+v", res["g"])
	}
	// Far outside tolerance: FP + FN.
	res = Evaluate(truths, []anduin.Detection{det("g", 4000)}, 500*time.Millisecond)
	if res["g"].TruePositives != 0 || res["g"].FalsePositives != 1 || res["g"].FalseNegatives != 1 {
		t.Errorf("outcome = %+v", res["g"])
	}
}

func TestEvaluateWrongGestureName(t *testing.T) {
	truths := []kinect.TruthInterval{truth("swipe", 1000, 2000)}
	res := Evaluate(truths, []anduin.Detection{det("circle", 1500)}, DefaultTolerance)
	if res["swipe"].FalseNegatives != 1 {
		t.Error("missing swipe not counted")
	}
	if res["circle"].FalsePositives != 1 {
		t.Error("spurious circle not counted")
	}
}

// TestHarnessEndToEnd is the complete reproduction of the paper's main
// claim: learn from a few samples, deploy the generated query, detect the
// gesture in a fresh session with high precision and recall.
func TestHarnessEndToEnd(t *testing.T) {
	// Learn swipe_right and push from 4 samples each.
	simTrain, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 1)
	if err != nil {
		t.Fatal(err)
	}
	specs := kinect.StandardGestures()
	var queryTexts []string
	for _, g := range []string{kinect.GestureSwipeRight, kinect.GesturePush} {
		samples, err := simTrain.Samples(specs[g], 4, t0(), kinect.PerformOpts{PathJitter: 25})
		if err != nil {
			t.Fatal(err)
		}
		res, err := learn.Learn(g, samples, learn.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		queryTexts = append(queryTexts, res.QueryText)
	}

	h, err := NewHarness(transform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Deploy(queryTexts...); err != nil {
		t.Fatal(err)
	}

	// A mixed session performed by a different user.
	simTest, err := kinect.NewSimulator(kinect.TallProfile(), kinect.DefaultNoise(), 2)
	if err != nil {
		t.Fatal(err)
	}
	script := []kinect.ScriptItem{
		{Idle: time.Second},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
		{Gesture: kinect.GesturePush, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
		{Gesture: kinect.GestureCircle}, // must not fire anything
		{Idle: time.Second},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
	}
	sess, err := simTest.RunScript(script, t0().Add(time.Hour), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.RunAndEvaluate(sess, DefaultTolerance)
	if err != nil {
		t.Fatal(err)
	}
	swipe := res[kinect.GestureSwipeRight]
	if swipe.TruePositives != 2 || swipe.FalsePositives != 0 {
		t.Errorf("swipe outcome: %v", swipe)
	}
	push := res[kinect.GesturePush]
	if push.TruePositives != 1 || push.FalsePositives != 0 {
		t.Errorf("push outcome: %v", push)
	}
	if circle, ok := res[kinect.GestureCircle]; ok && circle.FalsePositives > 0 {
		t.Errorf("circle fired: %v", circle)
	}
	if h.Detections() == nil {
		t.Error("no detections recorded on harness")
	}
	h.Reset()
	if len(h.Detections()) != 0 {
		t.Error("Reset did not clear detections")
	}
}

func TestHarnessThroughputAbove30Hz(t *testing.T) {
	h, err := NewHarness(transform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Deploy a realistic query load.
	sim, _ := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 3)
	samples, err := sim.Samples(kinect.StandardGestures()[kinect.GestureSwipeRight], 3, t0(), kinect.PerformOpts{PathJitter: 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := learn.Learn(kinect.GestureSwipeRight, samples, learn.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Deploy(res.QueryText); err != nil {
		t.Fatal(err)
	}
	frames := sim.Idle(t0().Add(time.Hour), 5*time.Second)
	tps, err := h.Throughput(frames)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's substrate must sustain the Kinect's 30 Hz; the pure-Go
	// engine should beat that by orders of magnitude.
	if tps < 1000 {
		t.Errorf("throughput = %.0f tuples/s, want >= 1000", tps)
	}
}
