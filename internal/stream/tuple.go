package stream

import (
	"fmt"
	"strings"
	"time"
)

// Tuple is a single stream element: a timestamp plus a flat vector of
// float64 attribute values whose meaning is given by the stream's Schema.
// Tuples are treated as immutable once published; operators that modify
// values must work on a copy (see Clone).
type Tuple struct {
	// Ts is the event time of the measurement (the Kinect frame time).
	Ts time.Time
	// Seq is a monotonically increasing sequence number assigned by the
	// producing source; it disambiguates tuples with equal timestamps.
	Seq uint64
	// Fields holds the attribute values in schema order.
	Fields []float64
}

// NewTuple constructs a tuple with a defensive copy of the field values.
func NewTuple(ts time.Time, seq uint64, fields []float64) Tuple {
	return Tuple{Ts: ts, Seq: seq, Fields: append([]float64(nil), fields...)}
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	return Tuple{Ts: t.Ts, Seq: t.Seq, Fields: append([]float64(nil), t.Fields...)}
}

// Get returns the value of the named attribute under the given schema.
func (t Tuple) Get(s *Schema, name string) (float64, error) {
	i, ok := s.Index(name)
	if !ok {
		return 0, fmt.Errorf("stream: tuple has no attribute %q in schema %s", name, s)
	}
	if i >= len(t.Fields) {
		return 0, fmt.Errorf("stream: tuple too short (%d fields) for attribute %q at index %d", len(t.Fields), name, i)
	}
	return t.Fields[i], nil
}

// MustGet is like Get but panics on unknown attributes. Use only where the
// schema was validated beforehand (e.g. compiled predicates).
func (t Tuple) MustGet(s *Schema, name string) float64 {
	v, err := t.Get(s, name)
	if err != nil {
		panic(err)
	}
	return v
}

// Format renders the tuple using the schema's attribute names.
func (t Tuple) Format(s *Schema) string {
	var b strings.Builder
	b.WriteString(t.Ts.Format("15:04:05.000"))
	b.WriteString(" {")
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		name := fmt.Sprintf("f%d", i)
		if s != nil && i < s.Len() {
			name = s.FieldAt(i)
		}
		fmt.Fprintf(&b, "%s: %.2f", name, f)
	}
	b.WriteString("}")
	return b.String()
}
