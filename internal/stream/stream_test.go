package stream

import (
	"context"
	"testing"
	"time"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ts(ms int) time.Time {
	return time.Date(2014, 3, 24, 10, 0, 0, 0, time.UTC).Add(time.Duration(ms) * time.Millisecond)
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema not rejected")
	}
	if _, err := NewSchema("a", "a"); err == nil {
		t.Error("duplicate field not rejected")
	}
	if _, err := NewSchema("a", ""); err == nil {
		t.Error("empty field name not rejected")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := testSchema(t)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if i, ok := s.Index("b"); !ok || i != 1 {
		t.Errorf("Index(b) = %d, %v", i, ok)
	}
	if _, ok := s.Index("zzz"); ok {
		t.Error("unknown field found")
	}
	if !s.Has("a") || s.Has("c") {
		t.Error("Has is wrong")
	}
	if s.FieldAt(0) != "a" {
		t.Error("FieldAt wrong")
	}
	ext, err := s.Extend("c")
	if err != nil {
		t.Fatal(err)
	}
	if ext.Len() != 3 || !ext.Has("c") {
		t.Error("Extend failed")
	}
	if _, err := s.Extend("a"); err == nil {
		t.Error("Extend with duplicate not rejected")
	}
	if !s.Equal(testSchema(t)) {
		t.Error("equal schemas not Equal")
	}
	if s.Equal(ext) {
		t.Error("different schemas Equal")
	}
	if s.String() != "(a, b)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema should panic on invalid input")
		}
	}()
	MustSchema()
}

func TestTupleGet(t *testing.T) {
	s := testSchema(t)
	tp := NewTuple(ts(0), 1, []float64{1.5, 2.5})
	if v, err := tp.Get(s, "b"); err != nil || v != 2.5 {
		t.Errorf("Get(b) = %v, %v", v, err)
	}
	if _, err := tp.Get(s, "zzz"); err == nil {
		t.Error("unknown attribute not rejected")
	}
	short := Tuple{Ts: ts(0), Fields: []float64{1}}
	if _, err := short.Get(s, "b"); err == nil {
		t.Error("short tuple not rejected")
	}
	if got := tp.MustGet(s, "a"); got != 1.5 {
		t.Errorf("MustGet = %v", got)
	}
}

func TestTupleCloneIsDeep(t *testing.T) {
	tp := NewTuple(ts(0), 1, []float64{1, 2})
	cl := tp.Clone()
	cl.Fields[0] = 99
	if tp.Fields[0] != 1 {
		t.Error("Clone shares the fields slice")
	}
}

func TestNewTupleCopies(t *testing.T) {
	src := []float64{1, 2}
	tp := NewTuple(ts(0), 1, src)
	src[0] = 99
	if tp.Fields[0] != 1 {
		t.Error("NewTuple did not copy fields")
	}
}

func TestStreamPublishSubscribe(t *testing.T) {
	s, err := New("kinect", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	var got []Tuple
	cancel := s.Subscribe(func(tp Tuple) { got = append(got, tp) })

	if err := s.Publish(NewTuple(ts(0), 0, []float64{1, 2})); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d tuples", len(got))
	}
	cancel()
	cancel() // double-cancel is harmless
	if err := s.Publish(NewTuple(ts(33), 1, []float64{3, 4})); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Error("cancelled subscriber still received tuples")
	}
	if s.Published() != 2 {
		t.Errorf("Published = %d", s.Published())
	}
}

func TestStreamSchemaMismatch(t *testing.T) {
	s, _ := New("kinect", testSchema(t))
	if err := s.Publish(NewTuple(ts(0), 0, []float64{1})); err == nil {
		t.Error("short tuple accepted")
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := New("", testSchema(t)); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New("x", nil); err == nil {
		t.Error("nil schema accepted")
	}
}

func TestSubscriberOrderPreserved(t *testing.T) {
	s, _ := New("kinect", testSchema(t))
	var order []int
	s.Subscribe(func(Tuple) { order = append(order, 1) })
	s.Subscribe(func(Tuple) { order = append(order, 2) })
	s.Subscribe(func(Tuple) { order = append(order, 3) })
	_ = s.Publish(NewTuple(ts(0), 0, []float64{0, 0}))
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("delivery order = %v", order)
	}
}

func TestUnsubscribeDuringDelivery(t *testing.T) {
	s, _ := New("kinect", testSchema(t))
	var cancel2 func()
	calls2 := 0
	s.Subscribe(func(Tuple) { cancel2() }) // first subscriber removes the second
	cancel2 = s.Subscribe(func(Tuple) { calls2++ })
	_ = s.Publish(NewTuple(ts(0), 0, []float64{0, 0}))
	// The snapshot semantics deliver this tuple to both, but the next one
	// only to the first.
	_ = s.Publish(NewTuple(ts(33), 1, []float64{0, 0}))
	if calls2 != 1 {
		t.Errorf("second subscriber called %d times, want 1", calls2)
	}
}

func TestDeriveView(t *testing.T) {
	src, _ := New("kinect", testSchema(t))
	outSchema := MustSchema("sum")
	view, err := Derive(src, "kinect_t", outSchema, func(tp Tuple) (Tuple, bool) {
		if tp.Fields[0] < 0 {
			return Tuple{}, false // drop negatives
		}
		return Tuple{Ts: tp.Ts, Seq: tp.Seq, Fields: []float64{tp.Fields[0] + tp.Fields[1]}}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	var c Collector
	c.Attach(view)

	_ = src.Publish(NewTuple(ts(0), 0, []float64{1, 2}))
	_ = src.Publish(NewTuple(ts(33), 1, []float64{-1, 2}))
	_ = src.Publish(NewTuple(ts(66), 2, []float64{3, 4}))

	got := c.Tuples()
	if len(got) != 2 {
		t.Fatalf("view produced %d tuples, want 2", len(got))
	}
	if got[0].Fields[0] != 3 || got[1].Fields[0] != 7 {
		t.Errorf("view values = %v, %v", got[0].Fields, got[1].Fields)
	}
}

func TestDeriveCancelable(t *testing.T) {
	src, _ := New("kinect", testSchema(t))
	view, cancel, err := DeriveCancelable(src, "v", src.Schema(), func(tp Tuple) (Tuple, bool) { return tp, true })
	if err != nil {
		t.Fatal(err)
	}
	var c Collector
	c.Attach(view)
	_ = src.Publish(NewTuple(ts(0), 0, []float64{1, 2}))
	cancel()
	_ = src.Publish(NewTuple(ts(33), 1, []float64{1, 2}))
	if c.Len() != 1 {
		t.Errorf("detached view still receives tuples: %d", c.Len())
	}
}

func TestDeriveValidation(t *testing.T) {
	src, _ := New("kinect", testSchema(t))
	if _, err := Derive(nil, "v", src.Schema(), func(tp Tuple) (Tuple, bool) { return tp, true }); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := Derive(src, "v", src.Schema(), nil); err == nil {
		t.Error("nil transform accepted")
	}
}

func TestFilterMap(t *testing.T) {
	src, _ := New("kinect", testSchema(t))
	f, err := Filter(src, "pos", func(tp Tuple) bool { return tp.Fields[0] > 0 })
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(f, "scaled", src.Schema(), func(tp Tuple) Tuple {
		out := tp.Clone()
		out.Fields[0] *= 10
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	var c Collector
	c.Attach(m)
	_ = src.Publish(NewTuple(ts(0), 0, []float64{-5, 0}))
	_ = src.Publish(NewTuple(ts(33), 1, []float64{5, 0}))
	got := c.Tuples()
	if len(got) != 1 || got[0].Fields[0] != 50 {
		t.Errorf("filter+map result = %+v", got)
	}
}

func TestReplay(t *testing.T) {
	src, _ := New("kinect", testSchema(t))
	var c Collector
	c.Attach(src)
	tuples := []Tuple{
		NewTuple(ts(0), 0, []float64{1, 2}),
		NewTuple(ts(33), 1, []float64{3, 4}),
	}
	if err := Replay(src, tuples); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("replayed %d tuples", c.Len())
	}
	bad := []Tuple{NewTuple(ts(0), 0, []float64{1})}
	if err := Replay(src, bad); err == nil {
		t.Error("invalid tuple replay accepted")
	}
}

func TestReplayRealtime(t *testing.T) {
	src, _ := New("kinect", testSchema(t))
	var c Collector
	c.Attach(src)
	tuples := []Tuple{
		NewTuple(ts(0), 0, []float64{1, 2}),
		NewTuple(ts(10), 1, []float64{3, 4}),
		NewTuple(ts(20), 2, []float64{5, 6}),
	}
	start := time.Now()
	if err := ReplayRealtime(context.Background(), src, tuples, 1.0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("realtime replay too fast: %v", elapsed)
	}
	if c.Len() != 3 {
		t.Errorf("replayed %d tuples", c.Len())
	}
	if err := ReplayRealtime(context.Background(), src, tuples, 0); err == nil {
		t.Error("zero speedup accepted")
	}
	// Cancellation stops playback.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ReplayRealtime(ctx, src, tuples, 1.0)
	if err == nil {
		t.Error("cancelled replay returned nil")
	}
}

func TestPump(t *testing.T) {
	src, _ := New("kinect", testSchema(t))
	var c Collector
	c.Attach(src)
	ch := make(chan Tuple, 2)
	ch <- NewTuple(ts(0), 0, []float64{1, 2})
	ch <- NewTuple(ts(33), 1, []float64{3, 4})
	close(ch)
	if err := Pump(context.Background(), src, ch); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("pumped %d tuples", c.Len())
	}
}

func TestCollectorReset(t *testing.T) {
	src, _ := New("kinect", testSchema(t))
	var c Collector
	c.Attach(src)
	_ = src.Publish(NewTuple(ts(0), 0, []float64{1, 2}))
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset did not clear")
	}
}
