// Package stream implements the data-stream substrate underneath the CEP
// engine: typed tuples with named float64 attributes, schemas, synchronous
// publish/subscribe streams, derived streams (continuous views such as the
// paper's kinect_t, §3.2) and channel-driven replay sources.
//
// The design is deliberately push-based and synchronous: a tuple published
// on a stream is handed to every subscriber before Publish returns. This
// mirrors how AnduIN evaluates its operator graph per arriving tuple and
// keeps detection latency deterministic, which the evaluation harness
// measures. Asynchrony, when needed, lives at the edges (Source pumps).
package stream

import (
	"fmt"
	"strings"
)

// Schema describes the attributes of tuples on a stream. Attribute values
// are float64 (all Kinect joint coordinates are metric values); the tuple
// timestamp is carried separately. Schemas are immutable after construction
// and safe for concurrent use.
type Schema struct {
	fields []string
	index  map[string]int
}

// NewSchema builds a schema from the given attribute names. Names must be
// non-empty and unique.
func NewSchema(fields ...string) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("stream: schema needs at least one field")
	}
	s := &Schema{
		fields: append([]string(nil), fields...),
		index:  make(map[string]int, len(fields)),
	}
	for i, f := range fields {
		if f == "" {
			return nil, fmt.Errorf("stream: empty field name at position %d", i)
		}
		if _, dup := s.index[f]; dup {
			return nil, fmt.Errorf("stream: duplicate field name %q", f)
		}
		s.index[f] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. Intended for
// package-level schema constants.
func MustSchema(fields ...string) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.fields) }

// Fields returns a copy of the attribute names in declaration order.
func (s *Schema) Fields() []string { return append([]string(nil), s.fields...) }

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// FieldAt returns the name of the attribute at position i.
func (s *Schema) FieldAt(i int) string { return s.fields[i] }

// Extend returns a new schema with the additional attributes appended.
func (s *Schema) Extend(extra ...string) (*Schema, error) {
	return NewSchema(append(s.Fields(), extra...)...)
}

// String implements fmt.Stringer.
func (s *Schema) String() string {
	return "(" + strings.Join(s.fields, ", ") + ")"
}

// Equal reports whether two schemas declare the same attributes in the same
// order.
func (s *Schema) Equal(o *Schema) bool {
	if s == o {
		return true
	}
	if s == nil || o == nil || len(s.fields) != len(o.fields) {
		return false
	}
	for i := range s.fields {
		if s.fields[i] != o.fields[i] {
			return false
		}
	}
	return true
}
