package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Stream is a named, schema-typed sequence of tuples with synchronous
// publish/subscribe fan-out. Publish delivers the tuple to every subscriber
// in subscription order before returning, giving deterministic per-tuple
// evaluation like AnduIN's operator graph.
//
// Subscribing and publishing are safe for concurrent use, but a single
// stream's tuples should be published from one goroutine at a time to
// preserve ordering.
type Stream struct {
	name   string
	schema *Schema

	mu    sync.RWMutex
	subs  map[int]func(Tuple)
	order []int
	next  int

	// handlers holds an immutable snapshot of the subscriber functions in
	// subscription order, rebuilt copy-on-write whenever the subscriber set
	// changes. Publish loads it atomically, so the per-tuple hot path does
	// not allocate and does not take the mutex.
	handlers atomic.Pointer[[]func(Tuple)]

	published atomic.Uint64
}

// New creates a stream with the given name and schema.
func New(name string, schema *Schema) (*Stream, error) {
	if name == "" {
		return nil, fmt.Errorf("stream: empty stream name")
	}
	if schema == nil {
		return nil, fmt.Errorf("stream: nil schema for stream %q", name)
	}
	return &Stream{name: name, schema: schema, subs: make(map[int]func(Tuple))}, nil
}

// Name returns the stream name.
func (s *Stream) Name() string { return s.name }

// Schema returns the stream schema.
func (s *Stream) Schema() *Schema { return s.schema }

// Published returns the number of tuples published so far.
func (s *Stream) Published() uint64 { return s.published.Load() }

// Subscribe registers fn to receive every future tuple. The returned
// function removes the subscription; calling it more than once is harmless.
func (s *Stream) Subscribe(fn func(Tuple)) (cancel func()) {
	s.mu.Lock()
	id := s.next
	s.next++
	s.subs[id] = fn
	s.order = append(s.order, id)
	s.rebuildHandlersLocked()
	s.mu.Unlock()

	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			delete(s.subs, id)
			for i, v := range s.order {
				if v == id {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
			s.rebuildHandlersLocked()
			s.mu.Unlock()
		})
	}
}

// rebuildHandlersLocked regenerates the immutable delivery snapshot. Callers
// must hold s.mu.
func (s *Stream) rebuildHandlersLocked() {
	hs := make([]func(Tuple), 0, len(s.order))
	for _, id := range s.order {
		if fn, ok := s.subs[id]; ok {
			hs = append(hs, fn)
		}
	}
	s.handlers.Store(&hs)
}

// SubscriberCount returns the current number of subscribers.
func (s *Stream) SubscriberCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.subs)
}

// Publish delivers t to all current subscribers synchronously, in
// subscription order. The tuple must have exactly as many fields as the
// schema declares.
func (s *Stream) Publish(t Tuple) error {
	if len(t.Fields) != s.schema.Len() {
		return fmt.Errorf("stream %q: tuple has %d fields, schema %s expects %d",
			s.name, len(t.Fields), s.schema, s.schema.Len())
	}
	// The snapshot is immutable, so subscribers may unsubscribe (or new ones
	// subscribe) during delivery without invalidating this iteration — the
	// change lands in the next snapshot.
	if hs := s.handlers.Load(); hs != nil {
		for _, fn := range *hs {
			fn(t)
		}
	}
	s.published.Add(1)
	return nil
}

// Derive creates a continuous view over src: for every tuple of src, f is
// evaluated; when it returns ok, the produced tuple is published on the
// derived stream. This is how the engine facade implements the paper's
// kinect_t transformation view (§3.2): "for applying all transformations,
// only a single step needs to be performed on the incoming data stream".
//
// The derived stream stays attached to src for the lifetime of the process;
// use DeriveCancelable when the view must be removable.
func Derive(src *Stream, name string, schema *Schema, f func(Tuple) (Tuple, bool)) (*Stream, error) {
	d, cancel, err := DeriveCancelable(src, name, schema, f)
	_ = cancel
	return d, err
}

// DeriveCancelable is Derive with an explicit detach function.
func DeriveCancelable(src *Stream, name string, schema *Schema, f func(Tuple) (Tuple, bool)) (*Stream, func(), error) {
	if src == nil {
		return nil, nil, fmt.Errorf("stream: Derive from nil source")
	}
	if f == nil {
		return nil, nil, fmt.Errorf("stream: Derive with nil transform")
	}
	d, err := New(name, schema)
	if err != nil {
		return nil, nil, err
	}
	cancel := src.Subscribe(func(t Tuple) {
		out, ok := f(t)
		if !ok {
			return
		}
		// An error here means the transform produced a tuple that does not
		// match the declared schema — a programming error in the view
		// definition. Surface it loudly instead of dropping data silently.
		if err := d.Publish(out); err != nil {
			panic(fmt.Sprintf("stream: view %q produced invalid tuple: %v", name, err))
		}
	})
	return d, cancel, nil
}

// Filter derives a stream containing only tuples for which pred is true.
// The schema is shared with the source.
func Filter(src *Stream, name string, pred func(Tuple) bool) (*Stream, error) {
	return Derive(src, name, src.Schema(), func(t Tuple) (Tuple, bool) {
		return t, pred(t)
	})
}

// Map derives a stream by applying a total transformation to every tuple.
func Map(src *Stream, name string, schema *Schema, f func(Tuple) Tuple) (*Stream, error) {
	return Derive(src, name, schema, func(t Tuple) (Tuple, bool) {
		return f(t), true
	})
}
