package stream

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Replay publishes the given tuples on s in order, as fast as possible.
// It is the standard driver for tests and benchmarks: event time lives in
// the tuples themselves, so detection semantics are identical to real-time
// playback.
func Replay(s *Stream, tuples []Tuple) error {
	for i, t := range tuples {
		if err := s.Publish(t); err != nil {
			return fmt.Errorf("stream: replay tuple %d: %w", i, err)
		}
	}
	return nil
}

// ReplayRealtime publishes tuples paced by their timestamps: the gap between
// consecutive tuples is reproduced as wall-clock sleep (scaled by speedup,
// e.g. 2.0 plays twice as fast). It stops early when ctx is cancelled.
// This is used by the interactive examples to emulate a live 30 Hz camera.
func ReplayRealtime(ctx context.Context, s *Stream, tuples []Tuple, speedup float64) error {
	if speedup <= 0 {
		return fmt.Errorf("stream: speedup must be positive, got %g", speedup)
	}
	for i, t := range tuples {
		if i > 0 {
			gap := t.Ts.Sub(tuples[i-1].Ts)
			if gap > 0 {
				wait := time.Duration(float64(gap) / speedup)
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(wait):
				}
			}
		}
		if err := s.Publish(t); err != nil {
			return fmt.Errorf("stream: realtime replay tuple %d: %w", i, err)
		}
	}
	return nil
}

// Pump copies tuples from ch onto the stream until ch is closed or ctx is
// cancelled. It returns the first publish error encountered.
func Pump(ctx context.Context, s *Stream, ch <-chan Tuple) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case t, ok := <-ch:
			if !ok {
				return nil
			}
			if err := s.Publish(t); err != nil {
				return err
			}
		}
	}
}

// Collector is a subscriber that records every tuple it receives. It is safe
// for concurrent use and is used pervasively in tests.
type Collector struct {
	mu     sync.Mutex
	tuples []Tuple
}

// Attach subscribes the collector to s and returns the cancel function.
func (c *Collector) Attach(s *Stream) func() {
	return s.Subscribe(func(t Tuple) {
		c.mu.Lock()
		c.tuples = append(c.tuples, t)
		c.mu.Unlock()
	})
}

// Tuples returns a snapshot of the collected tuples.
func (c *Collector) Tuples() []Tuple {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Tuple(nil), c.tuples...)
}

// Len returns the number of collected tuples.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tuples)
}

// Reset discards all collected tuples.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.tuples = nil
	c.mu.Unlock()
}
