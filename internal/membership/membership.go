// Package membership is the gateway's runtime fleet controller: the one
// place that admits membership changes — AddBackend, Drain, RemoveBackend —
// applies them through the cluster gateway one at a time, and keeps the
// auditable trail (what moved, when, how long, with what outcome) that the
// admin plane serves over HTTP.
//
// The controller adds policy and bookkeeping on top of the gateway's
// mechanics:
//
//   - serialization — operations run one at a time (the gateway also
//     serializes internally, but the controller's queue keeps the records
//     and counters consistent with the order operations actually applied);
//   - records — a bounded history of operations with durations, session
//     counts and errors, served as JSON at /migrations;
//   - HTTP plane — POST /backends/add, /backends/drain, /backends/remove
//     and the read-only GET /backends and GET /migrations, designed to hang
//     off the obs admin server via AdminConfig.Routes.
//
// The rolling-restart cycle is three controller calls per backend:
// Drain(id) live-migrates its sessions away (byte-identical state, zero
// loss), the operator redeploys the process, AddBackend(id, addr) returns
// it to the ring where the bounded-load placement refills it gradually.
package membership

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gesturecep/internal/cluster"
	"gesturecep/internal/obs"
)

// DefaultHistory is the number of operation records retained.
const DefaultHistory = 128

// Record is one applied (or refused) membership operation.
type Record struct {
	Seq      uint64        `json:"seq"`
	Op       string        `json:"op"` // "add" | "drain" | "remove"
	Backend  string        `json:"backend"`
	Addr     string        `json:"addr,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Sessions is the number of sessions live-migrated (drain only).
	Sessions int    `json:"sessions_moved"`
	Err      string `json:"err,omitempty"`
}

// Controller owns a gateway's membership plane. Safe for concurrent use;
// operations serialize on an internal queue.
type Controller struct {
	gw  *cluster.Gateway
	log *obs.Logger

	// opMu is the operation queue: one membership change applies at a time,
	// so the record trail reflects the true apply order. mu guards only the
	// record ring and stays uncontended by long-running drains.
	opMu sync.Mutex

	mu      sync.Mutex
	closed  bool
	seq     uint64
	records []Record // bounded ring, oldest first
	history int

	adds, drains, removes, failures atomic.Uint64
	sessionsMoved                   atomic.Uint64
}

// New builds a controller over gw. log may be nil (operations are then
// only visible through the gateway's own event log and the record trail).
// history <= 0 selects DefaultHistory.
func New(gw *cluster.Gateway, log *obs.Logger, history int) *Controller {
	if history <= 0 {
		history = DefaultHistory
	}
	return &Controller{gw: gw, log: log, history: history}
}

// Close refuses further operations. It does not interrupt one already
// applying — cluster.Gateway.Close does that (its shutdown aborts in-flight
// drains and waits them out).
func (c *Controller) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

// AddBackend admits a backend at runtime (see cluster.Gateway.AddBackend).
func (c *Controller) AddBackend(id, addr string) Record {
	return c.apply("add", id, addr, func() (int, error) {
		return 0, c.gw.AddBackend(id, addr)
	})
}

// Drain live-migrates every session off a backend and retires it from the
// serving path (see cluster.Gateway.Drain).
func (c *Controller) Drain(id string) Record {
	return c.apply("drain", id, "", func() (int, error) {
		return c.gw.Drain(id)
	})
}

// Remove forgets a drained, ejected or recovering backend (see
// cluster.Gateway.RemoveBackend).
func (c *Controller) Remove(id string) Record {
	return c.apply("remove", id, "", func() (int, error) {
		return 0, c.gw.RemoveBackend(id)
	})
}

func (c *Controller) apply(op, id, addr string, fn func() (int, error)) Record {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	rec := Record{Op: op, Backend: id, Addr: addr, Start: time.Now()}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	var moved int
	var err error
	if closed {
		err = fmt.Errorf("membership: controller closed")
	} else {
		moved, err = fn()
	}
	rec.Duration = time.Since(rec.Start)
	rec.Sessions = moved
	if err != nil {
		rec.Err = err.Error()
		c.failures.Add(1)
	} else {
		switch op {
		case "add":
			c.adds.Add(1)
		case "drain":
			c.drains.Add(1)
			c.sessionsMoved.Add(uint64(moved))
		case "remove":
			c.removes.Add(1)
		}
	}
	if c.log != nil {
		fields := []obs.Field{obs.F("op", op), obs.F("backend", id),
			obs.F("sessions", moved), obs.F("duration", rec.Duration.String())}
		if err != nil {
			c.log.Error("membership operation failed", append(fields, obs.F("err", err.Error()))...)
		} else {
			c.log.Info("membership operation applied", fields...)
		}
	}
	c.mu.Lock()
	c.seq++
	rec.Seq = c.seq
	c.records = append(c.records, rec)
	if len(c.records) > c.history {
		c.records = c.records[len(c.records)-c.history:]
	}
	c.mu.Unlock()
	return rec
}

// Records returns a copy of the retained operation records, oldest first.
func (c *Controller) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Record(nil), c.records...)
}

// Counters is the controller's lifetime tally.
type Counters struct {
	Adds          uint64 `json:"adds"`
	Drains        uint64 `json:"drains"`
	Removes       uint64 `json:"removes"`
	Failures      uint64 `json:"failures"`
	SessionsMoved uint64 `json:"sessions_moved"`
}

// Counters snapshots the lifetime operation tally.
func (c *Controller) Counters() Counters {
	return Counters{
		Adds:          c.adds.Load(),
		Drains:        c.drains.Load(),
		Removes:       c.removes.Load(),
		Failures:      c.failures.Load(),
		SessionsMoved: c.sessionsMoved.Load(),
	}
}

// Routes returns the membership plane's HTTP endpoints, shaped for
// obs.AdminConfig.Routes:
//
//	GET  /backends         — fleet membership (id, addr, state, incarnation,
//	                         ring load, session count)
//	POST /backends/add     — {"id": ..., "addr": ...}
//	POST /backends/drain   — {"id": ...}
//	POST /backends/remove  — {"id": ...}
//	GET  /migrations       — operation records, controller counters and the
//	                         gateway's migration stats
//	POST /backfill         — {"streams": [...], "gestures": [...],
//	                         "since_ns": ..., "until_ns": ...,
//	                         "include_detections": bool}; fans the evaluation
//	                         out across the live fleet (cluster.Backfill)
func (c *Controller) Routes() map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"/backends":        c.handleBackends,
		"/backends/add":    c.handleOp("add"),
		"/backends/drain":  c.handleOp("drain"),
		"/backends/remove": c.handleOp("remove"),
		"/migrations":      c.handleMigrations,
		"/backfill":        c.handleBackfill,
	}
}

func (c *Controller) handleBackends(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, c.gw.BackendsInfo())
}

// opRequest is the body of every membership POST.
type opRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr,omitempty"`
}

func (c *Controller) handleOp(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req opRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
			return
		}
		if req.ID == "" {
			http.Error(w, `"id" is required`, http.StatusBadRequest)
			return
		}
		var rec Record
		switch op {
		case "add":
			if req.Addr == "" {
				http.Error(w, `"addr" is required`, http.StatusBadRequest)
				return
			}
			rec = c.AddBackend(req.ID, req.Addr)
		case "drain":
			rec = c.Drain(req.ID)
		case "remove":
			rec = c.Remove(req.ID)
		}
		status := http.StatusOK
		if rec.Err != "" {
			status = http.StatusConflict
		}
		writeJSON(w, status, rec)
	}
}

// migrationsReply is the GET /migrations payload.
type migrationsReply struct {
	Records   []Record               `json:"records"`
	Counters  Counters               `json:"counters"`
	Migration cluster.MigrationStats `json:"migration"`
}

func (c *Controller) handleMigrations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	records := c.Records()
	if records == nil {
		records = []Record{}
	}
	writeJSON(w, http.StatusOK, migrationsReply{
		Records:   records,
		Counters:  c.Counters(),
		Migration: c.gw.MigrationStats(),
	})
}

// backfillRequest is the POST /backfill body. Time bounds use wire
// nanoseconds, mirroring wire.BackfillRequest.
type backfillRequest struct {
	Streams           []string `json:"streams"`
	Gestures          []string `json:"gestures,omitempty"`
	SinceNs           int64    `json:"since_ns,omitempty"`
	UntilNs           int64    `json:"until_ns,omitempty"`
	IncludeDetections bool     `json:"include_detections,omitempty"`
}

// backfillDetection is one merged detection in the reply, keyed to its
// stream — JSON-shaped because the admin plane is an operator surface, not
// the data plane.
type backfillDetection struct {
	Gesture  string    `json:"gesture"`
	QueryID  int       `json:"query_id"`
	StartNs  int64     `json:"start_ns"`
	EndNs    int64     `json:"end_ns"`
	Measures []float64 `json:"measures,omitempty"`
}

// backfillReply is the POST /backfill payload: the merge summary, the
// detections per stream when asked for, and the gateway's lifetime backfill
// stats.
type backfillReply struct {
	*cluster.BackfillResult
	DetectionTotal int                            `json:"detection_total"`
	Detections     map[string][]backfillDetection `json:"detections,omitempty"`
	Stats          cluster.BackfillStats          `json:"stats"`
}

func (c *Controller) handleBackfill(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req backfillRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if len(req.Streams) == 0 {
		http.Error(w, `"streams" is required`, http.StatusBadRequest)
		return
	}
	spec := cluster.BackfillSpec{Streams: req.Streams, Gestures: req.Gestures}
	if req.SinceNs != 0 {
		spec.Since = time.Unix(0, req.SinceNs).UTC()
	}
	if req.UntilNs != 0 {
		spec.Until = time.Unix(0, req.UntilNs).UTC()
	}
	res, err := c.gw.Backfill(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	reply := backfillReply{
		BackfillResult: res,
		DetectionTotal: res.DetectionTotal(),
		Stats:          c.gw.BackfillStats(),
	}
	if req.IncludeDetections {
		reply.Detections = make(map[string][]backfillDetection, len(res.Streams))
		for i, name := range res.Streams {
			group := make([]backfillDetection, len(res.Detections[i]))
			for j, d := range res.Detections[i] {
				group[j] = backfillDetection{
					Gesture:  d.Gesture,
					QueryID:  d.QueryID,
					StartNs:  d.Start.UnixNano(),
					EndNs:    d.End.UnixNano(),
					Measures: d.Measures,
				}
			}
			reply.Detections[name] = group
		}
	}
	writeJSON(w, http.StatusOK, reply)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
