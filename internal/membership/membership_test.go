package membership_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"gesturecep/internal/cluster"
	"gesturecep/internal/e2e"
	"gesturecep/internal/kinect"
	"gesturecep/internal/membership"
	"gesturecep/internal/obs"
	"gesturecep/internal/serve"
	"gesturecep/internal/wire"
)

// TestControllerHTTPRollingRestart drives the full rolling-restart cycle the
// way an operator would — entirely over the admin plane's HTTP endpoints:
// read /backends to pick a victim, POST /backends/drain, POST /backends/add
// to re-admit it, and audit the whole story through /migrations. Refusals
// (draining the last backend, removing a live one, bad bodies, wrong
// methods, a closed controller) must map onto the right status codes.
func TestControllerHTTPRollingRestart(t *testing.T) {
	tuples := kinect.ToTuples(e2e.PlaybackFrames(t, 7))
	h := e2e.Start(t, e2e.Options{
		Backends:      2,
		Gateway:       true,
		Serve:         serve.Config{Shards: 1, QueueDepth: 128},
		Record:        true,
		ProbeInterval: -1,
	})
	gw := h.Gateway
	ctrl := membership.New(gw, gw.Log(), 0)
	admin, err := obs.StartAdmin("127.0.0.1:0", obs.AdminConfig{Routes: ctrl.Routes()})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	get := func(path string, out any) int {
		t.Helper()
		resp, err := http.Get("http://" + admin.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if out != nil {
			if err := json.Unmarshal(body, out); err != nil {
				t.Fatalf("GET %s: %v in %q", path, err, body)
			}
		}
		return resp.StatusCode
	}
	post := func(path, body string, out any) int {
		t.Helper()
		resp, err := http.Post("http://"+admin.Addr().String()+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if out != nil {
			if err := json.Unmarshal(b, out); err != nil {
				t.Fatalf("POST %s: %v in %q", path, err, b)
			}
		}
		return resp.StatusCode
	}

	// Live sessions make the drain a real migration, not a no-op retire.
	cl := h.Dial()
	const sessions = 6
	rss := make([]*wire.RemoteSession, sessions)
	for i := range rss {
		rs, err := cl.Attach(fmt.Sprintf("op-%02d", i), wire.AttachOptions{BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		rss[i] = rs
		for _, tp := range tuples[:len(tuples)/2] {
			if err := rs.FeedTuple(tp); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := rs.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// The operator's first look: /backends lists the whole fleet live, with
	// the sessions spread across it.
	var fleet []cluster.BackendInfo
	if code := get("/backends", &fleet); code != 200 {
		t.Fatalf("GET /backends = %d, want 200", code)
	}
	if len(fleet) != 2 {
		t.Fatalf("/backends lists %d rows, want 2", len(fleet))
	}
	total := 0
	victim := ""
	victimAddr := ""
	for _, row := range fleet {
		if row.State != cluster.StateLive {
			t.Errorf("backend %s state = %q, want live", row.ID, row.State)
		}
		if row.Sessions != row.RingLoad {
			t.Errorf("backend %s sessions=%d ring_load=%d, want equal", row.ID, row.Sessions, row.RingLoad)
		}
		total += row.Sessions
		if row.Sessions > 0 && victim == "" {
			victim, victimAddr = row.ID, row.Addr
		}
	}
	if total != sessions {
		t.Errorf("/backends accounts for %d sessions, want %d", total, sessions)
	}
	if victim == "" {
		t.Fatal("no backend carries a session")
	}

	// Drain the victim over HTTP; the record must carry the moved count.
	var rec membership.Record
	if code := post("/backends/drain", `{"id":"`+victim+`"}`, &rec); code != 200 {
		t.Fatalf("POST /backends/drain = %d, want 200 (%+v)", code, rec)
	}
	if rec.Op != "drain" || rec.Backend != victim || rec.Sessions == 0 || rec.Err != "" {
		t.Errorf("drain record = %+v, want a clean drain of %s with sessions moved", rec, victim)
	}
	movedFirst := rec.Sessions

	// Draining the survivor must refuse — its sessions have nowhere to go —
	// and surface as 409 with the error in the record.
	survivor := fleet[0].ID
	if survivor == victim {
		survivor = fleet[1].ID
	}
	if code := post("/backends/drain", `{"id":"`+survivor+`"}`, &rec); code != 409 {
		t.Fatalf("draining the last backend = %d, want 409 (%+v)", code, rec)
	}
	if rec.Err == "" || rec.Sessions != 0 {
		t.Errorf("refused drain record = %+v, want an error and no sessions moved", rec)
	}

	// /backends now shows the drained/survivor split.
	if get("/backends", &fleet); len(fleet) != 2 {
		t.Fatalf("/backends lists %d rows, want 2", len(fleet))
	}
	for _, row := range fleet {
		switch row.ID {
		case victim:
			if row.State != cluster.StateDrained || row.Sessions != 0 || row.RingLoad != 0 {
				t.Errorf("drained row = %+v, want state=drained sessions=0 ring_load=0", row)
			}
		default:
			if row.State != cluster.StateLive || row.Sessions != sessions {
				t.Errorf("survivor row = %+v, want live with all %d sessions", row, sessions)
			}
		}
	}

	// Removing the live survivor must refuse; removing the drained victim is
	// legal but would forget its address — re-add it instead (the redeploy
	// leg of the rolling restart) and then drain the survivor through it.
	if code := post("/backends/remove", `{"id":"`+survivor+`"}`, &rec); code != 409 {
		t.Fatalf("removing a live backend = %d, want 409 (%+v)", code, rec)
	}
	rec = membership.Record{} // "err" is omitempty: clear the refusal before decoding a success
	if code := post("/backends/add", `{"id":"`+victim+`","addr":"`+victimAddr+`"}`, &rec); code != 200 || rec.Err != "" {
		t.Fatalf("re-adding the drained backend = %d (%+v), want 200", code, rec)
	}
	if code := post("/backends/drain", `{"id":"`+survivor+`"}`, &rec); code != 200 || rec.Sessions != sessions || rec.Err != "" {
		t.Fatalf("draining the survivor = %d (%+v), want 200 with all %d sessions moved", code, rec, sessions)
	}
	if code := post("/backends/remove", `{"id":"`+survivor+`"}`, &rec); code != 200 || rec.Err != "" {
		t.Fatalf("removing the drained survivor = %d (%+v), want 200", code, rec)
	}
	if get("/backends", &fleet); len(fleet) != 1 || fleet[0].ID != victim {
		t.Fatalf("/backends after remove lists %+v, want only %s", fleet, victim)
	}

	// The sessions survived two migrations; finish the stream and verify the
	// wire contract held end to end.
	for i, rs := range rss {
		for _, tp := range tuples[len(tuples)/2:] {
			if err := rs.FeedTuple(tp); err != nil {
				t.Fatal(err)
			}
		}
		c, err := rs.Detach()
		if err != nil {
			t.Fatalf("session %d detach: %v", i, err)
		}
		if c.In != uint64(len(tuples)) || c.Out != c.In || c.Dropped != 0 {
			t.Errorf("session %d counters = %+v, want in=out=%d dropped=0", i, c, len(tuples))
		}
	}

	// Input validation: bad JSON, a missing id, an add without addr, and
	// wrong methods on every route.
	if code := post("/backends/drain", `{`, nil); code != 400 {
		t.Errorf("bad JSON body = %d, want 400", code)
	}
	if code := post("/backends/drain", `{}`, nil); code != 400 {
		t.Errorf("missing id = %d, want 400", code)
	}
	if code := post("/backends/add", `{"id":"x"}`, nil); code != 400 {
		t.Errorf("add without addr = %d, want 400", code)
	}
	if code := post("/backends", ``, nil); code != 405 {
		t.Errorf("POST /backends = %d, want 405", code)
	}
	if code := post("/migrations", ``, nil); code != 405 {
		t.Errorf("POST /migrations = %d, want 405", code)
	}
	if code := get("/backends/drain", nil); code != 405 {
		t.Errorf("GET /backends/drain = %d, want 405", code)
	}

	// The audit trail: five records in apply order (drain, refused drain,
	// refused remove, add, drain, remove), counters tallying exactly the
	// outcomes above, and the gateway's migration stats riding along.
	var mig struct {
		Records  []membership.Record    `json:"records"`
		Counters membership.Counters    `json:"counters"`
		Stats    cluster.MigrationStats `json:"migration"`
	}
	if code := get("/migrations", &mig); code != 200 {
		t.Fatalf("GET /migrations = %d, want 200", code)
	}
	want := membership.Counters{Adds: 1, Drains: 2, Removes: 1, Failures: 2,
		SessionsMoved: uint64(movedFirst + sessions)}
	if mig.Counters != want {
		t.Errorf("counters = %+v, want %+v", mig.Counters, want)
	}
	if len(mig.Records) != 6 {
		t.Errorf("/migrations holds %d records, want 6", len(mig.Records))
	}
	for i, r := range mig.Records {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, i+1)
		}
	}
	// The refused last-backend drain attempted (and failed) one migration
	// before reverting, so the gateway's ledger shows exactly one failure.
	if mig.Stats.Migrations != uint64(movedFirst+sessions) || mig.Stats.Failed != 1 {
		t.Errorf("migration stats = %+v, want %d completed migrations and 1 failed", mig.Stats, movedFirst+sessions)
	}

	// A closed controller refuses every operation as 409 but keeps serving
	// the read-only endpoints.
	ctrl.Close()
	if code := post("/backends/drain", `{"id":"`+victim+`"}`, &rec); code != 409 {
		t.Errorf("drain after Close = %d, want 409", code)
	}
	if !strings.Contains(rec.Err, "controller closed") {
		t.Errorf("closed-controller record err = %q, want the closed refusal", rec.Err)
	}
	if code := get("/backends", &fleet); code != 200 {
		t.Errorf("GET /backends after Close = %d, want 200", code)
	}
}

// TestControllerHistoryBound pins the record ring: with history=2 only the
// newest two records survive, while seq and counters keep the full tally.
func TestControllerHistoryBound(t *testing.T) {
	h := e2e.Start(t, e2e.Options{
		Backends:      1,
		Gateway:       true,
		Serve:         serve.Config{Shards: 1},
		ProbeInterval: -1,
	})
	ctrl := membership.New(h.Gateway, nil, 2)
	for i := 0; i < 5; i++ {
		if rec := ctrl.Drain("no-such-backend"); rec.Err == "" {
			t.Fatal("draining an unknown backend succeeded")
		}
	}
	recs := ctrl.Records()
	if len(recs) != 2 {
		t.Fatalf("history holds %d records, want 2", len(recs))
	}
	if recs[0].Seq != 4 || recs[1].Seq != 5 {
		t.Errorf("retained seqs = %d, %d; want 4, 5", recs[0].Seq, recs[1].Seq)
	}
	if c := ctrl.Counters(); c.Failures != 5 {
		t.Errorf("failures = %d, want 5", c.Failures)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(recs[0]); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"seq"`, `"op"`, `"backend"`, `"duration_ns"`, `"sessions_moved"`, `"err"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("record JSON missing %s: %s", key, buf.String())
		}
	}
}

// TestBackfillEndpoint drives a fleet backfill entirely over the admin
// plane: record sessions through the gateway, POST /backfill, and require
// the summary and (when asked) the per-stream detections to come back.
func TestBackfillEndpoint(t *testing.T) {
	h := e2e.Start(t, e2e.Options{
		Backends:      3,
		Gateway:       true,
		Record:        true,
		Serve:         serve.Config{Shards: 1},
		ProbeInterval: -1,
	})
	ctrl := membership.New(h.Gateway, nil, 0)
	admin, err := obs.StartAdmin("127.0.0.1:0", obs.AdminConfig{Routes: ctrl.Routes()})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	post := func(body string, out any) int {
		t.Helper()
		resp, err := http.Post("http://"+admin.Addr().String()+"/backfill", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if out != nil {
			if err := json.Unmarshal(b, out); err != nil {
				t.Fatalf("POST /backfill: %v in %q", err, b)
			}
		}
		return resp.StatusCode
	}

	cl := h.Dial()
	streams := []string{"bf-a", "bf-b", "bf-c"}
	for i, name := range streams {
		rs, err := cl.Attach(name, wire.AttachOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.FeedFrames(e2e.PlaybackFrames(t, int64(11+i))); err != nil {
			t.Fatal(err)
		}
		if _, err := rs.Detach(); err != nil {
			t.Fatal(err)
		}
	}

	var reply struct {
		Streams        []string                    `json:"streams"`
		Missing        []string                    `json:"missing"`
		Found          int                         `json:"found"`
		Records        uint64                      `json:"records"`
		Tuples         uint64                      `json:"tuples"`
		DetectionTotal int                         `json:"detection_total"`
		Detections     map[string][]map[string]any `json:"detections"`
		Stats          map[string]any              `json:"stats"`
	}
	body := `{"streams": ["bf-a", "bf-b", "bf-c"], "include_detections": true}`
	if code := post(body, &reply); code != 200 {
		t.Fatalf("POST /backfill = %d, want 200", code)
	}
	if reply.Found != 3 || len(reply.Missing) != 0 {
		t.Fatalf("found %d, missing %v; want all 3 streams located", reply.Found, reply.Missing)
	}
	if reply.DetectionTotal == 0 || reply.Tuples == 0 {
		t.Fatalf("empty reply: %+v", reply)
	}
	total := 0
	for _, name := range streams {
		group, ok := reply.Detections[name]
		if !ok {
			t.Errorf("reply lacks detections entry for %q", name)
			continue
		}
		total += len(group)
		for _, d := range group {
			if d["gesture"] != "swipe_right" {
				t.Errorf("stream %q detection gesture = %v", name, d["gesture"])
			}
		}
	}
	if total != reply.DetectionTotal {
		t.Errorf("detection groups total %d, summary says %d", total, reply.DetectionTotal)
	}

	// Without include_detections the groups stay off the wire.
	reply.Detections = nil
	if code := post(`{"streams": ["bf-a"]}`, &reply); code != 200 {
		t.Fatalf("POST /backfill = %d, want 200", code)
	}
	if reply.Detections != nil {
		t.Error("detections included without include_detections")
	}

	// Bad bodies and methods map to the right statuses.
	if code := post(`{"streams": []}`, nil); code != http.StatusBadRequest {
		t.Errorf("empty streams = %d, want 400", code)
	}
	if code := post(`{`, nil); code != http.StatusBadRequest {
		t.Errorf("truncated body = %d, want 400", code)
	}
	resp, err := http.Get("http://" + admin.Addr().String() + "/backfill")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /backfill = %d, want 405", resp.StatusCode)
	}
}
