// Package geom provides the geometric substrate used throughout the gesture
// learning pipeline: 3D vectors, multi-dimensional bounding rectangles
// ("windows" in the paper's terminology), rotation matrices, Roll-Pitch-Yaw
// angles in an East-North-Up reference frame, and distance metrics.
//
// Units follow the Kinect convention: millimetres for positions, radians for
// angles.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in 3D space. Coordinates are in the Kinect
// camera frame unless stated otherwise: X right, Y up, Z away from the
// camera (towards the user).
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Mul returns the component-wise product of v and w.
func (v Vec3) Mul(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// NormSq returns the squared Euclidean length of v.
func (v Vec3) NormSq() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w. This is the distance
// the paper uses both for the forearm-length scale factor (§3.2) and as the
// default metric for distance-based sampling (§3.3.1).
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// DistSq returns the squared Euclidean distance between v and w.
func (v Vec3) DistSq(w Vec3) float64 { return v.Sub(w).NormSq() }

// Unit returns v normalized to length 1. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		X: v.X + (w.X-v.X)*t,
		Y: v.Y + (w.Y-v.Y)*t,
		Z: v.Z + (w.Z-v.Z)*t,
	}
}

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// IsZero reports whether all components are exactly zero.
func (v Vec3) IsZero() bool { return v.X == 0 && v.Y == 0 && v.Z == 0 }

// IsFinite reports whether all components are finite numbers.
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// ApproxEqual reports whether v and w are equal within eps per component.
func (v Vec3) ApproxEqual(w Vec3, eps float64) bool {
	return math.Abs(v.X-w.X) <= eps && math.Abs(v.Y-w.Y) <= eps && math.Abs(v.Z-w.Z) <= eps
}

// Coord returns the i-th coordinate (0 = X, 1 = Y, 2 = Z).
func (v Vec3) Coord(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	case 2:
		return v.Z
	}
	panic(fmt.Sprintf("geom: coordinate index %d out of range", i))
}

// SetCoord returns a copy of v with the i-th coordinate set to x.
func (v Vec3) SetCoord(i int, x float64) Vec3 {
	switch i {
	case 0:
		v.X = x
	case 1:
		v.Y = x
	case 2:
		v.Z = x
	default:
		panic(fmt.Sprintf("geom: coordinate index %d out of range", i))
	}
	return v
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.2f, %.2f, %.2f)", v.X, v.Y, v.Z)
}

// Midpoint returns the point halfway between v and w.
func (v Vec3) Midpoint(w Vec3) Vec3 { return v.Add(w).Scale(0.5) }

// PathLength returns the total polyline length of the given points, i.e. the
// sum of segment distances. It is the "total deviation observed" over a
// gesture path used to derive relative distance thresholds (§3.3.1).
func PathLength(pts []Vec3) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += pts[i].Dist(pts[i-1])
	}
	return total
}

// Centroid returns the arithmetic mean of the given points. It returns the
// zero vector for an empty slice.
func Centroid(pts []Vec3) Vec3 {
	if len(pts) == 0 {
		return Vec3{}
	}
	var sum Vec3
	for _, p := range pts {
		sum = sum.Add(p)
	}
	return sum.Scale(1 / float64(len(pts)))
}
