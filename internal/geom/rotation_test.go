package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	v := V(1, 2, 3)
	if got := Identity().Apply(v); got != v {
		t.Errorf("Identity.Apply = %v", got)
	}
}

func TestRotZ90(t *testing.T) {
	got := RotZ(math.Pi / 2).Apply(V(1, 0, 0))
	if !got.ApproxEqual(V(0, 1, 0), 1e-12) {
		t.Errorf("RotZ(90°)·x = %v, want y", got)
	}
}

func TestRotX90(t *testing.T) {
	got := RotX(math.Pi / 2).Apply(V(0, 1, 0))
	if !got.ApproxEqual(V(0, 0, 1), 1e-12) {
		t.Errorf("RotX(90°)·y = %v, want z", got)
	}
}

func TestRotY90(t *testing.T) {
	got := RotY(math.Pi / 2).Apply(V(0, 0, 1))
	if !got.ApproxEqual(V(1, 0, 0), 1e-12) {
		t.Errorf("RotY(90°)·z = %v, want x", got)
	}
}

func TestTransposeIsInverse(t *testing.T) {
	r := RotZ(0.7).Mul(RotY(-0.3)).Mul(RotX(1.1))
	if !r.Mul(r.Transpose()).ApproxEqual(Identity(), 1e-12) {
		t.Error("R·Rᵀ != I")
	}
}

func TestMatMulAssociativity(t *testing.T) {
	a, b, c := RotX(0.3), RotY(0.5), RotZ(0.9)
	left := a.Mul(b).Mul(c)
	right := a.Mul(b.Mul(c))
	if !left.ApproxEqual(right, 1e-12) {
		t.Error("matrix multiplication not associative")
	}
}

func TestRPYRoundTrip(t *testing.T) {
	cases := []RPY{
		{0, 0, 0},
		{0.1, 0.2, 0.3},
		{-1.2, 0.7, 2.9},
		{0, 0, math.Pi / 2},
		{math.Pi / 4, -math.Pi / 4, -math.Pi / 2},
	}
	for _, want := range cases {
		got := RPYFromMatrix(want.Matrix())
		if math.Abs(AngleDiff(got.Roll, want.Roll)) > 1e-9 ||
			math.Abs(AngleDiff(got.Pitch, want.Pitch)) > 1e-9 ||
			math.Abs(AngleDiff(got.Yaw, want.Yaw)) > 1e-9 {
			t.Errorf("round trip %v -> %v", want, got)
		}
	}
}

func TestRPYGimbalLock(t *testing.T) {
	// pitch = 90° collapses roll/yaw into one rotation; the extraction
	// convention puts everything into yaw.
	in := RPY{Roll: 0.4, Pitch: math.Pi / 2, Yaw: 0.9}
	out := RPYFromMatrix(in.Matrix())
	if math.Abs(out.Pitch-math.Pi/2) > 1e-9 {
		t.Errorf("pitch = %v, want π/2", out.Pitch)
	}
	if out.Roll != 0 {
		t.Errorf("roll = %v, want 0 in gimbal lock", out.Roll)
	}
	// The combined rotation must still reproduce the same matrix.
	if !out.Matrix().ApproxEqual(in.Matrix(), 1e-9) {
		t.Error("gimbal-lock extraction does not reproduce the matrix")
	}
}

func TestYawDirectionRoundTrip(t *testing.T) {
	for _, yaw := range []float64{0, 0.5, -0.5, math.Pi / 2, 3, -3} {
		dir := DirectionFromYaw(yaw)
		if math.Abs(dir.Norm()-1) > 1e-12 {
			t.Errorf("direction not unit length for yaw %v", yaw)
		}
		got := YawFromDirection(dir)
		if math.Abs(AngleDiff(got, yaw)) > 1e-9 {
			t.Errorf("yaw round trip %v -> %v", yaw, got)
		}
	}
	// Facing the camera (viewing direction -Z) is yaw 0.
	if got := YawFromDirection(V(0, 0, -1)); math.Abs(got) > 1e-12 {
		t.Errorf("facing camera yaw = %v, want 0", got)
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi}, // -π maps to +π in (-π, π]
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-0.5, -0.5},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDegreesRadians(t *testing.T) {
	if Degrees(math.Pi) != 180 {
		t.Error("Degrees(π) != 180")
	}
	if math.Abs(Radians(90)-math.Pi/2) > 1e-12 {
		t.Error("Radians(90) != π/2")
	}
}

// Property: rotations preserve vector length.
func TestQuickRotationPreservesNorm(t *testing.T) {
	f := func(roll, pitch, yaw, x, y, z float64) bool {
		a := RPY{clampAngle(roll), clampAngle(pitch), clampAngle(yaw)}
		v := clampVec(V(x, y, z))
		got := a.Matrix().Apply(v)
		return math.Abs(got.Norm()-v.Norm()) < 1e-6*math.Max(1, v.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: YawRotationY transpose undoes the rotation.
func TestQuickYawRotationInverse(t *testing.T) {
	f := func(yaw, x, y, z float64) bool {
		r := YawRotationY(clampAngle(yaw))
		v := clampVec(V(x, y, z))
		back := r.Transpose().Apply(r.Apply(v))
		return back.ApproxEqual(v, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampAngle(a float64) float64 {
	if math.IsNaN(a) || math.IsInf(a, 0) {
		return 0
	}
	return math.Mod(a, math.Pi)
}
