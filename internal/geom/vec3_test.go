package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecBasicOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, -5, 6)

	if got := a.Add(b); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
	if got := a.Mul(b); got != V(4, -10, 18) {
		t.Errorf("Mul = %v", got)
	}
}

func TestVecCross(t *testing.T) {
	x, y, z := V(1, 0, 0), V(0, 1, 0), V(0, 0, 1)
	if got := x.Cross(y); !got.ApproxEqual(z, 1e-12) {
		t.Errorf("x×y = %v, want z", got)
	}
	if got := y.Cross(z); !got.ApproxEqual(x, 1e-12) {
		t.Errorf("y×z = %v, want x", got)
	}
	if got := z.Cross(x); !got.ApproxEqual(y, 1e-12) {
		t.Errorf("z×x = %v, want y", got)
	}
}

func TestVecNormDist(t *testing.T) {
	v := V(3, 4, 0)
	if v.Norm() != 5 {
		t.Errorf("Norm = %v, want 5", v.Norm())
	}
	if v.NormSq() != 25 {
		t.Errorf("NormSq = %v, want 25", v.NormSq())
	}
	if d := V(1, 1, 1).Dist(V(1, 1, 1)); d != 0 {
		t.Errorf("Dist to self = %v", d)
	}
	if d := V(0, 0, 0).Dist(V(0, 3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
}

func TestVecUnit(t *testing.T) {
	u := V(0, 0, 10).Unit()
	if !u.ApproxEqual(V(0, 0, 1), 1e-12) {
		t.Errorf("Unit = %v", u)
	}
	if !V(0, 0, 0).Unit().IsZero() {
		t.Error("Unit of zero vector should stay zero")
	}
}

func TestVecLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(10, -10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); !got.ApproxEqual(V(5, -5, 10), 1e-12) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestVecCoordAccess(t *testing.T) {
	v := V(7, 8, 9)
	for i, want := range []float64{7, 8, 9} {
		if got := v.Coord(i); got != want {
			t.Errorf("Coord(%d) = %v, want %v", i, got, want)
		}
	}
	if got := v.SetCoord(1, 42); got != V(7, 42, 9) {
		t.Errorf("SetCoord = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Coord(3) should panic")
		}
	}()
	v.Coord(3)
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestPathLength(t *testing.T) {
	if got := PathLength(nil); got != 0 {
		t.Errorf("PathLength(nil) = %v", got)
	}
	if got := PathLength([]Vec3{V(0, 0, 0)}); got != 0 {
		t.Errorf("PathLength(single) = %v", got)
	}
	pts := []Vec3{V(0, 0, 0), V(3, 4, 0), V(3, 4, 12)}
	if got := PathLength(pts); got != 17 {
		t.Errorf("PathLength = %v, want 17", got)
	}
}

func TestCentroid(t *testing.T) {
	if !Centroid(nil).IsZero() {
		t.Error("Centroid(nil) should be zero")
	}
	pts := []Vec3{V(0, 0, 0), V(2, 4, 6)}
	if got := Centroid(pts); !got.ApproxEqual(V(1, 2, 3), 1e-12) {
		t.Errorf("Centroid = %v", got)
	}
}

func TestMidpoint(t *testing.T) {
	got := V(0, 0, 0).Midpoint(V(2, 2, 2))
	if !got.ApproxEqual(V(1, 1, 1), 1e-12) {
		t.Errorf("Midpoint = %v", got)
	}
}

// Property: triangle inequality for Dist.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		a, b, c := clampVec(V(ax, ay, az)), clampVec(V(bx, by, bz)), clampVec(V(cx, cy, cz))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sub then Add round-trips.
func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := clampVec(V(ax, ay, az)), clampVec(V(bx, by, bz))
		return a.Sub(b).Add(b).ApproxEqual(a, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: unit vectors have length 1 (unless zero).
func TestQuickUnitLength(t *testing.T) {
	f := func(x, y, z float64) bool {
		v := clampVec(V(x, y, z))
		if v.IsZero() {
			return true
		}
		return math.Abs(v.Unit().Norm()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampVec maps arbitrary quick-generated floats into a sane finite range so
// properties are not voided by Inf/NaN overflow artifacts.
func clampVec(v Vec3) Vec3 {
	c := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 1e6)
	}
	return V(c(v.X), c(v.Y), c(v.Z))
}
