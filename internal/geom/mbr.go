package geom

import (
	"fmt"
	"math"
	"strings"
)

// MBR is a minimal bounding rectangle in an arbitrary number of dimensions.
// The paper expresses each gesture pose as a multi-dimensional rectangle
// ("window", §3.3) with a center point determined by the involved joint
// coordinates and a width per dimension representing allowed deviations;
// MBRs over cluster centroids of several samples form the final pose
// description (§3.3.2).
//
// An MBR is stored as inclusive [Min, Max] bounds per dimension. The zero
// value is an empty MBR with no dimensions; use NewMBR or FromPoint to
// construct one.
type MBR struct {
	Min []float64
	Max []float64
}

// NewMBR constructs an MBR with the given inclusive bounds. It returns an
// error if the slices differ in length or any min exceeds the corresponding
// max.
func NewMBR(min, max []float64) (MBR, error) {
	if len(min) != len(max) {
		return MBR{}, fmt.Errorf("geom: MBR bounds length mismatch: %d vs %d", len(min), len(max))
	}
	for i := range min {
		if min[i] > max[i] {
			return MBR{}, fmt.Errorf("geom: MBR dimension %d inverted: min %g > max %g", i, min[i], max[i])
		}
	}
	m := MBR{Min: append([]float64(nil), min...), Max: append([]float64(nil), max...)}
	return m, nil
}

// FromPoint returns a degenerate MBR containing exactly the given point.
func FromPoint(p []float64) MBR {
	return MBR{
		Min: append([]float64(nil), p...),
		Max: append([]float64(nil), p...),
	}
}

// FromCenterWidth constructs an MBR from a center point and per-dimension
// full widths, matching how windows appear in generated queries:
// abs(coord - center) < width/2 in each dimension.
func FromCenterWidth(center, width []float64) (MBR, error) {
	if len(center) != len(width) {
		return MBR{}, fmt.Errorf("geom: center/width length mismatch: %d vs %d", len(center), len(width))
	}
	min := make([]float64, len(center))
	max := make([]float64, len(center))
	for i := range center {
		if width[i] < 0 {
			return MBR{}, fmt.Errorf("geom: negative width %g in dimension %d", width[i], i)
		}
		min[i] = center[i] - width[i]/2
		max[i] = center[i] + width[i]/2
	}
	return MBR{Min: min, Max: max}, nil
}

// Dims returns the number of dimensions.
func (m MBR) Dims() int { return len(m.Min) }

// IsEmpty reports whether the MBR has no dimensions.
func (m MBR) IsEmpty() bool { return len(m.Min) == 0 }

// Clone returns a deep copy of m.
func (m MBR) Clone() MBR {
	return MBR{
		Min: append([]float64(nil), m.Min...),
		Max: append([]float64(nil), m.Max...),
	}
}

// Center returns the center point of the MBR.
func (m MBR) Center() []float64 {
	c := make([]float64, len(m.Min))
	for i := range m.Min {
		c[i] = (m.Min[i] + m.Max[i]) / 2
	}
	return c
}

// Width returns the full extent per dimension (Max - Min).
func (m MBR) Width() []float64 {
	w := make([]float64, len(m.Min))
	for i := range m.Min {
		w[i] = m.Max[i] - m.Min[i]
	}
	return w
}

// HalfWidth returns half the extent per dimension, i.e. the deviation bound
// that appears in generated range predicates.
func (m MBR) HalfWidth() []float64 {
	w := m.Width()
	for i := range w {
		w[i] /= 2
	}
	return w
}

// Volume returns the product of all widths. Degenerate dimensions contribute
// factor 0.
func (m MBR) Volume() float64 {
	if m.IsEmpty() {
		return 0
	}
	vol := 1.0
	for i := range m.Min {
		vol *= m.Max[i] - m.Min[i]
	}
	return vol
}

// Margin returns the sum of all widths (the L1 analogue of volume, useful
// when many dimensions are degenerate).
func (m MBR) Margin() float64 {
	var sum float64
	for i := range m.Min {
		sum += m.Max[i] - m.Min[i]
	}
	return sum
}

// Contains reports whether the point p lies inside the MBR (inclusive).
func (m MBR) Contains(p []float64) bool {
	if len(p) != len(m.Min) {
		return false
	}
	for i := range p {
		if p[i] < m.Min[i] || p[i] > m.Max[i] {
			return false
		}
	}
	return true
}

// ContainsMBR reports whether o lies fully inside m (inclusive).
func (m MBR) ContainsMBR(o MBR) bool {
	if len(o.Min) != len(m.Min) {
		return false
	}
	for i := range m.Min {
		if o.Min[i] < m.Min[i] || o.Max[i] > m.Max[i] {
			return false
		}
	}
	return true
}

// Extend grows m in place so it contains the point p. It returns an error if
// dimensions mismatch (an empty MBR adopts p's dimensionality).
func (m *MBR) Extend(p []float64) error {
	if m.IsEmpty() {
		*m = FromPoint(p)
		return nil
	}
	if len(p) != len(m.Min) {
		return fmt.Errorf("geom: Extend dimension mismatch: MBR has %d, point has %d", len(m.Min), len(p))
	}
	for i := range p {
		if p[i] < m.Min[i] {
			m.Min[i] = p[i]
		}
		if p[i] > m.Max[i] {
			m.Max[i] = p[i]
		}
	}
	return nil
}

// Union returns the smallest MBR containing both m and o. An empty operand
// yields a clone of the other.
func (m MBR) Union(o MBR) (MBR, error) {
	if m.IsEmpty() {
		return o.Clone(), nil
	}
	if o.IsEmpty() {
		return m.Clone(), nil
	}
	if len(m.Min) != len(o.Min) {
		return MBR{}, fmt.Errorf("geom: Union dimension mismatch: %d vs %d", len(m.Min), len(o.Min))
	}
	u := m.Clone()
	for i := range u.Min {
		u.Min[i] = math.Min(u.Min[i], o.Min[i])
		u.Max[i] = math.Max(u.Max[i], o.Max[i])
	}
	return u, nil
}

// Intersects reports whether m and o overlap in every dimension (touching
// boundaries count as intersecting). MBRs of different dimensionality never
// intersect.
func (m MBR) Intersects(o MBR) bool {
	if m.IsEmpty() || o.IsEmpty() || len(m.Min) != len(o.Min) {
		return false
	}
	for i := range m.Min {
		if m.Max[i] < o.Min[i] || o.Max[i] < m.Min[i] {
			return false
		}
	}
	return true
}

// Intersection returns the overlapping region of m and o and whether it is
// non-empty.
func (m MBR) Intersection(o MBR) (MBR, bool) {
	if !m.Intersects(o) {
		return MBR{}, false
	}
	r := MBR{Min: make([]float64, len(m.Min)), Max: make([]float64, len(m.Min))}
	for i := range m.Min {
		r.Min[i] = math.Max(m.Min[i], o.Min[i])
		r.Max[i] = math.Min(m.Max[i], o.Max[i])
	}
	return r, true
}

// OverlapFraction returns the volume of the intersection divided by the
// volume of the smaller operand. It is the overlap measure used by the
// validation step (§3.3.3) to flag the "overlapping problem". For MBRs with
// degenerate (zero-width) dimensions the margin ratio is used instead so the
// result stays meaningful.
func (m MBR) OverlapFraction(o MBR) float64 {
	inter, ok := m.Intersection(o)
	if !ok {
		return 0
	}
	mv, ov, iv := m.Volume(), o.Volume(), inter.Volume()
	smaller := math.Min(mv, ov)
	if smaller > 0 {
		return iv / smaller
	}
	// Fall back to margins when a dimension is degenerate.
	sm := math.Min(m.Margin(), o.Margin())
	if sm == 0 {
		return 1 // both degenerate and touching: treat as full overlap
	}
	return inter.Margin() / sm
}

// ScaleWidth returns a copy of m whose width in every dimension is
// multiplied by factor, keeping the center fixed. This is the
// generalization scaling step of §3.3.2. factor must be non-negative.
func (m MBR) ScaleWidth(factor float64) (MBR, error) {
	if factor < 0 {
		return MBR{}, fmt.Errorf("geom: negative scale factor %g", factor)
	}
	c := m.Center()
	w := m.Width()
	for i := range w {
		w[i] *= factor
	}
	return FromCenterWidth(c, w)
}

// EnsureMinWidth returns a copy of m where every dimension is at least
// minWidth wide, growing symmetrically around the center. The learner uses
// this so that degenerate windows (from identical samples) still tolerate
// sensor jitter.
func (m MBR) EnsureMinWidth(minWidth float64) MBR {
	c := m.Center()
	w := m.Width()
	for i := range w {
		if w[i] < minWidth {
			w[i] = minWidth
		}
	}
	r, err := FromCenterWidth(c, w)
	if err != nil {
		// Unreachable: widths are non-negative by construction.
		panic(err)
	}
	return r
}

// DropDims returns a copy of m with the listed dimension indices removed.
// Indices must be valid and strictly increasing. Used by the coordinate
// elimination optimization (§3.3.3).
func (m MBR) DropDims(drop []int) (MBR, error) {
	keep := make([]bool, len(m.Min))
	for i := range keep {
		keep[i] = true
	}
	last := -1
	for _, d := range drop {
		if d <= last {
			return MBR{}, fmt.Errorf("geom: DropDims indices must be strictly increasing, got %v", drop)
		}
		if d < 0 || d >= len(m.Min) {
			return MBR{}, fmt.Errorf("geom: DropDims index %d out of range [0,%d)", d, len(m.Min))
		}
		keep[d] = false
		last = d
	}
	var min, max []float64
	for i := range m.Min {
		if keep[i] {
			min = append(min, m.Min[i])
			max = append(max, m.Max[i])
		}
	}
	return MBR{Min: min, Max: max}, nil
}

// ApproxEqual reports whether m and o have the same bounds within eps.
func (m MBR) ApproxEqual(o MBR, eps float64) bool {
	if len(m.Min) != len(o.Min) {
		return false
	}
	for i := range m.Min {
		if math.Abs(m.Min[i]-o.Min[i]) > eps || math.Abs(m.Max[i]-o.Max[i]) > eps {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer, rendering center±halfwidth per dimension.
func (m MBR) String() string {
	var b strings.Builder
	b.WriteByte('[')
	c := m.Center()
	h := m.HalfWidth()
	for i := range c {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.1f±%.1f", c[i], h[i])
	}
	b.WriteByte(']')
	return b.String()
}

// MBRFromPoints returns the minimal bounding rectangle of the given points.
// All points must share the same dimensionality.
func MBRFromPoints(pts [][]float64) (MBR, error) {
	var m MBR
	for _, p := range pts {
		if err := m.Extend(p); err != nil {
			return MBR{}, err
		}
	}
	return m, nil
}

// MBRFromVec3 returns the 3-dimensional MBR of the given points.
func MBRFromVec3(pts []Vec3) MBR {
	var m MBR
	for _, p := range pts {
		// Extend never fails for consistent 3D input.
		_ = m.Extend([]float64{p.X, p.Y, p.Z})
	}
	return m
}
