package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func mustMBR(t *testing.T, min, max []float64) MBR {
	t.Helper()
	m, err := NewMBR(min, max)
	if err != nil {
		t.Fatalf("NewMBR: %v", err)
	}
	return m
}

func TestNewMBRValidation(t *testing.T) {
	if _, err := NewMBR([]float64{0, 0}, []float64{1}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := NewMBR([]float64{2}, []float64{1}); err == nil {
		t.Error("inverted bounds not rejected")
	}
	m := mustMBR(t, []float64{0, -1}, []float64{1, 1})
	if m.Dims() != 2 {
		t.Errorf("Dims = %d", m.Dims())
	}
}

func TestFromCenterWidth(t *testing.T) {
	m, err := FromCenterWidth([]float64{10, 20}, []float64{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.Min[0] != 8 || m.Max[0] != 12 || m.Min[1] != 20 || m.Max[1] != 20 {
		t.Errorf("bounds = %v..%v", m.Min, m.Max)
	}
	if _, err := FromCenterWidth([]float64{0}, []float64{-1}); err == nil {
		t.Error("negative width not rejected")
	}
	if _, err := FromCenterWidth([]float64{0, 0}, []float64{1}); err == nil {
		t.Error("length mismatch not rejected")
	}
}

func TestMBRCenterWidthVolume(t *testing.T) {
	m := mustMBR(t, []float64{0, 10}, []float64{4, 20})
	c := m.Center()
	if c[0] != 2 || c[1] != 15 {
		t.Errorf("Center = %v", c)
	}
	w := m.Width()
	if w[0] != 4 || w[1] != 10 {
		t.Errorf("Width = %v", w)
	}
	h := m.HalfWidth()
	if h[0] != 2 || h[1] != 5 {
		t.Errorf("HalfWidth = %v", h)
	}
	if m.Volume() != 40 {
		t.Errorf("Volume = %v", m.Volume())
	}
	if m.Margin() != 14 {
		t.Errorf("Margin = %v", m.Margin())
	}
	if (MBR{}).Volume() != 0 {
		t.Error("empty MBR volume should be 0")
	}
}

func TestMBRContains(t *testing.T) {
	m := mustMBR(t, []float64{0, 0}, []float64{10, 10})
	cases := []struct {
		p    []float64
		want bool
	}{
		{[]float64{5, 5}, true},
		{[]float64{0, 0}, true},   // inclusive
		{[]float64{10, 10}, true}, // inclusive
		{[]float64{-0.1, 5}, false},
		{[]float64{5, 10.1}, false},
		{[]float64{5}, false}, // dim mismatch
	}
	for _, c := range cases {
		if got := m.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestMBRExtendUnion(t *testing.T) {
	var m MBR
	if err := m.Extend([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Extend([]float64{-1, 5}); err != nil {
		t.Fatal(err)
	}
	if m.Min[0] != -1 || m.Max[0] != 1 || m.Min[1] != 2 || m.Max[1] != 5 {
		t.Errorf("after extends: %v..%v", m.Min, m.Max)
	}
	if err := m.Extend([]float64{0}); err == nil {
		t.Error("dim mismatch not rejected")
	}

	o := mustMBR(t, []float64{10, 10}, []float64{11, 11})
	u, err := m.Union(o)
	if err != nil {
		t.Fatal(err)
	}
	if !u.ContainsMBR(m) || !u.ContainsMBR(o) {
		t.Error("union does not contain operands")
	}
	if _, err := m.Union(mustMBR(t, []float64{0}, []float64{1})); err == nil {
		t.Error("union dim mismatch not rejected")
	}
	// Union with empty returns clone of other.
	u2, err := (MBR{}).Union(m)
	if err != nil || !u2.ApproxEqual(m, 0) {
		t.Errorf("union with empty = %v, err %v", u2, err)
	}
}

func TestMBRIntersection(t *testing.T) {
	a := mustMBR(t, []float64{0, 0}, []float64{10, 10})
	b := mustMBR(t, []float64{5, 5}, []float64{15, 15})
	c := mustMBR(t, []float64{11, 11}, []float64{12, 12})

	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(c) {
		t.Error("a should not intersect c")
	}
	inter, ok := a.Intersection(b)
	if !ok {
		t.Fatal("no intersection")
	}
	if inter.Min[0] != 5 || inter.Max[0] != 10 {
		t.Errorf("intersection = %v..%v", inter.Min, inter.Max)
	}
	if _, ok := a.Intersection(c); ok {
		t.Error("disjoint intersection reported")
	}
	// Touching boundaries intersect.
	d := mustMBR(t, []float64{10, 0}, []float64{20, 10})
	if !a.Intersects(d) {
		t.Error("touching MBRs should intersect")
	}
}

func TestMBROverlapFraction(t *testing.T) {
	a := mustMBR(t, []float64{0, 0}, []float64{10, 10})
	b := mustMBR(t, []float64{0, 0}, []float64{5, 10})
	if f := a.OverlapFraction(b); math.Abs(f-1) > 1e-12 {
		t.Errorf("contained overlap fraction = %v, want 1", f)
	}
	c := mustMBR(t, []float64{5, 0}, []float64{15, 10})
	if f := a.OverlapFraction(c); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("half overlap fraction = %v, want 0.5", f)
	}
	far := mustMBR(t, []float64{100, 100}, []float64{101, 101})
	if f := a.OverlapFraction(far); f != 0 {
		t.Errorf("disjoint overlap fraction = %v, want 0", f)
	}
	// Degenerate dimension: fall back to margins.
	d1 := mustMBR(t, []float64{0, 5}, []float64{10, 5})
	d2 := mustMBR(t, []float64{5, 5}, []float64{15, 5})
	if f := d1.OverlapFraction(d2); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("degenerate overlap fraction = %v, want 0.5", f)
	}
}

func TestMBRScaleWidth(t *testing.T) {
	m := mustMBR(t, []float64{0, 0}, []float64{10, 20})
	s, err := m.ScaleWidth(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Min[0] != -5 || s.Max[0] != 15 || s.Min[1] != -10 || s.Max[1] != 30 {
		t.Errorf("scaled = %v..%v", s.Min, s.Max)
	}
	cs, ss := m.Center(), s.Center()
	for i := range cs {
		if math.Abs(cs[i]-ss[i]) > 1e-12 {
			t.Error("scaling moved the center")
		}
	}
	if _, err := m.ScaleWidth(-1); err == nil {
		t.Error("negative factor not rejected")
	}
}

func TestMBREnsureMinWidth(t *testing.T) {
	m := FromPoint([]float64{5, 5})
	g := m.EnsureMinWidth(10)
	w := g.Width()
	if w[0] != 10 || w[1] != 10 {
		t.Errorf("width after EnsureMinWidth = %v", w)
	}
	if c := g.Center(); c[0] != 5 || c[1] != 5 {
		t.Errorf("center moved: %v", c)
	}
	// Already-wide dimensions stay untouched.
	m2 := mustMBR(t, []float64{0}, []float64{100})
	if got := m2.EnsureMinWidth(10).Width()[0]; got != 100 {
		t.Errorf("wide dim changed to %v", got)
	}
}

func TestMBRDropDims(t *testing.T) {
	m := mustMBR(t, []float64{0, 1, 2}, []float64{10, 11, 12})
	d, err := m.DropDims([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Dims() != 2 || d.Min[1] != 2 || d.Max[1] != 12 {
		t.Errorf("DropDims = %v..%v", d.Min, d.Max)
	}
	if _, err := m.DropDims([]int{2, 1}); err == nil {
		t.Error("non-increasing indices not rejected")
	}
	if _, err := m.DropDims([]int{3}); err == nil {
		t.Error("out-of-range index not rejected")
	}
}

func TestMBRFromPoints(t *testing.T) {
	m, err := MBRFromPoints([][]float64{{0, 5}, {10, -5}, {5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Min[0] != 0 || m.Max[0] != 10 || m.Min[1] != -5 || m.Max[1] != 5 {
		t.Errorf("MBRFromPoints = %v..%v", m.Min, m.Max)
	}
	if _, err := MBRFromPoints([][]float64{{0}, {0, 1}}); err == nil {
		t.Error("ragged points not rejected")
	}
	v := MBRFromVec3([]Vec3{V(0, 0, 0), V(1, 2, 3)})
	if v.Dims() != 3 || v.Max[2] != 3 {
		t.Errorf("MBRFromVec3 = %v", v)
	}
}

// Property: Union contains both operands and is commutative.
func TestQuickUnionProperties(t *testing.T) {
	f := func(a1, a2, b1, b2, c1, c2, d1, d2 float64) bool {
		m := boxFrom(a1, a2, b1, b2)
		o := boxFrom(c1, c2, d1, d2)
		u, err := m.Union(o)
		if err != nil {
			return false
		}
		u2, err := o.Union(m)
		if err != nil {
			return false
		}
		return u.ContainsMBR(m) && u.ContainsMBR(o) && u.ApproxEqual(u2, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a point used to extend an MBR is contained afterwards.
func TestQuickExtendContains(t *testing.T) {
	f := func(a1, a2, b1, b2, px, py float64) bool {
		m := boxFrom(a1, a2, b1, b2)
		p := []float64{clampF(px), clampF(py)}
		if err := m.Extend(p); err != nil {
			return false
		}
		return m.Contains(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: intersection is symmetric and contained in both operands.
func TestQuickIntersectionProperties(t *testing.T) {
	f := func(a1, a2, b1, b2, c1, c2, d1, d2 float64) bool {
		m := boxFrom(a1, a2, b1, b2)
		o := boxFrom(c1, c2, d1, d2)
		i1, ok1 := m.Intersection(o)
		i2, ok2 := o.Intersection(m)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return i1.ApproxEqual(i2, 0) && m.ContainsMBR(i1) && o.ContainsMBR(i1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampF(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

// boxFrom builds a valid 2D MBR from four arbitrary floats.
func boxFrom(x1, y1, x2, y2 float64) MBR {
	x1, y1, x2, y2 = clampF(x1), clampF(y1), clampF(x2), clampF(y2)
	m := FromPoint([]float64{x1, y1})
	_ = m.Extend([]float64{x2, y2})
	return m
}
