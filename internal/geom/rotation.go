package geom

import (
	"fmt"
	"math"
)

// Mat3 is a 3×3 matrix in row-major order, used for coordinate-frame
// rotations (§3.2, Fig. 3: aligning the user's viewing direction with the
// X-axis of an East-North-Up frame).
type Mat3 [3][3]float64

// Identity returns the identity matrix.
func Identity() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// RotX returns the rotation matrix about the X axis by angle (radians).
func RotX(angle float64) Mat3 {
	s, c := math.Sin(angle), math.Cos(angle)
	return Mat3{
		{1, 0, 0},
		{0, c, -s},
		{0, s, c},
	}
}

// RotY returns the rotation matrix about the Y axis by angle (radians).
func RotY(angle float64) Mat3 {
	s, c := math.Sin(angle), math.Cos(angle)
	return Mat3{
		{c, 0, s},
		{0, 1, 0},
		{-s, 0, c},
	}
}

// RotZ returns the rotation matrix about the Z axis by angle (radians).
func RotZ(angle float64) Mat3 {
	s, c := math.Sin(angle), math.Cos(angle)
	return Mat3{
		{c, -s, 0},
		{s, c, 0},
		{0, 0, 1},
	}
}

// Mul returns the matrix product m × n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var sum float64
			for k := 0; k < 3; k++ {
				sum += m[i][k] * n[k][j]
			}
			r[i][j] = sum
		}
	}
	return r
}

// Apply returns m × v.
func (m Mat3) Apply(v Vec3) Vec3 {
	return Vec3{
		X: m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		Y: m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		Z: m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// Transpose returns the transpose of m. For rotation matrices this is the
// inverse.
func (m Mat3) Transpose() Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[j][i]
		}
	}
	return r
}

// ApproxEqual reports whether all entries of m and n agree within eps.
func (m Mat3) ApproxEqual(n Mat3, eps float64) bool {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(m[i][j]-n[i][j]) > eps {
				return false
			}
		}
	}
	return true
}

// RPY holds Roll-Pitch-Yaw angles (radians) in an East-North-Up ground
// reference frame as used for land vehicles: the user's viewing direction is
// the X (East) axis, yaw rotates about the Up axis, pitch about the North
// axis, roll about the East axis. The paper implements the RPY calculation
// as user-defined operators in AnduIN (§3.2); here it is a library function
// registered as a UDF by the engine facade.
type RPY struct {
	Roll, Pitch, Yaw float64
}

// Matrix returns the rotation matrix R = Rz(yaw) × Ry(pitch) × Rx(roll)
// mapping body-frame vectors to the ENU ground frame. In the ENU convention
// used here the Up axis is Z, so yaw is a rotation about Z, pitch about Y,
// and roll about X.
func (a RPY) Matrix() Mat3 {
	return RotZ(a.Yaw).Mul(RotY(a.Pitch)).Mul(RotX(a.Roll))
}

// RPYFromMatrix extracts Roll-Pitch-Yaw angles from a rotation matrix
// following the Rz·Ry·Rx convention. In the gimbal-lock case (|pitch| = 90°)
// roll is set to zero and yaw absorbs the remaining rotation.
func RPYFromMatrix(m Mat3) RPY {
	// m = Rz(yaw) Ry(pitch) Rx(roll)
	// m[2][0] = -sin(pitch)
	sp := -m[2][0]
	if sp > 1 {
		sp = 1
	} else if sp < -1 {
		sp = -1
	}
	pitch := math.Asin(sp)
	const eps = 1e-9
	if math.Abs(math.Cos(pitch)) < eps {
		// Gimbal lock: only yaw±roll observable.
		return RPY{
			Roll:  0,
			Pitch: pitch,
			Yaw:   math.Atan2(-m[0][1], m[1][1]),
		}
	}
	return RPY{
		Roll:  math.Atan2(m[2][1], m[2][2]),
		Pitch: pitch,
		Yaw:   math.Atan2(m[1][0], m[0][0]),
	}
}

// YawFromDirection returns the yaw angle (rotation about the camera's
// vertical Y axis) of a horizontal direction vector in the camera frame.
// The Kinect camera frame has X right, Y up, Z towards the user; a user
// facing the camera has viewing direction (0, 0, -1)… but since gestures are
// defined in the user's own frame, what matters is consistency: yaw 0 means
// the user faces straight at the camera.
func YawFromDirection(dir Vec3) float64 {
	// Project onto the horizontal (XZ) plane; yaw measured from -Z towards +X.
	return math.Atan2(dir.X, -dir.Z)
}

// DirectionFromYaw is the inverse of YawFromDirection: it returns the unit
// horizontal viewing direction in the camera frame for the given yaw.
func DirectionFromYaw(yaw float64) Vec3 {
	return Vec3{X: math.Sin(yaw), Y: 0, Z: -math.Cos(yaw)}
}

// YawRotationY returns the rotation matrix about the camera Y axis that maps
// a user-local vector into the camera frame for a user standing with the
// given yaw, and whose transpose maps camera-frame offsets back into the
// user-local frame. This is the rotation the kinect_t view applies (§3.2) to
// make gesture definitions independent of the user's orientation.
func YawRotationY(yaw float64) Mat3 {
	return RotY(yaw)
}

// NormalizeAngle maps an angle to the range (-π, π].
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a > math.Pi {
		a -= 2 * math.Pi
	} else if a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the smallest signed difference a-b normalized to
// (-π, π].
func AngleDiff(a, b float64) float64 { return NormalizeAngle(a - b) }

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// String implements fmt.Stringer.
func (a RPY) String() string {
	return fmt.Sprintf("rpy(%.1f°, %.1f°, %.1f°)", Degrees(a.Roll), Degrees(a.Pitch), Degrees(a.Yaw))
}
