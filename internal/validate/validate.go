// Package validate implements the optional post-processing of §3.3.3:
// cross-checking learned gesture patterns for the "overlap problem"
// (patterns of different gestures detecting the same movement),
// simplifying patterns to improve detection times by merging adjacent
// windows, and eliminating coordinates that are irrelevant for a gesture.
package validate

import (
	"fmt"
	"sort"
	"time"

	"gesturecep/internal/geom"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
)

// Overlap describes one pair of overlapping pose windows between two
// gesture models.
type Overlap struct {
	GestureA, GestureB string
	PoseA, PoseB       int
	// Fraction is the intersection volume relative to the smaller window
	// (1 = one window fully contains the other).
	Fraction float64
}

// String implements fmt.Stringer.
func (o Overlap) String() string {
	return fmt.Sprintf("%s pose %d overlaps %s pose %d by %.0f%%",
		o.GestureA, o.PoseA, o.GestureB, o.PoseB, o.Fraction*100)
}

// CheckOverlap performs pairwise intersection tests between the pose
// windows of two gestures and reports overlaps above the threshold
// fraction. Models must track the same joints for the comparison to be
// meaningful; mismatched joint sets report no overlaps.
func CheckOverlap(a, b learn.Model, threshold float64) []Overlap {
	if !sameJoints(a.Joints, b.Joints) {
		return nil
	}
	var out []Overlap
	for i, wa := range a.Windows {
		for j, wb := range b.Windows {
			f := wa.OverlapFraction(wb)
			if f >= threshold {
				out = append(out, Overlap{
					GestureA: a.Name, GestureB: b.Name,
					PoseA: i, PoseB: j,
					Fraction: f,
				})
			}
		}
	}
	return out
}

// ConflictReport summarizes cross-checking a whole gesture set.
type ConflictReport struct {
	Overlaps []Overlap
	// FullSequenceConflicts lists pairs whose complete window sequences
	// overlap pose-by-pose — the dangerous case where one movement can
	// fire both queries.
	FullSequenceConflicts [][2]string
}

// CheckAll cross-checks every pair of models (the paper's "cross-checked to
// avoid overlaps" step). threshold is the per-window overlap fraction that
// counts as a conflict.
func CheckAll(models []learn.Model, threshold float64) ConflictReport {
	var rep ConflictReport
	for i := 0; i < len(models); i++ {
		for j := i + 1; j < len(models); j++ {
			ovs := CheckOverlap(models[i], models[j], threshold)
			rep.Overlaps = append(rep.Overlaps, ovs...)
			if isFullSequenceConflict(models[i], models[j], ovs) {
				rep.FullSequenceConflicts = append(rep.FullSequenceConflicts,
					[2]string{models[i].Name, models[j].Name})
			}
		}
	}
	return rep
}

// isFullSequenceConflict reports whether every pose of the shorter model
// overlaps the corresponding (order-preserving) pose of the longer one.
func isFullSequenceConflict(a, b learn.Model, ovs []Overlap) bool {
	if len(ovs) == 0 {
		return false
	}
	short := len(a.Windows)
	if len(b.Windows) < short {
		short = len(b.Windows)
	}
	// Greedy order-preserving matching over the reported overlaps.
	byPose := map[[2]int]bool{}
	for _, o := range ovs {
		byPose[[2]int{o.PoseA, o.PoseB}] = true
	}
	matched := 0
	nextB := 0
	for pa := 0; pa < len(a.Windows); pa++ {
		for pb := nextB; pb < len(b.Windows); pb++ {
			if byPose[[2]int{pa, pb}] {
				matched++
				nextB = pb + 1
				break
			}
		}
	}
	return matched >= short
}

// MergeAdjacentWindows simplifies a model by merging consecutive pose
// windows that overlap by at least threshold — "patterns can be optimized,
// e.g., by merging windows to decrease the detection effort" (§3.3.3).
// Step durations are recomputed from the original cumulative pose times so
// that generated within constraints remain correct.
//
// One call performs a single left-to-right pairwise pass (each merged group
// covers at most two original windows); uniformly overlapping pose chains
// would otherwise collapse into a single all-covering window, which is no
// sequence pattern at all. Call repeatedly for further coarsening.
func MergeAdjacentWindows(m learn.Model, threshold float64) (learn.Model, error) {
	if err := m.Validate(); err != nil {
		return learn.Model{}, err
	}
	if len(m.Windows) == 1 {
		return m, nil
	}

	// Cumulative time of each original pose.
	times := make([]time.Duration, len(m.Windows))
	for i := 1; i < len(m.Windows); i++ {
		times[i] = times[i-1] + m.StepDurations[i-1]
	}

	// Greedily group consecutive overlapping windows.
	type group struct {
		window geom.MBR
		first  int
		last   int
	}
	groups := []group{{window: m.Windows[0].Clone(), first: 0, last: 0}}
	for i := 1; i < len(m.Windows); i++ {
		cur := &groups[len(groups)-1]
		// Pair limit: a group absorbs at most one additional window, and
		// membership is decided between adjacent ORIGINAL windows.
		if cur.last == cur.first && m.Windows[i-1].OverlapFraction(m.Windows[i]) >= threshold {
			u, err := cur.window.Union(m.Windows[i])
			if err != nil {
				return learn.Model{}, err
			}
			cur.window = u
			cur.last = i
			continue
		}
		groups = append(groups, group{window: m.Windows[i].Clone(), first: i, last: i})
	}

	out := m
	out.Windows = make([]geom.MBR, len(groups))
	out.StepDurations = make([]time.Duration, 0, len(groups)-1)
	groupTime := func(g group) time.Duration {
		return (times[g.first] + times[g.last]) / 2
	}
	for i, g := range groups {
		out.Windows[i] = g.window
		if i > 0 {
			d := groupTime(g) - groupTime(groups[i-1])
			if d <= 0 {
				d = time.Millisecond
			}
			out.StepDurations = append(out.StepDurations, d)
		}
	}
	if err := out.Validate(); err != nil {
		return learn.Model{}, err
	}
	return out, nil
}

// IrrelevantDims returns the window dimensions whose spread across the
// whole gesture is below minSpread (mm) relative to the pose movement —
// coordinates "that are not relevant for the recorded gesture" (§3.3.3).
// A dimension is irrelevant when the centers of all pose windows stay
// within minSpread of each other: it does not help ordering poses.
func IrrelevantDims(m learn.Model, minSpread float64) []int {
	if len(m.Windows) == 0 {
		return nil
	}
	dims := m.Windows[0].Dims()
	var out []int
	for d := 0; d < dims; d++ {
		lo, hi := 0.0, 0.0
		for i, w := range m.Windows {
			c := w.Center()[d]
			if i == 0 {
				lo, hi = c, c
				continue
			}
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi-lo < minSpread {
			out = append(out, d)
		}
	}
	return out
}

// EliminateDims removes the given window dimensions (and the corresponding
// joints when all three of a joint's coordinates are dropped) from the
// model. Removing dimensions keeps detection semantics for the remaining
// coordinates and shrinks the generated predicate count.
//
// Only whole joints can be eliminated from the generated query (predicates
// are per joint coordinate); partial joints keep the joint but mark the
// dimension as unconstrained by widening it enormously.
func EliminateDims(m learn.Model, dims []int) (learn.Model, error) {
	if len(dims) == 0 {
		return m, nil
	}
	sorted := append([]int(nil), dims...)
	sort.Ints(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return learn.Model{}, fmt.Errorf("validate: duplicate dimension %d", sorted[i])
		}
	}
	total := m.Dims()
	for _, d := range sorted {
		if d < 0 || d >= total {
			return learn.Model{}, fmt.Errorf("validate: dimension %d out of range [0,%d)", d, total)
		}
	}

	drop := make(map[int]bool, len(sorted))
	for _, d := range sorted {
		drop[d] = true
	}
	// A joint is fully dropped when all its three dims are dropped.
	var keptJoints []kinect.Joint
	var keptDims []int
	for ji, j := range m.Joints {
		full := drop[ji*3] && drop[ji*3+1] && drop[ji*3+2]
		if full {
			continue
		}
		keptJoints = append(keptJoints, j)
		for c := 0; c < 3; c++ {
			keptDims = append(keptDims, ji*3+c)
		}
	}
	if len(keptJoints) == 0 {
		return learn.Model{}, fmt.Errorf("validate: eliminating all joints")
	}

	out := m
	out.Joints = keptJoints
	out.Windows = make([]geom.MBR, len(m.Windows))
	const unconstrained = 1e7 // effectively unbounded range predicate
	for i, w := range m.Windows {
		min := make([]float64, 0, len(keptDims))
		max := make([]float64, 0, len(keptDims))
		for _, d := range keptDims {
			if drop[d] {
				c := (w.Min[d] + w.Max[d]) / 2
				min = append(min, c-unconstrained)
				max = append(max, c+unconstrained)
			} else {
				min = append(min, w.Min[d])
				max = append(max, w.Max[d])
			}
		}
		out.Windows[i] = geom.MBR{Min: min, Max: max}
	}
	if err := out.Validate(); err != nil {
		return learn.Model{}, err
	}
	return out, nil
}

// Optimize applies the full §3.3.3 pipeline: merge adjacent windows that
// overlap by mergeThreshold, then widen dimensions whose centers spread
// less than minSpread into unconstrained ranges.
//
// A sequence pattern needs at least two poses to stay selective (a single
// wide window matches almost any movement), so when chain-merging at the
// requested threshold collapses everything, the threshold is raised until
// at least two windows survive; if even near-1 thresholds collapse the
// pattern, merging is skipped.
func Optimize(m learn.Model, mergeThreshold, minSpread float64) (learn.Model, error) {
	merged := m
	for th := mergeThreshold; ; th = (1 + th) / 2 {
		try, err := MergeAdjacentWindows(m, th)
		if err != nil {
			return learn.Model{}, err
		}
		if len(try.Windows) >= 2 || len(m.Windows) < 2 {
			merged = try
			break
		}
		if th > 0.97 {
			break // keep the unmerged model
		}
	}
	irr := IrrelevantDims(merged, minSpread)
	// Never eliminate every dimension of the primary movement: keep at
	// least one dimension constrained.
	if len(irr) >= merged.Dims() {
		irr = irr[:merged.Dims()-1]
	}
	return EliminateDims(merged, irr)
}

// SeparationSuggestion proposes an additional constraint separating two
// conflicting gestures: the dimension and threshold where their pose
// centers differ most. This mirrors the paper's remark that overlap
// conflicts "can be easily solved by manually adding additional constraints
// to generated queries"; the suggestion automates finding one.
type SeparationSuggestion struct {
	Dim       int
	Attribute string
	// Midpoint is the suggested decision threshold between the two
	// gestures in that dimension.
	Midpoint float64
	// Gap is the distance between the gestures' extreme centers in that
	// dimension (larger = more reliable separation).
	Gap float64
}

// SuggestSeparation finds the dimension that best separates two models'
// pose-center ranges. ok is false when every dimension's ranges overlap.
func SuggestSeparation(a, b learn.Model) (SeparationSuggestion, bool) {
	if !sameJoints(a.Joints, b.Joints) || len(a.Windows) == 0 || len(b.Windows) == 0 {
		return SeparationSuggestion{}, false
	}
	names := learn.CoordNames(a.Joints)
	best := SeparationSuggestion{Gap: 0}
	found := false
	dims := a.Windows[0].Dims()
	for d := 0; d < dims; d++ {
		aLo, aHi := centerRange(a, d)
		bLo, bHi := centerRange(b, d)
		var gap, mid float64
		switch {
		case aHi < bLo:
			gap, mid = bLo-aHi, (aHi+bLo)/2
		case bHi < aLo:
			gap, mid = aLo-bHi, (bHi+aLo)/2
		default:
			continue
		}
		if gap > best.Gap {
			best = SeparationSuggestion{Dim: d, Attribute: names[d], Midpoint: mid, Gap: gap}
			found = true
		}
	}
	return best, found
}

func centerRange(m learn.Model, d int) (lo, hi float64) {
	for i, w := range m.Windows {
		c := w.Center()[d]
		if i == 0 {
			lo, hi = c, c
			continue
		}
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return lo, hi
}

func sameJoints(a, b []kinect.Joint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
