package validate

import (
	"testing"
	"time"

	"gesturecep/internal/geom"
	"gesturecep/internal/kinect"
	"gesturecep/internal/learn"
)

// modelWith builds a single-joint model from window centers; every window
// is 100 mm wide and poses are 200 ms apart.
func modelWith(t *testing.T, name string, centers ...[3]float64) learn.Model {
	t.Helper()
	m := learn.Model{
		Name:    name,
		Joints:  []kinect.Joint{kinect.RightHand},
		Samples: 1,
	}
	for _, c := range centers {
		w, err := geom.FromCenterWidth(c[:], []float64{100, 100, 100})
		if err != nil {
			t.Fatal(err)
		}
		m.Windows = append(m.Windows, w)
	}
	for i := 0; i < len(centers)-1; i++ {
		m.StepDurations = append(m.StepDurations, 200*time.Millisecond)
	}
	m.TotalDuration = time.Duration(len(centers)-1) * 200 * time.Millisecond
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCheckOverlapDisjoint(t *testing.T) {
	a := modelWith(t, "a", [3]float64{0, 0, 0}, [3]float64{500, 0, 0})
	b := modelWith(t, "b", [3]float64{0, 1000, 0}, [3]float64{500, 1000, 0})
	if ovs := CheckOverlap(a, b, 0.1); len(ovs) != 0 {
		t.Errorf("disjoint models report overlaps: %v", ovs)
	}
}

func TestCheckOverlapDetectsConflict(t *testing.T) {
	a := modelWith(t, "a", [3]float64{0, 0, 0}, [3]float64{500, 0, 0})
	b := modelWith(t, "b", [3]float64{10, 0, 0}, [3]float64{510, 0, 0})
	ovs := CheckOverlap(a, b, 0.5)
	if len(ovs) < 2 {
		t.Fatalf("near-identical models report %d overlaps", len(ovs))
	}
	if ovs[0].Fraction < 0.5 {
		t.Errorf("fraction = %v", ovs[0].Fraction)
	}
	if ovs[0].String() == "" {
		t.Error("empty overlap string")
	}
	// Mismatched joints: no comparison.
	c := b
	c.Joints = []kinect.Joint{kinect.LeftHand}
	if ovs := CheckOverlap(a, c, 0.1); ovs != nil {
		t.Error("mismatched joints compared")
	}
}

func TestCheckAllFullSequenceConflict(t *testing.T) {
	a := modelWith(t, "a", [3]float64{0, 0, 0}, [3]float64{500, 0, 0})
	b := modelWith(t, "b", [3]float64{5, 0, 0}, [3]float64{505, 0, 0}) // same movement
	c := modelWith(t, "c", [3]float64{0, 900, 0}, [3]float64{500, 900, 0})
	rep := CheckAll([]learn.Model{a, b, c}, 0.3)
	if len(rep.FullSequenceConflicts) != 1 {
		t.Fatalf("full conflicts = %v", rep.FullSequenceConflicts)
	}
	pair := rep.FullSequenceConflicts[0]
	if pair[0] != "a" || pair[1] != "b" {
		t.Errorf("conflict pair = %v", pair)
	}
	// Reversed sequences (swipe_right vs swipe_left) share windows but in
	// opposite order: pose-wise order-preserving matching must NOT flag a
	// full-sequence conflict for 3-pose reversed models.
	r1 := modelWith(t, "right", [3]float64{0, 0, 0}, [3]float64{400, 0, -200}, [3]float64{800, 0, 0})
	r2 := modelWith(t, "left", [3]float64{800, 0, 0}, [3]float64{400, 0, -200}, [3]float64{0, 0, 0})
	rep2 := CheckAll([]learn.Model{r1, r2}, 0.3)
	for _, p := range rep2.FullSequenceConflicts {
		if (p[0] == "right" && p[1] == "left") || (p[0] == "left" && p[1] == "right") {
			t.Error("reversed sequences flagged as full conflict")
		}
	}
}

func TestMergeAdjacentWindows(t *testing.T) {
	// Windows 0 and 1 nearly coincide; 2 is far away.
	m := modelWith(t, "m", [3]float64{0, 0, 0}, [3]float64{10, 0, 0}, [3]float64{500, 0, 0})
	merged, err := MergeAdjacentWindows(m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Windows) != 2 {
		t.Fatalf("merged windows = %d, want 2", len(merged.Windows))
	}
	if len(merged.StepDurations) != 1 {
		t.Fatalf("merged steps = %d, want 1", len(merged.StepDurations))
	}
	// The merged step spans from the midpoint of group {0,1} (t=100ms) to
	// pose 2 (t=400ms) = 300ms.
	if merged.StepDurations[0] != 300*time.Millisecond {
		t.Errorf("merged step duration = %v", merged.StepDurations[0])
	}
	// Union covers both original windows.
	if !merged.Windows[0].ContainsMBR(m.Windows[0]) || !merged.Windows[0].ContainsMBR(m.Windows[1]) {
		t.Error("merged window does not cover originals")
	}
	// Disjoint model is untouched.
	m2 := modelWith(t, "m2", [3]float64{0, 0, 0}, [3]float64{500, 0, 0})
	same, err := MergeAdjacentWindows(m2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(same.Windows) != 2 {
		t.Error("disjoint windows merged")
	}
	// Single window passes through.
	single := modelWith(t, "s", [3]float64{0, 0, 0})
	if out, err := MergeAdjacentWindows(single, 0.5); err != nil || len(out.Windows) != 1 {
		t.Error("single window mishandled")
	}
}

func TestIrrelevantDims(t *testing.T) {
	// Movement only in x: y and z centers stay constant.
	m := modelWith(t, "m", [3]float64{0, 100, -150}, [3]float64{400, 102, -149}, [3]float64{800, 99, -151})
	irr := IrrelevantDims(m, 50)
	if len(irr) != 2 || irr[0] != 1 || irr[1] != 2 {
		t.Errorf("irrelevant dims = %v, want [1 2]", irr)
	}
	if got := IrrelevantDims(learn.Model{}, 50); got != nil {
		t.Error("empty model should have no dims")
	}
}

func TestEliminateDims(t *testing.T) {
	m := modelWith(t, "m", [3]float64{0, 100, -150}, [3]float64{800, 100, -150})
	out, err := EliminateDims(m, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Joint is kept (only 2 of 3 dims dropped) but dims 1,2 become
	// effectively unconstrained.
	if len(out.Joints) != 1 {
		t.Fatalf("joints = %v", out.Joints)
	}
	w := out.Windows[0].Width()
	if w[1] < 1e6 || w[2] < 1e6 {
		t.Errorf("widths = %v, want huge for dims 1,2", w)
	}
	if w[0] != 100 {
		t.Errorf("kept dim width = %v", w[0])
	}
	// Errors.
	if _, err := EliminateDims(m, []int{0, 0}); err == nil {
		t.Error("duplicate dims accepted")
	}
	if _, err := EliminateDims(m, []int{7}); err == nil {
		t.Error("out-of-range dim accepted")
	}
	if _, err := EliminateDims(m, []int{0, 1, 2}); err == nil {
		t.Error("eliminating the only joint accepted")
	}
	// Empty drop list: unchanged.
	if out2, err := EliminateDims(m, nil); err != nil || len(out2.Windows) != 2 {
		t.Error("nil dims mishandled")
	}
}

func TestOptimizePipeline(t *testing.T) {
	m := modelWith(t, "m",
		[3]float64{0, 100, -150},
		[3]float64{20, 101, -150}, // merges with pose 0
		[3]float64{800, 99, -150}, // distinct
	)
	out, err := Optimize(m, 0.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Windows) != 2 {
		t.Errorf("optimized windows = %d", len(out.Windows))
	}
	// y and z are unconstrained after optimization, x remains tight.
	w := out.Windows[0].Width()
	if w[1] < 1e6 || w[2] < 1e6 {
		t.Errorf("optimize did not widen irrelevant dims: %v", w)
	}
	if w[0] > 1000 {
		t.Errorf("optimize widened the relevant dim: %v", w[0])
	}
}

func TestSuggestSeparation(t *testing.T) {
	a := modelWith(t, "a", [3]float64{0, 0, 0}, [3]float64{300, 0, 0})
	b := modelWith(t, "b", [3]float64{0, 800, 0}, [3]float64{300, 800, 0})
	s, ok := SuggestSeparation(a, b)
	if !ok {
		t.Fatal("no separation found")
	}
	if s.Dim != 1 || s.Attribute != "rHand_y" {
		t.Errorf("suggestion = %+v", s)
	}
	if s.Midpoint < 100 || s.Midpoint > 700 {
		t.Errorf("midpoint = %v", s.Midpoint)
	}
	// Fully overlapping models: no separation.
	c := modelWith(t, "c", [3]float64{0, 0, 0}, [3]float64{300, 800, 0})
	d := modelWith(t, "d", [3]float64{0, 400, 0}, [3]float64{300, 500, 0})
	if _, ok := SuggestSeparation(c, d); ok {
		t.Error("separation suggested for overlapping center ranges")
	}
	// Mismatched joints.
	e := a
	e.Joints = []kinect.Joint{kinect.LeftHand}
	if _, ok := SuggestSeparation(a, e); ok {
		t.Error("separation across different joints")
	}
}
