package learn

import (
	"fmt"
	"math"
	"time"

	"gesturecep/internal/cep"
	"gesturecep/internal/geom"
	"gesturecep/internal/kinect"
	"gesturecep/internal/query"
	"gesturecep/internal/transform"
)

// GenConfig tunes query generation (§3.3.4).
type GenConfig struct {
	// Source is the stream the query reads; defaults to "kinect_t".
	Source string
	// WithinSlack multiplies the measured step durations before they
	// become `within` constraints, giving users temporal headroom.
	// Defaults to 2.5.
	WithinSlack float64
	// WithinRounding rounds each within constraint up to a multiple of
	// this duration. The paper's generated queries use whole seconds;
	// defaults to 1 s.
	WithinRounding time.Duration
	// MinHalfWidth is the smallest half-width (mm) a range predicate may
	// get; degenerate windows are widened to it. Defaults to 50, the
	// half-width of the paper's Fig. 1 windows.
	MinHalfWidth float64
}

// DefaultGenConfig returns the defaults described on GenConfig.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Source:         transform.ViewName,
		WithinSlack:    2.5,
		WithinRounding: time.Second,
		MinHalfWidth:   50,
	}
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Source == "" {
		c.Source = transform.ViewName
	}
	if c.WithinSlack == 0 {
		c.WithinSlack = 2.5
	}
	if c.WithinRounding == 0 {
		c.WithinRounding = time.Second
	}
	if c.MinHalfWidth == 0 {
		c.MinHalfWidth = 50
	}
	return c
}

// Validate reports configuration errors.
func (c GenConfig) Validate() error {
	if c.WithinSlack < 0 || c.WithinRounding < 0 || c.MinHalfWidth < 0 {
		return fmt.Errorf("learn: negative generation parameter")
	}
	return nil
}

// GenerateQuery turns a merged gesture model into a detection query AST in
// the paper's dialect. For every pose window it emits the conjunction
//
//	⋀_{j∈joints, i∈{x,y,z}}  abs(center_{j,i} - coord_{j,i}) < width_{j,i}
//
// (§3.3.4) and joins poses with nested sequence operators, each nesting
// level carrying the cumulative `within` constraint, mirroring the
// structure of Fig. 1. The outermost level gets `select first consume all`.
func GenerateQuery(m Model, cfg GenConfig) (*query.Query, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	atoms := make([]*query.Term, len(m.Windows))
	for i, w := range m.Windows {
		pred, err := windowPredicate(w, m.Joints, cfg.MinHalfWidth)
		if err != nil {
			return nil, fmt.Errorf("learn: pose %d: %w", i, err)
		}
		atoms[i] = &query.Term{Atom: &query.EventAtom{Source: cfg.Source, Pred: pred}}
	}

	// Left-nested sequence: ((p0 -> p1 within d1) -> p2 within d2) ...
	// where dk covers the cumulative duration of poses 0..k (with slack).
	node := &query.PatternNode{Terms: []*query.Term{atoms[0]}}
	var cumulative time.Duration
	for i := 1; i < len(atoms); i++ {
		cumulative += m.StepDurations[i-1]
		within := roundUp(time.Duration(float64(cumulative)*cfg.WithinSlack), cfg.WithinRounding)
		node.Terms = append(node.Terms, atoms[i])
		node.HasWithin = true
		node.Within = within
		if i < len(atoms)-1 {
			node = &query.PatternNode{Terms: []*query.Term{{Group: node}}}
		}
	}
	node.HasSelect = true
	node.Select = cep.SelectFirst
	node.HasConsume = true
	node.Consume = cep.ConsumeAll

	return &query.Query{Output: m.Name, Pattern: node}, nil
}

// windowPredicate builds the conjunction of range predicates for one pose
// window.
func windowPredicate(w geom.MBR, joints []kinect.Joint, minHalf float64) (query.Expr, error) {
	center := w.Center()
	half := w.HalfWidth()
	if len(center) != len(joints)*3 {
		return nil, fmt.Errorf("window has %d dims for %d joints", len(center), len(joints))
	}
	var conj query.Expr
	for ji, j := range joints {
		for c := 0; c < 3; c++ {
			d := ji*3 + c
			hw := math.Max(half[d], minHalf)
			cmp := rangePredicate(kinect.FieldName(j, c), center[d], hw)
			if conj == nil {
				conj = cmp
			} else {
				conj = &query.Binary{Op: query.OpAnd, L: conj, R: cmp}
			}
		}
	}
	return conj, nil
}

// rangePredicate builds abs(attr - center) < halfWidth, normalizing the
// sign so a negative center renders as "attr + 120" exactly like the
// paper's generated predicates (Fig. 1 uses "rHand_z - torso_z + 120" for
// center −120).
func rangePredicate(attr string, center, halfWidth float64) query.Expr {
	center = round1(center)
	halfWidth = round1(halfWidth)
	var shifted query.Expr
	switch {
	case center >= 0:
		shifted = &query.Binary{
			Op: query.OpSub,
			L:  &query.Ident{Name: attr},
			R:  &query.NumberLit{Value: center},
		}
	default:
		shifted = &query.Binary{
			Op: query.OpAdd,
			L:  &query.Ident{Name: attr},
			R:  &query.NumberLit{Value: -center},
		}
	}
	return &query.Binary{
		Op: query.OpLT,
		L:  &query.Call{Name: "abs", Args: []query.Expr{shifted}},
		R:  &query.NumberLit{Value: halfWidth},
	}
}

// round1 rounds to one decimal so generated queries stay readable.
func round1(v float64) float64 { return math.Round(v*10) / 10 }

// roundUp rounds d up to the next multiple of unit (minimum one unit).
func roundUp(d, unit time.Duration) time.Duration {
	if unit <= 0 {
		return d
	}
	if d <= 0 {
		return unit
	}
	n := (d + unit - 1) / unit
	return n * unit
}
