package learn

import (
	"fmt"

	"gesturecep/internal/kinect"
	"gesturecep/internal/query"
	"gesturecep/internal/transform"
)

// Config bundles the configuration of the whole learning pipeline.
type Config struct {
	// Transform is applied to raw camera-frame samples before learning.
	// Set Pretransformed when samples are already in the user frame.
	Transform      transform.Config
	Pretransformed bool
	// Joints are the tracked joints; defaults to the right hand.
	Joints []kinect.Joint
	// Sampler tunes distance-based sampling (§3.3.1).
	Sampler SamplerConfig
	// Merger tunes window merging (§3.3.2).
	Merger MergerConfig
	// ScaleFactor widens merged windows (generalization scaling, §3.3.2);
	// 1 keeps them as merged. Defaults to 1.3.
	ScaleFactor float64
	// MinWidth is the minimum full window width (mm) after scaling.
	// Defaults to 2 × GenConfig.MinHalfWidth.
	MinWidth float64
	// Gen tunes query generation (§3.3.4).
	Gen GenConfig
}

// DefaultConfig returns the standard pipeline configuration.
func DefaultConfig() Config {
	return Config{
		Transform:   transform.DefaultConfig(),
		Joints:      []kinect.Joint{kinect.RightHand},
		Sampler:     DefaultSamplerConfig(),
		Merger:      DefaultMergerConfig(),
		ScaleFactor: 1.3,
		MinWidth:    100,
		Gen:         DefaultGenConfig(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if len(c.Joints) == 0 {
		return fmt.Errorf("learn: no tracked joints configured")
	}
	if err := c.Sampler.Validate(); err != nil {
		return err
	}
	if err := c.Merger.Validate(); err != nil {
		return err
	}
	if c.ScaleFactor < 0 {
		return fmt.Errorf("learn: negative scale factor")
	}
	if c.MinWidth < 0 {
		return fmt.Errorf("learn: negative minimum width")
	}
	if err := c.Gen.Validate(); err != nil {
		return err
	}
	if !c.Pretransformed {
		if err := c.Transform.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result is the outcome of learning one gesture.
type Result struct {
	// Model is the merged, scaled gesture description.
	Model Model
	// Query is the generated detection query AST.
	Query *query.Query
	// QueryText is the pretty-printed query in the paper's dialect.
	QueryText string
	// Warnings lists samples that deviated suspiciously (§3.3.2).
	Warnings []Warning
}

// Learner runs the full §3.3 pipeline. A Learner accumulates samples for
// one gesture; the result can be regenerated after each added sample,
// supporting the paper's interactive loop ("further samples can be added to
// incrementally improve the results until the user is satisfied").
type Learner struct {
	cfg    Config
	name   string
	merger *Merger
	warns  []Warning
}

// NewLearner validates the configuration and creates a learner for the
// named gesture.
func NewLearner(name string, cfg Config) (*Learner, error) {
	if name == "" {
		return nil, fmt.Errorf("learn: gesture needs a name")
	}
	if cfg.Joints == nil {
		cfg.Joints = []kinect.Joint{kinect.RightHand}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	merger, err := NewMerger(cfg.Merger, cfg.Joints)
	if err != nil {
		return nil, err
	}
	return &Learner{cfg: cfg, name: name, merger: merger}, nil
}

// Name returns the gesture name being learned.
func (l *Learner) Name() string { return l.name }

// SampleCount returns the number of samples added so far.
func (l *Learner) SampleCount() int { return l.merger.SampleCount() }

// AddSample ingests one recorded sample (camera-frame unless the config
// says Pretransformed). It applies the transformation (§3.2), runs
// distance-based sampling (§3.3.1) and merges the clusters (§3.3.2),
// returning any outlier warnings for this sample.
func (l *Learner) AddSample(frames []kinect.Frame) ([]Warning, error) {
	if len(frames) < 2 {
		return nil, fmt.Errorf("learn: sample needs at least 2 frames, got %d", len(frames))
	}
	work := frames
	if !l.cfg.Pretransformed {
		var err error
		work, err = transform.FrameSlice(l.cfg.Transform, frames)
		if err != nil {
			return nil, err
		}
	}
	sample, err := SampleFromFrames(work, l.cfg.Joints)
	if err != nil {
		return nil, err
	}
	clusters, err := ExtractClusters(sample, l.cfg.Sampler)
	if err != nil {
		return nil, err
	}
	warns, err := l.merger.Add(clusters)
	if err != nil {
		return nil, err
	}
	l.warns = append(l.warns, warns...)
	return warns, nil
}

// Result merges everything added so far, applies generalization scaling and
// generates the detection query.
func (l *Learner) Result() (*Result, error) {
	model, err := l.merger.Model(l.name)
	if err != nil {
		return nil, err
	}
	scale := l.cfg.ScaleFactor
	if scale == 0 {
		scale = 1
	}
	minWidth := l.cfg.MinWidth
	model, err = model.ScaleWindows(scale, minWidth)
	if err != nil {
		return nil, err
	}
	q, err := GenerateQuery(model, l.cfg.Gen)
	if err != nil {
		return nil, err
	}
	return &Result{
		Model:     model,
		Query:     q,
		QueryText: query.Print(q),
		Warnings:  append([]Warning(nil), l.warns...),
	}, nil
}

// Learn is the one-shot convenience: run the whole pipeline over a set of
// recorded samples.
func Learn(name string, samples [][]kinect.Frame, cfg Config) (*Result, error) {
	l, err := NewLearner(name, cfg)
	if err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("learn: no samples given")
	}
	for i, s := range samples {
		if _, err := l.AddSample(s); err != nil {
			return nil, fmt.Errorf("learn: sample %d: %w", i, err)
		}
	}
	return l.Result()
}
