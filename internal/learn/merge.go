package learn

import (
	"fmt"
	"math"
	"sort"
	"time"

	"gesturecep/internal/geom"
	"gesturecep/internal/kinect"
)

// WindowMode selects what spatial extent each merged pose window covers.
type WindowMode int

const (
	// WindowClusterBounds unions the member-point MBRs of the aligned
	// clusters: every sample's trajectory segment lies inside the window.
	// This is the robust default.
	WindowClusterBounds WindowMode = iota
	// WindowCentroids takes the MBR of the aligned cluster centroids only
	// — the literal reading of §3.3.2 ("MBRs around all cluster centroids
	// with the same sequence number"). Tighter, relies on the
	// generalization scaling step for tolerance.
	WindowCentroids
)

// String implements fmt.Stringer.
func (m WindowMode) String() string {
	switch m {
	case WindowClusterBounds:
		return "cluster-bounds"
	case WindowCentroids:
		return "centroids"
	}
	return fmt.Sprintf("WindowMode(%d)", int(m))
}

// MergerConfig tunes the window-merging step of §3.3.2.
type MergerConfig struct {
	// TargetPoses forces the merged model to this pose count; 0 derives it
	// as the median cluster count over all samples.
	TargetPoses int
	// Mode selects the window extent (see WindowMode).
	Mode WindowMode
	// OutlierDistance triggers the "sample differs too much" warning: a
	// new sample whose aligned centroid is farther than this (mm) outside
	// the windows built from prior samples is flagged.
	OutlierDistance float64
}

// DefaultMergerConfig returns the defaults used by the Learner.
func DefaultMergerConfig() MergerConfig {
	return MergerConfig{
		Mode:            WindowClusterBounds,
		OutlierDistance: 200,
	}
}

// Validate reports configuration errors.
func (c MergerConfig) Validate() error {
	if c.TargetPoses < 0 {
		return fmt.Errorf("learn: negative TargetPoses")
	}
	if c.OutlierDistance < 0 {
		return fmt.Errorf("learn: negative OutlierDistance")
	}
	return nil
}

// Warning describes a suspicious training sample (§3.3.2: "useful for
// detecting situations where a new sample differs too much from previously
// recorded ones, allowing us to issue a warning").
type Warning struct {
	SampleIndex int
	Pose        int
	Distance    float64
}

// Error renders the warning message (Warning is not an error; it is
// advisory).
func (w Warning) String() string {
	return fmt.Sprintf("learn: sample %d deviates %.0f mm from prior samples at pose %d",
		w.SampleIndex, w.Distance, w.Pose)
}

// Model is the merged gesture description: one window per pose plus timing
// statistics, sufficient to generate the detection query (§3.3.4).
type Model struct {
	Name   string
	Joints []kinect.Joint
	// Windows holds one MBR per pose over the tracked coordinate space.
	Windows []geom.MBR
	// StepDurations[i] is the average time from pose i to pose i+1.
	StepDurations []time.Duration
	// TotalDuration is the average sample duration.
	TotalDuration time.Duration
	// Samples is the number of merged samples.
	Samples int
}

// Dims returns the coordinate-space dimensionality.
func (m Model) Dims() int { return len(m.Joints) * 3 }

// Validate reports structural problems.
func (m Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("learn: model without name")
	}
	if len(m.Joints) == 0 {
		return fmt.Errorf("learn: model %q tracks no joints", m.Name)
	}
	if len(m.Windows) == 0 {
		return fmt.Errorf("learn: model %q has no pose windows", m.Name)
	}
	for i, w := range m.Windows {
		if w.Dims() != m.Dims() {
			return fmt.Errorf("learn: model %q window %d has %d dims, want %d", m.Name, i, w.Dims(), m.Dims())
		}
	}
	if len(m.StepDurations) != len(m.Windows)-1 {
		return fmt.Errorf("learn: model %q has %d step durations for %d windows",
			m.Name, len(m.StepDurations), len(m.Windows))
	}
	return nil
}

// ScaleWindows returns a copy of the model with every window width
// multiplied by factor and then grown to at least minWidth per dimension —
// the generalization scaling of §3.3.2.
func (m Model) ScaleWindows(factor, minWidth float64) (Model, error) {
	out := m
	out.Windows = make([]geom.MBR, len(m.Windows))
	for i, w := range m.Windows {
		s, err := w.ScaleWidth(factor)
		if err != nil {
			return Model{}, err
		}
		if minWidth > 0 {
			s = s.EnsureMinWidth(minWidth)
		}
		out.Windows[i] = s
	}
	return out, nil
}

// alignedSample is one sample's clusters resampled to the target pose
// count.
type alignedSample struct {
	centroids [][]float64
	bounds    []geom.MBR
	// times[i] is the representative time offset of pose i from the
	// sample start.
	times []time.Duration
	total time.Duration
}

// Merger merges cluster sequences of several samples into a Model,
// incrementally ("this step can be executed incrementally", §3.3.2).
type Merger struct {
	cfg     MergerConfig
	joints  []kinect.Joint
	samples [][]Cluster
}

// NewMerger validates the config and returns an empty merger for the given
// tracked joints.
func NewMerger(cfg MergerConfig, joints []kinect.Joint) (*Merger, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(joints) == 0 {
		return nil, fmt.Errorf("learn: merger needs tracked joints")
	}
	return &Merger{cfg: cfg, joints: append([]kinect.Joint(nil), joints...)}, nil
}

// SampleCount returns the number of samples merged so far.
func (g *Merger) SampleCount() int { return len(g.samples) }

// Add merges another sample's clusters. It returns outlier warnings
// comparing the new sample against the model built from the prior ones.
func (g *Merger) Add(clusters []Cluster) ([]Warning, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("learn: sample produced no clusters")
	}
	dims := len(g.joints) * 3
	for i, c := range clusters {
		if len(c.Centroid) != dims {
			return nil, fmt.Errorf("learn: cluster %d has %d dims, want %d", i, len(c.Centroid), dims)
		}
	}
	var warnings []Warning
	if len(g.samples) > 0 && g.cfg.OutlierDistance > 0 {
		warnings = g.outlierCheck(clusters)
	}
	g.samples = append(g.samples, clusters)
	return warnings, nil
}

// outlierCheck aligns the candidate against the current samples and
// measures how far its centroids fall outside the existing windows.
func (g *Merger) outlierCheck(clusters []Cluster) []Warning {
	target := g.targetPoses()
	prior := make([]alignedSample, len(g.samples))
	for i, s := range g.samples {
		prior[i] = resampleClusters(s, target)
	}
	cand := resampleClusters(clusters, target)

	var warnings []Warning
	for pose := 0; pose < target; pose++ {
		var window geom.MBR
		for _, p := range prior {
			u, err := window.Union(p.bounds[pose])
			if err != nil {
				continue
			}
			window = u
		}
		d := distanceOutside(window, cand.centroids[pose])
		if d > g.cfg.OutlierDistance {
			warnings = append(warnings, Warning{
				SampleIndex: len(g.samples),
				Pose:        pose,
				Distance:    d,
			})
		}
	}
	return warnings
}

// distanceOutside returns how far the point lies outside the MBR (0 when
// inside).
func distanceOutside(m geom.MBR, p []float64) float64 {
	if m.IsEmpty() || len(p) != m.Dims() {
		return 0
	}
	var sum float64
	for i, v := range p {
		if v < m.Min[i] {
			d := m.Min[i] - v
			sum += d * d
		} else if v > m.Max[i] {
			d := v - m.Max[i]
			sum += d * d
		}
	}
	return math.Sqrt(sum)
}

// targetPoses derives the aligned pose count: configured value or the
// median cluster count.
func (g *Merger) targetPoses() int {
	if g.cfg.TargetPoses > 0 {
		return g.cfg.TargetPoses
	}
	if len(g.samples) == 0 {
		return 0
	}
	counts := make([]int, len(g.samples))
	for i, s := range g.samples {
		counts[i] = len(s)
	}
	sort.Ints(counts)
	return counts[len(counts)/2]
}

// resampleClusters interpolates a cluster sequence to exactly target poses,
// aligning samples with different cluster counts by normalized sequence
// position.
func resampleClusters(clusters []Cluster, target int) alignedSample {
	n := len(clusters)
	out := alignedSample{
		centroids: make([][]float64, target),
		bounds:    make([]geom.MBR, target),
		times:     make([]time.Duration, target),
	}
	start := clusters[0].Start
	out.total = clusters[n-1].End.Sub(start)
	if target == 1 {
		out.centroids[0] = append([]float64(nil), clusters[0].Centroid...)
		out.bounds[0] = clusters[0].Bounds.Clone()
		out.times[0] = 0
		return out
	}
	for k := 0; k < target; k++ {
		pos := float64(k) * float64(n-1) / float64(target-1)
		lo := int(pos)
		if lo >= n-1 {
			lo = n - 1
		}
		hi := lo
		if lo < n-1 {
			hi = lo + 1
		}
		frac := pos - float64(lo)

		cl, ch := clusters[lo], clusters[hi]
		centroid := make([]float64, len(cl.Centroid))
		for i := range centroid {
			centroid[i] = cl.Centroid[i] + frac*(ch.Centroid[i]-cl.Centroid[i])
		}
		out.centroids[k] = centroid

		bounds := geom.MBR{
			Min: make([]float64, len(cl.Bounds.Min)),
			Max: make([]float64, len(cl.Bounds.Max)),
		}
		for i := range bounds.Min {
			bounds.Min[i] = cl.Bounds.Min[i] + frac*(ch.Bounds.Min[i]-cl.Bounds.Min[i])
			bounds.Max[i] = cl.Bounds.Max[i] + frac*(ch.Bounds.Max[i]-cl.Bounds.Max[i])
		}
		out.bounds[k] = bounds

		tl := cl.Mid().Sub(start)
		th := ch.Mid().Sub(start)
		out.times[k] = tl + time.Duration(frac*float64(th-tl))
	}
	return out
}

// Model merges all added samples into the final gesture description.
func (g *Merger) Model(name string) (Model, error) {
	if name == "" {
		return Model{}, fmt.Errorf("learn: model needs a name")
	}
	if len(g.samples) == 0 {
		return Model{}, fmt.Errorf("learn: no samples merged")
	}
	target := g.targetPoses()
	if target < 1 {
		return Model{}, fmt.Errorf("learn: target pose count %d", target)
	}
	aligned := make([]alignedSample, len(g.samples))
	for i, s := range g.samples {
		aligned[i] = resampleClusters(s, target)
	}

	model := Model{
		Name:    name,
		Joints:  append([]kinect.Joint(nil), g.joints...),
		Windows: make([]geom.MBR, target),
		Samples: len(g.samples),
	}
	for pose := 0; pose < target; pose++ {
		var w geom.MBR
		for _, a := range aligned {
			var err error
			switch g.cfg.Mode {
			case WindowCentroids:
				err = w.Extend(a.centroids[pose])
			default:
				w, err = w.Union(a.bounds[pose])
			}
			if err != nil {
				return Model{}, err
			}
		}
		model.Windows[pose] = w
	}

	// Average step durations across samples (aligned pose times).
	model.StepDurations = make([]time.Duration, target-1)
	for step := 0; step < target-1; step++ {
		var sum time.Duration
		for _, a := range aligned {
			sum += a.times[step+1] - a.times[step]
		}
		model.StepDurations[step] = sum / time.Duration(len(aligned))
	}
	var total time.Duration
	for _, a := range aligned {
		total += a.total
	}
	model.TotalDuration = total / time.Duration(len(aligned))

	if err := model.Validate(); err != nil {
		return Model{}, err
	}
	return model, nil
}
