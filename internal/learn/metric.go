package learn

import (
	"fmt"
	"math"
)

// Metric measures the deviation between two path points for the
// distance-based sampler. The paper makes this configurable (§3.3.1):
// "the distance function is configurable to express several gesture
// semantics, e.g., the Euclidean distance can be used to express spatial
// differences between successive poses, or metrics like 'every x tuples'
// can be used for time-based constraints."
type Metric interface {
	// Name identifies the metric in reports and persisted configs.
	Name() string
	// Distance returns the deviation between two points. It must be
	// non-negative and zero for identical points.
	Distance(a, b PathPoint) float64
}

// Euclidean measures spatial deviation over all tracked coordinates — the
// paper's default gesture semantics.
type Euclidean struct{}

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Distance implements Metric.
func (Euclidean) Distance(a, b PathPoint) float64 {
	var sum float64
	n := len(a.Coords)
	if len(b.Coords) < n {
		n = len(b.Coords)
	}
	for i := 0; i < n; i++ {
		d := a.Coords[i] - b.Coords[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// EveryK implements the paper's "every x tuples" semantics: the deviation
// is the tuple-index difference, so a new cluster starts every K tuples
// when the sampler threshold is K.
type EveryK struct{}

// Name implements Metric.
func (EveryK) Name() string { return "every-k" }

// Distance implements Metric.
func (EveryK) Distance(a, b PathPoint) float64 {
	return math.Abs(float64(b.Index - a.Index))
}

// TimeDelta measures elapsed milliseconds between points — time-based
// constraints when gestures have meaningful rhythm.
type TimeDelta struct{}

// Name implements Metric.
func (TimeDelta) Name() string { return "time-ms" }

// Distance implements Metric.
func (TimeDelta) Distance(a, b PathPoint) float64 {
	d := b.Ts.Sub(a.Ts).Milliseconds()
	if d < 0 {
		d = -d
	}
	return float64(d)
}

// Weighted scales each coordinate's contribution to a Euclidean distance —
// e.g. emphasizing vertical movement for an "up/down" gesture family.
type Weighted struct {
	Weights []float64
}

// Name implements Metric.
func (Weighted) Name() string { return "weighted-euclidean" }

// Distance implements Metric.
func (w Weighted) Distance(a, b PathPoint) float64 {
	var sum float64
	for i := range a.Coords {
		if i >= len(b.Coords) {
			break
		}
		d := a.Coords[i] - b.Coords[i]
		wt := 1.0
		if i < len(w.Weights) {
			wt = w.Weights[i]
		}
		sum += wt * d * d
	}
	return math.Sqrt(sum)
}

// MetricByName resolves a metric from its persisted name.
func MetricByName(name string) (Metric, error) {
	switch name {
	case "", "euclidean":
		return Euclidean{}, nil
	case "every-k":
		return EveryK{}, nil
	case "time-ms":
		return TimeDelta{}, nil
	default:
		return nil, fmt.Errorf("learn: unknown metric %q", name)
	}
}

// PathDeviation returns the total deviation along the sample under the
// metric — the quantity relative thresholds are expressed against
// ("at least x%% of the total deviation observed", §3.3.1).
func PathDeviation(s Sample, m Metric) float64 {
	var total float64
	for i := 1; i < len(s.Points); i++ {
		total += m.Distance(s.Points[i-1], s.Points[i])
	}
	return total
}
