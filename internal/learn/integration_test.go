package learn

import (
	"strings"
	"testing"
	"time"

	"gesturecep/internal/anduin"
	"gesturecep/internal/kinect"
	"gesturecep/internal/stream"
	"gesturecep/internal/transform"
)

// learnGesture runs the full pipeline on n simulated samples of the named
// standard gesture and returns the result.
func learnGesture(t *testing.T, name string, n int, seed int64) *Result {
	t.Helper()
	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), seed)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := kinect.StandardGestures()[name]
	if !ok {
		t.Fatalf("unknown gesture %q", name)
	}
	samples, err := sim.Samples(spec, n, time.Date(2014, 3, 24, 9, 0, 0, 0, time.UTC),
		kinect.PerformOpts{PathJitter: 25})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Learn(name, samples, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLearnSwipeRightPipeline(t *testing.T) {
	res := learnGesture(t, kinect.GestureSwipeRight, 4, 11)

	// The learner finds a small pose sequence ("usually 3-5 samples"
	// produce a handful of windows for a one-stroke gesture).
	if n := len(res.Model.Windows); n < 2 || n > 8 {
		t.Errorf("pose windows = %d, want a small sequence", n)
	}
	if res.Model.Samples != 4 {
		t.Errorf("model merged %d samples", res.Model.Samples)
	}
	// Identically-performed samples should not trigger outlier warnings.
	if len(res.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", res.Warnings)
	}
	// The generated text is in the paper's dialect.
	for _, frag := range []string{`SELECT "swipe_right"`, "MATCHING", "kinect_t(", "abs(rHand_", "select first consume all", ";"} {
		if !strings.Contains(res.QueryText, frag) {
			t.Errorf("query text missing %q:\n%s", frag, res.QueryText)
		}
	}
	// Window centers progress from left (x≈0) to right (x≈700).
	first := res.Model.Windows[0].Center()
	last := res.Model.Windows[len(res.Model.Windows)-1].Center()
	if first[0] < -150 || first[0] > 250 {
		t.Errorf("first window center x = %v, want near 0", first[0])
	}
	if last[0] < 500 {
		t.Errorf("last window center x = %v, want near 700", last[0])
	}
}

// deployAndRun learns a gesture, deploys the generated query in a fresh
// engine and replays a session, returning detections.
func deployAndRun(t *testing.T, res *Result, profile kinect.Profile, script []kinect.ScriptItem, seed int64) []anduin.Detection {
	t.Helper()
	e := anduin.New()
	raw, _, err := e.KinectPipeline(transform.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.DeployText(res.QueryText); err != nil {
		t.Fatalf("deploy generated query: %v\n%s", err, res.QueryText)
	}
	var dets []anduin.Detection
	e.Subscribe(func(d anduin.Detection) { dets = append(dets, d) })

	sim, err := kinect.NewSimulator(profile, kinect.DefaultNoise(), seed)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := sim.RunScript(script, time.Date(2014, 3, 24, 12, 0, 0, 0, time.UTC), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Replay(raw, kinect.ToTuples(sess.Frames)); err != nil {
		t.Fatal(err)
	}
	return dets
}

func TestLearnedQueryDetectsGesture(t *testing.T) {
	res := learnGesture(t, kinect.GestureSwipeRight, 4, 21)
	script := []kinect.ScriptItem{
		{Idle: time.Second},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 20}},
		{Idle: 2 * time.Second},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 20}},
		{Idle: time.Second},
	}
	dets := deployAndRun(t, res, kinect.DefaultProfile(), script, 99)
	if len(dets) != 2 {
		t.Fatalf("detections = %d, want 2", len(dets))
	}
	for _, d := range dets {
		if d.Gesture != kinect.GestureSwipeRight {
			t.Errorf("detected %q", d.Gesture)
		}
	}
}

func TestLearnedQueryDetectsOtherUsers(t *testing.T) {
	// Robustness claim: patterns learned from one user detect the gesture
	// "even if the position or movement of the user differs from the
	// training samples" — here entirely different bodies and positions.
	res := learnGesture(t, kinect.GestureSwipeRight, 4, 31)
	script := []kinect.ScriptItem{
		{Idle: time.Second},
		{Gesture: kinect.GestureSwipeRight, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
	}
	for i, p := range []kinect.Profile{kinect.ChildProfile(), kinect.TallProfile()} {
		dets := deployAndRun(t, res, p, script, int64(100+i))
		if len(dets) != 1 {
			t.Errorf("%s: detections = %d, want 1", p.Name, len(dets))
		}
	}
}

func TestLearnedQuerySelectivity(t *testing.T) {
	// Selectivity claim: the learned pattern must not fire on other
	// gestures.
	res := learnGesture(t, kinect.GestureSwipeRight, 4, 41)
	script := []kinect.ScriptItem{
		{Idle: time.Second},
		{Gesture: kinect.GesturePush},
		{Idle: time.Second},
		{Gesture: kinect.GestureCircle},
		{Idle: time.Second},
		{Gesture: kinect.GestureSwipeUp},
		{Idle: time.Second},
		{Gesture: kinect.GestureRaiseHand},
		{Idle: time.Second},
	}
	dets := deployAndRun(t, res, kinect.DefaultProfile(), script, 55)
	if len(dets) != 0 {
		t.Errorf("swipe_right query fired %d times on other gestures", len(dets))
	}
}

func TestIncrementalLearning(t *testing.T) {
	// The interactive loop: add samples one by one, regenerate after each.
	sim, _ := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 77)
	spec := kinect.StandardGestures()[kinect.GestureCircle]
	samples, err := sim.Samples(spec, 5, time.Date(2014, 3, 24, 9, 0, 0, 0, time.UTC),
		kinect.PerformOpts{PathJitter: 25})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLearner(kinect.GestureCircle, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var poseCounts []int
	for _, s := range samples {
		if _, err := l.AddSample(s); err != nil {
			t.Fatal(err)
		}
		res, err := l.Result()
		if err != nil {
			t.Fatal(err)
		}
		poseCounts = append(poseCounts, len(res.Model.Windows))
	}
	if l.SampleCount() != 5 {
		t.Errorf("sample count = %d", l.SampleCount())
	}
	// Pose count stabilizes as samples accumulate (median alignment).
	lastCounts := poseCounts[len(poseCounts)-3:]
	for _, c := range lastCounts[1:] {
		if absInt(c-lastCounts[0]) > 2 {
			t.Errorf("pose counts unstable: %v", poseCounts)
		}
	}
}

func TestLearnerValidation(t *testing.T) {
	if _, err := NewLearner("", DefaultConfig()); err == nil {
		t.Error("unnamed learner accepted")
	}
	bad := DefaultConfig()
	bad.ScaleFactor = -1
	if _, err := NewLearner("g", bad); err == nil {
		t.Error("negative scale factor accepted")
	}
	l, _ := NewLearner("g", DefaultConfig())
	if _, err := l.AddSample(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := l.Result(); err == nil {
		t.Error("result without samples accepted")
	}
	if _, err := Learn("g", nil, DefaultConfig()); err == nil {
		t.Error("Learn with no samples accepted")
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestLearnTwoHandGesture(t *testing.T) {
	// Multi-joint learning: track both hands for the two-hand swipe. The
	// windows span 6 dimensions and the generated query constrains both
	// lHand_* and rHand_* attributes.
	sim, err := kinect.NewSimulator(kinect.DefaultProfile(), kinect.DefaultNoise(), 51)
	if err != nil {
		t.Fatal(err)
	}
	spec := kinect.StandardGestures()[kinect.GestureTwoHandSwipe]
	samples, err := sim.Samples(spec, 4, time.Date(2014, 3, 24, 9, 0, 0, 0, time.UTC),
		kinect.PerformOpts{PathJitter: 20})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Joints = []kinect.Joint{kinect.LeftHand, kinect.RightHand}
	res, err := Learn(kinect.GestureTwoHandSwipe, samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Dims() != 6 {
		t.Fatalf("model dims = %d, want 6", res.Model.Dims())
	}
	for _, frag := range []string{"lHand_x", "lHand_y", "rHand_x", "rHand_y"} {
		if !strings.Contains(res.QueryText, frag) {
			t.Errorf("query missing %s:\n%s", frag, res.QueryText)
		}
	}

	// The two-hand query detects the two-hand swipe but not a one-hand
	// raise (which matches the right hand's movement only).
	script := []kinect.ScriptItem{
		{Idle: time.Second},
		{Gesture: kinect.GestureTwoHandSwipe, Opts: kinect.PerformOpts{PathJitter: 15}},
		{Idle: time.Second},
		{Gesture: kinect.GestureRaiseHand},
		{Idle: time.Second},
	}
	dets := deployAndRun(t, res, kinect.DefaultProfile(), script, 151)
	if len(dets) != 1 || dets[0].Gesture != kinect.GestureTwoHandSwipe {
		t.Fatalf("detections = %+v, want exactly one two_hand_swipe", dets)
	}
}
