package learn

import (
	"fmt"
	"time"

	"gesturecep/internal/geom"
)

// SamplerConfig tunes the distance-based sampling of §3.3.1.
type SamplerConfig struct {
	// Metric is the deviation measure between path points. Defaults to
	// Euclidean.
	Metric Metric
	// MaxDist is the absolute threshold: a new cluster starts when a point
	// deviates more than this from the current reference point. Ignored
	// when RelativeFraction > 0.
	MaxDist float64
	// RelativeFraction, when positive, derives the threshold from the
	// sample itself: threshold = RelativeFraction × total path deviation.
	// The paper computes thresholds "relative to the whole gesture path".
	RelativeFraction float64
	// MinClusterPoints drops clusters with fewer members (noise spikes).
	// Zero means keep all clusters.
	MinClusterPoints int
}

// DefaultSamplerConfig uses a relative Euclidean threshold of 22% of the
// total path deviation, which lands typical one-stroke gestures at 3-6
// poses.
func DefaultSamplerConfig() SamplerConfig {
	return SamplerConfig{
		Metric:           Euclidean{},
		RelativeFraction: 0.22,
	}
}

// Validate reports configuration errors.
func (c SamplerConfig) Validate() error {
	if c.RelativeFraction < 0 || c.RelativeFraction >= 1 {
		return fmt.Errorf("learn: relative fraction %g outside [0, 1)", c.RelativeFraction)
	}
	if c.RelativeFraction == 0 && c.MaxDist <= 0 {
		return fmt.Errorf("learn: need MaxDist > 0 or RelativeFraction > 0")
	}
	if c.MinClusterPoints < 0 {
		return fmt.Errorf("learn: negative MinClusterPoints")
	}
	return nil
}

// Cluster is one extracted characteristic pose: the aggregate of a run of
// consecutive path points that stayed within the distance threshold of the
// cluster's reference point.
type Cluster struct {
	// Centroid is the mean of the member coordinates.
	Centroid []float64
	// Bounds is the MBR of the member coordinates.
	Bounds geom.MBR
	// Count is the number of member points.
	Count int
	// Start and End are the event times of the first and last member.
	Start, End time.Time
}

// Mid returns the representative time of the cluster (midpoint).
func (c Cluster) Mid() time.Time { return c.Start.Add(c.End.Sub(c.Start) / 2) }

// ExtractClusters performs the distance-based sampling of §3.3.1 on one
// sample: the first tuple becomes the initial cluster centroid and the
// reference for distance computation; a new cluster (and reference) starts
// as soon as a point's distance to the current reference exceeds the
// threshold.
func ExtractClusters(s Sample, cfg SamplerConfig) ([]Cluster, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	metric := cfg.Metric
	if metric == nil {
		metric = Euclidean{}
	}
	threshold := cfg.MaxDist
	if cfg.RelativeFraction > 0 {
		threshold = cfg.RelativeFraction * PathDeviation(s, metric)
	}
	if threshold <= 0 {
		// Degenerate sample (no movement at all): one cluster.
		threshold = 1
	}

	var clusters []Cluster
	var cur *clusterBuilder
	ref := s.Points[0]
	cur = newClusterBuilder(ref)
	for _, p := range s.Points[1:] {
		if metric.Distance(ref, p) > threshold {
			clusters = append(clusters, cur.finish())
			ref = p
			cur = newClusterBuilder(p)
			continue
		}
		cur.add(p)
	}
	clusters = append(clusters, cur.finish())

	if cfg.MinClusterPoints > 1 {
		kept := clusters[:0]
		for i, c := range clusters {
			// Always keep the first and last cluster: they anchor the
			// start and end pose of the gesture.
			if c.Count >= cfg.MinClusterPoints || i == 0 || i == len(clusters)-1 {
				kept = append(kept, c)
			}
		}
		clusters = kept
	}
	return clusters, nil
}

type clusterBuilder struct {
	sum    []float64
	bounds geom.MBR
	count  int
	start  time.Time
	end    time.Time
}

func newClusterBuilder(p PathPoint) *clusterBuilder {
	b := &clusterBuilder{
		sum:   append([]float64(nil), p.Coords...),
		count: 1,
		start: p.Ts,
		end:   p.Ts,
	}
	b.bounds = geom.FromPoint(p.Coords)
	return b
}

func (b *clusterBuilder) add(p PathPoint) {
	for i, v := range p.Coords {
		b.sum[i] += v
	}
	b.count++
	b.end = p.Ts
	// Extend cannot fail: all points of one sample share dimensionality
	// (Sample.Validate enforced it).
	_ = b.bounds.Extend(p.Coords)
}

func (b *clusterBuilder) finish() Cluster {
	centroid := make([]float64, len(b.sum))
	for i, v := range b.sum {
		centroid[i] = v / float64(b.count)
	}
	return Cluster{
		Centroid: centroid,
		Bounds:   b.bounds.Clone(),
		Count:    b.count,
		Start:    b.start,
		End:      b.end,
	}
}
